module livenas

go 1.22
