#!/usr/bin/env bash
# Tiered CI driver (.github/workflows/ci.yml runs both tiers; either runs
# standalone on a laptop).
#
#   scripts/ci.sh fast    blocking tier: build, gofmt, go vet, livenas-vet
#                         (baseline-gated via analysis/baseline.json,
#                         incremental: parallel -j with the facts cache in
#                         VET_CACHE, default ~/.cache/livenas-vet, so
#                         unchanged packages are never re-analyzed), short
#                         tests, parallel sweep smoke (one small figure
#                         sweep at -parallel 4)
#   scripts/ci.sh full    merge tier: cold livenas-vet (no cache — proves
#                         findings independently of cache state), full
#                         tests, race tier (includes internal/sweep and the
#                         parallel vet driver), fuzz smoke (FUZZTIME,
#                         default 10s, 0 skips), kernel-bench regression
#                         gate vs BENCH_kernels.json (cmd/bench-compare,
#                         BENCH_NOISE overrides the 15% threshold),
#                         sweep-speedup gate vs BENCH_sweep.json, vet
#                         warm-cache gate vs BENCH_vet.json, telemetry
#                         run-summary validation
#
# Each step is timed; the table goes to stdout and, when running under
# GitHub Actions, to the job summary ($GITHUB_STEP_SUMMARY).
set -euo pipefail
cd "$(dirname "$0")/.."

TIER="${1:-fast}"
case "$TIER" in fast | full) ;; *)
    echo "usage: scripts/ci.sh [fast|full]" >&2
    exit 2
    ;;
esac

STEP_NAMES=()
STEP_SECS=()
STEP_RCS=()

finish() {
    local rc=$?
    {
        echo
        echo "### ci.sh $TIER tier"
        echo
        echo "| step | seconds | result |"
        echo "| --- | ---: | --- |"
        local i
        for i in "${!STEP_NAMES[@]}"; do
            echo "| ${STEP_NAMES[$i]} | ${STEP_SECS[$i]} | ${STEP_RCS[$i]} |"
        done
    } | tee -a "${GITHUB_STEP_SUMMARY:-/dev/null}"
    exit "$rc"
}
trap finish EXIT

step() {
    local name="$1"
    shift
    echo "== $name"
    local t0 t1 rc=0
    t0=$(date +%s)
    "$@" || rc=$?
    t1=$(date +%s)
    STEP_NAMES+=("$name")
    STEP_SECS+=("$((t1 - t0))")
    if [[ $rc -eq 0 ]]; then STEP_RCS+=("ok"); else STEP_RCS+=("FAIL($rc)"); fi
    return "$rc"
}

gofmt_clean() {
    local out
    out="$(gofmt -l .)"
    if [[ -n "$out" ]]; then
        echo "gofmt: needs formatting:" >&2
        echo "$out" >&2
        return 1
    fi
}

summary_gate() {
    local f
    f="$(mktemp -t run_summary.XXXXXX.json)"
    # Reduced duration: the gate checks the summary pipeline end to end,
    # not experiment statistics.
    go run ./cmd/livenas-bench -summary "$f" -dur 40s -time=false
    go run ./cmd/bench-compare -summary "$f"
    rm -f "$f"
}

if [[ "$TIER" == "fast" ]]; then
    step "go build" go build ./...
    step "gofmt" gofmt_clean
    step "go vet" go vet ./...
    step "livenas-vet (cached)" go run ./cmd/livenas-vet \
        -j "$(nproc)" -cache-dir "${VET_CACHE:-$HOME/.cache/livenas-vet}" -stats \
        -baseline analysis/baseline.json ./...
    step "go test -short" go test -short ./...
    # The int8 fast path's correctness contract, run by name so a test
    # rename or build-tag slip can't silently drop it from the blocking
    # tier: kernel-vs-scalar and int8-vs-f32 differentials plus the
    # byte-identical strip/cell determinism pins.
    step "int8 differential + determinism" go test \
        -run 'TestQuant|TestAnytime|TestRequant' ./internal/nn ./internal/sr
    # One real figure sweep through the concurrent engine: catches worker /
    # cache / ordering regressions the unit tests can't see end to end.
    step "sweep smoke" go run ./cmd/livenas-bench -fig fig23 -parallel 4 -dur 20s -traces 1
else
    FUZZTIME="${FUZZTIME:-10s}"
    step "go build" go build ./...
    step "livenas-vet (cold)" go run ./cmd/livenas-vet -baseline analysis/baseline.json ./...
    step "go test" go test ./...
    # internal/nn rides along for the int8/strip-parallel kernel stress;
    # internal/sr's stress set includes the quantized-path churn test.
    step "go test -race" go test -race ./internal/telemetry ./internal/sr ./internal/nn ./internal/wire ./internal/transport ./internal/core ./internal/analysis ./internal/sweep
    if [[ "$FUZZTIME" != "0" ]]; then
        step "fuzz wire ($FUZZTIME)" go test -run '^$' -fuzz '^FuzzWireRead$' -fuzztime "$FUZZTIME" ./internal/wire
        step "fuzz codec ($FUZZTIME)" go test -run '^$' -fuzz '^FuzzBitReader$' -fuzztime "$FUZZTIME" ./internal/codec
    fi
    step "bench gate" go run ./cmd/bench-compare
    step "sweep gate" go run ./cmd/bench-compare -sweep
    step "vet gate" go run ./cmd/bench-compare -vet
    step "summary gate" summary_gate
fi

echo "== ci.sh $TIER tier passed"
