#!/usr/bin/env bash
# Tiered CI driver (.github/workflows/ci.yml runs both tiers; either runs
# standalone on a laptop).
#
#   scripts/ci.sh fast    blocking tier: build, gofmt, go vet, livenas-vet
#                         (baseline-gated via analysis/baseline.json,
#                         incremental: parallel -j with the facts cache in
#                         VET_CACHE, default ~/.cache/livenas-vet, so
#                         unchanged packages are never re-analyzed), short
#                         tests, parallel sweep smoke (one small figure
#                         sweep at -parallel 4)
#   scripts/ci.sh full    merge tier: go vet (stdlib asmdecl/copylocks — the
#                         asm stubs and purego twins are its territory),
#                         cold livenas-vet (no cache — proves
#                         findings independently of cache state), full
#                         tests, race tier (includes internal/sweep,
#                         internal/fleet and the parallel vet driver), fuzz
#                         smoke (FUZZTIME, default 10s, 0 skips),
#                         kernel-bench regression gate vs BENCH_kernels.json
#                         (cmd/bench-compare, BENCH_NOISE overrides the 15%
#                         threshold), sweep-speedup gate vs BENCH_sweep.json,
#                         fleet gate vs BENCH_fleet.json, vet warm-cache
#                         gate vs BENCH_vet.json, telemetry run-summary
#                         validation
#
# Extended knobs (the nightly workflow uses these):
#   FLEET_SOAK_STREAMS=N  adds a fleet soak step to the full tier: N
#                         concurrent streamers through the admission plan
#                         and sweep execution under -race
#   CI_ARTIFACTS=dir      collects the step table, the telemetry run
#                         summary, pprof profiles and the cold analyzer
#                         stats (vet_stats.txt) into dir for upload
#
# Each step is timed; the table goes to stdout and, when running under
# GitHub Actions, to the job summary ($GITHUB_STEP_SUMMARY). When a step
# fails, the remaining steps are recorded as "skipped" and the script exits
# with the FIRST failing step's rc (a finish()/set -e interaction used to
# let a later step's rc, or a multi-command step's last rc, mask it).
set -euo pipefail
cd "$(dirname "$0")/.."

TIER="${1:-fast}"
case "$TIER" in fast | full) ;; *)
    echo "usage: scripts/ci.sh [fast|full]" >&2
    exit 2
    ;;
esac

if [[ -n "${CI_ARTIFACTS:-}" ]]; then
    mkdir -p "$CI_ARTIFACTS"
fi

STEP_NAMES=()
STEP_SECS=()
STEP_RCS=()
# First failure wins: step() records it here and turns every later step
# into an explicit "skipped" row instead of running it.
FAIL_RC=0
FAIL_STEP=""

finish() {
    local rc=$?
    # The table must report the first failing step's rc even if the shell
    # exited through a later command (or through the final exit 0 path).
    if [[ $FAIL_RC -ne 0 ]]; then rc=$FAIL_RC; fi
    {
        echo
        echo "### ci.sh $TIER tier"
        echo
        echo "| step | seconds | result |"
        echo "| --- | ---: | --- |"
        local i
        for i in "${!STEP_NAMES[@]}"; do
            echo "| ${STEP_NAMES[$i]} | ${STEP_SECS[$i]} | ${STEP_RCS[$i]} |"
        done
        if [[ $FAIL_RC -ne 0 ]]; then
            echo
            echo "first failure: ${FAIL_STEP} (rc=${FAIL_RC})"
        fi
    } | tee -a "${GITHUB_STEP_SUMMARY:-/dev/null}" |
        tee -a "${CI_ARTIFACTS:+$CI_ARTIFACTS/step_table.md}" 2>/dev/null ||
        true
    exit "$rc"
}
trap finish EXIT

# step NAME CMD...: runs CMD under timing. Never returns nonzero — set -e
# must not abort the driver mid-table — but records the first failure in
# FAIL_RC/FAIL_STEP and skips every subsequent step explicitly.
step() {
    local name="$1"
    shift
    if [[ $FAIL_RC -ne 0 ]]; then
        STEP_NAMES+=("$name")
        STEP_SECS+=("-")
        STEP_RCS+=("skipped")
        return 0
    fi
    echo "== $name"
    local t0 t1 rc=0
    t0=$(date +%s)
    "$@" || rc=$?
    t1=$(date +%s)
    STEP_NAMES+=("$name")
    STEP_SECS+=("$((t1 - t0))")
    if [[ $rc -eq 0 ]]; then
        STEP_RCS+=("ok")
    else
        STEP_RCS+=("FAIL($rc)")
        FAIL_RC=$rc
        FAIL_STEP="$name"
    fi
    return 0
}

gofmt_clean() {
    local out
    out="$(gofmt -l .)"
    if [[ -n "$out" ]]; then
        echo "gofmt: needs formatting:" >&2
        echo "$out" >&2
        return 1
    fi
}

# Multi-command steps chain with && so the step's rc is the first failing
# command's, not the last command's (bash suppresses set -e inside a
# function invoked in a tested context, so sequential statements would
# swallow an early failure).
summary_gate() {
    local f rc=0
    f="$(mktemp -t run_summary.XXXXXX.json)"
    # Reduced duration: the gate checks the summary pipeline end to end,
    # not experiment statistics.
    go run ./cmd/livenas-bench -summary "$f" -dur 40s -time=false &&
        go run ./cmd/bench-compare -summary "$f" || rc=$?
    if [[ -n "${CI_ARTIFACTS:-}" && -s "$f" ]]; then
        cp "$f" "$CI_ARTIFACTS/run_summary.json"
    fi
    rm -f "$f"
    return "$rc"
}

# Nightly-only: record the cold full-check-set analyzer statistics next to
# the pprof profiles, so an analyzer-cost regression caught by the vet gate
# comes with the target/analyzed/loaded counts that explain it. The -stats
# line goes to stderr; findings (none expected against the baseline) stay
# visible in the log and in the artifact.
vet_stats() {
    go run ./cmd/livenas-vet -stats -baseline analysis/baseline.json ./... \
        2>&1 | tee "$CI_ARTIFACTS/vet_stats.txt"
}

# Nightly-only: record cpu/heap profiles of the 1080p inference bench for
# upload, so a perf regression caught by the bench gate comes with the
# profile that explains it.
pprof_profiles() {
    go test -run '^$' -bench 'BenchmarkInference1080p$' -benchtime 5x \
        -cpuprofile "$CI_ARTIFACTS/cpu.pprof" \
        -memprofile "$CI_ARTIFACTS/mem.pprof" \
        -o "$CI_ARTIFACTS/sr_bench.test" ./internal/sr
}

if [[ "$TIER" == "fast" ]]; then
    step "go build" go build ./...
    step "gofmt" gofmt_clean
    step "go vet" go vet ./...
    step "livenas-vet (cached)" go run ./cmd/livenas-vet \
        -j "$(nproc)" -cache-dir "${VET_CACHE:-$HOME/.cache/livenas-vet}" -stats \
        -baseline analysis/baseline.json ./...
    step "go test -short" go test -short ./...
    # The int8 fast path's correctness contract, run by name so a test
    # rename or build-tag slip can't silently drop it from the blocking
    # tier: kernel-vs-scalar and int8-vs-f32 differentials plus the
    # byte-identical strip/cell determinism pins.
    step "int8 differential + determinism" go test \
        -run 'TestQuant|TestAnytime|TestRequant' ./internal/nn ./internal/sr
    # One real figure sweep through the concurrent engine: catches worker /
    # cache / ordering regressions the unit tests can't see end to end.
    step "sweep smoke" go run ./cmd/livenas-bench -fig fig23 -parallel 4 -dur 20s -traces 1
else
    FUZZTIME="${FUZZTIME:-10s}"
    step "go build" go build ./...
    step "go vet" go vet ./...
    step "livenas-vet (cold)" go run ./cmd/livenas-vet -baseline analysis/baseline.json ./...
    step "go test" go test ./...
    # internal/nn rides along for the int8/strip-parallel kernel stress;
    # internal/sr's stress set includes the quantized-path churn test;
    # internal/fleet races the registry against mid-epoch teardowns.
    # internal/edge races the origin/relay/viewer actors over both SimConn
    # and real-socket (net.Pipe + queued-writer) paths.
    step "go test -race" go test -race ./internal/telemetry ./internal/sr ./internal/nn ./internal/wire ./internal/transport ./internal/core ./internal/analysis ./internal/sweep ./internal/fleet ./internal/edge
    if [[ -n "${FLEET_SOAK_STREAMS:-}" ]]; then
        step "fleet soak (N=$FLEET_SOAK_STREAMS, -race)" go test -race \
            -run '^TestFleetSoak$' -v ./internal/fleet
    fi
    if [[ -n "${EDGE_SOAK_VIEWERS:-}" ]]; then
        step "edge soak (N=$EDGE_SOAK_VIEWERS, -race)" go test -race \
            -run '^TestEdgeSoak$' -v ./internal/edge
    fi
    if [[ "$FUZZTIME" != "0" ]]; then
        step "fuzz wire ($FUZZTIME)" go test -run '^$' -fuzz '^FuzzWireRead$' -fuzztime "$FUZZTIME" ./internal/wire
        step "fuzz codec ($FUZZTIME)" go test -run '^$' -fuzz '^FuzzBitReader$' -fuzztime "$FUZZTIME" ./internal/codec
    fi
    step "bench gate" go run ./cmd/bench-compare
    step "sweep gate" go run ./cmd/bench-compare -sweep
    step "fleet gate" go run ./cmd/bench-compare -fleet
    step "edge gate" go run ./cmd/bench-compare -edge
    step "vet gate" go run ./cmd/bench-compare -vet
    step "summary gate" summary_gate
    if [[ -n "${CI_ARTIFACTS:-}" ]]; then
        step "vet stats" vet_stats
        step "pprof profiles" pprof_profiles
    fi
fi

if [[ $FAIL_RC -ne 0 ]]; then
    echo "== ci.sh $TIER tier FAILED at: $FAIL_STEP (rc=$FAIL_RC)" >&2
    exit "$FAIL_RC"
fi
echo "== ci.sh $TIER tier passed"
