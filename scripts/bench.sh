#!/usr/bin/env bash
# Tracked kernel benchmarks: runs the Conv2D micro-benches (internal/nn)
# and the end-to-end train-epoch / 1080p-inference benches (internal/sr),
# each in its "kernel" (im2col/GEMM engine) and "ref" (retained scalar
# baseline) variant, and emits BENCH_kernels.json with ns/op, MB/s,
# allocs/op plus the kernel-vs-ref speedup and allocation-reduction
# ratios. The JSON is committed so the perf trajectory is reviewable
# across PRs.
#
#   scripts/bench.sh            full run, writes BENCH_kernels.json, the
#                               sweep-engine serial-vs-parallel record
#                               BENCH_sweep.json (cmd/livenas-bench
#                               -sweepbench; gated by bench-compare -sweep),
#                               the vet-engine cold/warm record
#                               BENCH_vet.json (livenas-vet -bench; gated by
#                               bench-compare -vet), the fleet record
#                               BENCH_fleet.json (-fleetbench; bench-compare
#                               -fleet) and the edge fan-out record
#                               BENCH_edge.json (-edgebench; bench-compare
#                               -edge)
#   scripts/bench.sh -short     few-iteration smoke run (CI gate): exercises
#                               every kernel bench and the JSON emitter,
#                               writes to a temp file so the tracked baseline
#                               keeps full-run numbers; skips the sweep record
#   scripts/bench.sh -o FILE    write the kernel JSON elsewhere
#
# allocs_reduction uses the sentinel 999999 when the kernel variant
# allocates nothing per op (the reduction is infinite).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="BENCH_kernels.json"
SHORT=0
while [[ $# -gt 0 ]]; do
    case "$1" in
    -short) SHORT=1 ;;
    -o)
        OUT="$2"
        shift
        ;;
    *)
        echo "usage: scripts/bench.sh [-short] [-o file]" >&2
        exit 2
        ;;
    esac
    shift
done

if [[ "$SHORT" == 1 && "$OUT" == "BENCH_kernels.json" ]]; then
    OUT="$(mktemp -t bench_kernels_short.XXXXXX.json)"
fi

if [[ "$SHORT" == 1 ]]; then
    # A handful of iterations, not one: the first iteration pays the arena
    # and pool cold start, which skews single-shot kernel-vs-ref ratios the
    # bench-regression gate (cmd/bench-compare) compares against the
    # full-run baseline.
    NN_ARGS=(-benchtime 5x)
    SR_ARGS=(-benchtime 5x)
else
    # Long enough for steady-state arena/pool behaviour to dominate.
    NN_ARGS=(-benchtime 2s)
    SR_ARGS=(-benchtime 15x)
fi

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

echo "== bench: internal/nn conv kernels" >&2
go test -run '^$' -bench 'BenchmarkConvForward$|BenchmarkConvBackward$' \
    -benchmem "${NN_ARGS[@]}" ./internal/nn | tee -a "$TMP" >&2
echo "== bench: internal/sr train epoch + inference (1080p f32/int8, 4K)" >&2
go test -run '^$' -bench 'BenchmarkTrainEpoch$|BenchmarkInference1080p$|BenchmarkInference1080pInt8$|BenchmarkInference4K$' \
    -benchmem "${SR_ARGS[@]}" ./internal/sr | tee -a "$TMP" >&2

awk -v goversion="$(go version | awk '{print $3}')" -v short="$SHORT" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the -GOMAXPROCS suffix
    sub(/^Benchmark/, "", name)
    split(name, parts, "/")
    bench = parts[1]; variant = parts[2]
    ns = ""; mbs = ""; allocs = ""; bytes = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        if ($i == "MB/s") mbs = $(i - 1)
        if ($i == "B/op") bytes = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    key = bench "." variant
    NS[key] = ns; MBS[key] = mbs; AL[key] = allocs; BY[key] = bytes
    seen[bench] = 1
}
END {
    map["ConvForward"] = "conv_forward"
    map["ConvBackward"] = "conv_backward"
    map["TrainEpoch"] = "train_epoch"
    map["Inference1080p"] = "inference_1080p"
    map["Inference1080pInt8"] = "inference_1080p_int8"
    map["Inference4K"] = "inference_4k"
    order[1] = "ConvForward"; order[2] = "ConvBackward"
    order[3] = "TrainEpoch"; order[4] = "Inference1080p"
    order[5] = "Inference1080pInt8"; order[6] = "Inference4K"
    printf "{\n"
    printf "  \"generated_by\": \"scripts/bench.sh\",\n"
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"short\": %s,\n", short ? "true" : "false"
    printf "  \"note\": \"kernel = im2col/GEMM engine, ref = scalar baseline (same binary, SetRefKernels); for the int8 benches (inference_1080p_int8, inference_4k) kernel = int8-quantized path and ref = the f32 GEMM engine, so their speedup is the quantization win on top of the optimised path; speedup = ref_ns/kernel_ns; allocs_reduction = ref_allocs/kernel_allocs, 999999 when the kernel path allocates zero\",\n"
    printf "  \"benches\": {\n"
    nout = 0
    for (oi = 1; oi <= 6; oi++) {
        b = order[oi]
        if (!(b in seen)) continue
        kk = b ".kernel"; rk = b ".ref"
        if (NS[kk] == "" || NS[rk] == "") continue
        if (nout++) printf ",\n"
        printf "    \"%s\": {\n", map[b]
        printf "      \"kernel\": {\"ns_op\": %s, \"mb_s\": %s, \"bytes_op\": %s, \"allocs_op\": %s},\n", NS[kk], MBS[kk] == "" ? "0" : MBS[kk], BY[kk], AL[kk]
        printf "      \"ref\": {\"ns_op\": %s, \"mb_s\": %s, \"bytes_op\": %s, \"allocs_op\": %s},\n", NS[rk], MBS[rk] == "" ? "0" : MBS[rk], BY[rk], AL[rk]
        printf "      \"speedup\": %.2f,\n", NS[rk] / NS[kk]
        if (AL[kk] + 0 == 0) red = 999999
        else red = AL[rk] / AL[kk]
        printf "      \"allocs_reduction\": %.2f\n", red
        printf "    }"
    }
    printf "\n  }\n}\n"
    if (nout != 6) {
        print "bench.sh: expected 6 benchmarks, parsed " nout > "/dev/stderr"
        exit 1
    }
}
' "$TMP" >"$OUT"

echo "== wrote $OUT" >&2
cat "$OUT"

if [[ "$SHORT" == 0 ]]; then
    echo "== bench: sweep engine serial vs parallel" >&2
    go run ./cmd/livenas-bench -sweepbench BENCH_sweep.json

    echo "== bench: fleet plan serial vs parallel" >&2
    go run ./cmd/livenas-bench -fleetbench BENCH_fleet.json

    echo "== bench: edge fan-out plan serial vs parallel" >&2
    go run ./cmd/livenas-bench -edgebench BENCH_edge.json

    echo "== bench: vet engine cold vs warm" >&2
    go run ./cmd/livenas-vet -bench BENCH_vet.json ./...
fi
