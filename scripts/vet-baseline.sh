#!/usr/bin/env bash
# Regenerate analysis/baseline.json from the current livenas-vet findings.
#
#   scripts/vet-baseline.sh          full regeneration (see below)
#   scripts/vet-baseline.sh -prune   only drop entries whose finding no
#                                    longer exists; never adds entries, so
#                                    it is always safe after fixing findings
#
# Justifications for entries that persist are carried over; any NEW entry
# is written with an empty justification, and the baseline refuses to load
# until a human fills it in. That is deliberate: accepting a finding is an
# explicit, reviewed decision, never a side effect of regeneration. Prefer
# fixing the finding or, for single sites, a `//livenas:allow <check> <why>`
# directive; baseline entries are for findings the analyzer cannot model
# precisely enough (see DESIGN.md "Correctness tooling").
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "-prune" ]]; then
    # Exit 1 here means un-baselined findings remain: the prune itself
    # still happened; fix or justify the remaining findings.
    go run ./cmd/livenas-vet -baseline analysis/baseline.json -prune-baseline ./...
    echo "vet-baseline.sh: analysis/baseline.json pruned"
    exit 0
fi

go run ./cmd/livenas-vet -write-baseline analysis/baseline.json ./...

# Fail loudly here (not just at next load) if an entry still needs text.
if grep -q '"justification": ""' analysis/baseline.json; then
    echo >&2
    echo "vet-baseline.sh: analysis/baseline.json has entries with empty" >&2
    echo "justifications; edit the file and explain each acceptance." >&2
    exit 1
fi
echo "vet-baseline.sh: analysis/baseline.json regenerated"
