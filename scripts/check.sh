#!/usr/bin/env bash
# Pre-merge gate: build, vet (standard + project-specific), tests, race
# tier, and a short fuzz pass. EXPERIMENTS.md results are only comparable
# across commits that pass this script.
#
# FUZZTIME (default 10s) controls the per-target fuzz budget; set
# FUZZTIME=0 to skip fuzzing (the seed corpora still run under go test).
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== livenas-vet ./... (gated on analysis/baseline.json)"
go run ./cmd/livenas-vet -baseline analysis/baseline.json ./...

echo "== go test ./..."
go test ./...

echo "== differential kernel tests (GEMM engine vs scalar reference)"
go test -count=1 -run 'TestConvGEMMMatchesRef|TestConvDeterministicAcrossPoolSizes|TestReLUAndPixelShuffleMatchRef' ./internal/nn

echo "== kernel bench smoke + regression gate (cmd/bench-compare)"
go run ./cmd/bench-compare

echo "== go test -race (concurrency tier)"
go test -race ./internal/telemetry ./internal/sr ./internal/wire ./internal/transport ./internal/core ./internal/analysis

if [[ "$FUZZTIME" != "0" ]]; then
    echo "== fuzz ($FUZZTIME per target)"
    go test -run '^$' -fuzz '^FuzzWireRead$' -fuzztime "$FUZZTIME" ./internal/wire
    go test -run '^$' -fuzz '^FuzzBitReader$' -fuzztime "$FUZZTIME" ./internal/codec
fi

echo "== all checks passed"
