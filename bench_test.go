package livenas

// One benchmark per table and figure of the paper's evaluation. Each
// iteration regenerates the corresponding result through the experiment
// harness at reduced "bench" scale (30-second sessions, one trace per
// point); run `go run ./cmd/livenas-bench -all` for the full fast-mode
// tables and `-full` for the large-frame configuration.

import (
	"context"
	"testing"
	"time"

	"livenas/internal/exp"
)

// benchOptions keeps every figure benchmark to seconds-not-minutes.
func benchOptions() exp.Options {
	o := exp.DefaultOptions()
	o.Duration = 30 * time.Second
	o.Traces = 1
	return o
}

// runExp executes one registered experiment b.N times.
func runExp(b *testing.B, id string) {
	b.Helper()
	e, err := exp.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	o := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables := e.Run(context.Background(), o, nil)
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatalf("experiment %s produced no rows", id)
		}
	}
}

func BenchmarkFig2a(b *testing.B)     { runExp(b, "fig2a") }
func BenchmarkFig2b(b *testing.B)     { runExp(b, "fig2b") }
func BenchmarkFig2c(b *testing.B)     { runExp(b, "fig2c") }
func BenchmarkFig2d(b *testing.B)     { runExp(b, "fig2d") }
func BenchmarkFig5(b *testing.B)      { runExp(b, "fig5") }
func BenchmarkFig6(b *testing.B)      { runExp(b, "fig6") }
func BenchmarkFig8(b *testing.B)      { runExp(b, "fig8") }
func BenchmarkFig9(b *testing.B)      { runExp(b, "fig9") }
func BenchmarkFig10(b *testing.B)     { runExp(b, "fig10") }
func BenchmarkFig11(b *testing.B)     { runExp(b, "fig11") }
func BenchmarkFig12(b *testing.B)     { runExp(b, "fig12") }
func BenchmarkFig13(b *testing.B)     { runExp(b, "fig13") }
func BenchmarkFig14(b *testing.B)     { runExp(b, "fig14") }
func BenchmarkFig15(b *testing.B)     { runExp(b, "fig15") }
func BenchmarkFig16(b *testing.B)     { runExp(b, "fig16") }
func BenchmarkFig17(b *testing.B)     { runExp(b, "fig17") }
func BenchmarkFig18(b *testing.B)     { runExp(b, "fig18") }
func BenchmarkFig19(b *testing.B)     { runExp(b, "fig19") }
func BenchmarkFig20(b *testing.B)     { runExp(b, "fig20") }
func BenchmarkFig21(b *testing.B)     { runExp(b, "fig21") }
func BenchmarkFig22(b *testing.B)     { runExp(b, "fig22") }
func BenchmarkFig23(b *testing.B)     { runExp(b, "fig23") }
func BenchmarkFig25(b *testing.B)     { runExp(b, "fig25") }
func BenchmarkFig26to29(b *testing.B) { runExp(b, "fig26-29") }
func BenchmarkTable1(b *testing.B)    { runExp(b, "table1") }
func BenchmarkTable2(b *testing.B)    { runExp(b, "table2") }

// Ablation benches for the design choices DESIGN.md calls out.
func BenchmarkAblationResidual(b *testing.B)  { runExp(b, "abl-residual") }
func BenchmarkAblationSampler(b *testing.B)   { runExp(b, "abl-sampler") }
func BenchmarkAblationRecency(b *testing.B)   { runExp(b, "abl-recency") }
func BenchmarkAblationScheduler(b *testing.B) { runExp(b, "abl-scheduler") }
func BenchmarkAblationFuncodec(b *testing.B)  { runExp(b, "abl-funcodec") }

// BenchmarkIngestSession measures raw simulator throughput: one full
// 30-second LiveNAS ingest session per iteration.
func BenchmarkIngestSession(b *testing.B) {
	tr := FCCUplink(3, 2*time.Minute, 250)
	cfg := Config{
		Cat:      JustChatting,
		Seed:     7,
		Native:   Resolution{Name: "1080p/5", W: 384, H: 216},
		Ingest:   Resolution{Name: "540p/5", W: 192, H: 108},
		FPS:      10,
		Duration: 30 * time.Second,
		Trace:    tr,
		Scheme:   SchemeLiveNAS,

		PatchSize: 24, MinVideoKbps: 40, GCCInitKbps: 160,
		StepKbps: 20, InitPatchKbps: 20, MinPatchKbps: 5,
		MTU: 240, Channels: 6,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := Run(cfg)
		if r.FramesDecoded == 0 {
			b.Fatal("no frames decoded")
		}
	}
}
