package netem

import (
	"testing"
	"time"

	"livenas/internal/sim"
	"livenas/internal/trace"
)

func flatTrace(kbps float64) *trace.Trace {
	ks := make([]float64, 600)
	for i := range ks {
		ks[i] = kbps
	}
	return &trace.Trace{Name: "flat", DT: time.Second, Kbps: ks}
}

func TestDeliveryTimeAtLinkRate(t *testing.T) {
	s := sim.New()
	var recvAt time.Duration
	l := NewLink(s, flatTrace(1000), 10*time.Millisecond, 1<<20, func(p Packet) {
		recvAt = s.Now()
	})
	// 1250 bytes at 1000 kbps = 10 ms serialisation + 10 ms propagation.
	l.Send(Packet{Seq: 1, Size: 1250})
	s.Run()
	want := 20 * time.Millisecond
	if d := recvAt - want; d > time.Millisecond || d < -time.Millisecond {
		t.Fatalf("delivered at %v want ~%v", recvAt, want)
	}
}

func TestFIFOOrdering(t *testing.T) {
	s := sim.New()
	var order []int
	l := NewLink(s, flatTrace(500), 5*time.Millisecond, 1<<20, func(p Packet) {
		order = append(order, p.Seq)
	})
	for i := 0; i < 20; i++ {
		l.Send(Packet{Seq: i, Size: 1200})
	}
	s.Run()
	if len(order) != 20 {
		t.Fatalf("delivered %d", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("out of order: %v", order)
		}
	}
}

func TestQueueBuildsDelay(t *testing.T) {
	// Packets sent back-to-back above the link rate must see growing delay.
	s := sim.New()
	var delays []time.Duration
	l := NewLink(s, flatTrace(800), 5*time.Millisecond, 1<<20, func(p Packet) {
		delays = append(delays, s.Now()-p.SentAt)
	})
	for i := 0; i < 10; i++ {
		l.Send(Packet{Seq: i, Size: 1200})
	}
	s.Run()
	for i := 1; i < len(delays); i++ {
		if delays[i] <= delays[i-1] {
			t.Fatalf("delay not growing under burst: %v", delays)
		}
	}
}

func TestDropTail(t *testing.T) {
	s := sim.New()
	delivered := 0
	l := NewLink(s, flatTrace(100), time.Millisecond, 3000, func(p Packet) {
		delivered++
	})
	okCount := 0
	for i := 0; i < 10; i++ {
		if l.Send(Packet{Seq: i, Size: 1200}) {
			okCount++
		}
	}
	s.Run()
	if okCount != 2 { // 2 x 1200 = 2400 <= 3000; third would exceed
		t.Fatalf("accepted %d packets, want 2", okCount)
	}
	st := l.Stats()
	if st.Dropped != 8 || st.Delivered != 2 || delivered != 2 {
		t.Fatalf("stats %+v delivered=%d", st, delivered)
	}
}

func TestQueueDrains(t *testing.T) {
	s := sim.New()
	l := NewLink(s, flatTrace(1000), time.Millisecond, 1<<20, func(Packet) {})
	for i := 0; i < 5; i++ {
		l.Send(Packet{Seq: i, Size: 1000})
	}
	if l.QueuedBytes() != 5000 {
		t.Fatalf("queued %d", l.QueuedBytes())
	}
	s.Run()
	if l.QueuedBytes() != 0 {
		t.Fatalf("queue did not drain: %d", l.QueuedBytes())
	}
}

func TestRateChangesWithTrace(t *testing.T) {
	// A trace that doubles its rate halfway: packets serviced in the fast
	// half take half the serialisation time.
	ks := make([]float64, 60)
	for i := range ks {
		if i < 30 {
			ks[i] = 400
		} else {
			ks[i] = 4000
		}
	}
	tr := &trace.Trace{Name: "step", DT: time.Second, Kbps: ks}
	s := sim.New()
	var times []time.Duration
	l := NewLink(s, tr, 0, 1<<20, func(p Packet) { times = append(times, s.Now()) })

	l.Send(Packet{Seq: 0, Size: 5000}) // 100 ms at 400 kbps
	s.RunUntil(40 * time.Second)
	l.Send(Packet{Seq: 1, Size: 5000}) // 10 ms at 4000 kbps
	s.Run()
	d0 := times[0]
	d1 := times[1] - 40*time.Second
	if d0 < 90*time.Millisecond || d0 > 110*time.Millisecond {
		t.Fatalf("slow-phase delivery %v", d0)
	}
	if d1 > 15*time.Millisecond {
		t.Fatalf("fast-phase delivery %v", d1)
	}
}

func TestRandomLoss(t *testing.T) {
	s := sim.New()
	delivered := 0
	l := NewLink(s, flatTrace(100000), time.Millisecond, 1<<20, func(Packet) { delivered++ })
	l.SetLossRate(0.3, 42)
	for i := 0; i < 1000; i++ {
		l.Send(Packet{Seq: i, Size: 100})
	}
	s.Run()
	st := l.Stats()
	if st.Dropped < 200 || st.Dropped > 400 {
		t.Fatalf("30%% loss dropped %d of 1000", st.Dropped)
	}
	if delivered != 1000-st.Dropped {
		t.Fatalf("delivered %d + dropped %d != 1000", delivered, st.Dropped)
	}
}
