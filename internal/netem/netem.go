// Package netem emulates a bandwidth-constrained network path on the
// discrete-event simulator, in the style of Mahimahi (which the paper uses):
// a trace-driven bottleneck link with a drop-tail byte queue and fixed
// propagation delay. The ingest client's packets traverse it; feedback
// returns over an uncongested reverse path.
package netem

import (
	"math/rand"
	"time"

	"livenas/internal/sim"
	"livenas/internal/trace"
)

// Packet is one transmission unit crossing the link.
type Packet struct {
	Seq     int
	Size    int // bytes on the wire
	SentAt  time.Duration
	Payload any
}

// Stats aggregates link counters.
type Stats struct {
	Sent      int
	Delivered int
	Dropped   int
	BytesIn   int
	BytesOut  int
}

// Link is a trace-driven bottleneck: packets are serviced in FIFO order at
// the instantaneous trace rate, wait in a bounded drop-tail queue, and
// arrive after an additional propagation delay.
type Link struct {
	sim      *sim.Simulator
	tr       *trace.Trace
	propDel  time.Duration
	queueCap int // bytes
	deliver  func(Packet)

	queued    int // bytes currently queued (including in service)
	busyUntil time.Duration
	stats     Stats

	lossRate float64
	lossRng  *rand.Rand
}

// NewLink creates a link that calls deliver for each arriving packet.
// queueCap is the drop-tail queue bound in bytes (Mahimahi-style; live
// ingest paths use shallow buffers — §3 "the ingest server cannot use much
// buffer").
func NewLink(s *sim.Simulator, tr *trace.Trace, propDelay time.Duration, queueCap int, deliver func(Packet)) *Link {
	return &Link{sim: s, tr: tr, propDel: propDelay, queueCap: queueCap, deliver: deliver}
}

// SetLossRate adds independent random packet loss on top of queue drops
// (seeded for reproducibility). Use for loss-recovery experiments.
func (l *Link) SetLossRate(rate float64, seed int64) {
	l.lossRate = rate
	l.lossRng = rand.New(rand.NewSource(seed))
}

// Stats returns a copy of the link counters.
func (l *Link) Stats() Stats { return l.stats }

// QueuedBytes reports the bytes currently waiting or in service.
func (l *Link) QueuedBytes() int { return l.queued }

// RateAt exposes the underlying trace rate (kbps) at time t; experiments
// use it to plot "available bandwidth".
func (l *Link) RateAt(t time.Duration) float64 { return l.tr.RateAt(t) }

// Send enqueues a packet. It returns false (and counts a drop) if the queue
// is full.
func (l *Link) Send(p Packet) bool {
	l.stats.Sent++
	l.stats.BytesIn += p.Size
	if l.queued+p.Size > l.queueCap {
		l.stats.Dropped++
		return false
	}
	if l.lossRate > 0 && l.lossRng.Float64() < l.lossRate {
		l.stats.Dropped++
		return false
	}
	l.queued += p.Size
	p.SentAt = l.sim.Now()

	// Service start: after everything already queued.
	start := l.busyUntil
	if start < l.sim.Now() {
		start = l.sim.Now()
	}
	// Transmission time at the trace rate sampled at service start. A
	// varying-rate integral would be more exact; per-second trace samples
	// and sub-second packets make the start-rate approximation tight.
	rate := l.tr.RateAt(start)
	if rate < 1 {
		rate = 1
	}
	tx := time.Duration(float64(p.Size*8) / (rate * 1000) * float64(time.Second))
	done := start + tx
	l.busyUntil = done
	// The packet leaves the queue when its transmission completes, and is
	// delivered one propagation delay later.
	l.sim.At(done, func() { l.queued -= p.Size })
	l.sim.At(done+l.propDel, func() {
		l.stats.Delivered++
		l.stats.BytesOut += p.Size
		l.deliver(p)
	})
	return true
}
