package analysis

import (
	"go/ast"
	"go/types"
)

// UncheckedWrite flags statement-position calls that discard the error of
// a wire/stream emit path: wire.Write, io.Writer Write methods, and
// encoder-style emitters (Encode, Flush, WriteString, ...). On a live
// ingest connection a swallowed short write silently desynchronises the
// length-prefixed protocol; the session must instead be terminated.
var UncheckedWrite = &Check{
	Name: "unchecked-write",
	Doc: "discarded error from wire.Write, io.Writer.Write, or an encoder " +
		"emit path; handle it (log and terminate the session) or discard " +
		"explicitly with `_ =`",
	Run: runUncheckedWrite,
}

// emitNames are method names treated as emit paths when their last result
// is an error.
var emitNames = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"WriteTo":     true,
	"Encode":      true,
	"Flush":       true,
	"Emit":        true,
}

// neverFails lists writer types whose emit methods are documented to
// always return a nil error; flagging them is pure noise.
var neverFails = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
}

func runUncheckedWrite(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := unparen(st.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || !lastResultIsError(fn) {
				return true
			}
			recv := fn.Type().(*types.Signature).Recv()
			if recv == nil {
				// Package-level function: only wire.Write-shaped emitters.
				if fn.Name() == "Write" && fn.Pkg() != nil && fn.Pkg().Name() == "wire" {
					p.Reportf(st.Pos(), "result of %s.Write is discarded; a failed wire write must end the session", fn.Pkg().Name())
				}
				return true
			}
			if !emitNames[fn.Name()] {
				return true
			}
			if recvNeverFails(recv.Type()) {
				return true
			}
			p.Reportf(st.Pos(), "error result of %s.%s is discarded", types.TypeString(recv.Type(), types.RelativeTo(p.Pkg.Types)), fn.Name())
			return true
		})
	}
}

// calleeFunc resolves the called function or method object, if static.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Pkg.Info.Uses[id].(*types.Func)
	return fn
}

func lastResultIsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func recvNeverFails(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return neverFails[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
}
