package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineLeak verifies that goroutines launched in the concurrency-bearing
// packages are provably joined before their owner returns: the goroutine
// body must signal completion (WaitGroup.Done, a channel send or close, or
// termination via context cancellation) and the launching function must
// consume that signal (Wait, a receive or range over the channel, or a
// callee the summaries prove waits) on some path after the launch. A
// goroutine that signals through state the owner does not hold locally —
// a struct field, a returned channel — is assumed to be joined elsewhere;
// the check only reports leaks it can prove within the owner.
var GoroutineLeak = &Check{
	Name: "goroutine-leak",
	Doc: "a goroutine is launched but never joined before the owner " +
		"returns: either its body signals completion to nobody, or the " +
		"owner never consumes the signal; join it (WaitGroup, channel " +
		"receive, context) or annotate a deliberate daemon with " +
		"//livenas:allow goroutine-leak",
	RunModule: runGoroutineLeak,
}

// goroutineScope: the packages whose go statements are audited.
var goroutineScope = []string{"nn", "core", "transport", "edge", "sr", "sweep", "fleet"}

// goSignals describes how one goroutine body announces completion.
type goSignals struct {
	// wgs and chans are owner-local objects the body signals through:
	// WaitGroups it calls Done on, channels it sends on or closes.
	wgs   map[types.Object]bool
	chans map[types.Object]bool
	// external is set when the body signals through non-local state (a
	// struct field, a global); the owner cannot be expected to join, so
	// the launch is assumed to be managed elsewhere.
	external bool
	// ctxBound is set when the body observes context cancellation
	// (<-ctx.Done() or a select on it), bounding its lifetime.
	ctxBound bool
}

func (s *goSignals) any() bool {
	return len(s.wgs) > 0 || len(s.chans) > 0 || s.external || s.ctxBound
}

func runGoroutineLeak(p *ModulePass) {
	nodes := make([]*FuncInfo, 0, len(p.Mod.Graph.Nodes))
	for _, fi := range p.Mod.Graph.Nodes {
		if hasSegment(fi.Pkg.Path, goroutineScope...) && fi.Decl.Body != nil {
			nodes = append(nodes, fi)
		}
	}
	sortNodesByPos(nodes)
	for _, fi := range nodes {
		checkGoroutineUnit(p, fi, fi.Obj.Name(), fi.Decl.Body)
		for _, lit := range fi.Lits {
			checkGoroutineUnit(p, fi, fi.Obj.Name(), lit.Body)
		}
	}
}

// checkGoroutineUnit audits every go statement of one function-like body.
// Each body (the declaration's and each literal's) is its own owner: a
// goroutine launched inside a literal must be joined by that literal.
func checkGoroutineUnit(p *ModulePass, fi *FuncInfo, owner string, body *ast.BlockStmt) {
	cfg := BuildCFG(body)
	var goStmts []*ast.GoStmt
	for _, blk := range cfg.Blocks {
		for _, s := range blk.Stmts {
			if g, ok := s.(*ast.GoStmt); ok {
				goStmts = append(goStmts, g)
			}
		}
	}
	if len(goStmts) == 0 {
		return
	}
	// Defers registered anywhere in the unit run at exit, after any launch
	// that executed, so they are join evidence for every go statement.
	var defers []ast.Stmt
	for _, blk := range cfg.Blocks {
		for _, s := range blk.Stmts {
			if d, ok := s.(*ast.DeferStmt); ok {
				defers = append(defers, d)
			}
		}
	}
	for _, g := range goStmts {
		sig := collectGoSignals(p, fi, g)
		if sig.external || sig.ctxBound {
			continue
		}
		if !sig.any() {
			p.Reportf(g.Pos(),
				"goroutine launched in %s never signals completion (no WaitGroup.Done, channel send/close, or context cancellation), so the owner cannot join it",
				owner)
			continue
		}
		if signalsEscape(p, fi, body, g, sig) {
			continue
		}
		evidence := append(cfg.ReachableStmts(g), defers...)
		if !joinEvidence(p, fi, evidence, sig) {
			p.Reportf(g.Pos(),
				"goroutine launched in %s signals completion but %s never consumes the signal before returning; wait on the WaitGroup or receive from the channel on the path to return",
				owner, owner)
		}
	}
}

// collectGoSignals extracts the completion signals of the goroutine body:
// the function literal's body, or — for `go fn(args)` with a statically
// known module callee — the callee's body with its parameters mapped back
// to the caller's argument objects.
func collectGoSignals(p *ModulePass, fi *FuncInfo, g *ast.GoStmt) *goSignals {
	sig := &goSignals{wgs: map[types.Object]bool{}, chans: map[types.Object]bool{}}
	info := fi.Pkg.Info
	var body *ast.BlockStmt
	// paramOf maps a body-local object to the caller object it stands for.
	paramOf := func(obj types.Object) types.Object { return obj }

	switch fun := unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		callee := StaticCallee(info, g.Call)
		if callee == nil {
			// go through an unknown function value: no visibility, assume
			// the callee manages its own lifetime.
			sig.external = true
			return sig
		}
		cfi := p.Mod.Graph.Funcs[callee]
		if cfi == nil || cfi.Decl.Body == nil {
			sig.external = true
			return sig
		}
		body = cfi.Decl.Body
		info = cfi.Pkg.Info
		// Map callee params to caller argument objects where the argument
		// is a plain identifier; anything else is untrackable.
		m := map[types.Object]types.Object{}
		for i, par := range paramObjects(cfi) {
			if i < len(g.Call.Args) {
				arg := unparen(g.Call.Args[i])
				// go helper(&wg): the WaitGroup travels by address.
				if ue, ok := arg.(*ast.UnaryExpr); ok && ue.Op == token.AND {
					arg = unparen(ue.X)
				}
				if argObj := identObj(fi.Pkg.Info, arg); argObj != nil {
					m[par] = argObj
				}
			}
		}
		paramOf = func(obj types.Object) types.Object {
			if caller, ok := m[obj]; ok {
				return caller
			}
			return nil // callee-local signal: invisible to the caller
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if sel, ok := unparen(e.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && len(e.Args) == 0 {
				if isWaitGroupExpr(info, sel.X) {
					recordSignal(sig, sig.wgs, info, sel.X, paramOf)
				}
			}
			if id, ok := unparen(e.Fun).(*ast.Ident); ok && id.Name == "close" && len(e.Args) == 1 {
				if isChanExpr(info, e.Args[0]) {
					recordSignal(sig, sig.chans, info, e.Args[0], paramOf)
				}
			}
		case *ast.SendStmt:
			recordSignal(sig, sig.chans, info, e.Chan, paramOf)
		case *ast.UnaryExpr:
			// <-ctx.Done(): the goroutine's lifetime is bounded by context
			// cancellation; select cases reach here through their Comm exprs.
			if e.Op == token.ARROW {
				if call, ok := unparen(e.X).(*ast.CallExpr); ok {
					if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && !isWaitGroupExpr(info, sel.X) {
						sig.ctxBound = true
					}
				}
			}
		}
		return true
	})
	return sig
}

// recordSignal files the signal target: an owner-visible local object goes
// in the set; a field, global, or callee-local target marks the signal
// external (managed outside the owner).
func recordSignal(sig *goSignals, set map[types.Object]bool, info *types.Info, e ast.Expr, paramOf func(types.Object) types.Object) {
	obj := identObj(info, unparen(e))
	if obj == nil {
		sig.external = true
		return
	}
	if mapped := paramOf(obj); mapped != nil {
		if isLocalVar(mapped) {
			set[mapped] = true
			return
		}
	}
	sig.external = true
}

// isLocalVar reports whether obj is a function-local variable or parameter
// (as opposed to a package-level variable or a field).
func isLocalVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return v.Parent() != v.Pkg().Scope()
}

// signalsEscape reports whether any signal object leaves the owner through
// a return statement or a call to an unknown callee anywhere in the unit —
// in which case the join may legitimately happen outside this function.
func signalsEscape(p *ModulePass, fi *FuncInfo, body *ast.BlockStmt, g *ast.GoStmt, sig *goSignals) bool {
	tracked := func(e ast.Expr) bool {
		obj := identObj(fi.Pkg.Info, e)
		if obj == nil {
			// &wg escapes through the address-of below.
			if ue, ok := unparen(e).(*ast.UnaryExpr); ok && ue.Op == token.AND {
				obj = identObj(fi.Pkg.Info, ue.X)
			}
		}
		return obj != nil && (sig.wgs[obj] || sig.chans[obj])
	}
	escaped := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escaped {
			return false
		}
		switch e := n.(type) {
		case *ast.GoStmt:
			if e == g {
				return false // the launch itself is not an escape
			}
		case *ast.ReturnStmt:
			for _, res := range e.Results {
				if tracked(res) {
					escaped = true
				}
			}
		case *ast.CallExpr:
			if StaticCallee(fi.Pkg.Info, e) != nil {
				return true // known callee: handled by summaries at the join scan
			}
			if sel, ok := unparen(e.Fun).(*ast.SelectorExpr); ok {
				name := sel.Sel.Name
				// Methods on the signal objects themselves (wg.Add, ch ops)
				// are not escapes.
				if tracked(sel.X) || name == "Done" || name == "Wait" || name == "Add" {
					return true
				}
			}
			for _, arg := range e.Args {
				if tracked(arg) {
					escaped = true
				}
			}
		}
		return true
	})
	return escaped
}

// joinEvidence reports whether the statements contain proof the owner
// consumes one of the goroutine's completion signals: wg.Wait (directly or
// via a callee summarized as waiting), a receive from or range over a
// signalled channel.
func joinEvidence(p *ModulePass, fi *FuncInfo, stmts []ast.Stmt, sig *goSignals) bool {
	info := fi.Pkg.Info
	found := false
	for _, s := range stmts {
		if found {
			break
		}
		ast.Inspect(s, func(n ast.Node) bool {
			if found {
				return false
			}
			switch e := n.(type) {
			case *ast.CallExpr:
				if sel, ok := unparen(e.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" && len(e.Args) == 0 {
					if obj := identObj(info, sel.X); obj != nil && sig.wgs[obj] {
						found = true
						return false
					}
				}
				// A callee the summaries prove waits on the WaitGroup.
				if callee := StaticCallee(info, e); callee != nil {
					if sum := p.Mod.Sums.Of(callee); sum != nil {
						for i, arg := range e.Args {
							if i >= len(sum.WaitsOnParam) || !sum.WaitsOnParam[i] {
								continue
							}
							obj := identObj(info, arg)
							if obj == nil {
								if ue, ok := unparen(arg).(*ast.UnaryExpr); ok && ue.Op == token.AND {
									obj = identObj(info, ue.X)
								}
							}
							if obj != nil && sig.wgs[obj] {
								found = true
								return false
							}
						}
					}
				}
			case *ast.UnaryExpr:
				if e.Op == token.ARROW {
					if obj := identObj(info, e.X); obj != nil && sig.chans[obj] {
						found = true
						return false
					}
				}
			case *ast.RangeStmt:
				if obj := identObj(info, e.X); obj != nil && sig.chans[obj] {
					found = true
					return false
				}
			}
			return true
		})
	}
	return found
}

// waitSummarize records which *sync.WaitGroup parameters fi waits on,
// directly or through a callee already summarized as waiting. Monotone:
// bits only flip false→true.
func waitSummarize(fi *FuncInfo, s *Summaries, sum *FuncSummary) bool {
	if fi.Decl.Body == nil {
		return false
	}
	info := fi.Pkg.Info
	changed := false
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// A Wait inside a literal is not guaranteed to run on the
			// function's own control path.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" && len(call.Args) == 0 {
			if isWaitGroupExpr(info, sel.X) {
				if obj := identObj(info, sel.X); obj != nil {
					if setTrue(sum.WaitsOnParam, paramIndexOf(fi, obj)) {
						changed = true
					}
				}
			}
			return true
		}
		// Transitive: passing a WaitGroup parameter to a callee that waits.
		if callee := StaticCallee(info, call); callee != nil {
			if csum := s.Of(callee); csum != nil {
				for i, arg := range call.Args {
					if i >= len(csum.WaitsOnParam) || !csum.WaitsOnParam[i] {
						continue
					}
					obj := identObj(info, arg)
					if obj == nil {
						if ue, ok := unparen(arg).(*ast.UnaryExpr); ok && ue.Op == token.AND {
							obj = identObj(info, ue.X)
						}
					}
					if obj != nil && setTrue(sum.WaitsOnParam, paramIndexOf(fi, obj)) {
						changed = true
					}
				}
			}
		}
		return true
	})
	return changed
}

// isWaitGroupExpr reports whether e's type is sync.WaitGroup (or a pointer
// to it).
func isWaitGroupExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// isChanExpr reports whether e's type is a channel.
func isChanExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
