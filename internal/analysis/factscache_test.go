package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestPruneFactsDir: eviction keeps the newest max files by mtime and
// deletes the rest, abandoned writer temp files included, so the
// content-keyed cache directory stays bounded as edits mint new keys.
func TestPruneFactsDir(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	// Ten entries, oldest first: k00 is 10h old, k09 is 1h old.
	for i := 0; i < 10; i++ {
		name := filepath.Join(dir, fmt.Sprintf("k%02d.json", i))
		if err := os.WriteFile(name, []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
		mt := now.Add(-time.Duration(10-i) * time.Hour)
		if err := os.Chtimes(name, mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	// An abandoned temp file, older than every entry, and an unrelated file
	// pruning must never touch.
	tmp := filepath.Join(dir, "facts-dead.tmp")
	if err := os.WriteFile(tmp, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	old := now.Add(-24 * time.Hour)
	if err := os.Chtimes(tmp, old, old); err != nil {
		t.Fatal(err)
	}
	other := filepath.Join(dir, "README")
	if err := os.WriteFile(other, []byte("not a cache file"), 0o644); err != nil {
		t.Fatal(err)
	}

	pruneFactsDir(dir, 4)

	for i := 0; i < 10; i++ {
		name := filepath.Join(dir, fmt.Sprintf("k%02d.json", i))
		_, err := os.Stat(name)
		if i >= 6 && err != nil {
			t.Errorf("newest entry k%02d.json was evicted: %v", i, err)
		}
		if i < 6 && err == nil {
			t.Errorf("old entry k%02d.json survived a prune to 4", i)
		}
	}
	if _, err := os.Stat(tmp); err == nil {
		t.Error("abandoned temp file survived pruning")
	}
	if _, err := os.Stat(other); err != nil {
		t.Errorf("non-cache file was deleted: %v", err)
	}

	// Under the cap, pruning is a no-op.
	pruneFactsDir(dir, 100)
	if got := len(mustReadDir(t, dir)); got != 5 {
		t.Errorf("under-cap prune changed the directory: %d files, want 5", got)
	}
}

func mustReadDir(t *testing.T, dir string) []os.DirEntry {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return entries
}

// TestOpenFactsCachePrunes: the cap is applied on open, so long-lived cache
// directories (CI fast tier, ~/.cache/livenas-vet) self-trim without a
// separate GC step.
func TestOpenFactsCachePrunes(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	for i := 0; i < factsMaxEntries+25; i++ {
		name := filepath.Join(dir, fmt.Sprintf("k%05d.json", i))
		if err := os.WriteFile(name, []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
		// Spread mtimes so the eviction order is well-defined even on
		// coarse-mtime filesystems.
		mt := now.Add(-time.Duration(factsMaxEntries+25-i) * time.Second)
		if err := os.Chtimes(name, mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	c, err := OpenFactsCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Len(); got != factsMaxEntries {
		t.Errorf("after open: %d entries, want the cap %d", got, factsMaxEntries)
	}
	if _, err := os.Stat(filepath.Join(dir, "k00000.json")); err == nil {
		t.Error("oldest entry survived the on-open prune")
	}
}
