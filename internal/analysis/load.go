package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked, non-test package of the module
// under analysis.
type Package struct {
	// Path is the import path ("livenas/internal/sr").
	Path string
	// ModPath is the module path the package belongs to; checks use it to
	// distinguish module-internal types from stdlib ones.
	ModPath string
	// Dir is the absolute source directory.
	Dir string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// TypeErrors collects soft type-check errors. A buildable tree has
	// none; they are surfaced as warnings so the analyzer stays usable on
	// a broken tree.
	TypeErrors []error
}

// Loader loads and type-checks the packages of one module from source,
// using only the standard library: module-internal imports are resolved
// recursively from the module tree, everything else goes through the
// go/importer source importer (which type-checks GOROOT packages from
// source, so no compiled export data is required).
type Loader struct {
	Fset    *token.FileSet
	ModRoot string
	ModPath string

	std     types.Importer
	pkgs    map[string]*Package
	order   []string
	loading map[string]bool
}

// NewLoader returns a loader for the module rooted at modRoot with module
// path modPath.
func NewLoader(fset *token.FileSet, modRoot, modPath string) *Loader {
	return &Loader{
		Fset:    fset,
		ModRoot: modRoot,
		ModPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// LoadAll loads every non-test package under the module root, skipping
// testdata, hidden, and underscore-prefixed directories. Packages are
// returned in a deterministic (import-before-importer) order.
func (l *Loader) LoadAll() ([]*Package, error) {
	dirs, err := moduleGoDirs(l.ModRoot)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModRoot, dir)
		if err != nil {
			return nil, err
		}
		ip := l.ModPath
		if rel != "." {
			ip = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, ip)
	}
	return l.LoadPackages(paths)
}

// LoadPackages loads the named module-internal packages plus (implicitly,
// via import resolution) their module-internal dependency closure. The
// returned slice covers everything loaded, in import-before-importer
// order — the subset the incremental driver needs when only some packages
// are dirty.
func (l *Loader) LoadPackages(paths []string) ([]*Package, error) {
	for _, ip := range paths {
		if _, err := l.load(ip); err != nil {
			return nil, fmt.Errorf("analysis: load %s: %w", ip, err)
		}
	}
	out := make([]*Package, 0, len(l.order))
	for _, ip := range l.order {
		out = append(out, l.pkgs[ip])
	}
	return out, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// dirFor maps a module-internal import path to its source directory.
func (l *Loader) dirFor(importPath string) string {
	if importPath == l.ModPath {
		return l.ModRoot
	}
	rel := strings.TrimPrefix(importPath, l.ModPath+"/")
	return filepath.Join(l.ModRoot, filepath.FromSlash(rel))
}

// load parses and type-checks one module-internal package (memoised).
func (l *Loader) load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	dir := l.dirFor(importPath)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Mirror the compiler's file selection (GOOS/GOARCH filename
		// suffixes and //go:build constraints) so per-architecture kernel
		// variants don't collide in the type-checker.
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}

	pkg := &Package{
		Path:    importPath,
		ModPath: l.ModPath,
		Dir:     dir,
		Fset:    l.Fset,
		Files:   files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns a usable (if partial) package even when soft errors
	// were reported; those are surfaced through TypeErrors instead.
	pkg.Types, _ = conf.Check(importPath, l.Fset, files, pkg.Info)
	l.pkgs[importPath] = pkg
	l.order = append(l.order, importPath)
	return pkg, nil
}

// Import implements types.Importer, routing module-internal paths to the
// recursive source loader and everything else to the stdlib importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}
