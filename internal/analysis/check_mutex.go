package analysis

import (
	"go/ast"
	"go/types"
)

// MutexHygiene flags a sync.Mutex/RWMutex Lock or RLock statement that is
// not immediately followed by the matching `defer Unlock` on the same
// receiver. Manual unlock-on-every-path is how the trainer/processor model
// sharing grows unlock-leak bugs under refactoring; the project convention
// is lock-then-defer, with //livenas:allow mutex-hygiene for the rare
// deliberate hand-over-hand pattern.
var MutexHygiene = &Check{
	Name: "mutex-hygiene",
	Doc: "mu.Lock()/mu.RLock() not immediately followed by the matching " +
		"defer mu.Unlock()/mu.RUnlock(); use lock-then-defer or annotate " +
		"with //livenas:allow mutex-hygiene",
	Run: runMutexHygiene,
}

// unlockFor maps a lock method to its required unlock counterpart.
var unlockFor = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

func runMutexHygiene(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, st := range block.List {
				recv, lockName := mutexCall(p, st, "Lock", "RLock")
				if lockName == "" {
					continue
				}
				want := unlockFor[lockName]
				if i+1 < len(block.List) {
					if def, ok := block.List[i+1].(*ast.DeferStmt); ok {
						if sel, ok := unparen(def.Call.Fun).(*ast.SelectorExpr); ok &&
							sel.Sel.Name == want && types.ExprString(sel.X) == recv {
							continue
						}
					}
				}
				p.Reportf(st.Pos(), "%s.%s() is not immediately followed by defer %s.%s()", recv, lockName, recv, want)
			}
			return true
		})
	}
}

// mutexCall reports the receiver expression and method name if st is a
// bare call to one of the given sync.Mutex/RWMutex methods.
func mutexCall(p *Pass, st ast.Stmt, names ...string) (recv, method string) {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return "", ""
	}
	call, ok := unparen(es.X).(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	match := false
	for _, n := range names {
		if sel.Sel.Name == n {
			match = true
		}
	}
	if !match || !isSyncMutex(p.Pkg.Info.TypeOf(sel.X)) {
		return "", ""
	}
	return types.ExprString(sel.X), sel.Sel.Name
}

func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}
