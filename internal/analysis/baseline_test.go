package analysis

import (
	"bytes"
	"flag"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current analyzer output")

// TestRenderJSONGolden locks down the -json wire format against a committed
// golden file: stable position-sorted ordering, slash-separated module-root-
// relative paths, and an array (never null) even for the single-finding
// case. Regenerate with `go test ./internal/analysis -run Golden -update`.
func TestRenderJSONGolden(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src", "arenalifetime"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs := loadFixture(t, "arenalifetime")
	diags := Run(pkgs, []*Check{CheckByName("arena-lifetime")})
	if len(diags) == 0 {
		t.Fatal("fixture produced no findings")
	}
	var buf bytes.Buffer
	if err := RenderJSON(&buf, diags, root); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "golden", "arenalifetime.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got := buf.Bytes(); !bytes.Equal(got, want) {
		t.Errorf("JSON output drifted from golden file (run with -update if intended)\ngot:\n%s\nwant:\n%s", got, want)
	}
	// Paths must never leak the checkout location.
	if strings.Contains(buf.String(), root) {
		t.Errorf("JSON output contains absolute paths:\n%s", buf.String())
	}
}

// TestRaceGuardJSONGolden locks down race-guard's -json wire format: stable
// module-relative paths, the suppression withheld from the output, and a
// message that survives the baseline round-trip (NewBaseline on the
// findings, once justified, must validate and then cover exactly those
// findings with nothing stale). Regenerate with
// `go test ./internal/analysis -run Golden -update`.
func TestRaceGuardJSONGolden(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src", "raceguard"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs := loadFixture(t, "raceguard")
	diags := Run(pkgs, []*Check{CheckByName("race-guard")})
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want exactly 1 (the suppressed Audited site must be withheld): %v", len(diags), diags)
	}
	var buf bytes.Buffer
	if err := RenderJSON(&buf, diags, root); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "golden", "raceguard.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got := buf.Bytes(); !bytes.Equal(got, want) {
		t.Errorf("JSON output drifted from golden file (run with -update if intended)\ngot:\n%s\nwant:\n%s", got, want)
	}
	if strings.Contains(buf.String(), root) {
		t.Errorf("JSON output contains absolute paths:\n%s", buf.String())
	}

	// Baseline round-trip: regenerating from the findings and justifying the
	// entry must produce a baseline that validates and covers exactly the
	// current findings.
	b := NewBaseline(diags, nil)
	if err := b.Validate(); err == nil {
		t.Error("freshly generated baseline validated with an empty justification")
	}
	for i := range b.Findings {
		b.Findings[i].Justification = "test acceptance"
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("justified baseline failed to validate: %v", err)
	}
	fresh, stale := b.Apply(diags)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Errorf("baseline round-trip: fresh=%v stale=%v, want none", fresh, stale)
	}
}

func mkDiag(check, pkg, msg, file string, line int) Diagnostic {
	return Diagnostic{
		Pos:     token.Position{Filename: file, Line: line, Column: 2},
		Check:   check,
		PkgPath: pkg,
		Message: msg,
	}
}

// TestBaselineApplyIgnoresMovedFindings proves the matching contract:
// entries identify findings by check+package+message, never by position,
// so a finding that moves (file renamed, lines shifted) stays covered
// while any change to the message surfaces as fresh.
func TestBaselineApplyIgnoresMovedFindings(t *testing.T) {
	b := &Baseline{Findings: []BaselineEntry{{
		Check:         "lock-order",
		Package:       "livenas/internal/sr",
		Message:       "cycle on Model.mu",
		Justification: "documented one-way copy contract",
	}}}

	// Same finding at a completely different position: still covered.
	fresh, stale := b.Apply([]Diagnostic{
		mkDiag("lock-order", "livenas/internal/sr", "cycle on Model.mu", "renamed.go", 999),
	})
	if len(fresh) != 0 {
		t.Errorf("moved finding reported fresh: %v", fresh)
	}
	if len(stale) != 0 {
		t.Errorf("matched entry reported stale: %v", stale)
	}

	// Different message in the same package: fresh, and the entry is stale.
	fresh, stale = b.Apply([]Diagnostic{
		mkDiag("lock-order", "livenas/internal/sr", "a different cycle", "model.go", 143),
	})
	if len(fresh) != 1 {
		t.Errorf("new finding not reported fresh: %v", fresh)
	}
	if len(stale) != 1 {
		t.Errorf("unmatched entry not reported stale: %v", stale)
	}
}

func TestBaselineValidate(t *testing.T) {
	ok := BaselineEntry{
		Check:         "lock-order",
		Package:       "p",
		Message:       "m",
		Justification: "j",
	}
	cases := []struct {
		name    string
		entries []BaselineEntry
		wantErr string
	}{
		{"valid", []BaselineEntry{ok}, ""},
		{"empty justification", []BaselineEntry{{Check: "lock-order", Package: "p", Message: "m"}}, "empty justification"},
		{"unknown check", []BaselineEntry{{Check: "no-such-check", Package: "p", Message: "m", Justification: "j"}}, "unknown check"},
		{"missing fields", []BaselineEntry{{Check: "lock-order", Justification: "j"}}, "required"},
		{"duplicate", []BaselineEntry{ok, ok}, "duplicate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := (&Baseline{Findings: tc.entries}).Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("got %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestNewBaselineCarriesJustifications checks regeneration semantics:
// persisting findings keep their justification, new ones get an empty
// string (so the file refuses to load until a human fills it in), and
// duplicate diagnostics collapse to one sorted entry.
func TestNewBaselineCarriesJustifications(t *testing.T) {
	prev := &Baseline{Findings: []BaselineEntry{{
		Check: "lock-order", Package: "p", Message: "old", Justification: "keep me",
	}}}
	b := NewBaseline([]Diagnostic{
		mkDiag("mutex-hygiene", "q", "new finding", "f.go", 2),
		mkDiag("lock-order", "p", "old", "f.go", 9),
		mkDiag("lock-order", "p", "old", "g.go", 1), // duplicate message, other file
	}, prev)
	if len(b.Findings) != 2 {
		t.Fatalf("got %d entries, want 2: %+v", len(b.Findings), b.Findings)
	}
	// Sorted by check name: lock-order first.
	if b.Findings[0].Justification != "keep me" {
		t.Errorf("persisting entry lost its justification: %+v", b.Findings[0])
	}
	if b.Findings[1].Justification != "" {
		t.Errorf("new entry should have empty justification: %+v", b.Findings[1])
	}
	if err := b.Validate(); err == nil {
		t.Error("baseline with an unjustified entry must not validate")
	}
}
