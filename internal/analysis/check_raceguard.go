package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// RaceGuard is RacerD-style compositional lockset race detection. It infers,
// per named struct type, which lock class guards each field — the class (as
// extracted by check_lockorder.go's lockClassOf) held on the strict majority
// of the field's accesses module-wide — and then reports every
// concurrently-reachable access to an inferred-guarded field whose lockset
// is empty.
//
// Three passes feed the verdict:
//
//  1. Guarded-by inference. Every function body and function literal is one
//     analysis unit; the lock-order check's held-set dataflow (lockFlow)
//     yields the intra-unit lock classes in force at each field access, and
//     the interprocedural entry set (pass 3) is unioned in. Accesses in a
//     unit's ownership phase (through a local the unit itself constructed)
//     and //livenas:allow race-guard sites are withheld from the tally —
//     PR-6 fact-withholding semantics: a suppressed bare access neither
//     votes against the guard nor reports.
//
//  2. Concurrency reachability, reusing the goroutine-leak check's
//     go-statement modeling: the static callees of go statements and every
//     call made inside a go'd literal seed a walk over the call graph;
//     functions reachable from those seeds run on more than one goroutine
//     root (the initial goroutine plus at least one spawn). Accesses inside
//     a spawned literal, in a seed-reachable function, or textually after
//     the first go statement of their own unit count as concurrent;
//     everything else is the init-then-publish ownership phase and is
//     exempt.
//
//  3. Locks-held-on-entry (FuncSummary.EntryLocks), propagated top-down
//     along static call edges: a function's entry set is the intersection
//     over all its static call sites of the locks held there (caller entry
//     set included), with go-spawn sites contributing the empty set because
//     a goroutine starts lock-free. A helper called only under mu.Lock()
//     therefore inherits the lock and is not flagged.
//
// Fields accessed through sync/atomic anywhere defer entirely to the
// atomic-consistency check, and fields of sync/sync-atomic type are never
// tracked (mutex-hygiene territory).
//
// Global: the guard of a field is inferred from accesses in arbitrary
// packages, so a finding in package P can appear or vanish when any other
// package changes — the same soundness reasoning that makes lock-order
// global. The incremental driver keys its cache on the whole target set.
var RaceGuard = &Check{
	Name: raceGuardName,
	Doc: "a struct field is lock-guarded on the majority of its accesses " +
		"module-wide but this concurrently-reachable access holds no lock; " +
		"acquire the inferred guard, or annotate a proven-safe site with " +
		"//livenas:allow race-guard",
	RunModule: runRaceGuard,
	Global:    true,
}

// raceGuardName is the registry name, as a constant so the runner can refer
// to it without an initialization cycle through the Check variable.
const raceGuardName = "race-guard"

// rgUnit is one analysis unit: a declared function body, or one function
// literal nested in it. Literals are separate units because their lockset
// context differs — a go'd literal starts lock-free on a fresh goroutine,
// any other literal is assumed to run where it was created, under the held
// set at its statement.
type rgUnit struct {
	fi      *FuncInfo
	lit     *ast.FuncLit // nil for the declaration unit
	parent  *rgUnit      // enclosing unit for literals
	spawned bool         // launched by a go statement
	litHeld heldFact     // parent's intra-unit held set at the literal
	firstGo token.Pos    // first go statement in this unit, or NoPos

	calls []rgCall
	owned map[types.Object]bool // locals constructed by this unit
}

// rgAccess is one syntactic field access.
type rgAccess struct {
	field    *types.Var
	pos      token.Pos
	held     heldFact // intra-unit held set (entry set unioned in later)
	unit     *rgUnit
	write    bool
	owned    bool // base chain roots at a unit-constructed local
	withheld bool // //livenas:allow race-guard covers the site
}

// rgCall is one static call site, with the intra-unit held set in force.
type rgCall struct {
	callee *types.Func
	held   heldFact
	spawn  bool // go f(...): the callee starts lock-free
}

type raceGuard struct {
	p            *ModulePass
	units        []*rgUnit
	accesses     []*rgAccess // module order: sorted decls, walk order within
	fieldName    map[*types.Var]string
	atomicFields map[*types.Var]bool
	concurrent   map[*types.Func]bool
	entry        map[*types.Func]heldFact
}

func runRaceGuard(p *ModulePass) {
	rg := &raceGuard{
		p:            p,
		fieldName:    map[*types.Var]string{},
		atomicFields: map[*types.Var]bool{},
	}
	rg.indexFields()
	if len(rg.fieldName) == 0 {
		return
	}
	nodes := make([]*FuncInfo, 0, len(p.Mod.Graph.Nodes))
	nodes = append(nodes, p.Mod.Graph.Nodes...)
	sortNodesByPos(nodes)
	for _, fi := range nodes {
		if fi.Decl.Body == nil {
			continue
		}
		rg.collectUnit(fi, fi.Decl.Body, nil, nil, false, nil)
	}
	rg.markConcurrent()
	rg.propagateEntryLocks()
	rg.report()
}

// indexFields names every field of a package-level named struct type in the
// module, skipping fields whose type lives in sync or sync/atomic: those
// synchronize themselves and belong to mutex-hygiene / atomic-consistency.
func (rg *raceGuard) indexFields() {
	for _, pkg := range rg.p.Mod.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, fld := range st.Fields.List {
						for _, nm := range fld.Names {
							v, ok := pkg.Info.Defs[nm].(*types.Var)
							if !ok || syncFamilyType(v.Type()) {
								continue
							}
							rg.fieldName[v] = pkg.Path + "." + ts.Name.Name + "." + nm.Name
						}
					}
				}
			}
		}
	}
}

// syncFamilyType reports whether t (possibly behind a pointer) is declared
// in sync or sync/atomic.
func syncFamilyType(t types.Type) bool {
	named := namedTypeOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	p := named.Obj().Pkg().Path()
	return p == "sync" || p == "sync/atomic"
}

// collectUnit runs the held-set dataflow over one body and records its field
// accesses, static call sites, spawn points, and owned locals. Literals met
// along the way recurse as child units.
func (rg *raceGuard) collectUnit(fi *FuncInfo, body *ast.BlockStmt, lit *ast.FuncLit, parent *rgUnit, spawned bool, litHeld heldFact) {
	u := &rgUnit{
		fi: fi, lit: lit, parent: parent, spawned: spawned, litHeld: litHeld,
		owned: map[types.Object]bool{},
	}
	rg.units = append(rg.units, u)
	pkg := fi.Pkg
	flow := &lockFlow{pkg: pkg}
	cfg := BuildCFG(body)
	facts := Forward(cfg, flow)
	WalkFacts(cfg, flow, facts, func(stmt ast.Stmt, before Fact) {
		held := before.(heldFact)
		writes := stmtWrites(stmt)
		switch st := stmt.(type) {
		case *ast.GoStmt:
			if u.firstGo == token.NoPos {
				u.firstGo = st.Pos()
			}
			if inner, ok := unparen(st.Call.Fun).(*ast.FuncLit); ok {
				rg.collectUnit(fi, inner.Body, inner, u, true, copyHeld(held))
			} else {
				if callee := StaticCallee(pkg.Info, st.Call); callee != nil {
					u.calls = append(u.calls, rgCall{callee: callee, held: copyHeld(held), spawn: true})
				}
				// The receiver chain is still evaluated on this goroutine.
				if sel, ok := unparen(st.Call.Fun).(*ast.SelectorExpr); ok {
					rg.walkExpr(u, sel.X, held, writes)
				}
			}
			for _, a := range st.Call.Args {
				rg.walkExpr(u, a, held, writes)
			}
		case *ast.DeferStmt:
			// Deferred calls run at exit; the lock-then-defer-unlock shape
			// makes the registration-time held set the right approximation
			// (lockOps keeps deferred unlocks out of the flow).
			rg.walkExpr(u, st.Call, held, writes)
		default:
			for _, e := range ExprsOf(stmt) {
				rg.walkExpr(u, e, held, writes)
			}
			rg.noteOwned(u, stmt)
		}
	})
}

// walkExpr records accesses and calls in one header expression, recursing
// into child units at literal boundaries.
func (rg *raceGuard) walkExpr(u *rgUnit, expr ast.Expr, held heldFact, writes map[ast.Expr]bool) {
	pkg := u.fi.Pkg
	exemptSel := map[ast.Expr]bool{}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			rg.collectUnit(u.fi, e.Body, e, u, false, copyHeld(held))
			return false
		case *ast.UnaryExpr:
			// Address-taken counts as a write: the pointer can escape.
			if e.Op == token.AND {
				writes[unparen(e.X)] = true
			}
		case *ast.CallExpr:
			if isAtomicPkgFunc(pkg.Info, e) && len(e.Args) > 0 {
				if obj, _ := atomicTargetObj(pkg.Info, e.Args[0]); obj != nil {
					if v, ok := obj.(*types.Var); ok && v.IsField() {
						rg.atomicFields[v] = true
					}
					if uo, ok := unparen(e.Args[0]).(*ast.UnaryExpr); ok {
						exemptSel[unparen(uo.X)] = true
					}
				}
				return true
			}
			if callee := StaticCallee(pkg.Info, e); callee != nil {
				u.calls = append(u.calls, rgCall{callee: callee, held: copyHeld(held)})
			}
		case *ast.SelectorExpr:
			if exemptSel[e] {
				return true // the atomic op itself; base chain still read
			}
			sel, ok := pkg.Info.Selections[e]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			fv, ok := sel.Obj().(*types.Var)
			if !ok {
				return true
			}
			if _, tracked := rg.fieldName[fv]; !tracked {
				return true
			}
			a := &rgAccess{
				field: fv,
				pos:   e.Sel.Pos(),
				held:  copyHeld(held),
				unit:  u,
				write: writes[e],
				owned: u.owned[rootObj(pkg, e.X)],
				withheld: rg.p.supp.suppressed(
					raceGuardName, pkg.Fset.Position(e.Sel.Pos())),
			}
			rg.accesses = append(rg.accesses, a)
		}
		return true
	})
}

// stmtWrites marks the expressions a statement assigns to.
func stmtWrites(stmt ast.Stmt) map[ast.Expr]bool {
	writes := map[ast.Expr]bool{}
	switch st := stmt.(type) {
	case *ast.AssignStmt:
		for _, l := range st.Lhs {
			writes[unparen(l)] = true
		}
	case *ast.IncDecStmt:
		writes[unparen(st.X)] = true
	}
	return writes
}

// noteOwned records locals the unit constructs itself (x := &T{...}, T{...},
// or new(T)): accesses through them are the init-then-publish ownership
// phase — nothing else can hold the value yet — and are exempt from both the
// guard tally and reporting. Child units never inherit ownership: a value
// captured by a spawned literal is shared by definition.
func (rg *raceGuard) noteOwned(u *rgUnit, stmt ast.Stmt) {
	pkg := u.fi.Pkg
	note := func(name *ast.Ident, val ast.Expr) {
		if name == nil || val == nil || !isFreshValue(pkg, val) {
			return
		}
		obj := pkg.Info.Defs[name]
		if obj == nil {
			obj = pkg.Info.Uses[name]
		}
		if obj != nil && !isPackageLevel(obj) {
			u.owned[obj] = true
		}
	}
	switch st := stmt.(type) {
	case *ast.AssignStmt:
		if len(st.Lhs) != len(st.Rhs) {
			return
		}
		for i, l := range st.Lhs {
			if id, ok := unparen(l).(*ast.Ident); ok {
				note(id, unparen(st.Rhs[i]))
			}
		}
	case *ast.DeclStmt:
		gd, ok := st.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Names) != len(vs.Values) {
				continue
			}
			for i, nm := range vs.Names {
				note(nm, unparen(vs.Values[i]))
			}
		}
	}
}

// isFreshValue reports whether e constructs a brand-new value: a composite
// literal, its address, or a call to the new builtin.
func isFreshValue(pkg *Package, e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			_, ok := unparen(v.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := unparen(v.Fun).(*ast.Ident); ok {
			if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "new" {
				return true
			}
		}
	}
	return false
}

// rootObj resolves the object at the root of a selector/index/deref chain.
func rootObj(pkg *Package, e ast.Expr) types.Object {
	for {
		switch x := unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			if o := pkg.Info.Uses[x]; o != nil {
				return o
			}
			return pkg.Info.Defs[x]
		default:
			return nil
		}
	}
}

// markConcurrent seeds the goroutine-reachability walk: static callees of go
// statements, plus every call made from inside a spawned literal (or a
// literal nested in one), then the closure over static call edges.
func (rg *raceGuard) markConcurrent() {
	inSpawnChain := func(u *rgUnit) bool {
		for ; u != nil; u = u.parent {
			if u.spawned {
				return true
			}
		}
		return false
	}
	rg.concurrent = map[*types.Func]bool{}
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if rg.concurrent[fn] {
			return
		}
		rg.concurrent[fn] = true
		if fi := rg.p.Mod.Graph.Funcs[fn]; fi != nil {
			for _, callee := range fi.Callees {
				visit(callee.Obj)
			}
		}
	}
	for _, u := range rg.units {
		chain := inSpawnChain(u)
		for _, c := range u.calls {
			if c.spawn || chain {
				visit(c.callee)
			}
		}
	}
}

// unitConcurrent reports whether code in u runs on more than one goroutine
// root: the unit (or an ancestor literal) was go'd, or its function is
// reachable from a spawn seed through the call graph.
func (rg *raceGuard) unitConcurrent(u *rgUnit) bool {
	for v := u; v != nil; v = v.parent {
		if v.spawned {
			return true
		}
	}
	return rg.concurrent[u.fi.Obj]
}

// accessConcurrent adds the intra-unit phase split: even in a function that
// is itself single-rooted, accesses after its first go statement race with
// the goroutine it just spawned. Everything before the first spawn is the
// init-then-publish ownership phase.
func (rg *raceGuard) accessConcurrent(a *rgAccess) bool {
	if rg.unitConcurrent(a.unit) {
		return true
	}
	return a.unit.firstGo != token.NoPos && a.pos > a.unit.firstGo
}

// propagateEntryLocks computes FuncSummary.EntryLocks: the intersection,
// over every static call site of a function, of the locks held there (the
// caller's own entry set included). Go-spawn sites contribute the empty set
// — a goroutine starts lock-free. The propagation is top-down and monotone
// increasing from the empty map, so the fixpoint is the least one: a lock is
// only credited on entry when EVERY known call site holds it.
func (rg *raceGuard) propagateEntryLocks() {
	entry := map[*types.Func]heldFact{}
	for iter := 0; iter < len(rg.units)+8; iter++ {
		next := map[*types.Func]heldFact{}
		for _, u := range rg.units {
			eu := rg.unitEntry(u, entry)
			for _, c := range u.calls {
				if rg.p.Mod.Graph.Funcs[c.callee] == nil {
					continue
				}
				var site heldFact
				if !c.spawn {
					site = unionHeld(c.held, eu)
				}
				if prev, seen := next[c.callee]; seen {
					next[c.callee] = intersectHeld(prev, site)
				} else {
					next[c.callee] = copyHeld(site)
				}
			}
		}
		done := entrySetsEqual(entry, next)
		entry = next
		if done {
			break
		}
	}
	rg.entry = entry
	for fn, e := range entry {
		if sum := rg.p.Mod.Sums.Of(fn); sum != nil {
			sum.EntryLocks = copyHeld(e)
		}
	}
}

// unitEntry is the lockset a unit starts with: a declared function gets its
// propagated entry set, a spawned literal starts lock-free, and any other
// literal runs where it was created — the held set at its statement plus the
// parent's own entry.
func (rg *raceGuard) unitEntry(u *rgUnit, entry map[*types.Func]heldFact) heldFact {
	if u.lit == nil {
		return entry[u.fi.Obj]
	}
	if u.spawned {
		return nil
	}
	return unionHeld(u.litHeld, rg.unitEntry(u.parent, entry))
}

// report tallies the guard votes and flags bare concurrent accesses.
func (rg *raceGuard) report() {
	type tally struct {
		total   int
		byClass map[string]int
	}
	lockset := func(a *rgAccess) heldFact {
		return unionHeld(a.held, rg.unitEntry(a.unit, rg.entry))
	}
	tallies := map[*types.Var]*tally{}
	for _, a := range rg.accesses {
		if a.owned || a.withheld || rg.atomicFields[a.field] {
			continue
		}
		t := tallies[a.field]
		if t == nil {
			t = &tally{byClass: map[string]int{}}
			tallies[a.field] = t
		}
		t.total++
		for c := range lockset(a) {
			t.byClass[c]++
		}
	}
	guard := map[*types.Var]string{}
	for f, t := range tallies {
		classes := make([]string, 0, len(t.byClass))
		for c := range t.byClass {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		best, bestN := "", 0
		for _, c := range classes {
			if t.byClass[c] > bestN {
				best, bestN = c, t.byClass[c]
			}
		}
		// Strict majority with at least two guarded accesses: one locked
		// access among one or two total is a coincidence, not a protocol.
		if bestN >= 2 && bestN*2 > t.total {
			guard[f] = best
		}
	}
	for _, a := range rg.accesses {
		g, guarded := guard[a.field]
		if !guarded || a.owned || a.withheld || rg.atomicFields[a.field] {
			continue
		}
		if len(lockset(a)) > 0 || !rg.accessConcurrent(a) {
			continue
		}
		verb := "read of"
		if a.write {
			verb = "write to"
		}
		rg.p.Reportf(a.pos,
			"bare %s %s, whose accesses elsewhere hold %s: this site is concurrently reachable with an empty lockset; acquire the guard or annotate //livenas:allow race-guard",
			verb, rg.fieldName[a.field], g)
	}
}

// copyHeld clones a held set (nil-safe, never returns nil).
func copyHeld(f heldFact) heldFact {
	out := make(heldFact, len(f))
	for k := range f {
		out[k] = true
	}
	return out
}

// unionHeld returns a ∪ b without mutating either (shares when one is empty).
func unionHeld(a, b heldFact) heldFact {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make(heldFact, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

// intersectHeld returns a ∩ b without mutating either.
func intersectHeld(a, b heldFact) heldFact {
	out := heldFact{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func entrySetsEqual(a, b map[*types.Func]heldFact) bool {
	if len(a) != len(b) {
		return false
	}
	for fn, av := range a {
		bv, ok := b[fn]
		if !ok || len(av) != len(bv) {
			return false
		}
		for k := range av {
			if !bv[k] {
				return false
			}
		}
	}
	return true
}
