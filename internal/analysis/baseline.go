package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// This file implements the analyzer's machine-readable surface: -json
// rendering and the committed-baseline workflow (analysis/baseline.json).
// A baseline entry identifies a finding by check name, package path, and
// message — deliberately not by file position, so a finding that merely
// moves (its file is renamed, code above it grows) stays matched while a
// genuinely new finding of the same check in the same package with a
// different message fails the gate. Every entry must carry a human
// justification; an empty one is a hard configuration error, so the
// baseline cannot become a silent suppression list.

// A JSONDiagnostic is the stable wire form of one finding. File paths are
// normalized to slash-separated module-root-relative form so output is
// reproducible across checkouts.
type JSONDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Package string `json:"package"`
	Message string `json:"message"`
}

// RenderJSON writes the diagnostics as an indented JSON array (always an
// array, never null) in stable order: Run already sorts by position, and
// the normalized paths keep that order machine-comparable.
func RenderJSON(w io.Writer, diags []Diagnostic, root string) error {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, JSONDiagnostic{
			File:    normalizePath(d.Pos.Filename, root),
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Check:   d.Check,
			Package: d.PkgPath,
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// normalizePath makes filename root-relative with forward slashes; a file
// outside root keeps its original (slash-normalized) path.
func normalizePath(filename, root string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, filename); err == nil && !isDotDot(rel) {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filename)
}

func isDotDot(rel string) bool {
	return rel == ".." || len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}

// A BaselineEntry is one accepted finding with its justification.
type BaselineEntry struct {
	Check         string `json:"check"`
	Package       string `json:"package"`
	Message       string `json:"message"`
	Justification string `json:"justification"`
}

func (e BaselineEntry) key() string {
	return e.Check + "\x00" + e.Package + "\x00" + e.Message
}

// A Baseline is the committed set of accepted findings.
type Baseline struct {
	// Comment explains the file to readers; the tool ignores it.
	Comment  string          `json:"comment,omitempty"`
	Findings []BaselineEntry `json:"findings"`
}

// LoadBaseline reads and validates a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &b, nil
}

// Validate enforces the no-silent-suppressions contract: every entry names
// a known check and carries a non-empty justification, and no entry is
// duplicated.
func (b *Baseline) Validate() error {
	seen := map[string]bool{}
	for i, e := range b.Findings {
		if e.Check == "" || e.Package == "" || e.Message == "" {
			return fmt.Errorf("findings[%d]: check, package, and message are all required", i)
		}
		if CheckByName(e.Check) == nil {
			return fmt.Errorf("findings[%d]: unknown check %q", i, e.Check)
		}
		if e.Justification == "" {
			return fmt.Errorf("findings[%d] (%s in %s): empty justification; explain why this finding is accepted", i, e.Check, e.Package)
		}
		if seen[e.key()] {
			return fmt.Errorf("findings[%d]: duplicate entry for %s in %s", i, e.Check, e.Package)
		}
		seen[e.key()] = true
	}
	return nil
}

// Apply splits diagnostics into new findings (not covered by the baseline)
// and reports which entries are stale (matched nothing — the underlying
// issue was fixed and the entry should be removed). Matching is by
// check+package+message, so findings that moved lines stay covered.
func (b *Baseline) Apply(diags []Diagnostic) (fresh []Diagnostic, stale []BaselineEntry) {
	matched := map[string]bool{}
	covered := map[string]bool{}
	for _, e := range b.Findings {
		covered[e.key()] = true
	}
	for _, d := range diags {
		k := diagKey(d)
		if covered[k] {
			matched[k] = true
			continue
		}
		fresh = append(fresh, d)
	}
	for _, e := range b.Findings {
		if !matched[e.key()] {
			stale = append(stale, e)
		}
	}
	return fresh, stale
}

func diagKey(d Diagnostic) string {
	return d.Check + "\x00" + d.PkgPath + "\x00" + d.Message
}

// NewBaseline builds a baseline accepting the given diagnostics, carrying
// over justifications from prev for entries that persist. Entries for new
// findings get an empty justification, which Validate rejects — the author
// must fill them in before the baseline loads, keeping every acceptance
// deliberate.
func NewBaseline(diags []Diagnostic, prev *Baseline) *Baseline {
	just := map[string]string{}
	if prev != nil {
		for _, e := range prev.Findings {
			just[e.key()] = e.Justification
		}
	}
	b := &Baseline{
		Comment: "Accepted livenas-vet findings. Regenerate with scripts/vet-baseline.sh; every entry needs a justification.",
	}
	seen := map[string]bool{}
	for _, d := range diags {
		e := BaselineEntry{Check: d.Check, Package: d.PkgPath, Message: d.Message}
		if seen[e.key()] {
			continue
		}
		seen[e.key()] = true
		e.Justification = just[e.key()]
		b.Findings = append(b.Findings, e)
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.Check != c.Check {
			return a.Check < c.Check
		}
		if a.Package != c.Package {
			return a.Package < c.Package
		}
		return a.Message < c.Message
	})
	return b
}

// WriteBaseline writes the baseline as indented JSON. HTML escaping is
// off so justifications keep characters like "->" readable in diffs.
func (b *Baseline) WriteBaseline(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
