package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotLoopPrecision flags float64⇄float32 conversions inside loops in the
// numeric kernels (internal/nn, internal/sr). Each conversion in the
// gradient and inference loops costs real time and silently changes
// accumulation semantics; hoist the conversion out of the loop, keep the
// arithmetic in one precision, or annotate a deliberately mixed-precision
// loop with //livenas:allow hot-loop-precision.
var HotLoopPrecision = &Check{
	Name: "hot-loop-precision",
	Doc: "float64⇄float32 conversion inside a loop in a numeric kernel " +
		"package; hoist it, unify the precision, or annotate with " +
		"//livenas:allow hot-loop-precision",
	Run: runHotLoopPrecision,
}

// hotLoopScope names the path segments of the numeric kernel packages.
var hotLoopScope = []string{"nn", "sr"}

func runHotLoopPrecision(p *Pass) {
	if !hasSegment(p.Pkg.Path, hotLoopScope...) {
		return
	}
	// Nested loops revisit inner bodies; dedupe by position.
	seen := map[token.Pos]bool{}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			ast.Inspect(body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 || seen[call.Pos()] {
					return true
				}
				if from, to, ok := crossFloatConversion(p, call); ok {
					seen[call.Pos()] = true
					p.Reportf(call.Pos(), "%s→%s conversion inside a hot loop; hoist it or keep the arithmetic in one precision", from, to)
				}
				return true
			})
			return true
		})
	}
}

// crossFloatConversion reports whether call is a float64(float32-expr) or
// float32(float64-expr) conversion of a non-constant operand.
func crossFloatConversion(p *Pass, call *ast.CallExpr) (from, to string, ok bool) {
	tv, found := p.Pkg.Info.Types[call.Fun]
	if !found || !tv.IsType() {
		return "", "", false
	}
	toKind, ok := floatKind(tv.Type)
	if !ok {
		return "", "", false
	}
	argTV, found := p.Pkg.Info.Types[call.Args[0]]
	if !found || argTV.Value != nil { // constant conversions are free
		return "", "", false
	}
	fromKind, ok := floatKind(argTV.Type)
	if !ok || fromKind == toKind {
		return "", "", false
	}
	return fromKind, toKind, true
}

func floatKind(t types.Type) (string, bool) {
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return "", false
	}
	switch basic.Kind() {
	case types.Float32:
		return "float32", true
	case types.Float64:
		return "float64", true
	}
	return "", false
}
