package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotLoopPrecision flags two hot-loop anti-patterns in the numeric kernels:
// precision-crossing numeric conversions inside loops (internal/nn,
// internal/sr) and per-element At/Set accessor calls inside loops
// (internal/nn only). The conversion rule covers float64⇄float32 and, since
// the int8 inference path landed, sized signed integers (int8/int16/int32)
// to or from a float — a quantize/dequantize step hiding in a loop body,
// which belongs in the fused requant epilogue or a hoisted LUT. Plain int
// (index arithmetic), int64 (counters) and uint8 (pixel I/O, e.g. ToTensor)
// stay exempt. Per-element accessors redo full index arithmetic that
// row-strided slice access amortises. Hoist the conversion, keep the
// arithmetic in one precision, index the backing slice by rows — or
// annotate a deliberate use with //livenas:allow hot-loop-precision.
var HotLoopPrecision = &Check{
	Name: "hot-loop-precision",
	Doc: "float64⇄float32 or sized-int⇄float conversion, or per-element " +
		"At/Set accessor, inside a loop in a numeric kernel package; " +
		"hoist/unify the precision, fuse the (de)quantization into the " +
		"kernel epilogue, or use row-strided slice access, or annotate " +
		"with //livenas:allow hot-loop-precision",
	Run: runHotLoopPrecision,
}

// hotLoopScope names the path segments of the numeric kernel packages.
// atSetScope restricts the per-element-accessor rule to the tensor kernels,
// where the At/Set methods live and every loop is a hot loop.
var (
	hotLoopScope = []string{"nn", "sr"}
	atSetScope   = []string{"nn"}
)

func runHotLoopPrecision(p *Pass) {
	if !hasSegment(p.Pkg.Path, hotLoopScope...) {
		return
	}
	checkAtSet := hasSegment(p.Pkg.Path, atSetScope...)
	// Nested loops revisit inner bodies; dedupe by position.
	seen := map[token.Pos]bool{}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			ast.Inspect(body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok || seen[call.Pos()] {
					return true
				}
				if len(call.Args) == 1 {
					if from, to, ok := crossFloatConversion(p, call); ok {
						seen[call.Pos()] = true
						p.Reportf(call.Pos(), "%s→%s conversion inside a hot loop; hoist it or keep the arithmetic in one precision", from, to)
						return true
					}
				}
				if checkAtSet {
					if name, ok := perElementAccessor(p, call); ok {
						seen[call.Pos()] = true
						p.Reportf(call.Pos(), "per-element %s call inside a hot loop; index the backing slice with row strides instead", name)
					}
				}
				return true
			})
			return true
		})
	}
}

// perElementAccessor reports whether call is an At/Set method call on a
// module-internal type (a per-element tensor accessor). Same-named methods
// on stdlib or vendored types are not ours to police.
func perElementAccessor(p *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if name != "At" && name != "Set" {
		return "", false
	}
	s, ok := p.Pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return "", false
	}
	pkg := s.Obj().Pkg()
	if pkg == nil || (pkg.Path() != p.Pkg.ModPath && !strings.HasPrefix(pkg.Path(), p.Pkg.ModPath+"/")) {
		return "", false
	}
	return name, true
}

// crossFloatConversion reports whether call is a precision-crossing numeric
// conversion of a non-constant operand: float64⇄float32, or a sized signed
// integer (int8/int16/int32) to or from a float — the quantization
// boundary of the int8 kernel path. At least one side must be a float:
// int16(int32-expr) and friends are plain narrowing, not a precision
// domain change.
func crossFloatConversion(p *Pass, call *ast.CallExpr) (from, to string, ok bool) {
	tv, found := p.Pkg.Info.Types[call.Fun]
	if !found || !tv.IsType() {
		return "", "", false
	}
	toKind, toFloat, ok := numericKind(tv.Type)
	if !ok {
		return "", "", false
	}
	argTV, found := p.Pkg.Info.Types[call.Args[0]]
	if !found || argTV.Value != nil { // constant conversions are free
		return "", "", false
	}
	fromKind, fromFloat, ok := numericKind(argTV.Type)
	if !ok || fromKind == toKind || (!fromFloat && !toFloat) {
		return "", "", false
	}
	return fromKind, toKind, true
}

// numericKind classifies the types the conversion rule cares about: the two
// float widths and the sized signed integers of the quantized kernels.
// Plain int, int64, and the unsigned family are deliberately excluded —
// index arithmetic, counters, and pixel I/O are not precision hazards.
func numericKind(t types.Type) (kind string, isFloat, ok bool) {
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return "", false, false
	}
	switch basic.Kind() {
	case types.Float32:
		return "float32", true, true
	case types.Float64:
		return "float64", true, true
	case types.Int8:
		return "int8", false, true
	case types.Int16:
		return "int16", false, true
	case types.Int32:
		return "int32", false, true
	}
	return "", false, false
}
