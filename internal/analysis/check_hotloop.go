package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotLoopPrecision flags two hot-loop anti-patterns in the numeric kernels:
// float64⇄float32 conversions inside loops (internal/nn, internal/sr) and
// per-element At/Set accessor calls inside loops (internal/nn only). Each
// conversion in the gradient and inference loops costs real time and
// silently changes accumulation semantics; per-element accessors redo full
// index arithmetic that row-strided slice access amortises. Hoist the
// conversion, keep the arithmetic in one precision, index the backing
// slice by rows — or annotate a deliberate use with
// //livenas:allow hot-loop-precision.
var HotLoopPrecision = &Check{
	Name: "hot-loop-precision",
	Doc: "float64⇄float32 conversion or per-element At/Set accessor inside " +
		"a loop in a numeric kernel package; hoist/unify the precision or " +
		"use row-strided slice access, or annotate with " +
		"//livenas:allow hot-loop-precision",
	Run: runHotLoopPrecision,
}

// hotLoopScope names the path segments of the numeric kernel packages.
// atSetScope restricts the per-element-accessor rule to the tensor kernels,
// where the At/Set methods live and every loop is a hot loop.
var (
	hotLoopScope = []string{"nn", "sr"}
	atSetScope   = []string{"nn"}
)

func runHotLoopPrecision(p *Pass) {
	if !hasSegment(p.Pkg.Path, hotLoopScope...) {
		return
	}
	checkAtSet := hasSegment(p.Pkg.Path, atSetScope...)
	// Nested loops revisit inner bodies; dedupe by position.
	seen := map[token.Pos]bool{}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			ast.Inspect(body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok || seen[call.Pos()] {
					return true
				}
				if len(call.Args) == 1 {
					if from, to, ok := crossFloatConversion(p, call); ok {
						seen[call.Pos()] = true
						p.Reportf(call.Pos(), "%s→%s conversion inside a hot loop; hoist it or keep the arithmetic in one precision", from, to)
						return true
					}
				}
				if checkAtSet {
					if name, ok := perElementAccessor(p, call); ok {
						seen[call.Pos()] = true
						p.Reportf(call.Pos(), "per-element %s call inside a hot loop; index the backing slice with row strides instead", name)
					}
				}
				return true
			})
			return true
		})
	}
}

// perElementAccessor reports whether call is an At/Set method call on a
// module-internal type (a per-element tensor accessor). Same-named methods
// on stdlib or vendored types are not ours to police.
func perElementAccessor(p *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if name != "At" && name != "Set" {
		return "", false
	}
	s, ok := p.Pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return "", false
	}
	pkg := s.Obj().Pkg()
	if pkg == nil || (pkg.Path() != p.Pkg.ModPath && !strings.HasPrefix(pkg.Path(), p.Pkg.ModPath+"/")) {
		return "", false
	}
	return name, true
}

// crossFloatConversion reports whether call is a float64(float32-expr) or
// float32(float64-expr) conversion of a non-constant operand.
func crossFloatConversion(p *Pass, call *ast.CallExpr) (from, to string, ok bool) {
	tv, found := p.Pkg.Info.Types[call.Fun]
	if !found || !tv.IsType() {
		return "", "", false
	}
	toKind, ok := floatKind(tv.Type)
	if !ok {
		return "", "", false
	}
	argTV, found := p.Pkg.Info.Types[call.Args[0]]
	if !found || argTV.Value != nil { // constant conversions are free
		return "", "", false
	}
	fromKind, ok := floatKind(argTV.Type)
	if !ok || fromKind == toKind {
		return "", "", false
	}
	return fromKind, toKind, true
}

func floatKind(t types.Type) (string, bool) {
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return "", false
	}
	switch basic.Kind() {
	case types.Float32:
		return "float32", true
	case types.Float64:
		return "float64", true
	}
	return "", false
}
