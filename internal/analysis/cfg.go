package analysis

import (
	"go/ast"
	"go/token"
)

// This file is the intraprocedural half of the analysis substrate: a
// statement-level control-flow graph over one function body. The CFG keeps
// Go statements whole — a check's transfer function walks the expressions
// inside a statement itself — and models exactly the control constructs the
// interprocedural checks need to be path-sensitive about: branches, loops
// (including labeled break/continue), switches, selects, returns, and
// panic-terminated blocks. Deferred statements are collected on the side;
// they run at every exit that is reached after the defer statement executed,
// which the dataflow transfer functions model by processing DeferStmt nodes
// in place (see check_arenalifetime.go).

// A CFGBlock is a straight-line run of statements with explicit successors.
type CFGBlock struct {
	Stmts []ast.Stmt
	Succs []*CFGBlock

	// Index is the block's position in CFG.Blocks (deterministic ordering
	// for fixpoint iteration and debugging).
	Index int
}

// A CFG is the control-flow graph of one function body. Exit is a synthetic
// empty block reached by every return statement and by falling off the end
// of the body. Panic calls and infinite constructs terminate their block
// without an Exit edge: state on those paths never reaches a normal return,
// which is exactly how the resource checks want abnormal exits treated.
type CFG struct {
	Entry  *CFGBlock
	Exit   *CFGBlock
	Blocks []*CFGBlock

	blockOf map[ast.Stmt]*CFGBlock
}

// BlockOf returns the block holding stmt, or nil if the statement was
// unreachable when the CFG was built.
func (c *CFG) BlockOf(stmt ast.Stmt) *CFGBlock { return c.blockOf[stmt] }

// cfgBuilder threads break/continue targets and labels through the
// recursive construction.
type cfgBuilder struct {
	cfg *CFG

	// breakTo / continueTo are the current unlabeled targets.
	breakTo    *CFGBlock
	continueTo *CFGBlock

	// labels maps a label name to its break/continue targets while the
	// labeled statement is being built.
	labels map[string]*labelTargets

	// pendingLoopLabel, when set by LabeledStmt handling, receives the next
	// loop's continue target (labeled continue support).
	pendingLoopLabel *labelTargets
}

type labelTargets struct {
	breakTo    *CFGBlock
	continueTo *CFGBlock // nil for labeled non-loops
}

// BuildCFG constructs the CFG of one function body. A nil body (declared
// externally, e.g. assembly stubs) yields a CFG whose entry is its exit.
func BuildCFG(body *ast.BlockStmt) *CFG {
	c := &CFG{blockOf: map[ast.Stmt]*CFGBlock{}}
	b := &cfgBuilder{cfg: c, labels: map[string]*labelTargets{}}
	c.Exit = b.newBlock()
	c.Entry = b.newBlock()
	if body == nil {
		c.Entry.Succs = append(c.Entry.Succs, c.Exit)
		return c
	}
	last := b.stmts(body.List, c.Entry)
	if last != nil {
		b.edge(last, c.Exit)
	}
	return c
}

func (b *cfgBuilder) newBlock() *CFGBlock {
	blk := &CFGBlock{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *CFGBlock) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *cfgBuilder) add(blk *CFGBlock, s ast.Stmt) {
	blk.Stmts = append(blk.Stmts, s)
	b.cfg.blockOf[s] = blk
}

// stmts appends the statement list to cur and returns the block where
// control continues, or nil when the list ends in a terminating statement.
func (b *cfgBuilder) stmts(list []ast.Stmt, cur *CFGBlock) *CFGBlock {
	for _, s := range list {
		if cur == nil {
			// Unreachable code after return/break; keep building so nested
			// function literals are still discoverable, rooted in a dead
			// block with no predecessors.
			cur = b.newBlock()
		}
		cur = b.stmt(s, cur)
	}
	return cur
}

// stmt appends one statement and returns the continuation block (nil when
// the statement terminates control flow).
func (b *cfgBuilder) stmt(s ast.Stmt, cur *CFGBlock) *CFGBlock {
	switch st := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(st.List, cur)

	case *ast.IfStmt:
		if st.Init != nil {
			b.add(cur, st.Init)
		}
		b.add(cur, s) // the condition is evaluated in cur
		join := b.newBlock()
		thenB := b.newBlock()
		b.edge(cur, thenB)
		if end := b.stmts(st.Body.List, thenB); end != nil {
			b.edge(end, join)
		}
		if st.Else != nil {
			elseB := b.newBlock()
			b.edge(cur, elseB)
			if end := b.stmt(st.Else, elseB); end != nil {
				b.edge(end, join)
			}
		} else {
			b.edge(cur, join)
		}
		return join

	case *ast.ForStmt:
		if st.Init != nil {
			b.add(cur, st.Init)
		}
		head := b.newBlock()
		b.edge(cur, head)
		b.add(head, s) // condition evaluation
		after := b.newBlock()
		post := b.newBlock()
		if st.Post != nil {
			b.add(post, st.Post)
		}
		b.edge(post, head)
		if st.Cond != nil {
			b.edge(head, after)
		}
		body := b.newBlock()
		b.edge(head, body)
		b.inLoop(after, post, func() {
			if end := b.stmts(st.Body.List, body); end != nil {
				b.edge(end, post)
			}
		})
		// For `for {}` with no break, after has no predecessors; the
		// dataflow engine treats such blocks as unreachable (bottom fact).
		return after

	case *ast.RangeStmt:
		head := b.newBlock()
		b.edge(cur, head)
		b.add(head, s)
		after := b.newBlock()
		b.edge(head, after)
		body := b.newBlock()
		b.edge(head, body)
		b.inLoop(after, head, func() {
			if end := b.stmts(st.Body.List, body); end != nil {
				b.edge(end, head)
			}
		})
		return after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var init ast.Stmt
		var bodyList []ast.Stmt
		if sw, ok := st.(*ast.SwitchStmt); ok {
			init, bodyList = sw.Init, sw.Body.List
		} else {
			tsw := st.(*ast.TypeSwitchStmt)
			init, bodyList = tsw.Init, tsw.Body.List
		}
		if init != nil {
			b.add(cur, init)
		}
		b.add(cur, s) // tag evaluation
		after := b.newBlock()
		hasDefault := false
		// Build case bodies; support fallthrough by chaining entry blocks.
		entries := make([]*CFGBlock, len(bodyList))
		for i := range bodyList {
			entries[i] = b.newBlock()
		}
		for i, cs := range bodyList {
			cc, ok := cs.(*ast.CaseClause)
			if !ok {
				continue
			}
			if cc.List == nil {
				hasDefault = true
			}
			b.edge(cur, entries[i])
			var next *CFGBlock
			if i+1 < len(entries) {
				next = entries[i+1]
			}
			b.inSwitch(after, func() {
				end := b.stmtsWithFallthrough(cc.Body, entries[i], next)
				if end != nil {
					b.edge(end, after)
				}
			})
		}
		if !hasDefault {
			b.edge(cur, after)
		}
		return after

	case *ast.SelectStmt:
		b.add(cur, s)
		after := b.newBlock()
		for _, cs := range st.Body.List {
			cc, ok := cs.(*ast.CommClause)
			if !ok {
				continue
			}
			entry := b.newBlock()
			b.edge(cur, entry)
			if cc.Comm != nil {
				b.add(entry, cc.Comm)
			}
			b.inSwitch(after, func() {
				if end := b.stmts(cc.Body, entry); end != nil {
					b.edge(end, after)
				}
			})
		}
		if len(st.Body.List) == 0 {
			return nil // select{} blocks forever
		}
		return after

	case *ast.ReturnStmt:
		b.add(cur, s)
		b.edge(cur, b.cfg.Exit)
		return nil

	case *ast.BranchStmt:
		b.add(cur, s)
		switch st.Tok {
		case token.BREAK:
			if st.Label != nil {
				if t := b.labels[st.Label.Name]; t != nil {
					b.edge(cur, t.breakTo)
				}
			} else if b.breakTo != nil {
				b.edge(cur, b.breakTo)
			}
		case token.CONTINUE:
			if st.Label != nil {
				if t := b.labels[st.Label.Name]; t != nil && t.continueTo != nil {
					b.edge(cur, t.continueTo)
				}
			} else if b.continueTo != nil {
				b.edge(cur, b.continueTo)
			}
		case token.GOTO:
			// Rare in this module; modeled conservatively as an exit so no
			// path-sensitive fact survives a goto.
			b.edge(cur, b.cfg.Exit)
		case token.FALLTHROUGH:
			// Handled by stmtsWithFallthrough; a stray one ends the block.
		}
		return nil

	case *ast.LabeledStmt:
		// Register the label, then build the labeled statement with its
		// break/continue targets resolvable by name.
		after := b.newBlock()
		lt := &labelTargets{breakTo: after}
		b.labels[st.Label.Name] = lt
		defer delete(b.labels, st.Label.Name)
		switch ls := st.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			// The loop's continue target is only known inside b.stmt; mark
			// the label as loop-shaped by pointing continue at a trampoline
			// that the loop construction wires up via b.labelLoop.
			b.pendingLoopLabel = lt
			end := b.stmt(ls, cur)
			b.pendingLoopLabel = nil
			if end != nil {
				b.edge(end, after)
			}
		default:
			if end := b.stmt(st.Stmt, cur); end != nil {
				b.edge(end, after)
			}
		}
		return after

	case *ast.ExprStmt:
		b.add(cur, s)
		if isPanicCall(st.X) {
			b.edge(cur, b.cfg.Exit)
			return nil
		}
		return cur

	default:
		// Assignments, declarations, sends, incdec, defer, go, empty: plain
		// statements with fall-through control flow.
		b.add(cur, s)
		return cur
	}
}

// stmtsWithFallthrough builds a case body, routing a trailing fallthrough
// statement to next (the following case's entry block).
func (b *cfgBuilder) stmtsWithFallthrough(list []ast.Stmt, cur *CFGBlock, next *CFGBlock) *CFGBlock {
	for i, s := range list {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i == len(list)-1 {
			b.add(cur, s)
			if next != nil {
				b.edge(cur, next)
			}
			return nil
		}
		if cur == nil {
			cur = b.newBlock()
		}
		cur = b.stmt(s, cur)
	}
	return cur
}

// inLoop runs build with the unlabeled break/continue targets set, also
// wiring a pending loop label's continue target.
func (b *cfgBuilder) inLoop(breakTo, continueTo *CFGBlock, build func()) {
	if b.pendingLoopLabel != nil {
		b.pendingLoopLabel.continueTo = continueTo
		b.pendingLoopLabel = nil
	}
	oldB, oldC := b.breakTo, b.continueTo
	b.breakTo, b.continueTo = breakTo, continueTo
	build()
	b.breakTo, b.continueTo = oldB, oldC
}

// inSwitch runs build with only the unlabeled break target swapped (continue
// still refers to the enclosing loop).
func (b *cfgBuilder) inSwitch(breakTo *CFGBlock, build func()) {
	old := b.breakTo
	b.breakTo = breakTo
	build()
	b.breakTo = old
}

// ExprsOf returns the expressions a CFG node evaluates itself. Control
// statements appear in blocks as their own header node (condition or tag
// evaluation) while their bodies live in successor blocks, so a transfer
// function must look only at the header expressions — walking the whole
// subtree would apply nested effects twice. DeferStmt and GoStmt are
// returned with their CallExpr so checks can special-case them.
func ExprsOf(s ast.Stmt) []ast.Expr {
	switch st := s.(type) {
	case *ast.ExprStmt:
		return []ast.Expr{st.X}
	case *ast.AssignStmt:
		out := append([]ast.Expr{}, st.Rhs...)
		return append(out, st.Lhs...)
	case *ast.IfStmt:
		return []ast.Expr{st.Cond}
	case *ast.ForStmt:
		if st.Cond != nil {
			return []ast.Expr{st.Cond}
		}
	case *ast.RangeStmt:
		return []ast.Expr{st.X}
	case *ast.SwitchStmt:
		if st.Tag != nil {
			return []ast.Expr{st.Tag}
		}
	case *ast.TypeSwitchStmt:
		if as, ok := st.Assign.(*ast.AssignStmt); ok {
			return append([]ast.Expr{}, as.Rhs...)
		}
		if es, ok := st.Assign.(*ast.ExprStmt); ok {
			return []ast.Expr{es.X}
		}
	case *ast.ReturnStmt:
		return st.Results
	case *ast.SendStmt:
		return []ast.Expr{st.Chan, st.Value}
	case *ast.IncDecStmt:
		return []ast.Expr{st.X}
	case *ast.GoStmt:
		return []ast.Expr{st.Call}
	case *ast.DeferStmt:
		return []ast.Expr{st.Call}
	case *ast.DeclStmt:
		var out []ast.Expr
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					out = append(out, vs.Values...)
				}
			}
		}
		return out
	}
	return nil
}

// isPanicCall reports whether e is a direct call to the builtin panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// ReachableStmts returns every statement that can execute after from
// (exclusive) on some path, following successor edges — including loop back
// edges, so statements textually before a go statement inside the same loop
// are correctly treated as reachable. Used by the goroutine-leak check to
// look for join evidence downstream of a go statement.
func (c *CFG) ReachableStmts(from ast.Stmt) []ast.Stmt {
	start := c.blockOf[from]
	if start == nil {
		return nil
	}
	var out []ast.Stmt
	// Remainder of the starting block after from.
	idx := -1
	for i, s := range start.Stmts {
		if s == from {
			idx = i
			break
		}
	}
	for i := idx + 1; i >= 0 && i < len(start.Stmts); i++ {
		out = append(out, start.Stmts[i])
	}
	seen := map[*CFGBlock]bool{}
	var walk func(*CFGBlock)
	walk = func(blk *CFGBlock) {
		if seen[blk] {
			return
		}
		seen[blk] = true
		out = append(out, blk.Stmts...)
		for _, s := range blk.Succs {
			walk(s)
		}
	}
	for _, s := range start.Succs {
		walk(s)
	}
	return out
}
