package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// SwitchExhaustiveness flags a switch over a module-defined enum type
// (a named integer type with declared constants, e.g. wire.MsgType) that
// has no default clause and does not cover every constant. Adding a
// protocol message type then flags every non-exhaustive handler in the
// tree instead of silently dropping the new message.
var SwitchExhaustiveness = &Check{
	Name: "switch-exhaustiveness",
	Doc: "default-less switch over a module enum type (e.g. wire.MsgType) " +
		"that misses constants; add the missing cases, a default clause, " +
		"or //livenas:allow switch-exhaustiveness",
	Run: runSwitchExhaustiveness,
}

func runSwitchExhaustiveness(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tagType := p.Pkg.Info.TypeOf(sw.Tag)
			named := moduleEnumType(tagType, p.Pkg.ModPath)
			if named == nil {
				return true
			}
			consts := enumConstants(named)
			if len(consts) < 2 {
				return true
			}
			covered := map[string]bool{}
			for _, cc := range sw.Body.List {
				clause, ok := cc.(*ast.CaseClause)
				if !ok {
					continue
				}
				if clause.List == nil {
					return true // default clause handles future constants
				}
				for _, e := range clause.List {
					if tv, ok := p.Pkg.Info.Types[e]; ok && tv.Value != nil {
						covered[tv.Value.ExactString()] = true
					}
				}
			}
			var missing []string
			for val, name := range consts {
				if !covered[val] {
					missing = append(missing, name)
				}
			}
			if len(missing) > 0 {
				sort.Strings(missing)
				p.Reportf(sw.Pos(), "switch over %s is not exhaustive: missing %s",
					types.TypeString(named, types.RelativeTo(p.Pkg.Types)), strings.Join(missing, ", "))
			}
			return true
		})
	}
}

// moduleEnumType returns the named type if t is an integer type defined
// inside the module under analysis.
func moduleEnumType(t types.Type, modPath string) *types.Named {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return nil
	}
	path := obj.Pkg().Path()
	if path != modPath && !strings.HasPrefix(path, modPath+"/") {
		return nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil
	}
	return named
}

// enumConstants maps exact constant value → first declared constant name
// for every package-level constant of the enum's type.
func enumConstants(named *types.Named) map[string]string {
	out := map[string]string{}
	scope := named.Obj().Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		key := c.Val().ExactString()
		if _, dup := out[key]; !dup {
			out[key] = c.Name()
		}
	}
	return out
}
