package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ContextPropagation verifies that cancellation actually reaches the
// blocking points of the concurrency-bearing packages. Two rules:
//
//  1. In a function that takes a context.Context, every blocking operation —
//     a channel send or receive, a select without escape, sync.WaitGroup.Wait,
//     time.Sleep, blocking net I/O — must be cancellable: either wrapped in a
//     select that also has a <-ctx.Done() case (or a default), or delegated
//     to a callee that receives the context. A call to a module callee the
//     summaries prove may block uncancellably (FuncSummary.BlockPos) is
//     reported at the call site when the context is not threaded through.
//
//  2. A context stored into a struct field must be consulted somewhere in
//     the module (Done/Err/Deadline, a select, or passed on); a context
//     that is stored but never consulted is cancellation theater — Callers
//     believe the value they pass can stop work, and it cannot.
//
// The check is global: rule 2 looks at every use of a field across the
// module, so its findings can change when any package changes (the driver
// caches it under a whole-module key, not per package).
var ContextPropagation = &Check{
	Name: "context-propagation",
	Doc: "a blocking operation reachable from a ctx-taking function cannot " +
		"be cancelled (no select on ctx.Done, context not threaded " +
		"through), or a context is stored in a field nobody ever consults; " +
		"guard the block or annotate a proven-bounded wait with " +
		"//livenas:allow context-propagation",
	RunModule: runContextPropagation,
	Global:    true,
}

// ctxScope: the packages whose ctx-taking functions are audited.
var ctxScope = []string{"core", "sweep", "fleet", "transport", "edge", "sim", "sr", "nn", "cmd"}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

// ctxParams returns the context.Context parameters of fi in order.
func ctxParams(fi *FuncInfo) []*types.Var {
	var out []*types.Var
	for _, p := range paramObjects(fi) {
		if isContextType(p.Type()) {
			out = append(out, p)
		}
	}
	return out
}

// isCtxConsult reports whether call is a Done/Err/Deadline call on a
// context-typed receiver.
func isCtxConsult(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Done", "Err", "Deadline":
		return isContextType(info.TypeOf(sel.X))
	}
	return false
}

// isDoneRecv reports whether e is a receive from some context's Done
// channel: <-x.Done() (select cases reach here through their comm exprs).
func isDoneRecv(info *types.Info, e ast.Expr) bool {
	u, ok := unparen(e).(*ast.UnaryExpr)
	if !ok || u.Op != token.ARROW {
		return false
	}
	call, ok := unparen(u.X).(*ast.CallExpr)
	return ok && isCtxConsult(info, call)
}

// selectGuarded reports whether a select statement can always escape: it has
// a default clause or a case receiving from a context's Done channel.
func selectGuarded(info *types.Info, sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return true // default
		}
		switch s := cc.Comm.(type) {
		case *ast.ExprStmt:
			if isDoneRecv(info, s.X) {
				return true
			}
		case *ast.AssignStmt:
			for _, r := range s.Rhs {
				if isDoneRecv(info, r) {
					return true
				}
			}
		}
	}
	return false
}

// ctxSummarize contributes two facts: which context parameters fi consults
// (directly, via a derived context, or by passing them on), and whether fi
// may block without observing cancellation (BlockPos/BlockDesc). Monotone:
// ConsultsCtx bits only flip false→true and BlockPos is set at most once.
func ctxSummarize(fi *FuncInfo, s *Summaries, sum *FuncSummary) bool {
	if fi.Decl.Body == nil {
		return false
	}
	info := fi.Pkg.Info
	changed := false

	// derived: objects that alias or derive from a ctx param (ctx2 :=
	// context.WithTimeout(ctx, …), c := ctx). One level of local flow is
	// enough for the code shapes in this module.
	derived := map[types.Object]int{} // object -> param index
	for i, p := range ctxParams(fi) {
		derived[p] = paramIndexOf(fi, p)
		_ = i
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			srcIdx := -1
			switch r := unparen(rhs).(type) {
			case *ast.Ident:
				if idx, ok := derived[info.Uses[r]]; ok {
					srcIdx = idx
				}
			case *ast.CallExpr:
				// context.WithCancel/WithTimeout/WithDeadline/WithValue(ctx, …)
				for _, arg := range r.Args {
					if id, ok := unparen(arg).(*ast.Ident); ok {
						if idx, ok := derived[info.Uses[id]]; ok && isContextType(info.TypeOf(arg)) {
							srcIdx = idx
						}
					}
				}
			}
			if srcIdx < 0 || i >= len(as.Lhs) {
				continue
			}
			if id, ok := unparen(as.Lhs[i]).(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil && isContextType(obj.Type()) {
					derived[obj] = srcIdx
				} else if obj := info.Uses[id]; obj != nil && isContextType(obj.Type()) {
					derived[obj] = srcIdx
				}
			}
		}
		return true
	})

	paramIdxOfExpr := func(e ast.Expr) int {
		if id, ok := unparen(e).(*ast.Ident); ok {
			if idx, ok := derived[info.Uses[id]]; ok {
				return idx
			}
		}
		return -1
	}

	markConsulted := func(idx int) {
		if setTrue(sum.ConsultsCtx, idx) {
			changed = true
		}
	}
	// A //livenas:allow context-propagation directive in the function's doc
	// comment asserts its waits are bounded (e.g. a pool join after close,
	// where workers provably drain); withhold the blocking fact at the
	// source so one justification clears every transitive caller.
	blockAllowed := docAllows(fi.Decl, ContextPropagation.Name)
	setBlock := func(pos token.Pos, desc string) {
		if !blockAllowed && sum.BlockPos == token.NoPos {
			sum.BlockPos = pos
			sum.BlockDesc = desc
			changed = true
		}
	}

	var inspect func(n ast.Node) bool
	inspect = func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectStmt:
			for _, c := range e.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				for _, st := range cc.Body {
					ast.Inspect(st, inspect)
				}
			}
			// The comm clauses themselves: consults via Done receives.
			ast.Inspect(e, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && isCtxConsult(info, call) {
					if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
						if idx := paramIdxOfExpr(sel.X); idx >= 0 {
							markConsulted(idx)
						}
					}
				}
				return true
			})
			if !selectGuarded(info, e) {
				setBlock(e.Pos(), "select without escape")
			}
			return false
		case *ast.SendStmt:
			setBlock(e.Pos(), "channel send")
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				if isDoneRecv(info, e) {
					if call, ok := unparen(e.X).(*ast.CallExpr); ok {
						if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
							if idx := paramIdxOfExpr(sel.X); idx >= 0 {
								markConsulted(idx)
							}
						}
					}
					// Waiting for cancellation itself is a bounded wait.
					return true
				}
				setBlock(e.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			if isCtxConsult(info, e) {
				if sel, ok := unparen(e.Fun).(*ast.SelectorExpr); ok {
					if idx := paramIdxOfExpr(sel.X); idx >= 0 {
						markConsulted(idx)
					}
				}
				return true
			}
			if desc := stdBlockingCall(info, e); desc != "" {
				setBlock(e.Pos(), desc)
				return true
			}
			callee := StaticCallee(info, e)
			csum := s.Of(callee)
			// Context arguments passed on: to a module callee that consults
			// them, or (conservatively) to any non-module callee.
			ctxArgPassed := false
			ctxArgConsultedByCallee := false
			for ai, arg := range e.Args {
				idx := paramIdxOfExpr(arg)
				if idx < 0 || !isContextType(info.TypeOf(arg)) {
					continue
				}
				ctxArgPassed = true
				if csum == nil {
					// Unknown callee (stdlib, interface, func value):
					// assume it consults.
					markConsulted(idx)
					ctxArgConsultedByCallee = true
				} else if ai < len(csum.ConsultsCtx) && csum.ConsultsCtx[ai] {
					markConsulted(idx)
					ctxArgConsultedByCallee = true
				}
			}
			// A callee that may block uncancellably blocks us too — unless
			// we handed it a context it consults.
			if csum != nil && csum.BlockPos != token.NoPos && !(ctxArgPassed && ctxArgConsultedByCallee) {
				setBlock(e.Pos(), csum.BlockDesc)
			}
		}
		return true
	}
	ast.Inspect(fi.Decl.Body, inspect)
	return changed
}

// stdBlockingCall classifies direct calls into well-known blocking stdlib
// operations, returning a short description or "".
func stdBlockingCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	// wg.Wait() on a sync.WaitGroup.
	if sel.Sel.Name == "Wait" && len(call.Args) == 0 && isWaitGroupExpr(info, sel.X) {
		return "WaitGroup.Wait"
	}
	// time.Sleep, and package-level net dial/listen.
	if id, ok := unparen(sel.X).(*ast.Ident); ok {
		if pkg, ok := info.Uses[id].(*types.PkgName); ok {
			switch pkg.Imported().Path() {
			case "time":
				if sel.Sel.Name == "Sleep" {
					return "time.Sleep"
				}
			case "net":
				switch sel.Sel.Name {
				case "Dial", "DialTimeout", "DialUDP", "DialTCP", "Listen", "ListenPacket", "ListenUDP", "ListenTCP":
					return "net." + sel.Sel.Name
				}
			}
		}
	}
	// Conn I/O: Read/Write/Accept on a net type.
	switch sel.Sel.Name {
	case "Read", "Write", "ReadFrom", "WriteTo", "Accept":
		t := info.TypeOf(sel.X)
		if named := namedTypeOf(t); named != nil && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "net" {
			return "net I/O"
		}
	}
	return ""
}

func runContextPropagation(p *ModulePass) {
	nodes := make([]*FuncInfo, 0, len(p.Mod.Graph.Nodes))
	for _, fi := range p.Mod.Graph.Nodes {
		if hasSegment(fi.Pkg.Path, ctxScope...) && fi.Decl.Body != nil {
			nodes = append(nodes, fi)
		}
	}
	sortNodesByPos(nodes)
	for _, fi := range nodes {
		if len(ctxParams(fi)) > 0 {
			auditCtxFunc(p, fi)
		}
	}
	reportStoredContexts(p)
}

// auditCtxFunc reports the uncancellable blocking points of one ctx-taking
// function (function literals included: they capture the context).
func auditCtxFunc(p *ModulePass, fi *FuncInfo) {
	info := fi.Pkg.Info
	name := fi.Obj.Name()
	var inspect func(n ast.Node) bool
	inspect = func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectStmt:
			if !selectGuarded(info, e) {
				p.Reportf(e.Pos(),
					"select in ctx-taking %s blocks without a <-ctx.Done() case or default; cancellation cannot interrupt it", name)
			}
			// Case bodies still audited; the comm ops themselves are covered
			// by the select-level verdict.
			for _, c := range e.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, st := range cc.Body {
						ast.Inspect(st, inspect)
					}
				}
			}
			return false
		case *ast.SendStmt:
			p.Reportf(e.Pos(),
				"channel send in ctx-taking %s is not guarded by a select on ctx.Done(); it can block past cancellation", name)
		case *ast.UnaryExpr:
			if e.Op == token.ARROW && !isDoneRecv(info, e) {
				p.Reportf(e.Pos(),
					"channel receive in ctx-taking %s is not guarded by a select on ctx.Done(); it can block past cancellation", name)
			}
		case *ast.CallExpr:
			if desc := stdBlockingCall(info, e); desc != "" {
				p.Reportf(e.Pos(),
					"%s in ctx-taking %s blocks without observing cancellation; use a select on ctx.Done()", desc, name)
				return true
			}
			callee := StaticCallee(info, e)
			if callee == nil {
				return true
			}
			csum := p.Mod.Sums.Of(callee)
			if csum == nil || csum.BlockPos == token.NoPos {
				return true
			}
			// Context threaded through to a consulting callee: cancellable.
			for ai, arg := range e.Args {
				if isContextType(info.TypeOf(arg)) && ai < len(csum.ConsultsCtx) && csum.ConsultsCtx[ai] {
					return true
				}
			}
			ctxArg := false
			for _, arg := range e.Args {
				if isContextType(info.TypeOf(arg)) {
					ctxArg = true
				}
			}
			if ctxArg {
				p.Reportf(e.Pos(),
					"%s receives a context but may still block on %s without consulting it; fix the callee or guard this call", callee.Name(), csum.BlockDesc)
			} else {
				p.Reportf(e.Pos(),
					"call to %s may block on %s and cannot be cancelled: it takes no context; thread ctx through the callee", callee.Name(), csum.BlockDesc)
			}
		}
		return true
	}
	ast.Inspect(fi.Decl.Body, inspect)
}

// reportStoredContexts implements rule 2: a struct field of type
// context.Context that is assigned somewhere but whose value is never read
// anywhere in the module. Stores are assignments to the field and composite
// literal values; every other mention (x.ctx.Done(), passing x.ctx on,
// copying it out) counts as a consult.
func reportStoredContexts(p *ModulePass) {
	type store struct {
		obj types.Object
		pos token.Pos
	}
	var stores []store
	consulted := map[types.Object]bool{}

	for _, pkg := range p.Mod.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			storeKeys := map[*ast.Ident]bool{} // idents that ARE store targets
			ast.Inspect(f, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range e.Lhs {
						if sel, ok := unparen(lhs).(*ast.SelectorExpr); ok {
							if obj := info.Uses[sel.Sel]; obj != nil && isCtxField(obj) {
								storeKeys[sel.Sel] = true
								stores = append(stores, store{obj, sel.Pos()})
							}
						}
					}
				case *ast.CompositeLit:
					for _, elt := range e.Elts {
						if kv, ok := elt.(*ast.KeyValueExpr); ok {
							if key, ok := kv.Key.(*ast.Ident); ok {
								if obj := info.Uses[key]; obj != nil && isCtxField(obj) {
									storeKeys[key] = true
									stores = append(stores, store{obj, kv.Pos()})
								}
							}
						}
					}
				}
				return true
			})
			// Every other mention of a ctx field is a consult.
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || storeKeys[id] {
					return true
				}
				if obj := info.Uses[id]; obj != nil && isCtxField(obj) {
					consulted[obj] = true
				}
				return true
			})
		}
	}
	seen := map[types.Object]bool{}
	for _, st := range stores {
		if consulted[st.obj] || seen[st.obj] {
			continue
		}
		seen[st.obj] = true
		p.Reportf(st.pos,
			"context stored in field %s is never consulted anywhere in the module; cancellation cannot propagate through it", fieldName(st.obj))
	}
}

// isCtxField reports whether obj is a struct field of type context.Context.
func isCtxField(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.IsField() && isContextType(v.Type())
}

// fieldName renders a field as Pkg.Type-less best-effort qualified name.
func fieldName(obj types.Object) string {
	if obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return obj.Name()
}
