package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ArenaLifetime enforces the tensor-arena ownership contract of
// internal/nn (DESIGN.md "Kernel engine"): every value obtained from an
// arena's Get/GetBuf must be handed back with Put/PutBuf exactly once on
// every path through its owner, or its ownership must demonstrably move —
// returned to the caller, stored into a structure, or passed to a callee
// whose summary says it retains or releases the value. The analysis is a
// forward dataflow over the function's CFG with ownership transfer modeled
// through the bottom-up call-graph summaries, so a helper that releases its
// argument (or a constructor that returns a fresh arena value) is
// understood across function boundaries.
var ArenaLifetime = &Check{
	Name: "arena-lifetime",
	Doc: "a value obtained from an nn.Arena (Get/GetBuf) is not returned to " +
		"the arena on every path, is released twice, or is discarded " +
		"unreleased; release it on all paths (including early returns) or " +
		"annotate a deliberate transfer with //livenas:allow arena-lifetime",
	RunModule: runArenaLifetime,
}

// arenaScope names the path segments of the packages whose functions are
// *reported on*. Summaries are computed module-wide so ownership transfer
// into helpers outside these packages is still modeled.
var arenaScope = []string{"nn", "sr"}

// arenaState is the lifecycle lattice of one tracked arena value.
type arenaState uint8

const (
	arUntracked arenaState = iota
	arLive                 // obtained, not yet released
	arReleased             // handed back via Put/PutBuf (or a releasing callee)
	arEscaped              // ownership moved: returned, stored, or retained by a callee
)

// joinArena merges two path states. Escape dominates (the value is no
// longer this function's to release); a value live on one path and
// released on another is still a leak, so live dominates released.
func joinArena(a, b arenaState) arenaState {
	if a == b {
		return a
	}
	if a == arEscaped || b == arEscaped {
		return arEscaped
	}
	if a == arLive || b == arLive {
		return arLive
	}
	return arReleased // released ⊔ untracked
}

// arenaFact maps tracked objects (locals and parameters) to their state.
type arenaFact map[types.Object]arenaState

// arenaFlow is the FlowProblem for one function-like unit (a declared
// function or a function literal).
type arenaFlow struct {
	info    *types.Info
	modPath string
	sums    *Summaries

	// params are tracked from entry in the arLive state so the exit fact
	// yields the function's release/retain summary.
	params []*types.Var

	// roots records, for values obtained inside this unit, the expression
	// to report at. Mutated during transfer; gen sites are deterministic.
	roots map[types.Object]ast.Expr

	// record is set only during the WalkFacts replay pass: the fixpoint
	// loop calls Transfer repeatedly with intermediate facts, and only the
	// replay over the converged solution may collect reportable events.
	record bool

	// discarded collects Get calls whose result is dropped on the floor
	// (assigned to the blank identifier).
	discarded []ast.Expr

	// doubles collects Put calls whose argument was already released.
	doubles []ast.Expr
}

func newArenaFlow(pkg *Package, sums *Summaries, params []*types.Var) *arenaFlow {
	return &arenaFlow{
		info:    pkg.Info,
		modPath: pkg.ModPath,
		sums:    sums,
		params:  params,
		roots:   map[types.Object]ast.Expr{},
	}
}

func (f *arenaFlow) Entry() Fact {
	in := arenaFact{}
	for _, p := range f.params {
		if trackableArenaType(p.Type(), f.modPath) {
			in[p] = arLive
		}
	}
	return in
}

func (f *arenaFlow) Join(a, b Fact) Fact {
	am, bm := a.(arenaFact), b.(arenaFact)
	out := arenaFact{}
	for k, v := range am {
		out[k] = v
	}
	for k, v := range bm {
		out[k] = joinArena(out[k], v)
	}
	return out
}

func (f *arenaFlow) Equal(a, b Fact) bool {
	am, bm := a.(arenaFact), b.(arenaFact)
	if len(am) != len(bm) {
		return false
	}
	for k, v := range am {
		if bm[k] != v {
			return false
		}
	}
	return true
}

func (f *arenaFlow) clone(in arenaFact) arenaFact {
	out := make(arenaFact, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

func (f *arenaFlow) Transfer(stmt ast.Stmt, in Fact) Fact {
	out := f.clone(in.(arenaFact))
	switch st := stmt.(type) {
	case *ast.AssignStmt:
		// Effects of the right-hand sides first, then the bindings.
		for _, rhs := range st.Rhs {
			f.exprEffects(rhs, out, false)
		}
		f.bindings(st, out)
		// A tracked value stored through a non-ident LHS escapes.
		for i, lhs := range st.Lhs {
			if _, ok := unparen(lhs).(*ast.Ident); ok {
				continue
			}
			_ = i
			// Composite LHS (field, index, deref): if the matching RHS is a
			// tracked ident it escaped; exprEffects on the RHS already walks
			// it, but a bare ident RHS has no call to trigger escape, so
			// handle it here.
			if len(st.Rhs) == len(st.Lhs) {
				if obj := identObj(f.info, st.Rhs[i]); obj != nil && out[obj] != arUntracked {
					out[obj] = arEscaped
				}
			}
		}
	case *ast.ReturnStmt:
		for _, res := range st.Results {
			f.exprEffects(res, out, false)
			if obj := identObj(f.info, res); obj != nil && out[obj] != arUntracked {
				out[obj] = arEscaped
			}
		}
	case *ast.SendStmt:
		f.exprEffects(st.Value, out, false)
		if obj := identObj(f.info, st.Value); obj != nil && out[obj] != arUntracked {
			out[obj] = arEscaped
		}
	case *ast.DeferStmt:
		// A deferred release runs at every exit reached after this point;
		// modeling it as an immediate release is exact for leak detection
		// (paths that return before the defer still see the value live).
		f.callEffects(st.Call, out, true)
	case *ast.GoStmt:
		f.callEffects(st.Call, out, false)
	case *ast.RangeStmt:
		f.exprEffects(st.X, out, false)
		// The iteration variables are rebound from the container every
		// trip; any state from a previous binding is dead.
		for _, e := range []ast.Expr{st.Key, st.Value} {
			if e == nil {
				continue
			}
			if id, ok := unparen(e).(*ast.Ident); ok {
				if obj := defOrUse(f.info, id); obj != nil {
					delete(out, obj)
				}
			}
		}
	default:
		for _, e := range ExprsOf(stmt) {
			f.exprEffects(e, out, false)
		}
	}
	return out
}

// bindings applies the LHS bindings of an assignment: idents assigned a
// fresh arena value become live; idents assigned a tracked value alias it
// (both conservatively escape); anything else is untouched.
func (f *arenaFlow) bindings(st *ast.AssignStmt, out arenaFact) {
	if len(st.Lhs) == len(st.Rhs) {
		for i, lhs := range st.Lhs {
			id, ok := unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			rhs := unparen(st.Rhs[i])
			if call, ok := rhs.(*ast.CallExpr); ok {
				if f.isArenaGet(call) || f.calleeReturnsArena(call, 0) {
					if id.Name == "_" {
						if f.record {
							f.discarded = append(f.discarded, call)
						}
						continue
					}
					if obj := defOrUse(f.info, id); obj != nil {
						out[obj] = arLive
						if _, seen := f.roots[obj]; !seen {
							f.roots[obj] = call
						}
					}
					continue
				}
			}
			// Alias: `y := x` with x tracked makes both unanalyzable.
			if src := identObj(f.info, rhs); src != nil && out[src] != arUntracked {
				out[src] = arEscaped
				if dst := defOrUse(f.info, id); dst != nil {
					out[dst] = arEscaped
				}
				continue
			}
			// Strong update: rebinding the variable to an untracked value
			// kills any state from its previous binding (g = ng in a
			// backprop loop must not keep g's old lifecycle).
			if id.Name != "_" {
				if dst := defOrUse(f.info, id); dst != nil {
					delete(out, dst)
				}
			}
		}
		return
	}
	// Multi-value form: v1, v2 := f() — bind any result slot the callee
	// summary marks as arena-owned.
	if len(st.Rhs) == 1 {
		if call, ok := unparen(st.Rhs[0]).(*ast.CallExpr); ok {
			for j, lhs := range st.Lhs {
				id, ok := unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if f.calleeReturnsArena(call, j) {
					if obj := defOrUse(f.info, id); obj != nil {
						out[obj] = arLive
						if _, seen := f.roots[obj]; !seen {
							f.roots[obj] = call
						}
					}
				}
			}
		}
	}
}

// exprEffects applies the effects of evaluating e: releases at Put sites,
// ownership transfer into retaining callees, escapes through address-of,
// closures, and unknown calls. It walks nested expressions but not into
// function literal bodies (a literal capturing a tracked value escapes it).
func (f *arenaFlow) exprEffects(e ast.Expr, out arenaFact, deferred bool) {
	switch x := unparen(e).(type) {
	case *ast.CallExpr:
		f.callEffects(x, out, deferred)
	case *ast.FuncLit:
		f.escapeCaptured(x, out)
	case *ast.UnaryExpr:
		if obj := identObj(f.info, x.X); obj != nil && out[obj] != arUntracked {
			// &x (or any unary use that could alias) escapes.
			out[obj] = arEscaped
			return
		}
		f.exprEffects(x.X, out, deferred)
	case *ast.BinaryExpr:
		f.exprEffects(x.X, out, deferred)
		f.exprEffects(x.Y, out, deferred)
	case *ast.SelectorExpr:
		// Reading a field of a tracked value (t.Data) is a borrow.
		f.exprEffects(x.X, out, deferred)
	case *ast.IndexExpr:
		f.exprEffects(x.X, out, deferred)
		f.exprEffects(x.Index, out, deferred)
	case *ast.SliceExpr:
		f.exprEffects(x.X, out, deferred)
	case *ast.StarExpr:
		f.exprEffects(x.X, out, deferred)
	case *ast.CompositeLit:
		// A tracked value placed in a composite literal escapes.
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if obj := identObj(f.info, elt); obj != nil && out[obj] != arUntracked {
				out[obj] = arEscaped
				continue
			}
			f.exprEffects(elt, out, deferred)
		}
	case *ast.TypeAssertExpr:
		f.exprEffects(x.X, out, deferred)
	}
}

// callEffects applies one call's effects on the tracked values.
func (f *arenaFlow) callEffects(call *ast.CallExpr, out arenaFact, deferred bool) {
	// Nested calls in arguments first (g(h(x))).
	for _, arg := range call.Args {
		if inner, ok := unparen(arg).(*ast.CallExpr); ok {
			f.callEffects(inner, out, deferred)
		} else if lit, ok := unparen(arg).(*ast.FuncLit); ok {
			f.escapeCaptured(lit, out)
		}
	}
	if f.isArenaGet(call) {
		// A Get whose result this statement does not bind is handled by the
		// binding logic / report pass; nothing flows here.
		return
	}
	if f.isArenaPut(call) {
		if len(call.Args) == 1 {
			if obj := identObj(f.info, call.Args[0]); obj != nil {
				switch out[obj] {
				case arLive:
					out[obj] = arReleased
				case arReleased:
					if f.record {
						f.doubles = append(f.doubles, call)
					}
				default:
					// Untracked or escaped: nothing provable about this Put.
				}
				return
			}
		}
		return
	}
	callee := StaticCallee(f.info, call)
	var sum *FuncSummary
	if callee != nil {
		sum = f.sums.Of(callee)
	}
	for i, arg := range call.Args {
		obj := identObj(f.info, arg)
		if obj == nil || out[obj] == arUntracked || out[obj] == arEscaped {
			// Non-ident argument mentioning a tracked value (t.Data, t[i:j])
			// is a borrow; walk it for nested effects only.
			f.exprEffects(arg, out, deferred)
			continue
		}
		switch {
		case sum != nil && i < len(sum.ReleasesParam) && sum.ReleasesParam[i]:
			if out[obj] == arReleased {
				f.doubles = append(f.doubles, call)
			}
			out[obj] = arReleased
		case sum != nil && i < len(sum.RetainsParam) && sum.RetainsParam[i]:
			out[obj] = arEscaped
		case sum != nil:
			// Known callee that neither releases nor retains: a borrow.
		default:
			// Unknown callee (interface, func value, non-module code):
			// assume ownership moved.
			out[obj] = arEscaped
		}
	}
}

// escapeCaptured escapes every tracked object referenced inside a function
// literal: the closure may outlive the statement.
func (f *arenaFlow) escapeCaptured(lit *ast.FuncLit, out arenaFact) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := f.info.Uses[id]; obj != nil && out[obj] != arUntracked {
				out[obj] = arEscaped
			}
		}
		return true
	})
}

// isArenaGet reports whether call obtains a value from a module Arena.
func (f *arenaFlow) isArenaGet(call *ast.CallExpr) bool {
	return arenaMethod(f.info, f.modPath, call, "Get", "GetBuf")
}

// isArenaPut reports whether call returns a value to a module Arena.
func (f *arenaFlow) isArenaPut(call *ast.CallExpr) bool {
	return arenaMethod(f.info, f.modPath, call, "Put", "PutBuf")
}

func (f *arenaFlow) calleeReturnsArena(call *ast.CallExpr, result int) bool {
	callee := StaticCallee(f.info, call)
	sum := f.sums.Of(callee)
	return sum != nil && result < len(sum.ReturnsArena) && sum.ReturnsArena[result]
}

// arenaMethod reports whether call invokes one of the named methods on a
// module-internal type called Arena.
func arenaMethod(info *types.Info, modPath string, call *ast.CallExpr, names ...string) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	match := false
	for _, n := range names {
		if sel.Sel.Name == n {
			match = true
		}
	}
	if !match {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Arena" || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	return path == modPath || strings.HasPrefix(path, modPath+"/")
}

// trackableArenaType reports whether a parameter of type t could carry an
// arena-owned value worth summarizing: a pointer to a module-internal named
// type (e.g. *nn.Tensor) or a slice (e.g. []float32).
func trackableArenaType(t types.Type, modPath string) bool {
	switch u := t.(type) {
	case *types.Pointer:
		named, ok := u.Elem().(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return false
		}
		p := named.Obj().Pkg().Path()
		return p == modPath || strings.HasPrefix(p, modPath+"/")
	case *types.Slice:
		return true
	case *types.Named:
		return trackableArenaType(t.Underlying(), modPath)
	}
	return false
}

// identObj resolves e to the object of a plain identifier use, or nil.
func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[id]
}

// defOrUse resolves an identifier that may be a fresh definition (:=) or a
// plain assignment target.
func defOrUse(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// arenaSummarize computes the arena slice of fi's summary (ReleasesParam,
// RetainsParam, ReturnsArena) by running the flow over its body with the
// parameters tracked from entry. Returns whether the summary changed.
func arenaSummarize(fi *FuncInfo, sums *Summaries, sum *FuncSummary) bool {
	if fi.Decl.Body == nil {
		return false
	}
	params := paramObjects(fi)
	flow := newArenaFlow(fi.Pkg, sums, params)
	cfg := BuildCFG(fi.Decl.Body)
	facts := Forward(cfg, flow)

	releases := make([]bool, len(params))
	retains := make([]bool, len(params))
	if exitFact := ExitFact(cfg, flow, facts); exitFact != nil {
		exit := exitFact.(arenaFact)
		for i, p := range params {
			switch exit[p] {
			case arReleased:
				releases[i] = true
			case arEscaped:
				retains[i] = true
			default:
				// Live or untracked at exit: the caller keeps ownership.
			}
		}
	}

	returns := make([]bool, resultCount(fi.Obj))
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != len(returns) {
			return true
		}
		for j, res := range ret.Results {
			if call, ok := unparen(res).(*ast.CallExpr); ok {
				if flow.isArenaGet(call) || flow.calleeReturnsArena(call, 0) {
					returns[j] = true
					continue
				}
			}
			// A live tracked local returned directly also transfers a fresh
			// arena value to the caller.
			if obj := identObj(fi.Pkg.Info, res); obj != nil {
				if _, isRoot := flow.roots[obj]; isRoot {
					returns[j] = true
				}
			}
		}
		return true
	})

	changed := false
	for i := range releases {
		if sum.ReleasesParam[i] != releases[i] {
			sum.ReleasesParam[i] = releases[i]
			changed = true
		}
		if sum.RetainsParam[i] != retains[i] {
			sum.RetainsParam[i] = retains[i]
			changed = true
		}
	}
	for j := range returns {
		if sum.ReturnsArena[j] != returns[j] {
			sum.ReturnsArena[j] = returns[j]
			changed = true
		}
	}
	return changed
}

// runArenaLifetime reports leaks, double releases, and discarded Get
// results in the scoped packages, one diagnostic per owned value.
func runArenaLifetime(p *ModulePass) {
	nodes := make([]*FuncInfo, 0, len(p.Mod.Graph.Nodes))
	for _, fi := range p.Mod.Graph.Nodes {
		if hasSegment(fi.Pkg.Path, arenaScope...) && fi.Decl.Body != nil {
			nodes = append(nodes, fi)
		}
	}
	sortNodesByPos(nodes)
	for _, fi := range nodes {
		units := []*ast.BlockStmt{fi.Decl.Body}
		for _, lit := range fi.Lits {
			units = append(units, lit.Body)
		}
		for _, body := range units {
			arenaReportUnit(p, fi.Pkg, body)
		}
	}
}

// arenaReportUnit runs the flow over one function-like body and reports.
func arenaReportUnit(p *ModulePass, pkg *Package, body *ast.BlockStmt) {
	flow := newArenaFlow(pkg, p.Mod.Sums, nil)
	cfg := BuildCFG(body)
	facts := Forward(cfg, flow)

	// Replay the converged solution once, collecting double releases and
	// blank-identifier discards, plus Gets used as bare statements.
	flow.record = true
	WalkFacts(cfg, flow, facts, func(stmt ast.Stmt, before Fact) {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			return
		}
		if call, ok := unparen(es.X).(*ast.CallExpr); ok && flow.isArenaGet(call) {
			flow.discarded = append(flow.discarded, call)
		}
	})
	flow.record = false

	for _, call := range flow.discarded {
		p.Reportf(call.Pos(), "result of an Arena Get is discarded without being released")
	}

	if exitFact := ExitFact(cfg, flow, facts); exitFact != nil {
		exit := exitFact.(arenaFact)
		leaked := make([]types.Object, 0, len(flow.roots))
		for obj := range flow.roots {
			if exit[obj] == arLive {
				leaked = append(leaked, obj)
			}
		}
		sortObjectsByPos(leaked, flow)
		for _, obj := range leaked {
			p.Reportf(flow.roots[obj].Pos(),
				"arena value %q is not released on every path to return; Put/PutBuf it on early returns too, or transfer ownership explicitly",
				obj.Name())
		}
	}
	for _, call := range flow.doubles {
		p.Reportf(call.Pos(), "arena value is released more than once on some path")
	}
}

func sortObjectsByPos(objs []types.Object, f *arenaFlow) {
	for i := 1; i < len(objs); i++ {
		for j := i; j > 0 && f.roots[objs[j]].Pos() < f.roots[objs[j-1]].Pos(); j-- {
			objs[j], objs[j-1] = objs[j-1], objs[j]
		}
	}
}

// calleeName returns the method name of a selector call for messages.
func calleeName(call *ast.CallExpr) string {
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "call"
}
