package analysis

import "go/ast"

// This file is the generic forward-dataflow half of the analysis substrate.
// A check supplies a FlowProblem — an abstract-state type with entry, join,
// equality, and a per-statement transfer function — and Forward computes the
// fixpoint over a CFG with a deterministic worklist. Facts are opaque to the
// engine; the checks use small map-based states (variable → lifecycle state,
// or a held-lock set).

// A Fact is one abstract state. Transfer and Join must treat facts as
// immutable (copy-on-write) so block-entry facts can be cached and compared.
type Fact any

// A FlowProblem defines one forward dataflow analysis.
type FlowProblem interface {
	// Entry returns the fact at function entry.
	Entry() Fact
	// Transfer returns the fact after executing stmt with fact in.
	Transfer(stmt ast.Stmt, in Fact) Fact
	// Join merges two facts at a control-flow merge point.
	Join(a, b Fact) Fact
	// Equal reports whether two facts are indistinguishable (fixpoint test).
	Equal(a, b Fact) bool
}

// Forward runs the problem to fixpoint and returns the fact at the entry of
// every reachable block. Unreachable blocks are absent from the result.
func Forward(c *CFG, p FlowProblem) map[*CFGBlock]Fact {
	in := map[*CFGBlock]Fact{c.Entry: p.Entry()}
	// Deterministic worklist: blocks in index order, re-queued on change.
	work := []*CFGBlock{c.Entry}
	queued := map[*CFGBlock]bool{c.Entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false

		fact := in[blk]
		for _, s := range blk.Stmts {
			fact = p.Transfer(s, fact)
		}
		for _, succ := range blk.Succs {
			old, ok := in[succ]
			var merged Fact
			if !ok {
				merged = fact
			} else {
				merged = p.Join(old, fact)
			}
			if !ok || !p.Equal(old, merged) {
				in[succ] = merged
				if !queued[succ] {
					queued[succ] = true
					work = append(work, succ)
				}
			}
		}
	}
	return in
}

// WalkFacts replays the fixpoint solution statement by statement: for every
// reachable block it applies Transfer in order, calling visit with the fact
// in force immediately before each statement executes. Checks use this final
// pass to emit diagnostics (the fixpoint loop itself may visit a statement
// several times with intermediate facts).
func WalkFacts(c *CFG, p FlowProblem, in map[*CFGBlock]Fact, visit func(stmt ast.Stmt, before Fact)) {
	for _, blk := range c.Blocks {
		fact, ok := in[blk]
		if !ok {
			continue // unreachable
		}
		for _, s := range blk.Stmts {
			visit(s, fact)
			fact = p.Transfer(s, fact)
		}
	}
}

// ExitFact joins the facts flowing into the synthetic exit block — the
// abstract state at normal function return. Returns nil when no path
// reaches the exit (e.g. the body ends in panic or an infinite loop).
func ExitFact(c *CFG, p FlowProblem, in map[*CFGBlock]Fact) Fact {
	fact, ok := in[c.Exit]
	if !ok {
		return nil
	}
	return fact
}
