package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// This file is the whole-module half of the analysis substrate: a static
// call graph over every declared function and method of the loaded
// packages, plus its strongly connected components in bottom-up (callee
// before caller) order. The interprocedural checks walk the SCCs to compute
// per-function summaries that converge even through recursion, then make
// one reporting pass with the summaries fixed (see summary.go).
//
// Edges are static: direct calls to declared functions and to methods with
// a concrete receiver. Calls through interfaces, function values, and
// non-module code have no edge; checks treat such call sites as "unknown
// callee" and fall back to their conservative default (e.g. the arena check
// assumes ownership escapes).

// A FuncInfo is one declared function or method of the module.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	// Callees are the statically resolved module-internal callees, deduped,
	// in first-call-site order. Calls inside function literals declared in
	// the body count as calls of this function: the literal runs with the
	// function's dynamic extent for every pattern the checks care about
	// (pool tasks, spawned goroutines the function joins).
	Callees []*FuncInfo

	// Lits are the function literals declared (at any depth) in the body.
	Lits []*ast.FuncLit
}

// A CallGraph indexes the module's functions and their SCCs.
type CallGraph struct {
	// Funcs maps every declared function object to its node.
	Funcs map[*types.Func]*FuncInfo
	// Nodes lists the functions in deterministic (package, position) order.
	Nodes []*FuncInfo
	// SCCs holds the strongly connected components in bottom-up order:
	// every SCC appears after all SCCs it calls into.
	SCCs [][]*FuncInfo
}

// BuildCallGraph constructs the call graph of the loaded packages.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Funcs: map[*types.Func]*FuncInfo{}}
	// Pass 1: nodes.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				fi := &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg}
				g.Funcs[obj] = fi
				g.Nodes = append(g.Nodes, fi)
			}
		}
	}
	// Pass 2: edges and literals.
	for _, fi := range g.Nodes {
		if fi.Decl.Body == nil {
			continue
		}
		seen := map[*FuncInfo]bool{}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.FuncLit:
				fi.Lits = append(fi.Lits, e)
			case *ast.CallExpr:
				if callee := StaticCallee(fi.Pkg.Info, e); callee != nil {
					if target := g.Funcs[callee]; target != nil && !seen[target] {
						seen[target] = true
						fi.Callees = append(fi.Callees, target)
					}
				}
			}
			return true
		})
	}
	g.computeSCCs()
	return g
}

// StaticCallee resolves the declared *types.Func a call expression
// statically invokes: a package-level function, a method with a concrete
// receiver, or a dotted cross-package function. Returns nil for builtins,
// conversions, function values, and interface method calls.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			fn, _ := sel.Obj().(*types.Func)
			if fn == nil {
				return nil
			}
			// An interface method has no body to analyze; the declared
			// concrete methods carry the Funcs entries, so an abstract
			// method simply fails the lookup at the caller.
			if types.IsInterface(sel.Recv()) {
				return nil
			}
			return fn
		}
		// Package-qualified call (pkg.Fn).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// computeSCCs runs Tarjan's algorithm. Tarjan emits each component only
// after every component it can reach, so the natural emission order is
// exactly the bottom-up order the summary computation wants.
func (g *CallGraph) computeSCCs() {
	index := map[*FuncInfo]int{}
	low := map[*FuncInfo]int{}
	onStack := map[*FuncInfo]bool{}
	var stack []*FuncInfo
	next := 0

	var strongconnect func(v *FuncInfo)
	strongconnect = func(v *FuncInfo) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range v.Callees {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []*FuncInfo
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			g.SCCs = append(g.SCCs, scc)
		}
	}
	for _, v := range g.Nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
}

// BottomUp invokes update on every function in callee-before-caller order,
// iterating each SCC until no update call inside it reports a change — the
// standard interprocedural summary fixpoint (recursive cycles converge
// because summary lattices only grow).
func (g *CallGraph) BottomUp(update func(fi *FuncInfo) (changed bool)) {
	for _, scc := range g.SCCs {
		// The iteration bound backstops a non-monotone summarizer: a real
		// fixpoint converges in a handful of rounds (SCCs here are almost
		// always singletons), and a capped approximation is still sound for
		// the checks, which treat summaries as best-effort evidence.
		for round := 0; round < len(scc)+8; round++ {
			changed := false
			for _, fi := range scc {
				if update(fi) {
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
}

// sortNodesByPos is used internally by checks that need deterministic
// reporting order independent of map iteration.
func sortNodesByPos(nodes []*FuncInfo) {
	sort.Slice(nodes, func(i, j int) bool {
		return nodes[i].Decl.Pos() < nodes[j].Decl.Pos()
	})
}
