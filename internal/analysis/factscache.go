package analysis

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// factsSchema versions the on-disk facts-cache format AND the semantics of
// the checks themselves. Bump it whenever a check's logic, a summary fact,
// or the diagnostic encoding changes so stale entries self-invalidate.
// (The driver additionally folds the analyzer package's own source hash
// into every key when it is analyzing this repository, so in-tree check
// edits invalidate the cache even without a bump.)
const factsSchema = 1

// factsEntry is one cache record: the findings one cache key produced.
// Per-package keys store the findings attributed to that package;
// the global key stores the combined findings of all Global checks.
type factsEntry struct {
	Schema  int              `json:"schema"`
	Key     string           `json:"key"`
	Package string           `json:"package,omitempty"` // "" for the global entry
	Diags   []JSONDiagnostic `json:"diags"`
}

// FactsCache is an on-disk cache of per-package analysis findings keyed by
// dependency-closure content hashes. A nil *FactsCache is valid and always
// misses, so callers never branch on whether caching is enabled. Entries
// are written via temp-file + rename, so concurrent writers are safe and
// readers never observe a torn file.
type FactsCache struct {
	dir string
}

// factsMaxEntries caps the cache size. Entries are content-keyed, so every
// edit mints a new key and no key is ever overwritten; without eviction the
// persistent directory shared by CI and developers would grow without
// bound. OpenFactsCache keeps the newest factsMaxEntries files and deletes
// the rest.
const factsMaxEntries = 4096

// OpenFactsCache opens (creating if needed) a facts cache rooted at dir,
// evicting the oldest entries beyond factsMaxEntries. An empty dir disables
// caching and returns nil.
func OpenFactsCache(dir string) (*FactsCache, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("analysis: open facts cache: %w", err)
	}
	pruneFactsDir(dir, factsMaxEntries)
	return &FactsCache{dir: dir}, nil
}

// pruneFactsDir keeps the max newest cache files (entries and writer temp
// files alike, ordered by mtime) and deletes the rest — dead keys from old
// edits, plus temp files abandoned by interrupted writers, which age to the
// bottom of the order. Best-effort: eviction is hygiene, never correctness,
// so every error is ignored.
func pruneFactsDir(dir string, max int) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	type file struct {
		name string
		mod  time.Time
	}
	var files []file
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if filepath.Ext(name) != ".json" && !strings.HasSuffix(name, ".tmp") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, file{name, info.ModTime()})
	}
	if len(files) <= max {
		return
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mod.Equal(files[j].mod) {
			return files[i].mod.After(files[j].mod)
		}
		return files[i].name < files[j].name
	})
	for _, f := range files[max:] {
		os.Remove(filepath.Join(dir, f.name))
	}
}

// Dir returns the cache directory, or "" for a nil cache.
func (c *FactsCache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

func (c *FactsCache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get returns the findings cached under key, if present and valid. Invalid
// or mismatched entries (schema drift, truncated writes, hash collisions in
// the file name) are deleted so they cannot go stale silently.
func (c *FactsCache) Get(key string) ([]JSONDiagnostic, bool) {
	if c == nil {
		return nil, false
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var e factsEntry
	if err := json.Unmarshal(data, &e); err != nil || e.Schema != factsSchema || e.Key != key {
		os.Remove(c.path(key))
		return nil, false
	}
	return e.Diags, true
}

// Put stores findings under key. Cache write failures are reported but are
// not fatal to an analysis run: the caller already holds the results.
func (c *FactsCache) Put(key, pkgPath string, diags []JSONDiagnostic) error {
	if c == nil {
		return nil
	}
	e := factsEntry{Schema: factsSchema, Key: key, Package: pkgPath, Diags: diags}
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, "facts-*.tmp")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if err := errors.Join(werr, cerr); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Len reports how many entries the cache currently holds.
func (c *FactsCache) Len() int {
	if c == nil {
		return 0
	}
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	return n
}
