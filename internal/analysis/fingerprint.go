package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/build"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// This file is the incremental driver's view of the module BEFORE any
// type-checking happens: a cheap content-addressed index of every package
// (which files it has, what it imports inside the module, and a SHA-256 of
// its sources). From it the driver derives each package's dependency-
// closure key — the cache key under which that package's findings are
// stored. A fully-warm run costs one directory walk and one ImportsOnly
// parse per file; no package is loaded or type-checked at all.

// pkgMeta is the index entry for one package directory.
type pkgMeta struct {
	Path    string   // import path
	Dir     string   // absolute source directory
	Files   []string // buildable non-test file names, sorted
	Imports []string // module-internal imports, sorted, deduplicated
	// hash is the hex SHA-256 of the package's own file contents: the
	// buildable Go files plus the directory's assembly files and
	// constraint-excluded Go files, which never reach the type-checker but
	// are read by the asm-abi check — an edit to either side of a build
	// partition must invalidate the package's cache entries.
	hash string
}

// moduleIndex indexes every package of one module by import path.
type moduleIndex struct {
	Root    string
	ModPath string
	Pkgs    map[string]*pkgMeta
	Paths   []string // sorted import paths

	salt    string
	closure map[string]string // memoized closure keys
}

// moduleGoDirs returns every directory under root that holds buildable
// non-test Go files, skipping testdata, hidden, and underscore-prefixed
// trees — the same selection LoadAll uses, so index and loader always
// agree on what a "module package" is.
func moduleGoDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// buildableFiles lists dir's non-test Go files that pass the build
// constraints — the same filter load() applies before type-checking.
func buildableFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		files = append(files, name)
	}
	sort.Strings(files)
	return files, nil
}

// unbuildableSources lists dir's non-test files that the loader skips but a
// check may still read: assembly files and Go files excluded by build
// constraints. buildable is the sorted buildableFiles result for dir.
func unbuildableSources(dir string, buildable []string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	inBuild := map[string]bool{}
	for _, name := range buildable {
		inBuild[name] = true
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if strings.HasSuffix(name, ".s") || (strings.HasSuffix(name, ".go") && !inBuild[name]) {
			files = append(files, name)
		}
	}
	sort.Strings(files)
	return files, nil
}

// indexModule scans the module tree and builds the package index. salt is
// folded into every closure key; the driver derives it from the facts
// schema, the Go version, and the selected check set, so changing any of
// them invalidates the whole cache.
func indexModule(root, modPath, salt string) (*moduleIndex, error) {
	dirs, err := moduleGoDirs(root)
	if err != nil {
		return nil, err
	}
	idx := &moduleIndex{
		Root:    root,
		ModPath: modPath,
		Pkgs:    map[string]*pkgMeta{},
		salt:    salt,
		closure: map[string]string{},
	}
	fset := token.NewFileSet()
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		files, err := buildableFiles(dir)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		meta := &pkgMeta{Path: ip, Dir: dir, Files: files}
		h := sha256.New()
		seen := map[string]bool{}
		for _, name := range files {
			full := filepath.Join(dir, name)
			data, err := os.ReadFile(full)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(h, "%s\x00%d\x00%s", name, len(data), data)
			// ImportsOnly parsing stops after the import block — the cheap
			// part of the file — which is all the dependency DAG needs.
			f, err := parser.ParseFile(fset, full, data, parser.ImportsOnly)
			if err != nil {
				return nil, fmt.Errorf("analysis: scan %s: %w", full, err)
			}
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil || seen[p] || p == ip {
					continue
				}
				seen[p] = true
				if p == modPath || strings.HasPrefix(p, modPath+"/") {
					meta.Imports = append(meta.Imports, p)
				}
			}
		}
		sort.Strings(meta.Imports)
		extras, err := unbuildableSources(dir, files)
		if err != nil {
			return nil, err
		}
		for _, name := range extras {
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(h, "\x01%s\x00%d\x00%s", name, len(data), data)
		}
		meta.hash = hex.EncodeToString(h.Sum(nil))
		idx.Pkgs[ip] = meta
		idx.Paths = append(idx.Paths, ip)
	}
	sort.Strings(idx.Paths)
	return idx, nil
}

// ClosureKey returns the cache key of one package: a hash of the salt, the
// package's own content hash, and the closure keys of every module-internal
// import. Any edit anywhere in the package's dependency closure changes the
// key; edits elsewhere in the module do not.
func (idx *moduleIndex) ClosureKey(ip string) (string, error) {
	if k, ok := idx.closure[ip]; ok {
		if k == "" {
			return "", fmt.Errorf("analysis: import cycle through %s", ip)
		}
		return k, nil
	}
	meta := idx.Pkgs[ip]
	if meta == nil {
		return "", fmt.Errorf("analysis: package %s not in module index", ip)
	}
	idx.closure[ip] = "" // cycle marker
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00", idx.salt, ip, meta.hash)
	for _, dep := range meta.Imports {
		dk, err := idx.ClosureKey(dep)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s\x00", dk)
	}
	k := hex.EncodeToString(h.Sum(nil))
	idx.closure[ip] = k
	return k, nil
}

// ClosureHas reports whether ip, or any module-internal package in its
// import closure, is in set. The driver uses it to keep findings computed
// from a broken type-check out of the facts cache.
func (idx *moduleIndex) ClosureHas(ip string, set map[string]bool) bool {
	if len(set) == 0 {
		return false
	}
	seen := map[string]bool{}
	var walk func(string) bool
	walk = func(p string) bool {
		if seen[p] {
			return false
		}
		seen[p] = true
		if set[p] {
			return true
		}
		meta := idx.Pkgs[p]
		if meta == nil {
			return false
		}
		for _, dep := range meta.Imports {
			if walk(dep) {
				return true
			}
		}
		return false
	}
	return walk(ip)
}

// GlobalKey hashes the closure keys of the whole target set (plus an extra
// salt component for the global check names). Global checks — whose
// findings in one package can change when any other package changes — are
// cached under this key: any edit to any target's closure forces a re-run.
func (idx *moduleIndex) GlobalKey(extraSalt string, targets []string) (string, error) {
	sorted := append([]string(nil), targets...)
	sort.Strings(sorted)
	h := sha256.New()
	fmt.Fprintf(h, "global\x00%s\x00%s\x00", idx.salt, extraSalt)
	for _, ip := range sorted {
		k, err := idx.ClosureKey(ip)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s\x00%s\x00", ip, k)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// MatchPatterns filters the module's import paths by go-style package
// patterns relative to the module root: "./..." matches everything,
// "./dir/..." a subtree, "./dir" one package, and "." or "./" only the
// module-root package (as in go tooling, where "." is the current-directory
// package, and the driver always runs from the module root). No patterns
// means everything.
func (idx *moduleIndex) MatchPatterns(patterns []string) []string {
	if len(patterns) == 0 {
		return append([]string(nil), idx.Paths...)
	}
	var out []string
	for _, ip := range idx.Paths {
		if matchesPattern(ip, patterns, idx.ModPath) {
			out = append(out, ip)
		}
	}
	return out
}

func matchesPattern(path string, patterns []string, modPath string) bool {
	for _, pat := range patterns {
		pat = strings.TrimSuffix(strings.TrimPrefix(pat, "./"), "/")
		if pat == "..." {
			return true
		}
		if sub, ok := strings.CutSuffix(pat, "/..."); ok {
			prefix := modPath + "/" + sub
			if path == prefix || strings.HasPrefix(path, prefix+"/") {
				return true
			}
			continue
		}
		if path == modPath+"/"+pat || ((pat == "" || pat == ".") && path == modPath) {
			return true
		}
	}
	return false
}
