package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicConsistency flags mixed atomic/plain access: a variable or field
// that is passed to sync/atomic (AddInt64(&x, …), LoadUint32(&f.n), …)
// anywhere in the module must be accessed through sync/atomic everywhere.
// A single plain read racing an atomic write is still a data race — the
// atomic call on one side buys nothing — and such mixes typically appear
// when telemetry counters grow a "fast path" read. Typed atomics
// (atomic.Int64 and friends) make the mix inexpressible and are the
// preferred fix; the other is a mutex on every access.
//
// Global: pass 1 collects atomically-accessed objects across the whole
// module, pass 2 flags plain accesses to them wherever they appear, so any
// package can change the verdict for any other.
var AtomicConsistency = &Check{
	Name: "atomic-consistency",
	Doc: "a variable accessed via sync/atomic somewhere is accessed " +
		"plainly somewhere else; use sync/atomic (or a typed atomic.Int64) " +
		"on every access, or a mutex on every access — a proven-unshared " +
		"phase (e.g. constructor init) can be annotated " +
		"//livenas:allow atomic-consistency",
	RunModule: runAtomicConsistency,
	Global:    true,
}

// atomicFuncPrefixes: the sync/atomic package-level operations whose first
// argument is a pointer to the shared word.
var atomicFuncPrefixes = []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"}

// isAtomicPkgFunc reports whether call is sync/atomic.F(&x, …) for a
// pointer-first-arg F.
func isAtomicPkgFunc(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := info.Uses[id].(*types.PkgName)
	if !ok || pkg.Imported().Path() != "sync/atomic" {
		return false
	}
	for _, p := range atomicFuncPrefixes {
		if strings.HasPrefix(sel.Sel.Name, p) {
			return true
		}
	}
	return false
}

// atomicTargetObj resolves the shared word behind an atomic call's first
// argument: &x, &s.f, &arr[i] — returning the variable or field object, or
// nil when the target is not a stable named object (map values, results of
// calls). The returned ident is the mention to exempt from pass 2.
func atomicTargetObj(info *types.Info, arg ast.Expr) (types.Object, *ast.Ident) {
	u, ok := unparen(arg).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil, nil
	}
	switch t := unparen(u.X).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[t].(*types.Var); ok {
			return v, t
		}
	case *ast.SelectorExpr:
		if v, ok := info.Uses[t.Sel].(*types.Var); ok && v.IsField() {
			return v, t.Sel
		}
	case *ast.IndexExpr:
		// &xs[i]: consistency is per-element and index exprs rarely denote
		// the same element statically; track the backing object anyway so a
		// plain xs[j] read is at least visible.
		if id, ok := unparen(t.X).(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok {
				return v, id
			}
		}
	}
	return nil, nil
}

func runAtomicConsistency(p *ModulePass) {
	// Pass 1: every object that is the target of a sync/atomic operation,
	// plus the exact idents inside those first args (exempt from pass 2 —
	// they ARE the atomic accesses).
	atomicObjs := map[types.Object]string{} // obj -> representative op name
	exempt := map[*ast.Ident]bool{}
	for _, pkg := range p.Mod.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicPkgFunc(info, call) || len(call.Args) == 0 {
					return true
				}
				obj, id := atomicTargetObj(info, call.Args[0])
				if obj == nil {
					return true
				}
				if _, seen := atomicObjs[obj]; !seen {
					sel := unparen(call.Fun).(*ast.SelectorExpr)
					atomicObjs[obj] = "atomic." + sel.Sel.Name
				}
				exempt[id] = true
				return true
			})
		}
	}
	if len(atomicObjs) == 0 {
		return
	}
	// Pass 2: every other mention of those objects is a plain access.
	// Mentions inside the value arguments of an atomic call count too:
	// atomic.AddInt64(&x, x) reads x plainly on the right.
	for _, pkg := range p.Mod.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || exempt[id] {
					return true
				}
				obj := info.Uses[id]
				if obj == nil {
					return true
				}
				op, tracked := atomicObjs[obj]
				if !tracked {
					return true
				}
				p.Reportf(id.Pos(),
					"plain access to %s, which is accessed via %s elsewhere in the module; every access must be atomic (prefer a typed atomic value) or mutex-guarded",
					objName(obj), op)
				return true
			})
		}
	}
}

// objName renders a tracked object for diagnostics without positions (so
// baseline entries survive reformatting): package-qualified for fields and
// globals, bare for locals.
func objName(obj types.Object) string {
	if obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return obj.Name()
}
