// Package other is outside the numeric-kernel scope; nothing is flagged.
package other

func f(xs []float32) float64 {
	var acc float64
	for _, x := range xs {
		acc += float64(x)
	}
	return acc
}
