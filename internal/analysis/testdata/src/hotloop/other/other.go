// Package other is outside the numeric-kernel scope; nothing is flagged.
package other

func f(xs []float32) float64 {
	var acc float64
	for _, x := range xs {
		acc += float64(x)
	}
	return acc
}

// Grid has At/Set accessors too, but this package is outside the tensor-
// kernel scope, so calling them in a loop is not flagged.
type Grid struct {
	W   int
	Pix []float32
}

func (g *Grid) At(y, x int) float32     { return g.Pix[y*g.W+x] }
func (g *Grid) Set(y, x int, v float32) { g.Pix[y*g.W+x] = v }

func blit(dst, src *Grid, n int) {
	for i := 0; i < n; i++ {
		dst.Set(0, i, src.At(0, i))
	}
}
