// Package nn sits inside the numeric-kernel scope (path segment "nn");
// cross-precision float conversions inside loops are flagged here.
package nn

func sum(xs []float32) float64 {
	var acc float64
	for _, x := range xs {
		acc += float64(x) // want hot-loop-precision
	}
	return acc
}

func scale(xs []float32, f float64) {
	f32 := float32(f) // hoisted conversion: ok
	for i := range xs {
		xs[i] *= f32
		_ = float32(f) // want hot-loop-precision
	}
}

func intsAndConsts(xs []float32) {
	for i := range xs {
		xs[i] += float32(i)   // int→float32: ok
		xs[i] *= float32(1.5) // constant: ok
	}
}

// deliberate keeps its accumulator in float64 on purpose; the directive in
// this doc comment suppresses the check for the whole function.
//
//livenas:allow hot-loop-precision double-precision accumulation is deliberate
func deliberate(xs []float32) float64 {
	var acc float64
	for _, x := range xs {
		acc += float64(x) * float64(x)
	}
	return acc
}

func nested(m [][]float32) float64 {
	var acc float64
	for _, row := range m {
		for _, v := range row {
			acc += float64(v) // want hot-loop-precision
		}
	}
	return acc
}
