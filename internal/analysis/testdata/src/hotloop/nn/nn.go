// Package nn sits inside the numeric-kernel scope (path segment "nn");
// cross-precision float conversions inside loops are flagged here.
package nn

func sum(xs []float32) float64 {
	var acc float64
	for _, x := range xs {
		acc += float64(x) // want hot-loop-precision
	}
	return acc
}

func scale(xs []float32, f float64) {
	f32 := float32(f) // hoisted conversion: ok
	for i := range xs {
		xs[i] *= f32
		_ = float32(f) // want hot-loop-precision
	}
}

func intsAndConsts(xs []float32) {
	for i := range xs {
		xs[i] += float32(i)   // int→float32: ok
		xs[i] *= float32(1.5) // constant: ok
	}
}

// deliberate keeps its accumulator in float64 on purpose; the directive in
// this doc comment suppresses the check for the whole function.
//
//livenas:allow hot-loop-precision double-precision accumulation is deliberate
func deliberate(xs []float32) float64 {
	var acc float64
	for _, x := range xs {
		acc += float64(x) * float64(x)
	}
	return acc
}

func nested(m [][]float32) float64 {
	var acc float64
	for _, row := range m {
		for _, v := range row {
			acc += float64(v) // want hot-loop-precision
		}
	}
	return acc
}

// Tensor mimics the real nn.Tensor: a module-internal type with per-element
// accessors. Calling them inside a loop redoes full index arithmetic per
// sample and is flagged; row-strided slice access is the replacement.
type Tensor struct {
	H, W int
	Data []float32
}

func (t *Tensor) At(y, x int) float32     { return t.Data[y*t.W+x] }
func (t *Tensor) Set(y, x int, v float32) { t.Data[y*t.W+x] = v }

func copyPerElement(dst, src *Tensor) {
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			dst.Set(y, x, src.At(y, x)) // want hot-loop-precision
		}
	}
}

func copyRows(dst, src *Tensor) {
	v := src.At(0, 0) // outside a loop: ok
	dst.Set(0, 0, v)
	for y := 0; y < src.H; y++ {
		copy(dst.Data[y*dst.W:(y+1)*dst.W], src.Data[y*src.W:(y+1)*src.W]) // row-strided: ok
	}
}

// referencePath keeps the per-element accessors on purpose (e.g. a retained
// scalar baseline); the directive suppresses the check.
//
//livenas:allow hot-loop-precision scalar reference path kept as baseline
func referencePath(dst, src *Tensor) {
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			dst.Set(y, x, src.At(y, x))
		}
	}
}

// Quantization-boundary conversions: sized signed ints crossing to or from
// a float inside a loop are the int8 path's hidden (de)quantize steps.
func quantize(xs []float32, scale float32, out []int8) {
	for i, x := range xs {
		out[i] = int8(x * scale) // want hot-loop-precision
	}
}

func dequantize(acc []int32, m float32, out []float32) {
	for i, a := range acc {
		out[i] = float32(a) * m // want hot-loop-precision
	}
}

func requantNarrow(acc []int32, out []int16) {
	for i, a := range acc {
		out[i] = int16(a) // sized-int→sized-int narrowing: ok
	}
}

func pixelIO(pix []uint8, out []float32) {
	for i, v := range pix {
		out[i] = float32(v) / 255 // uint8→float32 pixel I/O: ok
	}
	n := 0
	for i := range out {
		out[i] += float32(i)   // int→float32 index arithmetic: ok
		_ = int64(out[i] * 0)  // float32→int64 counter: ok
		n += int(out[i] + 0.5) // float32→int: ok
	}
	_ = n
}

// lutBuild hoists the per-value conversion into a 256-entry table on
// purpose; the directive suppresses the construction-time loop.
//
//livenas:allow hot-loop-precision one-time LUT construction, not a per-pixel loop
func lutBuild(scale float64) [256]int16 {
	var lut [256]int16
	for v := range lut {
		lut[v] = int16(float64(v) * scale)
	}
	return lut
}
