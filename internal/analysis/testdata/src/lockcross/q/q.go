// Package q acquires B before A, closing the cycle against package p.
package q

import "fix/locks"

func BthenA(a *locks.A, b *locks.B) {
	b.Mu.Lock()
	a.Mu.Lock() // want lock-order
	a.Mu.Unlock()
	b.Mu.Unlock()
}
