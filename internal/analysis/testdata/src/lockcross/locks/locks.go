// Package locks defines the shared lock classes; it contains no
// acquisitions itself, so each half of the cross-package cycle lives
// entirely in p or q.
package locks

import "sync"

type A struct{ Mu sync.Mutex }
type B struct{ Mu sync.Mutex }
