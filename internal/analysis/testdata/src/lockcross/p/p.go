// Package p acquires A before B — a finding only because package q takes
// the opposite order: the cycle cannot be seen from p's dependency closure
// alone, which is exactly why lock-order is Global.
package p

import "fix/locks"

func AthenB(a *locks.A, b *locks.B) {
	a.Mu.Lock()
	b.Mu.Lock() // want lock-order
	b.Mu.Unlock()
	a.Mu.Unlock()
}
