// Package sim sits inside the determinism scope (path segment "sim").
// Direct nondeterministic sources, order-sensitive map folds, completion-
// order folds, and calls to tainted out-of-scope helpers are all flagged;
// the sanctioned patterns (seeded generators, collect-then-sort, keyed
// writes, fixed-slot goroutine results) are not.
package sim

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"fix/util"
)

func direct(injected *rand.Rand) time.Duration {
	_ = rand.Intn(4)      // want determinism-taint
	start := time.Now()   // want determinism-taint
	_ = time.Since(start) // want determinism-taint

	r := rand.New(rand.NewSource(1)) // seeded constructors: ok
	_ = r.Intn(4)                    // method on a seeded source: ok
	_ = injected.Float64()           // ok

	t0 := time.Now() //livenas:allow determinism-taint fixture wall-clock site
	_ = t0

	return time.Until(t0.Add(time.Second)) // want determinism-taint
}

func mapFolds(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want determinism-taint
		sum += v
	}

	// The sanctioned fix: collect the keys, sort them, fold in order.
	keys := make([]string, 0, len(m))
	for k := range m { // ok: collect-then-sort
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sorted float64
	for _, k := range keys {
		sorted += m[k]
	}

	// Keyed writes and integer counting are order-insensitive.
	counts := map[string]int{}
	n := 0
	for k := range m { // ok: keyed write + integer count
		counts[k] = len(k)
		n++
	}
	_ = counts
	_ = n
	return sum + sorted
}

type agg struct{ keys []string }

func fieldCollect(m map[string]int) agg {
	var a agg
	for k := range m { // ok: collect-then-sort through a struct field
		a.keys = append(a.keys, k)
	}
	sort.Strings(a.keys)
	return a
}

func firstKey(m map[string]int) string {
	for k := range m { // want determinism-taint
		return k
	}
	return ""
}

func syncMapFolds(sm *sync.Map) []string {
	var keys []string
	sm.Range(func(k, v any) bool { // want determinism-taint
		keys = append(keys, k.(string))
		return true
	})

	n := 0
	sm.Range(func(k, v any) bool { // ok: counting is order-insensitive
		n++
		return true
	})
	_ = n
	return keys
}

func completionOrder(vals []float64) ([]float64, []float64) {
	var out []float64
	var wg sync.WaitGroup
	for _, v := range vals {
		v := v
		wg.Add(1)
		go func() {
			defer wg.Done()
			out = append(out, v*2) // want determinism-taint
		}()
	}
	wg.Wait()

	// The sanctioned fix: one fixed slot per goroutine.
	res := make([]float64, len(vals))
	var wg2 sync.WaitGroup
	for i, v := range vals {
		i, v := i, v
		wg2.Add(1)
		go func() { // ok: indexed write into a fixed slot
			defer wg2.Done()
			res[i] = v * 2
		}()
	}
	wg2.Wait()
	return out, res
}

func recvFolds(ch chan float64, ints chan int, n int) ([]float64, float64, int) {
	var xs []float64
	var acc float64
	cnt := 0
	for i := 0; i < n; i++ {
		xs = append(xs, <-ch) // want determinism-taint
	}
	for i := 0; i < n; i++ {
		acc += <-ch // want determinism-taint
	}
	for i := 0; i < n; i++ {
		cnt += <-ints // ok: integer accumulation commutes
	}
	return xs, acc, cnt
}

func laundered() int64 {
	a := util.Stamp() // want determinism-taint
	b := util.Wrap()  // want determinism-taint
	c := util.Pure(3) // ok: pure helper
	d := util.Stamp() //livenas:allow determinism-taint fixture justified call
	return a + b + int64(c) + d
}
