// Package util is outside the determinism scope: its own wall-clock reads
// are not flagged here, but the taint they introduce is recorded in the
// function summaries and reported at call sites inside the scope.
package util

import "time"

// Stamp reads the wall clock directly.
func Stamp() int64 { return time.Now().UnixNano() }

// Wrap launders the taint through one more call level.
func Wrap() int64 { return Stamp() }

// Pure is deterministic; calls to it are never flagged.
func Pure(x int) int { return x * 2 }
