// Package sim sits inside the determinism scope (path segment "sim");
// global rand and wall-clock reads are flagged here.
package sim

import (
	"math/rand"
	"time"
)

func f(injected *rand.Rand) time.Duration {
	_ = rand.Intn(4)      // want determinism
	_ = rand.Float64()    // want determinism
	start := time.Now()   // want determinism
	_ = time.Since(start) // want determinism

	r := rand.New(rand.NewSource(1)) // seeded constructors: ok
	_ = r.Intn(4)                    // method on injected source: ok
	_ = injected.Float64()           // ok

	t0 := time.Now() //livenas:allow determinism fixture wall-clock site

	return time.Until(t0.Add(time.Second)) // want determinism
}
