// Package other is outside the determinism scope; nothing is flagged.
package other

import "time"

func Now() time.Time { return time.Now() }
