// Package a exercises the switch-exhaustiveness check.
package a

type MsgType uint8

const (
	MsgHello MsgType = iota
	MsgVideo
	MsgPatch
)

func partial(t MsgType) {
	switch t { // want switch-exhaustiveness
	case MsgHello:
	}
}

func full(t MsgType) {
	switch t {
	case MsgHello, MsgVideo:
	case MsgPatch:
	}
}

func withDefault(t MsgType) {
	switch t {
	case MsgVideo:
	default:
	}
}

func allowed(t MsgType) {
	switch t { //livenas:allow switch-exhaustiveness partial by design
	case MsgPatch:
	}
}

func nonEnum(s string) {
	switch s { // tag is not an enum type: ok
	case "x":
	}
}
