// Package a mixes sync/atomic and plain access to the same words — the
// race pattern the atomic-consistency check exists for. Typed atomics make
// the mix inexpressible and are never flagged.
package a

import "sync/atomic"

type counter struct {
	hits  int64
	total int64        // plain-only: never flagged
	safe  atomic.Int64 // typed atomic: never flagged
}

func (c *counter) inc() {
	atomic.AddInt64(&c.hits, 1)
	c.safe.Add(1)
	c.total++
}

func (c *counter) readPlain() int64 {
	return c.hits // want atomic-consistency
}

func (c *counter) readAtomic() int64 {
	return atomic.LoadInt64(&c.hits) + c.safe.Load() // ok
}

func (c *counter) doubleRace() {
	atomic.AddInt64(&c.hits, c.hits) // want atomic-consistency
}

var flag int32

func setFlag() { atomic.StoreInt32(&flag, 1) }

func readFlag() int32 {
	return flag // want atomic-consistency
}

// newCounter initializes before the value is shared; the mix is justified
// for the whole constructor.
//
//livenas:allow atomic-consistency init happens before any goroutine can see the value
func newCounter() *counter {
	c := &counter{}
	c.hits = 0
	return c
}
