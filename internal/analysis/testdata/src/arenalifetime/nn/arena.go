// Package nn is a miniature of the real internal/nn arena contract: Get
// and GetBuf hand out owned values, Put and PutBuf take them back.
package nn

// Tensor stands in for the real activation tensor.
type Tensor struct{ Data []float32 }

// Arena matches the structural shape the check keys on: a module-internal
// named type called Arena with Get/GetBuf/Put/PutBuf methods.
type Arena struct{}

func (a *Arena) Get(c, h, w int) *Tensor { return &Tensor{Data: make([]float32, c*h*w)} }
func (a *Arena) GetBuf(n int) []float32  { return make([]float32, n) }
func (a *Arena) Put(t *Tensor)           {}
func (a *Arena) PutBuf(b []float32)      {}
