package nn

// sink gives retained values somewhere observable to escape to.
var sink *Tensor

// LeakOnEarlyReturn forgets the tensor on the early-return path.
func LeakOnEarlyReturn(a *Arena, cond bool) {
	t := a.Get(1, 2, 3) // want arena-lifetime
	if cond {
		return
	}
	a.Put(t)
}

// Balanced releases on the only path.
func Balanced(a *Arena) {
	t := a.Get(1, 2, 3)
	a.Put(t)
}

// DeferredRelease covers every exit, including the early return.
func DeferredRelease(a *Arena, cond bool) {
	t := a.Get(1, 2, 3)
	defer a.Put(t)
	if cond {
		return
	}
	t.Data[0] = 1
}

// DoubleRelease returns the same value twice.
func DoubleRelease(a *Arena) {
	t := a.Get(1, 2, 3)
	a.Put(t)
	a.Put(t) // want arena-lifetime
}

// Alloc transfers ownership to the caller: not a leak here.
func Alloc(a *Arena) *Tensor {
	t := a.Get(1, 2, 3)
	return t
}

// AllocUser gets a fresh arena value from a helper (via the ReturnsArena
// summary) and leaks it.
func AllocUser(a *Arena) {
	t := Alloc(a) // want arena-lifetime
	t.Data[0] = 1
}

// release is a helper whose summary proves it releases its argument.
func release(a *Arena, t *Tensor) { a.Put(t) }

// HelperRelease is balanced through the interprocedural summary.
func HelperRelease(a *Arena) {
	t := a.Get(1, 2, 3)
	release(a, t)
}

// borrow neither releases nor retains: callers keep ownership.
func borrow(t *Tensor) int { return len(t.Data) }

// LeakPastBorrow passes to a borrowing helper and never releases.
func LeakPastBorrow(a *Arena) {
	t := a.Get(1, 2, 3) // want arena-lifetime
	_ = borrow(t)
}

// stash retains its argument, so callers have transferred ownership.
func stash(t *Tensor) { sink = t }

// TransferToStash hands the value off: not a leak here.
func TransferToStash(a *Arena) {
	t := a.Get(1, 2, 3)
	stash(t)
}

// Discard drops the Get result on the floor.
func Discard(a *Arena) {
	a.Get(1, 2, 3) // want arena-lifetime
}

// LeakBuf covers the GetBuf/PutBuf pair.
func LeakBuf(a *Arena, cond bool) {
	b := a.GetBuf(16) // want arena-lifetime
	if cond {
		return
	}
	a.PutBuf(b)
}

// LoopRecycle mirrors the real backward pass: the loop variable is rebound
// each trip and released exactly once per binding.
func LoopRecycle(a *Arena, live []*Tensor) {
	for _, t := range live {
		a.Put(t)
	}
}

// AllowedLeak is suppressed by a line-level directive.
func AllowedLeak(a *Arena) {
	t := a.Get(1, 2, 3) //livenas:allow arena-lifetime handed to a C library that frees it
	_ = borrow(t)
}

//livenas:allow arena-lifetime ownership audited by hand for the whole body
func AllowedFuncLeak(a *Arena) {
	t := a.Get(1, 2, 3)
	_ = borrow(t)
}

// BogusAllow names a check that does not exist; the finding must survive.
func BogusAllow(a *Arena) {
	t := a.Get(1, 2, 3) //livenas:allow arena-lifetimes // want arena-lifetime
	_ = borrow(t)
}

// TempDoubleViaHelper releases via Put then via a releasing helper: the
// callee summary proves release() releases its parameter, so this is a
// double release just like two direct Puts.
func TempDoubleViaHelper(a *Arena) {
	t := a.Get(1, 2, 3)
	a.Put(t)
	release(a, t) // want arena-lifetime
}
