// Package other leaks an arena value but sits outside the nn/sr scope, so
// the check must stay silent here.
package other

import "fix/nn"

func LeakOutOfScope(a *nn.Arena) {
	t := a.Get(1, 2, 3)
	_ = t
}
