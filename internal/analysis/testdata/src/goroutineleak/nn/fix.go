// Package nn seeds goroutine-leak cases inside the check's scope.
package nn

import "sync"

func work() {}

// ctx mimics context.Context's cancellation surface without importing it.
type ctx struct{ c chan struct{} }

func (c *ctx) Done() <-chan struct{} { return c.c }

// NoSignal launches a goroutine that can never be joined.
func NoSignal() {
	go func() { // want goroutine-leak
		work()
	}()
}

// WgJoined is the canonical fork-join shape.
func WgJoined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// SignalNotConsumed signals completion, but the owner never listens.
func SignalNotConsumed() {
	done := make(chan struct{})
	go func() { // want goroutine-leak
		work()
		close(done)
	}()
	_ = done
}

// ChanJoined receives exactly as many completions as it launched.
func ChanJoined(n int) {
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			done <- i
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
}

// CtxBound goroutines end on cancellation; lifetime is managed by the ctx.
func CtxBound(c *ctx) {
	go func() {
		<-c.Done()
		work()
	}()
}

// Server signals through a field: joining is some other method's job.
type Server struct{ done chan struct{} }

func (s *Server) Start() {
	go func() {
		work()
		close(s.done)
	}()
}

// StartWorker hands the join channel to the caller.
func StartWorker() chan struct{} {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	return done
}

// helper signals through the WaitGroup it is handed.
func helper(wg *sync.WaitGroup) {
	defer wg.Done()
	work()
}

// NamedJoined joins a goroutine running a named function.
func NamedJoined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go helper(&wg)
	wg.Wait()
}

// NamedNotJoined launches the same function and forgets it.
func NamedNotJoined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go helper(&wg) // want goroutine-leak
}

// waitAll is join evidence via the WaitsOnParam summary.
func waitAll(wg *sync.WaitGroup) { wg.Wait() }

// JoinViaHelper joins through a callee instead of a direct Wait.
func JoinViaHelper() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	waitAll(&wg)
}

//livenas:allow goroutine-leak background daemon by design, stops with the process
func AllowedDaemon() {
	go func() {
		work()
	}()
}

// AllowedDaemonLine is suppressed by a directive on the line above.
func AllowedDaemonLine() {
	//livenas:allow goroutine-leak metrics flusher runs for the process lifetime
	go func() {
		work()
	}()
}

// BogusAllow misspells the check name; the finding must survive.
func BogusAllow() {
	//livenas:allow gorotine-leak typo must not suppress anything
	go func() { // want goroutine-leak
		work()
	}()
}
