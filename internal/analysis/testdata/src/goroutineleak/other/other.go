// Package other launches an unjoined goroutine outside the audited
// packages (nn, core, transport, sr); the check must stay silent.
package other

func work() {}

func UnjoinedOutOfScope() {
	go func() {
		work()
	}()
}
