// Package core sits inside the context-propagation scope (path segment
// "core"): every blocking operation in a ctx-taking function must be
// cancellable — select-guarded on ctx.Done, or delegated to a callee that
// consults the context it is handed.
package core

import (
	"context"
	"sync"
	"time"
)

func unguarded(ctx context.Context, ch chan int) {
	ch <- 1                      // want context-propagation
	<-ch                         // want context-propagation
	time.Sleep(time.Millisecond) // want context-propagation
}

func guarded(ctx context.Context, ch chan int) {
	select { // ok: ctx.Done case
	case ch <- 1:
	case <-ctx.Done():
	}
	select { // ok: default makes it non-blocking
	case v := <-ch:
		_ = v
	default:
	}
	<-ctx.Done() // ok: waiting for cancellation itself
}

func badSelect(ctx context.Context, a, b chan int) {
	select { // want context-propagation
	case <-a:
	case <-b:
	}
}

func waitsWG(ctx context.Context, wg *sync.WaitGroup) {
	wg.Wait() // want context-propagation
}

// blockHelper is not ctx-taking, so it is not audited itself — but its
// blocking fact propagates to ctx-taking callers.
func blockHelper(ch chan int) int { return <-ch }

func callsBlocker(ctx context.Context, ch chan int) int {
	return blockHelper(ch) // want context-propagation
}

func consultingHelper(ctx context.Context, ch chan int) {
	select {
	case <-ch:
	case <-ctx.Done():
	}
}

func delegates(ctx context.Context, ch chan int) {
	consultingHelper(ctx, ch) // ok: ctx threaded to a consulting callee
}

func ignoringHelper(ctx context.Context, ch chan int) {
	<-ch // want context-propagation
}

func delegatesBadly(ctx context.Context, ch chan int) {
	ignoringHelper(ctx, ch) // want context-propagation
}

// boundedHelper's wait is provably bounded, so the blocking fact is
// withheld at the source and callers stay clean.
//
//livenas:allow context-propagation fixture: the channel is buffered and pre-filled by construction
func boundedHelper(ch chan int) int { return <-ch }

func callsBounded(ctx context.Context, ch chan int) int {
	return boundedHelper(ch) // ok: callee annotated bounded
}

func derived(ctx context.Context, ch chan int) {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	select { // ok: Done on a context derived from the parameter
	case ch <- 1:
	case <-sub.Done():
	}
}
