// Package other is outside the audit scope, so its blocking ops are not
// flagged — but the stored-context escape scan is module-wide: a context
// stored in a field that nothing ever consults is cancellation theater
// wherever it lives.
package other

import "context"

type worker struct {
	ctx context.Context
}

func newWorker(ctx context.Context) *worker {
	return &worker{ctx: ctx} // want context-propagation
}

type server struct {
	ctx context.Context
}

func newServer(ctx context.Context) *server {
	return &server{ctx: ctx} // ok: consulted in run
}

func (s *server) run(ch chan int) {
	select {
	case <-ch:
	case <-s.ctx.Done():
	}
}

func outOfScope(ctx context.Context, ch chan int) {
	<-ch // ok: package is outside the audit scope
}
