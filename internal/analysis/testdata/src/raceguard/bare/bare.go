// Package bare holds the racy access: a spawned goroutine reads Box.N with
// an empty lockset while the rest of the module guards it with Mu.
package bare

import (
	"sync"

	"fix/state"
)

// Race reads N bare from a spawned goroutine — the true race.
func Race(b *state.Box) int {
	var wg sync.WaitGroup
	out := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		out = b.N // want race-guard
	}()
	wg.Wait()
	return out
}

// Audited also reads bare from a goroutine, but the site carries an allow
// directive: withheld from both the guard tally and the report.
func Audited(b *state.Box) int {
	var wg sync.WaitGroup
	n := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		//livenas:allow race-guard the audit hook runs while every writer is parked on wg.Wait
		n = b.N
	}()
	wg.Wait()
	return n
}
