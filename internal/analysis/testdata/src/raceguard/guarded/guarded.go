// Package guarded holds the lock-respecting accessors of state.Box.N. Its
// three guarded accesses (two direct, one through the bump helper that
// inherits the lock via EntryLocks) form the majority that infers Mu as
// N's guard.
package guarded

import "fix/state"

// Inc is a guarded write.
func Inc(b *state.Box) {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	b.N++
}

// Get is a guarded read.
func Get(b *state.Box) int {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	return b.N
}

// Add takes the lock and delegates to bump.
func Add(b *state.Box, d int) {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	bump(b, d)
}

// bump accesses N with no lock operation of its own, but its only call site
// holds b.Mu, so EntryLocks propagation keeps it quiet. Not a finding.
func bump(b *state.Box, d int) {
	b.N += d
}
