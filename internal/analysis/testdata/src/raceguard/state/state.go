// Package state defines the shared Box whose N field the sibling packages
// access: guarded accessors live in fix/guarded (the majority that makes Mu
// the inferred guard), the bare concurrent access lives in fix/bare. Keeping
// the tally votes out of this package means a finding in fix/bare changes
// when fix/guarded changes — packages outside fix/bare's dependency closure
// — which is what makes race-guard a Global check.
package state

import "sync"

// Box is shared counter state: N is guarded by Mu wherever it is shared.
type Box struct {
	Mu sync.Mutex
	N  int
}

// NewBox writes N bare, but through a local it just constructed: the
// ownership phase before the value is published. Not a finding.
func NewBox(seed int) *Box {
	b := &Box{}
	b.N = seed
	return b
}
