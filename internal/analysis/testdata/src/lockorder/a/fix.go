// Package a seeds lock-order cycles: an AB/BA inversion, a same-class
// self-cycle, an interprocedural inversion through a helper's Locks
// summary, a goroutine-nested inversion, and consistent orders that must
// stay silent.
package a

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

// ABBA1 and ABBA2 acquire A.mu and B.mu in opposite orders.
func ABBA1(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want lock-order
	b.mu.Unlock()
	a.mu.Unlock()
}

func ABBA2(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want lock-order
	a.mu.Unlock()
	b.mu.Unlock()
}

// Copy locks two instances of the same class: deadlocks against a
// concurrent Copy in the opposite direction.
func Copy(dst, src *A) {
	dst.mu.Lock()
	src.mu.Lock() // want lock-order
	src.mu.Unlock()
	dst.mu.Unlock()
}

type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

// CD1 and CD2 always take C.mu before D.mu: consistent, no findings.
func CD1(c *C, d *D) {
	c.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}

func CD2(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
}

type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }

// lockF's acquisition surfaces in its summary; the cycle edge lands on the
// call site in EthenF.
func lockF(f *F) {
	f.mu.Lock()
	f.mu.Unlock()
}

func EthenF(e *E, f *F) {
	e.mu.Lock()
	lockF(f) // want lock-order
	e.mu.Unlock()
}

func FthenE(e *E, f *F) {
	f.mu.Lock()
	e.mu.Lock() // want lock-order
	e.mu.Unlock()
	f.mu.Unlock()
}

type G struct{ mu sync.Mutex }
type H struct{ mu sync.Mutex }

// Spawn's goroutine acquires H.mu while the launcher holds G.mu; with
// Reverse the orders invert.
func Spawn(g *G, h *H) {
	g.mu.Lock()
	go func() {
		h.mu.Lock() // want lock-order
		h.mu.Unlock()
	}()
	g.mu.Unlock()
}

func Reverse(g *G, h *H) {
	h.mu.Lock()
	g.mu.Lock() // want lock-order
	g.mu.Unlock()
	h.mu.Unlock()
}

type I struct{ mu sync.Mutex }
type J struct{ mu sync.Mutex }

// IJ's half of the cycle is allowed in place; JI's half is still reported.
func IJ(i *I, j *J) {
	i.mu.Lock()
	//livenas:allow lock-order boot path, J instances are process singletons here
	j.mu.Lock()
	j.mu.Unlock()
	i.mu.Unlock()
}

func JI(i *I, j *J) {
	j.mu.Lock()
	i.mu.Lock() // want lock-order
	i.mu.Unlock()
	j.mu.Unlock()
}

type K struct{ mu sync.Mutex }
type L struct{ mu sync.Mutex }

//livenas:allow lock-order shutdown path runs single-threaded
func KL(k *K, l *L) {
	k.mu.Lock()
	l.mu.Lock()
	l.mu.Unlock()
	k.mu.Unlock()
}

func LK(k *K, l *L) {
	l.mu.Lock()
	k.mu.Lock() // want lock-order
	k.mu.Unlock()
	l.mu.Unlock()
}

// A package-level mutex forms its own class.
var regMu sync.Mutex

type M struct{ mu sync.Mutex }

func RegThenM(m *M) {
	regMu.Lock()
	m.mu.Lock() // want lock-order
	m.mu.Unlock()
	regMu.Unlock()
}

func MThenReg(m *M) {
	m.mu.Lock()
	regMu.Lock() // want lock-order
	regMu.Unlock()
	m.mu.Unlock()
}

// BogusAllow misspells the check name; the finding must survive.
type N struct{ mu sync.Mutex }
type O struct{ mu sync.Mutex }

func NO(n *N, o *O) {
	n.mu.Lock()
	//livenas:allow lock-ordering typo must not suppress anything
	o.mu.Lock() // want lock-order
	o.mu.Unlock()
	n.mu.Unlock()
}

func ON(n *N, o *O) {
	o.mu.Lock()
	n.mu.Lock() // want lock-order
	n.mu.Unlock()
	o.mu.Unlock()
}
