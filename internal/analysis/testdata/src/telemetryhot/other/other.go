// Package other is outside the kernel scope (no "nn"/"sr" path segment):
// registry calls in its loops are not this check's business.
package other

import "fix/telemetry"

func drain(reg *telemetry.Registry, n int) {
	for i := 0; i < n; i++ {
		reg.Counter("other_units").Inc() // out of scope: ok
	}
}
