// Package nn sits inside the kernel scope (path segment "nn"); locking
// telemetry.Registry calls inside loops are flagged here, while the
// lock-free handle API is fine.
package nn

import (
	"time"

	"fix/telemetry"
)

type kernel struct {
	reg    *telemetry.Registry
	blocks *telemetry.Counter
}

// setTelemetry registers handles outside any loop: ok.
func (k *kernel) setTelemetry(reg *telemetry.Registry) {
	k.reg = reg
	k.blocks = reg.Counter("nn_blocks")
}

func (k *kernel) run(rows int) {
	for i := 0; i < rows; i++ {
		k.blocks.Inc()                      // lock-free handle: ok
		k.reg.Counter("nn_rows_hot").Inc()  // want telemetry-hot-path
		k.reg.Emit(time.Second, "row_done", // want telemetry-hot-path
			telemetry.Num("row", float64(i)))
	}
}

func (k *kernel) nested(m [][]float32) {
	for _, row := range m {
		for range row {
			k.reg.Counter("nn_cells").Inc() // want telemetry-hot-path
		}
	}
}

// perEpochTrace emits one event per epoch; the epoch loop is not a
// per-element hot loop, so the exception is annotated in place.
func (k *kernel) perEpochTrace(epochs int) {
	for e := 0; e < epochs; e++ {
		k.reg.Emit(time.Second, "epoch", telemetry.Num("e", float64(e))) //livenas:allow telemetry-hot-path once per epoch, not per element
	}
}
