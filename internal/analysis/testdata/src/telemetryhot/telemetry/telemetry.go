// Package telemetry mimics the real internal/telemetry surface: a
// map-backed, mutex-guarded Registry handing out lock-free Counter/Gauge
// handles. The telemetry-hot-path check keys off the path segment
// "telemetry" and the handle type names, so this stand-in exercises the
// same selection logic as the real package.
package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
}

func New() *Registry { return &Registry{counters: map[string]*Counter{}} }

// Counter is registration: it locks the registry map.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Emit locks the event log.
func (r *Registry) Emit(t time.Duration, typ string, fields ...Field) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
}

type Counter struct{ v atomic.Int64 }

func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

type Field struct {
	Key string
	Num float64
}

func Num(key string, v float64) Field { return Field{Key: key, Num: v} }
