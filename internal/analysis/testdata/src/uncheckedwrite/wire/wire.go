// Package wire is a fixture stub mirroring livenas/internal/wire: the
// unchecked-write check matches package-level Write functions of packages
// named "wire".
package wire

import "io"

type Message struct{ Type int }

func Write(w io.Writer, m *Message) error {
	_, err := w.Write([]byte{byte(m.Type)})
	return err
}
