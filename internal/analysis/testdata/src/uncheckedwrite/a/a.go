// Package a exercises the unchecked-write check.
package a

import (
	"bytes"
	"io"
	"strings"

	"fix/wire"
)

type enc struct{}

func (enc) Encode(v int) error { return nil }
func (enc) Flush() error       { return nil }

func f(w io.Writer, conn io.Writer) error {
	wire.Write(conn, &wire.Message{Type: 1}) // want unchecked-write
	w.Write(nil)                             // want unchecked-write

	var e enc
	e.Encode(1) // want unchecked-write
	e.Flush()   // want unchecked-write

	if err := wire.Write(conn, &wire.Message{}); err != nil { // checked: ok
		return err
	}
	_ = wire.Write(conn, &wire.Message{}) // explicit discard: ok

	var b bytes.Buffer
	b.WriteByte('x') // bytes.Buffer never fails: ok
	var sb strings.Builder
	sb.WriteString("x") // strings.Builder never fails: ok

	wire.Write(conn, &wire.Message{}) //livenas:allow unchecked-write suppressed for the fixture
	return nil
}
