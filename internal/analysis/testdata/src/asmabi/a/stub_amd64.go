//go:build amd64 && !purego

package asmfix

// ok has an assembly body, this stub, and a matching twin: conformant.
//
//go:noescape
func ok(n int, p *int16)

// lonely has no purego twin anywhere.
//
//go:noescape
func lonely(p *int32) // want asm-abi

// mismatch's twin disagrees on the parameter type.
//
//go:noescape
func mismatch(n int) int32
