//go:build !amd64 || purego

package asmfix

// Pure-Go twins of the assembly kernels.

func ok(n int, p *int16) {
	_ = n
	_ = p
}

func tagless() {}

func mismatch(n int32) int32 { return n } // want asm-abi
