//go:build amd64 && !purego

#include "textflag.h"

// func ok(n int, p *int16)
TEXT ·ok(SB), NOSPLIT, $0-16
	RET

// func orphan()
TEXT ·orphan(SB), NOSPLIT, $0-0 // want asm-abi
	RET

// func lonely(p *int32)
TEXT ·lonely(SB), NOSPLIT, $0-8
	RET

// func mismatch(n int) int32
TEXT ·mismatch(SB), NOSPLIT, $0-16
	RET

// func tagless()
TEXT ·tagless(SB), NOSPLIT, $0-0
	RET

//livenas:allow asm-abi feature-detection shim, meaningless outside amd64
TEXT ·allowed(SB), NOSPLIT, $0-0
	RET
