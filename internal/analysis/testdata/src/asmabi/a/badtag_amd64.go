//go:build amd64

package asmfix // want asm-abi

// tagless's stub sits behind a constraint missing !purego: on a
// purego-on-amd64 build this declaration collides with the twin.
func tagless()
