// Package asmfix exercises the asm-abi hygiene check: kern_amd64.s defines
// six symbols — ok (fully conformant), orphan (no stub), lonely (stub but
// no purego twin), mismatch (twin signature disagrees), tagless (stub lives
// in a file whose constraint does not partition), allowed (no stub, silenced
// with an //livenas:allow directive above the TEXT line).
package asmfix
