// Package a exercises the mutex-hygiene check.
package a

import "sync"

type S struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func (s *S) bad() {
	s.mu.Lock() // want mutex-hygiene
	s.n++
	s.mu.Unlock()
}

func (s *S) good() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

func (s *S) goodRead() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.n
}

func (s *S) mismatched() int {
	s.rw.RLock() // want mutex-hygiene
	defer s.rw.Unlock()
	return s.n
}

func (s *S) lastStmt() {
	s.mu.Lock() // want mutex-hygiene
}

func (s *S) allowed() {
	s.mu.Lock() //livenas:allow mutex-hygiene hand-over-hand in the fixture
	s.n++
	s.mu.Unlock()
}

func (s *S) wrongReceiver(t *S) {
	s.mu.Lock() // want mutex-hygiene
	defer t.mu.Unlock()
}
