package analysis

import (
	"go/token"
	"go/types"
)

// This file holds the per-function summaries the interprocedural checks
// propagate bottom-up through the call-graph SCCs. One shared container
// carries every check's facts so the module is summarized in a single
// BottomUp pass; each check contributes its slice of the summary from its
// own file (arenaSummarize, lockSummarize, waitSummarize) and reads callee
// summaries through Summaries.Of at call sites.

// A FuncSummary is the caller-visible abstract behaviour of one function.
type FuncSummary struct {
	// ReleasesParam[i] reports that parameter i (receiver excluded) is
	// handed back to an arena (Put/PutBuf) on every path through the
	// function — callers may treat passing a tracked value here as its
	// release.
	ReleasesParam []bool
	// RetainsParam[i] reports that parameter i may be stored beyond the
	// call (field, global, container, another retaining callee, a spawned
	// goroutine) — callers must treat the value as escaped.
	RetainsParam []bool
	// ReturnsArena[j] reports that result j is a freshly obtained arena
	// value whose ownership transfers to the caller.
	ReturnsArena []bool

	// WaitsOnParam[i] reports that parameter i is a *sync.WaitGroup the
	// function calls Wait on — join evidence for the goroutine-leak check.
	WaitsOnParam []bool

	// Locks maps every lock class the function may acquire (directly or
	// through callees) to a representative acquisition position.
	Locks map[string]token.Pos

	// Nondet is the function's purity fact: every nondeterministic source
	// the function may observe (directly or through a callee), keyed by a
	// stable source description ("time.Now", "math/rand.Intn", "map
	// iteration order", …) mapped to the position in THIS function where
	// the taint enters (the source site or the tainting call site). An
	// empty map means the function is deterministic-replay pure as far as
	// the modeled sources go.
	Nondet map[string]token.Pos

	// ConsultsCtx[i] reports that parameter i is a context.Context whose
	// cancellation the function observes: it calls Done/Err/Deadline on it
	// (possibly via a derived context), selects on it, or passes it to a
	// callee known (or conservatively assumed) to consult it.
	ConsultsCtx []bool

	// EntryLocks is the set of lock classes provably held when the function
	// is entered: the intersection over every static module-internal call
	// site of the locks held there, with go-spawn sites contributing the
	// empty set (a goroutine starts lock-free). Unlike the other fields it
	// is propagated top-down (callers before callees) by the race-guard
	// check rather than bottom-up here, and is nil until that check runs.
	// A helper that only ever executes under mu.Lock() carries mu's class
	// here, which is what keeps its bare field accesses off the race report.
	EntryLocks map[string]bool

	// BlockPos is the first position at which the function may block
	// without observing cancellation — an unguarded channel op, a
	// WaitGroup.Wait, a time.Sleep, blocking socket I/O, or a call to a
	// callee with its own BlockPos — or token.NoPos when the function is
	// provably non-blocking or every blocking point is select-guarded on a
	// ctx.Done. BlockDesc names the root blocking kind for diagnostics.
	BlockPos  token.Pos
	BlockDesc string
}

// Summaries indexes the module's function summaries.
type Summaries struct {
	Graph *CallGraph
	m     map[*types.Func]*FuncSummary
}

// Of returns the summary for fn, or nil when fn is not a module function
// (callers treat nil as "unknown callee" and stay conservative).
func (s *Summaries) Of(fn *types.Func) *FuncSummary {
	if s == nil || fn == nil {
		return nil
	}
	return s.m[fn]
}

// ComputeSummaries builds every function's summary in callee-before-caller
// order, iterating recursive SCCs to a fixpoint. The per-check summarizers
// must be monotone (facts only flip false→true / sets only grow) so the
// fixpoint terminates.
func ComputeSummaries(g *CallGraph) *Summaries {
	s := &Summaries{Graph: g, m: map[*types.Func]*FuncSummary{}}
	for _, fi := range g.Nodes {
		np := paramCount(fi.Obj)
		nr := resultCount(fi.Obj)
		s.m[fi.Obj] = &FuncSummary{
			ReleasesParam: make([]bool, np),
			RetainsParam:  make([]bool, np),
			ReturnsArena:  make([]bool, nr),
			WaitsOnParam:  make([]bool, np),
			Locks:         map[string]token.Pos{},
			Nondet:        map[string]token.Pos{},
			ConsultsCtx:   make([]bool, np),
		}
	}
	g.BottomUp(func(fi *FuncInfo) bool {
		sum := s.m[fi.Obj]
		changed := arenaSummarize(fi, s, sum)
		if lockSummarize(fi, s, sum) {
			changed = true
		}
		if waitSummarize(fi, s, sum) {
			changed = true
		}
		if determSummarize(fi, s, sum) {
			changed = true
		}
		if ctxSummarize(fi, s, sum) {
			changed = true
		}
		return changed
	})
	return s
}

// paramObjects returns the declared parameter variables of fi in signature
// order (receiver excluded).
func paramObjects(fi *FuncInfo) []*types.Var {
	sig, ok := fi.Obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	out := make([]*types.Var, 0, sig.Params().Len())
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

func paramCount(fn *types.Func) int {
	if sig, ok := fn.Type().(*types.Signature); ok {
		return sig.Params().Len()
	}
	return 0
}

func resultCount(fn *types.Func) int {
	if sig, ok := fn.Type().(*types.Signature); ok {
		return sig.Results().Len()
	}
	return 0
}

// paramIndexOf returns the position of obj in fi's parameter list, or -1.
func paramIndexOf(fi *FuncInfo, obj types.Object) int {
	for i, p := range paramObjects(fi) {
		if p == obj {
			return i
		}
	}
	return -1
}

// setTrue flips bits[i] to true, reporting whether that changed anything.
func setTrue(bits []bool, i int) bool {
	if i < 0 || i >= len(bits) || bits[i] {
		return false
	}
	bits[i] = true
	return true
}
