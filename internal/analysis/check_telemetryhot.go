package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// TelemetryHotPath keeps instrumentation off the numeric hot paths: inside
// loops in the kernel packages (internal/nn, internal/sr) only the
// lock-free handle API of internal/telemetry may be used — Counter.Add/Inc,
// Gauge.Set, Histogram.Observe. Registry methods (Counter/Gauge/Histogram
// registration, Emit, Snapshot, …) take a mutex or allocate and belong
// outside the loop: register handles once (SetTelemetry) and call the
// atomics per element. Annotate a deliberate exception with
// //livenas:allow telemetry-hot-path.
var TelemetryHotPath = &Check{
	Name: "telemetry-hot-path",
	Doc: "locking telemetry.Registry call inside a loop in a numeric kernel " +
		"package; register Counter/Gauge/Histogram handles once outside the " +
		"loop and use their lock-free methods, or annotate with " +
		"//livenas:allow telemetry-hot-path",
	Run: runTelemetryHotPath,
}

// telemetryHotScope names the path segments of the kernel packages whose
// loops are all hot loops.
var telemetryHotScope = []string{"nn", "sr"}

// telemetryHandleTypes are the telemetry types whose methods are lock-free
// atomics (or pure reads) and therefore loop-safe.
var telemetryHandleTypes = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
	"Event":     true,
	"Field":     true,
}

func runTelemetryHotPath(p *Pass) {
	if !hasSegment(p.Pkg.Path, telemetryHotScope...) {
		return
	}
	// Nested loops revisit inner bodies; dedupe by position.
	seen := map[token.Pos]bool{}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			ast.Inspect(body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok || seen[call.Pos()] {
					return true
				}
				if name, ok := lockingTelemetryCall(p, call); ok {
					seen[call.Pos()] = true
					p.Reportf(call.Pos(), "telemetry %s inside a hot loop; register the handle once outside the loop and use the lock-free Counter/Gauge/Histogram API", name)
				}
				return true
			})
			return true
		})
	}
}

// lockingTelemetryCall reports whether call is a method call on a
// module-internal telemetry type that is not one of the lock-free handles
// (i.e. a Registry method: registration, Emit, Snapshot, …).
func lockingTelemetryCall(p *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	s, ok := p.Pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return "", false
	}
	pkg := s.Obj().Pkg()
	if pkg == nil || !hasSegment(pkg.Path(), "telemetry") {
		return "", false
	}
	if pkg.Path() != p.Pkg.ModPath && !strings.HasPrefix(pkg.Path(), p.Pkg.ModPath+"/") {
		return "", false
	}
	recv := s.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || telemetryHandleTypes[named.Obj().Name()] {
		return "", false
	}
	return named.Obj().Name() + "." + sel.Sel.Name, true
}
