package analysis

import (
	"go/ast"
	"go/types"
)

// Determinism enforces reproducible replay in the simulation and training
// packages: every stochastic component must draw from an injected seeded
// *rand.Rand and simulated time, never the global math/rand source or the
// wall clock. It applies to internal/sim, internal/exp, internal/netem,
// internal/core, internal/sr, and the cmd/ binaries (where the few
// legitimate wall-clock sites carry //livenas:allow determinism).
var Determinism = &Check{
	Name: "determinism",
	Doc: "wall clock (time.Now/Since/Until) or global math/rand use in " +
		"deterministic-replay code; inject a seeded *rand.Rand / simulated " +
		"clock, or annotate a legitimate wall-clock site with " +
		"//livenas:allow determinism",
	Run: runDeterminism,
}

// determinismScope names the path segments of packages that must replay
// deterministically (plus cmd, where wall clock needs explicit opt-in).
var determinismScope = []string{"sim", "exp", "netem", "core", "sr", "cmd"}

// wallClockFuncs are the time package functions that read the wall clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors are the math/rand top-level functions that build an
// explicitly seeded generator rather than drawing from the global source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runDeterminism(p *Pass) {
	if !hasSegment(p.Pkg.Path, determinismScope...) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := p.Pkg.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				// Methods (e.g. (*rand.Rand).Intn on an injected source)
				// are exactly what this check steers code toward.
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					p.Reportf(id.Pos(), "time.%s reads the wall clock; deterministic-replay code must use the injected simulated clock", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[fn.Name()] {
					p.Reportf(id.Pos(), "%s.%s draws from the global rand source; use an injected seeded *rand.Rand", fn.Pkg().Name(), fn.Name())
				}
			}
			return true
		})
	}
}
