package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// This file is the incremental, parallel vet engine. The flow:
//
//  1. Index the module (fingerprint.go): content hashes + import DAG,
//     no type-checking.
//  2. Probe the facts cache (factscache.go): each target package's
//     findings are cached under its dependency-closure key; the Global
//     checks' findings are cached under one key covering every target.
//  3. Load and type-check ONLY the dependency closure of what missed.
//     A fully-warm run loads nothing at all.
//  4. Run per-package checks (one task per dirty package) and module
//     checks (one task per check) on a bounded worker pool.
//  5. Merge cached and fresh findings in a fixed order and sort with a
//     total comparator, so output is byte-identical for any -j.
//
// Caching semantics follow the Check.Global split: a non-global check's
// findings in package P depend only on P's dependency closure (per-package
// checks trivially; callee-direction interprocedural checks because facts
// flow bottom-up through summaries), so they are safe to reuse while P's
// closure is unchanged. Global checks re-run whenever anything in the
// target set changes.
//
// Driver runs attribute module-check findings to the package that owns the
// file they land in, and only report findings inside the target set — the
// substrate may include out-of-pattern dependency packages, but those are
// context, not targets.

// DriverOptions configures one RunDriver invocation.
type DriverOptions struct {
	// Checks to run; nil means AllChecks().
	Checks []*Check
	// Patterns filters target packages ("./...", "./internal/...",
	// "./cmd/livenas-vet"); nil means the whole module.
	Patterns []string
	// Jobs bounds check-level parallelism; <=0 means GOMAXPROCS.
	Jobs int
	// CacheDir roots the on-disk facts cache; "" disables caching.
	CacheDir string
}

// DriverStats describes what one run actually did.
type DriverStats struct {
	// Targets is the number of packages matched by the patterns.
	Targets int
	// Loaded is how many packages were parsed and type-checked (0 on a
	// fully-warm run).
	Loaded int
	// Analyzed and Reused partition the targets into freshly analyzed and
	// served-from-cache, in sorted order.
	Analyzed []string
	Reused   []string
	// GlobalRan / GlobalReused report how the Global checks were satisfied
	// (both false when no global check was selected).
	GlobalRan    bool
	GlobalReused bool
}

// DriverResult is the outcome of one RunDriver invocation.
type DriverResult struct {
	// Diags is sorted by file, line, column, check, then message.
	Diags []Diagnostic
	// Warnings carries soft type-check errors from loaded packages.
	Warnings []string
	Stats    DriverStats
}

// closureSound documents, per non-global RunModule check, why its findings
// in one package depend only on that package's dependency closure: each of
// these checks derives facts strictly bottom-up through callee summaries
// (summary.go), so a finding in P can only be created or removed by an edit
// inside P's import closure. Per-package caching of a module check is sound
// ONLY under that property; RunDriver refuses any module check that is
// neither Global nor listed here, rather than silently serving stale
// findings (the lock-order bug this guards against: cross-package cycle
// edges make findings depend on packages outside the closure).
var closureSound = map[string]bool{
	"arena-lifetime":    true,
	"goroutine-leak":    true,
	"determinism-taint": true,
}

// RunDriver analyzes the module rooted at root with incremental caching
// and bounded parallelism. It is a superset of Run: with caching off and
// one job it produces the same findings for the same target set.
func RunDriver(root, modPath string, opts DriverOptions) (*DriverResult, error) {
	checks := opts.Checks
	if checks == nil {
		checks = AllChecks()
	}
	var pkgChecks, modCacheable, globalChecks []*Check
	for _, c := range checks {
		switch {
		case c.Run != nil:
			pkgChecks = append(pkgChecks, c)
		case c.Global:
			globalChecks = append(globalChecks, c)
		default:
			if !closureSound[c.Name] {
				return nil, fmt.Errorf("analysis: module check %q is neither Global nor documented closure-sound; mark it Global, or add it to closureSound if its findings in a package depend only on that package's dependency closure", c.Name)
			}
			modCacheable = append(modCacheable, c)
		}
	}

	idx, err := indexModule(root, modPath, "")
	if err != nil {
		return nil, err
	}
	idx.salt = driverSalt(idx, modPath, pkgChecks, modCacheable)

	targets := idx.MatchPatterns(opts.Patterns)
	if len(targets) == 0 {
		return nil, fmt.Errorf("analysis: no packages match %v", opts.Patterns)
	}

	cache, err := OpenFactsCache(opts.CacheDir)
	if err != nil {
		return nil, err
	}

	res := &DriverResult{Stats: DriverStats{Targets: len(targets)}}

	// Probe the per-package cache.
	keys := map[string]string{}
	perPkg := map[string][]Diagnostic{}
	var dirty []string
	for _, ip := range targets {
		k, err := idx.ClosureKey(ip)
		if err != nil {
			return nil, err
		}
		keys[ip] = k
		if jds, ok := cache.Get(k); ok {
			perPkg[ip] = fromJSONDiags(jds, root)
			res.Stats.Reused = append(res.Stats.Reused, ip)
			continue
		}
		dirty = append(dirty, ip)
		res.Stats.Analyzed = append(res.Stats.Analyzed, ip)
	}

	// Probe the global cache.
	var globalDiags []Diagnostic
	globalKey := ""
	globalMiss := false
	if len(globalChecks) > 0 {
		names := checkNames(globalChecks)
		globalKey, err = idx.GlobalKey("global-checks:"+strings.Join(names, ","), targets)
		if err != nil {
			return nil, err
		}
		if jds, ok := cache.Get(globalKey); ok {
			globalDiags = fromJSONDiags(jds, root)
			res.Stats.GlobalReused = true
		} else {
			globalMiss = true
		}
	}

	// Load exactly what the misses require.
	if len(dirty) > 0 || globalMiss {
		toLoad := dirty
		if globalMiss {
			toLoad = targets
		}
		loader := NewLoader(token.NewFileSet(), root, modPath)
		pkgs, err := loader.LoadPackages(toLoad)
		if err != nil {
			return nil, err
		}
		res.Stats.Loaded = len(pkgs)
		byPath := map[string]*Package{}
		broken := map[string]bool{}
		for _, p := range pkgs {
			byPath[p.Path] = p
			if len(p.TypeErrors) > 0 {
				broken[p.Path] = true
			}
			for _, e := range p.TypeErrors {
				res.Warnings = append(res.Warnings, fmt.Sprintf("%s: %v", p.Path, e))
			}
		}

		fresh, globals, err := analyzeParallel(pkgs, dirty, byPath, pkgChecks, modCacheable, globalChecks, globalMiss, opts.Jobs)
		if err != nil {
			return nil, err
		}
		targetSet := map[string]bool{}
		for _, ip := range targets {
			targetSet[ip] = true
		}
		for _, ip := range dirty {
			diags := fresh[ip]
			sortDiags(diags)
			perPkg[ip] = diags
			// Findings computed from a broken type-check are not durable
			// facts, and the type-error warnings that explain them are not
			// part of the entry: caching would replay the findings
			// warning-free on warm runs. Leave the key cold instead.
			if idx.ClosureHas(ip, broken) {
				continue
			}
			if err := cache.Put(keys[ip], ip, toJSONDiags(diags, root)); err != nil {
				res.Warnings = append(res.Warnings, fmt.Sprintf("facts cache: %v", err))
			}
		}
		if globalMiss {
			globalDiags = globals[:0]
			for _, d := range globals {
				if targetSet[d.PkgPath] {
					globalDiags = append(globalDiags, d)
				}
			}
			sortDiags(globalDiags)
			res.Stats.GlobalRan = true
			// The global substrate spans every loaded package, so any broken
			// package taints the whole entry.
			if len(broken) == 0 {
				if err := cache.Put(globalKey, "", toJSONDiags(globalDiags, root)); err != nil {
					res.Warnings = append(res.Warnings, fmt.Sprintf("facts cache: %v", err))
				}
			}
		}
	}

	// Merge in fixed order; the final sort makes output independent of
	// which findings came from cache and which were fresh.
	for _, ip := range targets {
		res.Diags = append(res.Diags, perPkg[ip]...)
	}
	res.Diags = append(res.Diags, globalDiags...)
	sortDiags(res.Diags)
	return res, nil
}

// driverSalt builds the cache-key salt: facts schema, Go version, the
// sorted names of every cacheable check selected — and, when the analyzer
// is pointed at its own repository, the content hash of its own package,
// so editing a check invalidates the cache without a schema bump.
func driverSalt(idx *moduleIndex, modPath string, pkgChecks, modCacheable []*Check) string {
	names := append(checkNames(pkgChecks), checkNames(modCacheable)...)
	sort.Strings(names)
	salt := fmt.Sprintf("facts/v%d|%s|checks:%s", factsSchema, runtime.Version(), strings.Join(names, ","))
	if self := idx.Pkgs[modPath+"/internal/analysis"]; self != nil {
		salt += "|analyzer:" + self.hash
	}
	return salt
}

func checkNames(checks []*Check) []string {
	names := make([]string, 0, len(checks))
	for _, c := range checks {
		names = append(names, c.Name)
	}
	sort.Strings(names)
	return names
}

// analyzeParallel runs the selected checks over the loaded packages on a
// worker pool. Each task owns a private diagnostics slice, so no locking
// happens on the hot path and the merge order is fixed by task index, not
// completion order. Returns per-dirty-package findings (per-package checks
// plus non-global module checks, attributed by owning package) and the raw
// global-check findings.
func analyzeParallel(pkgs []*Package, dirty []string, byPath map[string]*Package, pkgChecks, modCacheable, globalChecks []*Check, runGlobal bool, jobs int) (map[string][]Diagnostic, []Diagnostic, error) {
	type task struct {
		run   func() []Diagnostic
		diags []Diagnostic
	}
	var tasks []*task

	// One task per dirty package: all per-package checks on that package.
	for _, ip := range dirty {
		pkg := byPath[ip]
		if pkg == nil {
			return nil, nil, fmt.Errorf("analysis: target %s was not loaded", ip)
		}
		tasks = append(tasks, &task{run: func() []Diagnostic {
			var out []Diagnostic
			supp := collectSuppressions(pkg.Fset, pkg.Files)
			for _, c := range pkgChecks {
				c.Run(&Pass{Check: c, Fset: pkg.Fset, Pkg: pkg, supp: supp, diags: &out})
			}
			return out
		}})
	}
	nPkgTasks := len(tasks)

	// Module checks share one substrate (call graph + summaries), built
	// serially before the pool starts; the checks themselves only read it.
	var modTasks []*task
	needModule := len(dirty) > 0 && len(modCacheable) > 0 || runGlobal && len(globalChecks) > 0
	if needModule {
		mod := NewModule(pkgs)
		var allFiles []*ast.File
		for _, pkg := range pkgs {
			allFiles = append(allFiles, pkg.Files...)
		}
		supp := collectSuppressions(mod.Fset, allFiles)
		var modChecks []*Check
		if len(dirty) > 0 {
			modChecks = append(modChecks, modCacheable...)
		}
		if runGlobal {
			modChecks = append(modChecks, globalChecks...)
		}
		for _, c := range modChecks {
			tasks = append(tasks, &task{run: func() []Diagnostic {
				var out []Diagnostic
				c.RunModule(&ModulePass{Check: c, Mod: mod, supp: supp, diags: &out})
				return out
			}})
		}
		modTasks = tasks[nPkgTasks:]
	}

	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(tasks) {
		jobs = len(tasks)
	}
	var wg sync.WaitGroup
	ch := make(chan *task)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range ch {
				t.diags = t.run()
			}
		}()
	}
	for _, t := range tasks {
		ch <- t
	}
	close(ch)
	wg.Wait()

	dirtySet := map[string]bool{}
	fresh := map[string][]Diagnostic{}
	for _, ip := range dirty {
		dirtySet[ip] = true
		fresh[ip] = []Diagnostic{}
	}
	for _, t := range tasks[:nPkgTasks] {
		for _, d := range t.diags {
			fresh[d.PkgPath] = append(fresh[d.PkgPath], d)
		}
	}
	var globals []Diagnostic
	globalNames := map[string]bool{}
	for _, c := range globalChecks {
		globalNames[c.Name] = true
	}
	for _, t := range modTasks {
		for _, d := range t.diags {
			if globalNames[d.Check] {
				globals = append(globals, d)
				continue
			}
			// Non-global module checks: keep only findings attributed to a
			// dirty target; findings in clean targets are already cached and
			// findings in non-target dependency packages are out of scope.
			if dirtySet[d.PkgPath] {
				fresh[d.PkgPath] = append(fresh[d.PkgPath], d)
			}
		}
	}
	return fresh, globals, nil
}

// sortDiags orders diagnostics with a total comparator (file, line, column,
// check, message) so equal finding sets always render identically.
func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// toJSONDiags converts findings to their stable wire form (root-relative
// slash paths) for caching; fromJSONDiags rehydrates them against the
// current checkout, so cache entries are position-correct on any clone.
func toJSONDiags(diags []Diagnostic, root string) []JSONDiagnostic {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, JSONDiagnostic{
			File:    normalizePath(d.Pos.Filename, root),
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Check:   d.Check,
			Package: d.PkgPath,
			Message: d.Message,
		})
	}
	return out
}

func fromJSONDiags(jds []JSONDiagnostic, root string) []Diagnostic {
	out := make([]Diagnostic, 0, len(jds))
	for _, jd := range jds {
		out = append(out, Diagnostic{
			Pos: token.Position{
				Filename: filepath.Join(root, filepath.FromSlash(jd.File)),
				Line:     jd.Line,
				Column:   jd.Col,
			},
			Check:   jd.Check,
			Message: jd.Message,
			PkgPath: jd.Package,
		})
	}
	return out
}
