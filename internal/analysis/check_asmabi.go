package analysis

import (
	"bytes"
	"go/ast"
	"go/build/constraint"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// AsmABI is the build/asm hygiene check for the amd64 fast paths: every
// function implemented in a `_amd64.s` file must have a body-less Go
// declaration stub in an `amd64 && !purego` file and a pure-Go twin with an
// identical signature in a `!amd64 || purego` file, and the build
// constraints of the participating files must partition builds exactly into
// those two sides (a stub file tagged only `amd64` would collide with the
// purego twin, and a twin tagged only `!amd64` would leave purego-on-amd64
// builds without a body).
//
// The check reads the package directory raw — including the .s sources and
// the .go files the host's build tags exclude — so its verdict is identical
// on every GOARCH. Findings in assembly files can be silenced with a
// `//livenas:allow asm-abi <why>` comment on (or above) the TEXT line; Go
// positions take the usual directive forms. It complements, not replaces,
// stdlib `go vet` asmdecl (which validates stub/TEXT frame agreement but
// only for the files the current build selects).
var AsmABI = &Check{
	Name: asmABIName,
	Doc: "an _amd64.s function is missing its declaration stub or its " +
		"identical-signature purego twin, or a participating file's build " +
		"tags do not partition exactly into amd64 && !purego vs " +
		"!amd64 || purego",
	Run: runAsmABI,
}

// asmABIName is the registry name, as a constant so the runner can refer to
// it without an initialization cycle through the Check variable.
const asmABIName = "asm-abi"

// asmSymbol is one TEXT ·name(SB) definition in an assembly file.
type asmSymbol struct {
	name string
	pos  token.Pos
}

// asmSrcFile is one raw-scanned _amd64.s file.
type asmSrcFile struct {
	name    string
	syms    []asmSymbol
	expr    constraint.Expr
	exprPos token.Pos
	// allow maps line numbers carrying //livenas:allow asm-abi directives.
	allow map[int]bool
}

// abiGoFile is one raw-parsed non-test .go file of the package directory.
type abiGoFile struct {
	name          string
	file          *ast.File
	expr          constraint.Expr
	impliesAmd64  bool // filename suffix _amd64.go
	impliesOther  bool // filename suffix names a different GOARCH
	stubs, bodies map[string]*ast.FuncDecl
	isAsm, isPure bool // constraint is exactly one of the two sides
}

func runAsmABI(p *Pass) {
	dir := p.Pkg.Dir
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	var asmNames, goNames []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		switch {
		case strings.HasSuffix(name, "_amd64.s"):
			asmNames = append(asmNames, name)
		case strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go"):
			goNames = append(goNames, name)
		}
	}
	if len(asmNames) == 0 {
		return
	}
	sort.Strings(asmNames)
	sort.Strings(goNames)

	var asmFiles []*asmSrcFile
	symSet := map[string]bool{}
	for _, name := range asmNames {
		af := scanAsmFile(p.Fset, filepath.Join(dir, name))
		if af == nil {
			continue
		}
		asmFiles = append(asmFiles, af)
		for _, s := range af.syms {
			symSet[s.name] = true
		}
	}

	var goFiles []*abiGoFile
	var rawAsts []*ast.File
	for _, name := range goNames {
		gf := parseABIGoFile(p.Fset, filepath.Join(dir, name), symSet)
		if gf == nil {
			continue
		}
		goFiles = append(goFiles, gf)
		rawAsts = append(rawAsts, gf.file)
	}
	// The raw parse sees files the host build excludes, whose directives the
	// package-level suppression index never collected; index them here so an
	// allow works the same on every side of the tag split.
	local := collectSuppressions(p.Fset, rawAsts)
	report := func(pos token.Pos, format string, args ...any) {
		if local.suppressed(asmABIName, p.Fset.Position(pos)) {
			return
		}
		p.Reportf(pos, format, args...)
	}

	// Pass 1: tag partition. Every file that takes part in the asm split —
	// the .s sources, stub holders, twin holders — must sit exactly on one
	// side.
	for _, af := range asmFiles {
		if !exactSide(af.expr, true, false, true) {
			report(af.exprPos,
				"%s must be constrained to exactly amd64 && !purego (the assembly side of the build partition)",
				af.name)
		}
	}
	for _, gf := range goFiles {
		// Tag findings anchor on the package clause: a trailing marker or
		// directive comment on the //go:build line itself would change the
		// constraint being diagnosed.
		if len(gf.stubs) > 0 && !gf.isAsm {
			report(gf.file.Package,
				"%s declares assembly stubs but is not constrained to exactly amd64 && !purego; stub and twin files must partition builds exactly",
				gf.name)
		}
		if len(gf.bodies) > 0 && !gf.isPure && len(gf.stubs) == 0 && !gf.isAsm {
			report(gf.file.Package,
				"%s defines purego twins of assembly functions but is not constrained to exactly !amd64 || purego; stub and twin files must partition builds exactly",
				gf.name)
		}
	}

	// Pass 2: per symbol, stub presence, twin presence, signature identity.
	findDecl := func(bodied bool, sym string) (*abiGoFile, *ast.FuncDecl) {
		for _, gf := range goFiles {
			m := gf.stubs
			if bodied {
				m = gf.bodies
			}
			if d := m[sym]; d != nil {
				return gf, d
			}
		}
		return nil, nil
	}
	for _, af := range asmFiles {
		for _, sym := range af.syms {
			line := p.Fset.Position(sym.pos).Line
			if af.allow[line] || af.allow[line-1] {
				continue
			}
			_, stub := findDecl(false, sym.name)
			if stub == nil {
				report(sym.pos,
					"assembly function %s has no body-less Go declaration stub in this package's amd64 && !purego files",
					sym.name)
				continue
			}
			twinFile, twin := findDecl(true, sym.name)
			if twin == nil {
				report(stub.Name.Pos(),
					"assembly function %s has no purego twin; a !amd64 || purego file must define an identical-signature Go fallback",
					sym.name)
				continue
			}
			want := sigString(p.Fset, stub.Type)
			got := sigString(p.Fset, twin.Type)
			if got != want {
				report(twin.Name.Pos(),
					"purego twin of %s has signature %s, but the assembly declaration is %s; the two sides must agree exactly",
					sym.name, got, want)
			}
			_ = twinFile
		}
	}
}

// scanAsmFile registers the .s source in the fileset (so findings carry real
// file:line positions) and extracts its TEXT symbols, build constraint, and
// allow-directive lines.
func scanAsmFile(fset *token.FileSet, path string) *asmSrcFile {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	tf := fset.AddFile(path, -1, len(data))
	tf.SetLinesForContent(data)
	af := &asmSrcFile{
		name:    filepath.Base(path),
		exprPos: tf.LineStart(1),
		allow:   map[int]bool{},
	}
	for i, raw := range strings.Split(string(data), "\n") {
		lineNo := i + 1
		line := strings.TrimSpace(raw)
		switch {
		case constraint.IsGoBuild(line):
			if x, err := constraint.Parse(line); err == nil {
				af.expr = x
				af.exprPos = tf.LineStart(lineNo)
			}
		case strings.HasPrefix(line, "//"):
			if checks := parseDirective(line); checks[asmABIName] {
				af.allow[lineNo] = true
			}
		case strings.HasPrefix(line, "TEXT"):
			if name := asmTextSymbol(line); name != "" {
				af.syms = append(af.syms, asmSymbol{name: name, pos: tf.LineStart(lineNo)})
			}
		}
	}
	return af
}

// asmTextSymbol extracts the package-local symbol of a TEXT directive:
// "TEXT ·name(SB), NOSPLIT, $0-56" → "name". Dotted (cross-package) and
// runtime symbols return "".
func asmTextSymbol(line string) string {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "TEXT"))
	if !strings.HasPrefix(rest, "·") {
		return ""
	}
	rest = strings.TrimPrefix(rest, "·")
	end := strings.IndexAny(rest, "(<")
	if end <= 0 {
		return ""
	}
	return rest[:end]
}

// parseABIGoFile raw-parses one .go file (host build tags deliberately not
// applied) and indexes its build constraint and the package-level func
// declarations named like assembly symbols.
func parseABIGoFile(fset *token.FileSet, path string, symSet map[string]bool) *abiGoFile {
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil
	}
	gf := &abiGoFile{
		name:   filepath.Base(path),
		file:   f,
		stubs:  map[string]*ast.FuncDecl{},
		bodies: map[string]*ast.FuncDecl{},
	}
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if constraint.IsGoBuild(c.Text) {
				if x, err := constraint.Parse(c.Text); err == nil {
					gf.expr = x
				}
			}
		}
	}
	base := strings.TrimSuffix(gf.name, ".go")
	if strings.HasSuffix(base, "_amd64") {
		gf.impliesAmd64 = true
	} else {
		for _, arch := range otherGoArches {
			if strings.HasSuffix(base, "_"+arch) {
				gf.impliesOther = true
				break
			}
		}
	}
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Recv != nil || !symSet[fd.Name.Name] {
			continue
		}
		if fd.Body == nil {
			gf.stubs[fd.Name.Name] = fd
		} else {
			gf.bodies[fd.Name.Name] = fd
		}
	}
	gf.isAsm = exactSide(gf.expr, gf.impliesAmd64, gf.impliesOther, true)
	gf.isPure = exactSide(gf.expr, gf.impliesAmd64, gf.impliesOther, false)
	return gf
}

// otherGoArches are the filename-suffix GOARCH values that imply !amd64.
var otherGoArches = []string{
	"386", "arm", "arm64", "loong64", "mips", "mipsle", "mips64",
	"mips64le", "ppc64", "ppc64le", "riscv64", "s390x", "wasm",
}

// exactSide reports whether the effective constraint (declared expression
// plus any filename-implied arch) is equivalent — over every amd64/purego
// assignment, all other tags false — to amd64 && !purego (asmSide) or to
// !amd64 || purego (!asmSide).
func exactSide(expr constraint.Expr, impliesAmd64, impliesOther, asmSide bool) bool {
	for _, amd64 := range []bool{false, true} {
		for _, purego := range []bool{false, true} {
			eff := true
			if expr != nil {
				eff = expr.Eval(func(tag string) bool {
					switch tag {
					case "amd64":
						return amd64
					case "purego":
						return purego
					}
					return false
				})
			}
			if impliesAmd64 && !amd64 {
				eff = false
			}
			if impliesOther && amd64 {
				eff = false
			}
			want := amd64 && !purego
			if !asmSide {
				want = !amd64 || purego
			}
			if eff != want {
				return false
			}
		}
	}
	return true
}

// sigString renders a function type as its parameter/result type tuple,
// ignoring parameter names: "(int, *int16) (uint32, uint32)".
func sigString(fset *token.FileSet, ft *ast.FuncType) string {
	var b strings.Builder
	b.WriteByte('(')
	sigFieldTypes(&b, fset, ft.Params)
	b.WriteByte(')')
	if ft.Results != nil && len(ft.Results.List) > 0 {
		b.WriteString(" (")
		sigFieldTypes(&b, fset, ft.Results)
		b.WriteByte(')')
	}
	return b.String()
}

func sigFieldTypes(b *strings.Builder, fset *token.FileSet, fl *ast.FieldList) {
	if fl == nil {
		return
	}
	first := true
	for _, f := range fl.List {
		var tb bytes.Buffer
		_ = printer.Fprint(&tb, fset, f.Type)
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			if !first {
				b.WriteString(", ")
			}
			first = false
			b.Write(tb.Bytes())
		}
	}
}
