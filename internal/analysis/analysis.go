// Package analysis implements livenas-vet, the project-specific static
// analyzer behind `go run ./cmd/livenas-vet ./...`.
//
// The analyzer is built only on the standard library (go/parser, go/ast,
// go/types): it loads the whole module from source, type-checks it with a
// recursive source importer, and runs a registry of checks that machine-
// enforce the two invariants LiveNAS's correctness hangs on — deterministic
// replay (a whole-module taint analysis from nondeterministic sources:
// wall clock, global rand, map iteration order, goroutine-completion
// order) and safe sharing of state between the trainer, the inference
// processor, and the sweep workers (context-propagation to blocking
// points, consistent sync/atomic access, arena lifetimes, goroutine
// joins, lock ordering) — plus project-wide hygiene rules (discarded wire
// write errors, lock/defer pairing, exhaustive message switches, float
// precision churn in hot kernels). See DESIGN.md "Correctness tooling".
//
// A finding can be silenced in place with a directive comment:
//
//	//livenas:allow <check> optional free-text justification
//
// either on (or immediately above) the offending line, or in the doc
// comment of a function to suppress the check for the whole function body.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// A Diagnostic is one finding of one check at one source position.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
	// PkgPath is the import path of the package the finding is in; the
	// baseline matcher keys on it (with check and message) so findings
	// survive being moved within a package.
	PkgPath string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Check)
}

// A Check is one named analysis pass. Exactly one of Run and RunModule is
// set: Run inspects a single type-checked package; RunModule sees the whole
// module at once through the call-graph/CFG/summary substrate (callgraph.go,
// cfg.go, dataflow.go, summary.go) and is how the interprocedural checks —
// arena-lifetime, goroutine-leak, lock-order, determinism-taint,
// context-propagation, atomic-consistency, race-guard — are built.
//
// Global marks a RunModule check whose findings in one package can change
// when ANY other package changes (lock-order's cross-package cycles,
// context-propagation's stored-never-consulted scan, atomic-consistency's
// module-wide access mix, race-guard's module-wide guarded-by tallies).
// The incremental driver (driver.go) caches non-global module checks per
// package under that package's dependency closure key, but must key
// global checks on the whole target set.
type Check struct {
	Name      string
	Doc       string
	Run       func(*Pass)
	RunModule func(*ModulePass)
	Global    bool
}

// AllChecks returns the full registry in stable order.
func AllChecks() []*Check {
	return []*Check{
		UncheckedWrite,
		MutexHygiene,
		SwitchExhaustiveness,
		HotLoopPrecision,
		TelemetryHotPath,
		ArenaLifetime,
		GoroutineLeak,
		LockOrder,
		DeterminismTaint,
		ContextPropagation,
		AtomicConsistency,
		RaceGuard,
		AsmABI,
	}
}

// CheckByName resolves a check by its registry name.
func CheckByName(name string) *Check {
	for _, c := range AllChecks() {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Pass carries one package through one check and collects its findings.
type Pass struct {
	Check *Check
	Fset  *token.FileSet
	Pkg   *Package

	supp  *suppressions
	diags *[]Diagnostic
}

// Reportf records a finding unless an allow directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.supp.suppressed(p.Check.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     position,
		Check:   p.Check.Name,
		Message: fmt.Sprintf(format, args...),
		PkgPath: p.Pkg.Path,
	})
}

// Module is the whole-module view the interprocedural checks run against:
// every loaded package plus the lazily shared call graph and function
// summaries.
type Module struct {
	Pkgs  []*Package
	Fset  *token.FileSet
	Graph *CallGraph
	Sums  *Summaries

	filePkg map[string]*Package
}

// NewModule builds the substrate once for a package set.
func NewModule(pkgs []*Package) *Module {
	m := &Module{Pkgs: pkgs, filePkg: map[string]*Package{}}
	if len(pkgs) > 0 {
		m.Fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			if m.Fset != nil {
				m.filePkg[m.Fset.Position(f.Pos()).Filename] = pkg
			}
		}
	}
	m.Graph = BuildCallGraph(pkgs)
	m.Sums = ComputeSummaries(m.Graph)
	return m
}

// PackageAt returns the package owning the file at position, or nil.
func (m *Module) PackageAt(pos token.Position) *Package {
	return m.filePkg[pos.Filename]
}

// ModulePass carries one module-wide check and collects its findings.
type ModulePass struct {
	Check *Check
	Mod   *Module

	supp  *suppressions
	diags *[]Diagnostic
}

// Reportf records a module-check finding unless an allow directive covers
// it, attributing the diagnostic to the package owning the position's file.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Mod.Fset.Position(pos)
	if p.supp.suppressed(p.Check.Name, position) {
		return
	}
	pkgPath := ""
	if pkg := p.Mod.PackageAt(position); pkg != nil {
		pkgPath = pkg.Path
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     position,
		Check:   p.Check.Name,
		Message: fmt.Sprintf(format, args...),
		PkgPath: pkgPath,
	})
}

// Run executes checks over every package and returns the surviving
// diagnostics sorted by file, line, column, then check name. Module-wide
// checks run once against the whole package set; the substrate (call graph
// and summaries) is built only when at least one such check is selected.
func Run(pkgs []*Package, checks []*Check) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		supp := collectSuppressions(pkg.Fset, pkg.Files)
		for _, c := range checks {
			if c.Run == nil {
				continue
			}
			c.Run(&Pass{Check: c, Fset: pkg.Fset, Pkg: pkg, supp: supp, diags: &diags})
		}
	}
	var modChecks []*Check
	for _, c := range checks {
		if c.RunModule != nil {
			modChecks = append(modChecks, c)
		}
	}
	if len(modChecks) > 0 && len(pkgs) > 0 {
		mod := NewModule(pkgs)
		var allFiles []*ast.File
		for _, pkg := range pkgs {
			allFiles = append(allFiles, pkg.Files...)
		}
		supp := collectSuppressions(mod.Fset, allFiles)
		for _, c := range modChecks {
			c.RunModule(&ModulePass{Check: c, Mod: mod, supp: supp, diags: &diags})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return diags
}

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

// hasSegment reports whether any "/"-separated segment of the import path
// equals one of names. Package scoping (e.g. the determinism check applies
// to internal/sim but not internal/frame) keys off path segments so fixture
// packages under testdata can opt in by directory name.
func hasSegment(path string, names ...string) bool {
	start := 0
	for i := 0; i <= len(path); i++ {
		if i == len(path) || path[i] == '/' {
			seg := path[start:i]
			for _, n := range names {
				if seg == n {
					return true
				}
			}
			start = i + 1
		}
	}
	return false
}
