// Package analysis implements livenas-vet, the project-specific static
// analyzer behind `go run ./cmd/livenas-vet ./...`.
//
// The analyzer is built only on the standard library (go/parser, go/ast,
// go/types): it loads the whole module from source, type-checks it with a
// recursive source importer, and runs a registry of checks that machine-
// enforce the two invariants LiveNAS's correctness hangs on — deterministic
// replay (no wall clock, no global rand in simulation/training code) and
// safe sharing of the SR model between the trainer and the inference
// processor — plus a handful of project-wide hygiene rules (discarded wire
// write errors, lock/defer pairing, exhaustive message switches, float
// precision churn in hot kernels). See DESIGN.md "Correctness tooling".
//
// A finding can be silenced in place with a directive comment:
//
//	//livenas:allow <check> optional free-text justification
//
// either on (or immediately above) the offending line, or in the doc
// comment of a function to suppress the check for the whole function body.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// A Diagnostic is one finding of one check at one source position.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Check)
}

// A Check is one named analysis pass. Run inspects a single type-checked
// package and reports findings through the Pass.
type Check struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// AllChecks returns the full registry in stable order.
func AllChecks() []*Check {
	return []*Check{
		UncheckedWrite,
		Determinism,
		MutexHygiene,
		SwitchExhaustiveness,
		HotLoopPrecision,
		TelemetryHotPath,
	}
}

// CheckByName resolves a check by its registry name.
func CheckByName(name string) *Check {
	for _, c := range AllChecks() {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Pass carries one package through one check and collects its findings.
type Pass struct {
	Check *Check
	Fset  *token.FileSet
	Pkg   *Package

	supp  *suppressions
	diags *[]Diagnostic
}

// Reportf records a finding unless an allow directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.supp.suppressed(p.Check.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     position,
		Check:   p.Check.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Run executes checks over every package and returns the surviving
// diagnostics sorted by file, line, column, then check name.
func Run(pkgs []*Package, checks []*Check) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		supp := collectSuppressions(pkg.Fset, pkg.Files)
		for _, c := range checks {
			c.Run(&Pass{Check: c, Fset: pkg.Fset, Pkg: pkg, supp: supp, diags: &diags})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return diags
}

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

// hasSegment reports whether any "/"-separated segment of the import path
// equals one of names. Package scoping (e.g. the determinism check applies
// to internal/sim but not internal/frame) keys off path segments so fixture
// packages under testdata can opt in by directory name.
func hasSegment(path string, names ...string) bool {
	start := 0
	for i := 0; i <= len(path); i++ {
		if i == len(path) || path[i] == '/' {
			seg := path[start:i]
			for _, n := range names {
				if seg == n {
					return true
				}
			}
			start = i + 1
		}
	}
	return false
}
