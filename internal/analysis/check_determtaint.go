package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// DeterminismTaint is the whole-module successor of the old syntactic
// determinism check: instead of flagging only direct wall-clock / global-rand
// calls inside the replay-critical packages, it computes a per-function
// purity fact (FuncSummary.Nondet, propagated bottom-up through the call
// graph) and reports every point where nondeterminism enters the
// deterministic-replay scope — directly, or laundered through a helper in an
// unscoped package.
//
// Modeled sources:
//
//   - wall clock: time.Now / time.Since / time.Until
//   - global rand: any math/rand or math/rand/v2 top-level function except
//     the explicit constructors (New, NewSource, …)
//   - map iteration order: a range over a map whose body is order-sensitive
//     (appends to a slice, accumulates floats or strings with a compound
//     assignment, sends on a channel, or returns a value derived from the
//     range variables)
//   - sync.Map.Range order: same order-sensitivity test on the callback
//   - goroutine completion order: a go-literal that appends to or
//     float-accumulates into state captured from the launching function, or
//     a channel receive folded order-sensitively (appended / accumulated)
//
// Order-insensitive map loops — counting, keyed writes into another map,
// indexed slice writes, commutative integer accumulation — are deliberately
// not flagged; that is the sanctioned way to consume a map in replay code.
var DeterminismTaint = &Check{
	Name: "determinism-taint",
	Doc: "nondeterminism (wall clock, global rand, map/sync.Map iteration " +
		"order, goroutine completion order) reaches deterministic-replay " +
		"code, directly or through a tainted callee; inject a seeded " +
		"*rand.Rand / simulated clock, sort before iterating, or annotate " +
		"a site that provably never feeds results with " +
		"//livenas:allow determinism-taint",
	RunModule: runDeterminismTaint,
}

// determinismScope names the path segments of packages that must replay
// deterministically (plus cmd, where wall clock needs explicit opt-in).
var determinismScope = []string{"sim", "exp", "netem", "core", "sr", "sweep", "fleet", "transport", "edge", "cmd"}

// wallClockFuncs are the time package functions that read the wall clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors are the math/rand top-level functions that build an
// explicitly seeded generator rather than drawing from the global source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// A nondetSite is one place nondeterminism enters a function.
type nondetSite struct {
	pos  token.Pos
	desc string // stable root-source description ("time.Now", "map iteration order", …)
	msg  string // full diagnostic text; empty for propagated-only summary entries
}

// determSummarize contributes the purity fact: every nondeterministic source
// fi may observe, directly or through a module callee. Monotone: the Nondet
// map only grows, and propagated entries reuse the callee's stable source
// descriptions so recursion converges.
func determSummarize(fi *FuncInfo, s *Summaries, sum *FuncSummary) bool {
	if fi.Decl.Body == nil {
		return false
	}
	changed := false
	for _, site := range directNondetSites(fi) {
		if _, ok := sum.Nondet[site.desc]; !ok {
			sum.Nondet[site.desc] = site.pos
			changed = true
		}
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := StaticCallee(fi.Pkg.Info, call)
		if callee == nil {
			return true
		}
		if csum := s.Of(callee); csum != nil {
			for desc := range csum.Nondet {
				if _, ok := sum.Nondet[desc]; !ok {
					sum.Nondet[desc] = call.Pos()
					changed = true
				}
			}
		}
		return true
	})
	return changed
}

// directNondetSites finds the nondeterministic sources fi itself contains
// (function literals included: they run within fi's dynamic extent for every
// pattern the check cares about).
func directNondetSites(fi *FuncInfo) []nondetSite {
	info := fi.Pkg.Info
	var out []nondetSite
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.Ident:
			fn, ok := info.Uses[e].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				// Methods (e.g. (*rand.Rand).Intn on an injected source)
				// are exactly what this check steers code toward.
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					out = append(out, nondetSite{
						pos:  e.Pos(),
						desc: "time." + fn.Name(),
						msg:  "time." + fn.Name() + " reads the wall clock; deterministic-replay code must use the injected simulated clock",
					})
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[fn.Name()] {
					out = append(out, nondetSite{
						pos:  e.Pos(),
						desc: fn.Pkg().Name() + "." + fn.Name(),
						msg:  fn.Pkg().Name() + "." + fn.Name() + " draws from the global rand source; use an injected seeded *rand.Rand",
					})
				}
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(e.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					why := orderSensitiveBody(info, e.Body, rangeVarObjs(info, e))
					if why == "appends to a slice" && collectThenSorted(info, fi.Decl.Body, e) {
						// The canonical fix itself: collect the keys, then
						// sort them. The append order is nondeterministic but
						// the sort erases it.
						why = ""
					}
					if why != "" {
						out = append(out, nondetSite{
							pos:  e.Pos(),
							desc: "map iteration order",
							msg:  "map iteration order is nondeterministic and this loop is order-sensitive (" + why + "); sort the keys first or restructure the fold to be commutative",
						})
					}
				}
			}
		case *ast.CallExpr:
			out = append(out, syncMapRangeSite(info, e)...)
		case *ast.GoStmt:
			out = append(out, goCompletionSites(info, e)...)
		}
		return true
	})
	return out
}

// baseIdentObj resolves the leftmost identifier of an lvalue-ish expression
// (x, x.f.g, x[i], *x) to its object, or nil.
func baseIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isBuiltinAppend reports whether call invokes the builtin append (go/types
// records builtins in Uses as *types.Builtin; a user-defined append shadows
// the builtin and resolves to an ordinary object).
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// rangeVarObjs returns the objects bound by a range statement's key/value.
func rangeVarObjs(info *types.Info, r *ast.RangeStmt) map[types.Object]bool {
	objs := map[types.Object]bool{}
	for _, e := range []ast.Expr{r.Key, r.Value} {
		if e == nil {
			continue
		}
		if id, ok := unparen(e).(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				objs[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				objs[obj] = true
			}
		}
	}
	return objs
}

// orderSensitiveBody reports why a loop body observed in nondeterministic
// order produces nondeterministic results, or "" when the body looks
// order-insensitive (keyed writes, commutative integer folds, deletes). The
// heuristic is deliberately coarse: appends, float/string compound
// accumulation, channel sends, and returns of range-derived values are the
// order-sensitive patterns replay bugs have actually come from. Folds whose
// target is declared inside the body are exempt: per-iteration state is
// reset every pass, so iteration order cannot leak through it.
func orderSensitiveBody(info *types.Info, body *ast.BlockStmt, loopVars map[types.Object]bool) string {
	perIteration := func(e ast.Expr) bool {
		obj := baseIdentObj(info, e)
		return obj != nil && body.Pos() <= obj.Pos() && obj.Pos() < body.End()
	}
	why := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch e := n.(type) {
		case *ast.CallExpr:
			if isBuiltinAppend(info, e) && len(e.Args) > 0 && !perIteration(e.Args[0]) {
				// The element order of the result depends on iteration order.
				why = "appends to a slice"
			}
		case *ast.AssignStmt:
			switch e.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range e.Lhs {
					t := info.TypeOf(lhs)
					if t == nil || perIteration(lhs) {
						continue
					}
					switch b := t.Underlying().(type) {
					case *types.Basic:
						if b.Info()&types.IsFloat != 0 {
							why = "float accumulation is not associative"
						} else if b.Info()&types.IsString != 0 {
							why = "string concatenation depends on order"
						}
					}
				}
			}
		case *ast.SendStmt:
			why = "sends on a channel in iteration order"
		case *ast.ReturnStmt:
			for _, res := range e.Results {
				ast.Inspect(res, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && loopVars[info.Uses[id]] {
						why = "returns a value picked by iteration order"
						return false
					}
					return true
				})
			}
		}
		return why == ""
	})
	return why
}

// collectThenSorted recognizes the sanctioned collect-keys-then-sort idiom:
// every slice appended to inside the range body is an identifier that is
// later (after the loop) passed to a sort or slices package call in the
// same function. The append order is nondeterministic, but sorting erases
// it, so the loop as a whole is order-insensitive. The body must contain no
// other order-sensitive pattern (the caller checks that the append was the
// only reason found).
func collectThenSorted(info *types.Info, fnBody *ast.BlockStmt, r *ast.RangeStmt) bool {
	targets := map[types.Object]bool{}
	simple := true
	ast.Inspect(r.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBuiltinAppend(info, call) {
			return true
		}
		// Find the assignment target: x = append(x, …) or m.f = append(m.f,
		// …); matching is by the base identifier, so a sort of m.f (or of m's
		// whole aggregate) after the loop clears a field-slice collect too.
		obj := types.Object(nil)
		if len(call.Args) > 0 {
			obj = baseIdentObj(info, call.Args[0])
		}
		if obj == nil {
			simple = false
			return true
		}
		targets[obj] = true
		return true
	})
	if !simple || len(targets) == 0 {
		return false
	}
	sorted := map[types.Object]bool{}
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < r.End() {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pid, ok := unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		pkg, ok := info.Uses[pid].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pkg.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if obj := baseIdentObj(info, arg); obj != nil {
				sorted[obj] = true
			}
		}
		return true
	})
	for obj := range targets {
		if !sorted[obj] {
			return false
		}
	}
	return true
}

// syncMapRangeSite flags sync.Map.Range calls whose callback is
// order-sensitive (or not statically visible).
func syncMapRangeSite(info *types.Info, call *ast.CallExpr) []nondetSite {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Range" || len(call.Args) != 1 {
		return nil
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" || named.Obj().Name() != "Map" {
		return nil
	}
	if lit, ok := unparen(call.Args[0]).(*ast.FuncLit); ok {
		litVars := map[types.Object]bool{}
		if lit.Type.Params != nil {
			for _, f := range lit.Type.Params.List {
				for _, name := range f.Names {
					if obj := info.Defs[name]; obj != nil {
						litVars[obj] = true
					}
				}
			}
		}
		why := orderSensitiveBody(info, lit.Body, litVars)
		if why == "" {
			return nil
		}
		return []nondetSite{{
			pos:  call.Pos(),
			desc: "sync.Map.Range order",
			msg:  "sync.Map.Range visits entries in nondeterministic order and the callback is order-sensitive (" + why + "); snapshot and sort instead",
		}}
	}
	return []nondetSite{{
		pos:  call.Pos(),
		desc: "sync.Map.Range order",
		msg:  "sync.Map.Range visits entries in nondeterministic order and the callback is not statically visible; snapshot and sort instead",
	}}
}

// goCompletionSites flags go-literals that fold into captured state in
// completion order: appending to, or float/string-accumulating into, a
// variable declared outside the literal (or a field — shared by definition).
// Keyed or indexed writes (out[i] = …) stay unflagged: they are the
// sanctioned fixed-slot pattern (see internal/nn's deterministic folds).
func goCompletionSites(info *types.Info, g *ast.GoStmt) []nondetSite {
	lit, ok := unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return nil
	}
	captured := func(e ast.Expr) bool {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				return false
			}
			if v, ok := obj.(*types.Var); ok && v.IsField() {
				return true
			}
			return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
		case *ast.SelectorExpr:
			// A field of anything: shared state as far as this check cares.
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				return true
			}
		}
		return false
	}
	var out []nondetSite
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ASSIGN:
			// x = append(x, …) with x captured.
			for i, rhs := range as.Rhs {
				call, ok := unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				if isBuiltinAppend(info, call) {
					if i < len(as.Lhs) && captured(as.Lhs[i]) {
						out = append(out, nondetSite{
							pos:  as.Pos(),
							desc: "goroutine completion order",
							msg:  "goroutine appends to captured state, so element order depends on goroutine completion order; write to a fixed index per goroutine and fold in order",
						})
					}
				}
			}
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			for _, lhs := range as.Lhs {
				t := info.TypeOf(lhs)
				if t == nil || !captured(lhs) {
					continue
				}
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&(types.IsFloat|types.IsString) != 0 {
					out = append(out, nondetSite{
						pos:  as.Pos(),
						desc: "goroutine completion order",
						msg:  "goroutine accumulates into captured state, so the fold order depends on goroutine completion order; accumulate per-goroutine and fold in fixed order",
					})
				}
			}
		}
		return true
	})
	return out
}

// runDeterminismTaint reports where nondeterminism enters the
// deterministic-replay scope: direct sources inside scoped packages, plus
// call sites where a scoped function calls an unscoped module function whose
// purity fact is tainted. Calls to scoped callees are not re-reported — the
// callee's own body carries the finding.
func runDeterminismTaint(p *ModulePass) {
	nodes := make([]*FuncInfo, 0, len(p.Mod.Graph.Nodes))
	for _, fi := range p.Mod.Graph.Nodes {
		if hasSegment(fi.Pkg.Path, determinismScope...) && fi.Decl.Body != nil {
			nodes = append(nodes, fi)
		}
	}
	sortNodesByPos(nodes)
	for _, fi := range nodes {
		for _, site := range directNondetSites(fi) {
			p.Reportf(site.pos, "%s", site.msg)
		}
		// Receives folded order-sensitively (needs parent context, so it is
		// detected here rather than in directNondetSites' Unary hook).
		reportRecvFolds(p, fi)
		// Taint laundered through unscoped helpers.
		info := fi.Pkg.Info
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := StaticCallee(info, call)
			if callee == nil {
				return true
			}
			cfi := p.Mod.Graph.Funcs[callee]
			if cfi == nil || hasSegment(cfi.Pkg.Path, determinismScope...) {
				return true // unknown or scoped callee: reported at its own body
			}
			sum := p.Mod.Sums.Of(callee)
			if sum == nil || len(sum.Nondet) == 0 {
				return true
			}
			p.Reportf(call.Pos(),
				"call to %s is nondeterministic: tainted by %s; deterministic-replay code must not depend on it",
				callee.Name(), strings.Join(sortedNondetDescs(sum.Nondet), ", "))
			return true
		})
	}
}

// reportRecvFolds flags `xs = append(xs, <-ch)` and `acc += <-ch` in scoped
// functions: the fold observes goroutine completion order.
func reportRecvFolds(p *ModulePass, fi *FuncInfo) {
	info := fi.Pkg.Info
	isRecv := func(e ast.Expr) bool {
		u, ok := unparen(e).(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW && isChanExpr(info, u.X)
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ASSIGN:
			for _, rhs := range as.Rhs {
				call, ok := unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				if isBuiltinAppend(info, call) {
					for _, arg := range call.Args[1:] {
						if isRecv(arg) {
							p.Reportf(as.Pos(),
								"appending a channel receive folds values in goroutine completion order; receive into fixed slots or sort before use")
						}
					}
				}
			}
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			for _, rhs := range as.Rhs {
				if !isRecv(rhs) {
					continue
				}
				for _, lhs := range as.Lhs {
					t := info.TypeOf(lhs)
					if t == nil {
						continue
					}
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&(types.IsFloat|types.IsString) != 0 {
						p.Reportf(as.Pos(),
							"accumulating channel receives folds values in goroutine completion order; collect into fixed slots and fold in order")
					}
				}
			}
		}
		return true
	})
}

func sortedNondetDescs(m map[string]token.Pos) []string {
	out := make([]string, 0, len(m))
	for d := range m {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}
