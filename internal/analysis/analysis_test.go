package analysis

import (
	"bufio"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureChecks pairs each check with its testdata fixture module. Every
// fixture seeds violations (marked `// want <check>` on the flagged line)
// and suppressed or out-of-scope instances (unmarked), so the test proves
// both that the check fires and that //livenas:allow and package scoping
// are honoured.
var fixtureChecks = []struct {
	dir   string
	check string
}{
	{"uncheckedwrite", "unchecked-write"},
	{"mutexhygiene", "mutex-hygiene"},
	{"exhaustive", "switch-exhaustiveness"},
	{"hotloop", "hot-loop-precision"},
	{"telemetryhot", "telemetry-hot-path"},
	{"arenalifetime", "arena-lifetime"},
	{"goroutineleak", "goroutine-leak"},
	{"lockorder", "lock-order"},
	{"lockcross", "lock-order"},
	{"determtaint", "determinism-taint"},
	{"ctxprop", "context-propagation"},
	{"atomicmix", "atomic-consistency"},
	{"raceguard", "race-guard"},
	{"asmabi", "asm-abi"},
}

func loadFixture(t *testing.T, dir string) []*Package {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src", dir))
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(token.NewFileSet(), root, "fix")
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			t.Errorf("fixture %s: type error: %v", dir, e)
		}
	}
	return pkgs
}

func TestChecksOnFixtures(t *testing.T) {
	for _, tc := range fixtureChecks {
		t.Run(tc.check, func(t *testing.T) {
			check := CheckByName(tc.check)
			if check == nil {
				t.Fatalf("unknown check %q", tc.check)
			}
			pkgs := loadFixture(t, tc.dir)
			got := map[string]bool{}
			for _, d := range Run(pkgs, []*Check{check}) {
				if d.Check != tc.check {
					t.Errorf("diagnostic from wrong check: %s", d)
				}
				got[fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)] = true
			}
			want := collectWants(t, filepath.Join("testdata", "src", tc.dir), tc.check)
			if len(want) == 0 {
				t.Fatalf("fixture %s has no // want markers", tc.dir)
			}
			for k := range want {
				if !got[k] {
					t.Errorf("expected a %s diagnostic at %s, got none", tc.check, k)
				}
			}
			for k := range got {
				if !want[k] {
					t.Errorf("unexpected %s diagnostic at %s", tc.check, k)
				}
			}
		})
	}
}

// collectWants scans fixture sources (.go and .s files — the asm-abi check
// reports into assembly files) for `// want <check>` markers and returns the
// expected "file.go:line" set.
func collectWants(t *testing.T, root, check string) map[string]bool {
	t.Helper()
	want := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || (!strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, ".s")) {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			_, marker, ok := strings.Cut(sc.Text(), "// want ")
			if !ok {
				continue
			}
			fields := strings.Fields(marker)
			if len(fields) == 0 || fields[0] != check {
				t.Errorf("%s:%d: malformed want marker %q", path, line, marker)
				continue
			}
			want[fmt.Sprintf("%s:%d", filepath.Base(path), line)] = true
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text string
		want []string
	}{
		{"//livenas:allow determinism", []string{"determinism"}},
		{"//livenas:allow determinism wall clock is the point here", []string{"determinism"}},
		{"//livenas:allow mutex-hygiene,hot-loop-precision", []string{"mutex-hygiene", "hot-loop-precision"}},
		{"// livenas:allow determinism", nil}, // directives take no space after //
		{"//livenas:allow", nil},
		{"// plain comment", nil},
	}
	for _, tc := range cases {
		got := parseDirective(tc.text)
		if len(got) != len(tc.want) {
			t.Errorf("parseDirective(%q) = %v, want %v", tc.text, got, tc.want)
			continue
		}
		for _, name := range tc.want {
			if !got[name] {
				t.Errorf("parseDirective(%q) missing %q", tc.text, name)
			}
		}
	}
}

// TestRepoIsVetClean loads the real module and requires every check to
// pass on it after applying the committed baseline — the same gate
// `go run ./cmd/livenas-vet -baseline analysis/baseline.json ./...`
// enforces, wired into the ordinary test suite so tier-1 catches
// regressions. Stale baseline entries also fail: an entry whose finding
// was fixed must be removed, not left as a latent suppression.
func TestRepoIsVetClean(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, modPath, err := FindModule(wd)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(token.NewFileSet(), root, modPath)
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			t.Errorf("%s: type error: %v", p.Path, e)
		}
	}
	diags := Run(pkgs, AllChecks())
	b, err := LoadBaseline(filepath.Join(root, "analysis", "baseline.json"))
	if err != nil {
		t.Fatalf("committed baseline: %v", err)
	}
	fresh, stale := b.Apply(diags)
	for _, d := range fresh {
		t.Errorf("%s", d)
	}
	for _, e := range stale {
		t.Errorf("stale baseline entry (%s in %s): finding no longer present, remove it from analysis/baseline.json", e.Check, e.Package)
	}
}

// BenchmarkVetFullModule measures a whole-module analyzer run: load,
// type-check, call graph, summaries, and every check. This is the cost a
// developer pays per `livenas-vet ./...` invocation in the fast CI tier.
func BenchmarkVetFullModule(b *testing.B) {
	wd, err := os.Getwd()
	if err != nil {
		b.Fatal(err)
	}
	root, modPath, err := FindModule(wd)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		l := NewLoader(token.NewFileSet(), root, modPath)
		pkgs, err := l.LoadAll()
		if err != nil {
			b.Fatal(err)
		}
		if diags := Run(pkgs, AllChecks()); len(diags) == 0 {
			b.Fatal("expected at least the baselined finding")
		}
	}
}
