package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix introduces an allow directive:
//
//	//livenas:allow <check>[,<check>...] optional justification
//
// Like all Go directives it is written with no space after "//".
const directivePrefix = "livenas:allow"

// suppressions indexes the allow directives of one package. A diagnostic
// is suppressed when a directive naming its check sits on the same line,
// on the line directly above, or in the doc comment of the function whose
// body contains it.
type suppressions struct {
	// lines maps file → directive line → allowed check names.
	lines map[string]map[int]map[string]bool
	// ranges holds function-body suppressions as [start, end] line spans.
	ranges []suppRange
}

type suppRange struct {
	file       string
	start, end int
	checks     map[string]bool
}

// parseDirective extracts the allowed check names from one comment, or nil
// if the comment is not an allow directive.
func parseDirective(text string) map[string]bool {
	text = strings.TrimPrefix(text, "//")
	if !strings.HasPrefix(text, directivePrefix) {
		return nil
	}
	fields := strings.Fields(text[len(directivePrefix):])
	if len(fields) == 0 {
		return nil
	}
	checks := map[string]bool{}
	for _, name := range strings.Split(fields[0], ",") {
		if name != "" {
			checks[name] = true
		}
	}
	return checks
}

func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{lines: map[string]map[int]map[string]bool{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				checks := parseDirective(c.Text)
				if checks == nil {
					continue
				}
				pos := fset.Position(c.Slash)
				byLine := s.lines[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					s.lines[pos.Filename] = byLine
				}
				if byLine[pos.Line] == nil {
					byLine[pos.Line] = map[string]bool{}
				}
				for name := range checks {
					byLine[pos.Line][name] = true
				}
			}
		}
		// A directive in a function's doc comment covers the whole
		// function, for cases like a deliberately double-precision inner
		// loop where per-line directives would drown the code.
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				checks := parseDirective(c.Text)
				if checks == nil {
					continue
				}
				s.ranges = append(s.ranges, suppRange{
					file:   fset.Position(fd.Pos()).Filename,
					start:  fset.Position(fd.Pos()).Line,
					end:    fset.Position(fd.End()).Line,
					checks: checks,
				})
			}
		}
	}
	return s
}

// docAllows reports whether a function's doc comment carries an allow
// directive for check. Summarizers use it to withhold a fact at its source
// (e.g. a provably-bounded blocking wait annotated on the blocking function
// itself) so every transitive caller is cleared with one justification
// instead of one directive per call site.
func docAllows(decl *ast.FuncDecl, check string) bool {
	if decl == nil || decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if checks := parseDirective(c.Text); checks[check] {
			return true
		}
	}
	return false
}

// suppressed reports whether a directive covers the given check at pos.
func (s *suppressions) suppressed(check string, pos token.Position) bool {
	if byLine := s.lines[pos.Filename]; byLine != nil {
		if byLine[pos.Line][check] || byLine[pos.Line-1][check] {
			return true
		}
	}
	for _, r := range s.ranges {
		if r.file == pos.Filename && r.start <= pos.Line && pos.Line <= r.end && r.checks[check] {
			return true
		}
	}
	return false
}
