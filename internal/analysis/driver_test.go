package analysis

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// renderDriver renders a driver result the way `livenas-vet -json` does,
// so byte-comparison here proves byte-identical CLI output.
func renderDriver(t *testing.T, res *DriverResult, root string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := RenderJSON(&buf, res.Diags, root); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestDriverOutputDeterministic runs the full check registry over a fixture
// module at several parallelism levels, cold and warm, and requires the
// rendered JSON to be byte-identical every time: the merge order must be a
// function of the findings, never of goroutine completion order or of
// which findings came from cache.
func TestDriverOutputDeterministic(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src", "determtaint"))
	if err != nil {
		t.Fatal(err)
	}
	var want string
	for _, jobs := range []int{1, 2, 8} {
		res, err := RunDriver(root, "fix", DriverOptions{Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if len(res.Diags) == 0 {
			t.Fatalf("jobs=%d: no findings; the fixture seeds violations", jobs)
		}
		got := renderDriver(t, res, root)
		if want == "" {
			want = got
		} else if got != want {
			t.Errorf("jobs=%d: output differs from jobs=1:\n%s\n--- vs ---\n%s", jobs, got, want)
		}
	}

	// Warm output must match cold output byte for byte, too.
	cacheDir := t.TempDir()
	cold, err := RunDriver(root, "fix", DriverOptions{Jobs: 2, CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	if got := renderDriver(t, cold, root); got != want {
		t.Errorf("cold cached output differs from uncached output:\n%s", got)
	}
	warm, err := RunDriver(root, "fix", DriverOptions{Jobs: 8, CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Loaded != 0 {
		t.Errorf("warm run loaded %d packages, want 0", warm.Stats.Loaded)
	}
	if got := renderDriver(t, warm, root); got != want {
		t.Errorf("warm cached output differs from cold output:\n%s", got)
	}
}

// copyFixtureModule copies a testdata module into a temp dir so the test
// can edit files without touching the checked-in fixture.
func copyFixtureModule(t *testing.T, fixture string) string {
	t.Helper()
	src, err := filepath.Abs(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatal(err)
	}
	dst := t.TempDir()
	err = filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestDriverCacheInvalidation proves the incremental contract on the
// determtaint fixture's two-package DAG (fix/sim imports fix/util):
//
//   - an unchanged re-run reuses every package and loads nothing;
//   - editing the leaf (util) re-analyzes the leaf and its dependent;
//   - editing only the dependent (sim) re-analyzes just that package,
//     while the leaf's findings come from cache;
//   - findings after every partial run match a from-scratch run.
func TestDriverCacheInvalidation(t *testing.T) {
	root := copyFixtureModule(t, "determtaint")
	cacheDir := t.TempDir()
	// Cacheable checks only: a Global check in the selection would force a
	// whole-target-set re-run on any edit, hiding the per-package behavior
	// this test pins down.
	opts := DriverOptions{
		Checks:   []*Check{UncheckedWrite, DeterminismTaint},
		Jobs:     2,
		CacheDir: cacheDir,
	}

	run := func() *DriverResult {
		t.Helper()
		res, err := RunDriver(root, "fix", opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fromScratch := func() string {
		t.Helper()
		res, err := RunDriver(root, "fix", DriverOptions{Checks: opts.Checks})
		if err != nil {
			t.Fatal(err)
		}
		return renderDriver(t, res, root)
	}
	appendComment := func(rel string) {
		t.Helper()
		path := filepath.Join(root, filepath.FromSlash(rel))
		f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString("\n// cache-invalidation probe\n"); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}

	cold := run()
	if got, want := len(cold.Stats.Analyzed), 2; got != want {
		t.Fatalf("cold run analyzed %v, want %d packages", cold.Stats.Analyzed, want)
	}
	if len(cold.Diags) == 0 {
		t.Fatal("cold run found nothing; the fixture seeds violations")
	}
	want := renderDriver(t, cold, root)

	warm := run()
	if len(warm.Stats.Analyzed) != 0 || warm.Stats.Loaded != 0 {
		t.Errorf("unchanged re-run analyzed %v and loaded %d packages, want none",
			warm.Stats.Analyzed, warm.Stats.Loaded)
	}
	if got := renderDriver(t, warm, root); got != want {
		t.Errorf("warm findings differ from cold:\n%s\n--- vs ---\n%s", got, want)
	}

	// Leaf edit: both the leaf and its dependent are re-analyzed.
	appendComment("util/util.go")
	leafEdit := run()
	if got := leafEdit.Stats.Analyzed; len(got) != 2 {
		t.Errorf("after editing fix/util: analyzed %v, want [fix/sim fix/util]", got)
	}
	if got := renderDriver(t, leafEdit, root); got != fromScratch() {
		t.Errorf("findings after leaf edit diverge from a from-scratch run")
	}

	// Dependent-only edit: the leaf stays cached; its sources are still
	// loaded (sim cannot type-check without util) but not re-analyzed.
	appendComment("sim/sim.go")
	depEdit := run()
	if got := depEdit.Stats.Analyzed; len(got) != 1 || got[0] != "fix/sim" {
		t.Errorf("after editing fix/sim: analyzed %v, want [fix/sim]", got)
	}
	if got := depEdit.Stats.Reused; len(got) != 1 || got[0] != "fix/util" {
		t.Errorf("after editing fix/sim: reused %v, want [fix/util]", got)
	}
	if got := renderDriver(t, depEdit, root); got != fromScratch() {
		t.Errorf("findings after dependent edit diverge from a from-scratch run")
	}
}

// TestDriverLockOrderCrossPackage pins lock-order's Global caching
// contract on a cycle split across two packages: p takes A before B, q
// takes B before A, and the shared classes live in a third package both
// import — so neither half of the cycle is visible from the other's
// dependency closure. Editing only q must (a) clear p's finding when q's
// inversion is fixed (no phantom findings replayed from p's unchanged
// closure key) and (b) surface a finding in p when q reintroduces the
// opposite order (no silently missed new cycles).
func TestDriverLockOrderCrossPackage(t *testing.T) {
	root := copyFixtureModule(t, "lockcross")
	cacheDir := t.TempDir()
	opts := DriverOptions{Checks: []*Check{LockOrder}, Jobs: 2, CacheDir: cacheDir}

	run := func() *DriverResult {
		t.Helper()
		res, err := RunDriver(root, "fix", opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	findingPkgs := func(res *DriverResult) map[string]bool {
		pkgs := map[string]bool{}
		for _, d := range res.Diags {
			if d.Check != "lock-order" {
				t.Errorf("diagnostic from wrong check: %s", d)
			}
			pkgs[d.PkgPath] = true
		}
		return pkgs
	}
	qPath := filepath.Join(root, "q", "q.go")
	inverted, err := os.ReadFile(qPath)
	if err != nil {
		t.Fatal(err)
	}
	consistent := []byte(`// Package q now takes the locks in the same order as p.
package q

import "fix/locks"

func AthenB(a *locks.A, b *locks.B) {
	a.Mu.Lock()
	b.Mu.Lock()
	b.Mu.Unlock()
	a.Mu.Unlock()
}
`)

	cold := run()
	if !cold.Stats.GlobalRan {
		t.Fatal("cold run: lock-order was not treated as a Global check")
	}
	if pkgs := findingPkgs(cold); !pkgs["fix/p"] || !pkgs["fix/q"] {
		t.Fatalf("cold run findings in %v, want both fix/p and fix/q", pkgs)
	}
	want := renderDriver(t, cold, root)

	warm := run()
	if warm.Stats.GlobalRan || !warm.Stats.GlobalReused || warm.Stats.Loaded != 0 {
		t.Errorf("warm run: GlobalRan=%v GlobalReused=%v Loaded=%d, want cached with nothing loaded",
			warm.Stats.GlobalRan, warm.Stats.GlobalReused, warm.Stats.Loaded)
	}
	if got := renderDriver(t, warm, root); got != want {
		t.Errorf("warm findings differ from cold:\n%s\n--- vs ---\n%s", got, want)
	}

	// Fix q's inversion: the cycle is gone module-wide, so p's finding must
	// disappear too even though p's own closure never changed.
	if err := os.WriteFile(qPath, consistent, 0o644); err != nil {
		t.Fatal(err)
	}
	fixed := run()
	if !fixed.Stats.GlobalRan {
		t.Error("after fixing q: lock-order served from cache, want a fresh run")
	}
	if len(fixed.Diags) != 0 {
		t.Errorf("after fixing q: phantom findings persist:\n%s", renderDriver(t, fixed, root))
	}

	// Reintroduce the inversion: the new cross-package cycle must surface
	// in p, not just in the edited package.
	if err := os.WriteFile(qPath, inverted, 0o644); err != nil {
		t.Fatal(err)
	}
	again := run()
	if pkgs := findingPkgs(again); !pkgs["fix/p"] || !pkgs["fix/q"] {
		t.Errorf("after reintroducing q's inversion: findings in %v, want both fix/p and fix/q", pkgs)
	}
	if got := renderDriver(t, again, root); got != want {
		t.Errorf("findings after restore differ from cold run:\n%s\n--- vs ---\n%s", got, want)
	}
}

// TestDriverRaceGuardDeterministic requires race-guard's driver output to
// be byte-identical across parallelism levels and across cold/warm cache
// states: the guard tally, the concurrency closure, and the EntryLocks
// fixpoint must all be functions of the sources alone.
func TestDriverRaceGuardDeterministic(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src", "raceguard"))
	if err != nil {
		t.Fatal(err)
	}
	var want string
	for _, jobs := range []int{1, 2, 8} {
		res, err := RunDriver(root, "fix", DriverOptions{Checks: []*Check{RaceGuard}, Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if len(res.Diags) == 0 {
			t.Fatalf("jobs=%d: no findings; the fixture seeds a race", jobs)
		}
		got := renderDriver(t, res, root)
		if want == "" {
			want = got
		} else if got != want {
			t.Errorf("jobs=%d: output differs from jobs=1:\n%s\n--- vs ---\n%s", jobs, got, want)
		}
	}

	cacheDir := t.TempDir()
	cold, err := RunDriver(root, "fix", DriverOptions{Checks: []*Check{RaceGuard}, Jobs: 2, CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	if got := renderDriver(t, cold, root); got != want {
		t.Errorf("cold cached output differs from uncached output:\n%s", got)
	}
	warm, err := RunDriver(root, "fix", DriverOptions{Checks: []*Check{RaceGuard}, Jobs: 8, CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.GlobalRan || !warm.Stats.GlobalReused || warm.Stats.Loaded != 0 {
		t.Errorf("warm run: GlobalRan=%v GlobalReused=%v Loaded=%d, want cached with nothing loaded",
			warm.Stats.GlobalRan, warm.Stats.GlobalReused, warm.Stats.Loaded)
	}
	if got := renderDriver(t, warm, root); got != want {
		t.Errorf("warm cached output differs from cold output:\n%s", got)
	}
}

// TestDriverRaceGuardCrossPackage pins race-guard's Global caching contract
// on the tally split the fixture was built around: the accesses that vote
// Mu into Box.N's guard live in fix/guarded, the flagged bare access lives
// in fix/bare, and fix/bare does NOT import fix/guarded — so the verdict in
// bare depends on a package outside its dependency closure. Editing either
// the accessor package or the guarded field's own package must invalidate
// the cached global findings.
func TestDriverRaceGuardCrossPackage(t *testing.T) {
	root := copyFixtureModule(t, "raceguard")
	cacheDir := t.TempDir()
	opts := DriverOptions{Checks: []*Check{RaceGuard}, Jobs: 2, CacheDir: cacheDir}

	run := func() *DriverResult {
		t.Helper()
		res, err := RunDriver(root, "fix", opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	guardedPath := filepath.Join(root, "guarded", "guarded.go")
	locked, err := os.ReadFile(guardedPath)
	if err != nil {
		t.Fatal(err)
	}
	unlocked := []byte(`// Package guarded now touches the box without its lock: no lock class
// reaches a majority of Box.N's accesses, so no guard is inferred anywhere.
package guarded

import "fix/state"

func Inc(b *state.Box) { b.N++ }

func Get(b *state.Box) int { return b.N }
`)

	cold := run()
	if !cold.Stats.GlobalRan {
		t.Fatal("cold run: race-guard was not treated as a Global check")
	}
	if len(cold.Diags) != 1 || cold.Diags[0].PkgPath != "fix/bare" {
		t.Fatalf("cold run: got %v, want exactly one finding in fix/bare", cold.Diags)
	}
	want := renderDriver(t, cold, root)

	warm := run()
	if warm.Stats.GlobalRan || !warm.Stats.GlobalReused || warm.Stats.Loaded != 0 {
		t.Errorf("warm run: GlobalRan=%v GlobalReused=%v Loaded=%d, want cached with nothing loaded",
			warm.Stats.GlobalRan, warm.Stats.GlobalReused, warm.Stats.Loaded)
	}
	if got := renderDriver(t, warm, root); got != want {
		t.Errorf("warm findings differ from cold:\n%s\n--- vs ---\n%s", got, want)
	}

	// Drop the locks in the accessor package: Box.N loses its inferred
	// guard module-wide, so bare's finding must disappear even though
	// bare's own dependency closure never changed.
	if err := os.WriteFile(guardedPath, unlocked, 0o644); err != nil {
		t.Fatal(err)
	}
	dropped := run()
	if !dropped.Stats.GlobalRan {
		t.Error("after unlocking fix/guarded: race-guard served from cache, want a fresh run")
	}
	if len(dropped.Diags) != 0 {
		t.Errorf("after unlocking fix/guarded: phantom findings persist:\n%s", renderDriver(t, dropped, root))
	}

	// An edit to the guarded field's own package must also invalidate the
	// cached (now empty) global result.
	statePath := filepath.Join(root, "state", "state.go")
	stateSrc, err := os.ReadFile(statePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(statePath, append(stateSrc, []byte("\n// cache-invalidation probe\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	stateEdit := run()
	if !stateEdit.Stats.GlobalRan {
		t.Error("after editing fix/state: race-guard served from cache, want a fresh run")
	}
	if len(stateEdit.Diags) != 0 {
		t.Errorf("after editing fix/state: unexpected findings:\n%s", renderDriver(t, stateEdit, root))
	}

	// Restore the accessors: the guard majority re-forms and the finding
	// must come back, byte-identical to the cold run.
	if err := os.WriteFile(guardedPath, locked, 0o644); err != nil {
		t.Fatal(err)
	}
	restored := run()
	if !restored.Stats.GlobalRan {
		t.Error("after restoring fix/guarded: race-guard served from cache, want a fresh run")
	}
	if got := renderDriver(t, restored, root); got != want {
		t.Errorf("findings after restore differ from cold run:\n%s\n--- vs ---\n%s", got, want)
	}
}

// TestDriverBrokenTypeCheckNotCached: findings computed from a package set
// that type-checked with soft errors must not enter the facts cache — a
// warm run would otherwise replay them without the warnings that explain
// them. Both runs over the broken tree must analyze fresh and emit the
// same warnings.
func TestDriverBrokenTypeCheckNotCached(t *testing.T) {
	root := copyFixtureModule(t, "determtaint")
	cacheDir := t.TempDir()
	opts := DriverOptions{
		Checks:   []*Check{UncheckedWrite, DeterminismTaint},
		CacheDir: cacheDir,
	}

	// Break the leaf's type-check; the file still parses, so the index's
	// ImportsOnly scan and the loader both proceed.
	utilPath := filepath.Join(root, "util", "util.go")
	f, err := os.OpenFile(utilPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("\nvar _ = undefinedSymbol\n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	first, err := RunDriver(root, "fix", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Warnings) == 0 {
		t.Fatal("first run: no type-error warnings; the edit was meant to break util")
	}
	if len(first.Stats.Analyzed) != 2 {
		t.Fatalf("first run analyzed %v, want both packages", first.Stats.Analyzed)
	}

	second, err := RunDriver(root, "fix", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Stats.Reused) != 0 {
		t.Errorf("second run reused %v; findings from a broken type-check must not be cached", second.Stats.Reused)
	}
	if len(second.Warnings) == 0 {
		t.Error("second run dropped the type-error warnings")
	}
	if got, want := renderDriver(t, second, root), renderDriver(t, first, root); got != want {
		t.Errorf("second run findings differ from first:\n%s\n--- vs ---\n%s", got, want)
	}
}

// TestDriverRejectsUndocumentedModuleCheck: per-package caching of a module
// check is only sound when its facts flow bottom-up through the dependency
// closure; the driver must refuse a non-global RunModule check that is not
// documented closure-sound rather than cache it unsoundly.
func TestDriverRejectsUndocumentedModuleCheck(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src", "determtaint"))
	if err != nil {
		t.Fatal(err)
	}
	bogus := &Check{Name: "bogus-module-check", RunModule: func(*ModulePass) {}}
	_, err = RunDriver(root, "fix", DriverOptions{Checks: []*Check{bogus}})
	if err == nil || !strings.Contains(err.Error(), "closure-sound") {
		t.Fatalf("RunDriver accepted an undocumented module check (err=%v)", err)
	}
}

// TestDriverGlobalCaching pins the Global-check cache contract: the global
// findings are reused while the target set's closure is unchanged and
// recomputed after any edit.
func TestDriverGlobalCaching(t *testing.T) {
	root := copyFixtureModule(t, "atomicmix")
	cacheDir := t.TempDir()
	opts := DriverOptions{Checks: []*Check{AtomicConsistency}, CacheDir: cacheDir}

	cold, err := RunDriver(root, "fix", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Stats.GlobalRan || cold.Stats.GlobalReused {
		t.Fatalf("cold run: GlobalRan=%v GlobalReused=%v, want ran fresh", cold.Stats.GlobalRan, cold.Stats.GlobalReused)
	}
	if len(cold.Diags) == 0 {
		t.Fatal("cold run found nothing; the fixture seeds violations")
	}

	warm, err := RunDriver(root, "fix", opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.GlobalRan || !warm.Stats.GlobalReused || warm.Stats.Loaded != 0 {
		t.Errorf("warm run: GlobalRan=%v GlobalReused=%v Loaded=%d, want cached with nothing loaded",
			warm.Stats.GlobalRan, warm.Stats.GlobalReused, warm.Stats.Loaded)
	}
	if got, want := renderDriver(t, warm, root), renderDriver(t, cold, root); got != want {
		t.Errorf("warm global findings differ from cold:\n%s\n--- vs ---\n%s", got, want)
	}

	path := filepath.Join(root, "a", "a.go")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, []byte("\n// edit\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	edited, err := RunDriver(root, "fix", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !edited.Stats.GlobalRan {
		t.Errorf("after edit: global checks served from cache, want a fresh run")
	}
}
