package analysis

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// renderDriver renders a driver result the way `livenas-vet -json` does,
// so byte-comparison here proves byte-identical CLI output.
func renderDriver(t *testing.T, res *DriverResult, root string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := RenderJSON(&buf, res.Diags, root); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestDriverOutputDeterministic runs the full check registry over a fixture
// module at several parallelism levels, cold and warm, and requires the
// rendered JSON to be byte-identical every time: the merge order must be a
// function of the findings, never of goroutine completion order or of
// which findings came from cache.
func TestDriverOutputDeterministic(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src", "determtaint"))
	if err != nil {
		t.Fatal(err)
	}
	var want string
	for _, jobs := range []int{1, 2, 8} {
		res, err := RunDriver(root, "fix", DriverOptions{Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if len(res.Diags) == 0 {
			t.Fatalf("jobs=%d: no findings; the fixture seeds violations", jobs)
		}
		got := renderDriver(t, res, root)
		if want == "" {
			want = got
		} else if got != want {
			t.Errorf("jobs=%d: output differs from jobs=1:\n%s\n--- vs ---\n%s", jobs, got, want)
		}
	}

	// Warm output must match cold output byte for byte, too.
	cacheDir := t.TempDir()
	cold, err := RunDriver(root, "fix", DriverOptions{Jobs: 2, CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	if got := renderDriver(t, cold, root); got != want {
		t.Errorf("cold cached output differs from uncached output:\n%s", got)
	}
	warm, err := RunDriver(root, "fix", DriverOptions{Jobs: 8, CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Loaded != 0 {
		t.Errorf("warm run loaded %d packages, want 0", warm.Stats.Loaded)
	}
	if got := renderDriver(t, warm, root); got != want {
		t.Errorf("warm cached output differs from cold output:\n%s", got)
	}
}

// copyFixtureModule copies a testdata module into a temp dir so the test
// can edit files without touching the checked-in fixture.
func copyFixtureModule(t *testing.T, fixture string) string {
	t.Helper()
	src, err := filepath.Abs(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatal(err)
	}
	dst := t.TempDir()
	err = filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestDriverCacheInvalidation proves the incremental contract on the
// determtaint fixture's two-package DAG (fix/sim imports fix/util):
//
//   - an unchanged re-run reuses every package and loads nothing;
//   - editing the leaf (util) re-analyzes the leaf and its dependent;
//   - editing only the dependent (sim) re-analyzes just that package,
//     while the leaf's findings come from cache;
//   - findings after every partial run match a from-scratch run.
func TestDriverCacheInvalidation(t *testing.T) {
	root := copyFixtureModule(t, "determtaint")
	cacheDir := t.TempDir()
	// Cacheable checks only: a Global check in the selection would force a
	// whole-target-set re-run on any edit, hiding the per-package behavior
	// this test pins down.
	opts := DriverOptions{
		Checks:   []*Check{UncheckedWrite, DeterminismTaint},
		Jobs:     2,
		CacheDir: cacheDir,
	}

	run := func() *DriverResult {
		t.Helper()
		res, err := RunDriver(root, "fix", opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fromScratch := func() string {
		t.Helper()
		res, err := RunDriver(root, "fix", DriverOptions{Checks: opts.Checks})
		if err != nil {
			t.Fatal(err)
		}
		return renderDriver(t, res, root)
	}
	appendComment := func(rel string) {
		t.Helper()
		path := filepath.Join(root, filepath.FromSlash(rel))
		f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString("\n// cache-invalidation probe\n"); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}

	cold := run()
	if got, want := len(cold.Stats.Analyzed), 2; got != want {
		t.Fatalf("cold run analyzed %v, want %d packages", cold.Stats.Analyzed, want)
	}
	if len(cold.Diags) == 0 {
		t.Fatal("cold run found nothing; the fixture seeds violations")
	}
	want := renderDriver(t, cold, root)

	warm := run()
	if len(warm.Stats.Analyzed) != 0 || warm.Stats.Loaded != 0 {
		t.Errorf("unchanged re-run analyzed %v and loaded %d packages, want none",
			warm.Stats.Analyzed, warm.Stats.Loaded)
	}
	if got := renderDriver(t, warm, root); got != want {
		t.Errorf("warm findings differ from cold:\n%s\n--- vs ---\n%s", got, want)
	}

	// Leaf edit: both the leaf and its dependent are re-analyzed.
	appendComment("util/util.go")
	leafEdit := run()
	if got := leafEdit.Stats.Analyzed; len(got) != 2 {
		t.Errorf("after editing fix/util: analyzed %v, want [fix/sim fix/util]", got)
	}
	if got := renderDriver(t, leafEdit, root); got != fromScratch() {
		t.Errorf("findings after leaf edit diverge from a from-scratch run")
	}

	// Dependent-only edit: the leaf stays cached; its sources are still
	// loaded (sim cannot type-check without util) but not re-analyzed.
	appendComment("sim/sim.go")
	depEdit := run()
	if got := depEdit.Stats.Analyzed; len(got) != 1 || got[0] != "fix/sim" {
		t.Errorf("after editing fix/sim: analyzed %v, want [fix/sim]", got)
	}
	if got := depEdit.Stats.Reused; len(got) != 1 || got[0] != "fix/util" {
		t.Errorf("after editing fix/sim: reused %v, want [fix/util]", got)
	}
	if got := renderDriver(t, depEdit, root); got != fromScratch() {
		t.Errorf("findings after dependent edit diverge from a from-scratch run")
	}
}

// TestDriverGlobalCaching pins the Global-check cache contract: the global
// findings are reused while the target set's closure is unchanged and
// recomputed after any edit.
func TestDriverGlobalCaching(t *testing.T) {
	root := copyFixtureModule(t, "atomicmix")
	cacheDir := t.TempDir()
	opts := DriverOptions{Checks: []*Check{AtomicConsistency}, CacheDir: cacheDir}

	cold, err := RunDriver(root, "fix", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Stats.GlobalRan || cold.Stats.GlobalReused {
		t.Fatalf("cold run: GlobalRan=%v GlobalReused=%v, want ran fresh", cold.Stats.GlobalRan, cold.Stats.GlobalReused)
	}
	if len(cold.Diags) == 0 {
		t.Fatal("cold run found nothing; the fixture seeds violations")
	}

	warm, err := RunDriver(root, "fix", opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.GlobalRan || !warm.Stats.GlobalReused || warm.Stats.Loaded != 0 {
		t.Errorf("warm run: GlobalRan=%v GlobalReused=%v Loaded=%d, want cached with nothing loaded",
			warm.Stats.GlobalRan, warm.Stats.GlobalReused, warm.Stats.Loaded)
	}
	if got, want := renderDriver(t, warm, root), renderDriver(t, cold, root); got != want {
		t.Errorf("warm global findings differ from cold:\n%s\n--- vs ---\n%s", got, want)
	}

	path := filepath.Join(root, "a", "a.go")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, []byte("\n// edit\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	edited, err := RunDriver(root, "fix", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !edited.Stats.GlobalRan {
		t.Errorf("after edit: global checks served from cache, want a fresh run")
	}
}
