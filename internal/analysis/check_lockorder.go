package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrder builds the module's lock-acquisition graph and flags cycles. A
// lock class is a mutex identified structurally — a named type's mutex
// field (livenas/internal/sr.Model.mu), a package-level mutex variable, or
// a type with an embedded mutex — so two instances of the same type share a
// class. The dataflow tracks the may-hold set through each function
// (Lock/RLock adds, Unlock/RUnlock removes, a deferred unlock holds to
// exit); acquiring class B while holding class A records edge A→B, with
// interprocedural edges through the callee Locks summaries and locks taken
// inside function literals nested under the launch site's held set. A cycle
// in the class graph — including a self-edge, since module mutexes are not
// reentrant and two instances of one class can be locked in opposite orders
// — is a potential deadlock and every edge on it is reported. R/W lock
// modes are deliberately not distinguished: opposite-order RLock/Lock pairs
// still deadlock under writer pressure.
// LockOrder is Global: an edge reported in package P closes a cycle only
// together with edges contributed by arbitrary other packages (Q acquiring
// B then A makes P's A-then-B a finding), so P's findings change when any
// package changes and per-package closure-key caching would be unsound.
var LockOrder = &Check{
	Name: "lock-order",
	Doc: "two lock classes are acquired in inconsistent order somewhere in " +
		"the module (or one class is acquired while an instance of the same " +
		"class is already held), which can deadlock; establish a single " +
		"acquisition order or annotate a proven-safe site with " +
		"//livenas:allow lock-order",
	RunModule: runLockOrder,
	Global:    true,
}

// heldFact is the may-hold set of lock classes at a program point.
type heldFact map[string]bool

// lockFlow is the FlowProblem tracking held classes through one unit.
type lockFlow struct {
	pkg *Package
}

func (f *lockFlow) Entry() Fact { return heldFact{} }

func (f *lockFlow) Join(a, b Fact) Fact {
	am, bm := a.(heldFact), b.(heldFact)
	out := make(heldFact, len(am)+len(bm))
	for k := range am {
		out[k] = true
	}
	for k := range bm {
		out[k] = true
	}
	return out
}

func (f *lockFlow) Equal(a, b Fact) bool {
	am, bm := a.(heldFact), b.(heldFact)
	if len(am) != len(bm) {
		return false
	}
	for k := range am {
		if !bm[k] {
			return false
		}
	}
	return true
}

func (f *lockFlow) Transfer(stmt ast.Stmt, in Fact) Fact {
	acquired, released := lockOps(f.pkg, stmt)
	if len(acquired) == 0 && len(released) == 0 {
		return in
	}
	out := make(heldFact, len(in.(heldFact)))
	for k := range in.(heldFact) {
		out[k] = true
	}
	for _, c := range released {
		delete(out, c)
	}
	for _, c := range acquired {
		out[c] = true
	}
	return out
}

// lockOps extracts the lock classes a statement acquires and releases
// directly. Deferred unlocks are ignored — the lock stays held to exit —
// and function literals are opaque here (their effects are modeled at the
// reporting pass and in their own unit).
func lockOps(pkg *Package, stmt ast.Stmt) (acquired, released []string) {
	if _, ok := stmt.(*ast.DeferStmt); ok {
		return nil, nil
	}
	for _, e := range ExprsOf(stmt) {
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if c := lockClassOf(pkg, call, "Lock", "RLock"); c != "" {
				acquired = append(acquired, c)
			}
			if c := lockClassOf(pkg, call, "Unlock", "RUnlock"); c != "" {
				released = append(released, c)
			}
			return true
		})
	}
	return acquired, released
}

// lockClassOf returns the lock class of a call to one of the named mutex
// methods, or "" when the call is not a mutex operation or the mutex cannot
// be classed (a function-local lock guards nothing shared across instances).
func lockClassOf(pkg *Package, call *ast.CallExpr, names ...string) string {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return ""
	}
	match := false
	for _, n := range names {
		if sel.Sel.Name == n {
			match = true
		}
	}
	if !match {
		return ""
	}
	recv := unparen(sel.X)
	if isSyncMutex(pkg.Info.TypeOf(recv)) {
		switch r := recv.(type) {
		case *ast.SelectorExpr:
			// owner.field — class by the owning named type.
			if named := namedTypeOf(pkg.Info.TypeOf(r.X)); named != nil {
				return typeClass(named) + "." + r.Sel.Name
			}
			// Dotted package-level var (pkg.mu).
			if obj := pkg.Info.Uses[r.Sel]; obj != nil && isPackageLevel(obj) {
				return obj.Pkg().Path() + "." + obj.Name()
			}
		case *ast.Ident:
			if obj := pkg.Info.Uses[r]; obj != nil && isPackageLevel(obj) {
				return obj.Pkg().Path() + "." + obj.Name()
			}
		}
		return ""
	}
	// Embedded mutex: x.Lock() where x's type promotes sync.Mutex. The
	// selection resolves to the sync method with the outer named receiver.
	if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		if fn, ok := s.Obj().(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
			if named := namedTypeOf(pkg.Info.TypeOf(recv)); named != nil {
				return typeClass(named)
			}
		}
	}
	return ""
}

func namedTypeOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func typeClass(named *types.Named) string {
	if named.Obj().Pkg() == nil {
		return named.Obj().Name()
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

func isPackageLevel(obj types.Object) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// lockSummarize records every lock class fi may acquire, directly or
// through a callee, excluding function literals (a literal's locks attach
// to the statement where it appears, under the caller's held set).
// Monotone: the Locks map only grows.
func lockSummarize(fi *FuncInfo, s *Summaries, sum *FuncSummary) bool {
	if fi.Decl.Body == nil {
		return false
	}
	changed := false
	record := func(c string, pos token.Pos) {
		if _, ok := sum.Locks[c]; !ok {
			sum.Locks[c] = pos
			changed = true
		}
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if c := lockClassOf(fi.Pkg, call, "Lock", "RLock"); c != "" {
			record(c, call.Pos())
			return true
		}
		if callee := StaticCallee(fi.Pkg.Info, call); callee != nil {
			if csum := s.Of(callee); csum != nil {
				for c, pos := range csum.Locks {
					record(c, pos)
				}
			}
		}
		return true
	})
	return changed
}

// lockEdge is one observed acquisition: to was acquired while from was held.
type lockEdge struct {
	from, to string
	pos      token.Pos
}

// runLockOrder collects the acquisition edges of every function and literal
// in the module, then reports every edge that lies on a cycle of the class
// graph.
func runLockOrder(p *ModulePass) {
	var edges []lockEdge
	seen := map[string]bool{}
	addEdge := func(from, to string, pos token.Pos) {
		key := from + "\x00" + to
		if seen[key] {
			return
		}
		seen[key] = true
		edges = append(edges, lockEdge{from: from, to: to, pos: pos})
	}

	nodes := make([]*FuncInfo, 0, len(p.Mod.Graph.Nodes))
	nodes = append(nodes, p.Mod.Graph.Nodes...)
	sortNodesByPos(nodes)
	for _, fi := range nodes {
		if fi.Decl.Body == nil {
			continue
		}
		lockCollectUnit(p, fi.Pkg, fi.Decl.Body, addEdge)
		for _, lit := range fi.Lits {
			lockCollectUnit(p, fi.Pkg, lit.Body, addEdge)
		}
	}

	cyclic := cyclicClasses(edges)
	for _, e := range edges {
		if !(cyclic[e.from] && cyclic[e.to]) && e.from != e.to {
			continue
		}
		if e.from == e.to {
			p.Reportf(e.pos,
				"lock-order cycle: acquiring %s while an instance of %s is already held; two instances locked in opposite orders deadlock",
				e.to, e.from)
			continue
		}
		if cyclic[e.from] && cyclic[e.to] && sameCycle(edges, e.from, e.to) {
			p.Reportf(e.pos,
				"lock-order cycle: %s is acquired while holding %s, and elsewhere the order is reversed; pick one acquisition order",
				e.to, e.from)
		}
	}
}

// lockCollectUnit runs the held-set flow over one body and records the
// acquisition edges in force at each statement.
func lockCollectUnit(p *ModulePass, pkg *Package, body *ast.BlockStmt, addEdge func(from, to string, pos token.Pos)) {
	flow := &lockFlow{pkg: pkg}
	cfg := BuildCFG(body)
	facts := Forward(cfg, flow)
	WalkFacts(cfg, flow, facts, func(stmt ast.Stmt, before Fact) {
		held := sortedClasses(before.(heldFact))
		if _, ok := stmt.(*ast.DeferStmt); ok {
			// A deferred call runs at exit; conservatively treat the
			// current held set as still in force there (the common
			// lock-then-defer-unlock shape makes this exact).
			if d := stmt.(*ast.DeferStmt); d != nil {
				lockEdgesOfExpr(p, pkg, d.Call, held, addEdge)
			}
			return
		}
		for _, e := range ExprsOf(stmt) {
			lockEdgesOfExpr(p, pkg, e, held, addEdge)
		}
	})
}

// lockEdgesOfExpr records held→acquired edges for every acquisition the
// expression performs: direct Lock/RLock calls, callee summary locks, and
// locks taken inside function literals (nested under the held set).
func lockEdgesOfExpr(p *ModulePass, pkg *Package, expr ast.Expr, held []string, addEdge func(from, to string, pos token.Pos)) {
	ast.Inspect(expr, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			for _, cp := range sortedLockList(litMayLock(p, pkg, e)) {
				for _, h := range held {
					addEdge(h, cp.class, cp.pos)
				}
			}
			return false
		case *ast.CallExpr:
			if c := lockClassOf(pkg, e, "Lock", "RLock"); c != "" {
				for _, h := range held {
					addEdge(h, c, e.Pos())
				}
				return true
			}
			if callee := StaticCallee(pkg.Info, e); callee != nil {
				if sum := p.Mod.Sums.Of(callee); sum != nil {
					for _, cp := range sortedLockList(sum.Locks) {
						for _, h := range held {
							addEdge(h, cp.class, e.Pos())
						}
					}
				}
			}
		}
		return true
	})
}

// litMayLock computes every class a function literal may acquire, directly
// or through callees (nested literals included: they run within the same
// dynamic extent for the patterns under analysis).
func litMayLock(p *ModulePass, pkg *Package, lit *ast.FuncLit) map[string]token.Pos {
	out := map[string]token.Pos{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if c := lockClassOf(pkg, call, "Lock", "RLock"); c != "" {
			if _, ok := out[c]; !ok {
				out[c] = call.Pos()
			}
			return true
		}
		if callee := StaticCallee(pkg.Info, call); callee != nil {
			if sum := p.Mod.Sums.Of(callee); sum != nil {
				for c, pos := range sum.Locks {
					if _, ok := out[c]; !ok {
						out[c] = pos
					}
				}
			}
		}
		return true
	})
	return out
}

type classPos struct {
	class string
	pos   token.Pos
}

func sortedLockList(m map[string]token.Pos) []classPos {
	out := make([]classPos, 0, len(m))
	for c, pos := range m {
		out = append(out, classPos{c, pos})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].class < out[j].class })
	return out
}

func sortedClasses(f heldFact) []string {
	out := make([]string, 0, len(f))
	for c := range f {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// cyclicClasses returns the classes on some cycle of the edge graph
// (members of a strongly connected component of size > 1, or with a
// self-edge).
func cyclicClasses(edges []lockEdge) map[string]bool {
	succ := map[string][]string{}
	var classes []string
	seen := map[string]bool{}
	note := func(c string) {
		if !seen[c] {
			seen[c] = true
			classes = append(classes, c)
		}
	}
	for _, e := range edges {
		note(e.from)
		note(e.to)
		succ[e.from] = append(succ[e.from], e.to)
	}
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	comp := map[string]int{}
	var stack []string
	next, compID := 0, 0
	compSize := map[int]int{}

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succ[v] {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = compID
				compSize[compID]++
				if w == v {
					break
				}
			}
			compID++
		}
	}
	for _, c := range classes {
		if _, ok := index[c]; !ok {
			strongconnect(c)
		}
	}
	out := map[string]bool{}
	for _, c := range classes {
		if compSize[comp[c]] > 1 {
			out[c] = true
		}
	}
	for _, e := range edges {
		if e.from == e.to {
			out[e.from] = true
		}
	}
	return out
}

// sameCycle reports whether from and to are in the same strongly connected
// component (both reach each other), i.e. the edge lies on a cycle rather
// than merely touching two distinct cycles.
func sameCycle(edges []lockEdge, from, to string) bool {
	succ := map[string][]string{}
	for _, e := range edges {
		succ[e.from] = append(succ[e.from], e.to)
	}
	reaches := func(src, dst string) bool {
		seen := map[string]bool{}
		work := []string{src}
		for len(work) > 0 {
			v := work[len(work)-1]
			work = work[:len(work)-1]
			if v == dst {
				return true
			}
			if seen[v] {
				continue
			}
			seen[v] = true
			work = append(work, succ[v]...)
		}
		return false
	}
	return reaches(to, from) // to→…→from closes the cycle through this edge
}
