package analysis

import (
	"reflect"
	"testing"
)

// TestMatchPatterns pins the go-tooling meaning of each pattern shape; in
// particular "." selects only the module-root package (a regression guard:
// it used to match everything, so `livenas-vet .` silently analyzed the
// whole module).
func TestMatchPatterns(t *testing.T) {
	idx := &moduleIndex{
		ModPath: "fix",
		Paths:   []string{"fix", "fix/a", "fix/a/b", "fix/c"},
	}
	all := idx.Paths
	cases := []struct {
		patterns []string
		want     []string
	}{
		{nil, all},
		{[]string{"./..."}, all},
		{[]string{"..."}, all},
		{[]string{"."}, []string{"fix"}},
		{[]string{"./"}, []string{"fix"}},
		{[]string{"./a"}, []string{"fix/a"}},
		{[]string{"./a/..."}, []string{"fix/a", "fix/a/b"}},
		{[]string{"./a", "./c"}, []string{"fix/a", "fix/c"}},
		{[]string{"./nope"}, nil},
	}
	for _, tc := range cases {
		if got := idx.MatchPatterns(tc.patterns); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("MatchPatterns(%v) = %v, want %v", tc.patterns, got, tc.want)
		}
	}
}
