package nn

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolCloseJoinsWorkers proves the ownership contract the goroutine-leak
// check relies on: after Close returns, every worker goroutine the pool
// spawned has exited, so a bounded pipeline (a core session with a dedicated
// pool) leaves no goroutines behind.
func TestPoolCloseJoinsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()

	p := NewPool(8)
	var n atomic.Int64
	p.Run(64, func(int) { n.Add(1) })
	if n.Load() != 64 {
		t.Fatalf("Run executed %d of 64 tasks", n.Load())
	}
	p.Close()

	// Close joins via the pool's WaitGroup, but a worker's deferred Done
	// runs a beat before the scheduler retires the goroutine, so poll
	// briefly for the count to settle back to the pre-pool level.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("%d goroutines outlive Close (had %d before the pool)", got, before)
	}

	// Closing nil and inline pools is a documented no-op.
	var nilPool *Pool
	nilPool.Close()
	NewPool(1).Close()
}
