package nn

// im2col packs rows [y0, y1) of a (inC, h, w) channel-major tensor for a
// k×k stride-1 "same"-padded convolution into dst, as a matrix with
// inC*k*k rows and (y1-y0)*w columns:
//
//	dst[((ic*k+ky)*k+kx)*n + (y-y0)*w + x] = src[ic][y+ky-pad][x+kx-pad]
//
// (zero outside the image), where n = (y1-y0)*w. Ascending row index is
// exactly the (ic, ky, kx) tap order of the scalar reference kernel, which
// is what keeps the GEMM path's per-element accumulation order — and hence
// its float32 rounding — bit-identical to convRef.
//
// With flip set the tap offsets are negated (dy = pad-ky, dx = pad-kx):
// packing the output gradient this way turns the input-gradient computation
// into the same GEMM shape with a transposed, tap-flipped weight matrix.
//
// Each matrix row is one shifted copy of an image row strip, so the packing
// runs at copy speed rather than per-element gather speed.
func im2col(src []float32, inC, h, w, k, y0, y1 int, flip bool, dst []float32) {
	pad := k / 2
	n := (y1 - y0) * w
	for ic := 0; ic < inC; ic++ {
		ch := src[ic*h*w : (ic+1)*h*w]
		for ky := 0; ky < k; ky++ {
			dy := ky - pad
			if flip {
				dy = -dy
			}
			for kx := 0; kx < k; kx++ {
				dx := kx - pad
				if flip {
					dx = -dx
				}
				row := dst[((ic*k+ky)*k+kx)*n : ((ic*k+ky)*k+kx)*n+n]
				packShifted(ch, h, w, y0, y1, dy, dx, row)
			}
		}
	}
}

// packShifted writes src shifted by (dy, dx) over rows [y0, y1) into dst,
// zero-filling samples that fall outside the image. It is generic over the
// element type so the int8 path (int8-in-int16 containers, see quant.go)
// packs its panels with the same copy-speed row shifts as the f32 engine.
func packShifted[T float32 | int16](src []T, h, w, y0, y1, dy, dx int, dst []T) {
	for y := y0; y < y1; y++ {
		drow := dst[(y-y0)*w : (y-y0)*w+w]
		sy := y + dy
		if sy < 0 || sy >= h {
			for i := range drow {
				drow[i] = 0
			}
			continue
		}
		srow := src[sy*w : sy*w+w]
		switch {
		case dx == 0:
			copy(drow, srow)
		case dx > 0:
			// Sample (x+dx) for x in [0, w-dx); right edge is padding.
			if dx >= w {
				for i := range drow {
					drow[i] = 0
				}
				continue
			}
			copy(drow[:w-dx], srow[dx:])
			for i := w - dx; i < w; i++ {
				drow[i] = 0
			}
		default: // dx < 0: left edge is padding.
			if -dx >= w {
				for i := range drow {
					drow[i] = 0
				}
				continue
			}
			for i := 0; i < -dx; i++ {
				drow[i] = 0
			}
			copy(drow[-dx:], srow[:w+dx])
		}
	}
}

// im2colI16 is the int8-path variant of im2col: it packs rows [y0, y1) of a
// (inC, h, w) channel-major int8-in-int16 activation tensor into dst with
// the same row layout and the same ascending (ic, ky, kx) tap order, then
// zero-fills one extra pad row when inC*k*k is odd so the PMADDWD-style
// micro-kernels can always consume taps in pairs. dst must hold
// kkEven(inC,k) * (y1-y0)*w elements. No flip variant: the int8 path is
// inference-only.
func im2colI16(src []int16, inC, h, w, k, y0, y1 int, dst []int16) {
	pad := k / 2
	n := (y1 - y0) * w
	for ic := 0; ic < inC; ic++ {
		ch := src[ic*h*w : (ic+1)*h*w]
		for ky := 0; ky < k; ky++ {
			dy := ky - pad
			for kx := 0; kx < k; kx++ {
				dx := kx - pad
				row := dst[((ic*k+ky)*k+kx)*n : ((ic*k+ky)*k+kx)*n+n]
				packShifted(ch, h, w, y0, y1, dy, dx, row)
			}
		}
	}
	if kk := inC * k * k; kk&1 == 1 {
		pad := dst[kk*n : (kk+1)*n]
		for i := range pad {
			pad[i] = 0
		}
	}
}

// kkEven is the tap count of a (inC, k) conv rounded up to even — the row
// count of the int8 im2col panels and quantized weight matrices, so the
// pair-wise multiply-add kernels never straddle a row boundary.
func kkEven(inC, k int) int {
	kk := inC * k * k
	return kk + kk&1
}

// convBlockRows picks the row-block height for an image of width w so one
// packed im2col panel (kk rows × blockRows*w columns) stays cache-resident.
// The value depends only on the shape, never on the machine or pool size,
// so block boundaries — and therefore gradient fold order — are
// reproducible everywhere.
func convBlockRows(w, h int) int {
	const targetCols = 2048 // ~8 KB per panel row: L1-friendly at kk≈72
	rows := targetCols / w
	if rows < 1 {
		rows = 1
	}
	if rows > h {
		rows = h
	}
	return rows
}
