package nn

// im2col packs rows [y0, y1) of a (inC, h, w) channel-major tensor for a
// k×k stride-1 "same"-padded convolution into dst, as a matrix with
// inC*k*k rows and (y1-y0)*w columns:
//
//	dst[((ic*k+ky)*k+kx)*n + (y-y0)*w + x] = src[ic][y+ky-pad][x+kx-pad]
//
// (zero outside the image), where n = (y1-y0)*w. Ascending row index is
// exactly the (ic, ky, kx) tap order of the scalar reference kernel, which
// is what keeps the GEMM path's per-element accumulation order — and hence
// its float32 rounding — bit-identical to convRef.
//
// With flip set the tap offsets are negated (dy = pad-ky, dx = pad-kx):
// packing the output gradient this way turns the input-gradient computation
// into the same GEMM shape with a transposed, tap-flipped weight matrix.
//
// Each matrix row is one shifted copy of an image row strip, so the packing
// runs at copy speed rather than per-element gather speed.
func im2col(src []float32, inC, h, w, k, y0, y1 int, flip bool, dst []float32) {
	pad := k / 2
	n := (y1 - y0) * w
	for ic := 0; ic < inC; ic++ {
		ch := src[ic*h*w : (ic+1)*h*w]
		for ky := 0; ky < k; ky++ {
			dy := ky - pad
			if flip {
				dy = -dy
			}
			for kx := 0; kx < k; kx++ {
				dx := kx - pad
				if flip {
					dx = -dx
				}
				row := dst[((ic*k+ky)*k+kx)*n : ((ic*k+ky)*k+kx)*n+n]
				packShifted(ch, h, w, y0, y1, dy, dx, row)
			}
		}
	}
}

// packShifted writes src shifted by (dy, dx) over rows [y0, y1) into dst,
// zero-filling samples that fall outside the image.
func packShifted(src []float32, h, w, y0, y1, dy, dx int, dst []float32) {
	for y := y0; y < y1; y++ {
		drow := dst[(y-y0)*w : (y-y0)*w+w]
		sy := y + dy
		if sy < 0 || sy >= h {
			for i := range drow {
				drow[i] = 0
			}
			continue
		}
		srow := src[sy*w : sy*w+w]
		switch {
		case dx == 0:
			copy(drow, srow)
		case dx > 0:
			// Sample (x+dx) for x in [0, w-dx); right edge is padding.
			if dx >= w {
				for i := range drow {
					drow[i] = 0
				}
				continue
			}
			copy(drow[:w-dx], srow[dx:])
			for i := w - dx; i < w; i++ {
				drow[i] = 0
			}
		default: // dx < 0: left edge is padding.
			if -dx >= w {
				for i := range drow {
					drow[i] = 0
				}
				continue
			}
			for i := 0; i < -dx; i++ {
				drow[i] = 0
			}
			copy(drow[-dx:], srow[:w+dx])
		}
	}
}

// convBlockRows picks the row-block height for an image of width w so one
// packed im2col panel (kk rows × blockRows*w columns) stays cache-resident.
// The value depends only on the shape, never on the machine or pool size,
// so block boundaries — and therefore gradient fold order — are
// reproducible everywhere.
func convBlockRows(w, h int) int {
	const targetCols = 2048 // ~8 KB per panel row: L1-friendly at kk≈72
	rows := targetCols / w
	if rows < 1 {
		rows = 1
	}
	if rows > h {
		rows = h
	}
	return rows
}
