package nn

import (
	"math"
	"math/rand"
	"testing"
)

// The kernel engine's correctness contract (DESIGN.md "Kernel engine"):
// the GEMM forward is bit-identical to the scalar reference for every
// shape, gradients agree within 1e-5, and results are bit-identical across
// pool sizes. These tests check randomized shapes; the fuzz targets below
// extend the same differential checks to fuzzer-chosen shapes and data.

func randTensor(c, h, w int, rng *rand.Rand) *Tensor {
	t := NewTensor(c, h, w)
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64())
	}
	return t
}

func randShape(rng *rand.Rand) (inC, outC, k, h, w int) {
	return 1 + rng.Intn(9), 1 + rng.Intn(9), 1 + 2*rng.Intn(3), 1 + rng.Intn(40), 1 + rng.Intn(40)
}

// diffConv runs one differential forward/backward comparison on the given
// shape and fails the test on any mismatch.
func diffConv(t *testing.T, inC, outC, k, h, w int, pool *Pool, arena *Arena, rng *rand.Rand) {
	t.Helper()
	l := NewConv2D(inC, outC, k, rng)
	x := randTensor(inC, h, w, rng)
	dOut := randTensor(outC, h, w, rng)

	// Scalar reference pass.
	SetRefKernels(true)
	want := l.Forward(x)
	wantDIn := l.Backward(dOut)
	wantGW := append([]float32(nil), l.gradW...)
	wantGB := append([]float32(nil), l.gradB...)
	SetRefKernels(false)

	// Kernel-engine pass on fresh gradient accumulators.
	for i := range l.gradW {
		l.gradW[i] = 0
	}
	for i := range l.gradB {
		l.gradB[i] = 0
	}
	l.SetKernelContext(arena, pool)
	got := l.Forward(x)
	gotDIn := l.Backward(dOut)

	for i := range want.Data {
		if math.Float32bits(want.Data[i]) != math.Float32bits(got.Data[i]) {
			t.Fatalf("conv %dx%d k%d %dx%d: forward[%d] not bit-identical: ref %g (%#08x) gemm %g (%#08x)",
				inC, outC, k, h, w, i,
				want.Data[i], math.Float32bits(want.Data[i]),
				got.Data[i], math.Float32bits(got.Data[i]))
		}
	}
	// Gradients tolerate reassociated accumulation (block partials, lane
	// splits): require relative-L2 agreement, ||got-ref|| <= 1e-5*(1+||ref||).
	checkClose := func(name string, ref, got []float32) {
		t.Helper()
		var dd, rr float64
		for i := range ref {
			d := float64(ref[i]) - float64(got[i])
			dd += d * d
			rr += float64(ref[i]) * float64(ref[i])
		}
		if math.Sqrt(dd) > 1e-5*(1+math.Sqrt(rr)) {
			t.Fatalf("conv %dx%d k%d %dx%d: %s differs from ref: ||diff|| %g vs ||ref|| %g",
				inC, outC, k, h, w, name, math.Sqrt(dd), math.Sqrt(rr))
		}
	}
	checkClose("dIn", wantDIn.Data, gotDIn.Data)
	checkClose("gradW", wantGW, l.gradW)
	checkClose("gradB", wantGB, l.gradB)

	arena.Put(got)
	arena.Put(gotDIn)
}

func TestConvGEMMMatchesRef(t *testing.T) {
	defer SetRefKernels(false)
	rng := rand.New(rand.NewSource(42))
	pool := NewPool(3)
	defer pool.Close()
	arena := NewArena()
	for trial := 0; trial < 50; trial++ {
		inC, outC, k, h, w := randShape(rng)
		diffConv(t, inC, outC, k, h, w, pool, arena, rng)
	}
	// Shapes chosen to hit every edge path: single pixel, single row/column,
	// width below and above the micro-kernel's 8-column tile, multi-block
	// heights, and kernels wider than the image.
	for _, s := range [][5]int{
		{1, 1, 1, 1, 1},
		{1, 1, 3, 1, 1},
		{2, 3, 5, 2, 2},
		{3, 5, 3, 1, 40},
		{5, 3, 3, 40, 1},
		{4, 4, 3, 7, 7},
		{1, 4, 3, 8, 8},
		{8, 8, 3, 33, 9},
		{3, 2, 5, 3, 3},
		{6, 7, 1, 12, 31},
	} {
		diffConv(t, s[0], s[1], s[2], s[3], s[4], pool, arena, rng)
	}
}

// TestConvDeterministicAcrossPoolSizes pins the determinism argument: block
// partitioning depends only on shape, so any pool size — including the
// inline pool — produces bit-identical outputs and gradients.
func TestConvDeterministicAcrossPoolSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		inC, outC, k, h, w := randShape(rng)
		h, w = h+24, w+60 // large enough that convBlockRows yields several blocks
		l := NewConv2D(inC, outC, k, rng)
		x := randTensor(inC, h, w, rng)
		dOut := randTensor(outC, h, w, rng)

		type result struct {
			out, dIn     []float32
			gradW, gradB []float32
		}
		run := func(pool *Pool) result {
			for i := range l.gradW {
				l.gradW[i] = 0
			}
			for i := range l.gradB {
				l.gradB[i] = 0
			}
			l.SetKernelContext(NewArena(), pool)
			out := l.Forward(x)
			dIn := l.Backward(dOut)
			return result{
				out:   append([]float32(nil), out.Data...),
				dIn:   append([]float32(nil), dIn.Data...),
				gradW: append([]float32(nil), l.gradW...),
				gradB: append([]float32(nil), l.gradB...),
			}
		}
		base := run(nil)
		for _, workers := range []int{2, 5} {
			p := NewPool(workers)
			got := run(p)
			p.Close()
			for name, pair := range map[string][2][]float32{
				"out":   {base.out, got.out},
				"dIn":   {base.dIn, got.dIn},
				"gradW": {base.gradW, got.gradW},
				"gradB": {base.gradB, got.gradB},
			} {
				for i := range pair[0] {
					if math.Float32bits(pair[0][i]) != math.Float32bits(pair[1][i]) {
						t.Fatalf("pool size %d: %s[%d] differs from inline result: %g vs %g",
							workers, name, i, pair[1][i], pair[0][i])
					}
				}
			}
		}
	}
}

// TestReLUAndPixelShuffleMatchRef checks the in-place/stride-copy paths
// against the seed implementations they replaced.
func TestReLUAndPixelShuffleMatchRef(t *testing.T) {
	defer SetRefKernels(false)
	rng := rand.New(rand.NewSource(3))
	arena := NewArena()
	for trial := 0; trial < 20; trial++ {
		c, h, w := 1+rng.Intn(6), 1+rng.Intn(20), 1+rng.Intn(20)

		r := &ReLU{}
		x := randTensor(c, h, w, rng)
		d := randTensor(c, h, w, rng)
		SetRefKernels(true)
		wantF := r.Forward(x)
		wantB := r.Backward(d)
		SetRefKernels(false)
		x2, d2 := x.Clone(), d.Clone()
		gotF := r.Forward(x2)
		gotB := r.Backward(d2)
		for i := range wantF.Data {
			if wantF.Data[i] != gotF.Data[i] || wantB.Data[i] != gotB.Data[i] {
				t.Fatalf("ReLU mismatch at %d", i)
			}
		}

		s := 1 + rng.Intn(3)
		ps := &PixelShuffle{S: s}
		ps.SetKernelContext(arena, nil)
		in := randTensor(c*s*s, h, w, rng)
		dHR := randTensor(c, h*s, w*s, rng)
		SetRefKernels(true)
		wantPF := ps.Forward(in)
		wantPB := ps.Backward(dHR)
		SetRefKernels(false)
		gotPF := ps.Forward(in)
		gotPB := ps.Backward(dHR)
		for i := range wantPF.Data {
			if wantPF.Data[i] != gotPF.Data[i] {
				t.Fatalf("PixelShuffle forward mismatch at %d", i)
			}
		}
		for i := range wantPB.Data {
			if wantPB.Data[i] != gotPB.Data[i] {
				t.Fatalf("PixelShuffle backward mismatch at %d", i)
			}
		}
		arena.Put(gotPF)
		arena.Put(gotPB)
	}
}

func TestPoolRunCoversAllIndicesNested(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	outer := make([]int, 16)
	p.Run(len(outer), func(i int) {
		inner := make([]int32, 8)
		// Nested Run from inside a pool task must not deadlock: the
		// caller-helps fork-join drains its own index space.
		p.Run(len(inner), func(j int) { inner[j]++ })
		s := 0
		for _, v := range inner {
			s += int(v)
		}
		outer[i] = s
	})
	for i, v := range outer {
		if v != 8 {
			t.Fatalf("outer[%d] = %d, want 8", i, v)
		}
	}
}

func TestArenaReusesExactSizes(t *testing.T) {
	a := NewArena()
	t1 := a.Get(2, 3, 4)
	a.Put(t1)
	t2 := a.Get(4, 3, 2) // same element count, different shape
	if &t2.Data[0] != &t1.Data[0] {
		t.Fatal("arena did not reuse the retired tensor of equal element count")
	}
	if t2.C != 4 || t2.H != 3 || t2.W != 2 {
		t.Fatalf("reused tensor has stale shape (%d,%d,%d)", t2.C, t2.H, t2.W)
	}
	b := a.GetBuf(128)
	a.PutBuf(b)
	if b2 := a.GetBuf(128); &b2[0] != &b[0] {
		t.Fatal("arena did not reuse the retired buffer")
	}
}

// FuzzConvForwardGEMM extends the differential check to fuzzer-chosen
// shapes and seeds: forward must stay bit-identical to the scalar
// reference, gradients within 1e-5.
func FuzzConvForwardGEMM(f *testing.F) {
	f.Add(uint8(0), uint8(1), uint8(1), uint8(9), uint8(11), int64(5))
	f.Add(uint8(3), uint8(3), uint8(2), uint8(39), uint8(2), int64(99))
	f.Add(uint8(7), uint8(0), uint8(0), uint8(0), uint8(0), int64(-1))
	pool := NewPool(2)
	defer pool.Close()
	arena := NewArena()
	f.Fuzz(func(t *testing.T, inCRaw, outCRaw, kRaw, hRaw, wRaw uint8, seed int64) {
		defer SetRefKernels(false)
		inC := 1 + int(inCRaw)%9
		outC := 1 + int(outCRaw)%9
		k := 1 + 2*(int(kRaw)%3)
		h := 1 + int(hRaw)%40
		w := 1 + int(wRaw)%40
		rng := rand.New(rand.NewSource(seed))
		diffConv(t, inC, outC, k, h, w, pool, arena, rng)
	})
}
