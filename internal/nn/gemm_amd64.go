//go:build amd64 && !purego

package nn

// kern4x8 computes, for r in 0..3 and j in 0..7,
//
//	c[r*cn+j] = bias[r] + Σ_{p<kk} a[p*4+r] * b[p*bn+j]
//
// with the sum of every element accumulated in ascending p order using
// element-wise SSE2 MULPS/ADDPS (no FMA), matching scalar float32 rounding
// exactly. a is a packed [kk][4] A tile (packA4); b and c are row-major
// with strides bn and cn elements.
//
//go:noescape
func kern4x8(kk int, a *float32, b *float32, bn int, bias *float32, c *float32, cn int)

// kern1x8 computes c[j] = bias[0] + Σ_{p<kk} a[p] * b[p*bn+j] for j in
// 0..7, the single-row variant of kern4x8 used for the m-tail of
// gemmConvBias. a is a contiguous (unpacked) A row; accumulation is
// element-wise in ascending p order, bit-identical to the scalar path.
//
//go:noescape
func kern1x8(kk int, a *float32, b *float32, bn int, bias *float32, c *float32)

// kernDot4 computes out[r] = Σ_{p<n} g[p] * b[r*bn+p] for r in 0..3, where
// n is a multiple of 4, as four interleaved lane partials per row reduced
// as (l0+l2)+(l1+l3). gemmDotRows's scalar fallback mirrors that order.
//
//go:noescape
func kernDot4(n int, gv *float32, b *float32, bn int, out *float32)
