//go:build !amd64 || purego

package nn

import "unsafe"

// Pure-Go twins of the int8 vector kernels. Non-amd64 builds leave
// qkernTile and qrequantVec nil, so the hot path routes through qgemmScalar
// and requantReLU's Go loop; the twins exist to keep the package's function
// surface identical on both sides of the build partition (the asm-abi check
// enforces this) and to document the kernels' exact semantics in Go.
// Integer accumulation and clamped-float requant are exact operations, so
// the twins are bit-identical to the amd64 vector kernels.

func qkern4x16(kk2 int, a *int16, b *int16, bn int, c *int32, cn int) {
	qkernGo(kk2, a, b, bn, c, cn, 16)
}

func qkern4x8s(kk2 int, a *int16, b *int16, bn int, c *int32, cn int) {
	qkernGo(kk2, a, b, bn, c, cn, 8)
}

// qkernGo computes one 4-row × cols-column C tile from a wqPack block laid
// out [kk2][4 channels][2 taps] (see packWqBlocks) and the im2colI16 panel,
// writing — not accumulating — exactly like the pmaddwd kernels.
func qkernGo(kk2 int, a *int16, b *int16, bn int, c *int32, cn int, cols int) {
	as := unsafe.Slice(a, kk2*8)
	bs := unsafe.Slice(b, (2*kk2-1)*bn+cols)
	cs := unsafe.Slice(c, 3*cn+cols)
	for r := 0; r < 4; r++ {
		for j := 0; j < cols; j++ {
			var s int32
			for p2 := 0; p2 < kk2; p2++ {
				s += int32(as[(p2*4+r)*2])*int32(bs[2*p2*bn+j]) +
					int32(as[(p2*4+r)*2+1])*int32(bs[(2*p2+1)*bn+j])
			}
			cs[r*cn+j] = s
		}
	}
}

// qrequant mirrors requantReLU's scalar tail over a multiple-of-8 prefix.
//
//livenas:allow hot-loop-precision int32⇄float32 is the requant epilogue's defined operation, exact for |acc| < 2²⁴; it cannot be hoisted
func qrequant(n8 int, acc *int32, m, bh float32, out *int16) {
	as := unsafe.Slice(acc, n8)
	os := unsafe.Slice(out, n8)
	for i := 0; i < n8; i++ {
		f := float32(as[i])*m + bh
		f = min(f, 127)
		f = max(f, 0)
		os[i] = int16(int32(f))
	}
}
