//go:build !amd64 || purego

package nn

// Non-amd64 builds run the int8 path entirely through qgemmScalar and the
// Go requant loop. Integer accumulation and clamped-float requant are exact
// operations, so results are bit-identical to the amd64 vector kernels.
