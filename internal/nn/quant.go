package nn

import "math"

// Quantized inference fast path.
//
// Scheme (standard symmetric int8, cf. the convolutional-LUT streaming-SR
// line in PAPERS.md):
//
//   - Weights: per-output-channel symmetric, scaleW[oc] = maxAbs(row)/127,
//     wq = round(w/scaleW) ∈ [-127, 127], quantized once per model sync.
//   - Activations: per-tensor symmetric with a fixed [0,127] range for the
//     ReLU-positive hidden activations; the scale for layer i's input comes
//     from calibration (the trainer's running activation maxima — see
//     internal/sr). Inputs are pixels/255 ∈ [0,1], quantized with the fixed
//     scale 1/127 through a 256-entry LUT.
//   - Accumulation: exact int32 (gemm_int8.go). The epilogue fuses
//     dequantize + bias + ReLU + requantize into one pass over the
//     accumulator panel: with m[oc] = scaleW[oc]·scaleX/scaleXNext and
//     bh[oc] = bias[oc]/scaleXNext + 0.5, the next layer's input is
//     int16(trunc(clamp(acc·m + bh, 0, 127))) — round-half-up ReLU-clamped
//     requantization in 4 float ops. The final conv dequantizes to float32
//     residuals instead (m[oc] = scaleW[oc]·scaleX, plain f32 bias) for the
//     pixel-shuffle + residual-add tail.
//
// Everything after quantization is exact integer or clamped-float math, so
// the int8 path is bit-deterministic across kernel variants and worker
// counts by construction; its *accuracy* against the f32 path is what the
// online quality gate in internal/sr watches.
type QuantConv struct {
	InC, OutC, K int
	ScaleW       []float32 // per-output-channel weight scales
	Bias         []float32 // f32 biases (folded into the epilogue)
	kkEvn        int       // inC*K*K rounded up to even (tap pairs)
	wq           []int16   // row-major [outC][kkEvn] quantized weights
	wqPack       []int16   // pair-interleaved 4-row blocks for the vector kernels
}

// QuantizeConv2D quantizes a Conv2D's weights per output channel. The
// returned QuantConv is immutable; re-quantize after weight syncs.
func QuantizeConv2D(l *Conv2D) *QuantConv {
	kk := l.InC * l.K * l.K
	ke := kkEven(l.InC, l.K)
	q := &QuantConv{
		InC: l.InC, OutC: l.OutC, K: l.K,
		ScaleW: make([]float32, l.OutC),
		Bias:   append([]float32(nil), l.Bias...),
		kkEvn:  ke,
		wq:     make([]int16, l.OutC*ke),
	}
	for oc := 0; oc < l.OutC; oc++ {
		row := l.Weight[oc*kk : (oc+1)*kk]
		var amax float32
		for _, v := range row {
			if v < 0 {
				v = -v
			}
			if v > amax {
				amax = v
			}
		}
		scale := amax / 127
		if scale == 0 {
			scale = 1 // all-zero channel (e.g. ZeroInit tail layer): wq stays 0
		}
		q.ScaleW[oc] = scale
		dst := q.wq[oc*ke : oc*ke+kk]
		for p, v := range row {
			dst[p] = int16(math.Round(float64(v / scale))) //livenas:allow hot-loop-precision one-time weight quantization at model sync, not a per-frame path
		}
	}
	q.wqPack = packWqBlocks(q.wq, l.OutC, ke)
	return q
}

// ForwardRequant runs the quantized conv over a (InC, h, w) int8-in-int16
// activation tensor and writes the next layer's (OutC, h, w) quantized
// activation, with the ReLU + requantization epilogue fused
// (m/bh as described on QuantConv; bh includes the +0.5 rounding term).
// Scratch comes from the arena; steady state allocates nothing.
func (q *QuantConv) ForwardRequant(a *Arena, x []int16, h, w int, m, bh []float32, out []int16) {
	q.forward(a, x, h, w, m, bh, out, nil)
}

// ForwardDequant runs the quantized conv and dequantizes the accumulator to
// float32 (out[oc][p] = acc·m[oc] + b[oc]) for the network tail.
func (q *QuantConv) ForwardDequant(a *Arena, x []int16, h, w int, m, b []float32, out []float32) {
	q.forward(a, x, h, w, m, b, nil, out)
}

func (q *QuantConv) forward(a *Arena, x []int16, h, w int, m, b []float32, outQ []int16, outF []float32) {
	plane := h * w
	br := convBlockRows(w, h)
	for y0 := 0; y0 < h; y0 += br {
		y1 := min(y0+br, h)
		n := (y1 - y0) * w
		pack := a.GetBufI16(q.kkEvn * n)
		im2colI16(x, q.InC, h, w, q.K, y0, y1, pack)
		acc := a.GetBufI32(q.OutC * n)
		gemmInt8Conv(q.wq, q.wqPack, pack, q.OutC, q.kkEvn, n, acc, n)
		for oc := 0; oc < q.OutC; oc++ {
			seg := acc[oc*n : (oc+1)*n]
			off := oc*plane + y0*w
			if outQ != nil {
				requantReLU(seg, m[oc], b[oc], outQ[off:off+n])
			} else {
				dequantInto(seg, m[oc], b[oc], outF[off:off+n])
			}
		}
		a.PutBufI32(acc)
		a.PutBufI16(pack)
	}
}
