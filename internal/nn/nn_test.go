package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTensorBasics(t *testing.T) {
	x := NewTensor(2, 3, 4)
	if len(x.Data) != 24 {
		t.Fatalf("len=%d", len(x.Data))
	}
	x.Set(1, 2, 3, 7)
	if x.At(1, 2, 3) != 7 {
		t.Fatal("At/Set mismatch")
	}
	y := x.Clone()
	y.Set(1, 2, 3, 9)
	if x.At(1, 2, 3) != 7 {
		t.Fatal("Clone aliases storage")
	}
	if !x.SameShape(y) {
		t.Fatal("SameShape false for equal shapes")
	}
	x.AddInPlace(y)
	if x.At(1, 2, 3) != 16 {
		t.Fatal("AddInPlace wrong")
	}
	x.Zero()
	if x.At(1, 2, 3) != 0 {
		t.Fatal("Zero failed")
	}
}

func TestTensorPanics(t *testing.T) {
	mustPanic(t, func() { NewTensor(0, 1, 1) })
	mustPanic(t, func() {
		a, b := NewTensor(1, 2, 2), NewTensor(1, 2, 3)
		a.AddInPlace(b)
	})
	mustPanic(t, func() { MSELoss(NewTensor(1, 2, 2), NewTensor(1, 3, 2)) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestMSELoss(t *testing.T) {
	a := NewTensor(1, 1, 2)
	b := NewTensor(1, 1, 2)
	a.Data[0], a.Data[1] = 1, 3
	b.Data[0], b.Data[1] = 0, 1
	loss, grad := MSELoss(a, b)
	if math.Abs(loss-2.5) > 1e-6 { // (1 + 4)/2
		t.Fatalf("loss=%v", loss)
	}
	if math.Abs(float64(grad.Data[0])-1) > 1e-6 || math.Abs(float64(grad.Data[1])-2) > 1e-6 {
		t.Fatalf("grad=%v", grad.Data)
	}
}

func TestConvIdentityKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	conv := NewConv2D(1, 1, 3, rng)
	conv.ZeroInit()
	conv.Weight[4] = 1 // centre tap
	x := NewTensor(1, 4, 5)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	y := conv.Forward(x)
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatalf("identity conv changed data at %d", i)
		}
	}
}

func TestConvBiasOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	conv := NewConv2D(2, 3, 3, rng)
	conv.ZeroInit()
	conv.Bias[1] = 2.5
	y := conv.Forward(NewTensor(2, 3, 3))
	for c := 0; c < 3; c++ {
		want := float32(0)
		if c == 1 {
			want = 2.5
		}
		for yy := 0; yy < 3; yy++ {
			for xx := 0; xx < 3; xx++ {
				if y.At(c, yy, xx) != want {
					t.Fatalf("bias broadcast wrong at (%d,%d,%d)", c, yy, xx)
				}
			}
		}
	}
}

// numericGrad estimates dLoss/dw by central differences.
func numericGrad(f func() float64, w *float32) float64 {
	const eps = 1e-3
	old := *w
	*w = old + eps
	lp := f()
	*w = old - eps
	lm := f()
	*w = old
	return (lp - lm) / (2 * eps)
}

func TestConvGradientsNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	conv := NewConv2D(2, 2, 3, rng)
	x := NewTensor(2, 5, 5)
	target := NewTensor(2, 5, 5)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
		target.Data[i] = float32(rng.NormFloat64())
	}
	loss := func() float64 {
		y := conv.Forward(x)
		l, _ := MSELoss(y, target)
		return l
	}
	// Analytic gradients.
	y := conv.Forward(x)
	_, g := MSELoss(y, target)
	ZeroGrads([]Layer{conv})
	dIn := conv.Backward(g)

	// Check several weight gradients.
	for _, idx := range []int{0, 4, 9, 17, 35} {
		got := float64(conv.gradW[idx])
		want := numericGrad(loss, &conv.Weight[idx])
		if math.Abs(got-want) > 1e-2*math.Max(1, math.Abs(want)) {
			t.Fatalf("weight grad %d: analytic %v numeric %v", idx, got, want)
		}
	}
	// Bias gradients.
	for i := range conv.Bias {
		got := float64(conv.gradB[i])
		want := numericGrad(loss, &conv.Bias[i])
		if math.Abs(got-want) > 1e-2*math.Max(1, math.Abs(want)) {
			t.Fatalf("bias grad %d: analytic %v numeric %v", i, got, want)
		}
	}
	// Input gradients.
	for _, idx := range []int{0, 7, 12, 24, 40} {
		got := float64(dIn.Data[idx])
		want := numericGrad(loss, &x.Data[idx])
		if math.Abs(got-want) > 1e-2*math.Max(1, math.Abs(want)) {
			t.Fatalf("input grad %d: analytic %v numeric %v", idx, got, want)
		}
	}
}

func TestReLU(t *testing.T) {
	r := &ReLU{}
	x := NewTensor(1, 1, 4)
	copy(x.Data, []float32{-1, 0, 2, -3})
	y := r.Forward(x)
	want := []float32{0, 0, 2, 0}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("relu fwd %v", y.Data)
		}
	}
	g := NewTensor(1, 1, 4)
	copy(g.Data, []float32{5, 5, 5, 5})
	d := r.Backward(g)
	wantG := []float32{0, 0, 5, 0}
	for i := range wantG {
		if d.Data[i] != wantG[i] {
			t.Fatalf("relu bwd %v", d.Data)
		}
	}
}

func TestPixelShuffleForward(t *testing.T) {
	ps := &PixelShuffle{S: 2}
	x := NewTensor(4, 1, 1)
	copy(x.Data, []float32{1, 2, 3, 4})
	y := ps.Forward(x)
	if y.C != 1 || y.H != 2 || y.W != 2 {
		t.Fatalf("shape (%d,%d,%d)", y.C, y.H, y.W)
	}
	// Channel (sy*s+sx) goes to offset (sy, sx).
	if y.At(0, 0, 0) != 1 || y.At(0, 0, 1) != 2 || y.At(0, 1, 0) != 3 || y.At(0, 1, 1) != 4 {
		t.Fatalf("shuffle layout %v", y.Data)
	}
}

func TestPixelShuffleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ps := &PixelShuffle{S: 3}
	x := NewTensor(9, 4, 5)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	y := ps.Forward(x)
	back := ps.Backward(y) // backward of shuffle is exact inverse permutation
	for i := range x.Data {
		if back.Data[i] != x.Data[i] {
			t.Fatal("pixel shuffle backward is not the inverse permutation")
		}
	}
}

func TestPixelShufflePanics(t *testing.T) {
	mustPanic(t, func() { (&PixelShuffle{S: 2}).Forward(NewTensor(3, 2, 2)) })
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimise (w-3)² via Adam on a fake Param.
	w := []float32{0}
	g := []float32{0}
	p := []Param{{W: w, Grad: g}}
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		g[0] = 2 * (w[0] - 3)
		opt.Step(p)
	}
	if math.Abs(float64(w[0])-3) > 0.05 {
		t.Fatalf("Adam did not converge: w=%v", w[0])
	}
}

func TestAdamPanicsOnParamCountChange(t *testing.T) {
	opt := NewAdam(0.01)
	opt.Step([]Param{{W: []float32{1}, Grad: []float32{0}}})
	mustPanic(t, func() {
		opt.Step([]Param{{W: []float32{1}, Grad: []float32{0}}, {W: []float32{1}, Grad: []float32{0}}})
	})
}

func TestEndToEndTrainingReducesLoss(t *testing.T) {
	// A 2-layer net must be able to fit a small random mapping.
	rng := rand.New(rand.NewSource(5))
	layers := []Layer{
		NewConv2D(1, 4, 3, rng),
		&ReLU{},
		NewConv2D(4, 1, 3, rng),
	}
	params := CollectParams(layers)
	opt := NewAdam(0.01)
	x := NewTensor(1, 6, 6)
	target := NewTensor(1, 6, 6)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
		target.Data[i] = float32(rng.NormFloat64()) * 0.3
	}
	var first, last float64
	for it := 0; it < 300; it++ {
		h := x
		for _, l := range layers {
			h = l.Forward(h)
		}
		loss, g := MSELoss(h, target)
		if it == 0 {
			first = loss
		}
		last = loss
		ZeroGrads(layers)
		for i := len(layers) - 1; i >= 0; i-- {
			g = layers[i].Backward(g)
		}
		opt.Step(params)
	}
	if last > first*0.5 {
		t.Fatalf("training did not reduce loss: %v -> %v", first, last)
	}
}

func TestCollectParamsOrderStable(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	layers := []Layer{NewConv2D(1, 2, 3, rng), &ReLU{}, NewConv2D(2, 1, 3, rng)}
	a := CollectParams(layers)
	b := CollectParams(layers)
	if len(a) != 4 || len(b) != 4 { // 2 convs x (weight, bias)
		t.Fatalf("param count %d/%d", len(a), len(b))
	}
	for i := range a {
		if &a[i].W[0] != &b[i].W[0] {
			t.Fatal("param order not stable")
		}
	}
}

// Property: with zero bias, convolution is homogeneous — Forward(a*x) ==
// a*Forward(x) — for random inputs and scales.
func TestQuickConvHomogeneous(t *testing.T) {
	f := func(seed int64, aRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		conv := NewConv2D(2, 3, 3, rng)
		for i := range conv.Bias {
			conv.Bias[i] = 0
		}
		a := float32(aRaw%8) + 0.5
		x := NewTensor(2, 5, 5)
		for i := range x.Data {
			x.Data[i] = float32(rng.NormFloat64())
		}
		ax := x.Clone()
		for i := range ax.Data {
			ax.Data[i] *= a
		}
		y1 := conv.Forward(ax)
		y0 := conv.Forward(x)
		for i := range y1.Data {
			d := y1.Data[i] - a*y0.Data[i]
			if d > 1e-3 || d < -1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: MSELoss is zero iff pred == target, and symmetric in its
// distance.
func TestQuickMSEProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewTensor(1, 4, 4)
		b := NewTensor(1, 4, 4)
		for i := range a.Data {
			a.Data[i] = float32(rng.NormFloat64())
			b.Data[i] = float32(rng.NormFloat64())
		}
		l0, _ := MSELoss(a, a)
		lab, _ := MSELoss(a, b)
		lba, _ := MSELoss(b, a)
		return l0 == 0 && lab >= 0 && (lab-lba) < 1e-12 && (lba-lab) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
