// Package nn is a small, dependency-free neural-network library built for
// LiveNAS-Go's online-trained super-resolution models: float32 CHW tensors,
// 2-D convolutions with full backpropagation, ReLU, sub-pixel (pixel-shuffle)
// upsampling, MSE loss, and the Adam optimiser the paper trains with (§7,
// "The online trainer utilizes the ADAM optimizer").
//
// It substitutes for PyTorch in the original implementation; see DESIGN.md.
// Everything is exact gradient code — the models genuinely learn — only the
// scale (layer count, channel width) is reduced to CPU-friendly sizes.
package nn

import "fmt"

// Tensor is a dense float32 tensor in channel-major (C, H, W) layout.
type Tensor struct {
	C, H, W int
	Data    []float32
}

// NewTensor allocates a zeroed tensor of shape (c, h, w).
func NewTensor(c, h, w int) *Tensor {
	if c <= 0 || h < 0 || w < 0 {
		panic(fmt.Sprintf("nn: invalid tensor shape (%d,%d,%d)", c, h, w))
	}
	return &Tensor{C: c, H: h, W: w, Data: make([]float32, c*h*w)}
}

// At returns the element at (c, y, x).
func (t *Tensor) At(c, y, x int) float32 { return t.Data[(c*t.H+y)*t.W+x] }

// Set writes the element at (c, y, x).
func (t *Tensor) Set(c, y, x int, v float32) { t.Data[(c*t.H+y)*t.W+x] = v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	o := &Tensor{C: t.C, H: t.H, W: t.W, Data: make([]float32, len(t.Data))}
	copy(o.Data, t.Data)
	return o
}

// SameShape reports whether two tensors have identical dimensions.
func (t *Tensor) SameShape(o *Tensor) bool {
	return t.C == o.C && t.H == o.H && t.W == o.W
}

// Zero resets all elements to 0 in place.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// AddInPlace adds o element-wise into t. Shapes must match.
func (t *Tensor) AddInPlace(o *Tensor) {
	if !t.SameShape(o) {
		panic("nn: AddInPlace shape mismatch")
	}
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// Param is one learnable parameter bundle: a weight slice and its gradient
// accumulator of equal length. Optimisers operate on Params.
type Param struct {
	W    []float32
	Grad []float32
}

// Layer is a differentiable module.
type Layer interface {
	// Forward computes the layer output for input x. Implementations may
	// cache what Backward needs; callers run Forward then Backward pairwise.
	Forward(x *Tensor) *Tensor
	// Backward consumes dOut (gradient w.r.t. the forward output),
	// accumulates parameter gradients, and returns the gradient w.r.t. the
	// forward input.
	Backward(dOut *Tensor) *Tensor
	// Params returns the learnable parameters (empty for stateless layers).
	Params() []Param
}

// ZeroGrads clears the gradient accumulators of all params in layers.
func ZeroGrads(layers []Layer) {
	for _, l := range layers {
		for _, p := range l.Params() {
			for i := range p.Grad {
				p.Grad[i] = 0
			}
		}
	}
}

// MSELoss returns the mean squared error between pred and target and the
// gradient of the loss w.r.t. pred (2*(pred-target)/N).
func MSELoss(pred, target *Tensor) (float64, *Tensor) {
	grad := NewTensor(pred.C, pred.H, pred.W)
	return MSELossGradInto(pred, target, grad), grad
}

// MSELossGradInto is MSELoss writing the gradient into a caller-provided
// (typically arena-recycled) tensor of the same shape, fully overwriting it.
func MSELossGradInto(pred, target, grad *Tensor) float64 {
	if !pred.SameShape(target) || !pred.SameShape(grad) {
		panic("nn: MSELoss shape mismatch")
	}
	n := float32(len(pred.Data))
	var loss float64
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		loss += float64(d) * float64(d) //livenas:allow hot-loop-precision float64 loss accumulator is intentional
		grad.Data[i] = 2 * d / n
	}
	return loss / float64(n)
}
