package nn

import (
	"math/rand"
	"testing"
)

// Kernel microbenchmarks, tracked by scripts/bench.sh into
// BENCH_kernels.json. Each benchmark runs in two variants: "kernel" is the
// im2col/GEMM engine with arena recycling, "ref" the retained scalar
// reference path the seed implementation used — both in the same binary,
// toggled by SetRefKernels, so speedups are apples-to-apples.
//
// The shape (8→8 channels, 3×3 taps, 192×108 pixels) is the mid conv of
// the default SR model on a 1080p/10-strip inference block.

const (
	benchC = 8
	benchK = 3
	benchH = 108
	benchW = 192
)

func benchConvForward(b *testing.B, ref bool) {
	rng := rand.New(rand.NewSource(1))
	l := NewConv2D(benchC, benchC, benchK, rng)
	l.SetKernelContext(NewArena(), SharedPool())
	x := randTensor(benchC, benchH, benchW, rng)
	SetRefKernels(ref)
	defer SetRefKernels(false)
	macs := int64(benchC * benchC * benchK * benchK * benchH * benchW)
	b.SetBytes(macs * 4) // nominal MAC throughput, 4 bytes per float32 MAC
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := l.Forward(x)
		if !ref {
			l.arena.Put(out)
		}
	}
}

func BenchmarkConvForward(b *testing.B) {
	b.Run("kernel", func(b *testing.B) { benchConvForward(b, false) })
	b.Run("ref", func(b *testing.B) { benchConvForward(b, true) })
}

func benchConvBackward(b *testing.B, ref bool) {
	rng := rand.New(rand.NewSource(1))
	l := NewConv2D(benchC, benchC, benchK, rng)
	l.SetKernelContext(NewArena(), SharedPool())
	x := randTensor(benchC, benchH, benchW, rng)
	dOut := randTensor(benchC, benchH, benchW, rng)
	SetRefKernels(ref)
	defer SetRefKernels(false)
	l.Forward(x)                                                           // cache the activation Backward consumes
	macs := int64(3 * benchC * benchC * benchK * benchK * benchH * benchW) // dIn + gradW + forward-equivalent
	b.SetBytes(macs * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dIn := l.Backward(dOut)
		if !ref {
			l.arena.Put(dIn)
		}
	}
}

func BenchmarkConvBackward(b *testing.B) {
	b.Run("kernel", func(b *testing.B) { benchConvBackward(b, false) })
	b.Run("ref", func(b *testing.B) { benchConvBackward(b, true) })
}
