package nn

import (
	"math"
	"math/rand"
	"testing"
)

// The int8 path's correctness contract (DESIGN.md "Kernel engine"): every
// kernel variant (vector asm, scalar Go) produces bit-identical int32
// accumulators — integer math is exact, so this is equality, not
// tolerance — and the quantized conv tracks the f32 conv within the
// quantization error bound (rel-L2, checked here per layer; the end-to-end
// PSNR-gap bound lives in internal/sr).

func randI8(n int, rng *rand.Rand) []int16 {
	b := make([]int16, n)
	for i := range b {
		b[i] = int16(rng.Intn(255) - 127) // full int8 symmetric range
	}
	return b
}

// runScalarOnly computes the reference result via qgemmScalar for all rows.
func runScalarOnly(wq []int16, b []int16, outC, ke, n int) []int32 {
	acc := make([]int32, outC*n)
	qgemmScalar(wq, b, 0, outC, ke, 0, n, acc, n)
	return acc
}

func TestQuantGemmMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		outC := 1 + rng.Intn(9)
		kk := 1 + rng.Intn(80)
		ke := kk + kk&1
		n := 1 + rng.Intn(70)
		wq := randI8(outC*ke, rng)
		if kk&1 == 1 { // pad tap must be zero, as QuantizeConv2D guarantees
			for oc := 0; oc < outC; oc++ {
				wq[oc*ke+kk] = 0
			}
		}
		b := randI8(ke*n, rng)
		want := runScalarOnly(wq, b, outC, ke, n)

		acc := make([]int32, outC*n)
		for i := range acc {
			acc[i] = -1 // canary: every element must be written
		}
		gemmInt8Conv(wq, packWqBlocks(wq, outC, ke), b, outC, ke, n, acc, n)
		for i := range want {
			if acc[i] != want[i] {
				t.Fatalf("trial %d (outC=%d kk=%d n=%d tile=%d): acc[%d] = %d, scalar %d",
					trial, outC, kk, n, qkernTileCols, i, acc[i], want[i])
			}
		}
	}
}

func TestRequantReLUVecMatchesGo(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	saved := qrequantVec
	defer func() { qrequantVec = saved }()
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(200)
		acc := make([]int32, n)
		for i := range acc {
			// Span negatives, zero crossings and clamp-overflow magnitudes.
			acc[i] = int32(rng.Intn(1<<22) - 1<<21)
		}
		m := float32(rng.Float64() * 0.001)
		bh := float32(rng.Float64()*4-2) + 0.5

		qrequantVec = nil
		want := make([]int16, n)
		requantReLU(acc, m, bh, want)

		qrequantVec = saved
		got := make([]int16, n)
		requantReLU(acc, m, bh, got)

		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d n=%d: requant[%d] vec %d go %d (acc=%d m=%g bh=%g)",
					trial, n, i, got[i], want[i], acc[i], m, bh)
			}
			if want[i] < 0 || want[i] > 127 {
				t.Fatalf("requant[%d] = %d outside [0,127]", i, want[i])
			}
		}
	}
}

// TestQuantGemmScalarFallbackMatches pins that the pure-Go configuration
// (qkernTile nil, as on non-amd64 builds) routes through qgemmScalar and
// agrees with the vector drivers bit for bit.
func TestQuantGemmScalarFallbackMatches(t *testing.T) {
	savedK, savedC := qkernTile, qkernTileCols
	defer func() { qkernTile, qkernTileCols = savedK, savedC }()

	rng := rand.New(rand.NewSource(13))
	outC, kk, n := 8, 72, 100
	ke := kk
	wq := randI8(outC*ke, rng)
	b := randI8(ke*n, rng)

	got := make([]int32, outC*n)
	gemmInt8Conv(wq, packWqBlocks(wq, outC, ke), b, outC, ke, n, got, n)

	qkernTile, qkernTileCols = nil, 0
	want := make([]int32, outC*n)
	gemmInt8Conv(wq, packWqBlocks(wq, outC, ke), b, outC, ke, n, want, n)

	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("acc[%d]: kernel %d, generic %d", i, got[i], want[i])
		}
	}
}

// TestQuantConvDifferential bounds the per-layer quantization error: the
// int8 conv (quantized weights and input, exact accumulation, dequant
// epilogue) must track the f32 conv on the same input within a small
// rel-L2. Inputs model a quantized activation plane: int8 codes with scale
// 1/127, i.e. values in [0, 1].
func TestQuantConvDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	arena := NewArena()
	for trial := 0; trial < 10; trial++ {
		inC := 1 + rng.Intn(8)
		outC := 1 + rng.Intn(8)
		k := 1 + 2*rng.Intn(2)
		h := 4 + rng.Intn(30)
		w := 4 + rng.Intn(30)
		l := NewConv2D(inC, outC, k, rng)
		q := QuantizeConv2D(l)

		const xScale = 1.0 / 127
		xq := make([]int16, inC*h*w)
		x := NewTensor(inC, h, w)
		for i := range xq {
			xq[i] = int16(rng.Intn(128)) // ReLU-positive activation codes
			x.Data[i] = float32(xq[i]) * xScale
		}

		// f32 reference on the *dequantized* input isolates the weight
		// quantization + epilogue error this test bounds.
		l.SetKernelContext(nil, nil)
		want := l.Forward(x)

		m := make([]float32, outC)
		for oc := range m {
			m[oc] = q.ScaleW[oc] * xScale
		}
		got := make([]float32, outC*h*w)
		q.ForwardDequant(arena, xq, h, w, m, q.Bias, got)

		var num, den float64
		for i := range got {
			d := float64(got[i] - want.Data[i])
			num += d * d
			den += float64(want.Data[i]) * float64(want.Data[i])
		}
		rel := math.Sqrt(num / (den + 1e-12))
		if rel > 0.02 {
			t.Fatalf("trial %d (%d->%d k=%d %dx%d): int8 vs f32 rel-L2 %.4f > 0.02",
				trial, inC, outC, k, h, w, rel)
		}
	}
}

// TestQuantForwardRequantZeroAlloc pins the 0 allocs/op arena contract on
// the fused requant path once the arena is warm.
func TestQuantForwardRequantZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	arena := NewArena()
	l := NewConv2D(8, 8, 3, rng)
	q := QuantizeConv2D(l)
	h, w := 32, 48
	xq := randI8(8*h*w, rng)
	m := make([]float32, 8)
	bh := make([]float32, 8)
	for i := range m {
		m[i] = q.ScaleW[i] / 127
		bh[i] = q.Bias[i] + 0.5
	}
	out := make([]int16, 8*h*w)
	q.ForwardRequant(arena, xq, h, w, m, bh, out) // warm the arena
	allocs := testing.AllocsPerRun(10, func() {
		q.ForwardRequant(arena, xq, h, w, m, bh, out)
	})
	if allocs != 0 {
		t.Fatalf("ForwardRequant allocates %v/op, want 0", allocs)
	}
}
