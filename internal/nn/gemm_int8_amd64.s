//go:build amd64 && !purego

// Int8 micro-kernels for the quantized inference path. The int8 values
// travel in int16 containers so the whole pipeline is PMADDWD-shaped: one
// pmaddwd consumes two taps per output element and accumulates exactly in
// int32, which makes every kernel variant bit-identical by construction
// (see gemm_int8.go). The AVX2 kernel is primary; the SSE2 ones run on any
// amd64 (SSE2 is the amd64 baseline) and kernel choice happens once at init
// via CPUID (gemm_int8_amd64.go).
//
// B panels are plain im2colI16 rows; the tap-pair interleave the pmaddwd
// dataflow needs is done in-register with punpcklwd/punpckhwd (two unpacks
// amortized over four output rows), so the packing stays at copy speed.

#include "textflag.h"

// func qkern4x16(kk2 int, a *int16, b *int16, bn int, c *int32, cn int)
//
// AVX2: 4 output rows × 16 columns, kk2 tap-pair steps. a is one wqPack
// block ([kk2][4 channels][2 taps] int16) so one channel's tap pair is a
// 32-bit broadcast. Accumulator map (punpck works per 128-bit lane, so the
// column split is {0-3,8-11}/{4-7,12-15}; the store section undoes it):
//   Y0,Y1: row 0    Y2,Y3: row 1    Y4,Y5: row 2    Y6,Y7: row 3
TEXT ·qkern4x16(SB), NOSPLIT, $0-48
	MOVQ kk2+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), BX
	MOVQ bn+24(FP), DX
	MOVQ c+32(FP), DI
	MOVQ cn+40(FP), R9
	SHLQ $1, DX              // B row stride in bytes (int16)
	SHLQ $2, R9              // C row stride in bytes (int32)
	LEAQ (BX)(DX*1), R10     // second row of the current tap pair

	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	VPXOR Y4, Y4, Y4
	VPXOR Y5, Y5, Y5
	VPXOR Y6, Y6, Y6
	VPXOR Y7, Y7, Y7

	TESTQ CX, CX
	JLE   q4x16done

q4x16loop:
	VMOVDQU (BX), Y13        // B[2p][j..j+15]
	VMOVDQU (R10), Y14       // B[2p+1][j..j+15]
	VPUNPCKLWD Y14, Y13, Y8  // tap pairs, cols {0-3, 8-11}
	VPUNPCKHWD Y14, Y13, Y9  // tap pairs, cols {4-7, 12-15}

	VPBROADCASTD (SI), Y10   // channel 0 tap pair
	VPMADDWD Y8, Y10, Y11
	VPADDD   Y11, Y0, Y0
	VPMADDWD Y9, Y10, Y12
	VPADDD   Y12, Y1, Y1

	VPBROADCASTD 4(SI), Y10  // channel 1
	VPMADDWD Y8, Y10, Y11
	VPADDD   Y11, Y2, Y2
	VPMADDWD Y9, Y10, Y12
	VPADDD   Y12, Y3, Y3

	VPBROADCASTD 8(SI), Y10  // channel 2
	VPMADDWD Y8, Y10, Y11
	VPADDD   Y11, Y4, Y4
	VPMADDWD Y9, Y10, Y12
	VPADDD   Y12, Y5, Y5

	VPBROADCASTD 12(SI), Y10 // channel 3
	VPMADDWD Y8, Y10, Y11
	VPADDD   Y11, Y6, Y6
	VPMADDWD Y9, Y10, Y12
	VPADDD   Y12, Y7, Y7

	ADDQ $16, SI
	LEAQ (BX)(DX*2), BX      // advance two B rows
	LEAQ (R10)(DX*2), R10
	DECQ CX
	JNZ  q4x16loop

q4x16done:
	VMOVDQU X0, (DI)         // row r: lo(Y2r)=cols 0-3, lo(Y2r+1)=cols 4-7,
	VMOVDQU X1, 16(DI)       // hi(Y2r)=cols 8-11, hi(Y2r+1)=cols 12-15
	VEXTRACTI128 $1, Y0, X13
	VMOVDQU X13, 32(DI)
	VEXTRACTI128 $1, Y1, X13
	VMOVDQU X13, 48(DI)
	ADDQ R9, DI
	VMOVDQU X2, (DI)
	VMOVDQU X3, 16(DI)
	VEXTRACTI128 $1, Y2, X13
	VMOVDQU X13, 32(DI)
	VEXTRACTI128 $1, Y3, X13
	VMOVDQU X13, 48(DI)
	ADDQ R9, DI
	VMOVDQU X4, (DI)
	VMOVDQU X5, 16(DI)
	VEXTRACTI128 $1, Y4, X13
	VMOVDQU X13, 32(DI)
	VEXTRACTI128 $1, Y5, X13
	VMOVDQU X13, 48(DI)
	ADDQ R9, DI
	VMOVDQU X6, (DI)
	VMOVDQU X7, 16(DI)
	VEXTRACTI128 $1, Y6, X13
	VMOVDQU X13, 32(DI)
	VEXTRACTI128 $1, Y7, X13
	VMOVDQU X13, 48(DI)
	VZEROUPPER
	RET

// func qkern4x8s(kk2 int, a *int16, b *int16, bn int, c *int32, cn int)
//
// SSE2 pmaddwd fallback: 4 output rows × 8 columns, same contract.
//   X0,X1: row 0 cols 0-3, 4-7    X4,X5: row 2
//   X2,X3: row 1                  X6,X7: row 3
TEXT ·qkern4x8s(SB), NOSPLIT, $0-48
	MOVQ kk2+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), BX
	MOVQ bn+24(FP), DX
	MOVQ c+32(FP), DI
	MOVQ cn+40(FP), R9
	SHLQ $1, DX              // B row stride in bytes (int16)
	SHLQ $2, R9              // C row stride in bytes (int32)
	LEAQ (BX)(DX*1), R10

	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORPS X4, X4
	XORPS X5, X5
	XORPS X6, X6
	XORPS X7, X7

	TESTQ CX, CX
	JLE   q4x8done

q4x8loop:
	MOVOU (BX), X13          // B[2p][j..j+7]
	MOVOU (R10), X14         // B[2p+1][j..j+7]
	MOVOU X13, X8
	PUNPCKLWL X14, X8        // tap pairs, cols 0-3
	MOVOU X13, X9
	PUNPCKHWL X14, X9        // tap pairs, cols 4-7

	MOVL   (SI), X10         // channel 0 tap pair
	PSHUFD $0x00, X10, X10
	MOVOU  X8, X11
	PMADDWL X10, X11
	PADDD  X11, X0
	MOVOU  X9, X11
	PMADDWL X10, X11
	PADDD  X11, X1

	MOVL   4(SI), X10        // channel 1
	PSHUFD $0x00, X10, X10
	MOVOU  X8, X11
	PMADDWL X10, X11
	PADDD  X11, X2
	MOVOU  X9, X11
	PMADDWL X10, X11
	PADDD  X11, X3

	MOVL   8(SI), X10        // channel 2
	PSHUFD $0x00, X10, X10
	MOVOU  X8, X11
	PMADDWL X10, X11
	PADDD  X11, X4
	MOVOU  X9, X11
	PMADDWL X10, X11
	PADDD  X11, X5

	MOVL   12(SI), X10       // channel 3
	PSHUFD $0x00, X10, X10
	MOVOU  X8, X11
	PMADDWL X10, X11
	PADDD  X11, X6
	MOVOU  X9, X11
	PMADDWL X10, X11
	PADDD  X11, X7

	ADDQ $16, SI
	LEAQ (BX)(DX*2), BX
	LEAQ (R10)(DX*2), R10
	DECQ CX
	JNZ  q4x8loop

q4x8done:
	MOVOU X0, (DI)
	MOVOU X1, 16(DI)
	ADDQ  R9, DI
	MOVOU X2, (DI)
	MOVOU X3, 16(DI)
	ADDQ  R9, DI
	MOVOU X4, (DI)
	MOVOU X5, 16(DI)
	ADDQ  R9, DI
	MOVOU X6, (DI)
	MOVOU X7, 16(DI)
	RET

// func qrequant(n8 int, acc *int32, m, bh float32, out *int16)
//
// SSE2 requant epilogue: out[i] = int16(trunc(clamp(acc[i]*m + bh, 0, 127)))
// for n8 (a positive multiple of 8) elements. bh carries bias + 0.5, so the
// truncation implements round-half-up; values stay in [0, 127] so the
// packssdw saturation never fires and the Go tail in requantReLU computes
// identical bits.
TEXT ·qrequant(SB), NOSPLIT, $0-32
	MOVQ n8+0(FP), CX
	MOVQ acc+8(FP), SI
	MOVSS m+16(FP), X5
	SHUFPS $0x00, X5, X5
	MOVSS bh+20(FP), X6
	SHUFPS $0x00, X6, X6
	MOVQ out+24(FP), DI
	XORPS X7, X7             // 0.0 ×4
	MOVL $0x42FE0000, AX     // 127.0f
	MOVL AX, X4
	SHUFPS $0x00, X4, X4

qreqloop:
	CVTPL2PS (SI), X0        // int32 → float32
	CVTPL2PS 16(SI), X1
	MULPS X5, X0
	ADDPS X6, X0
	MINPS X4, X0
	MAXPS X7, X0
	MULPS X5, X1
	ADDPS X6, X1
	MINPS X4, X1
	MAXPS X7, X1
	CVTTPS2PL X0, X0         // truncate toward zero
	CVTTPS2PL X1, X1
	PACKSSLW X1, X0          // 8 × int16
	MOVOU X0, (DI)
	ADDQ $32, SI
	ADDQ $16, DI
	SUBQ $8, CX
	JNZ  qreqloop
	RET

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
