package nn

import "sync/atomic"

// This file is the register-blocked GEMM heart of the kernel engine. A
// same-padded Conv2D forward is im2col + one GEMM per row block:
//
//	out[oc][p] = bias[oc] + Σ_kidx W[oc][kidx] · pack[kidx][p]
//
// with kidx ascending over the (ic, ky, kx) tap order. The micro-kernel
// computes a 4×8 tile of out with the k-sum of every element accumulated
// sequentially in ascending kidx — element-wise float32 mul/add only, no
// FMA — so each output element performs the same float32 operations in the
// same order as the scalar reference kernel and the result is bit-identical
// to convRef (differential tests pin this down). On amd64 the micro-kernel
// is SSE2 assembly (MULPS/ADDPS are lane-wise IEEE ops, so vectorizing
// across output elements does not change any element's rounding); other
// architectures use the pure-Go fallback in gemm_generic.go.
//
// The same micro-kernel computes the input gradient (as a conv of the
// output gradient with the tap-flipped, transposed weights), and kernDot4
// computes the weight gradient (dOut · packᵀ row blocks).

// refKernels routes Conv2D, ReLU, PixelShuffle and the trainer through the
// retained scalar reference path when set. It exists for the tracked
// kernel benchmarks (scripts/bench.sh measures GEMM vs scalar on the same
// binary) and for differential tests; production code never sets it.
var refKernels atomic.Bool

// SetRefKernels toggles the scalar reference path globally. Toggle only
// while no forward/backward is in flight (benchmarks and tests do this
// between runs).
func SetRefKernels(on bool) { refKernels.Store(on) }

// RefKernels reports whether the scalar reference path is active.
func RefKernels() bool { return refKernels.Load() }

// gemmConvBias computes c[oc][j] = bias[oc] + Σ_p a[oc*kk+p]*b[p*n+j] for
// oc < outC, j < n, with c rows cstride apart. apack is caller scratch of
// at least 4*kk elements (packed A tiles for the micro-kernel).
func gemmConvBias(a, bias, b []float32, outC, kk, n int, c []float32, cstride int, apack []float32) {
	m4 := outC &^ 3
	n8 := n &^ 7
	for oc := 0; oc < m4; oc += 4 {
		packA4(a, oc, kk, apack)
		if n8 > 0 {
			for j := 0; j < n8; j += 8 {
				kern4x8(kk, &apack[0], &b[j], n, &bias[oc], &c[oc*cstride+j], cstride)
			}
		}
		if n8 < n {
			gemmScalar(a, bias, b, oc, oc+4, kk, n8, n, c, cstride)
		}
	}
	for oc := m4; oc < outC; oc++ {
		if n8 > 0 {
			for j := 0; j < n8; j += 8 {
				kern1x8(kk, &a[oc*kk], &b[j], n, &bias[oc], &c[oc*cstride+j])
			}
		}
		if n8 < n {
			gemmScalar(a, bias, b, oc, oc+1, kk, n8, n, c, cstride)
		}
	}
}

// packA4 packs rows [oc, oc+4) of the kk-wide A matrix into dst as
// [kk][4], the layout kern4x8 broadcasts from.
func packA4(a []float32, oc, kk int, dst []float32) {
	a0 := a[oc*kk : (oc+1)*kk]
	a1 := a[(oc+1)*kk : (oc+2)*kk]
	a2 := a[(oc+2)*kk : (oc+3)*kk]
	a3 := a[(oc+3)*kk : (oc+4)*kk]
	d := dst[: 4*kk : 4*kk]
	for p := 0; p < kk; p++ {
		d[p*4] = a0[p]
		d[p*4+1] = a1[p]
		d[p*4+2] = a2[p]
		d[p*4+3] = a3[p]
	}
}

// gemmScalar is the edge path for rows [oc0, oc1) and columns [j0, n) of
// an n-column B: plain scalar accumulation in the same ascending-kidx
// order as the micro-kernel, so edges are bit-identical too.
func gemmScalar(a, bias, b []float32, oc0, oc1, kk, j0, n int, c []float32, cstride int) {
	for oc := oc0; oc < oc1; oc++ {
		arow := a[oc*kk : (oc+1)*kk]
		crow := c[oc*cstride:]
		bi := bias[oc]
		for j := j0; j < n; j++ {
			s := bi
			bp := j
			for p := 0; p < kk; p++ {
				s += arow[p] * b[bp]
				bp += n
			}
			crow[j] = s
		}
	}
}

// gemmDotRows computes out[r] = Σ_p g[p]*b[(r0+r)*bn+p] for r < rows
// (rows <= 4), the weight-gradient inner product of one output-channel
// gradient row against a block of im2col rows. The vectorized kernel
// splits the sum into four interleaved lane partials reduced in a fixed
// order; the scalar tail is added after, in index order. The grouping
// differs from a plain sequential sum (gradients carry a 1e-5-class
// tolerance, not bit-equality), but it is fixed by shape alone, so results
// are deterministic for any pool size and architecture.
func gemmDotRows(g, b []float32, bn, r0, rows int, out []float32) {
	n := len(g)
	n4 := n &^ 3
	r := 0
	for ; r+4 <= rows; r += 4 {
		if n4 > 0 {
			kernDot4(n4, &g[0], &b[(r0+r)*bn], bn, &out[r])
		} else {
			out[r], out[r+1], out[r+2], out[r+3] = 0, 0, 0, 0
		}
		for p := n4; p < n; p++ {
			gv := g[p]
			out[r] += gv * b[(r0+r)*bn+p]
			out[r+1] += gv * b[(r0+r+1)*bn+p]
			out[r+2] += gv * b[(r0+r+2)*bn+p]
			out[r+3] += gv * b[(r0+r+3)*bn+p]
		}
	}
	for ; r < rows; r++ {
		row := b[(r0+r)*bn : (r0+r)*bn+n]
		// Mirror the 4-lane split of the vector kernel so edge rows sum in
		// the same order as full groups.
		var l0, l1, l2, l3 float32
		for p := 0; p+4 <= n4; p += 4 {
			l0 += g[p] * row[p]
			l1 += g[p+1] * row[p+1]
			l2 += g[p+2] * row[p+2]
			l3 += g[p+3] * row[p+3]
		}
		s := (l0 + l2) + (l1 + l3)
		for p := n4; p < n; p++ {
			s += g[p] * row[p]
		}
		out[r] = s
	}
}
