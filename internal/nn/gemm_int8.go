package nn

// Int8 GEMM for the quantized inference fast path (see quant.go for the
// quantization scheme). The matrices are int8 values carried in int16
// containers: widening to int16 at quantization time costs one copy, and in
// exchange the micro-kernel is a pure PMADDWD pipeline — each pmaddwd
// multiplies eight int16 pairs and adds adjacent products into four int32
// lanes, so two taps per output element cost one instruction and the
// accumulation is exact integer arithmetic. Exact accumulation means every
// variant (AVX2, SSE2, generic Go) produces identical bits by construction;
// there is no float ordering contract to maintain, only correctness.
//
// Layouts:
//
//   - B is the im2colI16 panel: kkEven rows × n columns, row-major, the
//     same shifted-row copies as the f32 engine. Taps for a column pair
//     (2p, 2p+1) live n elements apart; the vector kernels interleave them
//     in-register (punpcklwd/punpckhwd) rather than paying a scattered
//     pack on the B side.
//   - A (weights) comes in two forms: wq is plain row-major int16
//     [outC][kkEven] for the scalar edges, and wqPack holds 4-row blocks
//     pre-interleaved as [kk2][4 channels][2 taps] so the kernel can
//     broadcast one channel's tap pair as a single 32-bit load.
//   - C is the int32 accumulator panel, outC rows × accStride columns.
//
// Overflow: a tap product is ≤ 127² and kkEven ≤ a few hundred for this
// model family, so the int32 accumulator has >2⁷ headroom; the int16
// intermediate of pmaddwd (pair sum ≤ 2·127² < 2¹⁵) never saturates.

// qkernTile, when non-nil, computes a 4-row × qkernTileCols-column C tile:
// qkernTile(kk2, a, b, bn, c, cn) with a = one wqPack block, b = the tile's
// first column in panel row 0, bn/cn = element strides of B and C. Set by
// the amd64 init (AVX2 4×16 or SSE2 4×8); nil elsewhere, routing everything
// through the scalar path.
var qkernTile func(kk2 int, a *int16, b *int16, bn int, c *int32, cn int)

// qkernTileCols is qkernTile's column tile width (0 when qkernTile is nil).
var qkernTileCols int

// gemmInt8Conv computes c[oc][j] = Σ_p wq[oc*kkEven+p]*b[p*n+j] for
// oc < outC, j < n, with c rows accStride apart. wqPack holds the
// pair-interleaved 4-row blocks for the first outC&^3 rows (may be empty
// when outC < 4). Bias and scale handling live in the float epilogue
// (requantReLU/dequantInto), not here: the accumulator is exact.
func gemmInt8Conv(wq, wqPack []int16, b []int16, outC, kkEvn, n int, c []int32, accStride int) {
	kk2 := kkEvn / 2
	m4 := outC &^ 3
	nv := 0
	if qkernTileCols > 0 {
		nv = n &^ (qkernTileCols - 1)
	}
	for oc := 0; oc < m4; oc += 4 {
		if nv > 0 {
			ap := wqPack[(oc/4)*kk2*8:]
			for j := 0; j < nv; j += qkernTileCols {
				qkernTile(kk2, &ap[0], &b[j], n, &c[oc*accStride+j], accStride)
			}
		}
		if nv < n {
			qgemmScalar(wq, b, oc, oc+4, kkEvn, nv, n, c, accStride)
		}
	}
	if m4 < outC {
		qgemmScalar(wq, b, m4, outC, kkEvn, 0, n, c, accStride)
	}
}

// qgemmScalar is the portable int8 GEMM path: rows [oc0, oc1), columns
// [j0, n). Integer accumulation is exact, so it is bit-identical to the
// vector kernels with no ordering care needed.
func qgemmScalar(wq []int16, b []int16, oc0, oc1, kkEvn, j0, n int, c []int32, accStride int) {
	for oc := oc0; oc < oc1; oc++ {
		arow := wq[oc*kkEvn : (oc+1)*kkEvn]
		crow := c[oc*accStride:]
		for j := j0; j < n; j++ {
			var s int32
			bp := j
			for p := 0; p < kkEvn; p++ {
				s += int32(arow[p]) * int32(b[bp])
				bp += n
			}
			crow[j] = s
		}
	}
}

// packWqBlocks interleaves the first outC&^3 rows of the kkEven-wide wq
// matrix into 4-row blocks laid out [kk2][4 channels][2 taps], the unit the
// vector kernels broadcast from as 32-bit tap pairs. Returns nil when no
// full 4-row block exists.
func packWqBlocks(wq []int16, outC, kkEvn int) []int16 {
	kk2 := kkEvn / 2
	nb := outC / 4
	if nb == 0 || kk2 == 0 {
		return nil
	}
	pack := make([]int16, nb*kk2*8)
	for bi := 0; bi < nb; bi++ {
		blk := pack[bi*kk2*8 : (bi+1)*kk2*8]
		for p2 := 0; p2 < kk2; p2++ {
			for r := 0; r < 4; r++ {
				blk[(p2*4+r)*2] = wq[(bi*4+r)*kkEvn+2*p2]
				blk[(p2*4+r)*2+1] = wq[(bi*4+r)*kkEvn+2*p2+1]
			}
		}
	}
	return pack
}

// requantReLU fuses the int8 epilogue of a hidden conv layer: dequantize
// the int32 accumulator with the per-channel multiplier m, add the folded
// bias, clamp to the next layer's quantized ReLU range [0, 127], truncate,
// and store as the next layer's int8-in-int16 activation. bh must be the
// folded bias PLUS 0.5 so the float clamp + truncation implements
// round-half-up without a separate add (quant.go precomputes it).
//
// The amd64 version vectorizes the body (cvtdq2ps/minps/maxps/cvttps2dq/
// packssdw); this Go tail/fallback performs the identical operations, and
// because min/max/truncate are exact in both forms the results match
// bit-for-bit.
//
//livenas:allow hot-loop-precision int32⇄float32 is the requant epilogue's defined operation, exact for |acc| < 2²⁴; it cannot be hoisted
func requantReLU(acc []int32, m, bh float32, out []int16) {
	i := 0
	if qrequantVec != nil {
		if n8 := len(acc) &^ 7; n8 > 0 {
			qrequantVec(n8, &acc[0], m, bh, &out[0])
			i = n8
		}
	}
	for ; i < len(acc); i++ {
		f := float32(acc[i])*m + bh
		f = min(f, 127)
		f = max(f, 0)
		out[i] = int16(int32(f))
	}
}

// qrequantVec, when non-nil, is the vectorized requantReLU body for a
// multiple-of-8 prefix (amd64: SSE2).
var qrequantVec func(n8 int, acc *int32, m, bh float32, out *int16)

// dequantInto converts the final conv layer's int32 accumulator back to
// float32 residuals: out[i] = acc[i]*m + b with the per-channel dequant
// scale m and the unquantized f32 bias b. The pixel-shuffle + residual-add
// epilogue consumes the result directly.
//
//livenas:allow hot-loop-precision int32→float32 is the dequant epilogue's defined operation, exact for |acc| < 2²⁴; it cannot be hoisted
func dequantInto(acc []int32, m, b float32, out []float32) {
	for i, v := range acc {
		out[i] = float32(v)*m + b
	}
}
