package nn

import "math"

// Adam implements the Adam optimiser (Kingma & Ba 2014), the optimiser the
// paper's online trainer uses with learning rate 1e-4 (§7).
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m [][]float32 // first-moment estimates, one slice per Param
	v [][]float32 // second-moment estimates
}

// NewAdam returns an Adam optimiser with the standard moment coefficients.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one update to every parameter using its accumulated gradient.
// params must be passed in a stable order across calls (moment state is
// positional). Gradients are not cleared; callers use ZeroGrads.
//
// The moment math deliberately runs in float64 (float32 moment estimates
// lose the small-gradient tail that makes Adam's bias correction work), so
// the per-element float32⇄float64 round trips stay.
//
//livenas:allow hot-loop-precision double-precision moment math is intentional
func (a *Adam) Step(params []Param) {
	if a.m == nil {
		a.m = make([][]float32, len(params))
		a.v = make([][]float32, len(params))
		for i, p := range params {
			a.m[i] = make([]float32, len(p.W))
			a.v[i] = make([]float32, len(p.W))
		}
	}
	if len(params) != len(a.m) {
		panic("nn: Adam parameter count changed between steps")
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	b1, b2 := a.Beta1, a.Beta2
	for i, p := range params {
		m, v := a.m[i], a.v[i]
		for j := range p.W {
			g := float64(p.Grad[j])
			mj := b1*float64(m[j]) + (1-b1)*g
			vj := b2*float64(v[j]) + (1-b2)*g*g
			m[j] = float32(mj)
			v[j] = float32(vj)
			mHat := mj / c1
			vHat := vj / c2
			p.W[j] -= float32(a.LR * mHat / (math.Sqrt(vHat) + a.Eps))
		}
	}
}

// CollectParams flattens the parameters of a layer stack in a stable order.
func CollectParams(layers []Layer) []Param {
	var out []Param
	for _, l := range layers {
		out = append(out, l.Params()...)
	}
	return out
}
