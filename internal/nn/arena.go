package nn

import (
	"sync"
	"sync/atomic"
)

// Arena is a free-list allocator for tensors and raw float32 scratch
// buffers. The SR hot path — model forward, trainer step, strip-split
// inference — allocates the same handful of shapes every frame and every
// minibatch; recycling them through an arena makes steady-state epochs and
// frames allocate (almost) nothing, which is where most of the seed
// implementation's wall-clock went.
//
// Ownership rules (see DESIGN.md "Kernel engine"):
//
//   - A tensor obtained from Get/GetBuf is owned by the caller until it is
//     handed back with Put/PutBuf. Handing it back transfers ownership to
//     the arena; the caller must not retain a reference past that point.
//   - Arena memory is NOT zeroed on Get. Every kernel in this package
//     writes its full output (GEMM conv, pixel-shuffle, MSE gradient), so
//     callers that need cleared memory must call Zero explicitly.
//   - Anything that must outlive a training step or an inference call
//     (weights, samples, returned frames) is allocated normally, never
//     from an arena.
//
// An Arena is safe for concurrent use; the per-model arenas are shared by
// that model's pool tasks and gradient contexts.
type Arena struct {
	mu      sync.Mutex
	tensors map[int][]*Tensor
	bufs    map[int][][]float32
	bufs16  map[int][][]int16
	bufs32  map[int][][]int32

	// hits/misses account free-list reuse vs fresh allocation across Get and
	// GetBuf. Plain atomics rather than telemetry handles: the arena sits on
	// the innermost hot path and must not depend on anything; internal/core
	// bridges these totals into the run's telemetry registry (ArenaStats →
	// nn_arena_* gauges and the train_epoch event).
	hits   atomic.Int64
	misses atomic.Int64
}

// Stats reports cumulative free-list hits (recycled tensors/buffers) and
// misses (fresh allocations) across Get and GetBuf.
func (a *Arena) Stats() (hits, misses int64) {
	if a == nil {
		return 0, 0
	}
	return a.hits.Load(), a.misses.Load()
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{
		tensors: map[int][]*Tensor{},
		bufs:    map[int][][]float32{},
		bufs16:  map[int][][]int16{},
		bufs32:  map[int][][]int32{},
	}
}

// Get returns a (c, h, w) tensor, reusing a retired one of the same element
// count when available. Contents are unspecified; see the zeroing rule above.
func (a *Arena) Get(c, h, w int) *Tensor {
	if a == nil {
		return NewTensor(c, h, w)
	}
	if t := a.popTensor(c * h * w); t != nil {
		t.C, t.H, t.W = c, h, w
		a.hits.Add(1)
		return t
	}
	a.misses.Add(1)
	return NewTensor(c, h, w)
}

func (a *Arena) popTensor(n int) *Tensor {
	a.mu.Lock()
	defer a.mu.Unlock()
	free := a.tensors[n]
	if len(free) == 0 {
		return nil
	}
	t := free[len(free)-1]
	a.tensors[n] = free[:len(free)-1]
	return t
}

// Put returns a tensor to the arena. nil tensors and nil arenas are no-ops,
// so release paths need no conditionals.
func (a *Arena) Put(t *Tensor) {
	if a == nil || t == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	n := len(t.Data)
	a.tensors[n] = append(a.tensors[n], t)
}

// GetBuf returns a float32 scratch buffer of exactly n elements with
// unspecified contents.
func (a *Arena) GetBuf(n int) []float32 {
	if a == nil {
		return make([]float32, n)
	}
	if b := a.popBuf(n); b != nil {
		a.hits.Add(1)
		return b
	}
	a.misses.Add(1)
	return make([]float32, n)
}

func (a *Arena) popBuf(n int) []float32 {
	a.mu.Lock()
	defer a.mu.Unlock()
	free := a.bufs[n]
	if len(free) == 0 {
		return nil
	}
	b := free[len(free)-1]
	a.bufs[n] = free[:len(free)-1]
	return b
}

// PutBuf returns a scratch buffer to the arena.
func (a *Arena) PutBuf(b []float32) {
	if a == nil || b == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.bufs[len(b)] = append(a.bufs[len(b)], b)
}

// GetBufI16 returns an int16 scratch buffer of exactly n elements with
// unspecified contents. The int8 inference path stores quantized
// activations and im2col panels in int8-in-int16 containers (see quant.go),
// so these share the arena's ownership rules with the float32 buffers.
func (a *Arena) GetBufI16(n int) []int16 {
	if a == nil {
		return make([]int16, n)
	}
	if b := a.popBufI16(n); b != nil {
		a.hits.Add(1)
		return b
	}
	a.misses.Add(1)
	return make([]int16, n)
}

func (a *Arena) popBufI16(n int) []int16 {
	a.mu.Lock()
	defer a.mu.Unlock()
	free := a.bufs16[n]
	if len(free) == 0 {
		return nil
	}
	b := free[len(free)-1]
	a.bufs16[n] = free[:len(free)-1]
	return b
}

// PutBufI16 returns an int16 scratch buffer to the arena.
func (a *Arena) PutBufI16(b []int16) {
	if a == nil || b == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.bufs16[len(b)] = append(a.bufs16[len(b)], b)
}

// GetBufI32 returns an int32 scratch buffer of exactly n elements with
// unspecified contents (GEMM accumulators for the int8 path).
func (a *Arena) GetBufI32(n int) []int32 {
	if a == nil {
		return make([]int32, n)
	}
	if b := a.popBufI32(n); b != nil {
		a.hits.Add(1)
		return b
	}
	a.misses.Add(1)
	return make([]int32, n)
}

func (a *Arena) popBufI32(n int) []int32 {
	a.mu.Lock()
	defer a.mu.Unlock()
	free := a.bufs32[n]
	if len(free) == 0 {
		return nil
	}
	b := free[len(free)-1]
	a.bufs32[n] = free[:len(free)-1]
	return b
}

// PutBufI32 returns an int32 scratch buffer to the arena.
func (a *Arena) PutBufI32(b []int32) {
	if a == nil || b == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.bufs32[len(b)] = append(a.bufs32[len(b)], b)
}
