//go:build amd64 && !purego

// SSE2 micro-kernels for the nn kernel engine. Element-wise MULPS/ADDPS
// only — no FMA — so every output element sees the same float32 rounding
// as the scalar reference (vector lanes are independent IEEE operations).
// SSE2 is part of the amd64 baseline, so no feature detection is needed.

#include "textflag.h"

// func kern4x8(kk int, a *float32, b *float32, bn int, bias *float32, c *float32, cn int)
//
// 4 output rows × 8 columns. Accumulators start at the broadcast bias and
// add one ascending-p term at a time:
//   X0,X1: row 0 cols 0-3, 4-7    X4,X5: row 2
//   X2,X3: row 1                  X6,X7: row 3
TEXT ·kern4x8(SB), NOSPLIT, $0-56
	MOVQ kk+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), BX
	MOVQ bn+24(FP), DX
	MOVQ bias+32(FP), R8
	MOVQ c+40(FP), DI
	MOVQ cn+48(FP), R9
	SHLQ $2, DX              // B row stride in bytes
	SHLQ $2, R9              // C row stride in bytes

	MOVSS  0(R8), X0
	SHUFPS $0x00, X0, X0
	MOVAPS X0, X1
	MOVSS  4(R8), X2
	SHUFPS $0x00, X2, X2
	MOVAPS X2, X3
	MOVSS  8(R8), X4
	SHUFPS $0x00, X4, X4
	MOVAPS X4, X5
	MOVSS  12(R8), X6
	SHUFPS $0x00, X6, X6
	MOVAPS X6, X7

	TESTQ CX, CX
	JLE   k4x8done

k4x8loop:
	MOVUPS 0(BX), X8         // B[p][0..3]
	MOVUPS 16(BX), X9        // B[p][4..7]
	MOVUPS 0(SI), X10        // packed A[p][0..3]

	MOVAPS X10, X11
	SHUFPS $0x00, X11, X11   // broadcast A[p][0]
	MOVAPS X11, X12
	MULPS  X8, X11
	ADDPS  X11, X0
	MULPS  X9, X12
	ADDPS  X12, X1

	MOVAPS X10, X11
	SHUFPS $0x55, X11, X11   // A[p][1]
	MOVAPS X11, X12
	MULPS  X8, X11
	ADDPS  X11, X2
	MULPS  X9, X12
	ADDPS  X12, X3

	MOVAPS X10, X11
	SHUFPS $0xAA, X11, X11   // A[p][2]
	MOVAPS X11, X12
	MULPS  X8, X11
	ADDPS  X11, X4
	MULPS  X9, X12
	ADDPS  X12, X5

	SHUFPS $0xFF, X10, X10   // A[p][3]
	MOVAPS X10, X12
	MULPS  X8, X10
	ADDPS  X10, X6
	MULPS  X9, X12
	ADDPS  X12, X7

	ADDQ $16, SI
	ADDQ DX, BX
	DECQ CX
	JNZ  k4x8loop

k4x8done:
	MOVUPS X0, 0(DI)
	MOVUPS X1, 16(DI)
	ADDQ   R9, DI
	MOVUPS X2, 0(DI)
	MOVUPS X3, 16(DI)
	ADDQ   R9, DI
	MOVUPS X4, 0(DI)
	MOVUPS X5, 16(DI)
	ADDQ   R9, DI
	MOVUPS X6, 0(DI)
	MOVUPS X7, 16(DI)
	RET

// func kern1x8(kk int, a *float32, b *float32, bn int, bias *float32, c *float32)
//
// Single output row × 8 columns, for the m-tail of gemmConvBias. Same
// ascending-p element-wise accumulation as kern4x8; a is the unpacked
// (contiguous) A row.
TEXT ·kern1x8(SB), NOSPLIT, $0-48
	MOVQ kk+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), BX
	MOVQ bn+24(FP), DX
	MOVQ bias+32(FP), R8
	MOVQ c+40(FP), DI
	SHLQ $2, DX              // B row stride in bytes

	MOVSS  0(R8), X0         // broadcast bias into both accumulators
	SHUFPS $0x00, X0, X0
	MOVAPS X0, X1

	TESTQ CX, CX
	JLE   k1x8done

k1x8loop:
	MOVSS  0(SI), X4         // broadcast a[p]
	SHUFPS $0x00, X4, X4
	MOVUPS 0(BX), X8         // B[p][0..3]
	MOVUPS 16(BX), X9        // B[p][4..7]
	MOVAPS X4, X5
	MULPS  X8, X4
	ADDPS  X4, X0
	MULPS  X9, X5
	ADDPS  X5, X1

	ADDQ $4, SI
	ADDQ DX, BX
	DECQ CX
	JNZ  k1x8loop

k1x8done:
	MOVUPS X0, 0(DI)
	MOVUPS X1, 16(DI)
	RET

// func kernDot4(n int, gv *float32, b *float32, bn int, out *float32)
//
// out[r] = Σ_{p<n} g[p]*b[r*bn+p], r in 0..3, n a multiple of 4. Four lane
// partials per row, reduced as (l0+l2)+(l1+l3) — gemmDotRows mirrors this
// order in its scalar fallback.
TEXT ·kernDot4(SB), NOSPLIT, $0-40
	MOVQ n+0(FP), CX
	MOVQ gv+8(FP), SI
	MOVQ b+16(FP), BX
	MOVQ bn+24(FP), DX
	MOVQ out+32(FP), DI
	SHLQ $2, DX              // row stride in bytes

	MOVQ BX, R10             // row pointers
	MOVQ BX, R11
	ADDQ DX, R11
	MOVQ R11, R12
	ADDQ DX, R12
	MOVQ R12, R13
	ADDQ DX, R13

	XORPS X0, X0             // lane accumulators per row
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3

	SHRQ  $2, CX             // n/4 vector steps
	TESTQ CX, CX
	JLE   dot4done

dot4loop:
	MOVUPS 0(SI), X4         // g[p..p+3]

	MOVUPS 0(R10), X5
	MULPS  X4, X5
	ADDPS  X5, X0
	MOVUPS 0(R11), X5
	MULPS  X4, X5
	ADDPS  X5, X1
	MOVUPS 0(R12), X5
	MULPS  X4, X5
	ADDPS  X5, X2
	MOVUPS 0(R13), X5
	MULPS  X4, X5
	ADDPS  X5, X3

	ADDQ $16, SI
	ADDQ $16, R10
	ADDQ $16, R11
	ADDQ $16, R12
	ADDQ $16, R13
	DECQ CX
	JNZ  dot4loop

dot4done:
	// Reduce each accumulator as (l0+l2)+(l1+l3).
	MOVHLPS X0, X5           // X5[0,1] = X0[2,3]
	ADDPS   X0, X5           // [l0+l2, l1+l3, ...]
	MOVAPS  X5, X6
	SHUFPS  $0x55, X6, X6
	ADDSS   X6, X5
	MOVSS   X5, 0(DI)

	MOVHLPS X1, X5
	ADDPS   X1, X5
	MOVAPS  X5, X6
	SHUFPS  $0x55, X6, X6
	ADDSS   X6, X5
	MOVSS   X5, 4(DI)

	MOVHLPS X2, X5
	ADDPS   X2, X5
	MOVAPS  X5, X6
	SHUFPS  $0x55, X6, X6
	ADDSS   X6, X5
	MOVSS   X5, 8(DI)

	MOVHLPS X3, X5
	ADDPS   X3, X5
	MOVAPS  X5, X6
	SHUFPS  $0x55, X6, X6
	ADDSS   X6, X5
	MOVSS   X5, 12(DI)
	RET
