package nn

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is the shared kernel worker pool. Conv row-block GEMM, the trainer's
// per-sample gradient computation, and any other data-parallel kernel stage
// submit index ranges to it instead of spawning goroutines ad hoc, so total
// kernel concurrency stays bounded by the pool size regardless of how many
// models, shards, or inference strips are active at once.
//
// The pool is deadlock-free under nesting by construction: Run is a
// caller-helps fork-join. The submitting goroutine executes tasks itself
// until the index space is drained, so a Run nested inside a pool task (a
// per-sample gradient task whose conv calls Run for its row blocks) always
// makes progress even when every worker is busy.
//
// Determinism note: the pool only affects *which goroutine* executes a task,
// never how work is partitioned. Kernels partition work by fixed, shape-
// derived block boundaries and fold any partial results in fixed index
// order, so results are bit-for-bit identical for any pool size, including
// the inline size-1 pool.
type Pool struct {
	size    int
	jobs    chan *poolJob
	workers sync.WaitGroup
}

type poolJob struct {
	fn   func(int)
	n    int64
	next atomic.Int64
	wg   sync.WaitGroup
}

// run drains the job's remaining indices, executing tasks until none are
// left. It is called by workers and by the submitting goroutine alike.
func (j *poolJob) run() {
	for {
		i := j.next.Add(1) - 1
		if i >= j.n {
			return
		}
		j.fn(int(i))
		j.wg.Done()
	}
}

// NewPool creates a pool with the given number of workers. Sizes <= 1 yield
// an inline pool: Run executes every task on the calling goroutine.
func NewPool(workers int) *Pool {
	p := &Pool{size: workers}
	if workers <= 1 {
		return p
	}
	p.jobs = make(chan *poolJob, 4*workers)
	p.workers.Add(workers)
	for i := 0; i < workers; i++ {
		// Workers live for the pool's lifetime, not NewPool's: they exit
		// when Close drains the job channel and joins p.workers there.
		//livenas:allow goroutine-leak joined by Pool.Close via p.workers, not by NewPool
		go func() {
			defer p.workers.Done()
			for j := range p.jobs {
				j.run()
			}
		}()
	}
	return p
}

// Close shuts the pool down: no Run may be in flight or started afterwards.
// It closes the job channel and joins every worker, so tests and bounded
// pipelines can prove no goroutine outlives the pool. Closing a nil or
// inline pool is a no-op; the process-wide SharedPool is never closed.
//
//livenas:allow context-propagation bounded wait: close(p.jobs) precedes the join, every worker exits its range loop once the channel drains, so Wait is bounded by in-flight kernel work
func (p *Pool) Close() {
	if p == nil || p.jobs == nil {
		return
	}
	close(p.jobs)
	p.workers.Wait()
}

// Size reports the worker count the pool was created with.
func (p *Pool) Size() int {
	if p == nil {
		return 1
	}
	return p.size
}

// Run executes fn(0..n-1), potentially in parallel across the pool's
// workers, and returns when all n calls have completed. The caller
// participates, so Run may be invoked from inside a pool task. A nil pool
// runs everything inline.
//
//livenas:allow context-propagation bounded wait: the caller participates via j.run and every task is finite CPU kernel work, so j.wg drains without external signals
func (p *Pool) Run(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if p == nil || p.size <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	j := &poolJob{fn: fn, n: int64(n)}
	j.wg.Add(n)
	// Wake at most n-1 workers; if the queue is full they are all busy and
	// the caller simply does more of the work itself.
	wake := p.size
	if wake > n-1 {
		wake = n - 1
	}
wake:
	for i := 0; i < wake; i++ {
		select {
		case p.jobs <- j:
		default:
			break wake // queue full: every worker is busy
		}
	}
	j.run()
	j.wg.Wait()
}

var (
	sharedPoolOnce sync.Once
	sharedPool     *Pool
)

// SharedPool returns the process-wide kernel pool, sized to GOMAXPROCS at
// first use. Models created with NewModel-style constructors default to it.
func SharedPool() *Pool {
	sharedPoolOnce.Do(func() {
		sharedPool = NewPool(runtime.GOMAXPROCS(0))
	})
	return sharedPool
}
