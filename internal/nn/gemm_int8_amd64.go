//go:build amd64 && !purego

package nn

// qkern4x16 is the AVX2 int8 micro-kernel: a 4-row × 16-column int32 C tile
// accumulated over kk2 tap pairs with vpmaddwd. a points at one wqPack
// block ([kk2][4][2] int16), b at the tile's first column of panel row 0
// (rows bn int16 elements apart), c at the tile's first element (rows cn
// int32 elements apart). Requires AVX2; call only when cpuHasAVX2.
//
//go:noescape
func qkern4x16(kk2 int, a *int16, b *int16, bn int, c *int32, cn int)

// qkern4x8s is the SSE2 pmaddwd fallback micro-kernel: 4 rows × 8 columns,
// same contract as qkern4x16. Runs on any amd64.
//
//go:noescape
func qkern4x8s(kk2 int, a *int16, b *int16, bn int, c *int32, cn int)

// qrequant is the SSE2 requantReLU body for a multiple-of-8 element count:
// out[i] = int16(trunc(clamp(acc[i]*m + bh, 0, 127))).
//
//go:noescape
func qrequant(n8 int, acc *int32, m, bh float32, out *int16)

// cpuid executes CPUID with the given leaf/subleaf.
//
//livenas:allow asm-abi privileged-instruction wrapper for amd64 feature detection; no pure-Go equivalent exists and no other build can reach it
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0 (requires OSXSAVE, checked by the caller).
//
//livenas:allow asm-abi privileged-instruction wrapper for amd64 feature detection; no pure-Go equivalent exists and no other build can reach it
func xgetbv0() (eax, edx uint32)

// cpuHasAVX2 reports AVX2 usable: CPU support plus OS-enabled YMM state
// (OSXSAVE set, XCR0 XMM|YMM bits). Checked once at init; the choice is a
// pure hardware property, so kernel selection cannot introduce
// nondeterminism — all int8 kernels are exact integer/clamped-float paths
// with identical results.
var cpuHasAVX2 = func() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	xlo, _ := xgetbv0()
	if xlo&6 != 6 { // XMM and YMM state must both be OS-managed
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}()

func init() {
	if cpuHasAVX2 {
		qkernTile, qkernTileCols = qkern4x16, 16
	} else {
		qkernTile, qkernTileCols = qkern4x8s, 8
	}
	qrequantVec = qrequant
}
