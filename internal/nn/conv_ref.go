package nn

// Scalar reference convolution kernels. This is the seed implementation's
// nested tap loop, retained verbatim as the ground truth the GEMM engine is
// differentially tested against (kernel_test.go asserts the GEMM forward is
// bit-identical and gradients agree to 1e-5) and as the baseline side of
// the tracked kernel benchmarks (scripts/bench.sh).
//
// One deliberate change from the seed: the forward's `if wv == 0
// { continue }` tap skip is gone. It made compute cost data-dependent —
// zero-initialised final layers trained "for free" until their weights
// moved — which skewed calibration against sr.Device's virtual clock,
// whose charges are by nominal MACs. Both paths now always perform the
// nominal MAC count. (Adding a wv==0 tap contributes wv*x == ±0, which
// cannot change any sum, so removing the skip does not change results.)

// convRefForward computes the convolution of x into out (both preallocated,
// out fully overwritten) with the scalar tap loop.
func convRefForward(l *Conv2D, x, out *Tensor) {
	h, w := x.H, x.W
	pad := l.K / 2
	for oc := 0; oc < l.OutC; oc++ {
		bias := l.Bias[oc]
		dst := out.Data[oc*h*w : (oc+1)*h*w]
		for i := range dst {
			dst[i] = bias
		}
		for ic := 0; ic < l.InC; ic++ {
			src := x.Data[ic*h*w : (ic+1)*h*w]
			wbase := ((oc*l.InC + ic) * l.K) * l.K
			for ky := 0; ky < l.K; ky++ {
				dy := ky - pad
				for kx := 0; kx < l.K; kx++ {
					dx := kx - pad
					wv := l.Weight[wbase+ky*l.K+kx]
					// Valid overlap rows/cols for this kernel tap.
					y0, y1 := max(0, -dy), min(h, h-dy)
					x0, x1 := max(0, -dx), min(w, w-dx)
					for y := y0; y < y1; y++ {
						srow := src[(y+dy)*w:]
						drow := dst[y*w:]
						for xx := x0; xx < x1; xx++ {
							drow[xx] += wv * srow[xx+dx]
						}
					}
				}
			}
		}
	}
}

// convRefBackward accumulates parameter gradients into gradW/gradB and
// writes the input gradient into dIn (preallocated and zeroed) with the
// scalar tap loop.
func convRefBackward(l *Conv2D, x, dOut, dIn *Tensor) {
	h, w := x.H, x.W
	pad := l.K / 2
	for oc := 0; oc < l.OutC; oc++ {
		g := dOut.Data[oc*h*w : (oc+1)*h*w]
		// Bias gradient.
		var gb float32
		for _, v := range g {
			gb += v
		}
		l.gradB[oc] += gb
		for ic := 0; ic < l.InC; ic++ {
			src := x.Data[ic*h*w : (ic+1)*h*w]
			din := dIn.Data[ic*h*w : (ic+1)*h*w]
			wbase := ((oc*l.InC + ic) * l.K) * l.K
			for ky := 0; ky < l.K; ky++ {
				dy := ky - pad
				for kx := 0; kx < l.K; kx++ {
					dx := kx - pad
					y0, y1 := max(0, -dy), min(h, h-dy)
					x0, x1 := max(0, -dx), min(w, w-dx)
					var gw float32
					wv := l.Weight[wbase+ky*l.K+kx]
					for y := y0; y < y1; y++ {
						srow := src[(y+dy)*w:]
						drow := din[(y+dy)*w:]
						grow := g[y*w:]
						for xx := x0; xx < x1; xx++ {
							gv := grow[xx]
							gw += gv * srow[xx+dx]
							drow[xx+dx] += gv * wv
						}
					}
					l.gradW[wbase+ky*l.K+kx] += gw
				}
			}
		}
	}
}
