//go:build !amd64 || purego

package nn

import "unsafe"

// Pure-Go fallbacks for the SSE2 micro-kernels. Semantics match the
// assembly exactly: per-element ascending-p accumulation in kern4x8 (so
// the GEMM conv stays bit-identical to convRef on every architecture) and
// the (l0+l2)+(l1+l3) lane reduction in kernDot4.

func kern4x8(kk int, a *float32, b *float32, bn int, bias *float32, c *float32, cn int) {
	as := unsafe.Slice(a, kk*4)
	bs := unsafe.Slice(b, (kk-1)*bn+8)
	bi := unsafe.Slice(bias, 4)
	cs := unsafe.Slice(c, 3*cn+8)
	for r := 0; r < 4; r++ {
		for j := 0; j < 8; j++ {
			s := bi[r]
			for p := 0; p < kk; p++ {
				s += as[p*4+r] * bs[p*bn+j]
			}
			cs[r*cn+j] = s
		}
	}
}

func kern1x8(kk int, a *float32, b *float32, bn int, bias *float32, c *float32) {
	as := unsafe.Slice(a, kk)
	bs := unsafe.Slice(b, (kk-1)*bn+8)
	cs := unsafe.Slice(c, 8)
	for j := 0; j < 8; j++ {
		s := *bias
		for p := 0; p < kk; p++ {
			s += as[p] * bs[p*bn+j]
		}
		cs[j] = s
	}
}

func kernDot4(n int, gv *float32, b *float32, bn int, out *float32) {
	gs := unsafe.Slice(gv, n)
	bs := unsafe.Slice(b, 3*bn+n)
	os := unsafe.Slice(out, 4)
	for r := 0; r < 4; r++ {
		row := bs[r*bn : r*bn+n]
		var l0, l1, l2, l3 float32
		for p := 0; p+4 <= n; p += 4 {
			l0 += gs[p] * row[p]
			l1 += gs[p+1] * row[p+1]
			l2 += gs[p+2] * row[p+2]
			l3 += gs[p+3] * row[p+3]
		}
		os[r] = (l0 + l2) + (l1 + l3)
	}
}
