//go:build amd64 && !purego

package nn

import (
	"math/rand"
	"testing"
)

// TestQuantKernelVariantsMatch runs the full driver under each available
// asm tile kernel (AVX2 4x16 where the CPU has it, SSE2 4x8 always) and
// pins bit-identical accumulators against the scalar path — the hardware
// dispatch must never change results.
func TestQuantKernelVariantsMatch(t *testing.T) {
	type variant struct {
		name string
		fn   func(kk2 int, a *int16, b *int16, bn int, c *int32, cn int)
		cols int
	}
	variants := []variant{{"sse2_4x8", qkern4x8s, 8}}
	if cpuHasAVX2 {
		variants = append(variants, variant{"avx2_4x16", qkern4x16, 16})
	} else {
		t.Log("no AVX2 on this host; testing SSE2 kernel only")
	}

	savedK, savedC := qkernTile, qkernTileCols
	defer func() { qkernTile, qkernTileCols = savedK, savedC }()

	rng := rand.New(rand.NewSource(21))
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			for trial := 0; trial < 30; trial++ {
				outC := 1 + rng.Intn(12)
				kk := 1 + rng.Intn(90)
				ke := kk + kk&1
				n := 1 + rng.Intn(90)
				wq := randI8(outC*ke, rng)
				if kk&1 == 1 {
					for oc := 0; oc < outC; oc++ {
						wq[oc*ke+kk] = 0
					}
				}
				b := randI8(ke*n, rng)
				want := runScalarOnly(wq, b, outC, ke, n)

				qkernTile, qkernTileCols = v.fn, v.cols
				acc := make([]int32, outC*n)
				gemmInt8Conv(wq, packWqBlocks(wq, outC, ke), b, outC, ke, n, acc, n)
				for i := range want {
					if acc[i] != want[i] {
						t.Fatalf("trial %d (outC=%d kk=%d n=%d): acc[%d] = %d, scalar %d",
							trial, outC, kk, n, i, acc[i], want[i])
					}
				}
			}
		})
	}
}
