package nn

import (
	"math"
	"math/rand"
)

// KernelConfigurable is implemented by layers that run on the kernel engine
// (arena-recycled tensors, pooled row-block parallelism). Model owners call
// SetKernelContext once at construction; layers with a nil arena/pool fall
// back to plain allocation and inline execution.
type KernelConfigurable interface {
	SetKernelContext(a *Arena, p *Pool)
}

// ConfigureKernels applies an arena/pool pair to every layer that supports
// the kernel engine.
func ConfigureKernels(layers []Layer, a *Arena, p *Pool) {
	for _, l := range layers {
		if kc, ok := l.(KernelConfigurable); ok {
			kc.SetKernelContext(a, p)
		}
	}
}

// Conv2D is a 2-D convolution with odd square kernels, stride 1 and "same"
// zero padding. Weight layout: [outC][inC][K][K].
//
// The forward/backward hot path is im2col + register-blocked GEMM (gemm.go,
// im2col.go), row-blocked so the packed panel stays cache-resident and
// parallelized across blocks on the kernel pool. The scalar reference path
// (conv_ref.go) remains selectable via SetRefKernels for differential tests
// and as the tracked benchmark baseline; the GEMM forward is bit-identical
// to it by construction.
type Conv2D struct {
	InC, OutC, K int
	Weight       []float32
	Bias         []float32
	gradW        []float32
	gradB        []float32
	params       []Param // cached Params() result; built at construction
	lastIn       *Tensor
	arena        *Arena
	pool         *Pool

	// fwdTask/bwdTask are the block workers submitted to pool.Run. They are
	// bound once (method values allocate a closure) in SetKernelContext so
	// the steady-state hot path allocates nothing; per-call state travels
	// through the run struct, valid only while forwardGEMM/backwardGEMM is
	// on the stack. A Conv2D instance runs one pass at a time (lastIn
	// already implies this); parallel samples use CloneShared instances.
	fwdTask func(int)
	bwdTask func(int)
	run     struct {
		x, out, dOut, dIn *Tensor
		br                int
		a2, zb, partial   []float32
	}
}

// NewConv2D creates a convolution with He-normal initialised weights.
func NewConv2D(inC, outC, k int, rng *rand.Rand) *Conv2D {
	if k%2 == 0 {
		panic("nn: Conv2D kernel must be odd")
	}
	l := &Conv2D{
		InC: inC, OutC: outC, K: k,
		Weight: make([]float32, outC*inC*k*k),
		Bias:   make([]float32, outC),
		gradW:  make([]float32, outC*inC*k*k),
		gradB:  make([]float32, outC),
	}
	std := math.Sqrt(2.0 / float64(inC*k*k))
	for i := range l.Weight {
		l.Weight[i] = float32(rng.NormFloat64() * std) //livenas:allow hot-loop-precision one-time He init, not a hot path
	}
	l.params = []Param{{W: l.Weight, Grad: l.gradW}, {W: l.Bias, Grad: l.gradB}}
	l.SetKernelContext(nil, nil) // nil-safe defaults: inline pool, allocating arena
	return l
}

// ZeroInit zeroes weights and biases; used for the final layer of residual
// SR networks so the initial network output equals the bilinear skip.
func (l *Conv2D) ZeroInit() {
	for i := range l.Weight {
		l.Weight[i] = 0
	}
	for i := range l.Bias {
		l.Bias[i] = 0
	}
}

// SetKernelContext implements KernelConfigurable.
func (l *Conv2D) SetKernelContext(a *Arena, p *Pool) {
	l.arena, l.pool = a, p
	l.fwdTask = l.forwardBlock
	l.bwdTask = l.backwardBlock
}

// CloneShared returns a Conv2D sharing this layer's weight and bias slices
// (live, not snapshotted) but owning private gradient accumulators and
// input cache. The trainer builds one such clone chain per minibatch sample
// so sample gradients can be computed in parallel and then folded in fixed
// sample order. The clone shares the arena (mutex-protected) and pool.
func (l *Conv2D) CloneShared() *Conv2D {
	c := &Conv2D{
		InC: l.InC, OutC: l.OutC, K: l.K,
		Weight: l.Weight, Bias: l.Bias,
		gradW: make([]float32, len(l.gradW)),
		gradB: make([]float32, len(l.gradB)),
	}
	c.params = []Param{{W: c.Weight, Grad: c.gradW}, {W: c.Bias, Grad: c.gradB}}
	c.SetKernelContext(l.arena, l.pool)
	return c
}

// Params implements Layer. The returned slice is cached and shared; callers
// read and write the gradient contents but must not reslice it.
func (l *Conv2D) Params() []Param { return l.params }

// Forward implements Layer.
func (l *Conv2D) Forward(x *Tensor) *Tensor {
	if x.C != l.InC {
		panic("nn: Conv2D input channel mismatch")
	}
	l.lastIn = x
	if RefKernels() {
		// The reference path allocates per call, like the seed
		// implementation it benchmarks as.
		out := NewTensor(l.OutC, x.H, x.W)
		convRefForward(l, x, out)
		return out
	}
	out := l.arena.Get(l.OutC, x.H, x.W)
	l.forwardGEMM(x, out)
	return out
}

// forwardGEMM computes the convolution block-by-block: each row block is
// im2col-packed and multiplied against the weight matrix. Block boundaries
// come from convBlockRows (shape-derived), so the partition — and with it
// the result — is independent of pool size.
func (l *Conv2D) forwardGEMM(x, out *Tensor) {
	l.run.x, l.run.out = x, out
	l.run.br = convBlockRows(x.W, x.H)
	nb := (x.H + l.run.br - 1) / l.run.br
	l.pool.Run(nb, l.fwdTask)
	l.run.x, l.run.out = nil, nil
}

// forwardBlock is the pooled per-block worker for forwardGEMM.
func (l *Conv2D) forwardBlock(bi int) {
	x, out := l.run.x, l.run.out
	h, w := x.H, x.W
	kk := l.InC * l.K * l.K
	y0 := bi * l.run.br
	y1 := min(y0+l.run.br, h)
	n := (y1 - y0) * w
	pack := l.arena.GetBuf(kk * n)
	apack := l.arena.GetBuf(4 * kk)
	im2col(x.Data, l.InC, h, w, l.K, y0, y1, false, pack)
	gemmConvBias(l.Weight, l.Bias, pack, l.OutC, kk, n, out.Data[y0*w:], h*w, apack)
	l.arena.PutBuf(apack)
	l.arena.PutBuf(pack)
}

// Backward implements Layer.
func (l *Conv2D) Backward(dOut *Tensor) *Tensor {
	x := l.lastIn
	if RefKernels() {
		dIn := NewTensor(l.InC, x.H, x.W) // zeroed: ref path accumulates
		convRefBackward(l, x, dOut, dIn)
		return dIn
	}
	dIn := l.arena.Get(l.InC, x.H, x.W)
	l.backwardGEMM(x, dOut, dIn)
	return dIn
}

// backwardGEMM computes all three gradients with the same block structure
// as the forward:
//
//   - dIn is a convolution of dOut with the tap-flipped, transposed weight
//     matrix (im2col with flip=true), so it reuses the bit-exact forward
//     micro-kernel unchanged.
//   - gradW accumulates per-block partials dOut·packᵀ (kernDot4), written
//     to disjoint per-block buffers by the pool tasks and folded into the
//     gradient accumulator in ascending block order afterwards — the fold
//     order is fixed by shape, so gradients are deterministic for any pool
//     size.
//   - gradB is a cheap sequential per-channel reduction of dOut, summed in
//     the same order as the scalar reference.
func (l *Conv2D) backwardGEMM(x, dOut, dIn *Tensor) {
	h, w := x.H, x.W
	k := l.K
	kk := l.InC * k * k
	kk2 := l.OutC * k * k
	br := convBlockRows(w, h)
	nb := (h + br - 1) / br

	// Transposed, per-output-channel weight matrix for the input gradient:
	// a2[ic][(oc*K+ky)*K+kx] = Weight[oc][ic][ky][kx]. The tap flip lives in
	// the im2col sampling, not here.
	a2 := l.arena.GetBuf(l.InC * kk2)
	for ic := 0; ic < l.InC; ic++ {
		for oc := 0; oc < l.OutC; oc++ {
			src := l.Weight[((oc*l.InC+ic)*k)*k : ((oc*l.InC+ic)*k+k)*k]
			copy(a2[ic*kk2+oc*k*k:ic*kk2+(oc+1)*k*k], src)
		}
	}
	zb := l.arena.GetBuf(l.InC)
	for i := range zb {
		zb[i] = 0
	}
	partial := l.arena.GetBuf(nb * l.OutC * kk)

	l.run.x, l.run.dOut, l.run.dIn = x, dOut, dIn
	l.run.br, l.run.a2, l.run.zb, l.run.partial = br, a2, zb, partial
	l.pool.Run(nb, l.bwdTask)
	l.run.x, l.run.dOut, l.run.dIn = nil, nil, nil
	l.run.a2, l.run.zb, l.run.partial = nil, nil, nil

	for bi := 0; bi < nb; bi++ {
		part := partial[bi*l.OutC*kk : (bi+1)*l.OutC*kk]
		for i, v := range part {
			l.gradW[i] += v
		}
	}
	l.arena.PutBuf(partial)
	l.arena.PutBuf(zb)
	l.arena.PutBuf(a2)

	for oc := 0; oc < l.OutC; oc++ {
		var gb float32
		for _, v := range dOut.Data[oc*h*w : (oc+1)*h*w] {
			gb += v
		}
		l.gradB[oc] += gb
	}
}

// backwardBlock is the pooled per-block worker for backwardGEMM.
func (l *Conv2D) backwardBlock(bi int) {
	x, dOut, dIn := l.run.x, l.run.dOut, l.run.dIn
	h, w := x.H, x.W
	k := l.K
	kk := l.InC * k * k
	kk2 := l.OutC * k * k
	y0 := bi * l.run.br
	y1 := min(y0+l.run.br, h)
	n := (y1 - y0) * w

	// Weight-gradient partial for this block: part[oc][kidx] =
	// Σ_p dOut[oc][block p] * pack[kidx][p].
	pack := l.arena.GetBuf(kk * n)
	im2col(x.Data, l.InC, h, w, k, y0, y1, false, pack)
	part := l.run.partial[bi*l.OutC*kk : (bi+1)*l.OutC*kk]
	for oc := 0; oc < l.OutC; oc++ {
		gv := dOut.Data[oc*h*w+y0*w : oc*h*w+y0*w+n]
		for r := 0; r < kk; r += 4 {
			gemmDotRows(gv, pack, n, r, min(4, kk-r), part[oc*kk+r:])
		}
	}
	l.arena.PutBuf(pack)

	// Input-gradient block: conv of dOut with flipped transposed taps.
	pack2 := l.arena.GetBuf(kk2 * n)
	apack := l.arena.GetBuf(4 * kk2)
	im2col(dOut.Data, l.OutC, h, w, k, y0, y1, true, pack2)
	gemmConvBias(l.run.a2, l.run.zb, pack2, l.InC, kk2, n, dIn.Data[y0*w:], h*w, apack)
	l.arena.PutBuf(apack)
	l.arena.PutBuf(pack2)
}

// ReLU is the rectified-linear activation. The hot path is fully in place:
// Forward zeroes negatives directly in its input tensor and records the
// sign pattern in a packed bitset; Backward masks the incoming gradient in
// place. Neither direction allocates in steady state.
type ReLU struct {
	bits []uint64
	mask []bool // scalar reference path only
}

// Params implements Layer.
func (r *ReLU) Params() []Param { return nil }

// SetKernelContext implements KernelConfigurable. ReLU operates in place,
// so it only exists to satisfy the interface uniformly.
func (r *ReLU) SetKernelContext(a *Arena, p *Pool) {}

// CloneShared returns a fresh ReLU for a per-sample gradient context.
func (r *ReLU) CloneShared() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x *Tensor) *Tensor {
	if RefKernels() {
		return r.forwardRef(x)
	}
	nb := (len(x.Data) + 63) / 64
	if cap(r.bits) < nb {
		r.bits = make([]uint64, nb)
	}
	r.bits = r.bits[:nb]
	for i := range r.bits {
		r.bits[i] = 0
	}
	for i, v := range x.Data {
		if v > 0 {
			r.bits[i>>6] |= 1 << (i & 63)
		} else {
			x.Data[i] = 0
		}
	}
	return x
}

// forwardRef is the seed implementation: clone the input and keep a []bool
// mask. Retained as the benchmark baseline behind SetRefKernels.
func (r *ReLU) forwardRef(x *Tensor) *Tensor {
	out := x.Clone()
	if cap(r.mask) < len(x.Data) {
		r.mask = make([]bool, len(x.Data))
	}
	r.mask = r.mask[:len(x.Data)]
	for i, v := range out.Data {
		if v <= 0 {
			out.Data[i] = 0
			r.mask[i] = false
		} else {
			r.mask[i] = true
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(dOut *Tensor) *Tensor {
	if RefKernels() {
		dIn := dOut.Clone()
		for i := range dIn.Data {
			if !r.mask[i] {
				dIn.Data[i] = 0
			}
		}
		return dIn
	}
	for i := range dOut.Data {
		if r.bits[i>>6]&(1<<(i&63)) == 0 {
			dOut.Data[i] = 0
		}
	}
	return dOut
}

// PixelShuffle rearranges a (C*s², H, W) tensor into (C, H*s, W*s): the
// sub-pixel upsampling of ESPCN (Shi et al. 2016), which the paper's SR
// model family uses to upscale at the network's tail. Both directions move
// whole rows with stride-s slice writes instead of per-element At/Set
// index arithmetic.
type PixelShuffle struct {
	S     int
	arena *Arena
}

// Params implements Layer.
func (p *PixelShuffle) Params() []Param { return nil }

// SetKernelContext implements KernelConfigurable.
func (p *PixelShuffle) SetKernelContext(a *Arena, pl *Pool) { p.arena = a }

// CloneShared returns a PixelShuffle for a per-sample gradient context.
func (p *PixelShuffle) CloneShared() *PixelShuffle {
	return &PixelShuffle{S: p.S, arena: p.arena}
}

// Forward implements Layer.
func (p *PixelShuffle) Forward(x *Tensor) *Tensor {
	s := p.S
	if x.C%(s*s) != 0 {
		panic("nn: PixelShuffle channel count not divisible by s²")
	}
	outC := x.C / (s * s)
	if RefKernels() {
		return p.forwardRef(x, outC)
	}
	out := p.arena.Get(outC, x.H*s, x.W*s)
	for oc := 0; oc < outC; oc++ {
		for sy := 0; sy < s; sy++ {
			for sx := 0; sx < s; sx++ {
				ic := oc*s*s + sy*s + sx
				for y := 0; y < x.H; y++ {
					src := x.Data[(ic*x.H+y)*x.W : (ic*x.H+y)*x.W+x.W]
					drow := out.Data[(oc*out.H+y*s+sy)*out.W+sx:]
					for i, v := range src {
						drow[i*s] = v
					}
				}
			}
		}
	}
	return out
}

// forwardRef is the seed implementation's per-element At/Set loop, retained
// as the benchmark baseline behind SetRefKernels.
func (p *PixelShuffle) forwardRef(x *Tensor, outC int) *Tensor {
	s := p.S
	out := NewTensor(outC, x.H*s, x.W*s)
	for oc := 0; oc < outC; oc++ {
		for sy := 0; sy < s; sy++ {
			for sx := 0; sx < s; sx++ {
				ic := oc*s*s + sy*s + sx
				for y := 0; y < x.H; y++ {
					for xx := 0; xx < x.W; xx++ {
						out.Set(oc, y*s+sy, xx*s+sx, x.At(ic, y, xx)) //livenas:allow hot-loop-precision scalar reference path, kept as the tracked bench baseline
					}
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *PixelShuffle) Backward(dOut *Tensor) *Tensor {
	s := p.S
	inC := dOut.C * s * s
	inH, inW := dOut.H/s, dOut.W/s
	if RefKernels() {
		return p.backwardRef(dOut, inC, inH, inW)
	}
	dIn := p.arena.Get(inC, inH, inW)
	for oc := 0; oc < dOut.C; oc++ {
		for sy := 0; sy < s; sy++ {
			for sx := 0; sx < s; sx++ {
				ic := oc*s*s + sy*s + sx
				for y := 0; y < inH; y++ {
					src := dOut.Data[(oc*dOut.H+y*s+sy)*dOut.W+sx:]
					drow := dIn.Data[(ic*inH+y)*inW : (ic*inH+y)*inW+inW]
					for i := range drow {
						drow[i] = src[i*s]
					}
				}
			}
		}
	}
	return dIn
}

func (p *PixelShuffle) backwardRef(dOut *Tensor, inC, inH, inW int) *Tensor {
	s := p.S
	dIn := NewTensor(inC, inH, inW)
	for oc := 0; oc < dOut.C; oc++ {
		for sy := 0; sy < s; sy++ {
			for sx := 0; sx < s; sx++ {
				ic := oc*s*s + sy*s + sx
				for y := 0; y < inH; y++ {
					for xx := 0; xx < inW; xx++ {
						dIn.Set(ic, y, xx, dOut.At(oc, y*s+sy, xx*s+sx)) //livenas:allow hot-loop-precision scalar reference path, kept as the tracked bench baseline
					}
				}
			}
		}
	}
	return dIn
}
