package nn

import (
	"math"
	"math/rand"
)

// Conv2D is a 2-D convolution with odd square kernels, stride 1 and "same"
// zero padding. Weight layout: [outC][inC][K][K].
type Conv2D struct {
	InC, OutC, K int
	Weight       []float32
	Bias         []float32
	gradW        []float32
	gradB        []float32
	lastIn       *Tensor
}

// NewConv2D creates a convolution with He-normal initialised weights.
func NewConv2D(inC, outC, k int, rng *rand.Rand) *Conv2D {
	if k%2 == 0 {
		panic("nn: Conv2D kernel must be odd")
	}
	l := &Conv2D{
		InC: inC, OutC: outC, K: k,
		Weight: make([]float32, outC*inC*k*k),
		Bias:   make([]float32, outC),
		gradW:  make([]float32, outC*inC*k*k),
		gradB:  make([]float32, outC),
	}
	std := math.Sqrt(2.0 / float64(inC*k*k))
	for i := range l.Weight {
		l.Weight[i] = float32(rng.NormFloat64() * std) //livenas:allow hot-loop-precision one-time He init, not a hot path
	}
	return l
}

// ZeroInit zeroes weights and biases; used for the final layer of residual
// SR networks so the initial network output equals the bilinear skip.
func (l *Conv2D) ZeroInit() {
	for i := range l.Weight {
		l.Weight[i] = 0
	}
	for i := range l.Bias {
		l.Bias[i] = 0
	}
}

// Params implements Layer.
func (l *Conv2D) Params() []Param {
	return []Param{{W: l.Weight, Grad: l.gradW}, {W: l.Bias, Grad: l.gradB}}
}

// Forward implements Layer.
func (l *Conv2D) Forward(x *Tensor) *Tensor {
	if x.C != l.InC {
		panic("nn: Conv2D input channel mismatch")
	}
	l.lastIn = x
	h, w := x.H, x.W
	out := NewTensor(l.OutC, h, w)
	pad := l.K / 2
	for oc := 0; oc < l.OutC; oc++ {
		bias := l.Bias[oc]
		dst := out.Data[oc*h*w : (oc+1)*h*w]
		for i := range dst {
			dst[i] = bias
		}
		for ic := 0; ic < l.InC; ic++ {
			src := x.Data[ic*h*w : (ic+1)*h*w]
			wbase := ((oc*l.InC + ic) * l.K) * l.K
			for ky := 0; ky < l.K; ky++ {
				dy := ky - pad
				for kx := 0; kx < l.K; kx++ {
					dx := kx - pad
					wv := l.Weight[wbase+ky*l.K+kx]
					if wv == 0 {
						continue
					}
					// Valid overlap rows/cols for this kernel tap.
					y0, y1 := maxInt(0, -dy), minInt(h, h-dy)
					x0, x1 := maxInt(0, -dx), minInt(w, w-dx)
					for y := y0; y < y1; y++ {
						srow := src[(y+dy)*w:]
						drow := dst[y*w:]
						for xx := x0; xx < x1; xx++ {
							drow[xx] += wv * srow[xx+dx]
						}
					}
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (l *Conv2D) Backward(dOut *Tensor) *Tensor {
	x := l.lastIn
	h, w := x.H, x.W
	pad := l.K / 2
	dIn := NewTensor(l.InC, h, w)
	for oc := 0; oc < l.OutC; oc++ {
		g := dOut.Data[oc*h*w : (oc+1)*h*w]
		// Bias gradient.
		var gb float32
		for _, v := range g {
			gb += v
		}
		l.gradB[oc] += gb
		for ic := 0; ic < l.InC; ic++ {
			src := x.Data[ic*h*w : (ic+1)*h*w]
			din := dIn.Data[ic*h*w : (ic+1)*h*w]
			wbase := ((oc*l.InC + ic) * l.K) * l.K
			for ky := 0; ky < l.K; ky++ {
				dy := ky - pad
				for kx := 0; kx < l.K; kx++ {
					dx := kx - pad
					y0, y1 := maxInt(0, -dy), minInt(h, h-dy)
					x0, x1 := maxInt(0, -dx), minInt(w, w-dx)
					var gw float32
					wv := l.Weight[wbase+ky*l.K+kx]
					for y := y0; y < y1; y++ {
						srow := src[(y+dy)*w:]
						drow := din[(y+dy)*w:]
						grow := g[y*w:]
						for xx := x0; xx < x1; xx++ {
							gv := grow[xx]
							gw += gv * srow[xx+dx]
							drow[xx+dx] += gv * wv
						}
					}
					l.gradW[wbase+ky*l.K+kx] += gw
				}
			}
		}
	}
	return dIn
}

// ReLU is the rectified-linear activation.
type ReLU struct {
	mask []bool
}

// Params implements Layer.
func (r *ReLU) Params() []Param { return nil }

// Forward implements Layer.
func (r *ReLU) Forward(x *Tensor) *Tensor {
	out := x.Clone()
	if cap(r.mask) < len(x.Data) {
		r.mask = make([]bool, len(x.Data))
	}
	r.mask = r.mask[:len(x.Data)]
	for i, v := range out.Data {
		if v <= 0 {
			out.Data[i] = 0
			r.mask[i] = false
		} else {
			r.mask[i] = true
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(dOut *Tensor) *Tensor {
	dIn := dOut.Clone()
	for i := range dIn.Data {
		if !r.mask[i] {
			dIn.Data[i] = 0
		}
	}
	return dIn
}

// PixelShuffle rearranges a (C*s², H, W) tensor into (C, H*s, W*s): the
// sub-pixel upsampling of ESPCN (Shi et al. 2016), which the paper's SR
// model family uses to upscale at the network's tail.
type PixelShuffle struct {
	S int
}

// Params implements Layer.
func (p *PixelShuffle) Params() []Param { return nil }

// Forward implements Layer.
func (p *PixelShuffle) Forward(x *Tensor) *Tensor {
	s := p.S
	if x.C%(s*s) != 0 {
		panic("nn: PixelShuffle channel count not divisible by s²")
	}
	outC := x.C / (s * s)
	out := NewTensor(outC, x.H*s, x.W*s)
	for oc := 0; oc < outC; oc++ {
		for sy := 0; sy < s; sy++ {
			for sx := 0; sx < s; sx++ {
				ic := oc*s*s + sy*s + sx
				for y := 0; y < x.H; y++ {
					for xx := 0; xx < x.W; xx++ {
						out.Set(oc, y*s+sy, xx*s+sx, x.At(ic, y, xx))
					}
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *PixelShuffle) Backward(dOut *Tensor) *Tensor {
	s := p.S
	inC := dOut.C * s * s
	inH, inW := dOut.H/s, dOut.W/s
	dIn := NewTensor(inC, inH, inW)
	for oc := 0; oc < dOut.C; oc++ {
		for sy := 0; sy < s; sy++ {
			for sx := 0; sx < s; sx++ {
				ic := oc*s*s + sy*s + sx
				for y := 0; y < inH; y++ {
					for xx := 0; xx < inW; xx++ {
						dIn.Set(ic, y, xx, dOut.At(oc, y*s+sy, xx*s+sx))
					}
				}
			}
		}
	}
	return dIn
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
