// Package metrics implements the video-quality metrics used throughout the
// paper's evaluation: PSNR (the primary metric, §4 "our implementation uses
// PSNR because it is less expensive to compute"), SSIM (Appendix B), and the
// aggregation helpers (means, CDFs) the figures are built from.
package metrics

import (
	"math"
	"sort"

	"livenas/internal/frame"
)

// MSE returns the mean squared error between two equally sized frames.
// It panics if the frames differ in shape, which always indicates a pipeline
// bug rather than a runtime condition.
func MSE(a, b *frame.Frame) float64 {
	if a.W != b.W || a.H != b.H {
		panic("metrics: frame shape mismatch")
	}
	if len(a.Pix) == 0 {
		return 0
	}
	var sum float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		sum += d * d
	}
	return sum / float64(len(a.Pix))
}

// PSNRCap is the PSNR value reported for identical frames (MSE == 0);
// real pipelines cap PSNR rather than reporting +Inf.
const PSNRCap = 100.0

// PSNR returns the peak signal-to-noise ratio between two frames in dB,
// with a 255 peak (8-bit samples).
func PSNR(a, b *frame.Frame) float64 {
	return PSNRFromMSE(MSE(a, b))
}

// PSNRFromMSE converts a mean squared error to PSNR in dB.
func PSNRFromMSE(mse float64) float64 {
	if mse <= 0 {
		return PSNRCap
	}
	p := 10 * math.Log10(255*255/mse)
	if p > PSNRCap {
		return PSNRCap
	}
	return p
}

// MSEFromPSNR inverts PSNRFromMSE. It is used by the effective-bitrate
// mapping on the distribution side (§8.3).
func MSEFromPSNR(psnr float64) float64 {
	return 255 * 255 / math.Pow(10, psnr/10)
}

// SSIM returns the mean structural similarity index between two frames using
// the standard 8x8 sliding window (stride 4 for speed; the constant offsets
// follow Wang et al. 2004 with K1=0.01, K2=0.03, L=255).
func SSIM(a, b *frame.Frame) float64 {
	if a.W != b.W || a.H != b.H {
		panic("metrics: frame shape mismatch")
	}
	const (
		win    = 8
		stride = 4
		c1     = (0.01 * 255) * (0.01 * 255)
		c2     = (0.03 * 255) * (0.03 * 255)
	)
	if a.W < win || a.H < win {
		// Degenerate frames: fall back to a single global window.
		return ssimWindow(a, b, 0, 0, a.W, a.H, c1, c2)
	}
	var sum float64
	var n int
	for y := 0; y+win <= a.H; y += stride {
		for x := 0; x+win <= a.W; x += stride {
			sum += ssimWindow(a, b, x, y, win, win, c1, c2)
			n++
		}
	}
	return sum / float64(n)
}

func ssimWindow(a, b *frame.Frame, x0, y0, w, h int, c1, c2 float64) float64 {
	var sa, sb, saa, sbb, sab float64
	n := float64(w * h)
	if n == 0 {
		return 1
	}
	for y := y0; y < y0+h; y++ {
		ra := a.Pix[y*a.W:]
		rb := b.Pix[y*b.W:]
		for x := x0; x < x0+w; x++ {
			va, vb := float64(ra[x]), float64(rb[x])
			sa += va
			sb += vb
			saa += va * va
			sbb += vb * vb
			sab += va * vb
		}
	}
	ma, mb := sa/n, sb/n
	va := saa/n - ma*ma
	vb := sbb/n - mb*mb
	cov := sab/n - ma*mb
	return ((2*ma*mb + c1) * (2*cov + c2)) / ((ma*ma + mb*mb + c1) * (va + vb + c2))
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Median returns the median of xs, or 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Percentile(xs, 50)
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between order statistics. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(pos)
	fracpart := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-fracpart) + s[lo+1]*fracpart
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	P float64 // cumulative probability in (0,1]
}

// CDF returns the empirical CDF of xs as a sorted point list, suitable for
// printing the CDF figures of the paper (Figs 8, 19b, 23b, 25).
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]CDFPoint, len(s))
	for i, x := range s {
		out[i] = CDFPoint{X: x, P: float64(i+1) / float64(len(s))}
	}
	return out
}
