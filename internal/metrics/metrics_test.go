package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"livenas/internal/frame"
)

func randFrame(rng *rand.Rand, w, h int) *frame.Frame {
	f := frame.New(w, h)
	for i := range f.Pix {
		f.Pix[i] = uint8(rng.Intn(256))
	}
	return f
}

func TestMSEIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := randFrame(rng, 16, 16)
	if got := MSE(f, f); got != 0 {
		t.Fatalf("MSE(f,f)=%v want 0", got)
	}
}

func TestMSEKnownValue(t *testing.T) {
	a := frame.New(2, 1)
	b := frame.New(2, 1)
	a.Pix[0], a.Pix[1] = 10, 20
	b.Pix[0], b.Pix[1] = 13, 16
	// ((3)^2 + (4)^2) / 2 = 12.5
	if got := MSE(a, b); got != 12.5 {
		t.Fatalf("MSE=%v want 12.5", got)
	}
}

func TestMSEPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MSE(frame.New(2, 2), frame.New(3, 2))
}

func TestPSNRCapOnIdentical(t *testing.T) {
	f := frame.New(8, 8)
	if got := PSNR(f, f); got != PSNRCap {
		t.Fatalf("identical PSNR=%v want %v", got, PSNRCap)
	}
}

func TestPSNRKnownValue(t *testing.T) {
	// MSE of 65025/10 => PSNR = 10*log10(10) = 10 dB exactly.
	got := PSNRFromMSE(255 * 255 / 10.0)
	if math.Abs(got-10) > 1e-9 {
		t.Fatalf("PSNR=%v want 10", got)
	}
}

func TestPSNRMSERoundTrip(t *testing.T) {
	for _, mse := range []float64{0.5, 3, 42.5, 1000} {
		p := PSNRFromMSE(mse)
		back := MSEFromPSNR(p)
		if math.Abs(back-mse)/mse > 1e-9 {
			t.Fatalf("round trip mse %v -> %v", mse, back)
		}
	}
}

func TestPSNRMonotoneInNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := randFrame(rng, 32, 32)
	prev := math.Inf(1)
	for _, amp := range []int{1, 5, 20, 60} {
		g := f.Clone()
		for i := range g.Pix {
			v := int(g.Pix[i]) + rng.Intn(2*amp+1) - amp
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			g.Pix[i] = uint8(v)
		}
		p := PSNR(f, g)
		if p >= prev {
			t.Fatalf("PSNR not decreasing with noise amplitude: %v then %v", prev, p)
		}
		prev = p
	}
}

func TestSSIMIdenticalIsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := randFrame(rng, 24, 24)
	if got := SSIM(f, f); math.Abs(got-1) > 1e-9 {
		t.Fatalf("SSIM(f,f)=%v want 1", got)
	}
}

func TestSSIMRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randFrame(rng, 32, 32)
	b := randFrame(rng, 32, 32)
	s := SSIM(a, b)
	if s < -1 || s > 1 {
		t.Fatalf("SSIM out of range: %v", s)
	}
}

func TestSSIMDegradesWithNoise(t *testing.T) {
	// Structured content: a gradient, so SSIM has structure to compare.
	f := frame.New(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			f.Set(x, y, uint8((x*4+y*2)%256))
		}
	}
	rng := rand.New(rand.NewSource(5))
	g := f.Clone()
	for i := range g.Pix {
		v := int(g.Pix[i]) + rng.Intn(81) - 40
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		g.Pix[i] = uint8(v)
	}
	if s := SSIM(f, g); s >= SSIM(f, f) {
		t.Fatalf("noisy SSIM %v should be below 1", s)
	}
}

func TestSSIMTinyFrame(t *testing.T) {
	a := frame.New(4, 4)
	b := frame.New(4, 4)
	if s := SSIM(a, b); math.Abs(s-1) > 1e-9 {
		t.Fatalf("tiny identical SSIM=%v", s)
	}
}

func TestMeanMedianStddev(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if m := Mean(xs); m != 2.5 {
		t.Fatalf("mean=%v", m)
	}
	if m := Median(xs); m != 2.5 {
		t.Fatalf("median=%v", m)
	}
	if s := Stddev([]float64{2, 2, 2}); s != 0 {
		t.Fatalf("stddev of constant = %v", s)
	}
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty aggregates should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {75, 40}, {-5, 10}, {110, 50},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Fatalf("P%v = %v want %v", c.p, got, c.want)
		}
	}
	// Must not mutate input.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatalf("len=%d", len(pts))
	}
	if pts[0].X != 1 || pts[2].X != 3 {
		t.Fatal("CDF not sorted")
	}
	if pts[2].P != 1 {
		t.Fatalf("last P=%v want 1", pts[2].P)
	}
	if CDF(nil) != nil {
		t.Fatal("empty CDF should be nil")
	}
}

// Property: PSNR is symmetric and SSIM is symmetric.
func TestQuickSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randFrame(rng, 16, 16)
		b := randFrame(rng, 16, 16)
		if PSNR(a, b) != PSNR(b, a) {
			return false
		}
		return math.Abs(SSIM(a, b)-SSIM(b, a)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: CDF probabilities are non-decreasing and end at 1.
func TestQuickCDFMonotone(t *testing.T) {
	f := func(xs []float64) bool {
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
				xs[i] = 0
			}
		}
		pts := CDF(xs)
		if len(xs) == 0 {
			return pts == nil
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].P < pts[i-1].P || pts[i].X < pts[i-1].X {
				return false
			}
		}
		return pts[len(pts)-1].P == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
