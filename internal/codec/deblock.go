package codec

import "livenas/internal/frame"

// In-loop deblocking filter (optional, Config.Deblock). Block-transform
// codecs produce visible discontinuities at 8x8 block boundaries at low
// bitrates; an in-loop filter smooths boundary steps that are small enough
// to be quantisation artifacts (large steps are kept — they are real
// edges). Both the encoder's reconstruction and the decoder run the
// identical filter, so motion compensation stays drift-free.

// deblockThreshold returns the maximum boundary step treated as an
// artifact at the given QP (larger quantisation steps allow larger
// artifacts).
func deblockThreshold(qp int) int {
	t := int(2 + qpScale(qp)*1.5)
	if t > 48 {
		t = 48
	}
	return t
}

// deblockFrame smooths block boundaries of a reconstructed frame in place.
func deblockFrame(f *frame.Frame, qp int) {
	thr := deblockThreshold(qp)
	w, h := f.W, f.H
	// Vertical boundaries (columns at multiples of blockSize).
	for x := blockSize; x < w; x += blockSize {
		for y := 0; y < h; y++ {
			row := f.Pix[y*w:]
			a, b := int(row[x-1]), int(row[x])
			d := a - b
			if d < 0 {
				d = -d
			}
			if d == 0 || d > thr {
				continue
			}
			row[x-1] = uint8((3*a + b + 2) / 4)
			row[x] = uint8((a + 3*b + 2) / 4)
		}
	}
	// Horizontal boundaries (rows at multiples of blockSize).
	for y := blockSize; y < h; y += blockSize {
		up := f.Pix[(y-1)*w:]
		dn := f.Pix[y*w:]
		for x := 0; x < w; x++ {
			a, b := int(up[x]), int(dn[x])
			d := a - b
			if d < 0 {
				d = -d
			}
			if d == 0 || d > thr {
				continue
			}
			up[x] = uint8((3*a + b + 2) / 4)
			dn[x] = uint8((a + 3*b + 2) / 4)
		}
	}
}
