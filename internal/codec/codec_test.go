package codec

import (
	"math"
	"math/rand"
	"testing"

	"livenas/internal/frame"
	"livenas/internal/metrics"
	"livenas/internal/vidgen"
)

func TestDCTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var src, freq, back [64]float64
	for i := range src {
		src[i] = float64(rng.Intn(256)) - 128
	}
	fdct8(&src, &freq)
	idct8(&freq, &back)
	for i := range src {
		if math.Abs(src[i]-back[i]) > 1e-9 {
			t.Fatalf("DCT round trip failed at %d: %v vs %v", i, src[i], back[i])
		}
	}
}

func TestDCTEnergyConservation(t *testing.T) {
	// Orthonormal DCT preserves the L2 norm (Parseval).
	rng := rand.New(rand.NewSource(2))
	var src, freq [64]float64
	var es, ef float64
	for i := range src {
		src[i] = rng.Float64()*200 - 100
		es += src[i] * src[i]
	}
	fdct8(&src, &freq)
	for i := range freq {
		ef += freq[i] * freq[i]
	}
	if math.Abs(es-ef)/es > 1e-9 {
		t.Fatalf("energy not conserved: %v vs %v", es, ef)
	}
}

func TestDCTDCCoefficient(t *testing.T) {
	// A constant block c has DC = 8c and zero AC.
	var src, freq [64]float64
	for i := range src {
		src[i] = 50
	}
	fdct8(&src, &freq)
	if math.Abs(freq[0]-400) > 1e-9 {
		t.Fatalf("DC=%v want 400", freq[0])
	}
	for i := 1; i < 64; i++ {
		if math.Abs(freq[i]) > 1e-9 {
			t.Fatalf("AC[%d]=%v want 0", i, freq[i])
		}
	}
}

func TestZigzagIsPermutation(t *testing.T) {
	seen := make(map[int]bool)
	for _, v := range zigzag {
		if v < 0 || v > 63 || seen[v] {
			t.Fatalf("zigzag invalid at %d", v)
		}
		seen[v] = true
	}
}

func TestQPScaleDoubling(t *testing.T) {
	if r := qpScale(12) / qpScale(6); math.Abs(r-2) > 1e-9 {
		t.Fatalf("+6 QP should double step, got %v", r)
	}
}

func srcFrames(cat vidgen.Category, w, h, n int, fps float64) []*frame.Frame {
	src := vidgen.NewSource(cat, w, h, 77, 120)
	out := make([]*frame.Frame, n)
	for i := range out {
		out[i] = src.FrameAt(float64(i) / fps)
	}
	return out
}

func TestKeyFrameRoundTrip(t *testing.T) {
	cfg := Config{Profile: BX8, W: 96, H: 56, KeyInterval: 30}
	enc := NewEncoder(cfg)
	dec := NewDecoder(cfg)
	f := srcFrames(vidgen.JustChatting, 96, 56, 1, 30)[0]
	ef := enc.Encode(f, 80000) // generous budget => high quality
	if !ef.Key {
		t.Fatal("first frame must be a key frame")
	}
	got, err := dec.Decode(ef)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 96 || got.H != 56 {
		t.Fatalf("decoded %dx%d", got.W, got.H)
	}
	if p := metrics.PSNR(f, got); p < 30 {
		t.Fatalf("high-budget key frame PSNR %.1f too low", p)
	}
}

func TestEncoderDecoderAgree(t *testing.T) {
	// Decoder output must exactly match the encoder's in-loop reconstruction
	// for every frame of a GoP (this is the property that makes motion
	// compensation drift-free).
	cfg := Config{Profile: BX9, W: 80, H: 48, KeyInterval: 10}
	enc := NewEncoder(cfg)
	dec := NewDecoder(cfg)
	for i, f := range srcFrames(vidgen.Sports, 80, 48, 12, 30) {
		ef := enc.Encode(f, 8000)
		got, err := dec.Decode(ef)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		want := enc.Reconstructed()
		for j := range got.Pix {
			if got.Pix[j] != want.Pix[j] {
				t.Fatalf("frame %d: decoder/encoder reconstruction mismatch at %d", i, j)
			}
		}
	}
}

func TestInterFramesSmallerThanIntra(t *testing.T) {
	cfg := Config{Profile: BX8, W: 96, H: 56}
	enc := NewEncoder(cfg)
	frames := srcFrames(vidgen.JustChatting, 96, 56, 5, 30)
	sizes := make([]int, len(frames))
	for i, f := range frames {
		sizes[i] = len(enc.Encode(f, 6000).Data)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] >= sizes[0] {
			t.Fatalf("P frame %d (%dB) not smaller than key frame (%dB)", i, sizes[i], sizes[0])
		}
	}
}

func TestGoPStructure(t *testing.T) {
	cfg := Config{Profile: BX8, W: 48, H: 48, KeyInterval: 4}
	enc := NewEncoder(cfg)
	frames := srcFrames(vidgen.Podcast, 48, 48, 10, 30)
	for i, f := range frames {
		ef := enc.Encode(f, 4000)
		wantKey := i%5 == 0 // frame 0 key, then 4 P frames, then key again
		if ef.Key != wantKey {
			t.Fatalf("frame %d key=%v want %v", i, ef.Key, wantKey)
		}
	}
}

func TestForceKeyFrame(t *testing.T) {
	cfg := Config{Profile: BX8, W: 48, H: 48}
	enc := NewEncoder(cfg)
	frames := srcFrames(vidgen.Podcast, 48, 48, 3, 30)
	enc.Encode(frames[0], 4000)
	if enc.Encode(frames[1], 4000).Key {
		t.Fatal("second frame should be P")
	}
	enc.ForceKeyFrame()
	if !enc.Encode(frames[2], 4000).Key {
		t.Fatal("ForceKeyFrame ignored")
	}
}

func TestRateControlConverges(t *testing.T) {
	cfg := Config{Profile: BX8, W: 160, H: 96}
	enc := NewEncoder(cfg)
	src := vidgen.NewSource(vidgen.LeagueOfLegends, 160, 96, 5, 60)
	target := 6000 // bits per frame
	var tail []int
	for i := 0; i < 60; i++ {
		f := src.FrameAt(float64(i) / 30)
		ef := enc.Encode(f, target)
		if i >= 30 && !ef.Key {
			tail = append(tail, ef.Bits())
		}
	}
	var mean float64
	for _, b := range tail {
		mean += float64(b)
	}
	mean /= float64(len(tail))
	if mean < float64(target)*0.4 || mean > float64(target)*2.2 {
		t.Fatalf("steady-state bits %.0f not near target %d", mean, target)
	}
}

func TestQualityImprovesWithBitrate(t *testing.T) {
	// The premise of Eq. 1: Q_video(rate) is increasing.
	quality := func(bits int) float64 {
		cfg := Config{Profile: BX8, W: 128, H: 72}
		enc := NewEncoder(cfg)
		src := vidgen.NewSource(vidgen.FoodCooking, 128, 72, 9, 60)
		var ps []float64
		for i := 0; i < 12; i++ {
			f := src.FrameAt(float64(i) / 30)
			enc.Encode(f, bits)
			ps = append(ps, metrics.PSNR(f, enc.Reconstructed()))
		}
		return metrics.Mean(ps[4:])
	}
	// Monotone over a wide range (the Eq. 1 premise)...
	qs := []float64{quality(2000), quality(8000), quality(16000), quality(32000), quality(64000)}
	for i := 1; i < len(qs); i++ {
		if qs[i] <= qs[i-1] {
			t.Fatalf("quality not increasing with rate: %v", qs)
		}
	}
	// ...and concave in the upper operating range (posterised synthetic
	// content has a convex knee at very low rates where AC coefficients
	// first survive quantisation; above it, doubling the rate must show
	// diminishing returns).
	if g1, g2 := qs[3]-qs[2], qs[4]-qs[3]; g2 >= g1 {
		t.Fatalf("no diminishing returns at high rates: gains %.2f then %.2f", g1, g2)
	}
}

func TestBX9BeatsBX8(t *testing.T) {
	// At equal bitrate BX9 should deliver equal-or-better PSNR (Fig 14's
	// codec comparison premise).
	run := func(p Profile) float64 {
		cfg := Config{Profile: p, W: 128, H: 72}
		enc := NewEncoder(cfg)
		src := vidgen.NewSource(vidgen.LeagueOfLegends, 128, 72, 31, 60)
		var ps []float64
		var bits int
		for i := 0; i < 16; i++ {
			f := src.FrameAt(float64(i) / 30)
			ef := enc.Encode(f, 5000)
			bits += ef.Bits()
			ps = append(ps, metrics.PSNR(f, enc.Reconstructed()))
		}
		return metrics.Mean(ps[4:])
	}
	p8, p9 := run(BX8), run(BX9)
	if p9 < p8-0.1 {
		t.Fatalf("BX9 (%.2f dB) should not be worse than BX8 (%.2f dB)", p9, p8)
	}
}

func TestDecodeInterWithoutReference(t *testing.T) {
	cfg := Config{Profile: BX8, W: 48, H: 48}
	enc := NewEncoder(cfg)
	frames := srcFrames(vidgen.Podcast, 48, 48, 2, 30)
	enc.Encode(frames[0], 4000)
	p := enc.Encode(frames[1], 4000)
	dec := NewDecoder(cfg)
	if _, err := dec.Decode(p); err == nil {
		t.Fatal("decoding P frame without reference must fail")
	}
}

func TestDecoderResetDropsReference(t *testing.T) {
	cfg := Config{Profile: BX8, W: 48, H: 48}
	enc := NewEncoder(cfg)
	dec := NewDecoder(cfg)
	frames := srcFrames(vidgen.Podcast, 48, 48, 3, 30)
	k := enc.Encode(frames[0], 4000)
	if _, err := dec.Decode(k); err != nil {
		t.Fatal(err)
	}
	dec.Reset()
	p := enc.Encode(frames[1], 4000)
	if _, err := dec.Decode(p); err == nil {
		t.Fatal("reset decoder must refuse inter frames")
	}
}

func TestDecodeCorruptData(t *testing.T) {
	cfg := Config{Profile: BX8, W: 48, H: 48}
	dec := NewDecoder(cfg)
	// Random garbage must error out, not panic.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		data := make([]byte, rng.Intn(64)+1)
		rng.Read(data)
		dec.Reset()
		_, _ = dec.Decode(&EncodedFrame{Data: data, Key: true}) // must not panic
	}
}

func TestTruncatedBitstream(t *testing.T) {
	cfg := Config{Profile: BX8, W: 64, H: 64}
	enc := NewEncoder(cfg)
	f := srcFrames(vidgen.Sports, 64, 64, 1, 30)[0]
	ef := enc.Encode(f, 20000)
	for _, cut := range []int{1, len(ef.Data) / 2, len(ef.Data) - 1} {
		dec := NewDecoder(cfg)
		_, err := dec.Decode(&EncodedFrame{Data: ef.Data[:cut], Key: true})
		if err == nil && cut < len(ef.Data)/2 {
			t.Fatalf("heavily truncated stream (%d bytes) decoded without error", cut)
		}
	}
}

func TestNonBlockAlignedDims(t *testing.T) {
	cfg := Config{Profile: BX8, W: 50, H: 35} // not multiples of 8
	enc := NewEncoder(cfg)
	dec := NewDecoder(cfg)
	f := frame.New(50, 35)
	for i := range f.Pix {
		f.Pix[i] = uint8(i % 251)
	}
	ef := enc.Encode(f, 30000)
	got, err := dec.Decode(ef)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 50 || got.H != 35 {
		t.Fatalf("decoded %dx%d", got.W, got.H)
	}
	if p := metrics.PSNR(f, got); p < 25 {
		t.Fatalf("PSNR %.1f too low for generous budget", p)
	}
}

func TestEncodePanicsOnWrongSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEncoder(Config{Profile: BX8, W: 48, H: 48}).Encode(frame.New(24, 24), 1000)
}

func TestPatchRoundTrip(t *testing.T) {
	src := vidgen.NewSource(vidgen.JustChatting, 240, 240, 3, 10)
	p := src.FrameAt(1).Crop(10, 10, frame.PatchSize, frame.PatchSize)
	data := EncodePatch(p, PatchQuality)
	got, err := DecodePatch(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != frame.PatchSize || got.H != frame.PatchSize {
		t.Fatalf("patch dims %dx%d", got.W, got.H)
	}
	if q := metrics.PSNR(p, got); q < 38 {
		t.Fatalf("quality-95 patch PSNR %.1f; want near-transparent (>=38)", q)
	}
	// Compression must be substantial vs raw (paper: ~10x).
	if len(data) >= p.Bytes()/2 {
		t.Fatalf("patch only compressed to %d of %d raw bytes", len(data), p.Bytes())
	}
}

func TestPatchQualityOrdering(t *testing.T) {
	src := vidgen.NewSource(vidgen.Fortnite, 240, 240, 4, 10)
	p := src.FrameAt(2).Crop(0, 0, frame.PatchSize, frame.PatchSize)
	d50 := EncodePatch(p, 50)
	d95 := EncodePatch(p, 95)
	if len(d50) >= len(d95) {
		t.Fatal("lower quality should produce fewer bytes")
	}
	f50, _ := DecodePatch(d50)
	f95, _ := DecodePatch(d95)
	if metrics.PSNR(p, f50) >= metrics.PSNR(p, f95) {
		t.Fatal("lower quality should produce lower PSNR")
	}
}

func TestDecodePatchMalformed(t *testing.T) {
	if _, err := DecodePatch(nil); err == nil {
		t.Fatal("nil payload must error")
	}
	if _, err := DecodePatch([]byte{0, 0, 0, 0, 1}); err == nil {
		t.Fatal("zero-dims payload must error")
	}
}

func TestDeblockEncoderDecoderAgree(t *testing.T) {
	// The deblocking filter is in-loop: decoder output must still exactly
	// match the encoder reconstruction on every frame.
	cfg := Config{Profile: BX8, W: 80, H: 48, KeyInterval: 10, Deblock: true}
	enc := NewEncoder(cfg)
	dec := NewDecoder(cfg)
	for i, f := range srcFrames(vidgen.LeagueOfLegends, 80, 48, 10, 30) {
		ef := enc.Encode(f, 4000)
		got, err := dec.Decode(ef)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		want := enc.Reconstructed()
		for j := range got.Pix {
			if got.Pix[j] != want.Pix[j] {
				t.Fatalf("frame %d: drift with deblocking at %d", i, j)
			}
		}
	}
}

func TestDeblockHelpsAtLowBitrate(t *testing.T) {
	// At starvation bitrates, deblocking should not hurt quality and
	// usually improves it on smooth content.
	quality := func(deblock bool) float64 {
		cfg := Config{Profile: BX8, W: 128, H: 72, Deblock: deblock}
		enc := NewEncoder(cfg)
		src := vidgen.NewSource(vidgen.Podcast, 128, 72, 9, 60)
		var ps []float64
		for i := 0; i < 10; i++ {
			f := src.FrameAt(float64(i) / 30)
			enc.Encode(f, 1200)
			ps = append(ps, metrics.PSNR(f, enc.Reconstructed()))
		}
		return metrics.Mean(ps[3:])
	}
	plain, filtered := quality(false), quality(true)
	if filtered < plain-0.3 {
		t.Fatalf("deblocking hurt quality: %.2f vs %.2f", filtered, plain)
	}
}

func TestDeblockPreservesStrongEdges(t *testing.T) {
	// A step edge larger than the threshold must pass through untouched.
	f := frame.New(16, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 16; x++ {
			if x >= 8 {
				f.Set(x, y, 250)
			} else {
				f.Set(x, y, 10)
			}
		}
	}
	deblockFrame(f, 20)
	if f.At(7, 0) != 10 || f.At(8, 0) != 250 {
		t.Fatal("strong edge was smoothed")
	}
	// A small step at the boundary must be smoothed.
	g := frame.New(16, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 16; x++ {
			if x >= 8 {
				g.Set(x, y, 104)
			} else {
				g.Set(x, y, 100)
			}
		}
	}
	deblockFrame(g, 20)
	if g.At(7, 0) == 100 && g.At(8, 0) == 104 {
		t.Fatal("artifact step was not smoothed")
	}
}
