package codec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"livenas/internal/frame"
	"livenas/internal/metrics"
)

// Property: every patch payload produced by EncodePatch decodes without
// error, to the right dimensions, at bounded distortion for quality 95.
func TestQuickPatchDecodability(t *testing.T) {
	f := func(seed int64, wRaw, hRaw uint8) bool {
		w := int(wRaw%80) + 8
		h := int(hRaw%80) + 8
		rng := rand.New(rand.NewSource(seed))
		p := frame.New(w, h)
		// Structured content: random blocks (worst case for run coding).
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				p.Set(x, y, uint8(rng.Intn(2)*200+rng.Intn(30)))
			}
		}
		data := EncodePatch(p, 95)
		got, err := DecodePatch(data)
		if err != nil || got.W != w || got.H != h {
			return false
		}
		return metrics.PSNR(p, got) > 20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the encoder/decoder pair agrees bit-exactly on the
// reconstruction for arbitrary random frames and budgets (the drift-free
// invariant behind motion compensation).
func TestQuickEncoderDecoderAgreement(t *testing.T) {
	f := func(seed int64, budgetRaw uint16, deblock bool) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{Profile: BX8, W: 40, H: 32, KeyInterval: 3, Deblock: deblock}
		enc := NewEncoder(cfg)
		dec := NewDecoder(cfg)
		budget := int(budgetRaw%20000) + 500
		fr := frame.New(40, 32)
		for i := 0; i < 5; i++ {
			// Evolve the frame slightly between encodes.
			for j := range fr.Pix {
				if rng.Intn(10) == 0 {
					fr.Pix[j] = uint8(rng.Intn(256))
				}
			}
			got, err := dec.Decode(enc.Encode(fr, budget))
			if err != nil {
				return false
			}
			want := enc.Reconstructed()
			for j := range got.Pix {
				if got.Pix[j] != want.Pix[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantisation steps are strictly positive and monotone in QP for
// every coefficient and profile.
func TestQuickQuantStepMonotone(t *testing.T) {
	f := func(iRaw uint8, p bool) bool {
		i := int(iRaw % 64)
		prof := BX8
		if p {
			prof = BX9
		}
		prev := 0.0
		for qp := MinQP; qp <= MaxQP; qp++ {
			s := quantStep(prof, qp, i)
			if s <= prev {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
