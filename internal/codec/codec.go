package codec

import (
	"fmt"
	"math"

	"livenas/internal/frame"
)

// Profile selects the codec generation. BX8 stands in for VP8 and BX9 for
// VP9: BX9 spends more search effort and uses a flatter high-frequency
// quantiser, buying roughly 10-15% bitrate at equal quality — the relation
// the paper's codec-agnostic experiment (Figure 14) exercises.
type Profile int

const (
	BX8 Profile = iota
	BX9
)

func (p Profile) String() string {
	if p == BX9 {
		return "BX9"
	}
	return "BX8"
}

// searchRange returns the motion search radius in pixels.
func (p Profile) searchRange() int {
	if p == BX9 {
		return 12
	}
	return 8
}

// Config describes one encoded stream.
type Config struct {
	Profile Profile
	W, H    int // visible frame dimensions
	// KeyInterval is the maximum number of frames between key frames
	// (a GoP); 0 means only the first frame is a key frame.
	KeyInterval int
	// Deblock enables the in-loop deblocking filter (see deblock.go). Both
	// endpoints must agree on it; it is part of the stream configuration.
	Deblock bool
}

// EncodedFrame is one compressed frame: a self-contained decodable payload.
type EncodedFrame struct {
	Data []byte
	Key  bool
	QP   int
	Seq  int // encoder-assigned sequence number
}

// Bits returns the payload size in bits.
func (ef *EncodedFrame) Bits() int { return len(ef.Data) * 8 }

// padTo8 rounds up to a multiple of the transform block size.
func padTo8(x int) int { return (x + blockSize - 1) / blockSize * blockSize }

// padFrame extends f to block-aligned dimensions by edge replication.
func padFrame(f *frame.Frame) *frame.Frame {
	pw, ph := padTo8(f.W), padTo8(f.H)
	if pw == f.W && ph == f.H {
		return f
	}
	out := frame.New(pw, ph)
	for y := 0; y < ph; y++ {
		sy := y
		if sy >= f.H {
			sy = f.H - 1
		}
		for x := 0; x < pw; x++ {
			sx := x
			if sx >= f.W {
				sx = f.W - 1
			}
			out.Pix[y*pw+x] = f.Pix[sy*f.W+sx]
		}
	}
	return out
}

// Encoder compresses a sequence of frames. It maintains the reconstructed
// reference frame (the same images a decoder will see), a GoP counter, and
// rate-control state.
type Encoder struct {
	cfg       Config
	ref       *frame.Frame // reconstructed previous frame (padded dims)
	seq       int
	sinceKey  int
	forceKey  bool
	qp        int
	rcInertia float64 // smoothed log2(bits/target) error
}

// NewEncoder returns an encoder for the given configuration.
func NewEncoder(cfg Config) *Encoder {
	if cfg.W <= 0 || cfg.H <= 0 {
		panic(fmt.Sprintf("codec: invalid dimensions %dx%d", cfg.W, cfg.H))
	}
	return &Encoder{cfg: cfg, qp: 30}
}

// Config returns the encoder's configuration.
func (e *Encoder) Config() Config { return e.cfg }

// ForceKeyFrame makes the next encoded frame a key frame (used by the ingest
// pipeline to recover from reference loss).
func (e *Encoder) ForceKeyFrame() { e.forceKey = true }

// QP reports the current rate-control quantisation parameter.
func (e *Encoder) QP() int { return e.qp }

// Encode compresses f against a per-frame bit budget. Rate control adapts QP
// across frames toward the budget and re-encodes within the frame only on
// gross mismatch, mirroring a one-pass real-time encoder.
func (e *Encoder) Encode(f *frame.Frame, targetBits int) *EncodedFrame {
	if f.W != e.cfg.W || f.H != e.cfg.H {
		panic(fmt.Sprintf("codec: frame %dx%d does not match config %dx%d", f.W, f.H, e.cfg.W, e.cfg.H))
	}
	if targetBits < 256 {
		targetBits = 256
	}
	key := e.ref == nil || e.forceKey ||
		(e.cfg.KeyInterval > 0 && e.sinceKey >= e.cfg.KeyInterval)
	e.forceKey = false

	budget := targetBits
	if key {
		// Key frames legitimately cost more; give them headroom so quality
		// does not crater, as real-time encoders do.
		budget = targetBits * 3
	}

	padded := padFrame(f)
	data, recon := e.encodeOnce(padded, key, e.qp)
	// Bounded re-encode on gross budget violation (cheap insurance for
	// scene changes and one-shot encodes; steady state is handled by the
	// inter-frame loop below).
	for attempt := 0; attempt < 4; attempt++ {
		bitsGot := len(data) * 8
		if bitsGot > budget*2 && e.qp < MaxQP {
			e.qp = min(MaxQP, e.qp+6)
		} else if bitsGot*4 < budget && e.qp > MinQP {
			e.qp = max(MinQP, e.qp-6)
		} else {
			break
		}
		data, recon = e.encodeOnce(padded, key, e.qp)
	}

	// Inter-frame QP adaptation: proportional control on the log bit error,
	// smoothed to avoid oscillation.
	err := math.Log2(float64(len(data)*8) / float64(budget))
	e.rcInertia = 0.6*e.rcInertia + 0.4*err
	step := int(math.Round(2.5 * e.rcInertia))
	if step != 0 {
		e.qp = min(MaxQP, max(MinQP, e.qp+step))
		e.rcInertia = 0
	}

	e.ref = recon
	if key {
		e.sinceKey = 0
	} else {
		e.sinceKey++
	}
	ef := &EncodedFrame{Data: data, Key: key, QP: e.qp, Seq: e.seq}
	e.seq++
	return ef
}

// Reconstructed returns the encoder-side reconstruction of the last encoded
// frame (cropped to visible dimensions). The ingest client uses it to measure
// encoded quality without running a separate decoder (§5.2 patch selection).
func (e *Encoder) Reconstructed() *frame.Frame {
	if e.ref == nil {
		return nil
	}
	return e.ref.Crop(0, 0, e.cfg.W, e.cfg.H)
}

// encodeOnce runs one full encode of a padded frame at a fixed QP and
// returns the bitstream plus the reconstruction used as the next reference.
func (e *Encoder) encodeOnce(padded *frame.Frame, key bool, qp int) ([]byte, *frame.Frame) {
	w := &bitWriter{}
	w.writeBit(boolBit(key))
	w.writeBits(uint64(qp), 6)

	pw, ph := padded.W, padded.H
	recon := frame.New(pw, ph)
	var blk, freq [64]float64
	var prevMVX, prevMVY int

	for by := 0; by < ph; by += blockSize {
		prevMVX, prevMVY = 0, 0
		for bx := 0; bx < pw; bx += blockSize {
			if key || e.ref == nil {
				e.encodeIntraBlock(w, padded, recon, bx, by, qp, &blk, &freq)
				continue
			}
			// Motion search against the reconstructed reference.
			mvx, mvy, sadInter := e.searchMotion(padded, bx, by, prevMVX, prevMVY)
			sadIntra := intraSAD(padded, recon, bx, by)
			if sadIntra+32 < sadInter {
				w.writeBit(1) // intra
				e.encodeIntraBlock(w, padded, recon, bx, by, qp, &blk, &freq)
				prevMVX, prevMVY = 0, 0
				continue
			}
			w.writeBit(0) // inter
			w.writeSE(int32(mvx - prevMVX))
			w.writeSE(int32(mvy - prevMVY))
			prevMVX, prevMVY = mvx, mvy
			// Residual against motion-compensated prediction.
			for y := 0; y < blockSize; y++ {
				for x := 0; x < blockSize; x++ {
					pred := refSample(e.ref, bx+x+mvx, by+y+mvy)
					blk[y*blockSize+x] = float64(padded.Pix[(by+y)*pw+bx+x]) - float64(pred)
				}
			}
			codeBlock(w, &blk, &freq, e.cfg.Profile, qp)
			// Reconstruct.
			for y := 0; y < blockSize; y++ {
				for x := 0; x < blockSize; x++ {
					pred := refSample(e.ref, bx+x+mvx, by+y+mvy)
					recon.Pix[(by+y)*pw+bx+x] = clampAdd(pred, blk[y*blockSize+x])
				}
			}
		}
	}
	if e.cfg.Deblock {
		deblockFrame(recon, qp)
	}
	return w.finish(), recon
}

// encodeIntraBlock DC-predicts from the already-reconstructed left/top
// neighbours, codes the residual, and reconstructs in-loop.
func (e *Encoder) encodeIntraBlock(w *bitWriter, src, recon *frame.Frame, bx, by, qp int, blk, freq *[64]float64) {
	pred := dcPrediction(recon, bx, by)
	pw := src.W
	for y := 0; y < blockSize; y++ {
		for x := 0; x < blockSize; x++ {
			blk[y*blockSize+x] = float64(src.Pix[(by+y)*pw+bx+x]) - pred
		}
	}
	codeBlock(w, blk, freq, e.cfg.Profile, qp)
	for y := 0; y < blockSize; y++ {
		for x := 0; x < blockSize; x++ {
			recon.Pix[(by+y)*pw+bx+x] = clampAdd(uint8(pred), blk[y*blockSize+x])
		}
	}
}

// codeBlock transforms blk, quantises it, entropy-codes it, and replaces blk
// with the dequantised spatial-domain reconstruction (in place).
func codeBlock(w *bitWriter, blk, freq *[64]float64, p Profile, qp int) {
	fdct8(blk, freq)
	var q [64]int32
	nnz := 0
	for i := 0; i < 64; i++ {
		step := quantStep(p, qp, i)
		v := int32(math.Round(freq[i] / step))
		q[i] = v
		if v != 0 {
			nnz++
		}
	}
	w.writeUE(uint32(nnz))
	run := uint32(0)
	for _, pos := range zigzag {
		if q[pos] == 0 {
			run++
			continue
		}
		w.writeUE(run)
		w.writeSE(q[pos])
		run = 0
	}
	// Dequantise for reconstruction.
	for i := 0; i < 64; i++ {
		freq[i] = float64(q[i]) * quantStep(p, qp, i)
	}
	idct8(freq, blk)
}

// searchMotion runs a small diamond search seeded at (0,0) and the left
// neighbour's motion vector, returning the best vector and its SAD.
func (e *Encoder) searchMotion(cur *frame.Frame, bx, by, predX, predY int) (int, int, int) {
	r := e.cfg.Profile.searchRange()
	bestX, bestY := 0, 0
	best := blockSAD(cur, e.ref, bx, by, 0, 0)
	if predX != 0 || predY != 0 {
		if s := blockSAD(cur, e.ref, bx, by, predX, predY); s < best {
			best, bestX, bestY = s, predX, predY
		}
	}
	for step := r; step >= 1; step /= 2 {
		improved := true
		for improved {
			improved = false
			for _, d := range [4][2]int{{step, 0}, {-step, 0}, {0, step}, {0, -step}} {
				nx, ny := bestX+d[0], bestY+d[1]
				if nx < -r || nx > r || ny < -r || ny > r {
					continue
				}
				if s := blockSAD(cur, e.ref, bx, by, nx, ny); s < best {
					best, bestX, bestY = s, nx, ny
					improved = true
				}
			}
		}
	}
	return bestX, bestY, best
}

// blockSAD computes the sum of absolute differences between the current
// block and the reference block displaced by (mvx, mvy) (edge-clamped).
func blockSAD(cur, ref *frame.Frame, bx, by, mvx, mvy int) int {
	var sad int
	for y := 0; y < blockSize; y++ {
		for x := 0; x < blockSize; x++ {
			c := int(cur.Pix[(by+y)*cur.W+bx+x])
			r := int(refSample(ref, bx+x+mvx, by+y+mvy))
			d := c - r
			if d < 0 {
				d = -d
			}
			sad += d
		}
	}
	return sad
}

// intraSAD estimates the cost of DC-intra coding the block.
func intraSAD(cur, recon *frame.Frame, bx, by int) int {
	pred := dcPrediction(recon, bx, by)
	var sad int
	for y := 0; y < blockSize; y++ {
		for x := 0; x < blockSize; x++ {
			d := float64(cur.Pix[(by+y)*cur.W+bx+x]) - pred
			if d < 0 {
				d = -d
			}
			sad += int(d)
		}
	}
	return sad
}

// dcPrediction predicts a block's DC level from reconstructed neighbours:
// the mean of the column immediately left and the row immediately above.
func dcPrediction(recon *frame.Frame, bx, by int) float64 {
	var sum, n float64
	if bx > 0 {
		for y := 0; y < blockSize; y++ {
			sum += float64(recon.Pix[(by+y)*recon.W+bx-1])
			n++
		}
	}
	if by > 0 {
		for x := 0; x < blockSize; x++ {
			sum += float64(recon.Pix[(by-1)*recon.W+bx+x])
			n++
		}
	}
	if n == 0 {
		return 128
	}
	return sum / n
}

// refSample reads the reference frame with edge clamping.
func refSample(ref *frame.Frame, x, y int) uint8 {
	if x < 0 {
		x = 0
	} else if x >= ref.W {
		x = ref.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= ref.H {
		y = ref.H - 1
	}
	return ref.Pix[y*ref.W+x]
}

func clampAdd(base uint8, delta float64) uint8 {
	v := float64(base) + delta
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return uint8(v + 0.5)
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Decoder reconstructs frames from EncodedFrames. Frames must be fed in
// encode order; a missing reference is reported so the caller can request a
// key frame.
type Decoder struct {
	cfg Config
	ref *frame.Frame // padded dims
}

// NewDecoder returns a decoder for the stream configuration.
func NewDecoder(cfg Config) *Decoder { return &Decoder{cfg: cfg} }

// Reset drops the reference frame (e.g. after packet loss).
func (d *Decoder) Reset() { d.ref = nil }

// Decode reconstructs one frame.
func (d *Decoder) Decode(ef *EncodedFrame) (*frame.Frame, error) {
	r := newBitReader(ef.Data)
	keyBit, err := r.readBit()
	if err != nil {
		return nil, err
	}
	key := keyBit == 1
	qpBits, err := r.readBits(6)
	if err != nil {
		return nil, err
	}
	qp := int(qpBits)
	if !key && d.ref == nil {
		return nil, fmt.Errorf("codec: inter frame %d without reference", ef.Seq)
	}

	pw, ph := padTo8(d.cfg.W), padTo8(d.cfg.H)
	recon := frame.New(pw, ph)
	var blk, freq [64]float64
	var prevMVX, prevMVY int

	for by := 0; by < ph; by += blockSize {
		prevMVX, prevMVY = 0, 0
		for bx := 0; bx < pw; bx += blockSize {
			intra := key
			if !key {
				m, err := r.readBit()
				if err != nil {
					return nil, err
				}
				intra = m == 1
			}
			if intra {
				pred := dcPrediction(recon, bx, by)
				if err := decodeBlock(r, &blk, &freq, d.cfg.Profile, qp); err != nil {
					return nil, err
				}
				for y := 0; y < blockSize; y++ {
					for x := 0; x < blockSize; x++ {
						recon.Pix[(by+y)*pw+bx+x] = clampAdd(uint8(pred), blk[y*blockSize+x])
					}
				}
				if !key {
					prevMVX, prevMVY = 0, 0
				}
				continue
			}
			dx, err := r.readSE()
			if err != nil {
				return nil, err
			}
			dy, err := r.readSE()
			if err != nil {
				return nil, err
			}
			mvx, mvy := prevMVX+int(dx), prevMVY+int(dy)
			prevMVX, prevMVY = mvx, mvy
			if err := decodeBlock(r, &blk, &freq, d.cfg.Profile, qp); err != nil {
				return nil, err
			}
			for y := 0; y < blockSize; y++ {
				for x := 0; x < blockSize; x++ {
					pred := refSample(d.ref, bx+x+mvx, by+y+mvy)
					recon.Pix[(by+y)*pw+bx+x] = clampAdd(pred, blk[y*blockSize+x])
				}
			}
		}
	}
	if d.cfg.Deblock {
		deblockFrame(recon, qp)
	}
	d.ref = recon
	return recon.Crop(0, 0, d.cfg.W, d.cfg.H), nil
}

// decodeBlock entropy-decodes one block and leaves the dequantised spatial
// residual in blk.
func decodeBlock(r *bitReader, blk, freq *[64]float64, p Profile, qp int) error {
	nnz, err := r.readUE()
	if err != nil {
		return err
	}
	if nnz > 64 {
		return errBitstream
	}
	var q [64]int32
	scan := 0
	for i := uint32(0); i < nnz; i++ {
		run, err := r.readUE()
		if err != nil {
			return err
		}
		scan += int(run)
		if scan >= 64 {
			return errBitstream
		}
		lvl, err := r.readSE()
		if err != nil {
			return err
		}
		q[zigzag[scan]] = lvl
		scan++
	}
	for i := 0; i < 64; i++ {
		freq[i] = float64(q[i]) * quantStep(p, qp, i)
	}
	idct8(freq, blk)
	return nil
}
