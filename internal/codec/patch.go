package codec

import (
	"encoding/binary"
	"errors"

	"livenas/internal/frame"
)

// Patch compression (§5.2 "Patch encoding and transmission"): LiveNAS sends
// high-quality training labels as JPEG-compressed crops at quality 95, ~1/10
// the raw size with <0.1 dB training impact. We implement the equivalent:
// standalone intra coding of the patch at a quality-mapped QP, with a small
// header carrying the dimensions.

// PatchQuality is the paper's default JPEG quality level for patches.
const PatchQuality = 95

// qualityToQP maps a JPEG-style quality level (1..100, higher = better) to
// our QP scale. Quality 95 lands near-transparent; quality 50 mid-range.
func qualityToQP(quality int) int {
	if quality < 1 {
		quality = 1
	}
	if quality > 100 {
		quality = 100
	}
	qp := (100 - quality) * MaxQP / 100
	return min(MaxQP, max(MinQP, qp))
}

// EncodePatch compresses a raw patch at the given quality level (1..100).
// The payload is self-contained and decodable with DecodePatch.
func EncodePatch(p *frame.Frame, quality int) []byte {
	qp := qualityToQP(quality)
	enc := NewEncoder(Config{Profile: BX9, W: p.W, H: p.H})
	enc.qp = qp
	padded := padFrame(p)
	data, _ := enc.encodeOnce(padded, true, qp)
	hdr := make([]byte, 4)
	binary.BigEndian.PutUint16(hdr[0:2], uint16(p.W))
	binary.BigEndian.PutUint16(hdr[2:4], uint16(p.H))
	return append(hdr, data...)
}

// errPatch reports a malformed patch payload.
var errPatch = errors.New("codec: malformed patch payload")

// DecodePatch reconstructs a patch produced by EncodePatch.
func DecodePatch(data []byte) (*frame.Frame, error) {
	if len(data) < 5 {
		return nil, errPatch
	}
	w := int(binary.BigEndian.Uint16(data[0:2]))
	h := int(binary.BigEndian.Uint16(data[2:4]))
	if w == 0 || h == 0 || w > 1<<14 || h > 1<<14 {
		return nil, errPatch
	}
	dec := NewDecoder(Config{Profile: BX9, W: w, H: h})
	return dec.Decode(&EncodedFrame{Data: data[4:], Key: true})
}
