// Package codec implements the block-transform video codec that stands in
// for VP8/VP9 in this reproduction (profiles BX8 and BX9, see DESIGN.md).
//
// It is a real codec, not a model: frames are transformed (8x8 DCT),
// quantised, entropy-coded into a decodable bitstream (zig-zag run/level
// coding with exponential-Golomb codes), and reconstructed through the same
// loop the encoder uses for motion-compensated prediction. Rate control
// adapts the quantisation parameter to a target bitrate, which yields the
// concave bitrate-to-quality curves LiveNAS's quality-optimizing scheduler
// relies on (§5.1, Figure 6).
package codec

import (
	"errors"
	"math/bits"
)

// bitWriter accumulates a most-significant-bit-first bitstream.
type bitWriter struct {
	buf  []byte
	acc  uint64
	nAcc uint
}

func (w *bitWriter) writeBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	w.acc = w.acc<<n | (v & (1<<n - 1))
	w.nAcc += n
	for w.nAcc >= 8 {
		w.nAcc -= 8
		w.buf = append(w.buf, byte(w.acc>>w.nAcc))
	}
}

func (w *bitWriter) writeBit(b uint64) { w.writeBits(b, 1) }

// writeUE writes an unsigned exponential-Golomb code.
func (w *bitWriter) writeUE(v uint32) {
	x := uint64(v) + 1
	n := uint(bits.Len64(x))
	w.writeBits(0, n-1) // n-1 leading zeros
	w.writeBits(x, n)
}

// writeSE writes a signed exponential-Golomb code (0, 1, -1, 2, -2, ...).
func (w *bitWriter) writeSE(v int32) {
	var u uint32
	if v > 0 {
		u = uint32(2*v - 1)
	} else {
		u = uint32(-2 * v)
	}
	w.writeUE(u)
}

// finish flushes any partial byte and returns the stream.
func (w *bitWriter) finish() []byte {
	if w.nAcc > 0 {
		w.buf = append(w.buf, byte(w.acc<<(8-w.nAcc)))
		w.nAcc = 0
		w.acc = 0
	}
	return w.buf
}

// bitLen returns the current length of the stream in bits.
func (w *bitWriter) bitLen() int { return len(w.buf)*8 + int(w.nAcc) }

// errBitstream reports a truncated or corrupt bitstream.
var errBitstream = errors.New("codec: corrupt bitstream")

// bitReader consumes a bitstream produced by bitWriter.
type bitReader struct {
	buf []byte
	pos int // next byte
	acc uint64
	n   uint
}

func newBitReader(b []byte) *bitReader { return &bitReader{buf: b} }

func (r *bitReader) readBits(n uint) (uint64, error) {
	// The accumulator refills in whole bytes, so it can hold at most
	// n+7 <= 63 bits during a read; larger requests would silently drop
	// high bits. No codec symbol is wider than 33 bits (readUE).
	if n > 56 {
		return 0, errBitstream
	}
	for r.n < n {
		if r.pos >= len(r.buf) {
			return 0, errBitstream
		}
		r.acc = r.acc<<8 | uint64(r.buf[r.pos])
		r.pos++
		r.n += 8
	}
	r.n -= n
	v := (r.acc >> r.n) & (1<<n - 1)
	return v, nil
}

func (r *bitReader) readBit() (uint64, error) { return r.readBits(1) }

func (r *bitReader) readUE() (uint32, error) {
	var zeros uint
	for {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		zeros++
		if zeros > 32 {
			return 0, errBitstream
		}
	}
	rest, err := r.readBits(zeros)
	if err != nil {
		return 0, err
	}
	return uint32(1<<zeros|rest) - 1, nil
}

func (r *bitReader) readSE() (int32, error) {
	u, err := r.readUE()
	if err != nil {
		return 0, err
	}
	if u%2 == 1 {
		return int32(u/2) + 1, nil
	}
	return -int32(u / 2), nil
}
