package codec

import (
	"bytes"
	"testing"
)

// FuzzBitReader exercises the entropy-coding layer both ways. Phase 1
// interprets the fuzz input as a script of write operations, encodes them
// with bitWriter, and requires the bitReader to return every value exactly.
// Phase 2 points a reader at the raw fuzz bytes and drains it with the same
// op script: every read must return a value or errBitstream — never panic,
// never loop forever.
func FuzzBitReader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x02, 0x03, 0x10, 0x20, 0x40, 0x80})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(bytes.Repeat([]byte{0x00}, 16)) // long zero runs stress readUE
	{
		// A genuine stream: values 0..7 as UE then as SE.
		var w bitWriter
		for i := 0; i < 8; i++ {
			w.writeUE(uint32(i))
			w.writeSE(int32(i - 4))
		}
		f.Add(w.finish())
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Phase 1: write/read round trip driven by the input script. Each
		// input byte picks an op and a value; values are widened with the
		// byte's position so multi-byte symbols appear too.
		type op struct {
			kind int // 0 = raw bits, 1 = UE, 2 = SE
			v    uint64
			n    uint
		}
		var script []op
		for i, b := range data {
			o := op{kind: int(b % 3)}
			raw := uint64(b)<<24 | uint64(i*2654435761)&0xFFFFFF
			switch o.kind {
			case 0:
				o.n = uint(b%32) + 1
				o.v = raw & (1<<o.n - 1)
			case 1:
				o.v = raw & 0x7FFFFFFF
			case 2:
				o.v = raw & 0xFFFF // keeps 2*v within int32
			}
			script = append(script, o)
		}

		var w bitWriter
		for _, o := range script {
			switch o.kind {
			case 0:
				w.writeBits(o.v, o.n)
			case 1:
				w.writeUE(uint32(o.v))
			case 2:
				w.writeSE(int32(o.v) - 0x8000)
			}
		}
		r := newBitReader(w.finish())
		for i, o := range script {
			switch o.kind {
			case 0:
				got, err := r.readBits(o.n)
				if err != nil {
					t.Fatalf("op %d: readBits(%d): %v", i, o.n, err)
				}
				if got != o.v {
					t.Fatalf("op %d: readBits(%d) = %d, want %d", i, o.n, got, o.v)
				}
			case 1:
				got, err := r.readUE()
				if err != nil {
					t.Fatalf("op %d: readUE: %v", i, err)
				}
				if got != uint32(o.v) {
					t.Fatalf("op %d: readUE = %d, want %d", i, got, o.v)
				}
			case 2:
				want := int32(o.v) - 0x8000
				got, err := r.readSE()
				if err != nil {
					t.Fatalf("op %d: readSE: %v", i, err)
				}
				if got != want {
					t.Fatalf("op %d: readSE = %d, want %d", i, got, want)
				}
			}
		}

		// Phase 2: the raw fuzz bytes as an adversarial bitstream. Reads
		// must fail cleanly on corrupt input; stop at the first error.
		r = newBitReader(data)
		for _, o := range script {
			var err error
			switch o.kind {
			case 0:
				_, err = r.readBits(o.n)
			case 1:
				_, err = r.readUE()
			case 2:
				_, err = r.readSE()
			}
			if err != nil {
				break
			}
		}
	})
}
