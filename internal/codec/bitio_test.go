package codec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitWriterReadBack(t *testing.T) {
	w := &bitWriter{}
	w.writeBit(1)
	w.writeBits(0b1011, 4)
	w.writeBits(0xDEAD, 16)
	data := w.finish()
	r := newBitReader(data)
	if b, _ := r.readBit(); b != 1 {
		t.Fatal("bit 1")
	}
	if v, _ := r.readBits(4); v != 0b1011 {
		t.Fatalf("nibble %b", v)
	}
	if v, _ := r.readBits(16); v != 0xDEAD {
		t.Fatalf("word %x", v)
	}
}

func TestBitLen(t *testing.T) {
	w := &bitWriter{}
	w.writeBits(0, 13)
	if w.bitLen() != 13 {
		t.Fatalf("bitLen=%d", w.bitLen())
	}
	w.finish()
	if len(w.buf) != 2 {
		t.Fatalf("finish padded to %d bytes", len(w.buf))
	}
}

func TestUEKnownCodes(t *testing.T) {
	// Exp-Golomb: 0 -> "1", 1 -> "010", 2 -> "011", 3 -> "00100".
	w := &bitWriter{}
	w.writeUE(0)
	w.writeUE(1)
	w.writeUE(2)
	w.writeUE(3)
	r := newBitReader(w.finish())
	for want := uint32(0); want < 4; want++ {
		got, err := r.readUE()
		if err != nil || got != want {
			t.Fatalf("readUE=%d,%v want %d", got, err, want)
		}
	}
}

func TestSERoundTrip(t *testing.T) {
	vals := []int32{0, 1, -1, 2, -2, 17, -300, 1 << 20, -(1 << 20)}
	w := &bitWriter{}
	for _, v := range vals {
		w.writeSE(v)
	}
	r := newBitReader(w.finish())
	for _, want := range vals {
		got, err := r.readSE()
		if err != nil || got != want {
			t.Fatalf("readSE=%d,%v want %d", got, err, want)
		}
	}
}

func TestReadPastEnd(t *testing.T) {
	r := newBitReader([]byte{0xFF})
	if _, err := r.readBits(16); err == nil {
		t.Fatal("expected error reading past end")
	}
}

func TestCorruptUE(t *testing.T) {
	// All zeros: leading-zero run never terminates within the stream.
	r := newBitReader(make([]byte, 8))
	if _, err := r.readUE(); err == nil {
		t.Fatal("expected error for unterminated UE")
	}
}

func TestQuickUERoundTrip(t *testing.T) {
	f := func(vals []uint32) bool {
		w := &bitWriter{}
		for _, v := range vals {
			w.writeUE(v % (1 << 30))
		}
		r := newBitReader(w.finish())
		for _, v := range vals {
			got, err := r.readUE()
			if err != nil || got != v%(1<<30) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMixedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 50; trial++ {
		type op struct {
			kind int
			u    uint64
			n    uint
			s    int32
		}
		var ops []op
		w := &bitWriter{}
		for i := 0; i < 200; i++ {
			switch rng.Intn(3) {
			case 0:
				n := uint(rng.Intn(32) + 1)
				v := rng.Uint64() & (1<<n - 1)
				ops = append(ops, op{kind: 0, u: v, n: n})
				w.writeBits(v, n)
			case 1:
				v := uint32(rng.Intn(1 << 16))
				ops = append(ops, op{kind: 1, u: uint64(v)})
				w.writeUE(v)
			default:
				v := int32(rng.Intn(1<<15) - 1<<14)
				ops = append(ops, op{kind: 2, s: v})
				w.writeSE(v)
			}
		}
		r := newBitReader(w.finish())
		for i, o := range ops {
			switch o.kind {
			case 0:
				got, err := r.readBits(o.n)
				if err != nil || got != o.u {
					t.Fatalf("trial %d op %d bits: got %d err %v", trial, i, got, err)
				}
			case 1:
				got, err := r.readUE()
				if err != nil || uint64(got) != o.u {
					t.Fatalf("trial %d op %d ue: got %d err %v", trial, i, got, err)
				}
			default:
				got, err := r.readSE()
				if err != nil || got != o.s {
					t.Fatalf("trial %d op %d se: got %d err %v", trial, i, got, err)
				}
			}
		}
	}
}
