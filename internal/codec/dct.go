package codec

import "math"

// blockSize is the transform block size (8x8, as in JPEG/VP8's core).
const blockSize = 8

// dctBasis holds the 8-point DCT-II basis, basis[k][n] = c(k)*cos((2n+1)kπ/16).
var dctBasis [blockSize][blockSize]float64

func init() {
	for k := 0; k < blockSize; k++ {
		c := math.Sqrt(2.0 / blockSize)
		if k == 0 {
			c = math.Sqrt(1.0 / blockSize)
		}
		for n := 0; n < blockSize; n++ {
			dctBasis[k][n] = c * math.Cos(float64(2*n+1)*float64(k)*math.Pi/(2*blockSize))
		}
	}
}

// fdct8 applies a separable forward 8x8 DCT-II in place-ish: src (spatial,
// row-major, 64 samples) to dst (frequency).
func fdct8(src, dst *[64]float64) {
	var tmp [64]float64
	// Rows.
	for y := 0; y < 8; y++ {
		for k := 0; k < 8; k++ {
			var s float64
			for n := 0; n < 8; n++ {
				s += dctBasis[k][n] * src[y*8+n]
			}
			tmp[y*8+k] = s
		}
	}
	// Columns.
	for x := 0; x < 8; x++ {
		for k := 0; k < 8; k++ {
			var s float64
			for n := 0; n < 8; n++ {
				s += dctBasis[k][n] * tmp[n*8+x]
			}
			dst[k*8+x] = s
		}
	}
}

// idct8 applies the inverse 8x8 DCT (DCT-III) from frequency to spatial.
func idct8(src, dst *[64]float64) {
	var tmp [64]float64
	// Columns.
	for x := 0; x < 8; x++ {
		for n := 0; n < 8; n++ {
			var s float64
			for k := 0; k < 8; k++ {
				s += dctBasis[k][n] * src[k*8+x]
			}
			tmp[n*8+x] = s
		}
	}
	// Rows.
	for y := 0; y < 8; y++ {
		for n := 0; n < 8; n++ {
			var s float64
			for k := 0; k < 8; k++ {
				s += dctBasis[k][n] * tmp[y*8+k]
			}
			dst[y*8+n] = s
		}
	}
}

// zigzag maps scan order to raster position within an 8x8 block.
var zigzag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// baseQuant is the JPEG luminance quantisation matrix: the perceptual
// frequency weighting both profiles build on.
var baseQuant = [64]float64{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// MinQP and MaxQP bound the quantisation parameter (H.264-style scale).
const (
	MinQP = 0
	MaxQP = 51
)

// qpScale converts QP to a quantiser step multiplier; +6 QP doubles the step.
func qpScale(qp int) float64 {
	return 0.15 * math.Pow(2, float64(qp)/6.0)
}

// quantStep returns the quantisation step for coefficient index i (raster)
// at the given QP for a profile. BX9 flattens the high-frequency penalty
// (keeping more detail per bit), part of its rate-distortion edge.
func quantStep(p Profile, qp int, i int) float64 {
	q := baseQuant[i]
	if p == BX9 {
		q = 6 + (q-6)*0.8
	}
	return q * qpScale(qp)
}
