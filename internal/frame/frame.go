// Package frame provides the raw-video building blocks used throughout
// LiveNAS-Go: single-plane luminance frames, bilinear rescaling at arbitrary
// integer or fractional factors, cropping and pasting, and the fixed 120x120
// patch grid that the LiveNAS patch sampler (§5.2 of the paper) operates on.
//
// Frames are luma-only. Super-resolution networks in the NAS line train and
// evaluate on the luminance channel; PSNR/SSIM in our pipeline are therefore
// luma metrics, which matches the paper's methodology up to a constant.
package frame

import "fmt"

// PatchSize is the side length, in pixels, of a LiveNAS training patch
// (§5.2: "LiveNAS client sends training patches of size 120x120 pixels").
const PatchSize = 120

// Frame is a single-plane 8-bit luminance image. Pix holds W*H samples in
// row-major order. The zero value is an empty frame.
type Frame struct {
	W, H int
	Pix  []uint8
}

// New returns a zeroed (black) frame of the given dimensions.
func New(w, h int) *Frame {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("frame: negative dimensions %dx%d", w, h))
	}
	return &Frame{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the sample at (x, y). It performs no bounds checking beyond the
// slice's own; callers index within [0,W)x[0,H).
func (f *Frame) At(x, y int) uint8 { return f.Pix[y*f.W+x] }

// Set writes the sample at (x, y).
func (f *Frame) Set(x, y int, v uint8) { f.Pix[y*f.W+x] = v }

// Clone returns a deep copy of f.
func (f *Frame) Clone() *Frame {
	g := &Frame{W: f.W, H: f.H, Pix: make([]uint8, len(f.Pix))}
	copy(g.Pix, f.Pix)
	return g
}

// Bytes returns the raw (uncompressed) size of the frame in bytes.
func (f *Frame) Bytes() int { return len(f.Pix) }

// Crop returns a new frame holding the w x h region of f whose top-left
// corner is (x, y). The region is clipped to the frame bounds; samples
// outside f are zero.
func (f *Frame) Crop(x, y, w, h int) *Frame {
	out := New(w, h)
	for r := 0; r < h; r++ {
		sy := y + r
		if sy < 0 || sy >= f.H {
			continue
		}
		for c := 0; c < w; c++ {
			sx := x + c
			if sx < 0 || sx >= f.W {
				continue
			}
			out.Pix[r*w+c] = f.Pix[sy*f.W+sx]
		}
	}
	return out
}

// Paste copies src into f with src's top-left corner at (x, y), clipping to
// f's bounds.
func (f *Frame) Paste(src *Frame, x, y int) {
	for r := 0; r < src.H; r++ {
		dy := y + r
		if dy < 0 || dy >= f.H {
			continue
		}
		for c := 0; c < src.W; c++ {
			dx := x + c
			if dx < 0 || dx >= f.W {
				continue
			}
			f.Pix[dy*f.W+dx] = src.Pix[r*src.W+c]
		}
	}
}

// clamp8 converts a float sample to the [0,255] uint8 range.
func clamp8(v float64) uint8 {
	switch {
	case v <= 0:
		return 0
	case v >= 255:
		return 255
	default:
		return uint8(v + 0.5)
	}
}

// ResizeBilinear rescales f to w x h using bilinear interpolation with
// half-pixel-centred sample positions (the convention used by video scalers,
// so that down-then-up round trips are alignment-free). It is the "bilinear
// up-sampling" baseline the paper compares DNN super-resolution against.
func (f *Frame) ResizeBilinear(w, h int) *Frame {
	out := New(w, h)
	if f.W == 0 || f.H == 0 || w == 0 || h == 0 {
		return out
	}
	if w == f.W && h == f.H {
		copy(out.Pix, f.Pix)
		return out
	}
	xScale := float64(f.W) / float64(w)
	yScale := float64(f.H) / float64(h)
	for y := 0; y < h; y++ {
		srcY := (float64(y)+0.5)*yScale - 0.5
		y0 := int(srcY)
		if srcY < 0 {
			srcY, y0 = 0, 0
		}
		fy := srcY - float64(y0)
		y1 := y0 + 1
		if y1 >= f.H {
			y1 = f.H - 1
		}
		row0 := f.Pix[y0*f.W:]
		row1 := f.Pix[y1*f.W:]
		for x := 0; x < w; x++ {
			srcX := (float64(x)+0.5)*xScale - 0.5
			x0 := int(srcX)
			if srcX < 0 {
				srcX, x0 = 0, 0
			}
			fx := srcX - float64(x0)
			x1 := x0 + 1
			if x1 >= f.W {
				x1 = f.W - 1
			}
			top := float64(row0[x0])*(1-fx) + float64(row0[x1])*fx
			bot := float64(row1[x0])*(1-fx) + float64(row1[x1])*fx
			out.Pix[y*w+x] = clamp8(top*(1-fy) + bot*fy)
		}
	}
	return out
}

// Downscale returns f reduced by an integer factor using box averaging,
// emulating the camera-ISP downscale an ingest client performs before
// encoding at a sub-native resolution.
func (f *Frame) Downscale(factor int) *Frame {
	if factor <= 1 {
		return f.Clone()
	}
	w, h := f.W/factor, f.H/factor
	out := New(w, h)
	n := float64(factor * factor)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var sum float64
			for dy := 0; dy < factor; dy++ {
				row := f.Pix[(y*factor+dy)*f.W:]
				for dx := 0; dx < factor; dx++ {
					sum += float64(row[x*factor+dx])
				}
			}
			out.Pix[y*w+x] = clamp8(sum / n)
		}
	}
	return out
}

// GridCell identifies one cell of the non-overlapping patch grid laid over a
// frame (§5.2: "a 1080p frame is divided into 16x9 grid, where each cell is a
// 120x120 patch").
type GridCell struct {
	Col, Row int // grid coordinates
	X, Y     int // top-left pixel of the cell within the frame
}

// Grid returns the non-overlapping patch grid for a frame of dimensions
// w x h with the given cell size. Cells that would extend past the frame
// boundary are omitted, matching the paper's whole-cell grid.
func Grid(w, h, cell int) []GridCell {
	if cell <= 0 {
		return nil
	}
	cols, rows := w/cell, h/cell
	out := make([]GridCell, 0, cols*rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			out = append(out, GridCell{Col: c, Row: r, X: c * cell, Y: r * cell})
		}
	}
	return out
}

// Patch extracts the patch for grid cell g (cell x cell pixels) from f.
func Patch(f *Frame, g GridCell, cell int) *Frame {
	return f.Crop(g.X, g.Y, cell, cell)
}
