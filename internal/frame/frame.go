// Package frame provides the raw-video building blocks used throughout
// LiveNAS-Go: single-plane luminance frames, bilinear rescaling at arbitrary
// integer or fractional factors, cropping and pasting, and the fixed 120x120
// patch grid that the LiveNAS patch sampler (§5.2 of the paper) operates on.
//
// Frames are luma-only. Super-resolution networks in the NAS line train and
// evaluate on the luminance channel; PSNR/SSIM in our pipeline are therefore
// luma metrics, which matches the paper's methodology up to a constant.
package frame

import (
	"fmt"
	"sync"
)

// PatchSize is the side length, in pixels, of a LiveNAS training patch
// (§5.2: "LiveNAS client sends training patches of size 120x120 pixels").
const PatchSize = 120

// Frame is a single-plane 8-bit luminance image. Pix holds W*H samples in
// row-major order. The zero value is an empty frame.
type Frame struct {
	W, H int
	Pix  []uint8
}

// New returns a zeroed (black) frame of the given dimensions.
func New(w, h int) *Frame {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("frame: negative dimensions %dx%d", w, h))
	}
	return &Frame{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the sample at (x, y). It performs no bounds checking beyond the
// slice's own; callers index within [0,W)x[0,H).
func (f *Frame) At(x, y int) uint8 { return f.Pix[y*f.W+x] }

// Set writes the sample at (x, y).
func (f *Frame) Set(x, y int, v uint8) { f.Pix[y*f.W+x] = v }

// Clone returns a deep copy of f.
func (f *Frame) Clone() *Frame {
	g := &Frame{W: f.W, H: f.H, Pix: make([]uint8, len(f.Pix))}
	copy(g.Pix, f.Pix)
	return g
}

// Bytes returns the raw (uncompressed) size of the frame in bytes.
func (f *Frame) Bytes() int { return len(f.Pix) }

// Crop returns a new frame holding the w x h region of f whose top-left
// corner is (x, y). The region is clipped to the frame bounds; samples
// outside f are zero.
func (f *Frame) Crop(x, y, w, h int) *Frame {
	out := New(w, h)
	for r := 0; r < h; r++ {
		sy := y + r
		if sy < 0 || sy >= f.H {
			continue
		}
		for c := 0; c < w; c++ {
			sx := x + c
			if sx < 0 || sx >= f.W {
				continue
			}
			out.Pix[r*w+c] = f.Pix[sy*f.W+sx]
		}
	}
	return out
}

// Paste copies src into f with src's top-left corner at (x, y), clipping to
// f's bounds.
func (f *Frame) Paste(src *Frame, x, y int) {
	for r := 0; r < src.H; r++ {
		dy := y + r
		if dy < 0 || dy >= f.H {
			continue
		}
		for c := 0; c < src.W; c++ {
			dx := x + c
			if dx < 0 || dx >= f.W {
				continue
			}
			f.Pix[dy*f.W+dx] = src.Pix[r*src.W+c]
		}
	}
}

// clamp8 converts a float sample to the [0,255] uint8 range.
func clamp8(v float64) uint8 {
	switch {
	case v <= 0:
		return 0
	case v >= 255:
		return 255
	default:
		return uint8(v + 0.5)
	}
}

// resizeTabs is the per-call scratch of ResizeBilinear: one coefficient
// table per output column and per output row. The backing arrays are
// recycled through a sync.Pool so steady-state resizes (every frame, every
// patch) do not allocate; the coefficients themselves are recomputed per
// call with arithmetic identical to the original per-pixel computation, so
// outputs are bit-for-bit unchanged.
type resizeTabs struct {
	x0, x1 []int
	fx     []float64
	y0, y1 []int
	fy     []float64
}

var resizePool = sync.Pool{New: func() any { return new(resizeTabs) }}

func (t *resizeTabs) ensure(w, h int) {
	if cap(t.x0) < w {
		t.x0 = make([]int, w)
		t.x1 = make([]int, w)
		t.fx = make([]float64, w)
	}
	t.x0, t.x1, t.fx = t.x0[:w], t.x1[:w], t.fx[:w]
	if cap(t.y0) < h {
		t.y0 = make([]int, h)
		t.y1 = make([]int, h)
		t.fy = make([]float64, h)
	}
	t.y0, t.y1, t.fy = t.y0[:h], t.y1[:h], t.fy[:h]
}

// fillAxis computes the half-pixel-centred source index pair and blend
// fraction for each of n output positions along an axis of srcN samples.
func fillAxis(i0, i1 []int, fr []float64, n, srcN int) {
	scale := float64(srcN) / float64(n)
	for i := 0; i < n; i++ {
		src := (float64(i)+0.5)*scale - 0.5
		p0 := int(src)
		if src < 0 {
			src, p0 = 0, 0
		}
		fr[i] = src - float64(p0)
		p1 := p0 + 1
		if p1 >= srcN {
			p1 = srcN - 1
		}
		i0[i], i1[i] = p0, p1
	}
}

// ResizeBilinear rescales f to w x h using bilinear interpolation with
// half-pixel-centred sample positions (the convention used by video scalers,
// so that down-then-up round trips are alignment-free). It is the "bilinear
// up-sampling" baseline the paper compares DNN super-resolution against.
//
// Source indices and blend fractions are precomputed once per output row
// and column instead of once per pixel, so the inner loop is three fused
// lerps over table lookups.
func (f *Frame) ResizeBilinear(w, h int) *Frame {
	out := New(w, h)
	if f.W == 0 || f.H == 0 || w == 0 || h == 0 {
		return out
	}
	if w == f.W && h == f.H {
		copy(out.Pix, f.Pix)
		return out
	}
	t := resizePool.Get().(*resizeTabs)
	t.ensure(w, h)
	fillAxis(t.x0, t.x1, t.fx, w, f.W)
	fillAxis(t.y0, t.y1, t.fy, h, f.H)
	for y := 0; y < h; y++ {
		row0 := f.Pix[t.y0[y]*f.W:]
		row1 := f.Pix[t.y1[y]*f.W:]
		fy := t.fy[y]
		orow := out.Pix[y*w : y*w+w]
		for x := range orow {
			x0, x1, fx := t.x0[x], t.x1[x], t.fx[x]
			top := float64(row0[x0])*(1-fx) + float64(row0[x1])*fx
			bot := float64(row1[x0])*(1-fx) + float64(row1[x1])*fx
			orow[x] = clamp8(top*(1-fy) + bot*fy)
		}
	}
	resizePool.Put(t)
	return out
}

// Downscale returns f reduced by an integer factor using box averaging,
// emulating the camera-ISP downscale an ingest client performs before
// encoding at a sub-native resolution.
func (f *Frame) Downscale(factor int) *Frame {
	if factor <= 1 {
		return f.Clone()
	}
	w, h := f.W/factor, f.H/factor
	out := New(w, h)
	n := float64(factor * factor)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var sum float64
			for dy := 0; dy < factor; dy++ {
				row := f.Pix[(y*factor+dy)*f.W:]
				for dx := 0; dx < factor; dx++ {
					sum += float64(row[x*factor+dx])
				}
			}
			out.Pix[y*w+x] = clamp8(sum / n)
		}
	}
	return out
}

// GridCell identifies one cell of the non-overlapping patch grid laid over a
// frame (§5.2: "a 1080p frame is divided into 16x9 grid, where each cell is a
// 120x120 patch").
type GridCell struct {
	Col, Row int // grid coordinates
	X, Y     int // top-left pixel of the cell within the frame
}

// Grid returns the non-overlapping patch grid for a frame of dimensions
// w x h with the given cell size. Cells that would extend past the frame
// boundary are omitted, matching the paper's whole-cell grid.
func Grid(w, h, cell int) []GridCell {
	if cell <= 0 {
		return nil
	}
	cols, rows := w/cell, h/cell
	out := make([]GridCell, 0, cols*rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			out = append(out, GridCell{Col: c, Row: r, X: c * cell, Y: r * cell})
		}
	}
	return out
}

// Patch extracts the patch for grid cell g (cell x cell pixels) from f.
func Patch(f *Frame, g GridCell, cell int) *Frame {
	return f.Crop(g.X, g.Y, cell, cell)
}
