package frame

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randFrame(rng *rand.Rand, w, h int) *Frame {
	f := New(w, h)
	for i := range f.Pix {
		f.Pix[i] = uint8(rng.Intn(256))
	}
	return f
}

func TestNewZeroed(t *testing.T) {
	f := New(7, 3)
	if f.W != 7 || f.H != 3 || len(f.Pix) != 21 {
		t.Fatalf("bad frame shape: %dx%d len=%d", f.W, f.H, len(f.Pix))
	}
	for i, v := range f.Pix {
		if v != 0 {
			t.Fatalf("pixel %d not zeroed: %d", i, v)
		}
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimensions")
		}
	}()
	New(-1, 4)
}

func TestAtSet(t *testing.T) {
	f := New(4, 4)
	f.Set(2, 3, 99)
	if got := f.At(2, 3); got != 99 {
		t.Fatalf("At(2,3)=%d want 99", got)
	}
	if f.Pix[3*4+2] != 99 {
		t.Fatal("Set wrote to the wrong index")
	}
}

func TestCloneIndependence(t *testing.T) {
	f := New(2, 2)
	f.Set(0, 0, 10)
	g := f.Clone()
	g.Set(0, 0, 20)
	if f.At(0, 0) != 10 {
		t.Fatal("Clone shares backing storage with original")
	}
	if g.At(0, 0) != 20 || g.W != 2 || g.H != 2 {
		t.Fatal("Clone did not copy contents")
	}
}

func TestCropInterior(t *testing.T) {
	f := New(8, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			f.Set(x, y, uint8(y*8+x))
		}
	}
	c := f.Crop(2, 3, 3, 2)
	if c.W != 3 || c.H != 2 {
		t.Fatalf("crop shape %dx%d", c.W, c.H)
	}
	for y := 0; y < 2; y++ {
		for x := 0; x < 3; x++ {
			want := uint8((y+3)*8 + (x + 2))
			if c.At(x, y) != want {
				t.Fatalf("crop(%d,%d)=%d want %d", x, y, c.At(x, y), want)
			}
		}
	}
}

func TestCropClipsOutside(t *testing.T) {
	f := New(4, 4)
	for i := range f.Pix {
		f.Pix[i] = 200
	}
	c := f.Crop(-2, -2, 4, 4)
	// Top-left 2x2 of the crop is outside the frame and must be zero.
	if c.At(0, 0) != 0 || c.At(1, 1) != 0 {
		t.Fatal("out-of-bounds crop area not zeroed")
	}
	if c.At(2, 2) != 200 || c.At(3, 3) != 200 {
		t.Fatal("in-bounds crop area not copied")
	}
}

func TestPasteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := randFrame(rng, 16, 12)
	region := f.Crop(5, 4, 6, 6)
	g := New(16, 12)
	g.Paste(region, 5, 4)
	for y := 0; y < 6; y++ {
		for x := 0; x < 6; x++ {
			if g.At(5+x, 4+y) != f.At(5+x, 4+y) {
				t.Fatalf("paste mismatch at (%d,%d)", x, y)
			}
		}
	}
}

func TestPasteClips(t *testing.T) {
	f := New(4, 4)
	src := New(4, 4)
	for i := range src.Pix {
		src.Pix[i] = 7
	}
	f.Paste(src, 2, 2) // half the source lands outside
	if f.At(3, 3) != 7 {
		t.Fatal("in-bounds paste missing")
	}
	if f.At(0, 0) != 0 {
		t.Fatal("paste disturbed untouched pixels")
	}
}

func TestResizeBilinearIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := randFrame(rng, 13, 9)
	g := f.ResizeBilinear(13, 9)
	for i := range f.Pix {
		if f.Pix[i] != g.Pix[i] {
			t.Fatal("identity resize changed pixels")
		}
	}
}

func TestResizeBilinearConstant(t *testing.T) {
	f := New(10, 10)
	for i := range f.Pix {
		f.Pix[i] = 123
	}
	g := f.ResizeBilinear(37, 23)
	for i, v := range g.Pix {
		if v != 123 {
			t.Fatalf("constant frame not preserved at %d: %d", i, v)
		}
	}
}

func TestResizeBilinearGradientMonotone(t *testing.T) {
	// A horizontal ramp must remain monotone non-decreasing after scaling.
	f := New(32, 4)
	for y := 0; y < 4; y++ {
		for x := 0; x < 32; x++ {
			f.Set(x, y, uint8(x*8))
		}
	}
	g := f.ResizeBilinear(96, 8)
	for y := 0; y < g.H; y++ {
		for x := 1; x < g.W; x++ {
			if g.At(x, y) < g.At(x-1, y) {
				t.Fatalf("ramp not monotone at (%d,%d)", x, y)
			}
		}
	}
}

func TestResizeBilinearZeroDims(t *testing.T) {
	f := New(4, 4)
	g := f.ResizeBilinear(0, 0)
	if g.W != 0 || g.H != 0 || len(g.Pix) != 0 {
		t.Fatal("zero-size resize should produce empty frame")
	}
}

func TestDownscaleBoxAverage(t *testing.T) {
	f := New(4, 4)
	// One 2x2 block of 100s, rest zero.
	f.Set(0, 0, 100)
	f.Set(1, 0, 100)
	f.Set(0, 1, 100)
	f.Set(1, 1, 100)
	g := f.Downscale(2)
	if g.W != 2 || g.H != 2 {
		t.Fatalf("downscale shape %dx%d", g.W, g.H)
	}
	if g.At(0, 0) != 100 {
		t.Fatalf("block average = %d want 100", g.At(0, 0))
	}
	if g.At(1, 1) != 0 {
		t.Fatal("zero block averaged wrong")
	}
}

func TestDownscaleFactorOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := randFrame(rng, 6, 6)
	g := f.Downscale(1)
	if &g.Pix[0] == &f.Pix[0] {
		t.Fatal("Downscale(1) must return a copy")
	}
	for i := range f.Pix {
		if f.Pix[i] != g.Pix[i] {
			t.Fatal("Downscale(1) changed pixels")
		}
	}
}

func TestGrid1080p(t *testing.T) {
	// §5.2: a 1080p frame divides into a 16x9 grid of 120x120 patches.
	cells := Grid(1920, 1080, PatchSize)
	if len(cells) != 16*9 {
		t.Fatalf("1080p grid has %d cells, want 144", len(cells))
	}
	last := cells[len(cells)-1]
	if last.X != 15*120 || last.Y != 8*120 {
		t.Fatalf("last cell at (%d,%d)", last.X, last.Y)
	}
}

func TestGridOmitsPartialCells(t *testing.T) {
	cells := Grid(250, 130, 120)
	if len(cells) != 2 { // 2 cols x 1 row
		t.Fatalf("got %d cells, want 2", len(cells))
	}
}

func TestGridZeroCell(t *testing.T) {
	if Grid(100, 100, 0) != nil {
		t.Fatal("zero cell size should yield nil grid")
	}
}

func TestPatchExtraction(t *testing.T) {
	f := New(240, 240)
	for y := 120; y < 240; y++ {
		for x := 120; x < 240; x++ {
			f.Set(x, y, 50)
		}
	}
	cells := Grid(240, 240, PatchSize)
	p := Patch(f, cells[3], PatchSize) // bottom-right cell
	for _, v := range p.Pix {
		if v != 50 {
			t.Fatal("patch content wrong")
		}
	}
}

// Property: resizing down then up never panics and preserves shape, and the
// result of any resize stays within [0,255] by construction of clamp8.
func TestQuickResizeShapes(t *testing.T) {
	f := func(seed int64, w, h uint8) bool {
		sw, sh := int(w%50)+1, int(h%50)+1
		rng := rand.New(rand.NewSource(seed))
		fr := randFrame(rng, sw, sh)
		up := fr.ResizeBilinear(sw*2, sh*2)
		down := up.ResizeBilinear(sw, sh)
		return up.W == sw*2 && up.H == sh*2 && down.W == sw && down.H == sh
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Crop followed by Paste at the same offset restores the region.
func TestQuickCropPaste(t *testing.T) {
	f := func(seed int64, xo, yo uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		fr := randFrame(rng, 40, 40)
		x, y := int(xo%30), int(yo%30)
		c := fr.Crop(x, y, 10, 10)
		g := fr.Clone()
		g.Paste(c, x, y)
		for i := range fr.Pix {
			if fr.Pix[i] != g.Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
