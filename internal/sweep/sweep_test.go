package sweep

import (
	"bytes"
	"context"
	"encoding/gob"
	"runtime"
	"testing"
	"time"

	"livenas/internal/core"
	"livenas/internal/trace"
	"livenas/internal/vidgen"
)

// testConfig is a reduced-scale session cheap enough to sweep in tests:
// the same 1/5-linear-resolution, x2-SR world the core suite uses.
func testConfig(cat vidgen.Category, seed int64) core.Config {
	return core.Config{
		Cat:           cat,
		Seed:          7,
		Native:        trace.Resolution{Name: "384x216", W: 384, H: 216},
		Ingest:        trace.Resolution{Name: "192x108", W: 192, H: 108},
		FPS:           10,
		Duration:      10 * time.Second,
		Trace:         trace.FCCUplink(seed, time.Minute, 250),
		Scheme:        core.SchemeLiveNAS,
		PatchSize:     24,
		MetricEvery:   2 * time.Second,
		Channels:      6,
		MinVideoKbps:  40,
		GCCInitKbps:   160,
		MTU:           240,
		StepKbps:      20,
		InitPatchKbps: 20,
		MinPatchKbps:  5,
	}
}

// encode canonicalizes a Results for bitwise comparison.
func encode(t *testing.T, r *core.Results) []byte {
	t.Helper()
	r.TrainerTimeline()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		t.Fatalf("encoding results: %v", err)
	}
	return buf.Bytes()
}

func sweepOnce(t *testing.T, workers int, cache *Cache) ([]*core.Results, Stats) {
	t.Helper()
	r := New(context.Background(), Options{Workers: workers, Cache: cache})
	r.GoGrid(Grid{
		Base:    testConfig(vidgen.JustChatting, 3),
		Schemes: []core.Scheme{core.SchemeWebRTC, core.SchemeLiveNAS},
		Traces:  []*trace.Trace{trace.FCCUplink(3, time.Minute, 250), trace.FCCUplink(4, time.Minute, 220)},
	})
	res, err := r.Collect()
	if err != nil {
		t.Fatalf("sweep failed: %v", err)
	}
	return res, r.Stats()
}

// TestDeterminismAcrossWorkers is the engine's core contract: a sweep's
// results are byte-identical whether sessions run serially or concurrently.
func TestDeterminismAcrossWorkers(t *testing.T) {
	serial, _ := sweepOnce(t, 1, nil)
	parallel, stats := sweepOnce(t, 8, nil)
	if len(serial) != 4 || len(parallel) != 4 {
		t.Fatalf("got %d/%d results, want 4", len(serial), len(parallel))
	}
	if stats.Executed != 4 {
		t.Fatalf("parallel sweep executed %d sessions, want 4", stats.Executed)
	}
	for i := range serial {
		if !bytes.Equal(encode(t, serial[i]), encode(t, parallel[i])) {
			t.Errorf("slot %d: workers=8 results differ from workers=1", i)
		}
	}
}

// TestMemoization: identical submissions share one execution and one slot
// value, preserving submission-order collection.
func TestMemoization(t *testing.T) {
	r := New(context.Background(), Options{Workers: 4})
	cfg := testConfig(vidgen.JustChatting, 5)
	cfg.Duration = 5 * time.Second
	h1 := r.Go(cfg)
	cfg.KernelWorkers = 3 // not part of the session's identity
	h2 := r.Go(cfg)
	if h1 != h2 {
		t.Fatal("identical canonical configs did not share a handle")
	}
	res, err := r.Collect()
	if err != nil {
		t.Fatalf("sweep failed: %v", err)
	}
	if len(res) != 2 || res[0] != res[1] {
		t.Fatalf("want the shared result in both submission slots, got %d slots", len(res))
	}
	if s := r.Stats(); s.Started != 1 || s.Executed != 1 {
		t.Fatalf("started=%d executed=%d, want 1/1", s.Started, s.Executed)
	}
}

// TestCacheRoundTrip: a second sweep over a warm cache executes zero new
// sessions and restores byte-identical results; entries from a different
// code version self-invalidate.
func TestCacheRoundTrip(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold, coldStats := sweepOnce(t, 4, cache)
	if coldStats.Cached != 0 || coldStats.Executed != 4 {
		t.Fatalf("cold sweep: cached=%d executed=%d, want 0/4", coldStats.Cached, coldStats.Executed)
	}
	if n := cache.Len(); n != 4 {
		t.Fatalf("cache holds %d entries, want 4", n)
	}

	warm, warmStats := sweepOnce(t, 4, cache)
	if warmStats.Executed != 0 || warmStats.Cached != 4 {
		t.Fatalf("warm sweep: cached=%d executed=%d, want 4/0", warmStats.Cached, warmStats.Executed)
	}
	for i := range cold {
		if !bytes.Equal(encode(t, cold[i]), encode(t, warm[i])) {
			t.Errorf("slot %d: cached results differ from live run", i)
		}
	}
	if tl := warm[1].TrainerTimeline(); len(tl) == 0 {
		t.Error("restored LiveNAS session lost its trainer timeline")
	}

	// A version bump must turn every entry into a miss (and clean it up).
	stale := &Cache{dir: cache.dir, version: cache.version + "-next"}
	if _, ok := stale.Get(firstKey(t, cache)); ok {
		t.Fatal("stale-version entry served as a hit")
	}
	if n := cache.Len(); n != 3 {
		t.Fatalf("stale entry not removed: cache holds %d entries, want 3", n)
	}
}

func firstKey(t *testing.T, c *Cache) string {
	t.Helper()
	key, err := ConfigKey(canonical(testConfig(vidgen.JustChatting, 3)))
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// TestConfigKeyIdentity: the cache key ignores live state (Telemetry,
// KernelWorkers via canonical) but tracks anything that changes results.
func TestConfigKeyIdentity(t *testing.T) {
	a := testConfig(vidgen.JustChatting, 3)
	b := a
	b.Duration = 0 // defaults to 60s, a real behavioral difference from a's 10s
	ka, err := ConfigKey(a)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := ConfigKey(b)
	if err != nil {
		t.Fatal(err)
	}
	if ka == kb {
		t.Fatal("different durations hashed to the same key")
	}
	c := a
	c.Telemetry = nil
	kc, _ := ConfigKey(c)
	if ka != kc {
		t.Fatal("telemetry pointer leaked into the cache key")
	}
	d := canonical(a)
	d.Seed = 8
	kd, _ := ConfigKey(d)
	if kd == ka {
		t.Fatal("seed change did not change the key")
	}
}

// TestCancellation: cancelling mid-sweep fails pending sessions promptly
// and leaks neither sweep goroutines nor kernel workers.
func TestCancellation(t *testing.T) {
	// Warm the shared kernel pool (and any lazy runtime machinery) so the
	// goroutine baseline below is the steady state.
	warm := testConfig(vidgen.JustChatting, 9)
	warm.Duration = 2 * time.Second
	warm.Scheme = core.SchemeLiveNAS
	if _, err := core.RunContext(context.Background(), warm); err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	r := New(ctx, Options{Workers: 2})
	var hs []*Handle
	for seed := int64(0); seed < 6; seed++ {
		cfg := testConfig(vidgen.JustChatting, 10+seed)
		cfg.Duration = 5 * time.Minute // far longer than the test: must be cut short
		hs = append(hs, r.Go(cfg))
	}
	time.Sleep(50 * time.Millisecond)
	cancel()

	done := make(chan struct{})
	var collectErr error
	go func() {
		defer close(done)
		_, collectErr = r.Collect()
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Collect did not return after cancellation")
	}
	if collectErr == nil {
		t.Fatal("cancelled sweep reported no error")
	}
	failed := 0
	for _, h := range hs {
		if _, err := h.Wait(); err != nil {
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("no session observed the cancellation")
	}
	if s := r.Stats(); s.Failed != failed {
		t.Fatalf("stats report %d failed, handles report %d", s.Failed, failed)
	}

	// All sweep goroutines must be gone; only the persistent shared kernel
	// pool (already in the baseline) may remain.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after cancellation: %d > baseline %d",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestGrid: cartesian expansion with deterministic ordering and implicit
// single points for empty axes.
func TestGrid(t *testing.T) {
	base := testConfig(vidgen.JustChatting, 3)
	g := Grid{
		Base:     base,
		Schemes:  []core.Scheme{core.SchemeWebRTC, core.SchemeLiveNAS},
		Policies: []core.TrainPolicy{core.TrainAdaptive, core.TrainContinuous, core.TrainOneTime},
	}
	if g.Size() != 6 {
		t.Fatalf("Size=%d, want 6", g.Size())
	}
	pts := g.Points()
	if len(pts) != 6 {
		t.Fatalf("%d points, want 6", len(pts))
	}
	// Schemes are the outer loop, policies the inner one.
	if pts[0].Scheme != core.SchemeWebRTC || pts[3].Scheme != core.SchemeLiveNAS {
		t.Error("scheme axis not outermost")
	}
	if pts[1].Policy != core.TrainContinuous {
		t.Error("policy axis not innermost")
	}
	for _, p := range pts {
		if p.Trace != base.Trace || p.Config.Cat != base.Cat {
			t.Error("empty axes must keep the base value")
		}
		if p.Config.Scheme != p.Scheme || p.Config.TrainPolicy != p.Policy {
			t.Error("point config does not match its axis values")
		}
	}
}
