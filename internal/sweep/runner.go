// Package sweep is the concurrent session engine behind the experiment
// harness: every figure of the paper's evaluation is a sweep of independent
// core.Run sessions (scheme comparisons, policy sweeps, per-trace grids),
// and this package runs them across a bounded worker set instead of one at
// a time, with content-addressed memoization and an optional on-disk
// session-result cache.
//
// Contracts:
//
//   - Per-session determinism. The engine never alters a session: configs
//     are canonicalized (Config.Defaulted, Telemetry stripped, kernel
//     workers routed to the shared pool) and handed to core.RunContext
//     unchanged, so a session's Results are bitwise identical to a serial
//     core.Run of the same config, for any worker count including 1.
//   - Deterministic ordering. Go returns a Handle immediately; handles
//     resolve in any order but Collect returns results in submission order,
//     so table generation is reproducible byte-for-byte for any Workers.
//   - Bounded kernel concurrency. Sessions submitted through the Runner
//     always use the process-wide nn.SharedPool (KernelWorkers is cleared),
//     capping total kernel workers at GOMAXPROCS across all concurrent
//     sessions rather than multiplying per session.
//   - Memoization. Two submissions with the same canonical config share one
//     execution (and one cache entry); the paper's figures re-run the same
//     WebRTC baseline for every scheme column, and the engine runs it once.
package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"livenas/internal/core"
	"livenas/internal/telemetry"
)

// Options configures a Runner.
type Options struct {
	// Workers bounds how many sessions execute concurrently; <= 0 means
	// GOMAXPROCS. Worker count is a throughput knob only: results and
	// result ordering are identical for any value.
	Workers int
	// Cache, when non-nil, persists session results keyed by canonical
	// config hash, so a re-run skips already-computed sessions.
	Cache *Cache
	// Telemetry receives the sweep's own metrics (sessions started /
	// finished / cached / failed, worker occupancy) and per-session events.
	// Nil installs a fresh registry; Stats works either way.
	Telemetry *telemetry.Registry
}

// Runner executes ingest sessions across a bounded worker set. Create with
// New, submit with Go (or GoGrid), harvest with Handle.Wait or Collect.
// Submission (Go, GoGrid, Collect) is meant for a single orchestrating
// goroutine; the concurrency lives in the workers underneath.
type Runner struct {
	ctx     context.Context
	workers int
	cache   *Cache
	sem     chan struct{}
	wg      sync.WaitGroup

	mu       sync.Mutex
	inflight map[string]*Handle // canonical config key -> shared handle
	order    []*Handle          // submission order, duplicates included

	startedAt time.Time
	busy      atomic.Int64
	submitted atomic.Int64
	started   atomic.Int64
	finished  atomic.Int64
	cached    atomic.Int64
	failed    atomic.Int64
	simGPU    atomic.Int64 // cumulative Results.GPUTrainBusy, ns

	reg       *telemetry.Registry
	mStarted  *telemetry.Counter
	mFinished *telemetry.Counter
	mCached   *telemetry.Counter
	mFailed   *telemetry.Counter
	gBusy     *telemetry.Gauge
}

// Handle is one submitted session. Wait blocks until the session has run
// (or been served from cache / shared with an identical earlier submission)
// and returns its results.
type Handle struct {
	key    string
	done   chan struct{}
	res    *core.Results
	err    error
	cached bool
}

// Wait blocks until the session completes and returns its results. The
// error is non-nil when the config was invalid or the sweep's context was
// cancelled before the session finished.
//
//livenas:allow context-propagation bounded wait: h.done is closed on every worker exit path, and workers observe r.ctx (admission select + core.RunContext), so cancellation resolves the handle
func (h *Handle) Wait() (*core.Results, error) {
	<-h.done
	return h.res, h.err
}

// Cached reports whether the result was served from the persisted cache
// (not merely memoized in-process). Only meaningful after Wait.
//
//livenas:allow context-propagation bounded wait: same h.done discipline as Wait — cancellation resolves the handle
func (h *Handle) Cached() bool {
	<-h.done
	return h.cached
}

// New returns a Runner whose sessions run under ctx: cancelling it aborts
// in-flight sessions at simulator-event boundaries and fails pending ones.
func New(ctx context.Context, o Options) *Runner {
	if ctx == nil {
		ctx = context.Background()
	}
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	reg := o.Telemetry
	if reg == nil {
		reg = telemetry.New()
	}
	r := &Runner{
		ctx:       ctx,
		workers:   w,
		cache:     o.Cache,
		sem:       make(chan struct{}, w),
		inflight:  map[string]*Handle{},
		startedAt: time.Now(), //livenas:allow determinism-taint sweep telemetry measures real wall time; it never feeds session Results
		reg:       reg,
		mStarted:  reg.Counter("sweep_sessions_started"),
		mFinished: reg.Counter("sweep_sessions_finished"),
		mCached:   reg.Counter("sweep_sessions_cached"),
		mFailed:   reg.Counter("sweep_sessions_failed"),
		gBusy:     reg.Gauge("sweep_workers_busy"),
	}
	reg.Gauge("sweep_workers").Set(float64(w))
	return r
}

// Workers reports the concurrency bound the runner was created with.
func (r *Runner) Workers() int { return r.workers }

// Telemetry returns the sweep's own registry (not any session's).
func (r *Runner) Telemetry() *telemetry.Registry { return r.reg }

// canonical normalizes a config to its sweep identity: defaults applied, no
// caller registry (every session records into a fresh one of its own), and
// kernel work routed to the process-wide shared pool so total kernel
// workers stay capped at GOMAXPROCS across concurrent sessions.
func canonical(cfg core.Config) core.Config {
	cfg = cfg.Defaulted()
	cfg.Telemetry = nil
	cfg.KernelWorkers = 0
	return cfg
}

// Go submits one session and returns its handle immediately. Submissions
// with the same canonical config (Config.Defaulted, ignoring Telemetry and
// KernelWorkers) share a single execution and return the same handle.
//
//livenas:allow context-propagation bounded wait: worker admission selects on r.ctx.Done, and the deferred <-r.sem returns a token the worker itself holds in a buffered channel
func (r *Runner) Go(cfg core.Config) *Handle {
	r.submitted.Add(1)
	cfg = canonical(cfg)
	key, err := ConfigKey(cfg)
	if err != nil {
		// Un-hashable config: resolve the handle with the error without
		// consuming a worker. (Does not happen for well-formed configs.)
		h := &Handle{done: make(chan struct{}), err: err}
		close(h.done)
		r.admit("", h)
		return h
	}

	h, fresh := r.admit(key, nil)
	if !fresh {
		return h
	}

	r.started.Add(1)
	r.mStarted.Inc()
	r.wg.Add(1)
	// Joined by Collect via r.wg; completion is also signalled per-handle
	// through h.done for Handle.Wait.
	go func() {
		defer r.wg.Done()
		defer close(h.done)
		select {
		case r.sem <- struct{}{}:
		case <-r.ctx.Done():
			h.err = r.ctx.Err()
			r.failed.Add(1)
			r.mFailed.Inc()
			return
		}
		r.gBusy.Set(float64(r.busy.Add(1)))
		defer func() {
			r.gBusy.Set(float64(r.busy.Add(-1)))
			<-r.sem
		}()
		r.runSession(h, cfg)
	}()
	return h
}

// admit records one submission in order. With a non-empty key it memoizes:
// an in-flight handle for the same key is reused (fresh=false); otherwise a
// new keyed handle (or the supplied pre-resolved one) takes the slot.
func (r *Runner) admit(key string, h *Handle) (*Handle, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if key != "" {
		if prev, ok := r.inflight[key]; ok {
			r.order = append(r.order, prev)
			return prev, false
		}
		h = &Handle{key: key, done: make(chan struct{})}
		r.inflight[key] = h
	}
	r.order = append(r.order, h)
	return h, true
}

// runSession resolves one handle: persisted cache first, live run on miss.
func (r *Runner) runSession(h *Handle, cfg core.Config) {
	t0 := time.Now() //livenas:allow determinism-taint wall_ms telemetry only; session Results come from the deterministic simulator clock
	if res, ok := r.cache.Get(h.key); ok {
		h.res, h.cached = res, true
		r.cached.Add(1)
		r.mCached.Inc()
		r.finishSession(h, t0)
		return
	}
	h.res, h.err = core.RunContext(r.ctx, cfg)
	if h.err != nil {
		r.failed.Add(1)
		r.mFailed.Inc()
		return
	}
	if err := r.cache.Put(h.key, h.res); err != nil {
		// A cache write failure degrades to a cold cache, never fails the
		// sweep; record it so the operator can see the cache is inert.
		r.reg.Counter("sweep_cache_write_errors").Inc()
	}
	r.finishSession(h, t0)
}

// finishSession accounts a successfully resolved session.
//
//livenas:allow determinism-taint emits wall-clock sweep telemetry (wall_ms, uptime); session Results are untouched
func (r *Runner) finishSession(h *Handle, t0 time.Time) {
	r.finished.Add(1)
	r.mFinished.Inc()
	r.simGPU.Add(int64(h.res.GPUTrainBusy))
	r.reg.Emit(time.Since(r.startedAt), "sweep_session",
		telemetry.Str("key", h.key[:12]),
		telemetry.Str("scheme", h.res.Cfg.Scheme.String()),
		telemetry.Num("cached", b2f(h.cached)),
		telemetry.Num("wall_ms", float64(time.Since(t0))/float64(time.Millisecond)),
		telemetry.Num("sim_gpu_ms", float64(h.res.GPUTrainBusy)/float64(time.Millisecond)),
	)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Collect waits for every submitted session and returns their results in
// submission order (a memoized duplicate submission occupies its slot with
// the shared result). The error is the first submission's failure, if any;
// results of successful sessions are returned either way.
//
//livenas:allow context-propagation bounded wait: every session goroutine selects on r.ctx.Done at admission and runs under core.RunContext(r.ctx), so cancelling r.ctx drains r.wg
func (r *Runner) Collect() ([]*core.Results, error) {
	r.wg.Wait()
	order := r.snapshot()
	out := make([]*core.Results, len(order))
	var firstErr error
	for i, h := range order {
		res, err := h.Wait()
		out[i] = res
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return out, firstErr
}

// snapshot copies the submission order.
func (r *Runner) snapshot() []*Handle {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Handle(nil), r.order...)
}

// Stats is a point-in-time digest of the sweep: how many sessions ran,
// how many came from cache, and wall-clock versus cumulative simulated GPU
// training time (the "harness leverage" — how much simulated work the
// machine produced per wall second).
type Stats struct {
	Workers   int
	Submitted int // Go calls, memoized duplicates included
	Started   int // sessions submitted for execution (memoized dupes excluded)
	Finished  int // resolved successfully (cache hits included)
	Cached    int // resolved from the persisted cache
	Failed    int // invalid config or cancelled
	Executed  int // actually simulated: Finished - Cached
	Wall      time.Duration
	SimGPU    time.Duration // cumulative Results.GPUTrainBusy across sessions
}

// Stats returns the sweep's current counters.
//
//livenas:allow determinism-taint Stats.Wall is operator-facing wall time; it never feeds session Results
func (r *Runner) Stats() Stats {
	fin := int(r.finished.Load())
	cach := int(r.cached.Load())
	return Stats{
		Workers:   r.workers,
		Submitted: int(r.submitted.Load()),
		Started:   int(r.started.Load()),
		Finished:  fin,
		Cached:    cach,
		Failed:    int(r.failed.Load()),
		Executed:  fin - cach,
		Wall:      time.Since(r.startedAt),
		SimGPU:    time.Duration(r.simGPU.Load()),
	}
}
