package sweep

import (
	"livenas/internal/core"
	"livenas/internal/trace"
	"livenas/internal/vidgen"
)

// Grid declares a cartesian sweep over the independent axes the paper's
// evaluation varies: system scheme, content category, network trace and
// training policy. Base supplies every field the grid doesn't vary; a nil
// or empty axis keeps Base's value for that field (it contributes a single
// implicit point, not zero).
type Grid struct {
	Base     core.Config
	Schemes  []core.Scheme
	Contents []vidgen.Category
	Traces   []*trace.Trace
	Policies []core.TrainPolicy
}

// Point is one cell of a Grid: the axis values plus the fully assembled
// session config.
type Point struct {
	Scheme  core.Scheme
	Content vidgen.Category
	Trace   *trace.Trace
	Policy  core.TrainPolicy
	Config  core.Config
}

// Size returns the number of points the grid expands to.
func (g Grid) Size() int {
	return dim(len(g.Schemes)) * dim(len(g.Contents)) * dim(len(g.Traces)) * dim(len(g.Policies))
}

func dim(n int) int {
	if n == 0 {
		return 1
	}
	return n
}

// Points expands the grid in a fixed deterministic order — schemes
// outermost, then contents, traces, policies — so the same Grid always
// yields the same point sequence (and therefore the same Collect order).
func (g Grid) Points() []Point {
	pts := make([]Point, 0, g.Size())
	for _, sc := range orDefault(g.Schemes, g.Base.Scheme) {
		for _, cat := range orDefault(g.Contents, g.Base.Cat) {
			for _, tr := range orDefault(g.Traces, g.Base.Trace) {
				for _, pol := range orDefault(g.Policies, g.Base.TrainPolicy) {
					cfg := g.Base
					cfg.Scheme, cfg.Cat, cfg.Trace, cfg.TrainPolicy = sc, cat, tr, pol
					pts = append(pts, Point{Scheme: sc, Content: cat, Trace: tr, Policy: pol, Config: cfg})
				}
			}
		}
	}
	return pts
}

func orDefault[T any](axis []T, base T) []T {
	if len(axis) == 0 {
		return []T{base}
	}
	return axis
}

// GoGrid submits every point of the grid and returns the handles in
// Points order. Collect on the runner (or Wait per handle) harvests them.
func (r *Runner) GoGrid(g Grid) []*Handle {
	pts := g.Points()
	hs := make([]*Handle, len(pts))
	for i, p := range pts {
		hs[i] = r.Go(p.Config)
	}
	return hs
}
