package sweep

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"strconv"

	"livenas/internal/core"
)

// cacheSchema versions the on-disk entry layout and, together with the
// module version, the semantics of what a session computes. Bump it when a
// change alters session results without moving the module version (the
// usual case for a source tree built as "(devel)").
const cacheSchema = 1

// ConfigKey returns the content address of a session: the hex SHA-256 of
// the gob encoding of the canonical (Defaulted, Telemetry-free) config.
// Since the simulator is deterministic, this hash fully determines the
// session's Results, which is what makes it a sound cache key.
func ConfigKey(cfg core.Config) (string, error) {
	cfg = cfg.Defaulted()
	cfg.Telemetry = nil
	h := sha256.New()
	// A fresh encoder per hash keeps the byte stream self-contained (type
	// descriptors included every time), so keys are stable across processes.
	if err := gob.NewEncoder(h).Encode(cfg); err != nil {
		return "", fmt.Errorf("sweep: hashing config: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Version identifies the code that produces cache entries. Entries written
// by a different version are treated as misses (stale results
// self-invalidate rather than poisoning new sweeps).
func Version() string {
	v := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		v = bi.Main.Path + "@" + bi.Main.Version
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				v += "+" + s.Value
			}
			if s.Key == "vcs.modified" && s.Value == "true" {
				v += "+dirty"
			}
		}
	}
	return v + "/schema" + strconv.Itoa(cacheSchema)
}

// entry is the on-disk representation of one cached session.
type entry struct {
	Version string
	Key     string
	Results *core.Results
}

// Cache is a content-addressed, on-disk store of session Results, one gob
// file per canonical config hash. A nil *Cache is valid and always misses,
// so callers never branch on "caching enabled".
//
// Writes are atomic (temp file + rename), which makes concurrent writers —
// several sweep workers, even several processes sharing a directory —
// safe: the worst case is the same session computed twice, last writer
// wins with an identical payload.
type Cache struct {
	dir     string
	version string
}

// Open returns a cache rooted at dir, creating it if needed.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: opening cache: %w", err)
	}
	return &Cache{dir: dir, version: Version()}, nil
}

// Dir returns the cache's root directory ("" for a nil cache).
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

func (c *Cache) path(key string) string { return filepath.Join(c.dir, key+".gob") }

// Get returns the cached Results for key, or ok=false on a miss. An entry
// written by a different code version, or one that fails to decode, is a
// miss (and is removed so it isn't re-parsed every sweep).
func (c *Cache) Get(key string) (*core.Results, bool) {
	if c == nil {
		return nil, false
	}
	f, err := os.Open(c.path(key))
	if err != nil {
		return nil, false
	}
	defer f.Close()
	var e entry
	if err := gob.NewDecoder(f).Decode(&e); err != nil || e.Version != c.version || e.Key != key {
		os.Remove(c.path(key))
		return nil, false
	}
	return e.Results, true
}

// Put persists res under key. The trainer timeline is materialized first:
// a restored Results carries no live telemetry registry, so everything a
// figure reads must survive in exported fields.
func (c *Cache) Put(key string, res *core.Results) error {
	if c == nil {
		return nil
	}
	res.TrainerTimeline()
	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("sweep: cache put: %w", err)
	}
	defer os.Remove(tmp.Name())
	err = gob.NewEncoder(tmp).Encode(entry{Version: c.version, Key: key, Results: res})
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("sweep: cache put: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		return fmt.Errorf("sweep: cache put: %w", err)
	}
	return nil
}

// Len reports how many entries the cache currently holds on disk.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	m, _ := filepath.Glob(filepath.Join(c.dir, "*.gob"))
	return len(m)
}
