package trace

import (
	"testing"
	"testing/quick"
	"time"
)

// Property: every generator produces strictly positive, finite samples and
// RateAt is total (never panics, wraps cleanly) for any time.
func TestQuickGeneratorsSane(t *testing.T) {
	f := func(seed int64, tRaw uint32) bool {
		for _, tr := range []*Trace{
			FCCUplink(seed, time.Minute, 3000),
			ThreeG(seed, time.Minute),
			FCCDownlink(seed, time.Minute),
			PensieveDownlink(seed, time.Minute),
		} {
			for _, k := range tr.Kbps {
				if !(k > 0) || k > 1e6 {
					return false
				}
			}
			at := time.Duration(tRaw) * time.Millisecond
			if tr.RateAt(at) <= 0 {
				return false
			}
			if tr.RateAt(-at) <= 0 { // negative times wrap too
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: Scale is linear: Scale(a).Avg() == a * Avg().
func TestQuickScaleLinear(t *testing.T) {
	f := func(seed int64, fRaw uint8) bool {
		factor := 0.25 + float64(fRaw)/64
		tr := FCCUplink(seed, 30*time.Second, 2000)
		s := tr.Scale(factor)
		d := s.Avg() - factor*tr.Avg()
		return d < 1e-6 && d > -1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
