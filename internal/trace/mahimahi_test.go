package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestParseKbps(t *testing.T) {
	in := "# comment\n1000\n\n2000\n 3000 \n"
	tr, err := ParseKbps("x", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Kbps) != 3 || tr.Kbps[0] != 1000 || tr.Kbps[2] != 3000 {
		t.Fatalf("parsed %v", tr.Kbps)
	}
	if tr.DT != time.Second {
		t.Fatalf("dt %v", tr.DT)
	}
}

func TestParseKbpsErrors(t *testing.T) {
	if _, err := ParseKbps("x", strings.NewReader("abc\n")); err == nil {
		t.Fatal("bad sample accepted")
	}
	if _, err := ParseKbps("x", strings.NewReader("-5\n")); err == nil {
		t.Fatal("negative sample accepted")
	}
	if _, err := ParseKbps("x", strings.NewReader("# only comments\n")); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestParseMahimahi(t *testing.T) {
	// 4 packets in second 0, 2 in second 2 (second 1 empty).
	in := "10\n200\n300\n900\n2100\n2500\n"
	tr, err := ParseMahimahi("mm", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Kbps) != 3 {
		t.Fatalf("len %d", len(tr.Kbps))
	}
	want0 := float64(4*1500*8) / 1000
	if tr.Kbps[0] != want0 {
		t.Fatalf("sec0 %v want %v", tr.Kbps[0], want0)
	}
	if tr.Kbps[1] != 0 {
		t.Fatalf("empty second not zero: %v", tr.Kbps[1])
	}
}

func TestParseMahimahiErrors(t *testing.T) {
	if _, err := ParseMahimahi("mm", strings.NewReader("oops\n")); err == nil {
		t.Fatal("bad timestamp accepted")
	}
	if _, err := ParseMahimahi("mm", strings.NewReader("")); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestWriteKbpsRoundTrip(t *testing.T) {
	orig := FCCUplink(3, time.Minute, 2000)
	var buf bytes.Buffer
	if err := orig.WriteKbps(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseKbps("rt", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Kbps) != len(orig.Kbps) {
		t.Fatalf("len %d vs %d", len(back.Kbps), len(orig.Kbps))
	}
	for i := range back.Kbps {
		d := back.Kbps[i] - orig.Kbps[i]
		if d > 0.5 || d < -0.5 { // written with %.0f
			t.Fatalf("sample %d drifted: %v vs %v", i, back.Kbps[i], orig.Kbps[i])
		}
	}
}
