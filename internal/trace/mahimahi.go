package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Mahimahi-compatible trace I/O. The paper replays FCC/3G traces through
// Mahimahi (Netravali et al., ATC'15); users of this reproduction can feed
// the same real trace files in either of the two common formats:
//
//   - kbps format: one bandwidth sample per line (kbps), fixed 1 s spacing,
//     '#' comments allowed — the format cmd/tracegen emits;
//   - packet-delivery format (Mahimahi's native .up/.down files): one
//     millisecond timestamp per line, each line granting one 1500-byte
//     packet delivery opportunity at that instant.

// ParseKbps reads a kbps-per-line trace.
func ParseKbps(name string, r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	var ks []float64
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("trace: %s line %d: bad sample %q", name, line, s)
		}
		ks = append(ks, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(ks) == 0 {
		return nil, fmt.Errorf("trace: %s contains no samples", name)
	}
	return &Trace{Name: name, DT: time.Second, Kbps: ks}, nil
}

// mahimahiPacketBytes is the delivery-opportunity size Mahimahi assumes.
const mahimahiPacketBytes = 1500

// ParseMahimahi reads a Mahimahi packet-delivery trace (millisecond
// timestamps, one delivery opportunity per line) and converts it to a
// per-second bandwidth series.
func ParseMahimahi(name string, r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	counts := map[int]int{} // second -> packets
	maxSec := 0
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		ms, err := strconv.Atoi(s)
		if err != nil || ms < 0 {
			return nil, fmt.Errorf("trace: %s line %d: bad timestamp %q", name, line, s)
		}
		sec := ms / 1000
		counts[sec]++
		if sec > maxSec {
			maxSec = sec
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("trace: %s contains no deliveries", name)
	}
	ks := make([]float64, maxSec+1)
	for sec, n := range counts {
		ks[sec] = float64(n*mahimahiPacketBytes*8) / 1000 // kbps
	}
	return &Trace{Name: name, DT: time.Second, Kbps: ks}, nil
}

// WriteKbps writes the trace in kbps-per-line format (round-trips with
// ParseKbps).
func (tr *Trace) WriteKbps(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s dt=%v avg=%.0f kbps\n", tr.Name, tr.DT, tr.Avg())
	for _, k := range tr.Kbps {
		fmt.Fprintf(bw, "%.0f\n", k)
	}
	return bw.Flush()
}
