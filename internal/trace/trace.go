// Package trace provides the network bandwidth traces the evaluation runs
// against. The paper uses 2019 FCC U.S. broadband uplink measurements
// (sampled to 25 traces with average uplink <= 10 Mbps), a 3G commute trace
// (Riiser et al. 2013), FCC downlink traces, and the Pensieve 3G/broadband
// set. None of those datasets ship with this repo, so each generator below
// synthesises traces matching the published aggregate statistics (mean
// bandwidth range, variability, dropout structure); see DESIGN.md
// substitution #5.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Trace is a bandwidth time series with fixed sample spacing. Values are in
// kilobits per second. Reads beyond the end wrap around (traces loop), the
// convention Mahimahi uses.
type Trace struct {
	Name string
	DT   time.Duration
	Kbps []float64
}

// RateAt returns the link rate in kbps at virtual time t.
func (tr *Trace) RateAt(t time.Duration) float64 {
	if len(tr.Kbps) == 0 {
		return 0
	}
	i := int(t/tr.DT) % len(tr.Kbps)
	if i < 0 {
		i += len(tr.Kbps)
	}
	return tr.Kbps[i]
}

// Duration returns the trace length before it wraps.
func (tr *Trace) Duration() time.Duration {
	return time.Duration(len(tr.Kbps)) * tr.DT
}

// Avg returns the mean rate in kbps.
func (tr *Trace) Avg() float64 {
	if len(tr.Kbps) == 0 {
		return 0
	}
	var s float64
	for _, v := range tr.Kbps {
		s += v
	}
	return s / float64(len(tr.Kbps))
}

// Scale returns a copy with every sample multiplied by f (the bandwidth
// scale-factor experiments of Figures 2b and 13).
func (tr *Trace) Scale(f float64) *Trace {
	out := &Trace{Name: fmt.Sprintf("%s(x%.2f)", tr.Name, f), DT: tr.DT, Kbps: make([]float64, len(tr.Kbps))}
	for i, v := range tr.Kbps {
		out.Kbps[i] = v * f
	}
	return out
}

// gen is a seeded random-walk helper shared by the generators.
type gen struct{ rng *rand.Rand }

// walk synthesises n samples of a mean-reverting lognormal random walk:
// level wanders around mean with the given volatility, clipped to
// [floor, ceil] kbps.
func (g gen) walk(n int, mean, vol, floor, ceil float64) []float64 {
	out := make([]float64, n)
	level := math.Log(mean)
	target := math.Log(mean)
	for i := range out {
		level += 0.15*(target-level) + vol*g.rng.NormFloat64()
		v := math.Exp(level)
		if v < floor {
			v = floor
		}
		if v > ceil {
			v = ceil
		}
		out[i] = v
	}
	return out
}

// FCCUplink synthesises one FCC-style broadband uplink trace. meanKbps
// should come from SampleFCCMeans (the Fig-8 distribution). Broadband
// uplinks are comparatively stable with occasional dips.
func FCCUplink(seed int64, dur time.Duration, meanKbps float64) *Trace {
	g := gen{rand.New(rand.NewSource(seed))}
	dt := time.Second
	n := int(dur / dt)
	ks := g.walk(n, meanKbps, 0.10, 120, 40000)
	// Occasional short congestion dips (cross traffic).
	for i := 0; i < n; i++ {
		if g.rng.Float64() < 0.01 {
			depth := 0.3 + 0.4*g.rng.Float64()
			for j := i; j < i+5 && j < n; j++ {
				ks[j] *= depth
			}
		}
	}
	return &Trace{Name: fmt.Sprintf("fcc-up-%d", seed), DT: dt, Kbps: ks}
}

// SampleFCCMeans draws n mean-uplink values (kbps) from the paper's Fig-8
// distribution: the 2019 FCC uplink CDF truncated at 10 Mbps (the top 38%
// above 10 Mbps is excluded). The shape is roughly log-uniform between
// 0.5 and 10 Mbps with mass concentrated in 1-8 Mbps.
func SampleFCCMeans(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		// Beta-ish sample via averaging two uniforms, mapped to log space.
		u := (rng.Float64() + rng.Float64()) / 2
		logv := math.Log(500) + u*(math.Log(10000)-math.Log(500))
		out[i] = math.Exp(logv)
	}
	return out
}

// FCCSet builds the paper's 25-trace evaluation set: 25 uplink traces whose
// mean bandwidths follow the Fig-8 distribution.
func FCCSet(n int, dur time.Duration, seed int64) []*Trace {
	means := SampleFCCMeans(n, seed)
	out := make([]*Trace, n)
	for i := range out {
		out[i] = FCCUplink(seed*1000+int64(i), dur, means[i])
	}
	return out
}

// ThreeG synthesises a Riiser-style 3G commute trace: low mean (~1 Mbps),
// strong variability, and hard dropouts (tunnels), as used in the
// scheduler case study (Figure 5).
func ThreeG(seed int64, dur time.Duration) *Trace {
	g := gen{rand.New(rand.NewSource(seed))}
	dt := time.Second
	n := int(dur / dt)
	ks := g.walk(n, 1100, 0.35, 40, 6000)
	for i := 0; i < n; i++ {
		if g.rng.Float64() < 0.02 {
			for j := i; j < i+3+g.rng.Intn(5) && j < n; j++ {
				ks[j] = 40 + 60*g.rng.Float64()
			}
		}
	}
	return &Trace{Name: fmt.Sprintf("3g-%d", seed), DT: dt, Kbps: ks}
}

// FCCDownlink synthesises an FCC broadband downlink trace (distribution-side
// experiments; the paper's sampled downlinks average ~72 Mbps).
func FCCDownlink(seed int64, dur time.Duration) *Trace {
	g := gen{rand.New(rand.NewSource(seed))}
	dt := time.Second
	mean := 20000 + 100000*g.rng.Float64() // 20-120 Mbps
	ks := g.walk(int(dur/dt), mean, 0.12, 2000, 400000)
	return &Trace{Name: fmt.Sprintf("fcc-down-%d", seed), DT: dt, Kbps: ks}
}

// PensieveDownlink synthesises a Pensieve-style 3G/HSDPA downlink
// (average ~1.48 Mbps across the set, highly variable).
func PensieveDownlink(seed int64, dur time.Duration) *Trace {
	g := gen{rand.New(rand.NewSource(seed))}
	dt := time.Second
	mean := 700 + 1600*g.rng.Float64()
	ks := g.walk(int(dur/dt), mean, 0.4, 80, 8000)
	return &Trace{Name: fmt.Sprintf("pensieve-%d", seed), DT: dt, Kbps: ks}
}

// Resolution is an ingest/target video resolution class.
type Resolution struct {
	Name string
	W, H int
}

// The resolution ladder used across the evaluation.
var (
	R270  = Resolution{"270p", 480, 270}
	R360  = Resolution{"360p", 640, 360}
	R540  = Resolution{"540p", 960, 540}
	R720  = Resolution{"720p", 1280, 720}
	R1080 = Resolution{"1080p", 1920, 1080}
	R4K   = Resolution{"4K", 3840, 2160}
)

// IngestResolutionFor picks the original ingest resolution for a trace's
// average uplink bandwidth following the YouTube-Live-style mapping of
// Figure 8: Twitch-type streams (target 1080p) ingest at 360p or 540p;
// YouTube-type streams (target 4K) ingest at 720p or 1080p.
func IngestResolutionFor(avgKbps float64, target4K bool) Resolution {
	if target4K {
		if avgKbps < 6000 {
			return R720
		}
		return R1080
	}
	if avgKbps < 2000 {
		return R360
	}
	return R540
}
