package trace

import (
	"math"
	"testing"
	"time"
)

func TestRateAtWraps(t *testing.T) {
	tr := &Trace{DT: time.Second, Kbps: []float64{100, 200, 300}}
	if tr.RateAt(0) != 100 || tr.RateAt(time.Second) != 200 {
		t.Fatal("basic indexing wrong")
	}
	if tr.RateAt(3*time.Second) != 100 || tr.RateAt(4*time.Second) != 200 {
		t.Fatal("wrap-around wrong")
	}
	if tr.RateAt(1500*time.Millisecond) != 200 {
		t.Fatal("sub-sample indexing wrong")
	}
}

func TestEmptyTrace(t *testing.T) {
	tr := &Trace{DT: time.Second}
	if tr.RateAt(0) != 0 || tr.Avg() != 0 {
		t.Fatal("empty trace should read zero")
	}
}

func TestAvgAndScale(t *testing.T) {
	tr := &Trace{DT: time.Second, Kbps: []float64{100, 300}}
	if tr.Avg() != 200 {
		t.Fatalf("avg=%v", tr.Avg())
	}
	s := tr.Scale(1.5)
	if s.Avg() != 300 {
		t.Fatalf("scaled avg=%v", s.Avg())
	}
	if tr.Kbps[0] != 100 {
		t.Fatal("Scale mutated original")
	}
	if s.Duration() != 2*time.Second {
		t.Fatalf("duration %v", s.Duration())
	}
}

func TestFCCUplinkProperties(t *testing.T) {
	tr := FCCUplink(7, 5*time.Minute, 4000)
	if len(tr.Kbps) != 300 {
		t.Fatalf("len=%d", len(tr.Kbps))
	}
	avg := tr.Avg()
	if avg < 1500 || avg > 9000 {
		t.Fatalf("avg %v far from requested 4000", avg)
	}
	for i, v := range tr.Kbps {
		if v < 100 || v > 40000 {
			t.Fatalf("sample %d out of range: %v", i, v)
		}
	}
}

func TestFCCUplinkDeterministic(t *testing.T) {
	a := FCCUplink(3, time.Minute, 2000)
	b := FCCUplink(3, time.Minute, 2000)
	for i := range a.Kbps {
		if a.Kbps[i] != b.Kbps[i] {
			t.Fatal("same seed must reproduce trace")
		}
	}
	c := FCCUplink(4, time.Minute, 2000)
	same := true
	for i := range a.Kbps {
		if a.Kbps[i] != c.Kbps[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestSampleFCCMeansDistribution(t *testing.T) {
	means := SampleFCCMeans(500, 11)
	var below10, below1 int
	for _, m := range means {
		if m < 500 || m > 10000 {
			t.Fatalf("mean %v outside [0.5,10] Mbps", m)
		}
		if m <= 10000 {
			below10++
		}
		if m < 1000 {
			below1++
		}
	}
	if below10 != 500 {
		t.Fatal("all means must be <= 10 Mbps (top 38% excluded)")
	}
	// Some but not most traces below 1 Mbps.
	if below1 == 0 || below1 > 250 {
		t.Fatalf("below-1Mbps count %d implausible", below1)
	}
}

func TestFCCSet(t *testing.T) {
	set := FCCSet(25, 2*time.Minute, 9)
	if len(set) != 25 {
		t.Fatalf("set size %d", len(set))
	}
	seen := map[string]bool{}
	for _, tr := range set {
		if seen[tr.Name] {
			t.Fatal("duplicate trace name")
		}
		seen[tr.Name] = true
	}
}

func TestThreeGVariability(t *testing.T) {
	tr := ThreeG(5, 10*time.Minute)
	avg := tr.Avg()
	if avg < 300 || avg > 3500 {
		t.Fatalf("3G avg %v outside plausible range", avg)
	}
	// Coefficient of variation should be substantial (commute trace).
	var sq float64
	for _, v := range tr.Kbps {
		d := v - avg
		sq += d * d
	}
	cv := math.Sqrt(sq/float64(len(tr.Kbps))) / avg
	if cv < 0.2 {
		t.Fatalf("3G trace too smooth: cv=%v", cv)
	}
}

func TestDownlinkGenerators(t *testing.T) {
	f := FCCDownlink(3, time.Minute)
	if f.Avg() < 10000 {
		t.Fatalf("FCC downlink avg %v too low", f.Avg())
	}
	p := PensieveDownlink(3, time.Minute)
	if p.Avg() > 5000 {
		t.Fatalf("Pensieve downlink avg %v too high", p.Avg())
	}
}

func TestIngestResolutionFor(t *testing.T) {
	cases := []struct {
		kbps float64
		is4K bool
		want string
	}{
		{800, false, "360p"},
		{1900, false, "360p"},
		{2500, false, "540p"},
		{9000, false, "540p"},
		{3000, true, "720p"},
		{8000, true, "1080p"},
	}
	for _, c := range cases {
		got := IngestResolutionFor(c.kbps, c.is4K)
		if got.Name != c.want {
			t.Fatalf("IngestResolutionFor(%v,%v)=%s want %s", c.kbps, c.is4K, got.Name, c.want)
		}
	}
}

func TestResolutionDims(t *testing.T) {
	if R1080.W != 1920 || R1080.H != 1080 || R4K.W != 3840 || R4K.H != 2160 {
		t.Fatal("resolution constants wrong")
	}
	// Scale relations the SR configs rely upon.
	if R1080.W/R360.W != 3 || R1080.W/R540.W != 2 || R4K.W/R720.W != 3 || R4K.W/R1080.W != 2 {
		t.Fatal("ladder scale factors wrong")
	}
}
