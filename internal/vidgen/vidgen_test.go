package vidgen

import (
	"math"
	"testing"

	"livenas/internal/metrics"
)

func TestCategoryStrings(t *testing.T) {
	want := map[Category]string{
		LeagueOfLegends: "LoL", JustChatting: "JC", WorldOfWarcraft: "WoW",
		EscapeFromTarkov: "EFT", Fortnite: "FN", Podcast: "PC", Sports: "SP",
		LiveEvent: "LE", FoodCooking: "FC",
	}
	for c, s := range want {
		if c.String() != s {
			t.Fatalf("%d.String()=%q want %q", c, c.String(), s)
		}
	}
	if Category(99).String() != "Category(99)" {
		t.Fatal("unknown category string")
	}
}

func TestCategoriesLists(t *testing.T) {
	if len(Categories()) != 9 {
		t.Fatalf("want 9 categories, got %d", len(Categories()))
	}
	if len(TwitchCategories()) != 5 || len(YouTubeCategories()) != 4 {
		t.Fatal("twitch/youtube split wrong")
	}
}

func TestDeterminism(t *testing.T) {
	a := NewSource(Fortnite, 96, 54, 42, 60)
	b := NewSource(Fortnite, 96, 54, 42, 60)
	fa, fb := a.FrameAt(3.5), b.FrameAt(3.5)
	for i := range fa.Pix {
		if fa.Pix[i] != fb.Pix[i] {
			t.Fatal("same (cat,seed,t) must render identical frames")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := NewSource(JustChatting, 96, 54, 1, 60).FrameAt(2)
	b := NewSource(JustChatting, 96, 54, 2, 60).FrameAt(2)
	if metrics.PSNR(a, b) > 30 {
		t.Fatal("different sessions should produce clearly different frames")
	}
}

func TestTemporalRedundancy(t *testing.T) {
	// Consecutive frames (33ms apart) must be far more similar than frames
	// a minute apart — the temporal redundancy online SR exploits (§8.4).
	src := NewSource(JustChatting, 160, 90, 7, 300)
	f0 := src.FrameAt(10.0)
	f1 := src.FrameAt(10.033)
	near := metrics.PSNR(f0, f1)
	if near < 25 {
		t.Fatalf("adjacent frames too different: %.1f dB", near)
	}
}

func TestMotionOrdering(t *testing.T) {
	// Fortnite (high motion) must change faster frame-to-frame than Podcast.
	fast := NewSource(Fortnite, 160, 90, 3, 300)
	slow := NewSource(Podcast, 160, 90, 3, 300)
	df := metrics.PSNR(fast.FrameAt(5), fast.FrameAt(5.2))
	ds := metrics.PSNR(slow.FrameAt(5), slow.FrameAt(5.2))
	if df >= ds {
		t.Fatalf("Fortnite frame-pair PSNR %.1f should be below Podcast %.1f", df, ds)
	}
}

func TestSceneChangesWithinHorizon(t *testing.T) {
	src := NewSource(Fortnite, 64, 36, 9, 600)
	ch := src.SceneChanges()
	if len(ch) == 0 {
		t.Fatal("600s Fortnite session should have scene changes")
	}
	for i, c := range ch {
		if c <= 0 || c >= 600+ParamsFor(Fortnite).SceneMean*3 {
			t.Fatalf("scene change %d at %f out of range", i, c)
		}
		if i > 0 && c <= ch[i-1] {
			t.Fatal("scene changes not increasing")
		}
	}
}

func TestSceneIndexAdvances(t *testing.T) {
	src := NewSource(Sports, 64, 36, 5, 600)
	ch := src.SceneChanges()
	if len(ch) == 0 {
		t.Skip("no changes scheduled")
	}
	before := src.SceneIndexAt(ch[0] - 0.1)
	after := src.SceneIndexAt(ch[0] + 0.1)
	if after != before+1 {
		t.Fatalf("scene index %d -> %d across change", before, after)
	}
}

func TestSceneChangeBreaksSimilarity(t *testing.T) {
	src := NewSource(Fortnite, 160, 90, 11, 600)
	ch := src.SceneChanges()
	if len(ch) == 0 {
		t.Skip("no changes scheduled")
	}
	tc := ch[0]
	within := metrics.PSNR(src.FrameAt(tc-0.5), src.FrameAt(tc-0.4))
	across := metrics.PSNR(src.FrameAt(tc-0.05), src.FrameAt(tc+0.05))
	if across >= within {
		t.Fatalf("scene change PSNR %.1f should be below within-scene %.1f", across, within)
	}
}

func TestHUDIsStatic(t *testing.T) {
	src := NewSource(LeagueOfLegends, 192, 108, 13, 300)
	f0, f1 := src.FrameAt(1), src.FrameAt(9)
	hudTop := 108 - 108/12
	for y := hudTop; y < 108; y++ {
		for x := 0; x < 192; x++ {
			if f0.At(x, y) != f1.At(x, y) {
				t.Fatalf("HUD pixel (%d,%d) changed over time", x, y)
			}
		}
	}
}

func TestFrameValueRange(t *testing.T) {
	// All categories render full frames with non-trivial dynamic range.
	for _, c := range Categories() {
		src := NewSource(c, 96, 54, 21, 60)
		f := src.FrameAt(1.7)
		lo, hi := 255, 0
		for _, v := range f.Pix {
			if int(v) < lo {
				lo = int(v)
			}
			if int(v) > hi {
				hi = int(v)
			}
		}
		if hi-lo < 40 {
			t.Fatalf("%v frame dynamic range too small: [%d,%d]", c, lo, hi)
		}
	}
}

func TestDetailOrdering(t *testing.T) {
	// High-detail categories must carry more high-frequency energy: compare
	// the loss from a down-up round trip (which removes high frequencies).
	loss := func(c Category) float64 {
		src := NewSource(c, 192, 108, 17, 60)
		f := src.FrameAt(2)
		lr := f.Downscale(2)
		up := lr.ResizeBilinear(192, 108)
		return metrics.MSE(f, up)
	}
	if loss(Fortnite) <= loss(Podcast) {
		t.Fatal("Fortnite should lose more energy to downscaling than Podcast")
	}
}

func TestGenericDataset(t *testing.T) {
	ds := GenericDataset(12, 48, 5)
	if len(ds) != 12 {
		t.Fatalf("got %d images", len(ds))
	}
	for i, f := range ds {
		if f.W != 48 || f.H != 48 {
			t.Fatalf("image %d wrong size", i)
		}
	}
	// Images must differ from one another.
	if metrics.PSNR(ds[0], ds[1]) > 30 {
		t.Fatal("dataset images too similar")
	}
}

func TestValueNoiseRangeAndContinuity(t *testing.T) {
	for i := 0; i < 200; i++ {
		x := float64(i) * 0.173
		v := valueNoise(x, x*0.7, 12345)
		if v < 0 || v > 1 {
			t.Fatalf("noise out of range: %f", v)
		}
		v2 := valueNoise(x+1e-4, x*0.7, 12345)
		if math.Abs(v-v2) > 0.01 {
			t.Fatalf("noise not continuous at %f: %f vs %f", x, v, v2)
		}
	}
}
