// Package vidgen synthesises deterministic live-stream video.
//
// The paper evaluates on nine categories of recorded live streams (five
// Twitch game/IRL categories and four YouTube 4K categories). Those
// recordings are not redistributable, so vidgen substitutes a procedural
// generator whose per-category parameters reproduce the properties the
// paper's results depend on:
//
//   - category-specific texture statistics (what makes a content-aware SR
//     model beat a generic one — Figs 2c, 9, 10);
//   - motion level (what makes Fortnite the hardest stream and drives the
//     encoder's rate-distortion operating point — §8.1);
//   - scene-change schedules (what drives the content-adaptive trainer's
//     suspend/resume cycle — Figs 16, 18, 19);
//   - session-to-session drift (why pre-training on yesterday's stream
//     underperforms online learning — Fig 2c).
//
// All output is a pure function of (category, session seed, time), so every
// experiment is reproducible bit-for-bit.
package vidgen

import (
	"fmt"
	"math"

	"livenas/internal/frame"
)

// Category enumerates the nine stream-content categories of the paper's
// evaluation (§8, Figures 9 and 10).
type Category int

const (
	// Twitch top-5 categories (ingest 360p/540p, target 1080p).
	LeagueOfLegends Category = iota
	JustChatting
	WorldOfWarcraft
	EscapeFromTarkov
	Fortnite
	// YouTube 4K categories (ingest 720p/1080p, target 4K).
	Podcast
	Sports
	LiveEvent
	FoodCooking

	numCategories
)

// Categories lists every category in declaration order.
func Categories() []Category {
	out := make([]Category, numCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// TwitchCategories returns the five Twitch categories of Figure 9.
func TwitchCategories() []Category {
	return []Category{LeagueOfLegends, JustChatting, WorldOfWarcraft, EscapeFromTarkov, Fortnite}
}

// YouTubeCategories returns the four YouTube 4K categories of Figure 10.
func YouTubeCategories() []Category {
	return []Category{Podcast, Sports, LiveEvent, FoodCooking}
}

// String returns the abbreviation the paper uses in its figures.
func (c Category) String() string {
	switch c {
	case LeagueOfLegends:
		return "LoL"
	case JustChatting:
		return "JC"
	case WorldOfWarcraft:
		return "WoW"
	case EscapeFromTarkov:
		return "EFT"
	case Fortnite:
		return "FN"
	case Podcast:
		return "PC"
	case Sports:
		return "SP"
	case LiveEvent:
		return "LE"
	case FoodCooking:
		return "FC"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Params captures the per-category generation profile.
type Params struct {
	// Motion is the scene scroll speed in native pixels/second per 1080 rows
	// of output; high-motion categories compress worse at equal bitrate.
	Motion float64
	// Detail in (0,1] scales the amplitude of the high-frequency texture
	// octaves; more detail means more for super-resolution to recover.
	Detail float64
	// TexScale is the base feature size of the texture field in pixels.
	TexScale float64
	// SceneMean is the mean seconds between scene changes (0 disables them).
	SceneMean float64
	// Sprites is the number of independently moving foreground objects.
	Sprites int
	// HUD adds a static high-contrast overlay band (game UI / stream chrome):
	// static content that online training saturates on quickly.
	HUD bool
}

// ParamsFor returns the generation profile of a category.
func ParamsFor(c Category) Params {
	switch c {
	case LeagueOfLegends:
		return Params{Motion: 120, Detail: 0.75, TexScale: 36, SceneMean: 45, Sprites: 8, HUD: true}
	case JustChatting:
		return Params{Motion: 18, Detail: 0.55, TexScale: 64, SceneMean: 120, Sprites: 2, HUD: true}
	case WorldOfWarcraft:
		return Params{Motion: 90, Detail: 0.7, TexScale: 40, SceneMean: 60, Sprites: 6, HUD: true}
	case EscapeFromTarkov:
		return Params{Motion: 150, Detail: 0.8, TexScale: 30, SceneMean: 50, Sprites: 5, HUD: true}
	case Fortnite:
		return Params{Motion: 260, Detail: 0.9, TexScale: 24, SceneMean: 25, Sprites: 10, HUD: true}
	case Podcast:
		return Params{Motion: 10, Detail: 0.5, TexScale: 72, SceneMean: 180, Sprites: 1, HUD: false}
	case Sports:
		return Params{Motion: 170, Detail: 0.8, TexScale: 32, SceneMean: 40, Sprites: 12, HUD: true}
	case LiveEvent:
		return Params{Motion: 60, Detail: 0.65, TexScale: 44, SceneMean: 70, Sprites: 4, HUD: false}
	case FoodCooking:
		return Params{Motion: 35, Detail: 0.7, TexScale: 48, SceneMean: 90, Sprites: 3, HUD: false}
	default:
		return Params{Motion: 60, Detail: 0.6, TexScale: 48, SceneMean: 60, Sprites: 4}
	}
}

// splitMix64 is a small, fast, well-mixed hash used for all lattice noise;
// it keeps frame synthesis allocation-free and deterministic.
func splitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash01 maps an integer lattice point (plus a stream id) to [0,1).
func hash01(x, y int64, id uint64) float64 {
	h := splitMix64(uint64(x)*0x9e3779b97f4a7c15 ^ uint64(y)*0xc2b2ae3d27d4eb4f ^ id)
	return float64(h>>11) / float64(1<<53)
}

func smoothstep(t float64) float64 { return t * t * (3 - 2*t) }

// valueNoise evaluates smoothed lattice value noise at (x, y) for stream id.
func valueNoise(x, y float64, id uint64) float64 {
	x0, y0 := math.Floor(x), math.Floor(y)
	fx, fy := smoothstep(x-x0), smoothstep(y-y0)
	ix, iy := int64(x0), int64(y0)
	v00 := hash01(ix, iy, id)
	v10 := hash01(ix+1, iy, id)
	v01 := hash01(ix, iy+1, id)
	v11 := hash01(ix+1, iy+1, id)
	top := v00*(1-fx) + v10*fx
	bot := v01*(1-fx) + v11*fx
	return top*(1-fy) + bot*fy
}

// scene describes one continuous shot between two scene changes.
type scene struct {
	start    float64 // seconds
	seed     uint64  // texture stream id
	dirX     float64 // scroll direction (unit-ish vector)
	dirY     float64
	base     float64 // mean luminance 0..255
	contrast float64 // texture amplitude multiplier
	warp     float64 // nonlinear tone curve strength, texture "style"
}

// Source generates frames for one live-stream session.
//
// A Source is safe for concurrent FrameAt calls: it is immutable after
// construction.
type Source struct {
	Cat    Category
	P      Params
	W, H   int
	seed   uint64
	scenes []scene // sorted by start time
	dur    float64 // scene schedule horizon (seconds)
}

// NewSource creates a session of the given category rendered at w x h native
// resolution. seed selects the session (use different seeds for "previous
// day's stream" style experiments). The scene-change schedule covers
// durSec seconds; FrameAt beyond the horizon reuses the last scene.
func NewSource(cat Category, w, h int, seed int64, durSec float64) *Source {
	p := ParamsFor(cat)
	s := &Source{Cat: cat, P: p, W: w, H: h, seed: uint64(seed)*0x9e3779b97f4a7c15 + uint64(cat), dur: durSec}
	s.scenes = buildSchedule(s.seed, p, durSec)
	return s
}

// buildSchedule lays out scene boundaries with exponential-ish gaps around
// SceneMean, derived deterministically from the session seed.
func buildSchedule(seed uint64, p Params, dur float64) []scene {
	var scenes []scene
	t := 0.0
	i := uint64(0)
	for {
		sc := newScene(seed, i, t)
		scenes = append(scenes, sc)
		if p.SceneMean <= 0 {
			break
		}
		// Deterministic pseudo-exponential gap in [0.35, 2.6] * mean.
		u := hash01(int64(i), 7, seed^0xabcdef)
		gap := p.SceneMean * (0.35 + 2.25*u)
		t += gap
		i++
		if t >= dur {
			break
		}
	}
	return scenes
}

func newScene(seed, idx uint64, start float64) scene {
	id := splitMix64(seed ^ (idx+1)*0x85ebca6b)
	ang := hash01(int64(idx), 1, seed) * 2 * math.Pi
	return scene{
		start:    start,
		seed:     id,
		dirX:     math.Cos(ang),
		dirY:     math.Sin(ang),
		base:     70 + 120*hash01(int64(idx), 2, seed),
		contrast: 0.6 + 0.8*hash01(int64(idx), 3, seed),
		warp:     0.5 + 1.5*hash01(int64(idx), 4, seed),
	}
}

// sceneAt returns the active scene and its index at time t.
func (s *Source) sceneAt(t float64) (scene, int) {
	idx := 0
	for i := len(s.scenes) - 1; i >= 0; i-- {
		if t >= s.scenes[i].start {
			idx = i
			break
		}
	}
	return s.scenes[idx], idx
}

// SceneIndexAt reports which scene (0-based) is on screen at time t seconds.
func (s *Source) SceneIndexAt(t float64) int {
	_, i := s.sceneAt(t)
	return i
}

// SceneChanges lists the scene-change instants (seconds, excluding t=0) up
// to the schedule horizon. The content-adaptive trainer experiments use this
// as ground truth.
func (s *Source) SceneChanges() []float64 {
	var out []float64
	for _, sc := range s.scenes[1:] {
		out = append(out, sc.start)
	}
	return out
}

// FrameAt renders the native-resolution frame at time t seconds.
func (s *Source) FrameAt(t float64) *frame.Frame {
	sc, idx := s.sceneAt(t)
	f := frame.New(s.W, s.H)
	p := s.P

	// Motion scales with output height so different native resolutions of
	// the same session show the same angular velocity.
	speed := p.Motion * float64(s.H) / 1080.0
	offX := sc.dirX * speed * (t - sc.start)
	offY := sc.dirY * speed * (t - sc.start)

	// Texture synthesis. Live-stream content (game worlds, UI, text,
	// produced video) is dominated by *structured* high-frequency detail:
	// flat regions separated by sharp boundaries, repeated glyph-like
	// marks, scene-specific palettes. That structure is what content-aware
	// super-resolution learns to restore (and what makes it beat a generic
	// model), so the generator produces it explicitly:
	//
	//   1. two smooth noise octaves folded through a scene-specific warp;
	//   2. posterisation to the scene's palette: flat areas with sharp,
	//      learnable edges (cartoon/game-like shading);
	//   3. a sparse lattice of glyph-like marks anchored to scene
	//      coordinates (in-world text, icons, ornaments);
	//   4. a small unstructured noise octave (sensor/film grain) whose
	//      amplitude follows the category Detail knob.
	base := sc.base
	amp1 := 70.0 * sc.contrast
	amp2 := 45.0 * sc.contrast * p.Detail
	grain := 6.0 * p.Detail
	// Feature sizes are defined relative to a 216-row canvas so that the
	// same session rendered at any resolution carries the same *relative*
	// detail — the property that lets reduced-scale experiment worlds
	// preserve full-scale result shapes.
	rel := float64(s.H) / 216.0
	tex := p.TexScale * rel
	inv1 := 1.0 / tex
	inv2 := 1.0 / (tex * 0.31)
	invG := 1.0 / (tex * 0.09)
	// Scene palette: posterisation step in luma levels.
	step := 18 + 22*hash01(11, 5, sc.seed)
	// Glyph lattice parameters: cell size, stroke width and mark density.
	glyphCell := (14 + 10*hash01(13, 6, sc.seed)) * rel
	// Glyph strokes stay at pixel scale regardless of resolution: text and
	// UI render at pixel precision on any canvas, which is exactly the
	// detail class super-resolution recovers.
	stroke := 2.0
	glyphDensity := 0.25 + 0.5*p.Detail

	for y := 0; y < s.H; y++ {
		fy := float64(y) + offY
		row := f.Pix[y*s.W:]
		for x := 0; x < s.W; x++ {
			fx := float64(x) + offX
			v := base
			n1 := valueNoise(fx*inv1, fy*inv1, sc.seed) - 0.5
			n2 := valueNoise(fx*inv2, fy*inv2, sc.seed^1) - 0.5
			v += amp1 * (math.Abs(n1)*2 - 0.5) * sc.warp
			v += amp2 * n2
			// Posterise to the scene palette: sharp edges between flats.
			v = math.Round(v/step) * step
			// Glyph marks: per-lattice-cell pseudo-random text-like strokes
			// anchored to scene coordinates (they scroll with the world).
			gx, gy := math.Floor(fx/glyphCell), math.Floor(fy/glyphCell)
			if hash01(int64(gx), int64(gy), sc.seed^3) < glyphDensity {
				// Position within the cell; draw a 2px-wide stroke pattern.
				lx := fx - gx*glyphCell
				ly := fy - gy*glyphCell
				style := hash01(int64(gx), int64(gy), sc.seed^4)
				on := false
				switch {
				case style < 0.4: // horizontal bar
					on = ly >= glyphCell*0.4 && ly < glyphCell*0.4+stroke && lx > stroke && lx < glyphCell-stroke
				case style < 0.8: // vertical bar
					on = lx >= glyphCell*0.5 && lx < glyphCell*0.5+stroke && ly > stroke && ly < glyphCell-stroke
				default: // dot
					on = lx >= glyphCell*0.4 && lx < glyphCell*0.4+1.5*stroke && ly >= glyphCell*0.4 && ly < glyphCell*0.4+1.5*stroke
				}
				if on {
					if v > 127 {
						v -= 90
					} else {
						v += 90
					}
				}
			}
			// Grain.
			v += grain * (valueNoise(fx*invG, fy*invG, sc.seed^2) - 0.5)
			if v < 0 {
				v = 0
			} else if v > 255 {
				v = 255
			}
			row[x] = uint8(v)
		}
	}

	s.drawSprites(f, sc, idx, t)
	if p.HUD {
		s.drawHUD(f)
	}
	return f
}

// drawSprites overlays moving high-contrast objects (players, the streamer's
// webcam, a ball...). Their count and speed follow the category profile.
func (s *Source) drawSprites(f *frame.Frame, sc scene, sceneIdx int, t float64) {
	p := s.P
	for i := 0; i < p.Sprites; i++ {
		id := sc.seed ^ uint64(i+1)*0x9e3779b9
		w := int(float64(s.W) * (0.04 + 0.08*hash01(int64(i), 11, id)))
		h := int(float64(s.H) * (0.05 + 0.1*hash01(int64(i), 12, id)))
		// Lissajous-style trajectories, speed tied to category motion.
		sp := (0.2 + hash01(int64(i), 13, id)) * p.Motion / 100
		phx := hash01(int64(i), 14, id) * 2 * math.Pi
		phy := hash01(int64(i), 15, id) * 2 * math.Pi
		cx := (0.5 + 0.45*math.Sin(sp*t+phx)) * float64(s.W)
		cy := (0.5 + 0.42*math.Sin(sp*t*1.3+phy)) * float64(s.H)
		lum := uint8(40 + 180*hash01(int64(i), 16, id))
		x0, y0 := int(cx)-w/2, int(cy)-h/2
		for y := y0; y < y0+h; y++ {
			if y < 0 || y >= s.H {
				continue
			}
			row := f.Pix[y*s.W:]
			for x := x0; x < x0+w; x++ {
				if x < 0 || x >= s.W {
					continue
				}
				// Textured sprite body with a bright 1-px outline.
				if y == y0 || y == y0+h-1 || x == x0 || x == x0+w-1 {
					row[x] = 235
				} else {
					n := valueNoise(float64(x)/7, float64(y)/7, id)
					row[x] = uint8(float64(lum) * (0.6 + 0.4*n))
				}
			}
		}
	}
	_ = sceneIdx
}

// drawHUD renders a static overlay band: stream chrome that never moves.
func (s *Source) drawHUD(f *frame.Frame) {
	hudH := s.H / 12
	if hudH < 2 {
		return
	}
	y0 := s.H - hudH
	for y := y0; y < s.H; y++ {
		row := f.Pix[y*s.W:]
		for x := 0; x < s.W; x++ {
			// Alternating glyph-like blocks: crisp verticals the encoder
			// blurs at low bitrate and SR can re-sharpen.
			gx := x / (hudH / 2)
			if (gx+((y-y0)/(hudH/4+1)))%2 == 0 {
				row[x] = 28
			} else {
				row[x] = 222
			}
		}
	}
}
