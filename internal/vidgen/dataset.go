package vidgen

import "livenas/internal/frame"

// GenericDataset synthesises a stand-in for a standard super-resolution
// benchmark training set (DIV2K / NTIRE 2017 in the paper, §6.1): n images of
// size x size pixels drawn from a mixture of texture families unrelated to
// any particular stream session. The generic SR baseline (§8.1) and the
// content-adaptive trainer's DNN_t=0 reference (Algorithm 1) are trained on
// this set.
func GenericDataset(n, size int, seed int64) []*frame.Frame {
	out := make([]*frame.Frame, 0, n)
	for i := 0; i < n; i++ {
		// Rotate through all categories and many synthetic scenes so the set
		// is diverse but matches no single session's statistics.
		cat := Category(i % int(numCategories))
		src := NewSource(cat, size, size, seed+int64(i)*101, 1)
		out = append(out, src.FrameAt(float64(i%7)*0.37))
	}
	return out
}
