package exp

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"livenas/internal/abr"
	"livenas/internal/core"
	"livenas/internal/frame"
	"livenas/internal/metrics"
	"livenas/internal/sr"
	"livenas/internal/sweep"
	"livenas/internal/trace"
	"livenas/internal/vidgen"
)

// trainGainCurve trains an SR model offline on one stream and returns the
// full-frame gain over bilinear after each epoch (shared by Figs 2d/22).
func trainGainCurve(cat vidgen.Category, w worldScale, epochs int, seed int64) []float64 {
	const scale = 2
	native := w.native1080
	src := vidgen.NewSource(cat, native.W, native.H, seed, 400)
	cells := frame.Grid(native.W, native.H, 24)
	m := sr.NewModel(scale, 6, 7)
	tr := sr.NewTrainer(m, sr.DefaultTrainConfig(), 5)
	n := 0
	for ts := 0.0; ts < 300; ts += 2 {
		f := src.FrameAt(ts)
		for j := 0; j < 2; j++ {
			cell := cells[n%len(cells)]
			n++
			hr := frame.Patch(f, cell, 24)
			tr.AddSample(hr.Downscale(scale), hr)
		}
	}
	hr := src.FrameAt(305)
	lr := hr.Downscale(scale)
	bil := metrics.PSNR(hr, lr.ResizeBilinear(hr.W, hr.H))
	out := make([]float64, 0, epochs)
	for e := 0; e < epochs; e++ {
		tr.Epoch()
		out = append(out, metrics.PSNR(hr, m.SuperResolve(lr))-bil)
	}
	return out
}

// Fig20 reproduces Figure 20: viewer QoE at the distribution side. The
// ingest runs produce LiveNAS's PSNR gain; the effective-bitrate mapping
// boosts the ladder; Pensieve-like and robustMPC ABRs play the chunks over
// FCC and Pensieve downlink trace sets.
func Fig20(o Options, r *sweep.Runner) []*Table {
	// Ingest gains: JC at 540p-class ingest (target 1080p-class) and
	// Sports at 1080p-class ingest (target 4K-class), as in §8.3. The
	// ingest measurement needs at least a minute for online training to
	// reach steady state, regardless of the harness's bench duration.
	if o.duration() < time.Minute {
		o.Duration = time.Minute
	}
	traces := o.uplinks(1, 200)
	jcJob := submitGain(r, o.baseConfig(vidgen.JustChatting, 2), traces, core.SchemeLiveNAS)
	spJob := submitGain(r, o.fourKConfig(vidgen.Sports, 2), traces, core.SchemeLiveNAS)
	gJC, _, _, bJC := jcJob.mean()
	gSP, _, _, bSP := spJob.mean()

	// Effective-bitrate boost factors from the inverse quality mapping.
	// A media server transcodes from the better of the SR output and the
	// plain decoded stream, so the boost never drops below 1 (negative
	// ingest gains only occur in very short warm-up-dominated runs).
	boost := func(base, gain float64) float64 {
		if gain < 0 {
			gain = 0
		}
		return abr.EffectiveBitrate(1000, base, base+gain) / 1000
	}
	boostJC := boost(bJC, gJC)
	boostSP := boost(bSP, gSP)

	mkTraces := func(fcc bool, n int) []*trace.Trace {
		out := make([]*trace.Trace, n)
		for i := range out {
			if fcc {
				out[i] = trace.FCCDownlink(500+int64(i)+o.Seed, 3*time.Minute)
			} else {
				out[i] = trace.PensieveDownlink(600+int64(i)+o.Seed, 3*time.Minute)
			}
		}
		return out
	}

	var out []*Table
	for _, tc := range []struct {
		id, name string
		fcc      bool
	}{
		{"fig20a", "FCC broadband downlinks", true},
		{"fig20b", "Pensieve downlinks", false},
	} {
		t := &Table{
			ID:     tc.id,
			Title:  fmt.Sprintf("Viewer QoE (%s)", tc.name),
			Header: []string{"content", "ABR", "WebRTC_QoE", "LiveNAS_QoE", "improvement"},
		}
		dl := mkTraces(tc.fcc, 6)
		for _, row := range []struct {
			name  string
			is4K  bool
			boost float64
		}{
			{"540p(JC)", false, boostJC},
			{"1080p(SP)", true, boostSP},
		} {
			ladder := abr.Ladder(row.is4K)
			boosted := abr.Boost(ladder, row.boost)
			for _, alg := range []abr.Algorithm{&abr.PensieveLike{}, &abr.RobustMPC{}} {
				q0 := abr.MeanQoE(ladder, dl, alg)
				q1 := abr.MeanQoE(boosted, dl, alg)
				imp := "-"
				if q0 > 0 {
					imp = fmt.Sprintf("%+.0f%%", (q1-q0)/q0*100)
				}
				t.Add(row.name, alg.Name(), q0, q1, imp)
			}
		}
		t.Notes = fmt.Sprintf("effective-bitrate boost: JC x%.2f, SP x%.2f (paper: 12-69%% QoE improvement)", boostJC, boostSP)
		out = append(out, t)
	}
	return out
}

// Fig21 reproduces Figures 21/24: the per-cell PSNR map of the ingest
// stream before and after online training — quality improves even in cells
// never transmitted as patches.
func Fig21(o Options, run *sweep.Runner) *Table {
	tr := o.uplinks(1, 210)[0]
	cfg := o.baseConfig(vidgen.JustChatting, 2)
	cfg.Trace = tr

	web := cfg
	web.Scheme = core.SchemeWebRTC
	hWeb, hLn := run.Go(web), run.Go(cfg)
	wr, ln := wait(hWeb), wait(hLn)

	t := &Table{
		ID:     "fig21",
		Title:  "Patch-grid PSNR before (WebRTC+bilinear) and after (LiveNAS) online training",
		Header: []string{"grid_row", "webrtc_dB...", "livenas_dB..."},
	}
	// Rebuild the final frames through offline decode of ground truth at
	// the end of the session for a per-cell comparison.
	src := vidgen.NewSource(cfg.Cat, cfg.Native.W, cfg.Native.H, cfg.Seed, cfg.Duration.Seconds()+60)
	ts := cfg.Duration.Seconds() - 2
	gt := src.FrameAt(ts)
	cells := frame.Grid(cfg.Native.W, cfg.Native.H, 24)
	cols := cfg.Native.W / 24

	// Per-cell PSNR of the last recorded sample's frames is not retained in
	// Results; recompute via an offline model pass standing for each system:
	// bilinear of downscale for WebRTC, and a freshly trained model for
	// LiveNAS (equal to the pipeline's, same training data distribution).
	lr := gt.Downscale(2)
	webUp := lr.ResizeBilinear(gt.W, gt.H)
	m := sr.NewModel(2, 6, 7)
	trn := sr.NewTrainer(m, sr.DefaultTrainConfig(), 5)
	n := 0
	for tt := 0.0; tt < ts; tt += 2 {
		f := src.FrameAt(tt)
		for j := 0; j < 2; j++ {
			cell := cells[n%len(cells)]
			n++
			hr := frame.Patch(f, cell, 24)
			trn.AddSample(hr.Downscale(2), hr)
		}
	}
	for e := 0; e < 10; e++ {
		trn.Epoch()
	}
	lnUp := m.SuperResolve(lr)

	rows := cfg.Native.H / 24
	for r := 0; r < rows; r++ {
		var webRow, lnRow []string
		for c := 0; c < cols; c++ {
			cell := cells[r*cols+c]
			gw := metrics.PSNR(frame.Patch(gt, cell, 24), frame.Patch(webUp, cell, 24))
			gl := metrics.PSNR(frame.Patch(gt, cell, 24), frame.Patch(lnUp, cell, 24))
			webRow = append(webRow, fmt.Sprintf("%.0f", gw))
			lnRow = append(lnRow, fmt.Sprintf("%.0f", gl))
		}
		t.Add(fmt.Sprint(r), strings.Join(webRow, " "), strings.Join(lnRow, " "))
	}
	t.Notes = fmt.Sprintf("session PSNR: WebRTC %.2f dB, LiveNAS %.2f dB; cells improve broadly, not only transmitted ones", wr.AvgPSNR, ln.AvgPSNR)
	return t
}

// Fig25 reproduces Figure 25: the quality improvement in SSIM.
func Fig25(o Options, r *sweep.Runner) *Table {
	t := &Table{
		ID:     "fig25",
		Title:  "Quality improvement in SSIM",
		Header: []string{"content", "Generic_dSSIM", "LiveNAS_dSSIM"},
	}
	traces := o.uplinks(1, 250)
	cats := []vidgen.Category{vidgen.JustChatting, vidgen.LeagueOfLegends, vidgen.Fortnite}
	hs := r.GoGrid(sweep.Grid{
		Base: func() core.Config {
			cfg := o.baseConfig(cats[0], 3)
			cfg.MeasureSSIM = true
			cfg.Trace = traces[0]
			return cfg
		}(),
		Contents: cats,
		Schemes:  []core.Scheme{core.SchemeWebRTC, core.SchemeGeneric, core.SchemeLiveNAS},
	})
	// Grid order: schemes outermost, contents within — hs[s*len(cats)+c].
	for c, cat := range cats {
		web := wait(hs[0*len(cats)+c])
		gen := wait(hs[1*len(cats)+c])
		ln := wait(hs[2*len(cats)+c])
		t.Add(cat.String(), fmt.Sprintf("%+.4f", gen.AvgSSIM-web.AvgSSIM), fmt.Sprintf("%+.4f", ln.AvgSSIM-web.AvgSSIM))
	}
	t.Notes = "paper: generic SR sometimes loses SSIM to WebRTC; LiveNAS does not"
	return t
}

// Fig26to29 reproduces Figures 26-29: per-trace absolute quality, one row
// per (content, trace).
func Fig26to29(o Options, r *sweep.Runner) *Table {
	t := &Table{
		ID:     "fig26-29",
		Title:  "Per-trace absolute quality (dB)",
		Header: []string{"content", "trace_avg_kbps", "WebRTC", "Generic", "LiveNAS"},
	}
	traces := o.uplinks(3, 260)
	cats := []vidgen.Category{vidgen.JustChatting, vidgen.WorldOfWarcraft, vidgen.Fortnite}
	type cell struct{ web, gen, ln *sweep.Handle }
	var cells []cell
	for _, cat := range cats {
		for _, tr := range traces {
			cfg := o.baseConfig(cat, 3)
			cfg.Trace = tr
			cfg.Scheme = core.SchemeWebRTC
			c := cell{web: r.Go(cfg)}
			cfg.Scheme = core.SchemeGeneric
			c.gen = r.Go(cfg)
			cfg.Scheme = core.SchemeLiveNAS
			c.ln = r.Go(cfg)
			cells = append(cells, c)
		}
	}
	i := 0
	for _, cat := range cats {
		for _, tr := range traces {
			c := cells[i]
			i++
			t.Add(cat.String(), tr.Avg(), wait(c.web).AvgPSNR, wait(c.gen).AvgPSNR, wait(c.ln).AvgPSNR)
		}
	}
	return t
}

// Table1 reproduces Table 1: the implementation's lines of code, counted
// over this repository.
func Table1(o Options) *Table {
	t := &Table{
		ID:     "table1",
		Title:  "Implementation lines of code (this repository)",
		Header: []string{"component", "files", "lines"},
	}
	root := repoRoot()
	groups := map[string][2]int{}
	var order []string
	filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, _ := filepath.Rel(root, path)
		parts := strings.Split(rel, string(filepath.Separator))
		group := parts[0]
		if len(parts) > 2 {
			group = filepath.Join(parts[0], parts[1])
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil
		}
		lines := strings.Count(string(data), "\n")
		g := groups[group]
		if g[0] == 0 {
			order = append(order, group)
		}
		g[0]++
		g[1] += lines
		groups[group] = g
		return nil
	})
	total := 0
	for _, g := range order {
		t.Add(g, groups[g][0], groups[g][1])
		total += groups[g][1]
	}
	t.Add("TOTAL", "", total)
	return t
}

// repoRoot walks up from the working directory to the go.mod.
func repoRoot() string {
	dir, _ := os.Getwd()
	for i := 0; i < 6; i++ {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		dir = filepath.Dir(dir)
	}
	return "."
}

// Table2 reproduces Table 2: super-resolution inference delay per
// resolution configuration, from the GPU device model.
func Table2(o Options) *Table {
	d := sr.RTX2080Ti()
	t := &Table{
		ID:     "table2",
		Title:  "SR inference delay (device model)",
		Header: []string{"ingest", "upscale", "target", "fps", "delay", "GPUs"},
	}
	type row struct {
		in     trace.Resolution
		scale  int
		target string
		gpus   int
	}
	for _, r := range []row{
		{trace.R270, 4, "1080p", 1},
		{trace.R360, 3, "1080p", 1},
		{trace.R540, 2, "1080p", 1},
		{trace.R720, 1, "1080p", 1},
		{trace.R720, 3, "4K", 3},
		{trace.R1080, 2, "4K", 3},
	} {
		lat := d.InferenceTime(r.in.W, r.in.H, r.scale, r.gpus)
		fps := 1 / lat.Seconds()
		up := fmt.Sprintf("x%d", r.scale)
		if r.scale == 1 {
			up = "x1(bilinear)"
		}
		t.Add(r.in.Name, up, r.target, fmt.Sprintf("%.0f", fps), lat, fmt.Sprintf("x%d", r.gpus))
	}
	t.Notes = "paper Table 2: 21-29 ms single GPU 1080p targets; 3 GPUs keep 4K real-time"
	return t
}
