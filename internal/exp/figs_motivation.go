package exp

import (
	"fmt"
	"time"

	"livenas/internal/abr"
	"livenas/internal/codec"
	"livenas/internal/core"
	"livenas/internal/frame"
	"livenas/internal/metrics"
	"livenas/internal/sr"
	"livenas/internal/sweep"
	"livenas/internal/trace"
	"livenas/internal/vidgen"
)

// Fig2a reproduces Figure 2a: live streaming (WebRTC/GCC) uses bandwidth far
// more conservatively than buffered adaptive streaming (DASH) on the same
// trace.
func Fig2a(o Options) *Table {
	tr := o.uplinks(1, 21)[0]
	cfg := o.baseConfig(vidgen.JustChatting, 2)
	cfg.Trace = tr
	cfg.Scheme = core.SchemeWebRTC
	r := core.Run(cfg)

	// DASH stand-in: a buffered ABR over the same trace; its large buffer
	// absorbs variation so it sustains near-capacity rates.
	w := o.world()
	rungs := []abr.Rung{}
	for _, k := range []float64{200, 400, 800, 1200, 1800, 2400, 3600, 4800, 7000, 10000} {
		kk := k * w.kbpsScale
		rungs = append(rungs, abr.Rung{Name: fmt.Sprintf("%.0fk", kk), Kbps: kk, EffectiveKbps: kk})
	}
	dash := abr.Simulate(abr.SimConfig{Rungs: rungs, Trace: tr, ChunkSec: 4, BufferCap: 30 * time.Second}, &abr.RobustMPC{})

	t := &Table{
		ID:     "fig2a",
		Title:  "Live streaming is sensitive to bandwidth variation",
		Header: []string{"t(s)", "available_kbps", "webrtc_kbps"},
	}
	for i, p := range r.Bandwidth {
		if i%5 != 0 {
			continue
		}
		t.Add(fmt.Sprintf("%.0f", p.T.Seconds()), r.LinkRate[i].V, p.V)
	}
	util := r.AvgBandwidthKbps / meanSeriesV(r.LinkRate)
	t.Notes = fmt.Sprintf("WebRTC mean utilisation %.0f%% of available (paper: 55-64%%); DASH avg rate %.0f kbps = %.0f%% of available",
		util*100, dash.AvgKbps, dash.AvgKbps/tr.Avg()*100)
	return t
}

// Fig2b reproduces Figure 2b: LiveNAS quality vs WebRTC while scaling the
// trace bandwidth x1/x1.5/x2 — SR is worth roughly a 1.5-2x bandwidth bump.
func Fig2b(o Options, r *sweep.Runner) *Table {
	tr := o.uplinks(1, 22)[0]
	t := &Table{
		ID:     "fig2b",
		Title:  "Super-resolution provides gains comparable to 1.5-2x bandwidth",
		Header: []string{"bw_scale", "WebRTC_dB", "LiveNAS_dB"},
	}
	scales := []float64{1, 1.5, 2}
	type pair struct{ web, ln *sweep.Handle }
	ps := make([]pair, len(scales))
	for i, s := range scales {
		cfg := o.baseConfig(vidgen.Sports, 2)
		cfg.Trace = tr.Scale(s)
		cfg.Scheme = core.SchemeWebRTC
		ps[i].web = r.Go(cfg)
		cfg.Scheme = core.SchemeLiveNAS
		ps[i].ln = r.Go(cfg)
	}
	for i, s := range scales {
		t.Add(fmt.Sprintf("x%.1f", s), wait(ps[i].web).AvgPSNR, wait(ps[i].ln).AvgPSNR)
	}
	t.Notes = "LiveNAS at x1 should approach WebRTC at x1.5-x2 (paper Fig 2b)"
	return t
}

// Fig2c reproduces Figure 2c: across three consecutive live-stream sessions,
// online learning on fresh data beats a model pre-trained on the previous
// session, which in turn (barely) beats plain bilinear.
func Fig2c(o Options, r *sweep.Runner) *Table {
	tr := o.uplinks(1, 23)[0]
	t := &Table{
		ID:     "fig2c",
		Title:  "Online learning with fresh data has a clear advantage",
		Header: []string{"session", "Bilinear_dB", "Pretrained_dB", "Online_dB"},
	}
	type day struct{ bil, pre, on *sweep.Handle }
	var days []day
	for d := 0; d < 3; d++ {
		cfg := o.baseConfig(vidgen.JustChatting, 2)
		cfg.Trace = tr
		cfg.Seed = 300 + o.Seed + int64(d)
		cfg.PretrainSeed = cfg.Seed - 1 // "previous day's stream"
		cfg.Scheme = core.SchemeWebRTC
		dd := day{bil: r.Go(cfg)}
		cfg.Scheme = core.SchemePretrained
		dd.pre = r.Go(cfg)
		cfg.Scheme = core.SchemeLiveNAS
		dd.on = r.Go(cfg)
		days = append(days, dd)
	}
	for d, dd := range days {
		t.Add(fmt.Sprintf("day-%d", d+1), wait(dd.bil).AvgPSNR, wait(dd.pre).AvgPSNR, wait(dd.on).AvgPSNR)
	}
	return t
}

// Fig2d reproduces Figure 2d: training on a small fraction of frames /
// frame area already captures most of the gain. Offline experiment on the
// SR trainer, as in the paper's motivation study.
func Fig2d(o Options) []*Table {
	w := o.world()
	native := w.native1080
	const scale = 2
	src := vidgen.NewSource(vidgen.JustChatting, native.W, native.H, 31+o.Seed, 300)
	cells := frame.Grid(native.W, native.H, 24)

	gainAt := func(fps float64, fracCells float64) float64 {
		m := sr.NewModel(scale, 6, 7)
		tr := sr.NewTrainer(m, sr.DefaultTrainConfig(), 5)
		dur := 60.0
		n := 0
		keep := int(float64(len(cells)) * fracCells)
		if keep < 1 {
			keep = 1
		}
		for ts := 0.0; ts < dur; ts += 1 / fps {
			f := src.FrameAt(ts)
			for j := 0; j < keep; j++ {
				cell := cells[n%len(cells)]
				n++
				hr := frame.Patch(f, cell, 24)
				tr.AddSample(hr.Downscale(scale), hr)
			}
		}
		for e := 0; e < 8; e++ {
			tr.Epoch()
		}
		hr := src.FrameAt(dur + 2)
		lr := hr.Downscale(scale)
		return metrics.PSNR(hr, m.SuperResolve(lr)) - metrics.PSNR(hr, lr.ResizeBilinear(hr.W, hr.H))
	}

	t1 := &Table{
		ID:     "fig2d-fps",
		Title:  "Gain vs label sampling rate (5% of frame per sample)",
		Header: []string{"sampling_fps", "gain_dB"},
	}
	for _, fps := range []float64{0.5, 2, 10, 30} {
		t1.Add(fmt.Sprintf("%.1f", fps), gainAt(fps, 0.05))
	}
	t2 := &Table{
		ID:     "fig2d-frac",
		Title:  "Gain vs fraction of frame sampled (at 0.5 fps)",
		Header: []string{"fraction_%", "gain_dB"},
	}
	for _, fr := range []float64{0.05, 0.25, 0.5, 1.0} {
		t2.Add(fmt.Sprintf("%.0f", fr*100), gainAt(0.5, fr))
	}
	t2.Notes = "paper: 5% crops at 0.5 fps within 0.27 dB of training on all frames"
	return []*Table{t1, t2}
}

// Fig5 reproduces the Figure 5 case study: the quality-optimizing scheduler
// on a 3G trace, with the computed gradient and the patch/video split, plus
// a fixed-allocation sweep standing in for the offline-optimal search.
func Fig5(o Options, run *sweep.Runner) *Table {
	w := o.world()
	tr3g := trace.ThreeG(5+o.Seed, o.duration()+time.Minute).Scale(w.kbpsScale * 5)
	cfg := o.baseConfig(vidgen.Sports, 2)
	cfg.Trace = tr3g
	hMain := run.Go(cfg)

	// Fixed-allocation sweep (the paper's §8.2 note: the scheduler beats
	// any fixed patch bandwidth), submitted alongside the main session.
	fixedScales := []float64{0, 0.5, 1, 2, 4}
	hFixed := make([]*sweep.Handle, len(fixedScales))
	for i, fixed := range fixedScales {
		c := cfg
		c.StepKbps = 0.0001 // freeze gradient steps
		c.InitPatchKbps = fixed * cfg.InitPatchKbps
		if fixed == 0 {
			c.Scheme = core.SchemeWebRTC
		}
		hFixed[i] = run.Go(c)
	}
	r := wait(hMain)

	t := &Table{
		ID:     "fig5",
		Title:  "Scheduler case study on a 3G trace",
		Header: []string{"t(s)", "target_kbps", "video_kbps", "patch_kbps", "gradient_dB_per_kbps"},
	}
	for i, g := range r.Grad {
		if i%5 != 0 {
			continue
		}
		t.Add(fmt.Sprintf("%.0f", g.T.Seconds()), g.TargetKbps, g.VideoKbps, g.PatchKbps, fmt.Sprintf("%+.4f", g.Gradient))
	}

	best, bestPSNR := 0.0, 0.0
	for i, fixed := range fixedScales {
		fr := wait(hFixed[i])
		if fr.AvgPSNR > bestPSNR {
			bestPSNR = fr.AvgPSNR
			best = fixed
		}
	}
	t.Notes = fmt.Sprintf("scheduler avg patch share %.1f%%; LiveNAS %.2f dB vs best fixed allocation (%.1fx init) %.2f dB",
		r.AvgPatchKbps/r.AvgBandwidthKbps*100, r.AvgPSNR, best, bestPSNR)
	return t
}

// Fig6 reproduces Figure 6: normalized bitrate-to-quality curves measured
// through the codec collapse per category.
func Fig6(o Options) *Table {
	w := o.world()
	t := &Table{
		ID:     "fig6",
		Title:  "Normalized bitrate-to-quality curves per category (measured)",
		Header: []string{"category", "video", "NQ@0.5M", "NQ@1.5M", "NQ@2.5M", "NQ@3.5M"},
	}
	rates := []float64{500, 1500, 2500, 3500}
	for _, cat := range []vidgen.Category{vidgen.Fortnite, vidgen.JustChatting, vidgen.LeagueOfLegends} {
		for vid := 0; vid < 2; vid++ {
			src := vidgen.NewSource(cat, w.native1080.W/2, w.native1080.H/2, 70+int64(vid)+o.Seed, 60)
			var qs []float64
			for _, rk := range rates {
				enc := codec.NewEncoder(codec.Config{Profile: codec.BX8, W: src.W, H: src.H, KeyInterval: 40})
				var ps []float64
				for i := 0; i < 10; i++ {
					f := src.FrameAt(float64(i) / 10)
					enc.Encode(f, int(rk*w.kbpsScale*5*1000/10))
					ps = append(ps, metrics.PSNR(f, enc.Reconstructed()))
				}
				qs = append(qs, metrics.Mean(ps[2:]))
			}
			max := qs[len(qs)-1]
			t.Add(cat.String(), fmt.Sprintf("video-%d", vid+1),
				qs[0]/max, qs[1]/max, qs[2]/max, qs[3]/max)
		}
	}
	t.Notes = "normalized curves of videos in the same category should nearly coincide"
	return t
}

// Fig8 reproduces Figure 8: the CDF of the evaluation traces' mean uplink
// bandwidth and the ingest-resolution mapping.
func Fig8(o Options) *Table {
	means := trace.SampleFCCMeans(25, 1000+o.Seed)
	t := &Table{
		ID:     "fig8",
		Title:  "CDF of FCC uplink traces (<=10 Mbps) with ingest resolutions",
		Header: []string{"P", "mean_kbps", "ingest(1080p)", "ingest(4K)"},
	}
	for _, pt := range metrics.CDF(means) {
		t.Add(fmt.Sprintf("%.2f", pt.P), pt.X,
			trace.IngestResolutionFor(pt.X, false).Name,
			trace.IngestResolutionFor(pt.X, true).Name)
	}
	return t
}

func meanSeriesV(ps []core.SeriesPoint) float64 {
	if len(ps) == 0 {
		return 0
	}
	var s float64
	for _, p := range ps {
		s += p.V
	}
	return s / float64(len(ps))
}
