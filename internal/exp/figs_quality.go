package exp

import (
	"fmt"

	"livenas/internal/codec"
	"livenas/internal/core"
	"livenas/internal/sweep"
	"livenas/internal/vidgen"
)

// Fig9 reproduces Figure 9: end-to-end PSNR gains over WebRTC for the five
// Twitch categories at both 1080p-class ingest scales (x3 = "360p",
// x2 = "540p"), for the Generic / Pretrained / LiveNAS schemes, plus the
// GPU training time (Fig 9d). Every session of both scales is submitted to
// the sweep runner before any is awaited.
func Fig9(o Options, r *sweep.Runner) []*Table {
	type row struct {
		cat            vidgen.Category
		gen, pre, lnas gainJob
	}
	scales := []int{3, 2}
	jobs := make([][]row, len(scales))
	for i, scale := range scales {
		traces := o.uplinks(o.traces(), 90+int64(scale))
		for _, cat := range vidgen.TwitchCategories() {
			cfg := o.baseConfig(cat, scale)
			jobs[i] = append(jobs[i], row{
				cat:  cat,
				gen:  submitGain(r, cfg, traces, core.SchemeGeneric),
				pre:  submitGain(r, cfg, traces, core.SchemePretrained),
				lnas: submitGain(r, cfg, traces, core.SchemeLiveNAS),
			})
		}
	}
	var out []*Table
	for i, scale := range scales {
		name := map[int]string{3: "360p", 2: "540p"}[scale]
		t := &Table{
			ID:     fmt.Sprintf("fig9-%s", name),
			Title:  fmt.Sprintf("Twitch ingest %s -> 1080p-class: PSNR gain over WebRTC (dB)", name),
			Header: []string{"content", "Generic", "Pretrained", "LiveNAS", "train_share"},
		}
		for _, rw := range jobs[i] {
			gGen, _, _, _ := rw.gen.mean()
			gPre, _, _, _ := rw.pre.mean()
			gLnas, share, _, _ := rw.lnas.mean()
			t.Add(rw.cat.String(), gGen, gPre, gLnas, fmt.Sprintf("%.0f%%", share*100))
		}
		t.Notes = "expect LiveNAS > Pretrained > Generic > 0; train_share well below 100% (Fig 9d)"
		out = append(out, t)
	}
	return out
}

// Fig10 reproduces Figure 10: the four YouTube 4K categories at 4K-class
// target (x3 = "720p" ingest, x2 = "1080p" ingest), Generic vs LiveNAS,
// plus GPU usage. No prior sessions exist for these videos (as in the
// paper), so Pretrained is omitted.
func Fig10(o Options, r *sweep.Runner) []*Table {
	type row struct {
		cat       vidgen.Category
		gen, lnas gainJob
	}
	scales := []int{3, 2}
	jobs := make([][]row, len(scales))
	for i, scale := range scales {
		traces := o.uplinks(o.traces(), 100+int64(scale))
		for _, cat := range vidgen.YouTubeCategories() {
			cfg := o.fourKConfig(cat, scale)
			jobs[i] = append(jobs[i], row{
				cat:  cat,
				gen:  submitGain(r, cfg, traces, core.SchemeGeneric),
				lnas: submitGain(r, cfg, traces, core.SchemeLiveNAS),
			})
		}
	}
	var out []*Table
	for i, scale := range scales {
		name := map[int]string{3: "720p", 2: "1080p"}[scale]
		t := &Table{
			ID:     fmt.Sprintf("fig10-%s", name),
			Title:  fmt.Sprintf("YouTube ingest %s -> 4K-class: PSNR gain over WebRTC (dB)", name),
			Header: []string{"content", "Generic", "LiveNAS", "train_share"},
		}
		for _, rw := range jobs[i] {
			gGen, _, _, _ := rw.gen.mean()
			gLnas, share, _, _ := rw.lnas.mean()
			t.Add(rw.cat.String(), gGen, gLnas, fmt.Sprintf("%.0f%%", share*100))
		}
		t.Notes = "larger SR factor (x3) needs more GPU than x2 (paper Fig 10d)"
		out = append(out, t)
	}
	return out
}

// Fig11 reproduces Figure 11: persistent online learning (warm-starting
// from the previous session's final model) adds on top of plain LiveNAS.
func Fig11(o Options, r *sweep.Runner) *Table {
	t := &Table{
		ID:     "fig11",
		Title:  "Persistent online learning (gain over WebRTC, dB)",
		Header: []string{"content", "Generic", "Pretrained", "LiveNAS", "LiveNAS_persistent"},
	}
	traces := o.uplinks(o.traces(), 110)
	type row struct {
		cat                  vidgen.Category
		gen, pre, lnas, pers gainJob
	}
	var rows []row
	for _, cat := range []vidgen.Category{vidgen.LeagueOfLegends, vidgen.JustChatting, vidgen.WorldOfWarcraft} {
		cfg := o.baseConfig(cat, 3)
		rw := row{
			cat:  cat,
			gen:  submitGain(r, cfg, traces, core.SchemeGeneric),
			pre:  submitGain(r, cfg, traces, core.SchemePretrained),
			lnas: submitGain(r, cfg, traces, core.SchemeLiveNAS),
		}
		cfg.Persistent = true
		rw.pers = submitGain(r, cfg, traces, core.SchemeLiveNAS)
		rows = append(rows, rw)
	}
	for _, rw := range rows {
		gGen, _, _, _ := rw.gen.mean()
		gPre, _, _, _ := rw.pre.mean()
		gLnas, _, _, _ := rw.lnas.mean()
		gPers, _, _, _ := rw.pers.mean()
		t.Add(rw.cat.String(), gGen, gPre, gLnas, gPers)
	}
	t.Notes = "paper: persistent adds 0.37-0.7 dB over plain LiveNAS"
	return t
}

// Fig12 reproduces Figure 12: multi-GPU online training improves quality
// with diminishing returns.
func Fig12(o Options, r *sweep.Runner) *Table {
	t := &Table{
		ID:     "fig12",
		Title:  "Multi-GPU training (gain over WebRTC, dB)",
		Header: []string{"content", "GPUx1", "GPUx3"},
	}
	traces := o.uplinks(o.traces(), 120)
	type row struct {
		cat    vidgen.Category
		g1, g3 gainJob
	}
	var rows []row
	for _, cat := range []vidgen.Category{vidgen.LeagueOfLegends, vidgen.JustChatting, vidgen.WorldOfWarcraft} {
		cfg := o.baseConfig(cat, 3)
		rw := row{cat: cat, g1: submitGain(r, cfg, traces, core.SchemeLiveNAS)}
		cfg.TrainGPUs = 3
		// Faster epochs let the trainer take more steps per window: model
		// the paper's accelerated learning by scaling iterations.
		tc := cfg.TrainCfg
		tc.ItersPerEpoch = 3 * 16
		cfg.TrainCfg = tc
		rw.g3 = submitGain(r, cfg, traces, core.SchemeLiveNAS)
		rows = append(rows, rw)
	}
	for _, rw := range rows {
		g1, _, _, _ := rw.g1.mean()
		g3, _, _, _ := rw.g3.mean()
		t.Add(rw.cat.String(), g1, g3)
	}
	t.Notes = "paper: +0.77-1.1 dB additional gain with 3 GPUs"
	return t
}

// Fig13 reproduces Figure 13: the bandwidth WebRTC needs (as a scale factor
// on the trace) to match LiveNAS quality; reported as LiveNAS's normalized
// bandwidth usage. The WebRTC scale sweep stops as soon as a scale matches,
// so it stays a sequential search rather than a sweep submission.
func Fig13(o Options) *Table {
	t := &Table{
		ID:     "fig13",
		Title:  "LiveNAS bandwidth use, normalized to WebRTC at equal quality",
		Header: []string{"ingest", "livenas_dB", "webrtc_match_scale", "normalized_bw"},
	}
	traces := o.uplinks(1, 130)
	for _, scale := range []int{3, 2} {
		name := map[int]string{3: "360p-class", 2: "540p-class"}[scale]
		cfg := o.baseConfig(vidgen.JustChatting, scale)
		cfg.Trace = traces[0]
		cfg.Scheme = core.SchemeLiveNAS
		ln := core.Run(cfg)
		// Sweep WebRTC bandwidth scales and interpolate the matching one.
		scales := []float64{1, 1.5, 2, 2.5, 3}
		prevQ, prevS := 0.0, 0.0
		match := scales[len(scales)-1]
		for _, s := range scales {
			c := cfg
			c.Scheme = core.SchemeWebRTC
			c.Trace = traces[0].Scale(s)
			q := core.Run(c).AvgPSNR
			if q >= ln.AvgPSNR {
				if s == scales[0] || q == prevQ {
					match = s
				} else {
					match = prevS + (s-prevS)*(ln.AvgPSNR-prevQ)/(q-prevQ)
				}
				break
			}
			prevQ, prevS = q, s
			match = s
		}
		t.Add(name, ln.AvgPSNR, fmt.Sprintf("x%.2f", match), fmt.Sprintf("%.2f", 1/match))
	}
	t.Notes = "paper: LiveNAS needs ~46% of WebRTC's bandwidth on average"
	return t
}

// Fig14 reproduces Figure 14: the LiveNAS gain is codec-agnostic (BX8 vs
// BX9, the VP8/VP9 stand-ins).
func Fig14(o Options, r *sweep.Runner) *Table {
	t := &Table{
		ID:     "fig14",
		Title:  "LiveNAS is codec-agnostic (gain over WebRTC, dB)",
		Header: []string{"content", "BX8(VP8)", "BX9(VP9)"},
	}
	traces := o.uplinks(o.traces(), 140)
	type row struct {
		cat    vidgen.Category
		g8, g9 gainJob
	}
	var rows []row
	for _, cat := range []vidgen.Category{vidgen.LeagueOfLegends, vidgen.JustChatting, vidgen.WorldOfWarcraft} {
		cfg := o.baseConfig(cat, 3)
		cfg.Profile = codec.BX8
		rw := row{cat: cat, g8: submitGain(r, cfg, traces, core.SchemeLiveNAS)}
		cfg.Profile = codec.BX9
		rw.g9 = submitGain(r, cfg, traces, core.SchemeLiveNAS)
		rows = append(rows, rw)
	}
	for _, rw := range rows {
		g8, _, _, _ := rw.g8.mean()
		g9, _, _, _ := rw.g9.mean()
		t.Add(rw.cat.String(), g8, g9)
	}
	t.Notes = "gains should be nearly equal across codecs"
	return t
}
