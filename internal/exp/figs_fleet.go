package exp

import (
	"fmt"
	"time"

	"livenas/internal/core"
	"livenas/internal/fleet"
	"livenas/internal/sweep"
	"livenas/internal/vidgen"
)

// fleetCats cycles stream content across the fleet so the quality-weighted
// allocator has real weight spread to work with.
var fleetCats = []vidgen.Category{
	vidgen.JustChatting, vidgen.Fortnite, vidgen.LeagueOfLegends,
	vidgen.EscapeFromTarkov, vidgen.WorldOfWarcraft,
}

// FleetSpecs builds the N-streamer arrival pattern the fleet experiment and
// benchmarks share: content cycles through the Twitch categories, seeds and
// traces differ per stream, and arrivals stagger at quarter-session spacing
// so aggregate demand overlaps hard enough to force admission decisions.
func FleetSpecs(o Options, n int) []fleet.StreamSpec {
	traces := o.uplinks(n, 770)
	specs := make([]fleet.StreamSpec, n)
	for i := range specs {
		cfg := o.baseConfig(fleetCats[i%len(fleetCats)], 2)
		cfg.Seed += int64(i) * 13
		cfg.Trace = traces[i]
		specs[i] = fleet.StreamSpec{
			Key:      fmt.Sprintf("ch%03d", i),
			ArriveAt: time.Duration(i) * o.duration() / 4,
			Cfg:      cfg,
		}
	}
	return specs
}

func (o Options) fleetStreams() int {
	if o.FleetStreams > 0 {
		return o.FleetStreams
	}
	return 6
}

func (o Options) fleetGPUs() int {
	if o.FleetGPUs > 0 {
		return o.FleetGPUs
	}
	return 2
}

// FleetBenchPlan builds the fixed fleet scripts/bench.sh times serially and
// in parallel (BENCH_fleet.json): short overlapping sessions under
// PolicyQueue, so the plan exercises admission latency and every stream
// eventually runs. Deterministic: the same options always yield the same
// plan, and its virtual-time admission p99 doubles as a cross-host
// determinism pin in the benchmark record.
func FleetBenchPlan(o Options) (*fleet.Plan, error) {
	o.Duration = 20 * time.Second // arrivals every 5s, 20s sessions: 4x overlap
	specs := FleetSpecs(o, o.fleetStreams())
	return fleet.BuildPlan(specs, fleet.Options{GPUs: o.fleetGPUs(), Policy: fleet.PolicyQueue})
}

// FigFleet is the multi-tenant ingest-node figure: N streamers arriving at
// one node with M GPUs, swept over the three admission policies. Each row
// reports the policy's admission outcome (admitted/degraded/rejected/
// starved), GPU-pool utilization, p99 admission latency (virtual time spent
// under backpressure), and the delivered mean PSNR gain over the WebRTC
// baseline across all streams that ingested — degraded streams count with
// zero gain, which is exactly the quality price of not rejecting them.
//
// Byte-identical for any sweep worker count: the admission timeline is
// computed on the fleet's virtual clock before any session runs, sessions
// execute through the sweep runner's deterministic engine, and rows are
// emitted in fixed policy order.
func FigFleet(o Options, r *sweep.Runner) *Table {
	n, m := o.fleetStreams(), o.fleetGPUs()
	specs := FleetSpecs(o, n)
	t := &Table{
		ID:    "fleet",
		Title: fmt.Sprintf("Multi-tenant ingest: %d streamers on %d GPUs per admission policy", n, m),
		Header: []string{"policy", "admitted", "degraded", "rejected", "starved",
			"gpu_util", "admit_p99", "mean_gain_dB"},
	}

	policies := []fleet.Policy{fleet.PolicyReject, fleet.PolicyDegrade, fleet.PolicyQueue}
	plans := make([]*fleet.Plan, len(policies))
	bases := make([][]*sweep.Handle, len(policies))
	for i, pol := range policies {
		p, err := fleet.BuildPlan(specs, fleet.Options{GPUs: m, Policy: pol})
		if err != nil {
			panic(err)
		}
		p.Submit(r)
		// Per-stream WebRTC baselines for the gain metric. ChannelKey is
		// stripped so the baseline session is channel-anonymous and the
		// runner memoizes it across all three policy plans.
		var hs []*sweep.Handle
		for _, s := range p.M.Sessions() {
			if !s.Admitted() {
				hs = append(hs, nil)
				continue
			}
			b := s.Cfg
			b.ChannelKey = ""
			b.Scheme = core.SchemeWebRTC
			b.TrainGPUs, b.InferGPUs = 0, 0
			hs = append(hs, r.Go(b))
		}
		plans[i], bases[i] = p, hs
	}

	for i, pol := range policies {
		p := plans[i]
		if err := p.Collect(); err != nil {
			panic(err)
		}
		var gain float64
		var ran int
		for j, s := range p.M.Sessions() {
			if !s.Admitted() {
				continue
			}
			gain += s.Results.GainOver(wait(bases[i][j]))
			ran++
		}
		if ran > 0 {
			gain /= float64(ran)
		}
		st := p.Stats()
		t.Add(pol.String(), st.Admitted, st.Degraded, st.Rejected, st.Starved,
			fmt.Sprintf("%.2f", st.Utilization), st.AdmitP99, gain)
	}
	t.Notes = "queue trades admission latency for zero refusals; degrade trades mean gain; reject keeps both at the cost of availability"
	return t
}
