package exp

import (
	"context"
	"strconv"
	"strings"
	"testing"
	"time"

	"livenas/internal/sweep"
)

func fastOpts() Options {
	o := DefaultOptions()
	o.Duration = 25 * time.Second
	o.Traces = 1
	return o
}

// testRunner gives swept figures a small concurrent runner, exercising the
// submit-then-collect path the harness uses in production.
func testRunner() *sweep.Runner {
	return sweep.New(context.Background(), sweep.Options{Workers: 2})
}

func TestTableString(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Header: []string{"a", "b"}}
	tb.Add("row", 1.5)
	tb.Add(42, time.Second)
	tb.Notes = "note"
	s := tb.String()
	for _, want := range []string{"== x: demo ==", "row", "1.50", "42", "1s", "-- note"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestRegistryFindAndIDs(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Registry) {
		t.Fatalf("IDs %d != registry %d", len(ids), len(Registry))
	}
	for _, id := range ids {
		if _, err := Find(id); err != nil {
			t.Fatalf("Find(%q): %v", id, err)
		}
	}
	if _, err := Find("nope"); err == nil {
		t.Fatal("Find must fail for unknown id")
	}
}

func TestWorldScaleGeometry(t *testing.T) {
	for _, o := range []Options{{Fast: true}, {Fast: false}} {
		w := o.world()
		// SR factors must divide both native classes.
		for _, s := range []int{2, 3} {
			if w.native1080.W%s != 0 || w.native4K.W%s != 0 {
				t.Fatalf("scale %d does not divide world widths", s)
			}
		}
		// The proportional patch size must tile both natives exactly into
		// the paper's 16x9 grid.
		for _, native := range []struct{ W, H int }{
			{w.native1080.W, w.native1080.H},
			{w.native4K.W, w.native4K.H},
		} {
			ps := 24 * native.H / 216
			if native.W/ps != 16 || native.H/ps != 9 {
				t.Fatalf("grid %dx%d not 16x9 for %dx%d (ps=%d)", native.W/ps, native.H/ps, native.W, native.H, ps)
			}
		}
	}
}

func TestConfigForGeometry(t *testing.T) {
	o := fastOpts()
	for _, scale := range []int{2, 3} {
		cfg := o.baseConfig(0, scale)
		if got := cfg.Scale(); got != scale {
			t.Fatalf("scale %d got %d", scale, got)
		}
		cfg4 := o.fourKConfig(0, scale)
		if got := cfg4.Scale(); got != scale {
			t.Fatalf("4K scale %d got %d", scale, got)
		}
		if cfg4.PatchSize != 2*cfg.PatchSize {
			t.Fatalf("4K patch %d should be 2x 1080p patch %d", cfg4.PatchSize, cfg.PatchSize)
		}
	}
}

func TestUplinksScaledIntoWorld(t *testing.T) {
	o := fastOpts()
	traces := o.uplinks(5, 1)
	if len(traces) != 5 {
		t.Fatalf("traces %d", len(traces))
	}
	for _, tr := range traces {
		avg := tr.Avg()
		// Fig-8 means are 0.5-10 Mbps; the fast world divides by 25.
		if avg < 10 || avg > 800 {
			t.Fatalf("trace mean %v outside the scaled world regime", avg)
		}
	}
}

func TestFig8Structure(t *testing.T) {
	tb := Fig8(fastOpts())
	if len(tb.Rows) != 25 {
		t.Fatalf("Fig8 rows %d want 25", len(tb.Rows))
	}
	// CDF P column must be non-decreasing and end at 1.00.
	prev := 0.0
	for _, r := range tb.Rows {
		p, err := strconv.ParseFloat(r[0], 64)
		if err != nil || p < prev {
			t.Fatalf("bad CDF row %v", r)
		}
		prev = p
	}
	if tb.Rows[len(tb.Rows)-1][0] != "1.00" {
		t.Fatal("CDF must end at 1.00")
	}
}

func TestTable2Structure(t *testing.T) {
	tb := Table2(fastOpts())
	if len(tb.Rows) != 6 {
		t.Fatalf("Table2 rows %d want 6", len(tb.Rows))
	}
	// The two 4K rows use 3 GPUs.
	for _, r := range tb.Rows[4:] {
		if r[5] != "x3" {
			t.Fatalf("4K row GPUs %q", r[5])
		}
	}
}

func TestTable1CountsThisRepo(t *testing.T) {
	tb := Table1(fastOpts())
	if len(tb.Rows) < 5 {
		t.Fatalf("Table1 rows %d", len(tb.Rows))
	}
	last := tb.Rows[len(tb.Rows)-1]
	if last[0] != "TOTAL" {
		t.Fatal("Table1 missing TOTAL row")
	}
	total, err := strconv.Atoi(last[2])
	if err != nil || total < 5000 {
		t.Fatalf("implausible total LoC %q", last[2])
	}
}

func TestFig17Structure(t *testing.T) {
	tb := Fig17(fastOpts())
	if len(tb.Rows) != 4 {
		t.Fatalf("Fig17 rows %d", len(tb.Rows))
	}
	if !strings.Contains(tb.Rows[1][6], "%") {
		t.Fatalf("LiveNAS row missing saving: %v", tb.Rows[1])
	}
}

func TestFig2aRuns(t *testing.T) {
	tb := Fig2a(fastOpts())
	if len(tb.Rows) == 0 || !strings.Contains(tb.Notes, "utilisation") {
		t.Fatalf("Fig2a incomplete: %v", tb.Notes)
	}
}

func TestFig22DiminishingGradient(t *testing.T) {
	tb := Fig22(fastOpts())
	if len(tb.Rows) < 4 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	first, _ := strconv.ParseFloat(strings.TrimPrefix(tb.Rows[0][2], "+"), 64)
	last, _ := strconv.ParseFloat(strings.TrimPrefix(tb.Rows[len(tb.Rows)-1][2], "+"), 64)
	if !(first > last) {
		t.Fatalf("per-epoch gradient should diminish: first %v last %v", first, last)
	}
}

func TestFig20QoEImproves(t *testing.T) {
	tables := Fig20(fastOpts(), testRunner())
	if len(tables) != 2 {
		t.Fatalf("tables %d", len(tables))
	}
	improved := 0
	for _, tb := range tables {
		for _, r := range tb.Rows {
			q0, _ := strconv.ParseFloat(r[2], 64)
			q1, _ := strconv.ParseFloat(r[3], 64)
			// Tiny boosts (warm-up-limited short runs) may wiggle the
			// smoothness term by a few percent; never allow a real loss.
			if q1 < q0*0.95-0.02 {
				t.Fatalf("%s: LiveNAS QoE %v well below WebRTC %v in %v", tb.ID, q1, q0, r)
			}
			if q1 > q0 {
				improved++
			}
		}
	}
	if improved < 4 {
		t.Fatalf("only %d of 8 cells improved", improved)
	}
}
