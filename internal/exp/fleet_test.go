package exp

import (
	"context"
	"strconv"
	"testing"

	"livenas/internal/sweep"
)

// TestFigFleetWorkerInvariant is the fleet determinism acceptance gate:
// the N×M admission-policy table must be byte-identical whether its
// sessions execute on 1, 2 or 8 sweep workers.
func TestFigFleetWorkerInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full fleet sessions")
	}
	o := fastOpts()
	o.FleetStreams = 4
	// A shared on-disk cache across the worker-count runs: determinism is
	// about execution order, and by the sweep contract a cached result is
	// bitwise the computed one, so re-running identical sessions per worker
	// count would only re-prove core determinism (covered elsewhere).
	cache, err := sweep.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	render := func(workers int) string {
		r := sweep.New(context.Background(), sweep.Options{Workers: workers, Cache: cache})
		return FigFleet(o, r).String()
	}
	base := render(1)
	for _, w := range []int{2, 8} {
		if got := render(w); got != base {
			t.Fatalf("fleet table differs between 1 and %d workers:\n%s\nvs\n%s", w, base, got)
		}
	}
	// Structure: one row per policy, and the policies must show their
	// signatures under contention (4 streamers, 2 GPUs, overlapping
	// arrivals): reject refuses streams, degrade refuses none but degrades
	// some, queue neither refuses nor degrades.
	tb := FigFleet(o, sweep.New(context.Background(), sweep.Options{Workers: 2, Cache: cache}))
	if len(tb.Rows) != 3 {
		t.Fatalf("fleet rows %d, want 3 policies", len(tb.Rows))
	}
	cell := func(row, col int) int {
		v, err := strconv.Atoi(tb.Rows[row][col])
		if err != nil {
			t.Fatalf("row %d col %d %q not an int", row, col, tb.Rows[row][col])
		}
		return v
	}
	if cell(0, 3) == 0 {
		t.Fatalf("reject policy refused nothing: %v", tb.Rows[0])
	}
	if cell(1, 2) == 0 || cell(1, 3) != 0 {
		t.Fatalf("degrade policy: %v", tb.Rows[1])
	}
	if cell(2, 2) != 0 || cell(2, 3) != 0 {
		t.Fatalf("queue policy refused streams: %v", tb.Rows[2])
	}
}
