package exp

import (
	"livenas/internal/core"
	"livenas/internal/telemetry"
	"livenas/internal/vidgen"
)

// RunSummary executes one representative LiveNAS session — the harness's
// base 1080p-class configuration on one FCC-distributed uplink — and
// condenses it into the machine-readable telemetry summary
// (scheduler split, trainer duty cycle, inference latency quantiles).
// cmd/livenas-bench -summary writes it to disk and the CI full tier
// validates it (cmd/bench-compare -summary).
func RunSummary(o Options) telemetry.RunSummary {
	cfg := o.baseConfig(vidgen.JustChatting, 2)
	cfg.Trace = o.uplinks(1, 77)[0]
	return core.Run(cfg).TelemetrySummary()
}
