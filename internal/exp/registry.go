package exp

import (
	"fmt"
	"sort"
)

// Experiment is a registered table/figure generator.
type Experiment struct {
	ID   string
	Desc string
	Run  func(Options) []*Table
}

// one adapts a single-table generator.
func one(f func(Options) *Table) func(Options) []*Table {
	return func(o Options) []*Table { return []*Table{f(o)} }
}

// Registry lists every reproducible table and figure.
var Registry = []Experiment{
	{"fig2a", "WebRTC vs DASH bandwidth use (motivation)", one(Fig2a)},
	{"fig2b", "SR gain vs bandwidth scale", one(Fig2b)},
	{"fig2c", "online vs pre-trained vs bilinear", one(Fig2c)},
	{"fig2d", "fractional high-quality labels", Fig2d},
	{"fig5", "quality-optimizing scheduler case study", one(Fig5)},
	{"fig6", "normalized bitrate-quality curves", one(Fig6)},
	{"fig8", "trace CDF and ingest resolutions", one(Fig8)},
	{"fig9", "Twitch end-to-end gains + GPU usage", Fig9},
	{"fig10", "YouTube 4K end-to-end gains + GPU usage", Fig10},
	{"fig11", "persistent online learning", one(Fig11)},
	{"fig12", "multi-GPU training", one(Fig12)},
	{"fig13", "bandwidth savings at equal quality", one(Fig13)},
	{"fig14", "codec-agnostic gains", one(Fig14)},
	{"fig15", "GPU usage vs quality per scheme", one(Fig15)},
	{"fig16", "content-adaptive trainer timeline", one(Fig16)},
	{"fig17", "client power savings", one(Fig17)},
	{"fig18", "gain per stream interval", one(Fig18)},
	{"fig19", "content-adaptive vs one-time", Fig19},
	{"fig20", "distribution-side viewer QoE", Fig20},
	{"fig21", "patch-grid PSNR heatmaps", one(Fig21)},
	{"fig22", "gain vs training epoch", one(Fig22)},
	{"fig23", "training-window sensitivity", Fig23},
	{"fig25", "SSIM improvements", one(Fig25)},
	{"fig26-29", "per-trace absolute quality", one(Fig26to29)},
	{"table1", "implementation lines of code", one(Table1)},
	{"table2", "SR inference delay", one(Table2)},
	{"abl-residual", "ablation: residual vs direct SR", one(AblationResidual)},
	{"abl-sampler", "ablation: patch selection filter", one(AblationSampler)},
	{"abl-recency", "ablation: recency-weighted batches", one(AblationRecency)},
	{"abl-scheduler", "ablation: scheduler vs fixed allocation", one(AblationScheduler)},
	{"abl-funcodec", "ablation: functional-codec quality probe", one(AblationFunctionalCodec)},
}

// Find returns the registered experiment with the given id.
func Find(id string) (Experiment, error) {
	for _, e := range Registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q", id)
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	out := make([]string, len(Registry))
	for i, e := range Registry {
		out[i] = e.ID
	}
	sort.Strings(out)
	return out
}
