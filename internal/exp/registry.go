package exp

import (
	"context"
	"fmt"
	"sort"

	"livenas/internal/sweep"
)

// Experiment is a registered table/figure generator. Run executes it: ctx
// bounds every session the experiment starts and r is the sweep engine its
// sessions are submitted to. A nil runner gets a private one bound to ctx;
// by the sweep engine's determinism contract the tables are byte-identical
// for any runner (any worker count, warm or cold cache). Generators that
// predate the sweep engine (offline trainer studies, single-session case
// studies) run their sessions inline and ignore ctx between sessions.
type Experiment struct {
	ID   string
	Desc string
	Run  func(ctx context.Context, o Options, r *sweep.Runner) []*Table
}

type runFn = func(ctx context.Context, o Options, r *sweep.Runner) []*Table

// ensure returns r, or a fresh default runner bound to ctx.
func ensure(ctx context.Context, r *sweep.Runner) *sweep.Runner {
	if r == nil {
		return sweep.New(ctx, sweep.Options{})
	}
	return r
}

// one adapts a legacy single-table generator that runs its sessions inline.
func one(f func(Options) *Table) runFn {
	return func(_ context.Context, o Options, _ *sweep.Runner) []*Table { return []*Table{f(o)} }
}

// tables adapts a legacy multi-table generator.
func tables(f func(Options) []*Table) runFn {
	return func(_ context.Context, o Options, _ *sweep.Runner) []*Table { return f(o) }
}

// oneSwept adapts a sweep-aware single-table generator.
func oneSwept(f func(Options, *sweep.Runner) *Table) runFn {
	return func(ctx context.Context, o Options, r *sweep.Runner) []*Table {
		return []*Table{f(o, ensure(ctx, r))}
	}
}

// swept adapts a sweep-aware multi-table generator.
func swept(f func(Options, *sweep.Runner) []*Table) runFn {
	return func(ctx context.Context, o Options, r *sweep.Runner) []*Table {
		return f(o, ensure(ctx, r))
	}
}

// Registry lists every reproducible table and figure.
var Registry = []Experiment{
	{"fig2a", "WebRTC vs DASH bandwidth use (motivation)", one(Fig2a)},
	{"fig2b", "SR gain vs bandwidth scale", oneSwept(Fig2b)},
	{"fig2c", "online vs pre-trained vs bilinear", oneSwept(Fig2c)},
	{"fig2d", "fractional high-quality labels", tables(Fig2d)},
	{"fig5", "quality-optimizing scheduler case study", oneSwept(Fig5)},
	{"fig6", "normalized bitrate-quality curves", one(Fig6)},
	{"fig8", "trace CDF and ingest resolutions", one(Fig8)},
	{"fig9", "Twitch end-to-end gains + GPU usage", swept(Fig9)},
	{"fig10", "YouTube 4K end-to-end gains + GPU usage", swept(Fig10)},
	{"fig11", "persistent online learning", oneSwept(Fig11)},
	{"fig12", "multi-GPU training", oneSwept(Fig12)},
	{"fig13", "bandwidth savings at equal quality", one(Fig13)},
	{"fig14", "codec-agnostic gains", oneSwept(Fig14)},
	{"fig15", "GPU usage vs quality per scheme", oneSwept(Fig15)},
	{"fig16", "content-adaptive trainer timeline", oneSwept(Fig16)},
	{"fig17", "client power savings", one(Fig17)},
	{"fig18", "gain per stream interval", oneSwept(Fig18)},
	{"fig19", "content-adaptive vs one-time", swept(Fig19)},
	{"fig20", "distribution-side viewer QoE", swept(Fig20)},
	{"fig21", "patch-grid PSNR heatmaps", oneSwept(Fig21)},
	{"fig22", "gain vs training epoch", one(Fig22)},
	{"fig23", "training-window sensitivity", swept(Fig23)},
	{"fig25", "SSIM improvements", oneSwept(Fig25)},
	{"fig26-29", "per-trace absolute quality", oneSwept(Fig26to29)},
	{"table1", "implementation lines of code", one(Table1)},
	{"table2", "SR inference delay", one(Table2)},
	{"abl-residual", "ablation: residual vs direct SR", one(AblationResidual)},
	{"abl-sampler", "ablation: patch selection filter", one(AblationSampler)},
	{"abl-recency", "ablation: recency-weighted batches", one(AblationRecency)},
	{"abl-scheduler", "ablation: scheduler vs fixed allocation", oneSwept(AblationScheduler)},
	{"abl-funcodec", "ablation: functional-codec quality probe", oneSwept(AblationFunctionalCodec)},
	{"fleet", "multi-tenant ingest: N streamers x M GPUs per admission policy", oneSwept(FigFleet)},
	{"edge", "distribution edge: origin->relay->viewer fan-out of enhanced output", oneSwept(FigEdge)},
}

// Find returns the registered experiment with the given id.
func Find(id string) (Experiment, error) {
	for _, e := range Registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q", id)
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	out := make([]string, len(Registry))
	for i, e := range Registry {
		out[i] = e.ID
	}
	sort.Strings(out)
	return out
}
