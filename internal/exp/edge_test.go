package exp

import (
	"context"
	"strings"
	"testing"

	"livenas/internal/edge"
	"livenas/internal/sweep"
)

// TestFigEdgeWorkerInvariant is the edge determinism acceptance gate: the
// fan-out table must be byte-identical whether the ingest sessions run on
// 1, 2 or 8 sweep workers (the fan-out sims themselves are inline and
// virtual-clocked).
func TestFigEdgeWorkerInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full ingest sessions")
	}
	o := fastOpts()
	o.EdgeMaxViewers = 100 // sweep 10 and 100 viewers; 1000 is for the full harness
	cache, err := sweep.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	render := func(workers int) string {
		r := sweep.New(context.Background(), sweep.Options{Workers: workers, Cache: cache})
		return FigEdge(o, r).String()
	}
	base := render(1)
	for _, w := range []int{2, 8} {
		if got := render(w); got != base {
			t.Fatalf("edge table differs between 1 and %d workers:\n%s\nvs\n%s", w, base, got)
		}
	}
	// Structure: a direct and a tree row per viewer count, and the tree
	// must cut origin egress (the "saving" column carries a multiplier).
	tb := FigEdge(o, sweep.New(context.Background(), sweep.Options{Workers: 2, Cache: cache}))
	if len(tb.Rows) != 4 {
		t.Fatalf("edge rows %d, want 4 (direct+tree x 10/100 viewers):\n%s", len(tb.Rows), tb)
	}
	for i := 1; i < len(tb.Rows); i += 2 {
		saving := tb.Rows[i][len(tb.Rows[i])-1]
		if !strings.HasPrefix(saving, "x") {
			t.Fatalf("tree row %d has no egress saving: %v", i, tb.Rows[i])
		}
	}
}

// TestEdgeBenchPlanDeterministic pins the benchmark plan: the same options
// must produce sims whose results — including the virtual-time delivery
// p99 the bench gate pins exactly — never drift across runs.
func TestEdgeBenchPlanDeterministic(t *testing.T) {
	run := func() []*edge.Result {
		var out []*edge.Result
		for _, c := range EdgeBenchPlan(DefaultOptions()) {
			r, err := edge.RunSim(c)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, r)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i].DeliveryP99 != b[i].DeliveryP99 || a[i].Delivered != b[i].Delivered {
			t.Fatalf("bench sim %d drifted: %+v vs %+v", i, a[i], b[i])
		}
	}
}
