package exp

import (
	"fmt"
	"time"

	"livenas/internal/abr"
	"livenas/internal/core"
	"livenas/internal/edge"
	"livenas/internal/sweep"
	"livenas/internal/vidgen"
)

// edgeRungs builds the distribution ladder the origin advertises: the
// standard rung set with effective bitrates boosted by the ingest-side
// quality gain (the same inverse quality mapping Fig 20 uses — what the
// enhanced origin stream is worth to a viewer, per bit).
func edgeRungs(boost float64) []edge.RungInfo {
	ladder := abr.Boost(abr.Ladder(false), boost)
	out := make([]edge.RungInfo, len(ladder))
	for i, r := range ladder {
		out[i] = edge.RungInfo{Name: r.Name, Kbps: r.Kbps, EffectiveKbps: r.EffectiveKbps}
	}
	return out
}

// edgeViewerCounts is the fan-out sweep: 10, 100 and 1000 viewers on one
// streamer, capped by Options.EdgeMaxViewers.
func (o Options) edgeViewerCounts() []int {
	max := o.EdgeMaxViewers
	if max <= 0 {
		max = 1000
	}
	var out []int
	for _, n := range []int{10, 100, 1000} {
		if n <= max {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = []int{max}
	}
	return out
}

// edgeSimFor builds one deterministic fan-out simulation: 24 one-second
// segments of the boosted ladder, FCC-distributed viewer downlinks.
func edgeSimFor(o Options, boost float64, viewers int, direct bool) edge.SimConfig {
	return edge.SimConfig{
		Source: &edge.Source{
			Channel: "ch000",
			SegDur:  time.Second,
			Rungs:   edgeRungs(boost),
			Count:   24,
			StartAt: time.Second,
		},
		Viewers: viewers,
		Fanout:  8,
		Direct:  direct,
		Links: edge.SimLinks{
			ViewerKbps: edge.DefaultViewerKbps(viewers, 77+o.Seed),
		},
	}
}

// FigEdge is the distribution-edge figure: one streamer's enhanced output
// fanned out through a two-level relay tree to N viewers, against the
// no-CDN baseline of every viewer fetching from the origin. The ingest
// session's PSNR gain (over the WebRTC baseline) sets the ladder's
// effective bitrates, so the row quality metric is the end-to-end LiveNAS
// story: enhance once at ingest, distribute the boost to everyone.
//
// Byte-identical at any sweep worker count: the ingest gain comes through
// the runner's deterministic engine and each fan-out simulation runs on
// its own virtual clock.
func FigEdge(o Options, r *sweep.Runner) *Table {
	if o.duration() < time.Minute {
		o.Duration = time.Minute
	}
	job := submitGain(r, o.baseConfig(vidgen.JustChatting, 2), o.uplinks(1, 900), core.SchemeLiveNAS)
	gain, _, _, base := job.mean()
	if gain < 0 {
		gain = 0
	}
	boost := abr.EffectiveBitrate(1000, base, base+gain) / 1000

	t := &Table{
		ID:    "edge",
		Title: "Distribution edge: enhanced-output fan-out, relay tree vs direct origin",
		Header: []string{"viewers", "mode", "relays", "delivered", "skipped",
			"p50", "p99", "stall_s", "eff_kbps", "origin_MB", "saving"},
		Notes: fmt.Sprintf("ingest gain %.2f dB -> effective-bitrate boost x%.2f; fanout 8, 24x1s segments", gain, boost),
	}

	for _, n := range o.edgeViewerCounts() {
		direct, err := edge.RunSim(edgeSimFor(o, boost, n, true))
		if err != nil {
			panic(err)
		}
		tree, err := edge.RunSim(edgeSimFor(o, boost, n, false))
		if err != nil {
			panic(err)
		}
		t.Add(n, "direct", 0, direct.Delivered, direct.Skipped,
			direct.DeliveryP50, direct.DeliveryP99, direct.StallSec,
			direct.MeanEffKbps, float64(direct.OriginEgressBytes)/1e6, "-")
		saving := "-"
		if tree.OriginEgressBytes > 0 {
			saving = fmt.Sprintf("x%.1f", float64(direct.OriginEgressBytes)/float64(tree.OriginEgressBytes))
		}
		t.Add(n, "tree", tree.RelaysL1+tree.RelaysL2, tree.Delivered, tree.Skipped,
			tree.DeliveryP50, tree.DeliveryP99, tree.StallSec,
			tree.MeanEffKbps, float64(tree.OriginEgressBytes)/1e6, saving)
	}
	return t
}

// EdgeBenchPlan is the fixed set of fan-out simulations scripts/bench.sh
// times serially and in parallel (BENCH_edge.json). Standalone
// deterministic — a constant quality boost instead of an ingest session,
// so the benchmark isolates the edge layer — and its virtual-time delivery
// p99 doubles as a cross-host determinism pin in the benchmark record.
func EdgeBenchPlan(o Options) []edge.SimConfig {
	const boost = 1.3
	sims := make([]edge.SimConfig, 0, 6)
	for i, n := range []int{40, 40, 80, 80, 120, 120} {
		c := edgeSimFor(o, boost, n, false)
		c.Links.ViewerKbps = edge.DefaultViewerKbps(n, int64(300+i))
		sims = append(sims, c)
	}
	return sims
}
