package exp

import (
	"fmt"
	"time"

	"livenas/internal/codec"
	"livenas/internal/core"
	"livenas/internal/metrics"
	"livenas/internal/power"
	"livenas/internal/sweep"
	"livenas/internal/trace"
	"livenas/internal/vidgen"
)

// submitPolicy submits a LiveNAS session under one training policy.
func submitPolicy(r *sweep.Runner, cfg core.Config, tr *trace.Trace, p core.TrainPolicy) *sweep.Handle {
	c := cfg
	c.Trace = tr
	c.TrainPolicy = p
	c.Scheme = core.SchemeLiveNAS
	return r.Go(c)
}

// fig15Policies is Figure 15's comparison set, in row order.
var fig15Policies = []core.TrainPolicy{core.TrainOneTime, core.TrainEarlyStop, core.TrainAdaptive, core.TrainContinuous}

// Fig15 reproduces Figure 15: per-scheme GPU training time (normalized to
// stream duration) versus delivered quality.
func Fig15(o Options, r *sweep.Runner) *Table {
	t := &Table{
		ID:     "fig15",
		Title:  "GPU usage vs quality per training scheme",
		Header: []string{"content", "scheme", "norm_gpu_time", "PSNR_dB"},
	}
	tr := o.uplinks(1, 150)[0]
	type row struct {
		cat  vidgen.Category
		web  *sweep.Handle
		pols []*sweep.Handle
	}
	var rows []row
	for _, cat := range []vidgen.Category{vidgen.JustChatting, vidgen.LeagueOfLegends, vidgen.Fortnite} {
		cfg := o.baseConfig(cat, 3)
		web := cfg
		web.Trace = tr
		web.Scheme = core.SchemeWebRTC
		rw := row{cat: cat, web: r.Go(web)}
		for _, pol := range fig15Policies {
			rw.pols = append(rw.pols, submitPolicy(r, cfg, tr, pol))
		}
		rows = append(rows, rw)
	}
	for _, rw := range rows {
		t.Add(rw.cat.String(), "WebRTC", 0.0, wait(rw.web).AvgPSNR)
		for i, pol := range fig15Policies {
			pr := wait(rw.pols[i])
			t.Add(rw.cat.String(), pol.String(), pr.TrainingShare(), pr.AvgPSNR)
		}
	}
	t.Notes = "content-adaptive should approach continuous quality at a fraction of its GPU time"
	return t
}

// Fig16 reproduces the Figure 16 case study: the content-adaptive trainer's
// ON/OFF timeline on a stream with multiple scene transitions.
func Fig16(o Options, run *sweep.Runner) *Table {
	tr := o.uplinks(1, 160)[0]
	cfg := o.baseConfig(vidgen.Fortnite, 2) // most scene changes
	cfg.Duration = 2 * o.duration()
	cfg.Trace = tr
	hAdaptive := run.Go(cfg)
	hCont := submitPolicy(run, cfg, tr, core.TrainContinuous)
	r := wait(hAdaptive)
	src := vidgen.NewSource(cfg.Cat, cfg.Native.W, cfg.Native.H, cfg.Seed, cfg.Duration.Seconds()+60)

	t := &Table{
		ID:     "fig16",
		Title:  "Content-adaptive trainer in operation (ON/OFF timeline)",
		Header: []string{"t(s)", "trainer"},
	}
	for _, st := range r.TrainerTimeline() {
		t.Add(fmt.Sprintf("%.0f", st.T.Seconds()), st.State)
	}
	var changes []string
	for _, c := range src.SceneChanges() {
		if c < cfg.Duration.Seconds() {
			changes = append(changes, fmt.Sprintf("%.0fs", c))
		}
	}
	cont := wait(hCont)
	saving := 1 - r.GPUTrainBusy.Seconds()/cont.GPUTrainBusy.Seconds()
	t.Notes = fmt.Sprintf("scene changes at %v; GPU saving vs continuous: %.0f%% (paper case study: 54%%)", changes, saving*100)
	return t
}

// Fig17 reproduces Figure 17: ingest-client power, 4K WebRTC encode versus
// LiveNAS 1080p ingest at equal delivered quality.
func Fig17(o Options) *Table {
	t := &Table{
		ID:     "fig17",
		Title:  "Client power: 4K encode (WebRTC) vs 1080p ingest (LiveNAS)",
		Header: []string{"codec", "mode", "capture_W", "encode_W", "board_W", "total_W", "saving"},
	}
	for _, p := range []codec.Profile{codec.BX9, codec.BX8} {
		full := power.Client(p, trace.R4K)
		lnas := power.Client(p, trace.R1080)
		sv := power.Savings(p, trace.R4K, trace.R1080)
		t.Add(p.String(), "WebRTC-4K", full.Capture, full.Encode, full.Board, full.Total(), "-")
		t.Add(p.String(), "LiveNAS-1080p", lnas.Capture, lnas.Encode, lnas.Board, lnas.Total(), fmt.Sprintf("%.0f%%", sv*100))
	}
	t.Notes = "paper: 16% (VP9) and 23% (VP8) savings"
	return t
}

// Fig18 reproduces Figure 18: PSNR gain over WebRTC per time interval of
// the stream, for adaptive / continuous / early-stop training.
func Fig18(o Options, run *sweep.Runner) *Table {
	tr := o.uplinks(1, 180)[0]
	cfg := o.baseConfig(vidgen.Fortnite, 2)
	cfg.Duration = 2 * o.duration()

	web := cfg
	web.Trace = tr
	web.Scheme = core.SchemeWebRTC
	hWeb := run.Go(web)
	pols := []core.TrainPolicy{core.TrainAdaptive, core.TrainContinuous, core.TrainEarlyStop}
	hs := make([]*sweep.Handle, len(pols))
	for i, pol := range pols {
		hs[i] = submitPolicy(run, cfg, tr, pol)
	}
	wr := wait(hWeb)

	t := &Table{
		ID:     "fig18",
		Title:  "Gain over WebRTC by stream interval (dB)",
		Header: []string{"scheme", "interval1", "interval2", "interval3"},
	}
	intervalMeans := func(r *core.Results) [3]float64 {
		var sums, counts [3]float64
		dur := cfg.Duration.Seconds()
		for i, s := range r.Samples {
			k := int(s.T.Seconds() / dur * 3)
			if k > 2 {
				k = 2
			}
			base := wr.Samples[min(i, len(wr.Samples)-1)].PSNR
			sums[k] += s.PSNR - base
			counts[k]++
		}
		var out [3]float64
		for k := range out {
			if counts[k] > 0 {
				out[k] = sums[k] / counts[k]
			}
		}
		return out
	}
	for i, pol := range pols {
		m := intervalMeans(wait(hs[i]))
		t.Add(pol.String(), m[0], m[1], m[2])
	}
	t.Notes = "early-stop's gain should fall off in later intervals; adaptive tracks continuous"
	return t
}

// Fig19 reproduces Figure 19: content-adaptive vs one-time customization —
// gain over stream time and the distribution of per-sample gains.
func Fig19(o Options, run *sweep.Runner) []*Table {
	tr := o.uplinks(1, 190)[0]
	cfg := o.baseConfig(vidgen.Fortnite, 2)
	cfg.Duration = 2 * o.duration()

	web := cfg
	web.Trace = tr
	web.Scheme = core.SchemeWebRTC
	hWeb := run.Go(web)

	hs := map[string]*sweep.Handle{}
	hs["continuous"] = submitPolicy(run, cfg, tr, core.TrainContinuous)
	hs["content-adaptive"] = submitPolicy(run, cfg, tr, core.TrainAdaptive)
	ot1 := cfg
	ot1.OneTimeWindow = o.duration() / 6
	hs["one-time(short)"] = submitPolicy(run, ot1, tr, core.TrainOneTime)
	ot5 := cfg
	ot5.OneTimeWindow = o.duration() / 2
	hs["one-time(long)"] = submitPolicy(run, ot5, tr, core.TrainOneTime)

	wr := wait(hWeb)
	baseAt := func(i int) float64 {
		if i >= len(wr.Samples) {
			i = len(wr.Samples) - 1
		}
		return wr.Samples[i].PSNR
	}

	order := []string{"continuous", "content-adaptive", "one-time(long)", "one-time(short)"}
	t1 := &Table{
		ID:     "fig19a",
		Title:  "PSNR gain over time (dB, per quarter of the stream)",
		Header: []string{"scheme", "q1", "q2", "q3", "q4"},
	}
	t2 := &Table{
		ID:     "fig19b",
		Title:  "Distribution of per-sample gains (dB)",
		Header: []string{"scheme", "p25", "median", "p75", "mean"},
	}
	for _, name := range order {
		r := wait(hs[name])
		var quarters [4][]float64
		var gains []float64
		for i, s := range r.Samples {
			g := s.PSNR - baseAt(i)
			gains = append(gains, g)
			k := i * 4 / len(r.Samples)
			if k > 3 {
				k = 3
			}
			quarters[k] = append(quarters[k], g)
		}
		t1.Add(name, metrics.Mean(quarters[0]), metrics.Mean(quarters[1]), metrics.Mean(quarters[2]), metrics.Mean(quarters[3]))
		t2.Add(name, metrics.Percentile(gains, 25), metrics.Median(gains), metrics.Percentile(gains, 75), metrics.Mean(gains))
	}
	t1.Notes = "one-time gain decays after its window; content-adaptive stays near continuous"
	return []*Table{t1, t2}
}

// Fig22 reproduces Figure 22: the majority of training gain arrives in the
// first few epochs (gain and its per-epoch gradient over a training run).
func Fig22(o Options) *Table {
	w := o.world()
	t := &Table{
		ID:     "fig22",
		Title:  "Training gain vs epoch (offline, 5 minutes of video)",
		Header: []string{"epoch", "gain_dB", "gradient_dB_per_epoch"},
	}
	g := trainGainCurve(vidgen.JustChatting, w, 25, 33+o.Seed)
	prev := 0.0
	for e, v := range g {
		if e%2 == 0 || e == len(g)-1 {
			t.Add(e+1, v, fmt.Sprintf("%+.3f", v-prev))
		}
		prev = v
	}
	t.Notes = "diminishing per-epoch gradient: most gain in the first few epochs"
	return t
}

// Fig23 reproduces Figure 23: sensitivity to the training-window (epoch)
// length — DNN-gain prediction error and resulting quality.
func Fig23(o Options, run *sweep.Runner) []*Table {
	tr := o.uplinks(1, 230)[0]
	t1 := &Table{
		ID:     "fig23a",
		Title:  "Scheduler gain-prediction error vs training window",
		Header: []string{"epoch_len", "pred_error_dB", "PSNR_dB"},
	}
	type point struct {
		name string
		len  time.Duration
	}
	points := []point{{"3s", 3 * time.Second}, {"5s", 5 * time.Second}, {"20s", 20 * time.Second}, {"40s", 40 * time.Second}}
	base := o.baseConfig(vidgen.JustChatting, 2)
	hs := make([]*sweep.Handle, len(points))
	for i, p := range points {
		cfg := base
		cfg.EpochLen = p.len
		cfg.Trace = tr
		hs[i] = run.Go(cfg)
	}
	var rows []struct {
		name string
		err  float64
		q    float64
	}
	for i, p := range points {
		r := wait(hs[i])
		// Prediction error: the scheduler predicts the next epoch's DNN
		// quality step from the previous two; compare consecutive reported
		// DNN-gain deltas. We approximate with the variability of the
		// gradient series (rough but monotone in the real error).
		var err float64
		var n float64
		for i := 2; i < len(r.Grad); i++ {
			d := r.Grad[i].Gradient - r.Grad[i-1].Gradient
			if d < 0 {
				d = -d
			}
			err += d
			n++
		}
		if n > 0 {
			err /= n
		}
		rows = append(rows, struct {
			name string
			err  float64
			q    float64
		}{p.name, err * 100, r.AvgPSNR})
	}
	for _, r := range rows {
		t1.Add(r.name, fmt.Sprintf("%.4f", r.err), r.q)
	}
	t1.Notes = "paper: error is minimal at the 5s default; long windows predict stale gains"
	return []*Table{t1}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
