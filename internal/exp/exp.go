// Package exp is the experiment harness: one entry point per table and
// figure of the paper's evaluation (see DESIGN.md's per-experiment index).
// Each experiment returns a Table whose rows reproduce the corresponding
// figure's series; cmd/livenas-bench prints them and bench_test.go wraps
// them as benchmarks.
//
// Experiments run at a reduced spatial scale by default (Options.Fast):
// the full pipeline at 1/5 the linear resolution of the paper's setup with
// bitrates, MTU and scheduler constants scaled by the same frame-area
// factor. Every algorithm under test is resolution-agnostic, so the shape
// of each result is preserved while 300+ stream-hours collapse into CPU
// minutes. EXPERIMENTS.md records paper-vs-measured for each entry.
package exp

import (
	"fmt"
	"strings"
	"time"

	"livenas/internal/core"
	"livenas/internal/sweep"
	"livenas/internal/trace"
	"livenas/internal/vidgen"
)

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// Add appends a row, formatting each cell.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = v.Truncate(100 * time.Microsecond).String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			w := 8
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s  ", w, c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "-- %s\n", t.Notes)
	}
	return b.String()
}

// Options scales the harness.
type Options struct {
	// Fast selects the reduced-scale configuration (default true via
	// DefaultOptions). Full mode doubles the resolution and durations.
	Fast bool
	// Seed offsets all content/trace seeds for sensitivity runs.
	Seed int64
	// Traces is the number of network traces per point (default 2 fast,
	// 4 full).
	Traces int
	// Duration overrides the per-session stream length.
	Duration time.Duration
	// QuantInt8 routes every session's inference through the int8-quantized
	// fast path with the default 0.5 dB quality gate (core.Config.QuantInt8).
	QuantInt8 bool
	// AnytimeBudget sets the per-frame anytime-scheduling deadline on every
	// session (0 = off; see core.Config.AnytimeBudget).
	AnytimeBudget time.Duration
	// FleetStreams is the fleet experiment's streamer count N (default 6).
	FleetStreams int
	// FleetGPUs is the fleet experiment's GPU-pool size M (default 2).
	FleetGPUs int
	// EdgeMaxViewers caps the edge experiment's viewer fan-out sweep
	// (default 1000: the sweep runs 10/100/1000 viewers).
	EdgeMaxViewers int
}

// DefaultOptions returns the fast harness configuration.
func DefaultOptions() Options { return Options{Fast: true, Seed: 0} }

func (o Options) traces() int {
	if o.Traces > 0 {
		return o.Traces
	}
	if o.Fast {
		return 2
	}
	return 4
}

func (o Options) duration() time.Duration {
	if o.Duration > 0 {
		return o.Duration
	}
	if o.Fast {
		return 60 * time.Second
	}
	return 150 * time.Second
}

// Reduced-scale resolution classes. The linear divisor is 5 in fast mode
// and 2.5 (via 2x fast dims) in full mode; the x2/x3/x4 SR factors of the
// paper's ingest ladder are preserved exactly.
type worldScale struct {
	div        int
	native1080 trace.Resolution // "1080p-class" target
	native4K   trace.Resolution // "4K-class" target
	kbpsScale  float64          // bitrate scale vs the real world (≈ area ratio)
	mtu        int
}

func (o Options) world() worldScale {
	if o.Fast {
		return worldScale{
			div:        5,
			native1080: trace.Resolution{Name: "1080p/5", W: 384, H: 216},
			native4K:   trace.Resolution{Name: "4K/5", W: 768, H: 432},
			kbpsScale:  1.0 / 25,
			mtu:        240,
		}
	}
	return worldScale{
		div:        2,
		native1080: trace.Resolution{Name: "1080p/2", W: 960, H: 540},
		native4K:   trace.Resolution{Name: "4K/2", W: 1920, H: 1080},
		kbpsScale:  1.0 / 4,
		mtu:        600,
	}
}

// ingestFor divides a native class by the SR scale factor.
func ingestFor(native trace.Resolution, scale int) trace.Resolution {
	return trace.Resolution{
		Name: fmt.Sprintf("%s/x%d", native.Name, scale),
		W:    native.W / scale,
		H:    native.H / scale,
	}
}

// baseConfig builds a session config for a 1080p-class target at the given
// SR scale (2 => "540p" ingest, 3 => "360p" ingest).
func (o Options) baseConfig(cat vidgen.Category, scale int) core.Config {
	w := o.world()
	return o.configFor(cat, w.native1080, scale)
}

// fourKConfig builds a session config for a 4K-class target (scale 2 =>
// "1080p" ingest, 3 => "720p" ingest).
func (o Options) fourKConfig(cat vidgen.Category, scale int) core.Config {
	w := o.world()
	return o.configFor(cat, w.native4K, scale)
}

func (o Options) configFor(cat vidgen.Category, native trace.Resolution, scale int) core.Config {
	w := o.world()
	return core.Config{
		Cat:         cat,
		Seed:        100 + o.Seed,
		Native:      native,
		Ingest:      ingestFor(native, scale),
		FPS:         10,
		Duration:    o.duration(),
		Scheme:      core.SchemeLiveNAS,
		TrainPolicy: core.TrainAdaptive,
		// Patch size scales with the world (24px per 216 rows) so the grid
		// keeps the paper's 16x9 structure and patches span the content's
		// relative feature sizes at every resolution class.
		PatchSize:     24 * native.H / 216,
		Channels:      6,
		MetricEvery:   2 * time.Second,
		MinVideoKbps:  200 * w.kbpsScale * 5, // floor keeps a usable stream at tiny dims
		GCCInitKbps:   800 * w.kbpsScale * 5,
		StepKbps:      100 * w.kbpsScale * 5,
		InitPatchKbps: 100 * w.kbpsScale * 5,
		MinPatchKbps:  25 * w.kbpsScale * 5,
		MTU:           w.mtu,
		PretrainSeed:  99 + o.Seed,
		QuantInt8:     o.QuantInt8,
		AnytimeBudget: o.AnytimeBudget,
	}
}

// uplinks returns n uplink traces whose means follow the Fig-8 distribution,
// scaled into this world's bitrate regime.
func (o Options) uplinks(n int, seed int64) []*trace.Trace {
	w := o.world()
	means := trace.SampleFCCMeans(n, 1000+seed+o.Seed)
	out := make([]*trace.Trace, n)
	for i := range out {
		tr := trace.FCCUplink(2000+seed+o.Seed+int64(i)*7, o.duration()+time.Minute, means[i]*w.kbpsScale)
		out[i] = tr
	}
	return out
}

// SweepBenchGrid returns the fixed grid scripts/bench.sh times serially and
// in parallel (BENCH_sweep.json): eight distinct short sessions — no
// memoization overlap — so the parallel run can occupy several workers.
func SweepBenchGrid(o Options) sweep.Grid {
	base := o.baseConfig(vidgen.JustChatting, 2)
	base.Duration = 15 * time.Second
	return sweep.Grid{
		Base:     base,
		Schemes:  []core.Scheme{core.SchemeWebRTC, core.SchemeLiveNAS},
		Contents: []vidgen.Category{vidgen.JustChatting, vidgen.Fortnite},
		Traces:   o.uplinks(2, 990),
	}
}

// wait unwraps a sweep handle inside a figure generator. The table contract
// has no error channel, so failures — invalid configs, a cancelled sweep —
// surface as panics, exactly as core.Run always has.
func wait(h *sweep.Handle) *core.Results {
	res, err := h.Wait()
	if err != nil {
		panic(err)
	}
	return res
}

// gainJob is a mean-gain measurement in flight: the WebRTC baseline and the
// scheme run for each trace, submitted to the sweep runner. Figures submit
// all their jobs first and collect afterwards, so every session of the
// figure is in the runner's queue before the first result is awaited; the
// runner memoizes the WebRTC baselines repeated across a figure's columns.
type gainJob struct{ web, run []*sweep.Handle }

// submitGain submits cfg across traces for scheme plus the WebRTC baseline.
func submitGain(r *sweep.Runner, cfg core.Config, traces []*trace.Trace, scheme core.Scheme) gainJob {
	var j gainJob
	for _, tr := range traces {
		c := cfg
		c.Trace = tr
		c.Scheme = core.SchemeWebRTC
		j.web = append(j.web, r.Go(c))
		c.Scheme = scheme
		j.run = append(j.run, r.Go(c))
	}
	return j
}

// mean collects the job: (meanGainDB, meanTrainShare, meanPSNR, basePSNR).
func (j gainJob) mean() (gain, share, psnr, base float64) {
	n := float64(len(j.web))
	for i := range j.web {
		web := wait(j.web[i])
		r := wait(j.run[i])
		gain += r.GainOver(web)
		share += r.TrainingShare()
		psnr += r.AvgPSNR
		base += web.AvgPSNR
	}
	return gain / n, share / n, psnr / n, base / n
}
