package exp

import (
	"fmt"

	"livenas/internal/frame"
	"livenas/internal/metrics"
	"livenas/internal/sr"
	"livenas/internal/sweep"
	"livenas/internal/vidgen"
)

// Ablations for the design choices DESIGN.md calls out.

// AblationResidual compares the residual (bilinear-skip) SR architecture
// with a direct-regression variant: residual learning is why gain appears
// within a few epochs of online training.
func AblationResidual(o Options) *Table {
	w := o.world()
	native := w.native1080
	const scale = 2
	src := vidgen.NewSource(vidgen.JustChatting, native.W, native.H, 41+o.Seed, 200)
	cells := frame.Grid(native.W, native.H, 24)

	addAll := func(tr *sr.Trainer) {
		n := 0
		for ts := 0.0; ts < 60; ts += 1 {
			f := src.FrameAt(ts)
			for j := 0; j < 2; j++ {
				cell := cells[n%len(cells)]
				n++
				hr := frame.Patch(f, cell, 24)
				tr.AddSample(hr.Downscale(scale), hr)
			}
		}
	}
	eval := func(m *sr.Model) float64 {
		hr := src.FrameAt(65)
		lr := hr.Downscale(scale)
		bil := metrics.PSNR(hr, lr.ResizeBilinear(hr.W, hr.H))
		return metrics.PSNR(hr, m.SuperResolve(lr)) - bil
	}

	t := &Table{
		ID:     "abl-residual",
		Title:  "Ablation: residual (bilinear-skip) vs direct SR head",
		Header: []string{"epochs", "residual_gain_dB", "direct_gain_dB"},
	}
	res := sr.NewModel(scale, 6, 7)
	// Direct variant: same architecture, but the tail is randomly
	// initialised instead of zero-initialised, so the network must learn
	// the whole mapping rather than a correction on top of bilinear.
	dir := sr.NewModel(scale, 6, 7)
	reinitTail(dir)
	trR := sr.NewTrainer(res, sr.DefaultTrainConfig(), 5)
	trD := sr.NewTrainer(dir, sr.DefaultTrainConfig(), 5)
	addAll(trR)
	addAll(trD)
	done := 0
	for _, upto := range []int{1, 3, 8} {
		for ; done < upto; done++ {
			trR.Epoch()
			trD.Epoch()
		}
		t.Add(upto, eval(res), eval(dir))
	}
	t.Notes = "residual starts at 0 dB (== bilinear) and improves immediately"
	return t
}

// reinitTail randomises the final conv of a model (undoing the zero init).
func reinitTail(m *sr.Model) {
	params := m.Params()
	// Last two params are the tail conv's weight and bias.
	wp := params[len(params)-2]
	rngState := uint64(0x9e3779b97f4a7c15)
	for i := range wp.W {
		rngState = rngState*6364136223846793005 + 1442695040888963407
		wp.W[i] = (float32(rngState>>40) / float32(1<<24)) * 0.2
	}
}

// AblationSampler compares the §5.2 quality-filtered grid sampler with
// uniform random crops, inside the full pipeline.
func AblationSampler(o Options) *Table {
	// The pipeline always uses the grid sampler; the uniform variant is
	// emulated by disabling the quality filter via a config with a patch
	// budget but random acceptance. We approximate offline: train two
	// models, one on the hardest half of grid cells, one on uniformly
	// random cells.
	w := o.world()
	native := w.native1080
	const scale = 2
	src := vidgen.NewSource(vidgen.LeagueOfLegends, native.W, native.H, 51+o.Seed, 200)
	cells := frame.Grid(native.W, native.H, 24)

	build := func(filtered bool) *sr.Model {
		m := sr.NewModel(scale, 6, 7)
		tr := sr.NewTrainer(m, sr.DefaultTrainConfig(), 5)
		n := 0
		for ts := 0.0; ts < 60; ts += 1 {
			f := src.FrameAt(ts)
			lr := f.Downscale(scale)
			up := lr.ResizeBilinear(f.W, f.H)
			type cand struct {
				cell frame.GridCell
				mse  float64
			}
			var cs []cand
			for _, cell := range cells {
				mse := metrics.MSE(frame.Patch(f, cell, 24), frame.Patch(up, cell, 24))
				cs = append(cs, cand{cell, mse})
			}
			for j := 0; j < 2; j++ {
				var cell frame.GridCell
				if filtered {
					// Highest-loss cells (hardest to upsample).
					best := 0
					for i := range cs {
						if cs[i].mse > cs[best].mse {
							best = i
						}
					}
					cell = cs[best].cell
					cs[best].mse = -1
				} else {
					cell = cells[n%len(cells)]
				}
				n++
				hr := frame.Patch(f, cell, 24)
				tr.AddSample(hr.Downscale(scale), hr)
			}
		}
		for e := 0; e < 8; e++ {
			tr.Epoch()
		}
		return m
	}
	eval := func(m *sr.Model) float64 {
		hr := src.FrameAt(65)
		lr := hr.Downscale(scale)
		bil := metrics.PSNR(hr, lr.ResizeBilinear(hr.W, hr.H))
		return metrics.PSNR(hr, m.SuperResolve(lr)) - bil
	}
	t := &Table{
		ID:     "abl-sampler",
		Title:  "Ablation: quality-filtered patch selection vs uniform",
		Header: []string{"sampler", "gain_dB"},
	}
	t.Add("quality-filtered", eval(build(true)))
	t.Add("uniform-random", eval(build(false)))
	t.Notes = "paper: selection filter worth +0.1-0.3 dB"
	return t
}

// AblationRecency compares recency-weighted minibatch sampling with uniform
// sampling on a stream with a scene change.
func AblationRecency(o Options) *Table {
	w := o.world()
	native := w.native1080
	const scale = 2
	src := vidgen.NewSource(vidgen.Fortnite, native.W, native.H, 61+o.Seed, 400)
	cells := frame.Grid(native.W, native.H, 24)
	changes := src.SceneChanges()
	if len(changes) == 0 {
		changes = []float64{60}
	}
	cut := changes[0]

	build := func(recency bool) *sr.Model {
		m := sr.NewModel(scale, 6, 7)
		cfg := sr.DefaultTrainConfig()
		if !recency {
			cfg.RecencyWeight = 1
		}
		tr := sr.NewTrainer(m, cfg, 5)
		n := 0
		// Old scene then new scene; recency should favour the new.
		for ts := cut - 40; ts < cut+12; ts += 0.5 {
			if ts < 0 {
				continue
			}
			f := src.FrameAt(ts)
			cell := cells[n%len(cells)]
			n++
			hr := frame.Patch(f, cell, 24)
			tr.AddSample(hr.Downscale(scale), hr)
		}
		for e := 0; e < 8; e++ {
			tr.Epoch()
		}
		return m
	}
	eval := func(m *sr.Model) float64 {
		hr := src.FrameAt(cut + 14)
		lr := hr.Downscale(scale)
		bil := metrics.PSNR(hr, lr.ResizeBilinear(hr.W, hr.H))
		return metrics.PSNR(hr, m.SuperResolve(lr)) - bil
	}
	t := &Table{
		ID:     "abl-recency",
		Title:  "Ablation: recency-weighted minibatches vs uniform (after scene change)",
		Header: []string{"sampling", "gain_on_new_scene_dB"},
	}
	t.Add("recency-weighted(4x)", eval(build(true)))
	t.Add("uniform", eval(build(false)))
	t.Notes = "paper: recency weighting worth +0.07-0.28 dB"
	return t
}

// AblationScheduler compares the gradient-ascent scheduler against fixed
// patch-bitrate allocations in the full pipeline.
func AblationScheduler(o Options, run *sweep.Runner) *Table {
	tr := o.uplinks(1, 70)[0]
	base := o.baseConfig(vidgen.JustChatting, 2)
	base.Trace = tr
	t := &Table{
		ID:     "abl-scheduler",
		Title:  "Ablation: quality-optimizing scheduler vs fixed patch bitrate",
		Header: []string{"policy", "PSNR_dB", "avg_patch_kbps"},
	}
	hSched := run.Go(base)
	mults := []float64{0.5, 1, 3, 8}
	hFixed := make([]*sweep.Handle, len(mults))
	for i, mult := range mults {
		cfg := base
		cfg.StepKbps = 0.0001 // freeze updates: effectively a fixed rate
		cfg.InitPatchKbps = base.InitPatchKbps * mult
		hFixed[i] = run.Go(cfg)
	}
	r := wait(hSched)
	t.Add("gradient-scheduler", r.AvgPSNR, r.AvgPatchKbps)
	for i, mult := range mults {
		fr := wait(hFixed[i])
		t.Add(fmt.Sprintf("fixed(%.1fx init)", mult), fr.AvgPSNR, fr.AvgPatchKbps)
	}
	t.Notes = "the scheduler should match or beat every fixed allocation"
	return t
}

// AblationFunctionalCodec compares the normalized-curve video-quality
// gradient (§5.1) with the functional-codec direct probe (§9's extension):
// the probe measures dQvideo/dv exactly where the curve only models it.
func AblationFunctionalCodec(o Options, run *sweep.Runner) *Table {
	tr := o.uplinks(1, 80)[0]
	base := o.baseConfig(vidgen.JustChatting, 2)
	base.Trace = tr
	t := &Table{
		ID:     "abl-funcodec",
		Title:  "Ablation: normalized-curve gradient vs functional-codec probe",
		Header: []string{"estimator", "PSNR_dB", "avg_patch_kbps"},
	}
	fc := base
	fc.FunctionalCodec = true
	hCurve, hProbe := run.Go(base), run.Go(fc)
	r := wait(hCurve)
	t.Add("normalized-curve", r.AvgPSNR, r.AvgPatchKbps)
	rf := wait(hProbe)
	t.Add("functional-probe", rf.AvgPSNR, rf.AvgPatchKbps)
	t.Notes = "the probe should match or beat the curve estimate (paper §9: functional codecs would 'determine the quality of encoding at different bitrates more accurately')"
	return t
}
