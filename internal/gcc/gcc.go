// Package gcc implements a Google-Congestion-Control-style sender-side rate
// controller (Carlucci et al., MMSys'16), the bandwidth estimator WebRTC —
// and therefore LiveNAS — runs on (§2). It combines a delay-gradient
// (trendline) detector with a loss-based controller and AIMD rate updates.
//
// The controller's deliberately conservative behaviour (backing off on
// queuing-delay growth well before loss) is what makes live ingest use only
// "55-64% of what the network actually allows" (§3) — the headroom
// super-resolution converts into quality.
package gcc

import (
	"sort"
	"time"

	"livenas/internal/telemetry"
)

// Ack reports one delivered packet back to the sender.
type Ack struct {
	Seq    int
	Size   int // bytes
	SentAt time.Duration
	RecvAt time.Duration
}

// State is the delay-controller state machine's state.
type State int

const (
	StateIncrease State = iota
	StateHold
	StateDecrease
)

func (s State) String() string {
	switch s {
	case StateIncrease:
		return "increase"
	case StateHold:
		return "hold"
	default:
		return "decrease"
	}
}

// Config holds controller tuning. Zero values select defaults.
type Config struct {
	InitKbps float64 // starting estimate (default 600)
	MinKbps  float64 // floor (default 50)
	MaxKbps  float64 // ceiling (default 50000)
	// SlopeThresholdMs is the delay-trend threshold in ms of queuing-delay
	// growth per second of send time before overuse is declared (default 2).
	SlopeThresholdMs float64
	// Beta is the multiplicative decrease applied to the measured receive
	// rate on overuse (default 0.85, as in GCC).
	Beta float64
}

func (c Config) withDefaults() Config {
	if c.InitKbps <= 0 {
		c.InitKbps = 600
	}
	if c.MinKbps <= 0 {
		c.MinKbps = 50
	}
	if c.MaxKbps <= 0 {
		c.MaxKbps = 50000
	}
	if c.SlopeThresholdMs <= 0 {
		c.SlopeThresholdMs = 2
	}
	if c.Beta <= 0 {
		c.Beta = 0.85
	}
	return c
}

// Controller is the sender-side congestion controller. Call OnFeedback for
// every feedback report (typically every ~100 ms) and read TargetKbps.
// It is not safe for concurrent use.
type Controller struct {
	cfg   Config
	rate  float64 // current target, kbps
	state State

	lastFeedback time.Duration
	lastDecrease time.Duration

	// Delay-trend estimator state: per-send-time-bin minimum one-way delay
	// over a sliding window, plus an EWMA of the fitted slope. Binning with
	// a min filter removes per-packet serialisation noise (small vs large
	// packets) the way GCC's inter-group arrival filter does.
	bins          map[int64]float64 // bin index -> min OWD (ms)
	maxBin        int64
	smoothedSlope float64

	// avgMeasured smooths the per-report receive rate (kbps): a single
	// ~100 ms window can hold zero or one packets at low rates, so raw
	// per-window rates are far too noisy to back off against.
	avgMeasured float64

	// threshold is the adaptive overuse threshold (GCC's gamma adaptation):
	// it inflates when benign periodic spikes (key-frame bursts) keep
	// brushing it and relaxes back toward the configured floor.
	threshold float64

	// Telemetry handles (nil until SetTelemetry; nil-safe). reg is retained
	// for gcc_estimate events emitted on state transitions.
	reg       *telemetry.Registry
	mTarget   *telemetry.Gauge
	mOveruse  *telemetry.Counter
	mLossBack *telemetry.Counter
	mReports  *telemetry.Counter
}

// New creates a controller.
func New(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	return &Controller{cfg: cfg, rate: cfg.InitKbps, state: StateIncrease,
		bins: make(map[int64]float64), threshold: cfg.SlopeThresholdMs}
}

// Delay-trend estimator constants.
const (
	binWidth   = 20 * time.Millisecond // send-time bin for the min-OWD filter
	windowBins = 50                    // sliding window: ~1 s of send time
)

// observeDelays folds a feedback report's acks into the bin window and
// returns the smoothed delay slope in ms of OWD growth per second.
func (c *Controller) observeDelays(acks []Ack) float64 {
	for _, a := range acks {
		bin := int64(a.SentAt / binWidth)
		owd := (a.RecvAt - a.SentAt).Seconds() * 1000
		if v, ok := c.bins[bin]; !ok || owd < v {
			c.bins[bin] = owd
		}
		if bin > c.maxBin {
			c.maxBin = bin
		}
	}
	for bin := range c.bins {
		if bin < c.maxBin-windowBins {
			delete(c.bins, bin)
		}
	}
	if len(c.bins) < 3 {
		return c.smoothedSlope
	}
	// Least-squares fit of min-OWD vs bin time. The fold runs over the
	// bins in sorted order: float accumulation is not associative, so
	// iterating the map directly would make the slope — and through it the
	// whole rate trace — vary between bit-exact replays of one input.
	bins := make([]int64, 0, len(c.bins))
	for bin := range c.bins {
		bins = append(bins, bin)
	}
	sort.Slice(bins, func(i, j int) bool { return bins[i] < bins[j] })
	var n, sx, sy, sxx, sxy float64
	for _, bin := range bins {
		owd := c.bins[bin]
		x := time.Duration(bin-c.maxBin) * binWidth
		xs := x.Seconds()
		n++
		sx += xs
		sy += owd
		sxx += xs * xs
		sxy += xs * owd
	}
	den := n*sxx - sx*sx
	if den > 1e-12 {
		slope := (n*sxy - sx*sy) / den
		c.smoothedSlope = 0.6*c.smoothedSlope + 0.4*slope
	}
	return c.smoothedSlope
}

// SetTelemetry registers the controller's metrics on reg: the live target
// estimate (gcc_target_kbps), feedback reports processed (gcc_reports),
// delay-overuse back-offs (gcc_overuse_backoffs) and loss back-offs
// (gcc_loss_backoffs). OnFeedback additionally emits a gcc_estimate event
// whenever the delay state machine changes state, timestamped with the
// caller-supplied feedback time.
func (c *Controller) SetTelemetry(reg *telemetry.Registry) {
	c.reg = reg
	c.mTarget = reg.Gauge("gcc_target_kbps")
	c.mReports = reg.Counter("gcc_reports")
	c.mOveruse = reg.Counter("gcc_overuse_backoffs")
	c.mLossBack = reg.Counter("gcc_loss_backoffs")
}

// TargetKbps returns the current send-rate target in kbps.
func (c *Controller) TargetKbps() float64 { return c.rate }

// State returns the delay controller's current state.
func (c *Controller) State() State { return c.state }

// OnFeedback processes one feedback report: the acks received since the
// previous report and the count of packets deemed lost in the interval.
func (c *Controller) OnFeedback(now time.Duration, acks []Ack, lost int) {
	defer func() { c.lastFeedback = now }()
	prevState := c.state
	c.mReports.Inc()

	// ---- Measured receive rate over the feedback interval. ----
	var bytes int
	for _, a := range acks {
		bytes += a.Size
	}
	interval := now - c.lastFeedback
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	measured := float64(bytes*8) / interval.Seconds() / 1000 // kbps
	if c.avgMeasured == 0 {
		c.avgMeasured = measured
	} else {
		c.avgMeasured = 0.8*c.avgMeasured + 0.2*measured
	}

	// ---- Loss controller. ----
	total := len(acks) + lost
	var lossRate float64
	if total > 0 {
		lossRate = float64(lost) / float64(total)
	}

	// ---- Delay controller: smoothed slope of per-bin minimum one-way
	// delay vs send time (trendline filter over a ~1 s sliding window). ----
	overuse, underuse := false, false
	slope := c.observeDelays(acks)
	switch {
	case slope > c.threshold:
		overuse = true
	case slope < -c.threshold:
		underuse = true
	}
	// Adapt the threshold (GCC gamma adaptation): grow while the slope
	// rides above it, decay toward the configured floor otherwise.
	mag := slope
	if mag < 0 {
		mag = -mag
	}
	if mag > c.threshold {
		c.threshold += 0.3 * (mag - c.threshold)
		if max := 10 * c.cfg.SlopeThresholdMs; c.threshold > max {
			c.threshold = max
		}
	} else {
		c.threshold += 0.05 * (c.cfg.SlopeThresholdMs - c.threshold)
	}

	switch {
	case lossRate > 0.10:
		// Heavy loss: multiplicative decrease proportional to loss.
		c.rate *= 1 - 0.5*lossRate
		c.state = StateDecrease
		c.lastDecrease = now
		c.mLossBack.Inc()
	case overuse:
		// Queues are building: drop below the (smoothed) delivery rate,
		// but never cut more than half in one event.
		target := c.cfg.Beta * c.avgMeasured
		if target > c.rate {
			target = c.rate * c.cfg.Beta
		}
		if floor := 0.5 * c.rate; target < floor {
			target = floor
		}
		c.rate = target
		c.state = StateDecrease
		c.lastDecrease = now
		c.smoothedSlope = 0 // restart trend detection after backing off
		c.mOveruse.Inc()
	case underuse:
		// Queues are draining: hold and let them empty.
		c.state = StateHold
	default:
		// Additive/multiplicative increase, but never ramp far beyond what
		// the path demonstrably delivered (GCC's 1.5x cap).
		c.state = StateIncrease
		growth := 1.06
		if now-c.lastDecrease < 3*time.Second {
			growth = 1.02 // cautious right after a back-off
		}
		next := c.rate * growth
		if c.avgMeasured > 0 && next > 1.5*c.avgMeasured && len(acks) > 0 {
			next = 1.5 * c.avgMeasured
			if next < c.rate {
				next = c.rate // don't decrease in the increase state
			}
		}
		c.rate = next
	}

	if c.rate < c.cfg.MinKbps {
		c.rate = c.cfg.MinKbps
	}
	if c.rate > c.cfg.MaxKbps {
		c.rate = c.cfg.MaxKbps
	}

	c.mTarget.Set(c.rate)
	if c.reg != nil && c.state != prevState {
		c.reg.Emit(now, "gcc_estimate",
			telemetry.Str("state", c.state.String()),
			telemetry.Num("target_kbps", c.rate),
			telemetry.Num("measured_kbps", c.avgMeasured),
			telemetry.Num("slope_ms_per_s", slope),
			telemetry.Num("loss_rate", lossRate),
		)
	}
}

// owdSlopeMsPerSec fits delay(sendTime) by least squares and returns the
// slope in milliseconds of delay growth per second.
func owdSlopeMsPerSec(acks []Ack) float64 {
	n := float64(len(acks))
	var sx, sy, sxx, sxy float64
	t0 := acks[0].SentAt
	for _, a := range acks {
		x := (a.SentAt - t0).Seconds()
		y := (a.RecvAt - a.SentAt).Seconds() * 1000
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den < 1e-12 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}
