package gcc

import (
	"testing"
	"time"
)

// mkAcks builds a feedback window of n packets with a linear delay ramp:
// owd(i) = base + slope*i*gap (slope in ms per packet interval).
func mkAcks(n int, start time.Duration, gap time.Duration, baseOWD time.Duration, rampPerPacket time.Duration, size int) []Ack {
	acks := make([]Ack, n)
	for i := range acks {
		sent := start + time.Duration(i)*gap
		owd := baseOWD + time.Duration(i)*rampPerPacket
		acks[i] = Ack{Seq: i, Size: size, SentAt: sent, RecvAt: sent + owd}
	}
	return acks
}

func TestDefaults(t *testing.T) {
	c := New(Config{})
	if c.TargetKbps() != 600 {
		t.Fatalf("init %v", c.TargetKbps())
	}
	if c.State() != StateIncrease {
		t.Fatalf("state %v", c.State())
	}
}

func TestIncreaseOnStableDelay(t *testing.T) {
	c := New(Config{InitKbps: 500})
	now := 100 * time.Millisecond
	for i := 0; i < 10; i++ {
		acks := mkAcks(10, now-100*time.Millisecond, 10*time.Millisecond, 20*time.Millisecond, 0, 1200)
		c.OnFeedback(now, acks, 0)
		now += 100 * time.Millisecond
	}
	if c.TargetKbps() <= 500 {
		t.Fatalf("rate %v did not grow on clean path", c.TargetKbps())
	}
	if c.State() != StateIncrease {
		t.Fatalf("state %v", c.State())
	}
}

func TestDecreaseOnDelayRamp(t *testing.T) {
	c := New(Config{InitKbps: 2000})
	// 1 ms extra delay per 10 ms send interval = 100 ms/s slope: overuse.
	acks := mkAcks(10, 0, 10*time.Millisecond, 20*time.Millisecond, time.Millisecond, 1200)
	c.OnFeedback(100*time.Millisecond, acks, 0)
	if c.State() != StateDecrease {
		t.Fatalf("state %v want decrease", c.State())
	}
	if c.TargetKbps() >= 2000 {
		t.Fatalf("rate %v did not decrease", c.TargetKbps())
	}
}

func TestDecreaseTracksMeasuredRate(t *testing.T) {
	c := New(Config{InitKbps: 5000})
	// 10 packets x 1200 B in 100 ms = 960 kbps measured; one decrease event
	// cuts at most half, so repeated overuse converges to 0.85x measured.
	for i := 0; i < 20; i++ {
		acks := mkAcks(10, time.Duration(i)*100*time.Millisecond, 10*time.Millisecond, 20*time.Millisecond, 2*time.Millisecond, 1200)
		c.OnFeedback(time.Duration(i+1)*100*time.Millisecond, acks, 0)
	}
	// The delay pattern resets every window (queues drain between reports),
	// so the controller should settle in the neighbourhood of the path's
	// delivered rate (960 kbps) — far below the initial 5000 and no higher
	// than the 1.5x-measured increase cap.
	got := c.TargetKbps()
	if got < 400 || got > 1.5*960+1 {
		t.Fatalf("converged to %v; want within [400, 1440]", got)
	}
}

func TestHoldOnUnderuse(t *testing.T) {
	c := New(Config{InitKbps: 1000})
	// Falling delay: queues draining.
	acks := mkAcks(10, 0, 10*time.Millisecond, 50*time.Millisecond, -2*time.Millisecond, 1200)
	c.OnFeedback(100*time.Millisecond, acks, 0)
	if c.State() != StateHold {
		t.Fatalf("state %v want hold", c.State())
	}
	if c.TargetKbps() != 1000 {
		t.Fatalf("hold changed rate to %v", c.TargetKbps())
	}
}

func TestLossBackoff(t *testing.T) {
	c := New(Config{InitKbps: 3000})
	acks := mkAcks(8, 0, 10*time.Millisecond, 20*time.Millisecond, 0, 1200)
	c.OnFeedback(100*time.Millisecond, acks, 4) // 33% loss
	if c.State() != StateDecrease {
		t.Fatalf("state %v", c.State())
	}
	got := c.TargetKbps()
	want := 3000 * (1 - 0.5*(4.0/12.0))
	if got < want*0.95 || got > want*1.05 {
		t.Fatalf("loss backoff to %v want ~%v", got, want)
	}
}

func TestSmallLossTolerated(t *testing.T) {
	c := New(Config{InitKbps: 1000})
	acks := mkAcks(50, 0, 2*time.Millisecond, 20*time.Millisecond, 0, 1200)
	c.OnFeedback(100*time.Millisecond, acks, 1) // 2% loss
	if c.State() == StateDecrease {
		t.Fatal("2% loss should not trigger decrease")
	}
}

func TestIncreaseCappedByMeasuredRate(t *testing.T) {
	c := New(Config{InitKbps: 10000})
	// Path only delivers ~960 kbps; rate must be pulled toward 1.5x that,
	// never pushed above the configured value while in increase.
	for i := 0; i < 5; i++ {
		acks := mkAcks(10, time.Duration(i)*100*time.Millisecond, 10*time.Millisecond, 20*time.Millisecond, 0, 1200)
		c.OnFeedback(time.Duration(i+1)*100*time.Millisecond, acks, 0)
	}
	if c.TargetKbps() > 10000 {
		t.Fatalf("rate %v grew beyond initial despite capped path", c.TargetKbps())
	}
}

func TestClampsToBounds(t *testing.T) {
	c := New(Config{InitKbps: 100, MinKbps: 50, MaxKbps: 200})
	// Repeated heavy loss cannot push below MinKbps.
	for i := 0; i < 20; i++ {
		c.OnFeedback(time.Duration(i+1)*100*time.Millisecond, nil, 10)
	}
	if c.TargetKbps() < 50 {
		t.Fatalf("rate %v below floor", c.TargetKbps())
	}
	// Repeated clean feedback cannot exceed MaxKbps.
	c2 := New(Config{InitKbps: 190, MinKbps: 50, MaxKbps: 200})
	for i := 0; i < 20; i++ {
		acks := mkAcks(20, time.Duration(i)*100*time.Millisecond, 5*time.Millisecond, 10*time.Millisecond, 0, 1500)
		c2.OnFeedback(time.Duration(i+1)*100*time.Millisecond, acks, 0)
	}
	if c2.TargetKbps() > 200 {
		t.Fatalf("rate %v above ceiling", c2.TargetKbps())
	}
}

func TestCautiousAfterDecrease(t *testing.T) {
	c := New(Config{InitKbps: 2000})
	// Trigger a decrease.
	acks := mkAcks(10, 0, 10*time.Millisecond, 20*time.Millisecond, 2*time.Millisecond, 1200)
	c.OnFeedback(100*time.Millisecond, acks, 0)
	r := c.TargetKbps()
	// Clean feedback right after: growth must be the cautious 2%, not 6%.
	clean := mkAcks(40, 100*time.Millisecond, 2*time.Millisecond, 20*time.Millisecond, 0, 1500)
	c.OnFeedback(200*time.Millisecond, clean, 0)
	growth := c.TargetKbps() / r
	if growth > 1.03 {
		t.Fatalf("growth %.3f right after decrease; want <= 1.02ish", growth)
	}
}

func TestOWDSlopeFit(t *testing.T) {
	// Known slope: +5 ms per 100 ms of send time = 50 ms/s.
	acks := mkAcks(11, 0, 100*time.Millisecond, 30*time.Millisecond, 5*time.Millisecond, 1000)
	got := owdSlopeMsPerSec(acks)
	if got < 49 || got > 51 {
		t.Fatalf("slope %v want ~50", got)
	}
	// Flat delay: slope ~0.
	flat := mkAcks(11, 0, 100*time.Millisecond, 30*time.Millisecond, 0, 1000)
	if s := owdSlopeMsPerSec(flat); s < -0.001 || s > 0.001 {
		t.Fatalf("flat slope %v", s)
	}
}
