package wire

import (
	"bytes"
	"io"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []*Message{
		{Type: MsgHello, IngestW: 192, IngestH: 108, NativeW: 384, NativeH: 216, FPS: 10},
		{Type: MsgVideo, FrameID: 7, Key: true, QP: 31, Data: []byte{1, 2, 3}},
		{Type: MsgPatch, FrameID: 7, X: 48, Y: 24, Data: make([]byte, 5000)},
		{Type: MsgStats, GainDB: 1.25, Epochs: 3, Samples: 42},
		{Type: MsgBye},
	}
	for _, m := range msgs {
		if err := Write(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type || got.FrameID != want.FrameID || got.GainDB != want.GainDB ||
			got.IngestW != want.IngestW || !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("got %+v want %+v", got, want)
		}
	}
	if _, err := Read(&buf); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReadTruncated(t *testing.T) {
	var buf bytes.Buffer
	Write(&buf, &Message{Type: MsgVideo, Data: make([]byte, 100)})
	data := buf.Bytes()[:buf.Len()-10]
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("truncated message must error")
	}
}

func TestReadOversized(t *testing.T) {
	// Header claiming a message beyond the limit must be rejected before
	// allocation.
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := Read(bytes.NewReader(hdr)); err == nil {
		t.Fatal("oversized message accepted")
	}
}
