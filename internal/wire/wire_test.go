package wire

import (
	"bytes"
	"io"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []*Message{
		{Type: MsgHello, IngestW: 192, IngestH: 108, NativeW: 384, NativeH: 216, FPS: 10},
		{Type: MsgVideo, FrameID: 7, Key: true, QP: 31, Data: []byte{1, 2, 3}},
		{Type: MsgPatch, FrameID: 7, X: 48, Y: 24, Data: make([]byte, 5000)},
		{Type: MsgStats, GainDB: 1.25, Epochs: 3, Samples: 42},
		{Type: MsgBye},
	}
	for _, m := range msgs {
		if err := Write(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type || got.FrameID != want.FrameID || got.GainDB != want.GainDB ||
			got.IngestW != want.IngestW || !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("got %+v want %+v", got, want)
		}
	}
	if _, err := Read(&buf); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReadTruncated(t *testing.T) {
	var buf bytes.Buffer
	Write(&buf, &Message{Type: MsgVideo, Data: make([]byte, 100)})
	data := buf.Bytes()[:buf.Len()-10]
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("truncated message must error")
	}
}

func TestReadOversized(t *testing.T) {
	// Header claiming a message beyond the limit must be rejected before
	// allocation.
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := Read(bytes.NewReader(hdr)); err == nil {
		t.Fatal("oversized message accepted")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []*Message{
		{Type: MsgHello, Channel: "alice", IngestW: 192, IngestH: 108, NativeW: 384, NativeH: 216, FPS: 10},
		{Type: MsgSubscribe, Channel: "alice", FrameID: 3},
		{Type: MsgPlaylist, Channel: "alice", Data: []byte("playlist-bytes")},
		{Type: MsgSegmentReq, Channel: "alice", FrameID: 9, Rung: 2},
		{Type: MsgSegment, Channel: "alice", FrameID: 9, Rung: 2, SegID: "deadbeef", SegDurUS: 1_000_000, Data: make([]byte, 2048)},
		{Type: MsgBye},
	}
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type || got.FrameID != want.FrameID || got.Rung != want.Rung ||
			got.SegID != want.SegID || got.SegDurUS != want.SegDurUS ||
			got.Channel != want.Channel || !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("got %+v want %+v", got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

// TestFrameUnknownVersionSkippable pins the forward-compatibility contract:
// a frame carrying a newer version byte yields *VersionError with the whole
// frame consumed, so the reader picks up the next frame cleanly.
func TestFrameUnknownVersionSkippable(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Message{Type: MsgVideo, FrameID: 1, Data: []byte{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	// Rewrite the first frame's version byte to a future version.
	raw := buf.Bytes()
	raw[4] = FrameVersion + 7
	var stream bytes.Buffer
	stream.Write(raw)
	if err := WriteFrame(&stream, &Message{Type: MsgBye, Reason: "after-unknown"}); err != nil {
		t.Fatal(err)
	}

	_, err := ReadFrame(&stream)
	ve, ok := err.(*VersionError)
	if !ok {
		t.Fatalf("want *VersionError, got %v", err)
	}
	if ve.Version != FrameVersion+7 {
		t.Fatalf("VersionError.Version = %d, want %d", ve.Version, FrameVersion+7)
	}
	m, err := ReadFrame(&stream)
	if err != nil {
		t.Fatalf("frame after unknown-version frame: %v", err)
	}
	if m.Type != MsgBye || m.Reason != "after-unknown" {
		t.Fatalf("resynchronised on wrong frame: %+v", m)
	}
}

// TestFrameUnknownTypeDecodes pins the unknown-message tolerance: a frame
// whose Type is beyond this build's constants still decodes (dispatch
// loops ignore it); it must not error the whole stream.
func TestFrameUnknownTypeDecodes(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Message{Type: MsgType(200), Channel: "x", Data: []byte{9}}); err != nil {
		t.Fatal(err)
	}
	m, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("unknown message type must decode, got %v", err)
	}
	if m.Type != MsgType(200) || m.Channel != "x" {
		t.Fatalf("got %+v", m)
	}
}

func TestWireSizeCharges(t *testing.T) {
	small := &Message{Type: MsgSegmentReq}
	big := &Message{Type: MsgSegment, Channel: "c", SegID: "0123456789abcdef", Data: make([]byte, 4096)}
	if small.WireSize() <= 0 || big.WireSize() <= small.WireSize() {
		t.Fatalf("WireSize not monotone with content: small %d big %d", small.WireSize(), big.WireSize())
	}
	if got := big.WireSize(); got < 4096+16+1 {
		t.Fatalf("WireSize %d does not cover payload and strings", got)
	}
}
