// Package wire defines the length-prefixed gob protocol the real-network
// paths run over: the ingest demo (cmd/livenas-server and
// cmd/livenas-client) carrying encoded video frames and high-quality
// training patches, and the distribution edge (cmd/livenas-edge) carrying
// playlists and enhanced-output segments.
//
// Two framings coexist. The legacy framing (Write/Read) is a bare 4-byte
// length prefix followed by the gob body. The versioned framing
// (WriteFrame/ReadFrame) inserts one version byte between the length and
// the body, so the protocol can evolve: a reader that meets a frame with a
// newer version consumes the whole frame and reports a *VersionError,
// leaving the stream positioned at the next frame — peers skip what they
// do not understand instead of desynchronising. Unknown message *types*
// are tolerated one level up: decode succeeds (the Type field is just a
// number) and dispatch loops ignore types they do not know.
package wire

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
)

// MsgType tags a protocol message.
type MsgType uint8

const (
	// MsgHello opens a session and carries the stream geometry.
	MsgHello MsgType = iota
	// MsgVideo carries one encoded video frame.
	MsgVideo
	// MsgPatch carries one compressed high-quality training patch.
	MsgPatch
	// MsgStats is the server's periodic quality feedback.
	MsgStats
	// MsgBye closes the session.
	MsgBye

	// Edge (distribution) messages.

	// MsgSubscribe asks an origin or relay for a channel's playlist stream.
	// FrameID carries the resume index: the subscriber already holds every
	// segment below it (0 = from the live window's start).
	MsgSubscribe
	// MsgPlaylist pushes a channel's rolling playlist (Data = encoded
	// Playlist; see internal/edge).
	MsgPlaylist
	// MsgSegmentReq asks for one segment: FrameID is the segment index and
	// Rung the ladder rung wanted.
	MsgSegmentReq
	// MsgSegment carries one enhanced-output segment: FrameID/Rung identify
	// it, SegID is its content address, SegDurUS its duration in
	// microseconds of virtual time, Data its payload.
	MsgSegment
)

// Message is the single on-wire unit.
type Message struct {
	Type MsgType

	// Hello fields. Channel is the streamer's channel key (the RTMP
	// stream-key analogue): the multi-tenant server admits or refuses the
	// session under it, and a MsgBye carrying Reason echoes it back.
	Channel          string
	IngestW, IngestH int
	NativeW, NativeH int
	FPS              float64

	// Video fields.
	FrameID int
	Key     bool
	QP      int

	// Patch fields (X, Y in native coordinates).
	X, Y int

	// Stats fields.
	GainDB  float64
	Epochs  int
	Samples int

	// Bye field: why the server is closing the session (empty on a normal
	// client-initiated goodbye; e.g. an admission-refusal note when the
	// GPU pool is saturated).
	Reason string

	// Edge fields. FrameID doubles as the segment index on
	// MsgSubscribe/MsgSegmentReq/MsgSegment.
	Rung     int    // ladder rung index
	SegID    string // content-addressed segment id
	SegDurUS int64  // segment duration, microseconds of virtual time
	SentAtUS int64  // sender's clock at send, microseconds; meaningful for
	// per-hop latency only where sender and receiver share a clock (the
	// simulator, or same-host demos)

	// Payload: encoded frame, patch, segment or playlist bytes.
	Data []byte
}

// WireSize is the byte-size model the simulated transport charges for a
// message: the payload plus a fixed framing/field overhead and the
// variable-length strings. It deliberately avoids a real gob encode — the
// simulator sends the same *Message to hundreds of viewers and only the
// deterministic size matters there, not the exact gob framing.
func (m *Message) WireSize() int {
	//livenas:allow race-guard a Message belongs to one sender or receiver at a time; edge actors lock their own registries, not the wire type
	return 64 + len(m.Channel) + len(m.Reason) + len(m.SegID) + len(m.Data)
}

// maxMessage bounds a message to keep a malformed peer from exhausting
// memory.
const maxMessage = 16 << 20

// Write sends one message with a length prefix.
func Write(w io.Writer, m *Message) error {
	var buf lengthBuffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(buf.b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(buf.b)
	return err
}

// Read receives one message. Malformed input from the peer yields an
// error, never a panic: the decode step runs under recover because gob
// is not hardened against adversarial bytes.
func Read(r io.Reader) (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxMessage {
		return nil, fmt.Errorf("wire: message of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return decodeBody(body)
}

// FrameVersion is the current versioned-framing protocol version. Bump it
// when the framing itself (not the gob body — gob already ignores fields
// the receiving type lacks) changes incompatibly.
const FrameVersion = 1

// VersionError reports a frame written with a framing version this build
// does not speak. The frame has been fully consumed when it is returned:
// the caller may skip it and keep reading the stream.
type VersionError struct{ Version uint8 }

func (e *VersionError) Error() string {
	return fmt.Sprintf("wire: unsupported frame version %d (have %d)", e.Version, FrameVersion)
}

// WriteFrame sends one message in the versioned framing: a 4-byte
// big-endian length covering everything after it, one version byte, then
// the gob body.
func WriteFrame(w io.Writer, m *Message) error {
	var buf lengthBuffer
	buf.b = append(buf.b, 0, 0, 0, 0, FrameVersion)
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	binary.BigEndian.PutUint32(buf.b[:4], uint32(len(buf.b)-4))
	_, err := w.Write(buf.b)
	return err
}

// ReadFrame receives one versioned frame. A frame with an unknown version
// byte is consumed whole and reported as *VersionError so the caller can
// tolerate newer peers by skipping to the next frame; everything else
// follows Read's contract (error, never panic, on malformed bytes).
func ReadFrame(r io.Reader) (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, fmt.Errorf("wire: empty frame")
	}
	if n > maxMessage {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	if body[0] != FrameVersion {
		return nil, &VersionError{Version: body[0]}
	}
	return decodeBody(body[1:])
}

// decodeBody gob-decodes one message body under recover (gob is not
// hardened against adversarial bytes; a panic must surface as an error).
func decodeBody(body []byte) (m *Message, err error) {
	defer func() {
		if p := recover(); p != nil {
			m, err = nil, fmt.Errorf("wire: decode: panic: %v", p)
		}
	}()
	var msg Message
	if err := gob.NewDecoder(&byteReader{b: body}).Decode(&msg); err != nil {
		return nil, fmt.Errorf("wire: decode: %w", err)
	}
	return &msg, nil
}

type lengthBuffer struct{ b []byte }

func (l *lengthBuffer) Write(p []byte) (int, error) {
	l.b = append(l.b, p...)
	return len(p), nil
}

type byteReader struct {
	b   []byte
	pos int
}

func (r *byteReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.pos:])
	r.pos += n
	return n, nil
}
