// Package wire defines the length-prefixed gob protocol used by the
// runnable loopback demo (cmd/livenas-server and cmd/livenas-client): a
// minimal real-network ingest path carrying encoded video frames and
// high-quality training patches, mirroring the simulator's transport.
package wire

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
)

// MsgType tags a protocol message.
type MsgType uint8

const (
	// MsgHello opens a session and carries the stream geometry.
	MsgHello MsgType = iota
	// MsgVideo carries one encoded video frame.
	MsgVideo
	// MsgPatch carries one compressed high-quality training patch.
	MsgPatch
	// MsgStats is the server's periodic quality feedback.
	MsgStats
	// MsgBye closes the session.
	MsgBye
)

// Message is the single on-wire unit.
type Message struct {
	Type MsgType

	// Hello fields. Channel is the streamer's channel key (the RTMP
	// stream-key analogue): the multi-tenant server admits or refuses the
	// session under it, and a MsgBye carrying Reason echoes it back.
	Channel          string
	IngestW, IngestH int
	NativeW, NativeH int
	FPS              float64

	// Video fields.
	FrameID int
	Key     bool
	QP      int

	// Patch fields (X, Y in native coordinates).
	X, Y int

	// Stats fields.
	GainDB  float64
	Epochs  int
	Samples int

	// Bye field: why the server is closing the session (empty on a normal
	// client-initiated goodbye; e.g. an admission-refusal note when the
	// GPU pool is saturated).
	Reason string

	// Payload: encoded frame or patch bytes.
	Data []byte
}

// maxMessage bounds a message to keep a malformed peer from exhausting
// memory.
const maxMessage = 16 << 20

// Write sends one message with a length prefix.
func Write(w io.Writer, m *Message) error {
	var buf lengthBuffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(buf.b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(buf.b)
	return err
}

// Read receives one message. Malformed input from the peer yields an
// error, never a panic: the decode step runs under recover because gob
// is not hardened against adversarial bytes.
func Read(r io.Reader) (m *Message, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxMessage {
		return nil, fmt.Errorf("wire: message of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	defer func() {
		if p := recover(); p != nil {
			m, err = nil, fmt.Errorf("wire: decode: panic: %v", p)
		}
	}()
	var msg Message
	if err := gob.NewDecoder(&byteReader{b: body}).Decode(&msg); err != nil {
		return nil, fmt.Errorf("wire: decode: %w", err)
	}
	return &msg, nil
}

type lengthBuffer struct{ b []byte }

func (l *lengthBuffer) Write(p []byte) (int, error) {
	l.b = append(l.b, p...)
	return len(p), nil
}

type byteReader struct {
	b   []byte
	pos int
}

func (r *byteReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.pos:])
	r.pos += n
	return n, nil
}
