package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// fuzzSeeds returns valid encoded messages covering every message type,
// used both whole and truncated as the seed corpus.
func fuzzSeeds(t interface{ Fatalf(string, ...interface{}) }) [][]byte {
	msgs := []*Message{
		{Type: MsgHello, IngestW: 640, IngestH: 360, NativeW: 1280, NativeH: 720, FPS: 30},
		{Type: MsgVideo, FrameID: 7, Key: true, QP: 24, Data: []byte{1, 2, 3, 4}},
		{Type: MsgPatch, FrameID: 7, X: 64, Y: 128, Data: bytes.Repeat([]byte{0xAB}, 33)},
		{Type: MsgStats, GainDB: 1.25, Epochs: 3, Samples: 150},
		{Type: MsgBye},
	}
	var seeds [][]byte
	for _, m := range msgs {
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			t.Fatalf("seed encode: %v", err)
		}
		seeds = append(seeds, buf.Bytes())
	}
	return seeds
}

// FuzzWireRead feeds arbitrary bytes to Read. Read must return an error or
// a message — never panic — and any message it accepts must survive a
// Write/Read round trip unchanged.
func FuzzWireRead(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
		if len(s) > 5 {
			f.Add(s[:5])           // truncated header/body boundary
			f.Add(s[:len(s)-1])    // truncated body
			f.Add(append(s, s...)) // trailing garbage after a valid message
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // length prefix over maxMessage

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			t.Fatalf("re-encode accepted message: %v", err)
		}
		m2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-decode own encoding: %v", err)
		}
		// gob does not distinguish nil from empty slices; normalise before
		// comparing.
		if len(m.Data) == 0 {
			m.Data = nil
		}
		if len(m2.Data) == 0 {
			m2.Data = nil
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", m2, m)
		}
	})
}
