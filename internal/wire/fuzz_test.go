package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// fuzzSeeds returns valid encoded messages covering every message type,
// used both whole and truncated as the seed corpus.
func fuzzSeeds(t interface{ Fatalf(string, ...interface{}) }) [][]byte {
	msgs := []*Message{
		{Type: MsgHello, IngestW: 640, IngestH: 360, NativeW: 1280, NativeH: 720, FPS: 30},
		{Type: MsgVideo, FrameID: 7, Key: true, QP: 24, Data: []byte{1, 2, 3, 4}},
		{Type: MsgPatch, FrameID: 7, X: 64, Y: 128, Data: bytes.Repeat([]byte{0xAB}, 33)},
		{Type: MsgStats, GainDB: 1.25, Epochs: 3, Samples: 150},
		{Type: MsgBye},
		{Type: MsgSubscribe, Channel: "ch000", FrameID: 4},
		{Type: MsgPlaylist, Channel: "ch000", Data: bytes.Repeat([]byte{0x31}, 40)},
		{Type: MsgSegmentReq, Channel: "ch000", FrameID: 11, Rung: 3},
		{Type: MsgSegment, Channel: "ch000", FrameID: 11, Rung: 3, SegID: "cafef00d", SegDurUS: 1_000_000, Data: bytes.Repeat([]byte{0x7}, 64)},
	}
	var seeds [][]byte
	for _, m := range msgs {
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			t.Fatalf("seed encode: %v", err)
		}
		seeds = append(seeds, buf.Bytes())
		// The same message in the versioned framing, so the corpus exercises
		// both decode paths from the start.
		var fbuf bytes.Buffer
		if err := WriteFrame(&fbuf, m); err != nil {
			t.Fatalf("seed frame encode: %v", err)
		}
		seeds = append(seeds, fbuf.Bytes())
	}
	return seeds
}

// FuzzWireRead feeds arbitrary bytes to both decode paths, Read (legacy
// framing) and ReadFrame (versioned framing). Each must return an error or
// a message — never panic — and any message either accepts must survive a
// round trip through its own framing unchanged. ReadFrame additionally may
// return *VersionError, which the round-trip check skips: it carries no
// message by design.
func FuzzWireRead(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
		if len(s) > 5 {
			f.Add(s[:5])           // truncated header/body boundary
			f.Add(s[:len(s)-1])    // truncated body
			f.Add(append(s, s...)) // trailing garbage after a valid message
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // length prefix over maxMessage
	f.Add([]byte{0, 0, 0, 1, 0xFE})       // framed: unknown version, empty body

	roundTrip := func(t *testing.T, m *Message,
		write func(*bytes.Buffer, *Message) error, read func(*bytes.Buffer) (*Message, error), path string) {
		var buf bytes.Buffer
		if err := write(&buf, m); err != nil {
			t.Fatalf("%s: re-encode accepted message: %v", path, err)
		}
		m2, err := read(&buf)
		if err != nil {
			t.Fatalf("%s: re-decode own encoding: %v", path, err)
		}
		// gob does not distinguish nil from empty slices; normalise before
		// comparing.
		if len(m.Data) == 0 {
			m.Data = nil
		}
		if len(m2.Data) == 0 {
			m2.Data = nil
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("%s: round trip mismatch:\n got %+v\nwant %+v", path, m2, m)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := Read(bytes.NewReader(data)); err == nil {
			roundTrip(t, m,
				func(b *bytes.Buffer, m *Message) error { return Write(b, m) },
				func(b *bytes.Buffer) (*Message, error) { return Read(b) }, "legacy")
		}
		m, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			if _, ok := err.(*VersionError); ok && m != nil {
				t.Fatalf("framed: VersionError must not carry a message")
			}
			return
		}
		roundTrip(t, m,
			func(b *bytes.Buffer, m *Message) error { return WriteFrame(b, m) },
			func(b *bytes.Buffer) (*Message, error) { return ReadFrame(b) }, "framed")
	})
}
