package abr

import (
	"math"
	"time"
)

// BOLA is the Lyapunov-optimisation ABR of Spiteri, Urgaonkar & Sitaraman
// (INFOCOM'16), included as an additional distribution-side baseline beyond
// the paper's Pensieve/robustMPC pair. BOLA chooses the rung maximising
// (V * utility + V*gp - buffer) / chunkSize, where utility is the log of
// the rung's (effective) bitrate — it needs no throughput estimate at all.
type BOLA struct {
	// Gp is the playback-smoothness weight (default 5).
	Gp float64
	// V scales the utility-vs-buffer trade-off (default derived from the
	// buffer capacity and ladder size at first use).
	V float64
}

// Name implements Algorithm.
func (b *BOLA) Name() string { return "BOLA" }

// Next implements Algorithm.
func (b *BOLA) Next(rungs []Rung, thr []float64, buffer time.Duration) int {
	if len(rungs) == 0 {
		return 0
	}
	gp := b.Gp
	if gp <= 0 {
		gp = 5
	}
	v := b.V
	if v <= 0 {
		// Calibrate V so the top rung is chosen when the buffer is nearly
		// full (8 s live buffer) and the bottom rung near empty.
		vmax := utility(rungs[len(rungs)-1], rungs[0])
		v = (8 - 2) / (vmax + gp)
	}
	bufSec := buffer.Seconds()
	best, bestScore := 0, math.Inf(-1)
	for i, r := range rungs {
		score := (v*(utility(r, rungs[0])+gp) - bufSec) / (r.Kbps)
		if score > bestScore {
			bestScore = score
			best = i
		}
	}
	// BOLA-E safety cap: on shallow live buffers the pure Lyapunov choice
	// oscillates, so never pick a rung whose expected download time (at the
	// harmonic-mean throughput) exceeds the current buffer.
	if est := harmonicMean(tail(thr, 5)); est > 0 {
		const chunkSec = 2.0
		for best > 0 {
			if rungs[best].Kbps*chunkSec/est <= math.Max(bufSec, chunkSec) {
				break
			}
			best--
		}
	}
	return best
}

// utility is BOLA's logarithmic chunk utility relative to the lowest rung.
func utility(r, lowest Rung) float64 {
	if lowest.EffectiveKbps <= 0 || r.EffectiveKbps <= 0 {
		return 0
	}
	return math.Log(r.EffectiveKbps / lowest.EffectiveKbps)
}
