// Package abr implements the distribution side of Figure 1: an HTTP
// adaptive-streaming simulator with the paper's QoE metric (§8.3), the
// robustMPC ABR algorithm (Yin et al. 2015), a Pensieve-like learned-policy
// stand-in (see DESIGN.md substitution #6), and the effective-bitrate
// mapping that translates LiveNAS's PSNR gains into the bitrate domain the
// QoE metric consumes.
package abr

import (
	"math"
	"time"

	"livenas/internal/metrics"
	"livenas/internal/trace"
)

// Rung is one rung of the distribution bitrate ladder: a nominal encoding
// bitrate and the effective bitrate viewers perceive. For WebRTC-sourced
// content the two are equal; for LiveNAS-sourced content the effective
// bitrate is inflated by the inverse quality mapping (§8.3: "we created an
// inverse mapping from video quality to the corresponding bitrate ... This
// allows us to obtain the 'effective bitrate' of video chunks").
type Rung struct {
	Name          string
	Kbps          float64 // network cost of a chunk at this rung
	EffectiveKbps float64 // perceived-quality bitrate used by the QoE metric
}

// EffectiveBitrate inverts the logarithmic rate-quality model used by the
// scheduler's curves: given the PSNR delivered when spending baseKbps, and
// the PSNR actually delivered (after super-resolution), it returns the
// bitrate WebRTC encoding would need for the same PSNR.
func EffectiveBitrate(baseKbps, basePSNR, actualPSNR float64) float64 {
	if baseKbps <= 0 {
		return 0
	}
	// Local slope of the log rate-quality curve: dQ/dlog2(rate) ~ beta dB
	// per doubling; 3 dB per doubling is the classic high-rate asymptote.
	const betaPerDoubling = 3.0
	return baseKbps * math.Pow(2, (actualPSNR-basePSNR)/betaPerDoubling)
}

// Ladder builds the distribution ladder for a target top resolution.
// with4K adds the 2K/4K rungs the paper adds for YouTube content.
func Ladder(with4K bool) []Rung {
	rungs := []Rung{
		{Name: "240p", Kbps: 400},
		{Name: "360p", Kbps: 800},
		{Name: "480p", Kbps: 1200},
		{Name: "720p", Kbps: 2400},
		{Name: "1080p", Kbps: 4500},
	}
	if with4K {
		rungs = append(rungs,
			Rung{Name: "2K", Kbps: 9000},
			Rung{Name: "4K", Kbps: 16000},
		)
	}
	for i := range rungs {
		rungs[i].EffectiveKbps = rungs[i].Kbps
	}
	return rungs
}

// Boost applies an effective-bitrate multiplier to every rung, modelling a
// higher-quality origin stream (LiveNAS ingest): each transcoded chunk
// carries more quality per bit.
func Boost(rungs []Rung, factor float64) []Rung {
	out := make([]Rung, len(rungs))
	copy(out, rungs)
	for i := range out {
		out[i].EffectiveKbps = out[i].Kbps * factor
	}
	return out
}

// SimConfig configures one adaptive-streaming playback simulation.
type SimConfig struct {
	Rungs     []Rung
	Trace     *trace.Trace
	ChunkSec  float64       // chunk duration (default 2s, live-style)
	BufferCap time.Duration // max client buffer (default 8s for live)
	Chunks    int           // number of chunks to play (default trace length / chunk)
	StartRung int           // initial quality (default 0)
}

func (c SimConfig) withDefaults() SimConfig {
	if c.ChunkSec <= 0 {
		c.ChunkSec = 2
	}
	if c.BufferCap <= 0 {
		c.BufferCap = 8 * time.Second
	}
	if c.Chunks <= 0 {
		c.Chunks = int(c.Trace.Duration().Seconds()/c.ChunkSec) - 1
		if c.Chunks < 1 {
			c.Chunks = 1
		}
	}
	return c
}

// Result summarises one playback.
type Result struct {
	QoE         float64 // mean per-chunk linear QoE
	AvgKbps     float64 // mean effective bitrate played
	RebufferSec float64
	Switches    int
	RungCounts  []int
}

// Algorithm chooses the next chunk's rung.
type Algorithm interface {
	Name() string
	// Next returns the rung index for the next chunk given the measured
	// throughput history (kbps, most recent last) and the current buffer.
	Next(rungs []Rung, thrHistory []float64, buffer time.Duration) int
}

// Simulate plays the stream through the downlink trace using alg, computing
// the linear QoE of Pensieve/robustMPC (§8.3): sum over chunks of
// effective-bitrate utility minus rebuffering penalty minus smoothness
// penalty, normalised per chunk.
func Simulate(cfg SimConfig, alg Algorithm) Result {
	cfg = cfg.withDefaults()
	rungs := cfg.Rungs
	var (
		now      float64 // seconds
		buffer   float64 // seconds of video buffered
		prevEff  float64
		thr      []float64
		res      Result
		qoeTotal float64
	)
	res.RungCounts = make([]int, len(rungs))
	rung := cfg.StartRung
	for i := 0; i < cfg.Chunks; i++ {
		if i > 0 {
			rung = alg.Next(rungs, thr, time.Duration(buffer*float64(time.Second)))
		}
		if rung < 0 {
			rung = 0
		}
		if rung >= len(rungs) {
			rung = len(rungs) - 1
		}
		res.RungCounts[rung]++
		bits := rungs[rung].Kbps * 1000 * cfg.ChunkSec
		// Download through the trace, integrating capacity second by second.
		dl := downloadTime(cfg.Trace, now, bits)
		// Measured throughput for the ABR.
		thr = append(thr, bits/dl/1000)
		if len(thr) > 20 {
			thr = thr[1:]
		}
		// Buffer evolution.
		if dl > buffer {
			res.RebufferSec += dl - buffer
			buffer = 0
		} else {
			buffer -= dl
		}
		buffer += cfg.ChunkSec
		if max := cfg.BufferCap.Seconds(); buffer > max {
			// Client pauses requests until there is room; time passes.
			now += buffer - max
			buffer = max
		}
		now += dl

		// Linear QoE (Pensieve's formulation): bitrate in Mbps, 4.3x
		// rebuffer penalty, 1x smoothness penalty.
		eff := rungs[rung].EffectiveKbps / 1000
		qoe := eff - 4.3*chunkRebuffer(dl, buffer, cfg.ChunkSec) - math.Abs(eff-prevEff)
		if i == 0 {
			qoe = eff
		}
		if prevEff != eff && i > 0 {
			res.Switches++
		}
		prevEff = eff
		qoeTotal += qoe
		res.AvgKbps += rungs[rung].EffectiveKbps
	}
	res.QoE = qoeTotal / float64(cfg.Chunks)
	res.AvgKbps /= float64(cfg.Chunks)
	return res
}

// chunkRebuffer approximates the rebuffering charged to the current chunk.
func chunkRebuffer(dl, bufferAfter, chunkSec float64) float64 {
	// If the buffer after accounting is only the fresh chunk, the download
	// stalled playback for the excess time.
	stall := dl - (bufferAfter - chunkSec) - chunkSec
	if stall < 0 {
		return 0
	}
	return stall
}

// downloadTime integrates trace capacity starting at now until bits are
// transferred, returning the elapsed seconds.
func downloadTime(tr *trace.Trace, now, bits float64) float64 {
	remaining := bits
	t := now
	for i := 0; i < 1<<20; i++ {
		rate := tr.RateAt(time.Duration(t * float64(time.Second)))
		if rate < 1 {
			rate = 1
		}
		// Time to the next whole-second trace boundary.
		step := 1.0 - (t - math.Floor(t))
		if step <= 0 {
			step = 1
		}
		can := rate * 1000 * step
		if can >= remaining {
			return t + remaining/(rate*1000) - now
		}
		remaining -= can
		t += step
	}
	return t - now
}

// --- robustMPC ---

// RobustMPC is the model-predictive ABR of Yin et al. 2015 with the robust
// throughput estimate (harmonic mean discounted by recent prediction error).
type RobustMPC struct {
	Horizon int // look-ahead chunks (default 5)

	lastErr float64
}

// Name implements Algorithm.
func (m *RobustMPC) Name() string { return "robustMPC" }

// Next implements Algorithm.
func (m *RobustMPC) Next(rungs []Rung, thr []float64, buffer time.Duration) int {
	h := m.Horizon
	if h <= 0 {
		h = 5
	}
	if len(thr) == 0 {
		return 0
	}
	// Robust throughput: harmonic mean of last 5 samples, discounted by the
	// max recent error.
	est := harmonicMean(tail(thr, 5))
	if len(thr) >= 2 {
		pred := harmonicMean(tail(thr[:len(thr)-1], 5))
		actual := thr[len(thr)-1]
		if pred > 0 {
			err := math.Abs(pred-actual) / actual
			if err > m.lastErr {
				m.lastErr = err
			} else {
				m.lastErr = 0.8*m.lastErr + 0.2*err
			}
		}
	}
	est /= 1 + m.lastErr

	// Exhaustive search over constant-rung plans of length h (constant
	// plans are within a whisker of full enumeration and O(R*h)).
	best, bestQ := 0, math.Inf(-1)
	const chunkSec = 2.0
	for r := range rungs {
		buf := buffer.Seconds()
		var q float64
		prev := rungs[r].EffectiveKbps / 1000 // no switch penalty on first
		for k := 0; k < h; k++ {
			dl := rungs[r].Kbps * chunkSec / est // seconds to fetch the chunk
			stall := dl - buf
			if stall < 0 {
				stall = 0
			}
			buf = buf - dl + stall + chunkSec
			if buf > 8 {
				buf = 8
			}
			eff := rungs[r].EffectiveKbps / 1000
			q += eff - 4.3*stall - math.Abs(eff-prev)
			prev = eff
		}
		if q > bestQ {
			bestQ = q
			best = r
		}
	}
	return best
}

// --- Pensieve-like ---

// PensieveLike is the stand-in for Pensieve's learned policy: a hybrid
// throughput/buffer controller whose thresholds were tuned on the same
// trace families Pensieve trains on. It behaves slightly less conservatively
// than robustMPC at high buffers (the qualitative difference the paper
// reports: Pensieve <= 13% better on the Twitch video).
type PensieveLike struct{}

// Name implements Algorithm.
func (p *PensieveLike) Name() string { return "Pensieve" }

// Next implements Algorithm.
func (p *PensieveLike) Next(rungs []Rung, thr []float64, buffer time.Duration) int {
	if len(thr) == 0 {
		return 0
	}
	est := harmonicMean(tail(thr, 8))
	buf := buffer.Seconds()
	// Buffer-scaled aggressiveness: with a comfortable buffer, spend up to
	// ~93% of estimated throughput; with a thin buffer, hold a safety
	// margin — the qualitative policy RL converges to on these traces.
	frac := 0.55 + 0.38*math.Min(buf/8, 1)
	budget := est * frac
	best := 0
	for r := range rungs {
		if rungs[r].Kbps <= budget {
			best = r
		}
	}
	// Thin buffer: drop one rung pre-emptively.
	if buf < 2 && best > 0 {
		best--
	}
	return best
}

// --- BufferBased (BBA-style; used as an extra baseline) ---

// BufferBased is the BBA-0 algorithm of Huang et al.: rung selection as a
// linear function of buffer occupancy only.
type BufferBased struct{}

// Name implements Algorithm.
func (b *BufferBased) Name() string { return "BBA" }

// Next implements Algorithm.
func (b *BufferBased) Next(rungs []Rung, thr []float64, buffer time.Duration) int {
	frac := buffer.Seconds() / 8
	idx := int(frac * float64(len(rungs)))
	if idx >= len(rungs) {
		idx = len(rungs) - 1
	}
	if idx < 0 {
		idx = 0
	}
	return idx
}

func harmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var inv float64
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		inv += 1 / x
	}
	if inv == 0 {
		return 0
	}
	return float64(len(xs)) / inv
}

func tail(xs []float64, n int) []float64 {
	if len(xs) <= n {
		return xs
	}
	return xs[len(xs)-n:]
}

// MeanQoE runs the simulation over a set of traces and returns the mean QoE
// (the aggregation of Figure 20).
func MeanQoE(rungs []Rung, traces []*trace.Trace, alg Algorithm) float64 {
	var qs []float64
	for _, tr := range traces {
		r := Simulate(SimConfig{Rungs: rungs, Trace: tr}, alg)
		qs = append(qs, r.QoE)
	}
	return metrics.Mean(qs)
}
