package abr

import (
	"math"
	"testing"
	"time"

	"livenas/internal/trace"
)

func flat(kbps float64, secs int) *trace.Trace {
	ks := make([]float64, secs)
	for i := range ks {
		ks[i] = kbps
	}
	return &trace.Trace{Name: "flat", DT: time.Second, Kbps: ks}
}

func TestEffectiveBitrate(t *testing.T) {
	// +3 dB at 3 dB/doubling => 2x effective bitrate.
	if got := EffectiveBitrate(1000, 30, 33); math.Abs(got-2000) > 1 {
		t.Fatalf("got %v want 2000", got)
	}
	if got := EffectiveBitrate(1000, 30, 30); math.Abs(got-1000) > 1 {
		t.Fatalf("equal quality should map to same bitrate, got %v", got)
	}
	if EffectiveBitrate(0, 30, 40) != 0 {
		t.Fatal("zero base")
	}
}

func TestLadder(t *testing.T) {
	l := Ladder(false)
	if len(l) != 5 || l[len(l)-1].Name != "1080p" {
		t.Fatalf("ladder %v", l)
	}
	l4k := Ladder(true)
	if len(l4k) != 7 || l4k[len(l4k)-1].Name != "4K" {
		t.Fatalf("4K ladder %v", l4k)
	}
	for _, r := range l {
		if r.EffectiveKbps != r.Kbps {
			t.Fatal("baseline ladder must have effective == nominal")
		}
	}
}

func TestBoost(t *testing.T) {
	l := Ladder(false)
	b := Boost(l, 1.5)
	if b[0].EffectiveKbps != l[0].Kbps*1.5 {
		t.Fatal("boost not applied")
	}
	if l[0].EffectiveKbps != l[0].Kbps {
		t.Fatal("Boost mutated input")
	}
}

func TestDownloadTime(t *testing.T) {
	tr := flat(1000, 60)
	// 2000 kbit at 1000 kbps = 2 s.
	if got := downloadTime(tr, 0, 2000*1000); math.Abs(got-2) > 0.01 {
		t.Fatalf("dl time %v want 2", got)
	}
	// Starting mid-second must still work.
	if got := downloadTime(tr, 0.5, 500*1000); math.Abs(got-0.5) > 0.01 {
		t.Fatalf("dl time %v want 0.5", got)
	}
}

func TestSimulateAmpleBandwidth(t *testing.T) {
	// 50 Mbps link: every algorithm should reach the top rung and never
	// rebuffer.
	tr := flat(50000, 120)
	for _, alg := range []Algorithm{&RobustMPC{}, &PensieveLike{}, &BufferBased{}} {
		r := Simulate(SimConfig{Rungs: Ladder(false), Trace: tr}, alg)
		if r.RebufferSec > 0.1 {
			t.Fatalf("%s rebuffered %v on ample link", alg.Name(), r.RebufferSec)
		}
		if r.AvgKbps < 3000 {
			t.Fatalf("%s avg rate %v too low on ample link", alg.Name(), r.AvgKbps)
		}
	}
}

func TestSimulateScarceBandwidth(t *testing.T) {
	// 600 kbps link: algorithms must settle near the bottom rungs; QoE must
	// not collapse to deeply negative values.
	tr := flat(600, 120)
	for _, alg := range []Algorithm{&RobustMPC{}, &PensieveLike{}} {
		r := Simulate(SimConfig{Rungs: Ladder(false), Trace: tr}, alg)
		if r.AvgKbps > 1000 {
			t.Fatalf("%s overshot on scarce link: %v kbps", alg.Name(), r.AvgKbps)
		}
		if r.QoE < -2 {
			t.Fatalf("%s QoE %v collapsed", alg.Name(), r.QoE)
		}
	}
}

func TestBoostImprovesQoE(t *testing.T) {
	// The paper's core distribution-side claim (Fig 20): a higher-quality
	// origin (effective-bitrate boost) improves QoE on the same traces.
	traces := []*trace.Trace{
		trace.PensieveDownlink(1, 2*time.Minute),
		trace.PensieveDownlink(2, 2*time.Minute),
		trace.FCCDownlink(3, 2*time.Minute),
	}
	base := Ladder(false)
	boosted := Boost(base, 1.6)
	for _, alg := range []Algorithm{&RobustMPC{}, &PensieveLike{}} {
		q0 := MeanQoE(base, traces, alg)
		q1 := MeanQoE(boosted, traces, alg)
		if q1 <= q0 {
			t.Fatalf("%s: boosted QoE %v should beat base %v", alg.Name(), q1, q0)
		}
	}
}

func TestMPCAdaptsToDrop(t *testing.T) {
	// Rate drops 6 Mbps -> 700 kbps at t=60: MPC must downswitch.
	ks := make([]float64, 120)
	for i := range ks {
		if i < 60 {
			ks[i] = 6000
		} else {
			ks[i] = 700
		}
	}
	tr := &trace.Trace{Name: "step", DT: time.Second, Kbps: ks}
	r := Simulate(SimConfig{Rungs: Ladder(false), Trace: tr}, &RobustMPC{})
	if r.Switches == 0 {
		t.Fatal("MPC never switched on a step trace")
	}
	if r.RebufferSec > 20 {
		t.Fatalf("MPC rebuffered %v s", r.RebufferSec)
	}
}

func TestHarmonicMean(t *testing.T) {
	if got := harmonicMean([]float64{2, 2, 2}); math.Abs(got-2) > 1e-9 {
		t.Fatalf("hm %v", got)
	}
	// Harmonic mean is dominated by small values.
	if hm := harmonicMean([]float64{1, 100}); hm > 10 {
		t.Fatalf("hm %v should be near 2", hm)
	}
	if harmonicMean(nil) != 0 {
		t.Fatal("empty hm")
	}
}

func TestAlgorithmNames(t *testing.T) {
	if (&RobustMPC{}).Name() != "robustMPC" || (&PensieveLike{}).Name() != "Pensieve" || (&BufferBased{}).Name() != "BBA" {
		t.Fatal("names wrong")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	tr := trace.PensieveDownlink(5, time.Minute)
	a := Simulate(SimConfig{Rungs: Ladder(false), Trace: tr}, &RobustMPC{})
	b := Simulate(SimConfig{Rungs: Ladder(false), Trace: tr}, &RobustMPC{})
	if a.QoE != b.QoE || a.AvgKbps != b.AvgKbps {
		t.Fatal("simulation not deterministic")
	}
}

func TestBOLABufferMonotone(t *testing.T) {
	// BOLA picks higher rungs as the buffer grows.
	b := &BOLA{}
	rungs := Ladder(false)
	prev := -1
	for _, buf := range []time.Duration{0, 2 * time.Second, 4 * time.Second, 7 * time.Second} {
		r := b.Next(rungs, []float64{3000}, buf)
		if r < prev {
			t.Fatalf("BOLA rung decreased with buffer: %d after %d", r, prev)
		}
		prev = r
	}
	if prev == 0 {
		t.Fatal("BOLA never left the bottom rung at a full buffer")
	}
}

func TestBOLAPlaysThroughTraces(t *testing.T) {
	tr := trace.PensieveDownlink(9, 2*time.Minute)
	r := Simulate(SimConfig{Rungs: Ladder(false), Trace: tr}, &BOLA{})
	if r.AvgKbps <= 0 {
		t.Fatal("BOLA played nothing")
	}
	if r.QoE < -3 {
		t.Fatalf("BOLA QoE collapsed: %v", r.QoE)
	}
	if (&BOLA{}).Name() != "BOLA" {
		t.Fatal("name")
	}
}
