// Package sim provides the discrete-event simulator every LiveNAS-Go
// experiment runs on. Ingest sessions, network links, training epochs and
// distribution-side playback all advance a shared virtual clock, so hundreds
// of stream-hours of evaluation (the paper reports 366 hours) execute in CPU
// minutes while preserving ordering and timing semantics.
package sim

import (
	"container/heap"
	"time"
)

// event is one scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // FIFO tiebreaker for determinism at equal times
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Simulator is a single-threaded discrete-event loop. It is not safe for
// concurrent use; all scheduled callbacks run on the caller's goroutine.
type Simulator struct {
	now  time.Duration
	seq  uint64
	pq   eventHeap
	halt bool
}

// New returns a simulator with the clock at zero.
func New() *Simulator { return &Simulator{} }

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// At schedules fn at absolute virtual time t. Scheduling in the past panics:
// it always indicates a logic error in the caller.
func (s *Simulator) At(t time.Duration, fn func()) {
	if t < s.now {
		panic("sim: scheduling into the past")
	}
	s.seq++
	heap.Push(&s.pq, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d after the current virtual time (d < 0 is clamped).
func (s *Simulator) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now+d, fn)
}

// Stop makes Run/RunUntil return after the currently executing event.
func (s *Simulator) Stop() { s.halt = true }

// Run executes events until the queue is empty or Stop is called.
func (s *Simulator) Run() {
	s.halt = false
	for len(s.pq) > 0 && !s.halt {
		e := heap.Pop(&s.pq).(event)
		s.now = e.at
		e.fn()
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
func (s *Simulator) RunUntil(t time.Duration) {
	s.halt = false
	for s.StepUntil(t, 0) {
	}
}

// StepUntil executes up to budget events with timestamps <= t (budget <= 0
// means unbounded) and reports whether eligible events remain. Callers use
// it to interleave the event loop with external checks — context
// cancellation, progress reporting — at event boundaries:
//
//	for s.StepUntil(d, 1024) {
//		if ctx.Err() != nil { ... }
//	}
//
// When it returns false (drained, past t, or stopped) the clock is advanced
// to t exactly as RunUntil would, so a completed stepped run and RunUntil
// are indistinguishable. Unlike RunUntil it does not clear a pending Stop:
// a Stop halts the whole stepped run, not one slice of it.
func (s *Simulator) StepUntil(t time.Duration, budget int) bool {
	for n := 0; len(s.pq) > 0 && !s.halt && s.pq[0].at <= t; n++ {
		if budget > 0 && n >= budget {
			return true
		}
		e := heap.Pop(&s.pq).(event)
		s.now = e.at
		e.fn()
	}
	if !s.halt && t > s.now {
		s.now = t
	}
	return false
}

// Pending reports the number of scheduled events.
func (s *Simulator) Pending() int { return len(s.pq) }

// Next reports the timestamp of the earliest pending event. Drivers that
// must advance the clock only as far as real work exists (for example a
// blocking Recv on a simulated connection) peek here instead of running
// to an arbitrary horizon.
func (s *Simulator) Next() (time.Duration, bool) {
	if len(s.pq) == 0 {
		return 0, false
	}
	return s.pq[0].at, true
}
