package sim

import (
	"sort"
	"testing"
	"testing/quick"
	"time"
)

// Property: events fire in non-decreasing time order regardless of the
// scheduling order, and equal-time events preserve insertion order.
func TestQuickEventOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		s := New()
		var fired []time.Duration
		var seq []int
		for i, d := range delays {
			i := i
			at := time.Duration(d%1000) * time.Millisecond
			s.At(at, func() {
				fired = append(fired, s.Now())
				seq = append(seq, i)
			})
		}
		s.Run()
		if len(fired) != len(delays) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(a, b int) bool { return fired[a] < fired[b] }) {
			return false
		}
		// Equal timestamps must preserve insertion order.
		for i := 1; i < len(fired); i++ {
			if fired[i] == fired[i-1] && seq[i] < seq[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
