package sim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.At(3*time.Second, func() { order = append(order, 3) })
	s.At(1*time.Second, func() { order = append(order, 1) })
	s.At(2*time.Second, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order %v", order)
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("clock %v", s.Now())
	}
}

func TestFIFOAtEqualTimes(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events not FIFO: %v", order)
		}
	}
}

func TestAfterAndNesting(t *testing.T) {
	s := New()
	var hits []time.Duration
	s.After(time.Second, func() {
		hits = append(hits, s.Now())
		s.After(2*time.Second, func() { hits = append(hits, s.Now()) })
	})
	s.Run()
	if len(hits) != 2 || hits[0] != time.Second || hits[1] != 3*time.Second {
		t.Fatalf("hits %v", hits)
	}
}

func TestAfterNegativeClamps(t *testing.T) {
	s := New()
	ran := false
	s.After(-5*time.Second, func() { ran = true })
	s.Run()
	if !ran {
		t.Fatal("negative After never ran")
	}
}

func TestSchedulingPastPanics(t *testing.T) {
	s := New()
	s.At(2*time.Second, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.At(time.Second, func() {})
}

func TestRunUntil(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 5; i++ {
		s.At(time.Duration(i)*time.Second, func() { count++ })
	}
	s.RunUntil(3 * time.Second)
	if count != 3 {
		t.Fatalf("count=%d want 3", count)
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("clock %v", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("pending %d", s.Pending())
	}
	s.RunUntil(10 * time.Second)
	if count != 5 || s.Now() != 10*time.Second {
		t.Fatalf("count=%d now=%v", count, s.Now())
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	s.At(time.Second, func() { count++; s.Stop() })
	s.At(2*time.Second, func() { count++ })
	s.Run()
	if count != 1 {
		t.Fatalf("Stop ignored, count=%d", count)
	}
}

func TestPeriodicPattern(t *testing.T) {
	// The idiom used throughout core: a self-rescheduling tick.
	s := New()
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		if ticks < 10 {
			s.After(100*time.Millisecond, tick)
		}
	}
	s.After(100*time.Millisecond, tick)
	s.Run()
	if ticks != 10 {
		t.Fatalf("ticks=%d", ticks)
	}
	if s.Now() != time.Second {
		t.Fatalf("now=%v", s.Now())
	}
}
