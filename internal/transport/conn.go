package transport

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"livenas/internal/wire"
)

// Conn is the message-oriented connection every real-network path runs
// over: the ingest demo (client→server), the distribution edge
// (origin→relay→viewer) and any future control plane. Two implementations
// exist — NetConn wraps a real net.Conn with the versioned wire framing,
// and SimConn is a netem-shaped link on the virtual clock — so the same
// protocol code drives real processes and deterministic experiments.
//
// Send hands one message to the connection; it may block until the bytes
// reach the OS (NetConn) but never until the peer consumes them (SimConn
// queues and delivers on the simulator). Recv blocks for the next message,
// honouring the receive timeout set by SetRecvTimeout (each Recv gets the
// full timeout; 0 disables it). Close tears the connection down; a blocked
// or subsequent Recv on either side returns an error.
//
// Event-driven consumers (the edge actors, which must run identically on
// the simulator and on sockets) do not call Recv; they receive messages
// through a delivery loop — SimConn's OnMessage handler in simulation, a
// per-connection Recv goroutine in real processes.
type Conn interface {
	Send(m *wire.Message) error
	Recv() (*wire.Message, error)
	Close() error
	// SetRecvTimeout bounds each subsequent Recv; d <= 0 disables the bound.
	SetRecvTimeout(d time.Duration)
}

// ErrClosed is returned by Send/Recv on a connection either side closed.
var ErrClosed = errors.New("transport: connection closed")

// ErrRecvTimeout is returned by Recv when the receive timeout elapses with
// no message. NetConn wraps the underlying net timeout error instead, so
// callers should test with IsTimeout rather than ==.
var ErrRecvTimeout = errors.New("transport: receive timeout")

// IsTimeout reports whether err is a receive-timeout from either Conn
// implementation.
func IsTimeout(err error) bool {
	if errors.Is(err, ErrRecvTimeout) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// NetConn is the real-socket Conn: the versioned wire framing over a
// net.Conn. It is safe for one concurrent sender and one concurrent
// receiver (the usual split: a write path and a Recv loop); Send holds a
// mutex so multiple senders also serialise correctly.
type NetConn struct {
	c  net.Conn
	br *bufio.Reader

	wmu sync.Mutex // serialises frames on the socket

	tmu     sync.Mutex
	timeout time.Duration
}

// NewNetConn wraps an established net.Conn.
func NewNetConn(c net.Conn) *NetConn {
	return &NetConn{c: c, br: bufio.NewReaderSize(c, 64<<10)}
}

// Dial connects a NetConn over TCP.
func Dial(addr string) (*NetConn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewNetConn(c), nil
}

// Send writes one framed message to the socket.
func (n *NetConn) Send(m *wire.Message) error {
	n.wmu.Lock()
	defer n.wmu.Unlock()
	return wire.WriteFrame(n.c, m)
}

// Recv reads the next framed message. Frames written by a newer protocol
// version are skipped (the versioned framing makes them self-delimiting),
// so a newer peer never desynchronises an older reader.
func (n *NetConn) Recv() (*wire.Message, error) {
	timeout := n.recvTimeout()
	if timeout > 0 {
		if err := n.c.SetReadDeadline(time.Now().Add(timeout)); err != nil { //livenas:allow determinism-taint real-socket read deadline
			return nil, err
		}
	} else if err := n.c.SetReadDeadline(time.Time{}); err != nil {
		return nil, err
	}
	for {
		m, err := wire.ReadFrame(n.br)
		if err == nil {
			return m, nil
		}
		var ve *wire.VersionError
		if errors.As(err, &ve) {
			continue // tolerate newer peers: frame consumed, read the next
		}
		return nil, err
	}
}

func (n *NetConn) recvTimeout() time.Duration {
	n.tmu.Lock()
	defer n.tmu.Unlock()
	return n.timeout
}

// Close closes the underlying socket.
func (n *NetConn) Close() error { return n.c.Close() }

// SetRecvTimeout bounds each subsequent Recv.
func (n *NetConn) SetRecvTimeout(d time.Duration) {
	n.tmu.Lock()
	defer n.tmu.Unlock()
	n.timeout = d
}

// RemoteAddr exposes the peer address for logging.
func (n *NetConn) RemoteAddr() net.Addr { return n.c.RemoteAddr() }

// Pump is the real-process delivery loop: it blocks on Recv and hands each
// message to h until the connection errors, then returns that error. Run it
// on its own goroutine per connection — it is the socket-world equivalent
// of SimConn's OnMessage, feeding the same event-driven handlers.
func Pump(c Conn, h func(*wire.Message)) error {
	for {
		m, err := c.Recv()
		if err != nil {
			return err
		}
		h(m)
	}
}
