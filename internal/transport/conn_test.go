package transport

import (
	"errors"
	"net"
	"testing"
	"time"

	"livenas/internal/sim"
	"livenas/internal/wire"
)

func simPair(kbps float64, delay time.Duration, queueBytes int) (*sim.Simulator, *SimConn, *SimConn) {
	s := sim.New()
	cfg := SimLinkConfig{Kbps: kbps, Delay: delay, QueueBytes: queueBytes}
	a, b := NewSimConnPair(s, cfg, cfg)
	return s, a, b
}

// TestSimConnDelivery pins the netem shape: a message's arrival time is
// its serialisation time at the link rate plus the propagation delay.
func TestSimConnDelivery(t *testing.T) {
	s, a, b := simPair(100 /*kbps*/, 20*time.Millisecond, 0)
	m := &wire.Message{Type: wire.MsgSegment, Data: make([]byte, 1000-64)} // WireSize = 1000
	if err := a.Send(m); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("wrong message delivered")
	}
	// 1000 bytes at 100 kbps = 80 ms serialisation, + 20 ms propagation.
	if want := 100 * time.Millisecond; s.Now() != want {
		t.Fatalf("delivered at %v, want %v", s.Now(), want)
	}
}

// TestSimConnFIFO checks ordered delivery under back-to-back sends and
// that serialisation of the second message waits for the first.
func TestSimConnFIFO(t *testing.T) {
	s, a, b := simPair(100, 10*time.Millisecond, 0)
	for i := 0; i < 3; i++ {
		if err := a.Send(&wire.Message{Type: wire.MsgVideo, FrameID: i, Data: make([]byte, 1000-64)}); err != nil {
			t.Fatal(err)
		}
	}
	var at []time.Duration
	for i := 0; i < 3; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.FrameID != i {
			t.Fatalf("out of order: got frame %d at position %d", m.FrameID, i)
		}
		at = append(at, s.Now())
	}
	// Serialisation is 80 ms per message; arrivals 90, 170, 250 ms.
	want := []time.Duration{90 * time.Millisecond, 170 * time.Millisecond, 250 * time.Millisecond}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("arrival %d at %v, want %v", i, at[i], want[i])
		}
	}
}

// TestSimConnDropOldest fills the bounded queue and checks the oldest
// waiting message goes first while the newest survives.
func TestSimConnDropOldest(t *testing.T) {
	s, a, b := simPair(100, 0, 2000)
	// First message starts serialising immediately (not part of the queue);
	// the next three overflow the 2000-byte bound by one.
	for i := 0; i < 4; i++ {
		if err := a.Send(&wire.Message{Type: wire.MsgVideo, FrameID: i, Data: make([]byte, 1000-64)}); err != nil {
			t.Fatal(err)
		}
	}
	if a.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", a.Dropped())
	}
	var got []int
	for i := 0; i < 3; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, m.FrameID)
	}
	if got[0] != 0 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("delivered %v, want [0 2 3] (frame 1 was the oldest queued)", got)
	}
	_ = s
}

// TestSimConnRecvTimeout checks the virtual-clock receive timeout: the
// clock advances exactly to the deadline and no further.
func TestSimConnRecvTimeout(t *testing.T) {
	s, a, b := simPair(0, 50*time.Millisecond, 0)
	b.SetRecvTimeout(30 * time.Millisecond)
	if err := a.Send(&wire.Message{Type: wire.MsgBye}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); !IsTimeout(err) {
		t.Fatalf("want timeout, got %v", err)
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("clock at %v after timeout, want 30ms", s.Now())
	}
	b.SetRecvTimeout(0)
	if _, err := b.Recv(); err != nil {
		t.Fatalf("message should arrive after timeout cleared: %v", err)
	}
	if s.Now() != 50*time.Millisecond {
		t.Fatalf("clock at %v, want 50ms", s.Now())
	}
}

// TestSimConnClose checks both directions: the closer errors immediately,
// the peer after the FIN propagates.
func TestSimConnClose(t *testing.T) {
	_, a, b := simPair(0, 10*time.Millisecond, 0)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(&wire.Message{Type: wire.MsgBye}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send on closed conn: %v", err)
	}
	if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv from closed peer: %v", err)
	}
}

// TestSimConnOnMessage checks handler-driven delivery, including the
// drain of messages that arrived before the handler was installed.
func TestSimConnOnMessage(t *testing.T) {
	s, a, b := simPair(0, 5*time.Millisecond, 0)
	a.Send(&wire.Message{Type: wire.MsgVideo, FrameID: 0})
	s.RunUntil(10 * time.Millisecond) // lands in the inbox pre-handler
	var got []int
	b.OnMessage(func(m *wire.Message) { got = append(got, m.FrameID) })
	a.Send(&wire.Message{Type: wire.MsgVideo, FrameID: 1})
	s.RunUntil(20 * time.Millisecond)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("handler saw %v, want [0 1]", got)
	}
}

// TestNetConnRoundTrip runs the framed protocol over an in-memory
// net.Pipe: the real-socket implementation minus the kernel.
func TestNetConnRoundTrip(t *testing.T) {
	pa, pb := net.Pipe()
	a, b := NewNetConn(pa), NewNetConn(pb)
	defer a.Close()
	defer b.Close()

	done := make(chan error, 1)
	go func() {
		done <- a.Send(&wire.Message{Type: wire.MsgSegment, FrameID: 4, Rung: 1, SegID: "abcd", Data: []byte{1, 2, 3}})
	}()
	m, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if m.Type != wire.MsgSegment || m.FrameID != 4 || m.SegID != "abcd" {
		t.Fatalf("got %+v", m)
	}

	b.SetRecvTimeout(20 * time.Millisecond)
	if _, err := b.Recv(); !IsTimeout(err) {
		t.Fatalf("want timeout, got %v", err)
	}

	a.Close()
	b.SetRecvTimeout(0)
	if _, err := b.Recv(); err == nil {
		t.Fatal("recv after peer close must error")
	}
}
