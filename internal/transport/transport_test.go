package transport

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"livenas/internal/sim"
)

func TestPacketizeSmallPayload(t *testing.T) {
	fs := Packetize(KindVideo, 7, []byte("hello"), "meta", 0)
	if len(fs) != 1 {
		t.Fatalf("fragments %d", len(fs))
	}
	f := fs[0]
	if f.Kind != KindVideo || f.ID != 7 || f.Index != 0 || f.Count != 1 {
		t.Fatalf("fragment %+v", f)
	}
	if f.Meta != "meta" {
		t.Fatal("meta missing")
	}
	if f.WireSize() != 5+HeaderBytes {
		t.Fatalf("wire size %d", f.WireSize())
	}
}

func TestPacketizeSplitsAtMTU(t *testing.T) {
	payload := make([]byte, MTU*2+100)
	fs := Packetize(KindPatch, 3, payload, nil, 0)
	if len(fs) != 3 {
		t.Fatalf("fragments %d", len(fs))
	}
	if len(fs[0].Data) != MTU || len(fs[2].Data) != 100 {
		t.Fatalf("sizes %d %d %d", len(fs[0].Data), len(fs[1].Data), len(fs[2].Data))
	}
	for i, f := range fs {
		if f.Index != i || f.Count != 3 {
			t.Fatalf("fragment %d header %+v", i, f)
		}
	}
	if fs[1].Meta != nil || fs[2].Meta != nil {
		t.Fatal("meta should only ride fragment 0")
	}
}

func TestPacketizeEmptyPayload(t *testing.T) {
	fs := Packetize(KindVideo, 1, nil, "m", 0)
	if len(fs) != 1 || fs[0].Count != 1 {
		t.Fatalf("empty payload fragments %v", fs)
	}
}

func TestReassembleInOrder(t *testing.T) {
	r := NewReassembler()
	var got []Assembled
	r.OnComplete = func(a Assembled) { got = append(got, a) }
	payload := make([]byte, MTU*3+17)
	rand.New(rand.NewSource(1)).Read(payload)
	for _, f := range Packetize(KindVideo, 5, payload, "m5", 0) {
		r.Add(f, time.Second)
	}
	if len(got) != 1 {
		t.Fatalf("completed %d", len(got))
	}
	if !bytes.Equal(got[0].Data, payload) {
		t.Fatal("payload corrupted")
	}
	if got[0].Meta != "m5" || got[0].ID != 5 {
		t.Fatalf("unit %+v", got[0])
	}
	if r.PendingUnits() != 0 {
		t.Fatal("pending units remain")
	}
}

func TestReassemblerDetectsLoss(t *testing.T) {
	r := NewReassembler()
	var lost []int
	var completed []int
	r.OnComplete = func(a Assembled) { completed = append(completed, a.ID) }
	r.OnLoss = func(k Kind, id int) { lost = append(lost, id) }

	// Frame 1 loses its middle fragment; frame 2 completes.
	f1 := Packetize(KindVideo, 1, make([]byte, MTU*3), nil, 0)
	r.Add(f1[0], 0)
	r.Add(f1[2], 0)
	for _, f := range Packetize(KindVideo, 2, make([]byte, MTU), nil, 0) {
		r.Add(f, 0)
	}
	if len(completed) != 1 || completed[0] != 2 {
		t.Fatalf("completed %v", completed)
	}
	if len(lost) != 1 || lost[0] != 1 {
		t.Fatalf("lost %v", lost)
	}
}

func TestReassemblerIgnoresDuplicates(t *testing.T) {
	r := NewReassembler()
	count := 0
	r.OnComplete = func(Assembled) { count++ }
	fs := Packetize(KindVideo, 1, make([]byte, MTU+1), nil, 0)
	r.Add(fs[0], 0)
	r.Add(fs[0], 0) // duplicate
	r.Add(fs[1], 0)
	if count != 1 {
		t.Fatalf("completed %d times", count)
	}
}

func TestReassemblerKindsIndependent(t *testing.T) {
	r := NewReassembler()
	var lost []Kind
	r.OnLoss = func(k Kind, id int) { lost = append(lost, k) }
	r.OnComplete = func(Assembled) {}
	// Incomplete video frame 1; completing patch 5 must NOT abandon it.
	r.Add(Packetize(KindVideo, 1, make([]byte, MTU*2), nil, 0)[0], 0)
	for _, f := range Packetize(KindPatch, 5, make([]byte, 10), nil, 0) {
		r.Add(f, 0)
	}
	if len(lost) != 0 {
		t.Fatalf("cross-kind loss: %v", lost)
	}
	if r.PendingUnits() != 1 {
		t.Fatalf("pending %d", r.PendingUnits())
	}
}

func TestPacerSpacing(t *testing.T) {
	s := sim.New()
	var times []time.Duration
	p := NewPacer(s, 960, func(f Fragment) { times = append(times, s.Now()) }) // 960 kbps
	// 3 fragments of 1200+32 bytes: serialisation ~10.27 ms each.
	for i := 0; i < 3; i++ {
		p.Enqueue(Fragment{Kind: KindVideo, ID: i, Count: 1, Data: make([]byte, 1200)})
	}
	s.Run()
	if len(times) != 3 {
		t.Fatalf("sent %d", len(times))
	}
	if times[0] != 0 {
		t.Fatalf("first departure %v", times[0])
	}
	gap := times[1] - times[0]
	wantSec := float64(1232*8) / (960 * 1000)
	want := time.Duration(wantSec * float64(time.Second))
	if d := gap - want; d > time.Millisecond || d < -time.Millisecond {
		t.Fatalf("gap %v want %v", gap, want)
	}
}

func TestPacerRateChange(t *testing.T) {
	s := sim.New()
	var times []time.Duration
	p := NewPacer(s, 100, func(f Fragment) { times = append(times, s.Now()) })
	p.Enqueue(Fragment{Data: make([]byte, 1200), Count: 1})
	p.Enqueue(Fragment{Data: make([]byte, 1200), Count: 1})
	s.RunUntil(time.Millisecond) // first sent at t=0, gap set at 100 kbps (~98 ms)
	p.SetRateKbps(10000)
	p.Enqueue(Fragment{Data: make([]byte, 1200), Count: 1})
	s.Run()
	if len(times) != 3 {
		t.Fatalf("sent %d", len(times))
	}
	// Second leaves at the slow-rate spacing; third follows at the new rate.
	if times[1] < 90*time.Millisecond {
		t.Fatalf("second packet left too early: %v", times[1])
	}
	if gap := times[2] - times[1]; gap > 5*time.Millisecond {
		t.Fatalf("rate change not applied: gap %v", gap)
	}
}

func TestPacerQueueAccounting(t *testing.T) {
	s := sim.New()
	p := NewPacer(s, 1, func(Fragment) {}) // ~10 s per packet: stays queued
	p.Enqueue(Fragment{Data: make([]byte, 100), Count: 1})
	p.Enqueue(Fragment{Data: make([]byte, 200), Count: 1})
	if p.QueuedBytes() != 300+2*HeaderBytes {
		t.Fatalf("queued %d", p.QueuedBytes())
	}
	s.Run()
	if p.QueuedBytes() != 0 {
		t.Fatalf("queued after drain %d", p.QueuedBytes())
	}
}

func TestFeedbackCollector(t *testing.T) {
	fc := NewFeedbackCollector(100 * time.Millisecond)
	// Packets 0,1,2 delivered; 3,4 dropped; 5 delivered.
	for _, seq := range []int{0, 1, 2, 5} {
		fc.OnPacket(seq, 1200, time.Duration(seq)*10*time.Millisecond, time.Duration(seq)*10*time.Millisecond+20*time.Millisecond)
	}
	acks, lost := fc.Report()
	if len(acks) != 4 {
		t.Fatalf("acks %d", len(acks))
	}
	if lost != 2 {
		t.Fatalf("lost %d want 2", lost)
	}
	// Next window: nothing received -> no loss inferred.
	acks, lost = fc.Report()
	if len(acks) != 0 || lost != 0 {
		t.Fatalf("empty window: %d acks %d lost", len(acks), lost)
	}
	// Resume with seq 6-7.
	fc.OnPacket(6, 1200, 0, time.Millisecond)
	fc.OnPacket(7, 1200, 0, time.Millisecond)
	acks, lost = fc.Report()
	if len(acks) != 2 || lost != 0 {
		t.Fatalf("resumed window: %d acks %d lost", len(acks), lost)
	}
}
