// Package transport provides the RTP-like media transport the ingest path
// runs over: MTU packetisation with fragment headers, a send-rate pacer, a
// reassembler with FIFO loss detection, and receiver feedback reports that
// feed the GCC congestion controller (§2: WebRTC's transport is RTP with
// GCC on top; §4: LiveNAS is agnostic to the transport but consumes its
// bandwidth estimate).
package transport

import (
	"time"

	"livenas/internal/gcc"
	"livenas/internal/sim"
	"livenas/internal/telemetry"
)

// MTU is the default payload size per packet on the emulated path.
// Reduced-resolution experiments scale it down with the world so that
// per-packet serialisation delay keeps its real-scale proportions.
const MTU = 1200

// HeaderBytes is the per-packet overhead (RTP-like header + UDP/IP).
const HeaderBytes = 32

// Kind distinguishes the two ingest substreams LiveNAS multiplexes on one
// uplink: encoded video and high-quality training patches (§4, Figure 3).
type Kind uint8

const (
	KindVideo Kind = iota
	KindPatch
)

func (k Kind) String() string {
	if k == KindPatch {
		return "patch"
	}
	return "video"
}

// Fragment is one MTU-bounded piece of a video frame or patch.
type Fragment struct {
	Kind  Kind
	ID    int // frame number or patch id (monotonic per kind)
	Index int // fragment index within the unit
	Count int // total fragments of the unit
	Data  []byte
	Meta  any // carried on fragment 0: codec/patch metadata
}

// WireSize returns the bytes this fragment occupies on the wire.
func (f Fragment) WireSize() int { return len(f.Data) + HeaderBytes }

// Packetize splits payload into mtu-sized fragments (mtu <= 0 selects the
// default). meta rides on the first fragment.
func Packetize(kind Kind, id int, payload []byte, meta any, mtu int) []Fragment {
	if mtu <= 0 {
		mtu = MTU
	}
	n := (len(payload) + mtu - 1) / mtu
	if n == 0 {
		n = 1
	}
	out := make([]Fragment, 0, n)
	for i := 0; i < n; i++ {
		lo := i * mtu
		hi := lo + mtu
		if hi > len(payload) {
			hi = len(payload)
		}
		f := Fragment{Kind: kind, ID: id, Index: i, Count: n, Data: payload[lo:hi]}
		if i == 0 {
			f.Meta = meta
		}
		out = append(out, f)
	}
	return out
}

// Assembled is a fully reassembled unit.
type Assembled struct {
	Kind     Kind
	ID       int
	Data     []byte
	Meta     any
	LastRecv time.Duration
}

// Reassembler reconstructs units from fragments arriving in FIFO order and
// reports units that can no longer complete (a newer unit of the same kind
// finished or started after a gap — with in-order delivery that means the
// missing fragments were dropped).
type Reassembler struct {
	// OnComplete is called once per fully received unit.
	OnComplete func(Assembled)
	// OnLoss is called once per unit abandoned due to packet loss.
	OnLoss func(kind Kind, id int)

	pending map[Kind]map[int]*partialUnit

	// Telemetry handles (nil until SetTelemetry; nil-safe).
	mVideoDone *telemetry.Counter
	mPatchDone *telemetry.Counter
	mVideoLost *telemetry.Counter
	mPatchLost *telemetry.Counter
}

type partialUnit struct {
	parts [][]byte
	meta  any
	have  int
}

// NewReassembler returns an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{pending: map[Kind]map[int]*partialUnit{
		KindVideo: {},
		KindPatch: {},
	}}
}

// SetTelemetry registers the reassembler's per-kind unit counters on reg
// (transport_units_{video,patch}_{completed,lost}).
func (r *Reassembler) SetTelemetry(reg *telemetry.Registry) {
	r.mVideoDone = reg.Counter("transport_units_video_completed")
	r.mPatchDone = reg.Counter("transport_units_patch_completed")
	r.mVideoLost = reg.Counter("transport_units_video_lost")
	r.mPatchLost = reg.Counter("transport_units_patch_lost")
}

func (r *Reassembler) countDone(k Kind) {
	if k == KindPatch {
		r.mPatchDone.Inc()
	} else {
		r.mVideoDone.Inc()
	}
}

func (r *Reassembler) countLost(k Kind) {
	if k == KindPatch {
		r.mPatchLost.Inc()
	} else {
		r.mVideoLost.Inc()
	}
}

// Add ingests one fragment received at recvAt.
func (r *Reassembler) Add(f Fragment, recvAt time.Duration) {
	units := r.pending[f.Kind]
	u, ok := units[f.ID]
	if !ok {
		u = &partialUnit{parts: make([][]byte, f.Count)}
		units[f.ID] = u
	}
	if f.Index < 0 || f.Index >= len(u.parts) || u.parts[f.Index] != nil {
		return // duplicate or malformed
	}
	u.parts[f.Index] = f.Data
	u.have++
	if f.Meta != nil {
		u.meta = f.Meta
	}
	if u.have < len(u.parts) {
		return
	}
	// Complete: any older incomplete unit of this kind is lost (FIFO path).
	for id, p := range units {
		if id < f.ID && p.have < len(p.parts) {
			delete(units, id)
			r.countLost(f.Kind)
			if r.OnLoss != nil {
				r.OnLoss(f.Kind, id)
			}
		}
	}
	delete(units, f.ID)
	var data []byte
	for _, p := range u.parts {
		data = append(data, p...)
	}
	r.countDone(f.Kind)
	if r.OnComplete != nil {
		r.OnComplete(Assembled{Kind: f.Kind, ID: f.ID, Data: data, Meta: u.meta, LastRecv: recvAt})
	}
}

// PendingUnits reports how many units are partially assembled.
func (r *Reassembler) PendingUnits() int {
	n := 0
	for _, m := range r.pending {
		n += len(m)
	}
	return n
}

// Pacer releases enqueued fragments onto the wire at a configured rate,
// smoothing the encoder's bursty frame output (Figure 3's "Pacer").
type Pacer struct {
	sim    *sim.Simulator
	send   func(Fragment)
	rate   float64 // kbps
	queue  []Fragment
	queued int // bytes
	armed  bool
	nextAt time.Duration

	// Telemetry handles (nil until SetTelemetry; nil-safe).
	mFragments  *telemetry.Counter
	mBytes      *telemetry.Counter
	mQueueBytes *telemetry.Gauge
}

// NewPacer creates a pacer that calls send for each released fragment.
func NewPacer(s *sim.Simulator, initialKbps float64, send func(Fragment)) *Pacer {
	return &Pacer{sim: s, send: send, rate: initialKbps}
}

// SetTelemetry registers the pacer's metrics on reg: fragments and wire
// bytes released (transport_fragments_sent, transport_bytes_sent) and the
// current pacing backlog (transport_pacer_queue_bytes).
func (p *Pacer) SetTelemetry(reg *telemetry.Registry) {
	p.mFragments = reg.Counter("transport_fragments_sent")
	p.mBytes = reg.Counter("transport_bytes_sent")
	p.mQueueBytes = reg.Gauge("transport_pacer_queue_bytes")
}

// SetRateKbps updates the pacing rate (driven by GCC's target).
func (p *Pacer) SetRateKbps(r float64) {
	if r < 1 {
		r = 1
	}
	p.rate = r
}

// QueuedBytes reports bytes waiting in the pacer.
func (p *Pacer) QueuedBytes() int { return p.queued }

// Enqueue adds a fragment to the pacing queue.
func (p *Pacer) Enqueue(f Fragment) {
	p.queue = append(p.queue, f)
	p.queued += f.WireSize()
	p.arm()
}

func (p *Pacer) arm() {
	if p.armed || len(p.queue) == 0 {
		return
	}
	p.armed = true
	at := p.nextAt
	if at < p.sim.Now() {
		at = p.sim.Now()
	}
	p.sim.At(at, p.fire)
}

func (p *Pacer) fire() {
	p.armed = false
	if len(p.queue) == 0 {
		return
	}
	f := p.queue[0]
	p.queue = p.queue[1:]
	p.queued -= f.WireSize()
	// Next departure spaced by this packet's serialisation time at the
	// pacing rate.
	gap := time.Duration(float64(f.WireSize()*8) / (p.rate * 1000) * float64(time.Second))
	p.nextAt = p.sim.Now() + gap
	p.mFragments.Inc()
	p.mBytes.Add(int64(f.WireSize()))
	p.mQueueBytes.Set(float64(p.queued))
	p.send(f)
	p.arm()
}

// FeedbackCollector runs at the receiver: it records per-packet delivery
// and emits periodic reports (acks plus a loss count inferred from wire
// sequence gaps) the sender feeds into gcc.Controller.
type FeedbackCollector struct {
	Interval time.Duration

	acks       []gcc.Ack
	maxSeq     int
	prevMaxSeq int
	started    bool
}

// NewFeedbackCollector creates a collector with the given report interval
// (WebRTC uses ~100 ms transport-wide feedback).
func NewFeedbackCollector(interval time.Duration) *FeedbackCollector {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	return &FeedbackCollector{Interval: interval, maxSeq: -1, prevMaxSeq: -1}
}

// OnPacket records a delivered wire packet.
func (fc *FeedbackCollector) OnPacket(seq, size int, sentAt, recvAt time.Duration) {
	fc.acks = append(fc.acks, gcc.Ack{Seq: seq, Size: size, SentAt: sentAt, RecvAt: recvAt})
	if seq > fc.maxSeq {
		fc.maxSeq = seq
	}
	fc.started = true
}

// Report drains the window and returns (acks, lostCount).
func (fc *FeedbackCollector) Report() ([]gcc.Ack, int) {
	acks := fc.acks
	fc.acks = nil
	lost := 0
	if fc.started {
		expected := fc.maxSeq - fc.prevMaxSeq
		if got := len(acks); expected > got {
			lost = expected - got
		}
		fc.prevMaxSeq = fc.maxSeq
	}
	return acks, lost
}
