package transport

import (
	"fmt"
	"time"

	"livenas/internal/sim"
	"livenas/internal/wire"
)

// SimLinkConfig shapes one direction of a simulated connection, in netem
// terms: a serialisation rate, a propagation delay, and a bounded
// outbound queue. A full queue drops the *oldest* waiting message — the
// right policy for live distribution, where a stale segment is worthless
// but the newest one is not (the edge relay's per-viewer backpressure is
// exactly this queue).
type SimLinkConfig struct {
	Kbps       float64       // serialisation rate; <= 0 means infinitely fast
	Delay      time.Duration // one-way propagation delay
	QueueBytes int           // outbound queue bound; <= 0 means unbounded
}

// SimConn is the virtual-clock Conn: one endpoint of a bidirectional
// netem-shaped link between two peers on the same simulator. Sends
// serialise at the configured rate, propagate after the configured delay,
// and deliver to the peer's OnMessage handler (or its Recv inbox) in FIFO
// order. Like the simulator itself it is single-threaded: all use must
// happen on the simulation goroutine.
//
// Recv drives the simulator forward until a message arrives, the timeout
// elapses, or nothing pending can ever deliver one — so protocol code
// written blocking-style against Conn runs unmodified on the virtual
// clock. It must only be called from outside event callbacks (it steps
// the event loop; re-entry would corrupt it).
type SimConn struct {
	s    *sim.Simulator
	peer *SimConn
	cfg  SimLinkConfig

	queue   []*wire.Message // waiting for serialisation (head next)
	queued  int             // bytes across queue
	serving bool            // one message is on the wire
	dropped int             // drop-oldest evictions

	inbox        []*wire.Message
	handler      func(*wire.Message)
	closed       bool // this side closed
	remoteClosed bool // peer's close propagated here
	timeout      time.Duration
}

// NewSimConnPair creates a connected pair of simulated endpoints on s.
// ab shapes the a→b direction, ba the b→a direction.
func NewSimConnPair(s *sim.Simulator, ab, ba SimLinkConfig) (a, b *SimConn) {
	a = &SimConn{s: s, cfg: ab}
	b = &SimConn{s: s, cfg: ba}
	a.peer, b.peer = b, a
	return a, b
}

// Send queues m for delivery to the peer. It never blocks: the message
// serialises onto the virtual wire at the link rate, and if the outbound
// queue bound is exceeded the oldest waiting message is dropped (counted
// in Dropped).
func (c *SimConn) Send(m *wire.Message) error {
	if c.closed || c.remoteClosed {
		return ErrClosed
	}
	c.queue = append(c.queue, m)
	c.queued += m.WireSize()
	for c.cfg.QueueBytes > 0 && c.queued > c.cfg.QueueBytes && len(c.queue) > 1 {
		old := c.queue[0]
		c.queue = c.queue[1:]
		c.queued -= old.WireSize()
		c.dropped++
	}
	c.arm()
	return nil
}

// arm starts serialising the queue head if the wire is idle.
func (c *SimConn) arm() {
	if c.serving || len(c.queue) == 0 || c.closed {
		return
	}
	m := c.queue[0]
	c.queue = c.queue[1:]
	c.queued -= m.WireSize()
	c.serving = true
	tx := time.Duration(0)
	if c.cfg.Kbps > 0 {
		tx = time.Duration(float64(m.WireSize()*8) / (c.cfg.Kbps * 1000) * float64(time.Second))
	}
	c.s.After(tx, func() {
		c.serving = false
		peer := c.peer
		c.s.After(c.cfg.Delay, func() { peer.deliver(m) })
		c.arm()
	})
}

// deliver lands one message at this endpoint.
func (c *SimConn) deliver(m *wire.Message) {
	if c.closed {
		return
	}
	if c.handler != nil {
		c.handler(m)
		return
	}
	c.inbox = append(c.inbox, m)
}

// OnMessage switches this endpoint to handler-driven delivery: fn runs at
// each message's virtual arrival time, on the simulation goroutine. Any
// messages already waiting in the inbox are handed to fn immediately.
func (c *SimConn) OnMessage(fn func(*wire.Message)) {
	c.handler = fn
	for len(c.inbox) > 0 && c.handler != nil {
		m := c.inbox[0]
		c.inbox = c.inbox[1:]
		fn(m)
	}
}

// Recv returns the next delivered message, stepping the simulator as far
// as needed (and no further). See the type comment for the contract.
func (c *SimConn) Recv() (*wire.Message, error) {
	var limit time.Duration
	if c.timeout > 0 {
		limit = c.s.Now() + c.timeout
	}
	for {
		if len(c.inbox) > 0 {
			m := c.inbox[0]
			c.inbox = c.inbox[1:]
			return m, nil
		}
		if c.closed || c.remoteClosed {
			return nil, ErrClosed
		}
		next, ok := c.s.Next()
		if !ok {
			return nil, fmt.Errorf("%w: simulator drained with no message in flight", ErrClosed)
		}
		if c.timeout > 0 && next > limit {
			c.s.RunUntil(limit) // nothing eligible: just advance the clock
			return nil, ErrRecvTimeout
		}
		c.s.RunUntil(next) // run every event at the next timestamp
	}
}

// Close tears this endpoint down. In-flight deliveries to the peer are
// abandoned; the peer learns of the close after one propagation delay
// (like a FIN) and its pending Recv fails once its inbox drains.
func (c *SimConn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.queue, c.queued = nil, 0
	peer := c.peer
	c.s.After(c.cfg.Delay, func() { peer.remoteClosed = true })
	return nil
}

// SetRecvTimeout bounds each subsequent Recv in virtual time.
func (c *SimConn) SetRecvTimeout(d time.Duration) { c.timeout = d }

// QueuedBytes reports bytes waiting for serialisation.
func (c *SimConn) QueuedBytes() int { return c.queued }

// Dropped reports how many messages the drop-oldest queue bound evicted.
func (c *SimConn) Dropped() int { return c.dropped }

// Closed reports whether either side has closed the connection (the
// remote side's close counts only once its FIN has propagated here).
func (c *SimConn) Closed() bool { return c.closed || c.remoteClosed }

var (
	_ Conn = (*SimConn)(nil)
	_ Conn = (*NetConn)(nil)
)
