package transport

import (
	"sync"
	"time"

	"livenas/internal/wire"
)

// QueuedConn decouples Send from the socket: messages enter a bounded
// in-memory queue and a writer goroutine drains it, so an actor holding
// its lock never blocks on a slow peer. Over the bound the *oldest* queued
// message is dropped — the real-process twin of SimConn's drop-oldest
// outbound queue, and the per-viewer backpressure of cmd/livenas-edge: a
// viewer that cannot keep up loses stale segments, not the connection.
//
// Recv, Close and SetRecvTimeout pass through to the wrapped Conn. The
// writer goroutine exits on Close or on the first send error (after which
// Send returns that error).
type QueuedConn struct {
	inner Conn

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*wire.Message
	queued  int // bytes across queue
	bound   int // <= 0: unbounded
	dropped int64
	closed  bool
	err     error
	done    chan struct{} // closed when the writer goroutine exits
}

// NewQueuedConn wraps c with an asynchronous send queue bounded to
// queueBytes (<= 0 means unbounded: for control connections whose traffic
// is small and must not be dropped).
func NewQueuedConn(c Conn, queueBytes int) *QueuedConn {
	q := &QueuedConn{inner: c, bound: queueBytes, done: make(chan struct{})}
	q.cond = sync.NewCond(&q.mu)
	go q.writer() //livenas:allow goroutine-leak joined by QueuedConn.Close via q.done, not by NewQueuedConn
	return q
}

func (q *QueuedConn) writer() {
	defer close(q.done)
	for {
		m, ok := q.next()
		if !ok {
			return
		}
		if err := q.inner.Send(m); err != nil {
			q.fail(err)
			return
		}
	}
}

// next blocks until a message is queued or the connection is done.
func (q *QueuedConn) next() (*wire.Message, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.queue) == 0 && !q.closed && q.err == nil {
		q.cond.Wait()
	}
	if q.closed || q.err != nil {
		q.queue, q.queued = nil, 0
		return nil, false
	}
	m := q.queue[0]
	q.queue = q.queue[1:]
	q.queued -= m.WireSize()
	return m, true
}

// fail records the first send error; later Sends return it.
func (q *QueuedConn) fail(err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.err = err
	q.queue, q.queued = nil, 0
}

// Send enqueues m; it never blocks on the network.
func (q *QueuedConn) Send(m *wire.Message) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if q.err != nil {
		return q.err
	}
	q.queue = append(q.queue, m)
	q.queued += m.WireSize()
	for q.bound > 0 && q.queued > q.bound && len(q.queue) > 1 {
		old := q.queue[0]
		q.queue = q.queue[1:]
		q.queued -= old.WireSize()
		q.dropped++
	}
	q.cond.Signal()
	return nil
}

// Recv passes through to the wrapped connection.
func (q *QueuedConn) Recv() (*wire.Message, error) { return q.inner.Recv() }

// Close stops the writer (queued messages are discarded), closes the
// wrapped connection, and joins the writer goroutine. Closing the inner
// connection first unblocks a writer stuck mid-Send on a slow socket.
func (q *QueuedConn) Close() error {
	q.shutdown()
	err := q.inner.Close()
	<-q.done
	return err
}

func (q *QueuedConn) shutdown() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// SetRecvTimeout passes through to the wrapped connection.
func (q *QueuedConn) SetRecvTimeout(d time.Duration) { q.inner.SetRecvTimeout(d) }

// Dropped reports how many messages the drop-oldest bound evicted.
func (q *QueuedConn) Dropped() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dropped
}

var _ Conn = (*QueuedConn)(nil)
