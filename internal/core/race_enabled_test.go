//go:build race

package core

// raceDetectorEnabled mirrors the -race build tag so the test suite can
// swap its long session-quality runs for a concurrency smoke session when
// the detector (which slows the NN hot loops ~10x) is active.
const raceDetectorEnabled = true
