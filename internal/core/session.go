package core

import (
	"context"
	"fmt"
	"time"

	"livenas/internal/metrics"
	"livenas/internal/netem"
	"livenas/internal/sim"
	"livenas/internal/telemetry"
	"livenas/internal/trace"
	"livenas/internal/transport"
	"livenas/internal/vidgen"
)

// SeriesPoint is one point of a time series in an experiment's results.
type SeriesPoint struct {
	T time.Duration
	V float64
}

// QualitySample is one delivered-quality measurement against ground truth.
type QualitySample struct {
	T    time.Duration
	PSNR float64
	SSIM float64
}

// Results aggregates everything a session run produces; the experiment
// harness turns these into the paper's tables and figures.
type Results struct {
	Cfg Config

	Samples []QualitySample
	AvgPSNR float64
	AvgSSIM float64
	Grad    []GradPoint

	Bandwidth []SeriesPoint // GCC target, kbps
	Video     []SeriesPoint // video share, kbps
	Patch     []SeriesPoint // patch share, kbps
	LinkRate  []SeriesPoint // true available bandwidth, kbps

	// Timeline is the materialized trainer ON/OFF series (Figure 16). It is
	// populated lazily by TrainerTimeline from the live event trace and
	// persisted by the sweep session cache, so a cache round-trip (which
	// cannot carry the live registry) still answers TrainerTimeline.
	Timeline []StateChange

	GPUTrainBusy    time.Duration
	FramesDecoded   int
	FramesLost      int
	PatchesSent     int
	PatchesReceived int
	AvgE2ELatency   time.Duration
	AvgInferLatency time.Duration
	LinkStats       netem.Stats

	AvgBandwidthKbps float64
	AvgVideoKbps     float64
	AvgPatchKbps     float64
	BytesVideo       int
	BytesPatch       int

	// reg is the run's telemetry registry (Cfg.Telemetry, or the fresh one
	// Run installed). Accessed through Telemetry / TrainerTimeline /
	// TelemetrySummary rather than exported: the registry is live state, not
	// a result value.
	reg *telemetry.Registry
}

// Telemetry returns the run's telemetry registry: every counter, gauge and
// histogram the session touched plus the retained event trace.
func (r *Results) Telemetry() *telemetry.Registry { return r.reg }

// TrainerTimeline reconstructs the content-adaptive trainer's ON/OFF
// timeline (Figure 16) from the run's trainer_state events. The first entry
// is the state at t=0; each subsequent entry is a transition. The series is
// materialized into Timeline on first call; cached results restored without
// a live registry return the persisted Timeline as-is.
func (r *Results) TrainerTimeline() []StateChange {
	if r.Timeline == nil && r.reg != nil {
		for _, ev := range r.reg.EventsByType("trainer_state") {
			r.Timeline = append(r.Timeline, StateChange{T: ev.T, State: ev.StrField("state")})
		}
	}
	return r.Timeline
}

// TelemetrySummary condenses the run into the machine-readable summary the
// experiment harness writes for CI (scheduler split, trainer duty cycle,
// inference latency quantiles, plus every counter and gauge).
func (r *Results) TelemetrySummary() telemetry.RunSummary {
	s := telemetry.RunSummary{
		Scheme:           r.Cfg.Scheme.String(),
		Content:          r.Cfg.Cat.String(),
		DurationS:        r.Cfg.Duration.Seconds(),
		Channel:          r.Cfg.ChannelKey,
		AvgTargetKbps:    r.AvgBandwidthKbps,
		AvgVideoKbps:     r.AvgVideoKbps,
		AvgPatchKbps:     r.AvgPatchKbps,
		TrainerDutyCycle: r.TrainingShare(),
	}
	if r.AvgBandwidthKbps > 0 {
		s.PatchShare = r.AvgPatchKbps / r.AvgBandwidthKbps
	}
	if n := len(r.TrainerTimeline()); n > 1 {
		s.TrainerTransitions = n - 1 // first entry is the t=0 state
	}
	if r.reg != nil {
		snap := r.reg.Snapshot()
		if h, ok := snap.Histograms["core_infer_latency_ms"]; ok {
			s.InferFrames = h.Count
			s.InferP50MS = h.P50
			s.InferP99MS = h.P99
		}
		s.Counters = snap.Counters
		s.Gauges = snap.Gauges
	}
	return s
}

// Run executes one full ingest session on the discrete-event simulator and
// returns its results. It is deterministic for a fixed Config. Run is the
// legacy entry point: it panics on an invalid config and cannot be
// cancelled; new code should prefer RunContext.
func Run(cfg Config) *Results {
	res, err := RunContext(context.Background(), cfg)
	if err != nil {
		panic(err)
	}
	return res
}

// cancelCheckEvery is how many simulator events RunContext executes between
// context checks: frequent enough that cancellation lands within
// milliseconds of wall time, rare enough that the check cost vanishes
// against event execution.
const cancelCheckEvery = 512

// RunContext executes one full ingest session on the discrete-event
// simulator and returns its results. It is deterministic for a fixed
// Config: the context bounds the run but never influences results — a run
// that completes is bitwise identical whatever context carried it.
//
// The config is validated up front (Config.Validate) and geometry errors
// are returned rather than panicking. Cancellation is observed at
// simulator-event boundaries: when ctx is cancelled mid-run, RunContext
// releases session resources (dedicated kernel-pool workers are joined) and
// returns ctx's error with nil Results.
func RunContext(ctx context.Context, cfg Config) (*Results, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	reg := cfg.Telemetry
	reg.Emit(0, "session_start",
		telemetry.Str("channel", cfg.ChannelKey),
		telemetry.Str("scheme", cfg.Scheme.String()),
		telemetry.Num("train_gpus", float64(cfg.TrainGPUs)),
		telemetry.Num("infer_gpus", float64(cfg.InferGPUs)),
	)

	s := sim.New()
	src := vidgen.NewSource(cfg.Cat, cfg.Native.W, cfg.Native.H, cfg.Seed, cfg.Duration.Seconds()+60)

	var cl *client
	notify := func(m serverMsg) {
		s.After(cfg.PropDelay, func() {
			if cl != nil {
				cl.onServerMsg(m)
			}
		})
	}
	sv := newServer(s, cfg, notify)

	wireSeq := 0
	link := netem.NewLink(s, cfg.Trace, cfg.PropDelay, cfg.QueueCap, sv.onWirePacket)
	if cfg.LossRate > 0 {
		link.SetLossRate(cfg.LossRate, cfg.Seed^0x10c5)
	}
	pacer := transport.NewPacer(s, cfg.GCCInitKbps, func(f transport.Fragment) {
		link.Send(netem.Packet{Seq: wireSeq, Size: f.WireSize(), Payload: f})
		wireSeq++
	})
	pacer.SetTelemetry(reg)
	cl = newClient(s, cfg, src, pacer)

	res := &Results{Cfg: cfg, reg: reg}

	// Periodic processes.
	frameGap := time.Duration(float64(time.Second) / cfg.FPS)
	var capture func()
	capture = func() {
		cl.onCapture()
		s.After(frameGap, capture)
	}
	s.At(0, capture)

	var sched func()
	sched = func() {
		cl.onSchedule()
		s.After(cfg.UpdateEvery, sched)
	}
	s.After(cfg.UpdateEvery, sched)

	var fb func()
	fb = func() {
		sv.onFeedbackTick()
		s.After(100*time.Millisecond, fb)
	}
	s.After(100*time.Millisecond, fb)

	var epoch func()
	epoch = func() {
		sv.onEpochTick()
		s.After(cfg.EpochLen, epoch)
	}
	s.After(cfg.EpochLen, epoch)

	// The metric loop observes the viewer-facing inference latency into
	// core_infer_latency_ms; this histogram (not sr_infer_latency_ms, which
	// only exists when an SR processor does) backs the run summary's p50/p99
	// so the WebRTC baseline reports latency too.
	hInfer := reg.Histogram("core_infer_latency_ms", telemetry.ExpBuckets(0.25, 1.5, 24))
	var inferLatSum time.Duration
	var inferLatN int
	var metric func()
	metric = func() {
		now := s.Now()
		out, capAt, lat, ok := sv.output()
		if ok {
			gt := src.FrameAt(capAt.Seconds())
			qs := QualitySample{T: now, PSNR: metrics.PSNR(gt, out)}
			if cfg.MeasureSSIM {
				qs.SSIM = metrics.SSIM(gt, out)
			}
			res.Samples = append(res.Samples, qs)
			inferLatSum += lat
			inferLatN++
			latMS := float64(lat) / float64(time.Millisecond)
			hInfer.Observe(latMS)
			reg.Emit(now, "infer_frame",
				telemetry.Num("latency_ms", latMS),
				telemetry.Num("psnr_db", qs.PSNR),
			)
		}
		res.Bandwidth = append(res.Bandwidth, SeriesPoint{now, cl.ctrl.TargetKbps()})
		res.Video = append(res.Video, SeriesPoint{now, cl.videoKbps()})
		res.Patch = append(res.Patch, SeriesPoint{now, cl.currentPatchKbps()})
		res.LinkRate = append(res.LinkRate, SeriesPoint{now, link.RateAt(now)})
		s.After(cfg.MetricEvery, metric)
	}
	s.After(cfg.MetricEvery, metric)

	for s.StepUntil(cfg.Duration, cancelCheckEvery) {
		if err := ctx.Err(); err != nil {
			// Abandon the run at an event boundary: no simulator callback is
			// in flight, so the dedicated kernel pool (if any) is idle and
			// safe to join.
			sv.close()
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		sv.close()
		return nil, err
	}

	// Aggregate.
	var psnrs, ssims []float64
	for _, q := range res.Samples {
		psnrs = append(psnrs, q.PSNR)
		ssims = append(ssims, q.SSIM)
	}
	res.AvgPSNR = metrics.Mean(psnrs)
	res.AvgSSIM = metrics.Mean(ssims)
	res.Grad = cl.gradSeries
	res.GPUTrainBusy = sv.gpuTrainBusy
	res.FramesDecoded = sv.framesDecoded
	res.FramesLost = sv.framesLost
	res.PatchesSent = cl.patchesSent
	res.PatchesReceived = sv.patchesReceived
	res.LinkStats = link.Stats()
	res.BytesVideo = cl.videoBytesSent
	res.BytesPatch = cl.patchBytesSent
	if sv.e2eLatencyN > 0 {
		res.AvgE2ELatency = sv.e2eLatencySum / time.Duration(sv.e2eLatencyN)
	}
	if inferLatN > 0 {
		res.AvgInferLatency = inferLatSum / time.Duration(inferLatN)
	}
	res.AvgBandwidthKbps = meanSeries(res.Bandwidth)
	res.AvgVideoKbps = meanSeries(res.Video)
	res.AvgPatchKbps = meanSeries(res.Patch)
	sv.close()
	return res, nil
}

func meanSeries(ps []SeriesPoint) float64 {
	if len(ps) == 0 {
		return 0
	}
	var s float64
	for _, p := range ps {
		s += p.V
	}
	return s / float64(len(ps))
}

// GainOver returns the PSNR gain of r over a baseline run (typically
// SchemeWebRTC on the same trace/content), the paper's headline metric.
func (r *Results) GainOver(base *Results) float64 {
	return r.AvgPSNR - base.AvgPSNR
}

// TrainingShare returns simulated GPU training time as a fraction of the
// stream duration (Figures 9d, 10d, 15).
func (r *Results) TrainingShare() float64 {
	if r.Cfg.Duration <= 0 {
		return 0
	}
	return r.GPUTrainBusy.Seconds() / r.Cfg.Duration.Seconds()
}

// ReducedResolution scales a resolution class down by an integer divisor.
// Tests and the experiment harness's fast mode run the full pipeline at
// reduced pixel counts (e.g. a "1080p-class" stream at 384x216) so that
// hundreds of simulated sessions stay CPU-cheap; every algorithm under test
// is resolution-agnostic.
func ReducedResolution(r trace.Resolution, div int) trace.Resolution {
	return trace.Resolution{
		Name: fmt.Sprintf("%s/%d", r.Name, div),
		W:    r.W / div,
		H:    r.H / div,
	}
}

// defaultTestConfig is the reduced-scale configuration shared by core tests:
// a "1080p-class" pipeline at 1/5 linear resolution, x2 super-resolution.
func defaultTestConfig(cat vidgen.Category) Config {
	return Config{
		Cat:         cat,
		Seed:        7,
		Native:      trace.Resolution{Name: "384x216", W: 384, H: 216},
		Ingest:      trace.Resolution{Name: "192x108", W: 192, H: 108},
		FPS:         10,
		Duration:    40 * time.Second,
		Scheme:      SchemeLiveNAS,
		TrainPolicy: TrainAdaptive,
		PatchSize:   24, // 16x9 grid over 384x216, as the paper's 120 over 1080p
		MetricEvery: 2 * time.Second,
		Channels:    6,
		// Bitrate floors and scheduler steps scaled with frame area
		// (1/25 of 1080p-class).
		MinVideoKbps:  40,
		GCCInitKbps:   160,
		MTU:           240,
		StepKbps:      20,
		InitPatchKbps: 20,
		MinPatchKbps:  5,
	}
}
