package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"livenas/internal/telemetry"
	"livenas/internal/trace"
	"livenas/internal/vidgen"
)

// TestTelemetryJSONLEndToEnd drives a full session with a streaming JSONL
// sink attached and checks the trace contract end to end: every line is a
// well-formed event with a timestamp and type, the run reaches at least one
// trainer suspend (so the Algorithm 1 timeline is really in the trace, not
// just the initial state), and the end-of-run summary validates. The config
// mirrors the adaptive arm of TestContinuousTrainsMoreThanAdaptive — a
// low-scene-change category long enough for gain saturation.
func TestTelemetryJSONLEndToEnd(t *testing.T) {
	skipLongUnderRace(t)
	cfg := defaultTestConfig(vidgen.Podcast)
	cfg.Trace = trace.FCCUplink(11, 3*time.Minute, 250)
	cfg.TrainPolicy = TrainAdaptive
	cfg.Duration = 100 * time.Second

	reg := telemetry.New()
	var buf bytes.Buffer
	reg.SetSink(&buf)
	cfg.Telemetry = reg

	r := Run(cfg)
	if err := reg.SinkErr(); err != nil {
		t.Fatalf("sink error: %v", err)
	}

	types := map[string]int{}
	var suspends, resumes int
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("sink captured no events")
	}
	for i, line := range lines {
		var ev struct {
			TMS   *float64 `json:"t_ms"`
			Type  string   `json:"type"`
			State string   `json:"state"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		if ev.TMS == nil || *ev.TMS < 0 {
			t.Fatalf("line %d missing t_ms: %s", i+1, line)
		}
		if ev.Type == "" {
			t.Fatalf("line %d missing type: %s", i+1, line)
		}
		types[ev.Type]++
		if ev.Type == "trainer_state" {
			switch ev.State {
			case "suspended":
				suspends++
			case "training":
				if i > 0 {
					resumes++
				}
			}
		}
	}
	for _, want := range []string{"trainer_state", "train_epoch", "scheduler_split", "patch_admit", "infer_frame"} {
		if types[want] == 0 {
			t.Errorf("trace has no %s events (got %v)", want, types)
		}
	}
	if suspends == 0 {
		t.Fatalf("trace has no trainer suspend event; trainer_state count %d", types["trainer_state"])
	}

	// The reconstructed timeline must agree with the streamed trace.
	tl := r.TrainerTimeline()
	if len(tl) != types["trainer_state"] {
		t.Fatalf("TrainerTimeline has %d entries, trace has %d trainer_state events", len(tl), types["trainer_state"])
	}
	if tl[0].State != "training" {
		t.Fatalf("timeline starts %q, want training", tl[0].State)
	}

	sum := r.TelemetrySummary()
	if err := sum.Validate(); err != nil {
		t.Fatalf("run summary invalid: %v", err)
	}
	if sum.TrainerTransitions != len(tl)-1 {
		t.Fatalf("summary transitions %d, timeline %d", sum.TrainerTransitions, len(tl)-1)
	}
	if sum.TrainerDutyCycle >= 1 {
		t.Fatalf("duty cycle %.2f should be < 1 after a suspend", sum.TrainerDutyCycle)
	}
	t.Logf("events=%d suspends=%d resumes=%d duty=%.2f", len(lines), suspends, resumes, sum.TrainerDutyCycle)
}
