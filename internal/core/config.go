// Package core implements LiveNAS itself: the ingest client with its
// quality-optimizing scheduler (§5.1) and patch sampler (§5.2), the media
// server with content-adaptive online learning (§6.1, Algorithm 1) and the
// super-resolution processor feedback loop (§6.2), plus the full-session
// orchestration that wires them through the codec, transport, congestion
// control and network-emulation substrates on the discrete-event simulator.
package core

import (
	"fmt"
	"time"

	"livenas/internal/codec"
	"livenas/internal/sr"
	"livenas/internal/telemetry"
	"livenas/internal/trace"
	"livenas/internal/vidgen"
)

// Scheme selects the end-to-end system under test (the comparison set of
// §8.1).
type Scheme int

const (
	// SchemeWebRTC is the vanilla baseline: no DNN, bilinear upscaling.
	SchemeWebRTC Scheme = iota
	// SchemeGeneric applies a DNN pre-trained on a generic benchmark
	// dataset, with no online training and no patch transmission.
	SchemeGeneric
	// SchemePretrained applies a DNN pre-trained on a previous session of
	// the same streamer, with no online training.
	SchemePretrained
	// SchemeLiveNAS is the full system: online training on transmitted
	// patches with the quality-optimizing scheduler.
	SchemeLiveNAS
)

func (s Scheme) String() string {
	switch s {
	case SchemeWebRTC:
		return "WebRTC"
	case SchemeGeneric:
		return "Generic"
	case SchemePretrained:
		return "Pretrained"
	default:
		return "LiveNAS"
	}
}

// TrainPolicy selects the server's training schedule (the resource-
// efficiency comparison of §8.2).
type TrainPolicy int

const (
	// TrainAdaptive is LiveNAS's content-adaptive trainer (Algorithm 1).
	TrainAdaptive TrainPolicy = iota
	// TrainContinuous trains throughout the stream without suspension.
	TrainContinuous
	// TrainEarlyStop trains until the first gain saturation, then stops
	// forever (never resumes on scene change).
	TrainEarlyStop
	// TrainOneTime trains only during the first OneTimeWindow of the stream
	// ("one-time customization").
	TrainOneTime
)

func (p TrainPolicy) String() string {
	switch p {
	case TrainAdaptive:
		return "content-adaptive"
	case TrainContinuous:
		return "continuous"
	case TrainEarlyStop:
		return "early-stop"
	default:
		return "one-time"
	}
}

// Config describes one ingest session experiment.
type Config struct {
	// ChannelKey identifies the stream on a multi-tenant ingest node (the
	// RTMP stream-key analogue; internal/fleet's registry keys on it).
	// Empty for standalone sessions. It tags telemetry (session_start,
	// RunSummary) but does not alter session behaviour.
	ChannelKey string

	// Content.
	Cat      vidgen.Category
	Seed     int64 // session seed (changes the stream's scenes)
	Native   trace.Resolution
	Ingest   trace.Resolution
	FPS      float64
	Duration time.Duration

	// Network.
	Trace     *trace.Trace
	PropDelay time.Duration // one-way propagation delay (default 10ms)
	QueueCap  int           // bottleneck queue, bytes (default 64 KiB)
	LossRate  float64       // independent random packet loss (0 = none)

	// System under test.
	Scheme      Scheme
	TrainPolicy TrainPolicy
	Profile     codec.Profile
	Deblock     bool // enable the codec's in-loop deblocking filter
	TrainGPUs   int
	InferGPUs   int
	// KernelWorkers sizes a dedicated nn kernel worker pool for this
	// session's models (conv row blocks, per-sample gradients). 0 uses the
	// process-wide GOMAXPROCS-sized shared pool. Purely a throughput knob:
	// results are bit-identical for any value.
	KernelWorkers int

	// LiveNAS knobs (defaults follow the paper).
	PatchSize     int            // training patch side, HR pixels (120)
	EpochLen      time.Duration  // training epoch / window (5s)
	UpdateEvery   time.Duration  // scheduler update period (1s)
	StepKbps      float64        // scheduler step size alpha (100 kbps)
	InitPatchKbps float64        // initial patch rate (100 kbps)
	MinPatchKbps  float64        // suspended-state patch rate (25 kbps)
	Gamma         float64        // discount on the DNN gain term (0.9)
	OneTimeWindow time.Duration  // TrainOneTime training window (60s)
	Channels      int            // SR net width (sr.DefaultChannels)
	TrainCfg      sr.TrainConfig // online-training hyperparameters

	// QuantInt8 routes the server's inference through the int8-quantized
	// fast path (internal/sr.QuantModel): per-channel symmetric weights,
	// activation scales from the trainer's calibration statistics, output
	// guarded by an online quality gate that falls back to f32 when the
	// sampled int8-vs-f32 PSNR gap exceeds QuantGateDB.
	QuantInt8 bool
	// QuantGateDB is the quality gate's PSNR-gap threshold in dB (default
	// 0.5 when QuantInt8 is set; <= 0 after defaulting keeps quantization
	// permanently on).
	QuantGateDB float64
	// AnytimeBudget is the per-frame inference deadline of the anytime
	// patch scheduler (0 = off): high-gain patches run f32, the rest int8,
	// degrading to bilinear passthrough when the Device cost model says the
	// deadline would be blown.
	AnytimeBudget time.Duration

	// FunctionalCodec enables the §9 extension the paper flags as future
	// work: instead of estimating dQvideo/dv from the category's normalized
	// curve, the client probes the codec directly — encoding the latest
	// frame at two bitrates (as a Salsify-style functional codec can) and
	// measuring the local rate-quality slope.
	FunctionalCodec bool

	// Pre-training inputs.
	PretrainSeed int64 // session seed of the "previous stream"
	Persistent   bool  // LiveNAS persistent learning: warm-start from PretrainSeed's model

	// Transport knobs. MinVideoKbps is WebRTC's minimum encoding bitrate
	// (200 kbps at full scale; reduced-resolution experiments scale it with
	// frame area). GCCInitKbps seeds the congestion controller.
	MinVideoKbps float64
	GCCInitKbps  float64
	MTU          int // wire payload size (default transport.MTU)

	// Measurement.
	MetricEvery time.Duration // quality sampling period (1s)
	MeasureSSIM bool
	Device      sr.Device

	// Telemetry receives the run's metrics and event trace (scheduler
	// splits, trainer transitions, patch admissions, GCC estimates…). When
	// nil, Run installs a fresh enabled registry; either way Results.
	// Telemetry exposes it. Supply your own to stream events to a sink
	// (Registry.SetSink) or to share one registry across runs.
	Telemetry *telemetry.Registry
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.FPS <= 0 {
		c.FPS = 30
	}
	if c.Duration <= 0 {
		c.Duration = 60 * time.Second
	}
	if c.PropDelay <= 0 {
		c.PropDelay = 10 * time.Millisecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64 << 10
	}
	if c.TrainGPUs <= 0 {
		c.TrainGPUs = 1
	}
	if c.InferGPUs <= 0 {
		c.InferGPUs = 1
	}
	if c.PatchSize <= 0 {
		c.PatchSize = 120
	}
	if c.EpochLen <= 0 {
		c.EpochLen = 5 * time.Second
	}
	if c.UpdateEvery <= 0 {
		c.UpdateEvery = time.Second
	}
	if c.StepKbps <= 0 {
		c.StepKbps = 100
	}
	if c.InitPatchKbps <= 0 {
		c.InitPatchKbps = 100
	}
	if c.MinPatchKbps <= 0 {
		c.MinPatchKbps = 25
	}
	if c.Gamma <= 0 {
		// Equation 1's discount factor weighs the *future* gain stream a
		// training patch keeps delivering (γ >= 1 in the paper); one epoch's
		// measured slope understates it by roughly the saturation horizon.
		c.Gamma = 15
	}
	if c.OneTimeWindow <= 0 {
		c.OneTimeWindow = 60 * time.Second
	}
	if c.Channels <= 0 {
		c.Channels = sr.DefaultChannels
	}
	if c.MetricEvery <= 0 {
		c.MetricEvery = time.Second
	}
	if c.Device == (sr.Device{}) {
		c.Device = sr.RTX2080Ti()
	}
	if c.QuantInt8 && c.QuantGateDB == 0 {
		c.QuantGateDB = 0.5
	}
	if c.MinVideoKbps <= 0 {
		c.MinVideoKbps = 200
	}
	if c.GCCInitKbps <= 0 {
		c.GCCInitKbps = 800
	}
	if c.Native.W == 0 {
		c.Native = trace.R1080
	}
	if c.Ingest.W == 0 {
		c.Ingest = trace.R540
	}
	if c.Telemetry == nil {
		c.Telemetry = telemetry.New()
	}
	return c
}

// Defaulted returns the config with every zero field replaced by its
// default. Telemetry is left exactly as supplied (Run installs a fresh
// registry for a nil one at run time; a registry is live state, not part of
// the session's identity). Run and RunContext behave identically for c and
// c.Defaulted(), which is what makes Defaulted the canonical form the sweep
// session cache hashes.
func (c Config) Defaulted() Config {
	tel := c.Telemetry
	c = c.withDefaults()
	c.Telemetry = tel
	return c
}

// Validate checks the session geometry after defaulting: the native/ingest
// pair must be an integer, isotropic super-resolution ratio and the patch
// size must align with it. RunContext validates up front and returns the
// error; Run panics on it (the legacy contract).
func (c Config) Validate() error {
	_, err := c.withDefaults().scale()
	return err
}

// scale computes the integer super-resolution factor, reporting bad
// geometry as an error.
func (c Config) scale() (int, error) {
	if c.Ingest.W <= 0 || c.Ingest.H <= 0 {
		return 0, fmt.Errorf("core: ingest resolution %dx%d not positive", c.Ingest.W, c.Ingest.H)
	}
	if c.Native.W%c.Ingest.W != 0 || c.Native.H%c.Ingest.H != 0 {
		return 0, fmt.Errorf("core: native %dx%d not an integer multiple of ingest %dx%d",
			c.Native.W, c.Native.H, c.Ingest.W, c.Ingest.H)
	}
	s := c.Native.W / c.Ingest.W
	if c.Native.H/c.Ingest.H != s {
		return 0, fmt.Errorf("core: anisotropic scale factors unsupported (x%d horizontal, x%d vertical)",
			s, c.Native.H/c.Ingest.H)
	}
	if c.PatchSize > 0 && c.PatchSize%s != 0 {
		return 0, fmt.Errorf("core: patch size %d not divisible by scale %d", c.PatchSize, s)
	}
	return s, nil
}

// Scale returns the integer super-resolution factor. It is a
// post-validation accessor: call Validate (or go through RunContext, which
// does) before trusting it on untrusted configs. On invalid geometry it
// panics, since by then the config was asserted valid.
func (c Config) Scale() int {
	s, err := c.scale()
	if err != nil {
		panic(err)
	}
	return s
}
