package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"livenas/internal/codec"
	"livenas/internal/trace"
	"livenas/internal/vidgen"
)

// Full-session runs are the expensive part of this suite; share them.
var (
	runOnce     sync.Once
	webrtcRes   *Results
	livenasRes  *Results
	genericRes  *Results
	sharedTrace *trace.Trace
)

// skipLongUnderRace exempts full-session quality tests from the -race tier:
// their numeric assertions are covered by the plain `go test` tier, and the
// detector's ~10x slowdown on the NN hot loops would push the suite past any
// reasonable timeout. TestSessionConcurrencySmoke keeps the concurrent
// session machinery under the detector instead.
func skipLongUnderRace(t *testing.T) {
	t.Helper()
	if raceDetectorEnabled {
		t.Skip("full-session quality test: skipped under -race (see TestSessionConcurrencySmoke)")
	}
}

// TestSessionConcurrencySmoke runs one short LiveNAS session with
// multi-goroutine training and inference enabled, so `go test -race
// ./internal/core` drives the trainer's shard goroutines and the
// processor's strip goroutines through the real session loop. Assertions
// are sanity-only; quality thresholds belong to the plain tier.
func TestSessionConcurrencySmoke(t *testing.T) {
	cfg := defaultTestConfig(vidgen.JustChatting)
	cfg.Trace = trace.FCCUplink(19, time.Minute, 250)
	cfg.Duration = 15 * time.Second
	cfg.TrainGPUs = 2
	cfg.InferGPUs = 2
	r := Run(cfg)
	if r.FramesDecoded == 0 {
		t.Fatal("smoke session decoded no frames")
	}
	if r.GPUTrainBusy <= 0 {
		t.Fatal("smoke session never trained")
	}
}

func sharedRuns(t *testing.T) (*Results, *Results, *Results) {
	t.Helper()
	runOnce.Do(func() {
		sharedTrace = trace.FCCUplink(3, 3*time.Minute, 250)
		mk := func(s Scheme) *Results {
			cfg := defaultTestConfig(vidgen.JustChatting)
			cfg.Trace = sharedTrace
			cfg.Scheme = s
			cfg.Duration = 60 * time.Second
			return Run(cfg)
		}
		webrtcRes = mk(SchemeWebRTC)
		genericRes = mk(SchemeGeneric)
		livenasRes = mk(SchemeLiveNAS)
	})
	return webrtcRes, genericRes, livenasRes
}

func TestLiveNASBeatsWebRTC(t *testing.T) {
	skipLongUnderRace(t)
	web, _, lnas := sharedRuns(t)
	gain := lnas.GainOver(web)
	if gain < 0.8 {
		t.Fatalf("LiveNAS gain %.2f dB over WebRTC; want >= 0.8 (paper: 0.81-3.04)", gain)
	}
}

func TestLiveNASBeatsGeneric(t *testing.T) {
	skipLongUnderRace(t)
	_, gen, lnas := sharedRuns(t)
	if lnas.AvgPSNR <= gen.AvgPSNR {
		t.Fatalf("LiveNAS %.2f dB should beat generic SR %.2f dB", lnas.AvgPSNR, gen.AvgPSNR)
	}
}

func TestWebRTCSendsNoPatches(t *testing.T) {
	skipLongUnderRace(t)
	web, _, _ := sharedRuns(t)
	if web.PatchesSent != 0 || web.BytesPatch != 0 || web.AvgPatchKbps != 0 {
		t.Fatalf("WebRTC run sent patches: %+v", web.PatchesSent)
	}
	if web.GPUTrainBusy != 0 {
		t.Fatal("WebRTC run used training GPU")
	}
}

func TestLiveNASPatchShareModest(t *testing.T) {
	skipLongUnderRace(t)
	// §5.1 case study: ~8.9% of bandwidth went to patches on average. Ours
	// should be a modest minority share, never the majority.
	_, _, lnas := sharedRuns(t)
	if lnas.PatchesSent == 0 {
		t.Fatal("LiveNAS sent no patches")
	}
	share := lnas.AvgPatchKbps / lnas.AvgBandwidthKbps
	if share <= 0 || share > 0.5 {
		t.Fatalf("patch share %.2f outside (0, 0.5]", share)
	}
}

func TestConservativeBandwidthUse(t *testing.T) {
	skipLongUnderRace(t)
	// §3: WebRTC uses well under the available bandwidth. Utilisation must
	// be meaningfully below 1 and above a sanity floor.
	web, _, _ := sharedRuns(t)
	util := web.AvgBandwidthKbps / meanSeries(web.LinkRate)
	if util < 0.1 || util > 0.95 {
		t.Fatalf("WebRTC utilisation %.2f outside [0.1, 0.95]", util)
	}
}

func TestQualityMonotoneWithBandwidth(t *testing.T) {
	skipLongUnderRace(t)
	// Fig 2b premise: more bandwidth, higher WebRTC quality.
	run := func(scale float64) float64 {
		cfg := defaultTestConfig(vidgen.FoodCooking)
		cfg.Trace = trace.FCCUplink(9, 2*time.Minute, 150).Scale(scale)
		cfg.Scheme = SchemeWebRTC
		cfg.Duration = 30 * time.Second
		return Run(cfg).AvgPSNR
	}
	q1, q2 := run(1), run(3)
	if q2 <= q1 {
		t.Fatalf("x3 bandwidth PSNR %.2f not above x1 %.2f", q2, q1)
	}
}

func TestTimelineStartsTraining(t *testing.T) {
	skipLongUnderRace(t)
	_, _, lnas := sharedRuns(t)
	tl := lnas.TrainerTimeline()
	if len(tl) == 0 || tl[0].State != "training" {
		t.Fatalf("timeline %v should start in training", tl)
	}
}

func TestGPUBusyBounded(t *testing.T) {
	skipLongUnderRace(t)
	_, _, lnas := sharedRuns(t)
	if lnas.GPUTrainBusy <= 0 {
		t.Fatal("LiveNAS trained for zero time")
	}
	if lnas.GPUTrainBusy > lnas.Cfg.Duration {
		t.Fatalf("GPU busy %v exceeds stream duration", lnas.GPUTrainBusy)
	}
	if s := lnas.TrainingShare(); s <= 0 || s > 1 {
		t.Fatalf("training share %v", s)
	}
}

func TestDeterministicRuns(t *testing.T) {
	skipLongUnderRace(t)
	cfg := defaultTestConfig(vidgen.Podcast)
	cfg.Trace = trace.FCCUplink(5, time.Minute, 200)
	cfg.Duration = 20 * time.Second
	a := Run(cfg)
	b := Run(cfg)
	if a.AvgPSNR != b.AvgPSNR || a.PatchesSent != b.PatchesSent || a.AvgBandwidthKbps != b.AvgBandwidthKbps {
		t.Fatalf("runs differ: %v/%v vs %v/%v", a.AvgPSNR, a.PatchesSent, b.AvgPSNR, b.PatchesSent)
	}
}

func TestContinuousTrainsMoreThanAdaptive(t *testing.T) {
	skipLongUnderRace(t)
	// Fig 15: content-adaptive training uses a fraction of continuous GPU
	// time. Use a low-scene-change category so saturation actually occurs.
	mk := func(p TrainPolicy) *Results {
		cfg := defaultTestConfig(vidgen.Podcast)
		cfg.Trace = trace.FCCUplink(11, 3*time.Minute, 250)
		cfg.TrainPolicy = p
		cfg.Duration = 100 * time.Second
		return Run(cfg)
	}
	adaptive := mk(TrainAdaptive)
	continuous := mk(TrainContinuous)
	if continuous.GPUTrainBusy != continuous.Cfg.Duration/continuous.Cfg.EpochLen*continuous.Cfg.EpochLen {
		t.Fatalf("continuous policy should train every epoch, got %v", continuous.GPUTrainBusy)
	}
	if adaptive.GPUTrainBusy >= continuous.GPUTrainBusy {
		t.Fatalf("adaptive GPU %v should be below continuous %v", adaptive.GPUTrainBusy, continuous.GPUTrainBusy)
	}
	// And the quality cost must be modest (paper: "almost the same quality").
	if continuous.AvgPSNR-adaptive.AvgPSNR > 1.5 {
		t.Fatalf("adaptive quality %.2f too far below continuous %.2f", adaptive.AvgPSNR, continuous.AvgPSNR)
	}
}

func TestOneTimePolicyStopsTraining(t *testing.T) {
	skipLongUnderRace(t)
	cfg := defaultTestConfig(vidgen.Sports)
	cfg.Trace = trace.FCCUplink(13, 2*time.Minute, 250)
	cfg.TrainPolicy = TrainOneTime
	cfg.OneTimeWindow = 15 * time.Second
	cfg.Duration = 45 * time.Second
	r := Run(cfg)
	if r.GPUTrainBusy > 20*time.Second {
		t.Fatalf("one-time training ran %v, window was 15s", r.GPUTrainBusy)
	}
}

func TestVanillaFallbackUnderLowBandwidth(t *testing.T) {
	skipLongUnderRace(t)
	// §5.1: below the minimum encoding bitrate no patches are sent.
	cfg := defaultTestConfig(vidgen.JustChatting)
	cfg.Trace = trace.FCCUplink(17, time.Minute, 200).Scale(0.1) // ~20 kbps links
	cfg.Duration = 20 * time.Second
	cfg.GCCInitKbps = 30 // start below MinVideoKbps
	r := Run(cfg)
	if r.PatchesSent > 2 {
		t.Fatalf("sent %d patches despite sub-minimum bandwidth", r.PatchesSent)
	}
}

func TestCodecAgnostic(t *testing.T) {
	skipLongUnderRace(t)
	// Fig 14: the gain exists under both codec profiles.
	mk := func(s Scheme, prof codec.Profile) *Results {
		cfg := defaultTestConfig(vidgen.JustChatting)
		cfg.Trace = sharedTraceOr()
		cfg.Scheme = s
		cfg.Profile = prof
		cfg.Duration = 45 * time.Second
		return Run(cfg)
	}
	for _, prof := range []codec.Profile{codec.BX8, codec.BX9} {
		web := mk(SchemeWebRTC, prof)
		ln := mk(SchemeLiveNAS, prof)
		if g := ln.GainOver(web); g < 0.5 {
			t.Fatalf("profile %v gain %.2f too small", prof, g)
		}
	}
}

func TestGradSeriesRecorded(t *testing.T) {
	skipLongUnderRace(t)
	_, _, lnas := sharedRuns(t)
	if len(lnas.Grad) < 10 {
		t.Fatalf("gradient series too short: %d", len(lnas.Grad))
	}
	for _, g := range lnas.Grad {
		if g.PatchKbps < 0 || g.VideoKbps < 0 {
			t.Fatalf("negative rates in grad point %+v", g)
		}
	}
}

func TestValidateRejectsBadGeometry(t *testing.T) {
	good := defaultTestConfig(vidgen.JustChatting)
	if err := good.Validate(); err != nil {
		t.Fatalf("default test config must validate: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Ingest = trace.Resolution{Name: "odd", W: 100, H: 100} },
		func(c *Config) { c.Ingest = trace.Resolution{Name: "neg", W: 192, H: -108} },
		func(c *Config) { c.Ingest = trace.Resolution{Name: "aniso", W: 192, H: 72} },
		func(c *Config) { c.PatchSize = 25 }, // not divisible by the x2 scale
	}
	for i, mutate := range bad {
		cfg := defaultTestConfig(vidgen.JustChatting)
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Fatalf("bad config %d validated", i)
		}
		if _, err := RunContext(context.Background(), cfg); err == nil {
			t.Fatalf("RunContext accepted bad config %d", i)
		}
	}
}

func TestScalePanicsOnBadGeometry(t *testing.T) {
	// Scale stays the post-validation accessor: on geometry Validate would
	// reject, it panics rather than returning a bogus factor.
	cfg := defaultTestConfig(vidgen.JustChatting)
	cfg.Ingest = trace.Resolution{Name: "odd", W: 100, H: 100}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg.Scale()
}

func TestRunContextCancellation(t *testing.T) {
	cfg := defaultTestConfig(vidgen.JustChatting)
	cfg.Trace = sharedTraceOr()
	cfg.Duration = 10 * time.Minute // far longer than the test will allow
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := RunContext(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v (res=%v)", err, res)
	}
	if res != nil {
		t.Fatal("cancelled run must not return results")
	}
	if el := time.Since(start); el > 30*time.Second {
		t.Fatalf("cancellation took %v; want prompt abort at an event boundary", el)
	}
}

func TestNormalizedQualityCurves(t *testing.T) {
	for _, cat := range vidgen.Categories() {
		prev := 0.0
		for _, v := range []float64{100, 500, 1000, 4000, 8000} {
			nq := NormalizedQuality(cat, v)
			if nq <= prev || nq > 1.0001 {
				t.Fatalf("%v NQ(%v)=%v not increasing in (0,1]", cat, v, nq)
			}
			prev = nq
		}
		// Slope positive and decreasing (concavity).
		s1 := NormalizedQualitySlope(cat, 500)
		s2 := NormalizedQualitySlope(cat, 4000)
		if s1 <= 0 || s2 <= 0 || s2 >= s1 {
			t.Fatalf("%v slopes not concave: %v %v", cat, s1, s2)
		}
	}
	// Harder content (Fortnite) needs more rate for the same normalized
	// quality than Podcast.
	if NormalizedQuality(vidgen.Fortnite, 1000) >= NormalizedQuality(vidgen.Podcast, 1000) {
		t.Fatal("category difficulty ordering violated")
	}
}

// Helpers.

func sharedTraceOr() *trace.Trace {
	if sharedTrace != nil {
		return sharedTrace
	}
	return trace.FCCUplink(3, 3*time.Minute, 250)
}

func TestFunctionalCodecMode(t *testing.T) {
	skipLongUnderRace(t)
	// §9 extension: the functional-codec probe replaces the normalized
	// curve; the session must still work and reach comparable quality.
	cfg := defaultTestConfig(vidgen.JustChatting)
	cfg.Trace = sharedTraceOr()
	cfg.Duration = 40 * time.Second
	cfg.FunctionalCodec = true
	r := Run(cfg)
	if r.FramesDecoded == 0 || r.PatchesSent == 0 {
		t.Fatal("functional-codec session did not run")
	}
	cfg.FunctionalCodec = false
	base := Run(cfg)
	if r.AvgPSNR < base.AvgPSNR-1.5 {
		t.Fatalf("functional probe %.2f dB far below curve estimate %.2f dB", r.AvgPSNR, base.AvgPSNR)
	}
}

func TestDeblockPipeline(t *testing.T) {
	skipLongUnderRace(t)
	// The in-loop deblocking option must run end-to-end without drift
	// (drift would show up as collapsing PSNR).
	cfg := defaultTestConfig(vidgen.Podcast)
	cfg.Trace = sharedTraceOr()
	cfg.Duration = 25 * time.Second
	cfg.Scheme = SchemeWebRTC
	plain := Run(cfg)
	cfg.Deblock = true
	filtered := Run(cfg)
	if filtered.FramesDecoded == 0 {
		t.Fatal("deblocked session decoded nothing")
	}
	if filtered.AvgPSNR < plain.AvgPSNR-1 {
		t.Fatalf("deblocking collapsed quality: %.2f vs %.2f", filtered.AvgPSNR, plain.AvgPSNR)
	}
}

func TestLossRecovery(t *testing.T) {
	skipLongUnderRace(t)
	// Under random packet loss the pipeline must lose frames, request key
	// frames, and keep delivering video (the §7 WebRTC-integration path).
	cfg := defaultTestConfig(vidgen.Sports)
	cfg.Trace = sharedTraceOr()
	cfg.Duration = 30 * time.Second
	cfg.LossRate = 0.03
	cfg.Scheme = SchemeWebRTC
	r := Run(cfg)
	if r.FramesLost == 0 {
		t.Fatal("3% loss produced no lost frames — loss path untested")
	}
	if r.FramesDecoded < 100 {
		t.Fatalf("stream did not recover: only %d frames decoded", r.FramesDecoded)
	}
	// Quality still reasonable (frozen frames during recovery are expected).
	if r.AvgPSNR < 14 {
		t.Fatalf("PSNR %.1f collapsed under 3%% loss", r.AvgPSNR)
	}
}

// TestDedicatedPoolJoinedAtSessionEnd pins the ownership fix for dedicated
// kernel pools: a session with KernelWorkers > 0 creates its own nn.Pool,
// and Run must join those workers before returning (previously they leaked
// for the process lifetime, one pool per session in experiment sweeps).
func TestDedicatedPoolJoinedAtSessionEnd(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := defaultTestConfig(vidgen.JustChatting)
	cfg.Trace = trace.FCCUplink(11, time.Minute, 250)
	cfg.Duration = 10 * time.Second
	cfg.KernelWorkers = 3
	r := Run(cfg)
	if r.FramesDecoded == 0 {
		t.Fatal("session decoded no frames")
	}
	// Run closed the dedicated pool, so the goroutine count settles back
	// to its pre-session level (poll: a joined worker's exit is observed
	// by the scheduler a beat after WaitGroup.Wait returns).
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("%d goroutines outlive the session (had %d before); dedicated pool not joined", got, before)
	}
}

// TestQuantInt8Session runs one short LiveNAS session through the int8
// inference fast path and checks the wiring end to end: quantized frames
// are counted, the online quality gate sampled its patch trickle, and
// session quality did not collapse.
func TestQuantInt8Session(t *testing.T) {
	cfg := defaultTestConfig(vidgen.JustChatting)
	cfg.Trace = trace.FCCUplink(23, time.Minute, 250)
	cfg.Duration = 15 * time.Second
	cfg.QuantInt8 = true
	r := Run(cfg)
	if r.FramesDecoded == 0 {
		t.Fatal("quant session decoded no frames")
	}
	reg := r.Telemetry()
	if n := reg.Counter("sr_quant_patches").Value(); n == 0 {
		t.Fatal("QuantInt8 session processed no frames on the int8 path")
	}
	if n := reg.Histogram("sr_quant_psnr_gap", nil).Count(); n == 0 {
		t.Fatal("quality gate never sampled the patch trickle")
	}
	if r.AvgPSNR < 14 {
		t.Fatalf("quantized session PSNR %.1f collapsed", r.AvgPSNR)
	}
}

// TestAnytimeBudgetSession runs a session under a per-frame anytime
// deadline and checks the scheduler's accounting: with a realistic budget
// frames still flow; with an impossible budget every frame records a
// deadline miss and quality degrades toward the bilinear floor, but the
// session survives.
func TestAnytimeBudgetSession(t *testing.T) {
	run := func(budget time.Duration) *Results {
		cfg := defaultTestConfig(vidgen.JustChatting)
		cfg.Trace = trace.FCCUplink(29, time.Minute, 250)
		cfg.Duration = 12 * time.Second
		cfg.QuantInt8 = true
		cfg.AnytimeBudget = budget
		return Run(cfg)
	}
	ok := run(50 * time.Millisecond)
	if ok.FramesDecoded == 0 {
		t.Fatal("anytime session decoded no frames")
	}
	if n := ok.Telemetry().Counter("infer_deadline_miss").Value(); n != 0 {
		t.Fatalf("50ms budget missed %d deadlines on a tiny frame", n)
	}
	tight := run(time.Nanosecond)
	if tight.FramesDecoded == 0 {
		t.Fatal("tight-budget session decoded no frames")
	}
	if n := tight.Telemetry().Counter("infer_deadline_miss").Value(); n == 0 {
		t.Fatal("sub-transfer budget recorded no deadline misses")
	}
}
