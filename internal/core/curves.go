package core

import (
	"math"

	"livenas/internal/vidgen"
)

// Normalized bitrate-to-quality curves (§5.1, Figure 6). The paper observes
// that PSNR-vs-bitrate curves of streams from the same category collapse
// onto each other once normalized to the highest PSNR; the media server
// ships the per-category curve to clients, which use its slope to estimate
// dQvideo/dv without re-encoding at a second bitrate.
//
// We model the curve with the standard logarithmic rate-distortion form
// NQ(v) = log(1 + v/v0) / log(1 + vmax/v0), normalized so NQ(vmax) = 1.
// v0 captures content coding difficulty: high-motion, high-detail
// categories need more rate for the same normalized quality.

// nqRefKbps is the normalisation point (the "highest PSNR" bitrate).
const nqRefKbps = 8000

// curveV0 returns the rate-difficulty parameter v0 (kbps) for a category,
// derived from its motion and detail profile.
func curveV0(cat vidgen.Category) float64 {
	p := vidgen.ParamsFor(cat)
	// Motion 10..260 and detail 0.5..0.9 map to v0 in roughly 150..900.
	return 100 + p.Motion*2.2 + p.Detail*300
}

// NormalizedQuality returns NQ_type(v) in (0, 1] for bitrate v kbps.
func NormalizedQuality(cat vidgen.Category, kbps float64) float64 {
	if kbps <= 0 {
		return 0
	}
	v0 := curveV0(cat)
	return math.Log(1+kbps/v0) / math.Log(1+nqRefKbps/v0)
}

// NormalizedQualitySlope returns d NQ/dv at bitrate v kbps (per kbps).
func NormalizedQualitySlope(cat vidgen.Category, kbps float64) float64 {
	if kbps <= 0 {
		kbps = 1
	}
	v0 := curveV0(cat)
	return 1 / ((v0 + kbps) * math.Log(1+nqRefKbps/v0))
}
