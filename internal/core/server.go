package core

import (
	"sync"
	"time"

	"livenas/internal/codec"
	"livenas/internal/frame"
	"livenas/internal/metrics"
	"livenas/internal/netem"
	"livenas/internal/nn"
	"livenas/internal/sim"
	"livenas/internal/sr"
	"livenas/internal/telemetry"
	"livenas/internal/transport"
	"livenas/internal/vidgen"
)

// trainerState is the content-adaptive trainer's FSM state (Algorithm 1).
type trainerState int

const (
	stateTraining trainerState = iota
	stateSuspended
)

func (s trainerState) String() string {
	if s == stateSuspended {
		return "suspended"
	}
	return "training"
}

// Content-adaptive trainer thresholds (Algorithm 1). Values are calibrated
// to this SR model's per-epoch gain scale the same way the paper calibrates
// to NAS's.
const (
	thresSat    = 0.05 // dB: smoothed epoch-over-epoch improvement below this counts toward saturation
	countSat    = 3    // patience before suspending
	thresOnline = 0.30 // dB: lead of DNN_t over DNN_0 below this signals content change
	countOnline = 2    // patience before resuming
	// diffSmooth is the EWMA weight applied to the epoch-over-epoch gain
	// difference before the saturation comparison: SGD noise makes a single
	// epoch's diff swing far more than NAS-scale training, so the raw
	// Algorithm-1 comparison would never see a stable plateau.
	diffSmooth = 0.5
)

// gateSampleEvery thins the int8 quality gate's patch trickle: one of every
// N admitted training patches also runs the f32-vs-int8 PSNR comparison.
// Each probe costs two patch inferences, so sampling keeps the gate's
// overhead well under one frame-equivalent per second at paper patch rates.
const gateSampleEvery = 8

// StateChange records a trainer ON/OFF transition (Figure 16 timeline). The
// server does not keep a timeline of its own: transitions are emitted as
// trainer_state telemetry events and Results.TrainerTimeline reconstructs
// this series from the event trace.
type StateChange struct {
	T     time.Duration
	State string
}

// decodedFrame is a reconstructed stream frame with its capture timestamp.
type decodedFrame struct {
	id        int
	captureAt time.Duration
	lr        *frame.Frame
}

// patchSample retains a received high-quality patch with its low-resolution
// counterpart for quality validation (§6.1 "we use the high-quality training
// patches as a reference at the media server").
type patchSample struct {
	hr, lr     *frame.Frame
	receivedAt time.Duration
}

// server is the LiveNAS media server (Figure 3, right).
type server struct {
	s     *sim.Simulator
	cfg   Config
	scale int

	dec   *codec.Decoder
	reasm *transport.Reassembler
	fbc   *transport.FeedbackCollector
	// notify delivers a message to the client after the reverse-path delay.
	notify func(serverMsg)

	model     *sr.Model // DNN_t (trained online)
	prevModel *sr.Model // DNN_{t-1}
	initModel *sr.Model // DNN_{t=0}: generic benchmark-trained model
	trainer   *sr.Trainer
	proc      *sr.Processor

	decoded      []decodedFrame // ring of recent frames
	latest       *decodedFrame
	recentPatch  []patchSample
	patchBits    int // bits received this epoch
	epochIdx     int
	needKey      bool
	waitKey      bool // decoder lost its reference; discard until key frame
	earlyStopped bool // TrainEarlyStop latch

	state    trainerState
	patience int
	diffEWMA float64 // smoothed qCur - qPrev, dB

	// Bookkeeping.
	gpuTrainBusy    time.Duration
	framesDecoded   int
	framesLost      int
	patchesReceived int
	e2eLatencySum   time.Duration
	e2eLatencyN     int

	// ownPool is the dedicated kernel pool when cfg.KernelWorkers > 0;
	// joined in close. Nil when the session uses the shared pool.
	ownPool *nn.Pool

	// Telemetry. reg is retained for event emission (trainer_state,
	// patch_admit, train_epoch); the handles are lock-free counters/gauges
	// registered once in newServer.
	reg            *telemetry.Registry
	mFramesDec     *telemetry.Counter
	mFramesLost    *telemetry.Counter
	mPatchesRecv   *telemetry.Counter
	mPatchesAdmit  *telemetry.Counter
	mEpochs        *telemetry.Counter
	mArenaHits     *telemetry.Gauge
	mArenaMisses   *telemetry.Gauge
	mTrainGainCur  *telemetry.Gauge
	mTrainDiffEWMA *telemetry.Gauge
}

// genericModelCache memoises the expensive generic pre-training per
// (scale, channels) so every experiment does not redo it.
var genericModelCache sync.Map // key [2]int -> *sr.Model

// genericModel returns (a clone of) the benchmark-dataset-trained model for
// the given scale/width (the DNN_{t=0} of Algorithm 1 and the Generic
// baseline of §8.1).
func genericModel(scale, channels int) *sr.Model {
	key := [2]int{scale, channels}
	if v, ok := genericModelCache.Load(key); ok {
		return v.(*sr.Model).Clone()
	}
	m := sr.NewModel(scale, channels, 1234)
	ds := vidgen.GenericDataset(24, 96, 424242)
	cfg := sr.DefaultTrainConfig()
	sr.PretrainOnDataset(m, ds, 6, 48, cfg, 7)
	genericModelCache.Store(key, m)
	return m.Clone()
}

// sessionPool returns the nn worker pool for the session's models: the
// process-wide shared pool by default, or a dedicated pool when the config
// sizes one explicitly. A dedicated pool is owned by the server and joined
// in close, so its workers do not outlive the session (previously they
// leaked for the process lifetime, one pool per session in sweeps).
func (sv *server) sessionPool(cfg Config) *nn.Pool {
	if cfg.KernelWorkers > 0 {
		if sv.ownPool == nil {
			sv.ownPool = nn.NewPool(cfg.KernelWorkers)
		}
		return sv.ownPool
	}
	return nn.SharedPool()
}

// close releases resources the server owns. Only the dedicated kernel pool
// needs explicit teardown: Close drains its job channel and joins every
// worker goroutine. Must be called after the simulation has fully stopped
// (no epoch or inference work in flight).
func (sv *server) close() {
	sv.ownPool.Close()
}

// pretrainOnSession trains model on a previous session of the same streamer
// (the Pretrained baseline of §8.1 and the warm start of persistent
// learning, §6.1).
func pretrainOnSession(model *sr.Model, cfg Config) {
	src := vidgen.NewSource(cfg.Cat, cfg.Native.W, cfg.Native.H, cfg.PretrainSeed, cfg.Duration.Seconds())
	tr := sr.NewTrainer(model, cfg.TrainCfg, cfg.PretrainSeed^0x7e7e)
	ps := cfg.PatchSize
	scale := cfg.Scale()
	cells := frame.Grid(cfg.Native.W, cfg.Native.H, ps)
	if len(cells) == 0 {
		return
	}
	n := 0
	for t := 0.5; t < cfg.Duration.Seconds(); t += 2 {
		f := src.FrameAt(t)
		for j := 0; j < 2; j++ {
			cell := cells[n%len(cells)]
			n++
			hr := frame.Patch(f, cell, ps)
			tr.AddSample(hr.Downscale(scale), hr)
		}
		if n >= 120 {
			break
		}
	}
	// Same order of GPU budget as a LiveNAS run of this duration (§8.1
	// "we use the same amount of GPU for training as LiveNAS").
	epochs := int(cfg.Duration/cfg.EpochLen) / 2
	if epochs < 4 {
		epochs = 4
	}
	if epochs > 40 {
		epochs = 40
	}
	for e := 0; e < epochs; e++ {
		tr.Epoch()
	}
}

func newServer(s *sim.Simulator, cfg Config, notify func(serverMsg)) *server {
	scale := cfg.Scale()
	sv := &server{
		s:     s,
		cfg:   cfg,
		scale: scale,
		dec: codec.NewDecoder(codec.Config{
			Profile: cfg.Profile,
			W:       cfg.Ingest.W,
			H:       cfg.Ingest.H,
			Deblock: cfg.Deblock,
		}),
		reasm:  transport.NewReassembler(),
		fbc:    transport.NewFeedbackCollector(100 * time.Millisecond),
		notify: notify,
		state:  stateTraining,
		reg:    cfg.Telemetry,
	}
	sv.reasm.SetTelemetry(sv.reg)
	sv.mFramesDec = sv.reg.Counter("core_frames_decoded")
	sv.mFramesLost = sv.reg.Counter("core_frames_lost")
	sv.mPatchesRecv = sv.reg.Counter("core_patches_received")
	sv.mPatchesAdmit = sv.reg.Counter("core_patches_admitted")
	sv.mEpochs = sv.reg.Counter("core_train_epochs")
	sv.mArenaHits = sv.reg.Gauge("nn_arena_hits")
	sv.mArenaMisses = sv.reg.Gauge("nn_arena_misses")
	sv.mTrainGainCur = sv.reg.Gauge("core_train_gain_db")
	sv.mTrainDiffEWMA = sv.reg.Gauge("core_train_diff_ewma_db")
	sv.initModel = genericModel(scale, cfg.Channels)
	switch cfg.Scheme {
	case SchemeWebRTC:
		// No DNN at all.
	case SchemeGeneric:
		sv.model = sv.initModel.Clone()
		sv.model.SetKernelPool(sv.sessionPool(cfg))
	case SchemePretrained:
		sv.model = sv.initModel.Clone()
		sv.model.SetKernelPool(sv.sessionPool(cfg))
		pretrainOnSession(sv.model, cfg)
	case SchemeLiveNAS:
		sv.model = sv.initModel.Clone()
		// Configure the pool before trainer/processor construction so the
		// data-parallel replicas they clone inherit it.
		sv.model.SetKernelPool(sv.sessionPool(cfg))
		if cfg.Persistent {
			pretrainOnSession(sv.model, cfg)
		}
		tcfg := cfg.TrainCfg
		tcfg.GPUs = cfg.TrainGPUs
		sv.trainer = sr.NewTrainer(sv.model, tcfg, cfg.Seed^0xbeef)
		sv.trainer.SetTelemetry(sv.reg)
		sv.prevModel = sv.model.Clone()
	}
	if sv.model != nil {
		sv.proc = sr.NewProcessor(sv.model, cfg.InferGPUs, cfg.Device)
		sv.proc.SetTelemetry(sv.reg)
		if cfg.QuantInt8 {
			// Schemes without online training (Generic/Pretrained) have no
			// trainer statistics; EnableQuant then calibrates lazily from
			// the first processed frame.
			sv.proc.EnableQuant(sv.model, cfg.QuantGateDB)
		}
		if cfg.AnytimeBudget > 0 {
			sv.proc.SetAnytimeBudget(cfg.AnytimeBudget)
		}
	}
	sv.diffEWMA = 1 // optimistic start: never suspend before real signal
	sv.emitTrainerState(sv.trainingActive(), telemetry.Str("reason", "start"))
	sv.reasm.OnComplete = sv.onUnit
	sv.reasm.OnLoss = sv.onUnitLoss
	return sv
}

// emitTrainerState records a trainer ON/OFF transition as a trainer_state
// event (the Figure 16 timeline; Results.TrainerTimeline reconstructs the
// StateChange series from these).
func (sv *server) emitTrainerState(st trainerState, extra ...telemetry.Field) {
	fields := append([]telemetry.Field{telemetry.Str("state", st.String())}, extra...)
	sv.reg.Emit(sv.s.Now(), "trainer_state", fields...)
}

// trainingActive reports whether the trainer would run an epoch now, under
// the configured policy.
func (sv *server) trainingActive() trainerState {
	if sv.cfg.Scheme != SchemeLiveNAS {
		return stateSuspended
	}
	switch sv.cfg.TrainPolicy {
	case TrainContinuous:
		return stateTraining
	case TrainOneTime:
		if sv.s.Now() < sv.cfg.OneTimeWindow {
			return stateTraining
		}
		return stateSuspended
	case TrainEarlyStop:
		if sv.earlyStopped {
			return stateSuspended
		}
		return stateTraining
	default:
		return sv.state
	}
}

// onWirePacket receives a packet from the bottleneck link.
func (sv *server) onWirePacket(p netem.Packet) {
	f := p.Payload.(transport.Fragment)
	sv.fbc.OnPacket(p.Seq, p.Size, p.SentAt, sv.s.Now())
	sv.reasm.Add(f, sv.s.Now())
}

// onUnitLoss handles an abandoned (packet-lossy) unit.
func (sv *server) onUnitLoss(k transport.Kind, id int) {
	if k == transport.KindVideo {
		sv.framesLost++
		sv.mFramesLost.Inc()
		sv.needKey = true
		sv.waitKey = true
	}
	// A lost patch is simply a lost training sample.
}

// onUnit handles a fully reassembled video frame or patch.
func (sv *server) onUnit(a transport.Assembled) {
	switch a.Kind {
	case transport.KindVideo:
		sv.onVideoFrame(a)
	case transport.KindPatch:
		sv.onPatch(a)
	}
}

func (sv *server) onVideoFrame(a transport.Assembled) {
	meta := a.Meta.(videoFrameMeta)
	if sv.waitKey && !meta.Enc.Key {
		sv.framesLost++
		sv.mFramesLost.Inc()
		sv.needKey = true
		return
	}
	if meta.Enc.Key {
		sv.waitKey = false
		sv.dec.Reset()
	}
	lr, err := sv.dec.Decode(&codec.EncodedFrame{Data: a.Data, Key: meta.Enc.Key, QP: meta.Enc.QP, Seq: a.ID})
	if err != nil {
		sv.framesLost++
		sv.mFramesLost.Inc()
		sv.needKey = true
		sv.waitKey = true
		return
	}
	sv.framesDecoded++
	sv.mFramesDec.Inc()
	df := decodedFrame{id: a.ID, captureAt: meta.CaptureAt, lr: lr}
	sv.decoded = append(sv.decoded, df)
	// Keep ~3 seconds of decoded frames for patch pairing.
	limit := int(3 * sv.cfg.FPS)
	if len(sv.decoded) > limit {
		sv.decoded = sv.decoded[len(sv.decoded)-limit:]
	}
	sv.latest = &sv.decoded[len(sv.decoded)-1]
	sv.e2eLatencySum += sv.s.Now() - meta.CaptureAt
	sv.e2eLatencyN++
}

func (sv *server) onPatch(a transport.Assembled) {
	meta := a.Meta.(patchMeta)
	hr, err := codec.DecodePatch(a.Data)
	if err != nil {
		return
	}
	sv.patchesReceived++
	sv.mPatchesRecv.Inc()
	sv.patchBits += (len(a.Data) + transport.HeaderBytes) * 8
	// Find the exact decoded frame the patch was cropped from (§5.2: the
	// timestamp/frame id lets the server "find the low resolution
	// counterpart from the encoded video stream"). A temporally misaligned
	// pair would train the DNN on moving content offsets, so patches whose
	// frame has already left the ring (or was lost) are discarded.
	var best *decodedFrame
	for i := range sv.decoded {
		if sv.decoded[i].id == meta.FrameID {
			best = &sv.decoded[i]
			break
		}
	}
	if best == nil {
		return
	}
	lps := sv.cfg.PatchSize / sv.scale
	lr := best.lr.Crop(meta.X/sv.scale, meta.Y/sv.scale, lps, lps)
	if sv.trainer != nil {
		sv.trainer.AddSample(lr, hr)
		sv.mPatchesAdmit.Inc()
		// The same ground-truth pair doubles as the int8 quality gate's
		// sampled trickle: every gateSampleEvery-th admitted patch compares
		// int8 vs f32 PSNR online (sr_quant_psnr_gap) and drives the
		// per-stream fallback decision.
		if sv.cfg.QuantInt8 && sv.patchesReceived%gateSampleEvery == 0 {
			sv.proc.ObserveGatePatch(lr, hr)
		}
		sv.reg.Emit(sv.s.Now(), "patch_admit",
			telemetry.Num("frame_id", float64(meta.FrameID)),
			telemetry.Num("x", float64(meta.X)),
			telemetry.Num("y", float64(meta.Y)),
			telemetry.Num("bytes", float64(len(a.Data))),
		)
	}
	sv.recentPatch = append(sv.recentPatch, patchSample{hr: hr, lr: lr, receivedAt: sv.s.Now()})
	if len(sv.recentPatch) > 8 {
		sv.recentPatch = sv.recentPatch[len(sv.recentPatch)-8:]
	}
}

// onFeedbackTick sends transport feedback (acks + loss) every 100 ms.
func (sv *server) onFeedbackTick() {
	acks, lost := sv.fbc.Report()
	msg := serverMsg{acks: acks, lost: lost, needKeyFrame: sv.needKey}
	sv.needKey = false
	sv.notify(msg)
}

// modelGain measures a model's SR gain over bilinear (dB) on the recent
// high-quality patches — the server-side quality signal of §6.1.
func (sv *server) modelGain(m *sr.Model) float64 {
	if len(sv.recentPatch) == 0 {
		return 0
	}
	var g float64
	for _, p := range sv.recentPatch {
		up := p.lr.ResizeBilinear(p.hr.W, p.hr.H)
		bil := metrics.PSNR(p.hr, up)
		srq := metrics.PSNR(p.hr, m.SuperResolve(p.lr))
		g += srq - bil
	}
	return g / float64(len(sv.recentPatch))
}

// onEpochTick runs at every training-epoch boundary: one epoch of online
// training when active, the Algorithm 1 state machine, and quality feedback
// to the client.
func (sv *server) onEpochTick() {
	if sv.cfg.Scheme != SchemeLiveNAS || sv.trainer == nil {
		return
	}
	sv.epochIdx++
	active := sv.trainingActive()

	var qPrev, qCur float64
	if active == stateTraining {
		sv.prevModel.CopyWeightsFrom(sv.model)
		var loss float64
		samples := sv.trainer.SampleCount()
		if samples > 0 {
			loss = sv.trainer.Epoch()
			sv.proc.Sync(sv.model)
		}
		// The training GPU is held for the full epoch while active (the
		// paper sizes 50 iterations to fill the 5-second epoch).
		sv.gpuTrainBusy += sv.cfg.EpochLen
		qPrev = sv.modelGain(sv.prevModel)
		qCur = sv.modelGain(sv.model)

		// Algorithm 1, Training state: detect gain saturation on the
		// smoothed epoch-over-epoch improvement.
		if len(sv.recentPatch) > 0 {
			sv.diffEWMA = (1-diffSmooth)*sv.diffEWMA + diffSmooth*(qCur-qPrev)
		}
		sv.mEpochs.Inc()
		sv.mTrainGainCur.Set(qCur)
		sv.mTrainDiffEWMA.Set(sv.diffEWMA)
		hits, misses := sv.model.ArenaStats()
		ph, pm := sv.proc.ArenaStats()
		sv.mArenaHits.Set(float64(hits + ph))
		sv.mArenaMisses.Set(float64(misses + pm))
		sv.reg.Emit(sv.s.Now(), "train_epoch",
			telemetry.Num("epoch", float64(sv.epochIdx)),
			telemetry.Num("samples", float64(samples)),
			telemetry.Num("loss", loss),
			telemetry.Num("gain_prev_db", qPrev),
			telemetry.Num("gain_cur_db", qCur),
			telemetry.Num("diff_ewma_db", sv.diffEWMA),
			telemetry.Num("arena_hits", float64(hits+ph)),
			telemetry.Num("arena_misses", float64(misses+pm)),
		)
		if sv.cfg.TrainPolicy == TrainAdaptive || sv.cfg.TrainPolicy == TrainEarlyStop {
			if len(sv.recentPatch) > 0 && sv.diffEWMA < thresSat {
				sv.patience++
				if sv.patience > countSat {
					sv.patience = 0
					sv.state = stateSuspended
					sv.earlyStopped = true
					sv.emitTrainerState(stateSuspended,
						telemetry.Str("reason", "gain_saturated"),
						telemetry.Num("gain_cur_db", qCur),
						telemetry.Num("diff_ewma_db", sv.diffEWMA),
					)
				}
			} else {
				sv.patience = 0
			}
		}
	} else {
		qCur = sv.modelGain(sv.model)
		qPrev = qCur
		// Algorithm 1, Suspended state: validate against DNN_{t=0} on the
		// latest patches; resume when the online model no longer leads.
		if sv.cfg.TrainPolicy == TrainAdaptive && len(sv.recentPatch) > 0 {
			qInit := sv.modelGain(sv.initModel)
			if qCur-qInit < thresOnline {
				sv.patience++
				if sv.patience > countOnline {
					sv.patience = 0
					sv.state = stateTraining
					sv.diffEWMA = 1 // re-bootstrap: don't instantly re-suspend
					sv.emitTrainerState(stateTraining,
						telemetry.Str("reason", "content_change"),
						telemetry.Num("gain_cur_db", qCur),
						telemetry.Num("gain_init_db", qInit),
					)
				}
			} else {
				sv.patience = 0
			}
		}
	}

	epochPatchK := float64(sv.patchBits) / 1000 / sv.cfg.EpochLen.Seconds()
	sv.patchBits = 0
	sv.notify(serverMsg{
		hasEpoch:      true,
		qdnnPrev:      qPrev,
		qdnnCur:       qCur,
		epochPatchK:   epochPatchK,
		trainingState: sv.trainingActive(),
	})
}

// output produces the frame a viewer-facing transcoder would consume right
// now: the latest decoded frame upscaled to the target resolution by the
// scheme's upsampler. It returns the frame, its capture time, and the
// simulated inference latency.
func (sv *server) output() (*frame.Frame, time.Duration, time.Duration, bool) {
	if sv.latest == nil {
		return nil, 0, 0, false
	}
	lr := sv.latest.lr
	if sv.proc == nil {
		up := lr.ResizeBilinear(lr.W*sv.scale, lr.H*sv.scale)
		lat := sv.cfg.Device.InferenceTime(lr.W, lr.H, 1, 1)
		return up, sv.latest.captureAt, lat, true
	}
	out, lat := sv.proc.Process(lr)
	return out, sv.latest.captureAt, lat, true
}
