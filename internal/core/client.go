package core

import (
	"math/rand"
	"time"

	"livenas/internal/codec"
	"livenas/internal/frame"
	"livenas/internal/gcc"
	"livenas/internal/metrics"
	"livenas/internal/sim"
	"livenas/internal/telemetry"
	"livenas/internal/transport"
	"livenas/internal/vidgen"
)

// videoFrameMeta rides on each video frame's first fragment.
type videoFrameMeta struct {
	Enc       *codec.EncodedFrame
	CaptureAt time.Duration
}

// patchMeta rides on each patch's first fragment (§5.2: "we include its
// timestamp and its location within the corresponding frame").
type patchMeta struct {
	FrameID   int
	CaptureAt time.Duration
	X, Y      int // top-left of the patch in native (HR) coordinates
}

// serverMsg is the media server's reverse-path message to the client:
// transport feedback plus LiveNAS quality feedback (§6.1).
type serverMsg struct {
	acks []gcc.Ack
	lost int

	// Epoch feedback (valid when hasEpoch).
	hasEpoch      bool
	qdnnPrev      float64 // gain of DNN_{t-1} on recent patches, dB
	qdnnCur       float64 // gain of DNN_t on recent patches, dB
	epochPatchK   float64 // patch kbps received during that epoch
	trainingState trainerState

	needKeyFrame bool
}

// GradPoint records one scheduler update (the Figure 5 case-study series).
type GradPoint struct {
	T          time.Duration
	Gradient   float64 // combined gradient, dB per kbps
	PatchKbps  float64
	VideoKbps  float64
	TargetKbps float64
}

// client is the LiveNAS ingest client (Figure 3, left).
type client struct {
	s     *sim.Simulator
	cfg   Config
	scale int
	src   *vidgen.Source
	enc   *codec.Encoder
	ctrl  *gcc.Controller
	pacer *transport.Pacer
	rng   *rand.Rand

	frameID int
	patchID int

	// Scheduler state (§5.1).
	patchKbps  float64
	videoQ     float64 // EWMA of measured encoded quality, dB
	haveFB     bool
	fbPrevQ    float64
	fbCurQ     float64
	fbPatchK   float64
	suspended  bool
	gradSeries []GradPoint

	// Patch pipeline (§5.2).
	patchBudgetBits float64
	patchQueue      []queuedPatch
	lastBudgetAt    time.Duration

	// Functional-codec probe state (Config.FunctionalCodec).
	lastLR *frame.Frame

	// Bookkeeping.
	patchesSent    int
	patchBytesSent int
	videoBytesSent int

	// Telemetry. reg is retained for scheduler_split events (one per
	// scheduler update, alongside gradSeries).
	reg         *telemetry.Registry
	mPatchesOut *telemetry.Counter
	mFramesCap  *telemetry.Counter
}

type queuedPatch struct {
	data []byte
	meta patchMeta
}

func newClient(s *sim.Simulator, cfg Config, src *vidgen.Source, pacer *transport.Pacer) *client {
	c := &client{
		s:     s,
		cfg:   cfg,
		scale: cfg.Scale(),
		src:   src,
		enc: codec.NewEncoder(codec.Config{
			Profile:     cfg.Profile,
			W:           cfg.Ingest.W,
			H:           cfg.Ingest.H,
			KeyInterval: int(cfg.FPS * 4), // 4-second GoP
			Deblock:     cfg.Deblock,
		}),
		ctrl:      gcc.New(gcc.Config{InitKbps: cfg.GCCInitKbps, MinKbps: cfg.MinVideoKbps / 4}),
		pacer:     pacer,
		rng:       rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)),
		patchKbps: cfg.InitPatchKbps,
		reg:       cfg.Telemetry,
	}
	c.ctrl.SetTelemetry(c.reg)
	c.mPatchesOut = c.reg.Counter("core_patches_sent")
	c.mFramesCap = c.reg.Counter("core_frames_captured")
	if cfg.Scheme != SchemeLiveNAS {
		c.patchKbps = 0
	}
	return c
}

// videoKbps returns the current video share of the bandwidth estimate.
func (c *client) videoKbps() float64 {
	v := c.ctrl.TargetKbps() - c.currentPatchKbps()
	if v < c.cfg.MinVideoKbps {
		v = c.cfg.MinVideoKbps
	}
	return v
}

// currentPatchKbps applies the vanilla-WebRTC fallback rule (§5.1): if the
// available bandwidth drops below the minimum encoding bitrate, no patches
// are sent.
func (c *client) currentPatchKbps() float64 {
	if c.cfg.Scheme != SchemeLiveNAS {
		return 0
	}
	if c.ctrl.TargetKbps() < c.cfg.MinVideoKbps {
		return 0
	}
	p := c.patchKbps
	if max := c.ctrl.TargetKbps() - c.cfg.MinVideoKbps; p > max {
		p = max
	}
	if p < 0 {
		p = 0
	}
	return p
}

// onCapture runs once per frame interval: capture, downscale, encode,
// packetise, and feed the patch pipeline.
func (c *client) onCapture() {
	now := c.s.Now()
	raw := c.src.FrameAt(now.Seconds())
	lr := raw.Downscale(c.scale)
	c.mFramesCap.Inc()

	targetBits := int(c.videoKbps() * 1000 / c.cfg.FPS)
	ef := c.enc.Encode(lr, targetBits)
	recon := c.enc.Reconstructed()

	// Measured encoded quality feeds the scheduler's Qvideo estimate
	// (EWMA over GoPs, §5.1 "adjusts it to the current video using
	// exponentially weighted averaging").
	q := metrics.PSNR(lr, recon)
	if c.videoQ == 0 {
		c.videoQ = q
	} else {
		c.videoQ = 0.9*c.videoQ + 0.1*q
	}

	c.lastLR = lr
	id := c.frameID
	c.frameID++
	meta := videoFrameMeta{Enc: ef, CaptureAt: now}
	for _, f := range transport.Packetize(transport.KindVideo, id, ef.Data, meta, c.cfg.MTU) {
		c.videoBytesSent += f.WireSize()
		c.pacer.Enqueue(f)
	}

	c.pumpPatches(id, raw, lr, recon)
}

// pumpPatches refills the patch transmission buffer when empty (§5.2) and
// releases queued patches according to the patch-bandwidth token budget.
func (c *client) pumpPatches(frameID int, raw, lr, recon *frame.Frame) {
	now := c.s.Now()
	rate := c.currentPatchKbps()
	// Token refill.
	dt := (now - c.lastBudgetAt).Seconds()
	c.lastBudgetAt = now
	c.patchBudgetBits += rate * 1000 * dt
	if cap := 3 * rate * 1000; c.patchBudgetBits > cap && cap > 0 {
		c.patchBudgetBits = cap // bound the burst to ~3s of patch budget
	}
	if rate <= 0 {
		c.patchBudgetBits = 0
		return
	}
	if len(c.patchQueue) == 0 {
		c.samplePatches(frameID, raw, lr, recon)
	}
	for len(c.patchQueue) > 0 {
		p := c.patchQueue[0]
		bits := float64((len(p.data) + transport.HeaderBytes) * 8)
		if c.patchBudgetBits < bits {
			break
		}
		c.patchBudgetBits -= bits
		c.patchQueue = c.patchQueue[1:]
		for _, f := range transport.Packetize(transport.KindPatch, c.patchID, p.data, p.meta, c.cfg.MTU) {
			c.patchBytesSent += f.WireSize()
			c.pacer.Enqueue(f)
		}
		c.patchID++
		c.patchesSent++
		c.mPatchesOut.Inc()
	}
}

// samplePatches implements the patch-selection algorithm of §5.2: random
// draws from the non-overlapping grid, keeping cells whose encoded quality
// is below the whole frame's (harder-to-encode content trains better),
// until ~10 patches are buffered.
func (c *client) samplePatches(frameID int, raw, lr, recon *frame.Frame) {
	const wanted = 10
	ps := c.cfg.PatchSize
	cells := frame.Grid(raw.W, raw.H, ps)
	if len(cells) == 0 {
		return
	}
	frameQ := metrics.PSNR(lr, recon)
	// Shuffled pass over the grid.
	order := c.rng.Perm(len(cells))
	now := c.s.Now()
	lps := ps / c.scale
	for _, ci := range order {
		if len(c.patchQueue) >= wanted {
			break
		}
		cell := cells[ci]
		lx, ly := cell.X/c.scale, cell.Y/c.scale
		encQ := metrics.PSNR(lr.Crop(lx, ly, lps, lps), recon.Crop(lx, ly, lps, lps))
		if encQ >= frameQ {
			continue // easy region: discard (§5.2)
		}
		hr := raw.Crop(cell.X, cell.Y, ps, ps)
		data := codec.EncodePatch(hr, codec.PatchQuality)
		c.patchQueue = append(c.patchQueue, queuedPatch{
			data: data,
			meta: patchMeta{FrameID: frameID, CaptureAt: now, X: cell.X, Y: cell.Y},
		})
	}
	// If the quality filter rejected everything (uniformly easy frame),
	// fall back to unfiltered random cells so training never starves.
	for _, ci := range order {
		if len(c.patchQueue) >= wanted/2 {
			break
		}
		cell := cells[ci]
		hr := raw.Crop(cell.X, cell.Y, ps, ps)
		c.patchQueue = append(c.patchQueue, queuedPatch{
			data: codec.EncodePatch(hr, codec.PatchQuality),
			meta: patchMeta{FrameID: frameID, CaptureAt: now, X: cell.X, Y: cell.Y},
		})
	}
}

// gradRef converts the combined quality gradient (dB per kbps) into a step
// multiplier: a gradient of gradRef maps to one full step of StepKbps.
const gradRef = 0.01

// pacingFactor releases packets at a multiple of the target bitrate, as
// WebRTC's pacer does (factor 2.5): the pacer smooths frame bursts without
// becoming a standing self-inflicted queue, so queuing delay observed by the
// congestion controller reflects the network, not the sender.
const pacingFactor = 2.5

// onSchedule runs every UpdateEvery: one gradient-ascent update of the
// patch bitrate (Equation 2) and a pacer rate refresh.
func (c *client) onSchedule() {
	b := c.ctrl.TargetKbps()
	c.pacer.SetRateKbps(b * pacingFactor)
	if c.cfg.Scheme != SchemeLiveNAS {
		return
	}
	if b < c.cfg.MinVideoKbps {
		// Vanilla-WebRTC fallback (§5.1).
		c.recordGrad(0)
		return
	}
	if c.suspended {
		// Server detected gain saturation: minimum patch trickle (§6.1).
		c.patchKbps = c.cfg.MinPatchKbps
		c.recordGrad(0)
		return
	}
	if !c.haveFB {
		// No DNN feedback yet: hold the initial rate (§5.1 initial 100 kbps).
		c.recordGrad(0)
		return
	}

	// dQ_DNN/dp: slope between the two most recent DNN quality points,
	// per kbps of patch bandwidth spent in that epoch (§5.1, Figure 4).
	gDNN := 0.0
	if c.fbPatchK > 1 {
		gDNN = (c.fbCurQ - c.fbPrevQ) / c.fbPatchK
	}
	// dQ_video/dp = -dQ_video/dv, from the category's normalized
	// bitrate-quality curve scaled to the observed absolute quality. Above
	// ~40 dB encoding is perceptually transparent and additional video
	// bitrate buys nothing, so the marginal value tapers to zero there —
	// the measured-PSNR analogue of the curve flattening at its top end.
	v := b - c.patchKbps
	if v < c.cfg.MinVideoKbps {
		v = c.cfg.MinVideoKbps
	}
	var gVid float64
	if c.cfg.FunctionalCodec && c.lastLR != nil {
		// §9 extension: probe the codec at two bitrates around the current
		// operating point and measure the local slope directly. A
		// functional codec makes this cheap; we emulate it with two
		// intra-only scratch encodes of the latest captured frame.
		gVid = -c.probeVideoSlope(v)
	} else {
		// Normalized-curve estimate (§5.1), scaled to the observed
		// absolute quality. Above ~40 dB encoding is perceptually
		// transparent and additional video bitrate buys nothing, so the
		// marginal value tapers to zero there.
		nq := NormalizedQuality(c.cfg.Cat, v)
		scaleNQ := 0.0
		if nq > 0 {
			scaleNQ = c.videoQ / nq
		}
		sat := (42 - c.videoQ) / 6
		if sat < 0 {
			sat = 0
		}
		if sat > 1 {
			sat = 1
		}
		gVid = -scaleNQ * NormalizedQualitySlope(c.cfg.Cat, v) * sat
	}

	g := c.cfg.Gamma*gDNN + gVid
	delta := c.cfg.StepKbps * g / gradRef
	if delta > 2*c.cfg.StepKbps {
		delta = 2 * c.cfg.StepKbps
	}
	if delta < -2*c.cfg.StepKbps {
		delta = -2 * c.cfg.StepKbps
	}
	c.patchKbps += delta
	if c.patchKbps < c.cfg.MinPatchKbps {
		c.patchKbps = c.cfg.MinPatchKbps
	}
	if max := 0.5 * b; c.patchKbps > max {
		c.patchKbps = max
	}
	c.recordGrad(g)
}

func (c *client) recordGrad(g float64) {
	p := GradPoint{
		T:          c.s.Now(),
		Gradient:   g,
		PatchKbps:  c.currentPatchKbps(),
		VideoKbps:  c.videoKbps(),
		TargetKbps: c.ctrl.TargetKbps(),
	}
	c.gradSeries = append(c.gradSeries, p)
	c.reg.Emit(p.T, "scheduler_split",
		telemetry.Num("gradient_db_per_kbps", p.Gradient),
		telemetry.Num("patch_kbps", p.PatchKbps),
		telemetry.Num("video_kbps", p.VideoKbps),
		telemetry.Num("target_kbps", p.TargetKbps),
	)
}

// probeVideoSlope measures dQvideo/dv (dB per kbps) by encoding the latest
// frame at v*(1-delta) and v*(1+delta) with throwaway intra encoders.
func (c *client) probeVideoSlope(v float64) float64 {
	const delta = 0.25
	lo, hi := v*(1-delta), v*(1+delta)
	q := func(kbps float64) float64 {
		enc := codec.NewEncoder(codec.Config{Profile: c.cfg.Profile, W: c.lastLR.W, H: c.lastLR.H})
		enc.Encode(c.lastLR, int(kbps*1000/c.cfg.FPS))
		return metrics.PSNR(c.lastLR, enc.Reconstructed())
	}
	dv := hi - lo
	if dv <= 0 {
		return 0
	}
	slope := (q(hi) - q(lo)) / dv
	if slope < 0 {
		slope = 0 // measurement noise; quality never truly decreases in rate
	}
	return slope
}

// onServerMsg handles the reverse-path message: GCC feedback, key-frame
// requests, and LiveNAS epoch feedback.
func (c *client) onServerMsg(m serverMsg) {
	if len(m.acks) > 0 || m.lost > 0 {
		c.ctrl.OnFeedback(c.s.Now(), m.acks, m.lost)
	}
	if m.needKeyFrame {
		c.enc.ForceKeyFrame()
	}
	if m.hasEpoch {
		c.haveFB = true
		c.fbPrevQ = m.qdnnPrev
		c.fbCurQ = m.qdnnCur
		c.fbPatchK = m.epochPatchK
		wasSuspended := c.suspended
		c.suspended = m.trainingState == stateSuspended
		if wasSuspended && !c.suspended {
			// Scene change detected: re-bootstrap the feedback process
			// (§6.1 "it sets the patch bitrate to initial value").
			c.patchKbps = c.cfg.InitPatchKbps
			c.haveFB = false
		}
	}
}
