package fleet

import (
	"testing"
	"time"

	"livenas/internal/vidgen"
)

func TestAllocateProportional(t *testing.T) {
	keys := []string{"a", "b", "c"}
	w := map[string]float64{"a": 3, "b": 2, "c": 1}
	got := Allocate(keys, w, 6, 6)
	// D'Hondt over weights 3:2:1 with 6 slots → 3, 2, 1.
	if got["a"] != 3 || got["b"] != 2 || got["c"] != 1 {
		t.Fatalf("allocation %v, want a:3 b:2 c:1", got)
	}
}

func TestAllocateCapAndTies(t *testing.T) {
	keys := []string{"x", "y"}
	w := map[string]float64{"x": 10, "y": 10}
	// Equal weights: ties break toward the earlier key, alternating.
	got := Allocate(keys, w, 3, 8)
	if got["x"] != 2 || got["y"] != 1 {
		t.Fatalf("tie allocation %v, want x:2 y:1 (earlier key wins ties)", got)
	}
	// Cap diverts slots to the other stream.
	got = Allocate(keys, map[string]float64{"x": 100, "y": 1}, 4, 2)
	if got["x"] != 2 || got["y"] != 2 {
		t.Fatalf("capped allocation %v, want x:2 y:2", got)
	}
	// Everyone capped: leftover slots stay unallocated.
	got = Allocate(keys, w, 10, 2)
	if got["x"]+got["y"] != 4 {
		t.Fatalf("fully capped allocation %v, want total 4", got)
	}
}

func TestAllocateDegenerate(t *testing.T) {
	if got := Allocate(nil, nil, 4, 2); len(got) != 0 {
		t.Fatalf("empty keys: %v", got)
	}
	got := Allocate([]string{"a"}, map[string]float64{"a": -5}, 2, 0)
	if got["a"] != 2 {
		t.Fatalf("non-positive weight floored: %v, want a:2", got)
	}
}

func TestContentWeightDeterministicAndPositive(t *testing.T) {
	cfg := testCfg(7, 40*time.Second)
	w1 := ContentWeight(cfg)
	w2 := ContentWeight(cfg)
	if w1 != w2 {
		t.Fatalf("ContentWeight not deterministic: %v vs %v", w1, w2)
	}
	if w1 <= 0 {
		t.Fatalf("ContentWeight %v, want > 0", w1)
	}
	// Different content should (generically) weigh differently.
	other := testCfg(7, 40*time.Second)
	other.Cat = vidgen.Sports
	if ContentWeight(other) == w1 {
		t.Log("different categories weighed equal (allowed, but suspicious)")
	}
}
