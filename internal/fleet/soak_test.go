package fleet

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"livenas/internal/sweep"
)

// TestFleetSoak drives an oversubscribed admission plan end to end: N
// streamers (default 8; the nightly workflow sets FLEET_SOAK_STREAMS=64)
// arrive faster than the 2-GPU pool drains, every admitted session executes
// concurrently through a sweep runner, and the pool must account to zero
// afterwards. Run under -race this is the fleet layer's concurrency soak —
// registry, pool and telemetry all see worker-parallel traffic.
func TestFleetSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("executes many sessions")
	}
	n := 8
	if env := os.Getenv("FLEET_SOAK_STREAMS"); env != "" {
		v, err := strconv.Atoi(env)
		if err != nil || v < 1 {
			t.Fatalf("FLEET_SOAK_STREAMS=%q: want a positive integer", env)
		}
		n = v
	}
	const dur = 5 * time.Second
	specs := make([]StreamSpec, n)
	for i := range specs {
		// Arrivals at dur/4 spacing keep ~4 streams live per slot pair, so
		// the queue stays non-empty for most of the timeline.
		specs[i] = StreamSpec{
			Key:      fmt.Sprintf("soak%03d", i),
			ArriveAt: time.Duration(i) * dur / 4,
			Cfg:      testCfg(int64(1000+i*7), dur),
			Weight:   float64(1 + i%3),
		}
	}
	p, err := BuildPlan(specs, Options{GPUs: 2, MaxGPUsPerStream: 1, Policy: PolicyQueue})
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Admitted != n {
		t.Fatalf("queue policy admitted %d of %d streams", st.Admitted, n)
	}
	if p.M.Pool().InUse() != 0 {
		t.Fatalf("pool in use %d after plan drain, want 0", p.M.Pool().InUse())
	}

	r := sweep.New(context.Background(), sweep.Options{})
	p.Submit(r)
	if err := p.Collect(); err != nil {
		t.Fatal(err)
	}
	for _, s := range p.M.Sessions() {
		if s.Results == nil {
			t.Fatalf("stream %s: admitted but no results", s.Key)
		}
		if s.Results.FramesDecoded == 0 {
			t.Fatalf("stream %s: zero frames decoded", s.Key)
		}
		if s.Results.Cfg.ChannelKey != s.Key {
			t.Fatalf("stream %s: results tagged %q", s.Key, s.Results.Cfg.ChannelKey)
		}
	}
}
