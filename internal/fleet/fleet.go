// Package fleet turns the single-session ingest core into a multi-tenant
// ingest node: a channel-key session registry with a per-stream lifecycle
// (register → ingest → trained → teardown), admission control with
// backpressure against a shared sr.DevicePool, and a cross-stream GPU
// scheduler that multiplexes N streams onto M devices by quality-weighted
// allocation — the generalization of the paper's §6.2 intra-stream
// multi-GPU model to inter-stream contention (cf. Palantír's
// latency-budgeted SR scheduling and BONES' budgeted enhancement
// allocation, PAPERS.md).
//
// The fleet operates on the same virtual clock as the sessions it admits:
// arrivals, admissions, queue waits and departures are all simulated time,
// so an admission plan is a pure function of (streams, pool, policy) —
// bit-reproducible regardless of how many workers later execute the
// admitted sessions. Determinism contract: sessions are tracked in
// registration order (never map order), departures resolve in (time, key)
// order, the queue is FIFO, and the allocator breaks ties by registration
// order, so fleet tables are byte-identical for any sweep parallelism.
package fleet

import (
	"fmt"
	"time"

	"livenas/internal/core"
	"livenas/internal/sr"
	"livenas/internal/telemetry"
)

// Policy selects what admission does when the GPU pool is saturated.
type Policy int

const (
	// PolicyReject refuses over-capacity streams outright.
	PolicyReject Policy = iota
	// PolicyDegrade admits over-capacity streams without any GPU: the
	// stream ingests and is delivered bilinear-upscaled (core.SchemeWebRTC),
	// trading quality for availability.
	PolicyDegrade
	// PolicyQueue applies backpressure: over-capacity streams wait in FIFO
	// order and are admitted as departures free capacity.
	PolicyQueue
)

func (p Policy) String() string {
	switch p {
	case PolicyReject:
		return "reject"
	case PolicyDegrade:
		return "degrade"
	default:
		return "queue"
	}
}

// State is a stream's position in the fleet lifecycle.
type State int

const (
	// StateRegistered: channel key reserved, admission not yet decided.
	StateRegistered State = iota
	// StateQueued: waiting for GPU capacity (PolicyQueue backpressure).
	StateQueued
	// StateIngesting: admitted and streaming; its session owns its GPU
	// slots, nn kernel pool and tensor arenas for the stream's lifetime.
	StateIngesting
	// StateTrained: the session ran to completion and its online model is
	// trained; results are attached.
	StateTrained
	// StateRejected: refused at admission (PolicyReject under a full pool).
	StateRejected
	// StateTorndown: departed; GPU slots returned to the pool.
	StateTorndown
)

func (s State) String() string {
	switch s {
	case StateRegistered:
		return "registered"
	case StateQueued:
		return "queued"
	case StateIngesting:
		return "ingesting"
	case StateTrained:
		return "trained"
	case StateRejected:
		return "rejected"
	default:
		return "torndown"
	}
}

// Options configures a fleet Manager.
type Options struct {
	// GPUs is the node's pool size M (default 2, the paper's ingest server).
	GPUs int
	// Device is the per-GPU cost model (zero = sr.RTX2080Ti).
	Device sr.Device
	// Policy selects the over-capacity behaviour (default PolicyReject).
	Policy Policy
	// MaxGPUsPerStream caps one stream's allocation (default 4, > which
	// stitch overhead dominates the paper's intra-frame split).
	MaxGPUsPerStream int
	// Telemetry receives fleet-level counters/gauges and per-stream
	// lifecycle events. Nil installs a fresh registry.
	Telemetry *telemetry.Registry
}

func (o Options) withDefaults() Options {
	if o.GPUs <= 0 {
		o.GPUs = 2
	}
	if o.Device == (sr.Device{}) {
		o.Device = sr.RTX2080Ti()
	}
	if o.MaxGPUsPerStream <= 0 {
		o.MaxGPUsPerStream = 4
	}
	if o.Telemetry == nil {
		o.Telemetry = telemetry.New()
	}
	return o
}

// StreamSpec describes one streamer arriving at the ingest node.
type StreamSpec struct {
	// Key is the stream's channel key, unique per live stream (the RTMP
	// stream-key analogue). Empty keys are rejected.
	Key string
	// ArriveAt is the virtual arrival time. Register processes departures
	// due before it; arrivals must be submitted in non-decreasing order.
	ArriveAt time.Duration
	// Cfg is the stream's session configuration. The manager finalizes it
	// at admission: ChannelKey is set, TrainGPUs/InferGPUs follow the
	// scheduler's allocation, and a degraded admission downgrades Scheme to
	// core.SchemeWebRTC.
	Cfg core.Config
	// Weight is the stream's quality weight — the marginal PSNR gain per
	// compute-nanosecond proxy the allocator shares GPUs by. 0 derives it
	// from the stream's content via ContentWeight.
	Weight float64
}

// Session is one registered stream's fleet-side record.
type Session struct {
	Key      string
	State    State
	Degraded bool // admitted without GPUs under PolicyDegrade

	// GPUs is the allocation granted at admission (0 for degraded or
	// rejected streams).
	GPUs int
	// Weight is the quality weight used by the allocator.
	Weight float64

	ArriveAt time.Duration // registration time
	AdmitAt  time.Duration // admission time (== ArriveAt unless queued)
	DepartAt time.Duration // teardown time (admitted streams only)

	// Cfg is the finalized session config the stream runs with.
	Cfg core.Config
	// Results holds the session's results once the stream has run.
	Results *core.Results

	handle waiter // pending sweep execution, set by Submit
}

// waiter abstracts the sweep handle so Session does not depend on the
// sweep package (fleet is below sweep in the execution stack; only the
// Plan runner glue sees both).
type waiter interface {
	Wait() (*core.Results, error)
}

// AdmitLatency is how long the stream waited for capacity: zero for
// immediately admitted streams, the backpressure delay for queued ones.
// Meaningless for rejected streams (which were never admitted).
func (s *Session) AdmitLatency() time.Duration { return s.AdmitAt - s.ArriveAt }

// Admitted reports whether the stream was admitted to ingest (possibly
// degraded).
func (s *Session) Admitted() bool {
	switch s.State {
	case StateIngesting, StateTrained, StateTorndown:
		return true
	default:
		return false
	}
}

// ErrDuplicateKey is returned by Register when the channel key is already
// live (registered and not yet torn down or rejected).
type ErrDuplicateKey struct{ Key string }

func (e ErrDuplicateKey) Error() string {
	return fmt.Sprintf("fleet: channel key %q already registered", e.Key)
}
