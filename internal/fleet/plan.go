package fleet

import (
	"fmt"
	"sort"
	"time"

	"livenas/internal/sweep"
)

// Plan is a completed virtual admission timeline for a batch of streams:
// every arrival registered, every departure resolved, every queued stream
// either admitted or still waiting when the node drained. The admitted
// sessions' finalized configs are ready for execution; Submit/Collect run
// them through a sweep.Runner in registration order, so results are
// bit-reproducible for any worker count (the runner's submission-order
// Collect contract).
type Plan struct {
	M *Manager
}

// BuildPlan registers every spec (in slice order; arrivals must be
// non-decreasing) against a fresh Manager and runs the virtual timeline to
// completion. Spec errors (duplicate live key, empty key, out-of-order
// arrival) abort the plan.
func BuildPlan(specs []StreamSpec, o Options) (*Plan, error) {
	m := NewManager(o)
	for i, spec := range specs {
		if _, err := m.Register(spec); err != nil {
			return nil, fmt.Errorf("fleet: spec %d: %w", i, err)
		}
	}
	m.Finish()
	return &Plan{M: m}, nil
}

// Submit sends every admitted stream's session to the runner in
// registration order. Rejected streams (and queued streams that never got
// capacity) are skipped — they have no session to run.
func (p *Plan) Submit(r *sweep.Runner) {
	for _, s := range p.M.Sessions() {
		if s.Admitted() {
			s.handle = r.Go(s.Cfg)
		}
	}
}

// Collect waits for every submitted session and attaches its Results, in
// registration order; the first session error aborts.
func (p *Plan) Collect() error {
	for _, s := range p.M.Sessions() {
		if s.handle == nil {
			continue
		}
		res, err := s.handle.Wait()
		if err != nil {
			return fmt.Errorf("fleet: stream %q: %w", s.Key, err)
		}
		s.Results = res
	}
	return nil
}

// Stats summarizes a plan's admission timeline.
type Stats struct {
	Streams  int // registered arrivals
	Admitted int // granted GPUs (immediately or after queueing)
	Degraded int // admitted without GPUs (PolicyDegrade)
	Rejected int // refused (PolicyReject)
	Starved  int // queued and never admitted

	// GPUSlotSeconds is the integral of held slots over time; Utilization
	// divides it by pool capacity × the busy span (first arrival to last
	// departure).
	GPUSlotSeconds float64
	Utilization    float64

	// Admission-latency distribution over admitted, non-degraded streams
	// (degraded streams never wait — that is the policy's point).
	AdmitP50 time.Duration
	AdmitP99 time.Duration
}

// Stats computes the plan's admission summary. Pure arithmetic over the
// recorded timeline — deterministic, independent of execution order.
func (p *Plan) Stats() Stats {
	var st Stats
	var first, last time.Duration
	var lats []time.Duration
	for i, s := range p.M.Sessions() {
		st.Streams++
		if i == 0 || s.ArriveAt < first {
			first = s.ArriveAt
		}
		switch {
		case s.State == StateRejected:
			st.Rejected++
			continue
		case s.State == StateQueued:
			st.Starved++
			continue
		case s.Degraded:
			st.Degraded++
		default:
			st.Admitted++
			lats = append(lats, s.AdmitLatency())
		}
		if s.DepartAt > last {
			last = s.DepartAt
		}
		st.GPUSlotSeconds += float64(s.GPUs) * (s.DepartAt - s.AdmitAt).Seconds()
	}
	if span := (last - first).Seconds(); span > 0 {
		st.Utilization = st.GPUSlotSeconds / (float64(p.M.Pool().Total()) * span)
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		st.AdmitP50 = lats[len(lats)/2]
		st.AdmitP99 = lats[(len(lats)*99)/100]
	}
	return st
}
