package fleet

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"livenas/internal/core"
	"livenas/internal/telemetry"
	"livenas/internal/trace"
	"livenas/internal/vidgen"
)

// testCfg mirrors core's reduced-resolution test geometry (1/25 of the
// paper's 1080p sessions) so fleet tests stay fast.
func testCfg(seed int64, dur time.Duration) core.Config {
	return core.Config{
		Cat:           vidgen.JustChatting,
		Seed:          seed,
		Native:        trace.Resolution{Name: "384x216", W: 384, H: 216},
		Ingest:        trace.Resolution{Name: "192x108", W: 192, H: 108},
		FPS:           10,
		Duration:      dur,
		Scheme:        core.SchemeLiveNAS,
		PatchSize:     24,
		MetricEvery:   2 * time.Second,
		Channels:      6,
		MinVideoKbps:  40,
		GCCInitKbps:   160,
		MTU:           240,
		StepKbps:      20,
		InitPatchKbps: 20,
		MinPatchKbps:  5,
		Trace:         trace.FCCUplink(seed+11, dur+time.Minute, 250),
	}
}

func spec(key string, at time.Duration, seed int64, dur time.Duration) StreamSpec {
	return StreamSpec{Key: key, ArriveAt: at, Cfg: testCfg(seed, dur), Weight: 1}
}

func TestDuplicateChannelKey(t *testing.T) {
	m := NewManager(Options{GPUs: 4})
	if _, err := m.Register(spec("alice", 0, 1, 30*time.Second)); err != nil {
		t.Fatalf("first register: %v", err)
	}
	_, err := m.Register(spec("alice", time.Second, 2, 30*time.Second))
	var dup ErrDuplicateKey
	if !errors.As(err, &dup) || dup.Key != "alice" {
		t.Fatalf("duplicate live key: got %v, want ErrDuplicateKey{alice}", err)
	}
	// After the stream departs, the key is free for a new session.
	if err := m.Teardown("alice"); err != nil {
		t.Fatalf("teardown: %v", err)
	}
	if _, err := m.Register(spec("alice", 2*time.Second, 3, 30*time.Second)); err != nil {
		t.Fatalf("re-register after teardown: %v", err)
	}
	if _, err := m.Register(StreamSpec{Key: "", ArriveAt: 3 * time.Second, Cfg: testCfg(4, time.Minute)}); err == nil {
		t.Fatal("empty channel key admitted")
	}
}

func TestRejectionUnderFullPoolEmitsBackpressure(t *testing.T) {
	reg := telemetry.New()
	m := NewManager(Options{GPUs: 2, MaxGPUsPerStream: 1, Policy: PolicyReject, Telemetry: reg})
	for i, key := range []string{"a", "b", "c"} {
		s, err := m.Register(spec(key, 0, int64(i+1), time.Minute))
		if err != nil {
			t.Fatalf("register %s: %v", key, err)
		}
		if i < 2 && s.State != StateIngesting {
			t.Fatalf("stream %s: state %s, want ingesting", key, s.State)
		}
		if i == 2 && s.State != StateRejected {
			t.Fatalf("stream c: state %s, want rejected", s.State)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["fleet_streams_rejected"]; got != 1 {
		t.Fatalf("fleet_streams_rejected = %d, want 1", got)
	}
	var sawBP, sawReject bool
	for _, ev := range reg.Events() {
		switch ev.Type {
		case "fleet_backpressure":
			sawBP = true
		case "fleet_reject":
			sawReject = true
		}
	}
	if !sawBP || !sawReject {
		t.Fatalf("backpressure/reject events: got %v/%v, want both", sawBP, sawReject)
	}
}

func TestDegradePolicyAdmitsWithoutGPU(t *testing.T) {
	m := NewManager(Options{GPUs: 1, MaxGPUsPerStream: 1, Policy: PolicyDegrade})
	if _, err := m.Register(spec("a", 0, 1, time.Minute)); err != nil {
		t.Fatal(err)
	}
	s, err := m.Register(spec("b", 0, 2, time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Degraded || s.GPUs != 0 || s.State != StateIngesting {
		t.Fatalf("over-capacity stream: degraded=%v gpus=%d state=%s", s.Degraded, s.GPUs, s.State)
	}
	if s.Cfg.Scheme != core.SchemeWebRTC {
		t.Fatalf("degraded scheme %v, want WebRTC (bilinear fallback)", s.Cfg.Scheme)
	}
	if m.Pool().InUse() != 1 {
		t.Fatalf("pool in use %d, want 1 (degraded stream holds no slot)", m.Pool().InUse())
	}
}

func TestQueueReadmissionAfterCapacityFrees(t *testing.T) {
	m := NewManager(Options{GPUs: 1, MaxGPUsPerStream: 1, Policy: PolicyQueue})
	a, err := m.Register(spec("a", 0, 1, 30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Register(spec("b", 10*time.Second, 2, 30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if b.State != StateQueued || m.QueueDepth() != 1 {
		t.Fatalf("b: state %s queue %d, want queued/1", b.State, m.QueueDepth())
	}
	// a departs at t=30s; b should be admitted exactly then, having waited
	// 20s of virtual time under backpressure.
	m.Finish()
	if a.State != StateTorndown {
		t.Fatalf("a: state %s, want torndown", a.State)
	}
	if b.State != StateTorndown || b.AdmitAt != 30*time.Second {
		t.Fatalf("b: state %s admit at %v, want torndown at 30s", b.State, b.AdmitAt)
	}
	if got := b.AdmitLatency(); got != 20*time.Second {
		t.Fatalf("b admit latency %v, want 20s", got)
	}
	if m.Pool().InUse() != 0 {
		t.Fatalf("pool in use %d after drain, want 0", m.Pool().InUse())
	}
}

func TestExplicitTeardownFreesQueuedStream(t *testing.T) {
	m := NewManager(Options{GPUs: 1, MaxGPUsPerStream: 1, Policy: PolicyQueue})
	if _, err := m.Register(spec("a", 0, 1, time.Minute)); err != nil {
		t.Fatal(err)
	}
	b, err := m.Register(spec("b", time.Second, 2, time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Teardown("a"); err != nil {
		t.Fatal(err)
	}
	if b.State != StateIngesting || b.AdmitAt != time.Second {
		t.Fatalf("b after a's teardown: state %s admit %v, want ingesting at 1s", b.State, b.AdmitAt)
	}
	if err := m.Teardown("nope"); err == nil {
		t.Fatal("teardown of unknown key succeeded")
	}
}

// TestTeardownMidEpochReleasesPool cancels a live ingest mid-run with a
// dedicated kernel pool and checks the stream's nn.Pool workers are joined
// — the goroutine-leak contract teardown must keep.
func TestTeardownMidEpochReleasesPool(t *testing.T) {
	before := runtime.NumGoroutine()
	m := NewManager(Options{GPUs: 2})
	cfg := testCfg(5, 30*time.Second)
	cfg.KernelWorkers = 2 // per-stream dedicated nn pool
	if _, err := m.Register(StreamSpec{Key: "live", Cfg: cfg, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := m.Ingest(ctx, "live")
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the session enter its epochs
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ingest returned %v, want context.Canceled", err)
	}
	if err := m.Teardown("live"); err != nil {
		t.Fatal(err)
	}
	if m.Pool().InUse() != 0 {
		t.Fatalf("pool in use %d after teardown, want 0", m.Pool().InUse())
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("goroutines %d > baseline %d after mid-epoch teardown (kernel pool leaked)", got, before)
	}
}

func TestIngestLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full session")
	}
	m := NewManager(Options{GPUs: 2})
	s, err := m.Register(spec("live", 0, 6, 20*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Ingest(context.Background(), "live")
	if err != nil {
		t.Fatal(err)
	}
	if s.State != StateTrained || res.FramesDecoded == 0 {
		t.Fatalf("after ingest: state %s frames %d", s.State, res.FramesDecoded)
	}
	if res.Cfg.ChannelKey != "live" {
		t.Fatalf("session config channel key %q, want live", res.Cfg.ChannelKey)
	}
	if err := m.Teardown("live"); err != nil {
		t.Fatal(err)
	}
	if s.State != StateTorndown {
		t.Fatalf("after teardown: state %s", s.State)
	}
}
