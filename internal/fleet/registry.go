package fleet

import (
	"context"
	"fmt"
	"sort"
	"time"

	"livenas/internal/core"
	"livenas/internal/sr"
	"livenas/internal/telemetry"
)

// Manager is the ingest node's multi-tenant session registry. It runs on a
// virtual clock: Register advances it to each arrival, resolving due
// departures (and any queued admissions they unblock) first, so the whole
// admission timeline is a deterministic function of the stream specs, the
// pool size and the policy.
//
// Manager is not safe for concurrent use; it models one node's admission
// sequence. The session *executions* it plans are what run in parallel
// (sweep.Runner), and those never touch the manager.
type Manager struct {
	opts Options
	pool *sr.DevicePool
	reg  *telemetry.Registry

	now      time.Duration
	sessions map[string]*Session
	order    []*Session // registration order — the deterministic iteration order

	queue      []*Session // FIFO backpressure queue (PolicyQueue)
	departures []*Session // pending departures sorted by (DepartAt, Key)

	// Fleet-level instruments (prefix "fleet_").
	cAdmitted, cDegraded, cRejected, cQueued *telemetry.Counter
	gInUse, gQueueDepth, gActive             *telemetry.Gauge
	hAdmitMS                                 *telemetry.Histogram
}

// NewManager returns a manager for a node with o.GPUs devices.
func NewManager(o Options) *Manager {
	o = o.withDefaults()
	m := &Manager{
		opts:     o,
		pool:     sr.NewDevicePool(o.Device, o.GPUs),
		reg:      o.Telemetry,
		sessions: map[string]*Session{},
	}
	m.cAdmitted = m.reg.Counter("fleet_streams_admitted")
	m.cDegraded = m.reg.Counter("fleet_streams_degraded")
	m.cRejected = m.reg.Counter("fleet_streams_rejected")
	m.cQueued = m.reg.Counter("fleet_streams_queued")
	m.gInUse = m.reg.Gauge("fleet_gpu_in_use")
	m.gQueueDepth = m.reg.Gauge("fleet_queue_depth")
	m.gActive = m.reg.Gauge("fleet_active_streams")
	m.reg.Gauge("fleet_gpu_total").Set(float64(o.GPUs))
	m.hAdmitMS = m.reg.Histogram("fleet_admit_latency_ms", telemetry.ExpBuckets(1, 2, 20))
	return m
}

// Pool exposes the node's GPU pool (read-mostly: capacity and utilization).
func (m *Manager) Pool() *sr.DevicePool { return m.pool }

// Now returns the manager's virtual clock.
func (m *Manager) Now() time.Duration { return m.now }

// Sessions returns every registered session in registration order. The
// slice is the manager's own bookkeeping; treat it as read-only.
func (m *Manager) Sessions() []*Session { return m.order }

// Lookup returns the session for a channel key, or nil.
func (m *Manager) Lookup(key string) *Session { return m.sessions[key] }

// QueueDepth returns the number of streams currently waiting for capacity.
func (m *Manager) QueueDepth() int { return len(m.queue) }

// Register admits (or queues, degrades, rejects — per policy) a stream
// arriving at spec.ArriveAt. Arrivals must be non-decreasing in time; a
// duplicate live channel key returns ErrDuplicateKey. The returned session
// records the admission outcome; for admitted streams Cfg is finalized
// (ChannelKey, GPU allocation, degraded scheme) and DepartAt is scheduled
// at AdmitAt + Cfg.Duration.
func (m *Manager) Register(spec StreamSpec) (*Session, error) {
	if spec.Key == "" {
		return nil, fmt.Errorf("fleet: empty channel key")
	}
	if spec.ArriveAt < m.now {
		return nil, fmt.Errorf("fleet: arrival at %v before clock %v (register in arrival order)", spec.ArriveAt, m.now)
	}
	if s, ok := m.sessions[spec.Key]; ok && s.State != StateTorndown && s.State != StateRejected {
		return nil, ErrDuplicateKey{Key: spec.Key}
	}
	m.AdvanceTo(spec.ArriveAt)

	cfg := spec.Cfg.Defaulted()
	cfg.ChannelKey = spec.Key
	weight := spec.Weight
	if weight <= 0 {
		weight = ContentWeight(cfg)
	}
	s := &Session{
		Key:      spec.Key,
		State:    StateRegistered,
		Weight:   weight,
		ArriveAt: spec.ArriveAt,
		Cfg:      cfg,
	}
	m.sessions[s.Key] = s
	m.order = append(m.order, s)

	if m.pool.Free() > 0 {
		m.admit(s)
		return s, nil
	}

	// Saturated: backpressure. Every over-capacity arrival emits the
	// backpressure event; the policy decides what happens to the stream.
	m.reg.Emit(m.now, "fleet_backpressure",
		telemetry.Str("key", s.Key),
		telemetry.Str("policy", m.opts.Policy.String()),
		telemetry.Num("gpu_in_use", float64(m.pool.InUse())),
		telemetry.Num("queue_depth", float64(len(m.queue))))
	switch m.opts.Policy {
	case PolicyReject:
		s.State = StateRejected
		m.cRejected.Inc()
		m.reg.Emit(m.now, "fleet_reject", telemetry.Str("key", s.Key))
	case PolicyDegrade:
		s.State = StateIngesting
		s.Degraded = true
		s.AdmitAt = m.now
		s.DepartAt = m.now + s.Cfg.Duration
		s.Cfg.Scheme = core.SchemeWebRTC
		s.Cfg.TrainGPUs, s.Cfg.InferGPUs = 1, 1 // cost-model floor; holds no pool slot
		m.scheduleDeparture(s)
		m.cDegraded.Inc()
		m.hAdmitMS.Observe(0)
		m.reg.Emit(m.now, "fleet_degrade", telemetry.Str("key", s.Key))
		m.setGauges()
	default: // PolicyQueue
		s.State = StateQueued
		m.queue = append(m.queue, s)
		m.cQueued.Inc()
		m.setGauges()
	}
	return s, nil
}

// admit grants s its GPU allocation at the current clock and schedules its
// departure. Caller guarantees at least one free slot.
func (m *Manager) admit(s *Session) {
	n := m.grant(s)
	if !m.pool.Acquire(n) {
		panic("fleet: admit with insufficient capacity")
	}
	s.State = StateIngesting
	s.GPUs = n
	s.AdmitAt = m.now
	s.DepartAt = m.now + s.Cfg.Duration
	s.Cfg.TrainGPUs, s.Cfg.InferGPUs = n, n
	m.scheduleDeparture(s)
	m.cAdmitted.Inc()
	m.hAdmitMS.Observe(float64(s.AdmitLatency()) / float64(time.Millisecond))
	m.reg.Emit(m.now, "fleet_admit",
		telemetry.Str("key", s.Key),
		telemetry.Num("gpus", float64(n)),
		telemetry.Num("wait_ms", float64(s.AdmitLatency())/float64(time.Millisecond)),
		telemetry.Num("weight", s.Weight))
	m.setGauges()
}

// grant sizes the arriving stream's allocation: its D'Hondt share of the
// whole pool against the currently active streams' weights, clamped to
// [1, free, MaxGPUsPerStream]. Active streams keep their allocations
// (slots are sticky for a stream's lifetime — re-slicing a live session's
// GPUs would invalidate its simulated training timeline), so the share
// only shapes how much of the remaining capacity a newcomer may claim.
func (m *Manager) grant(s *Session) int {
	keys := []string{s.Key}
	weights := map[string]float64{s.Key: s.Weight}
	for _, o := range m.order {
		if o != s && o.State == StateIngesting && !o.Degraded {
			keys = append(keys, o.Key)
			weights[o.Key] = o.Weight
		}
	}
	ideal := Allocate(keys, weights, m.pool.Total(), m.opts.MaxGPUsPerStream)[s.Key]
	n := ideal
	if free := m.pool.Free(); n > free {
		n = free
	}
	if n > m.opts.MaxGPUsPerStream {
		n = m.opts.MaxGPUsPerStream
	}
	if n < 1 {
		n = 1
	}
	return n
}

// AdvanceTo moves the virtual clock to t, resolving departures due at or
// before t in (time, key) order and admitting queued streams as capacity
// frees.
func (m *Manager) AdvanceTo(t time.Duration) {
	for len(m.departures) > 0 && m.departures[0].DepartAt <= t {
		s := m.departures[0]
		m.departures = m.departures[1:]
		m.now = s.DepartAt
		m.teardown(s)
	}
	if t > m.now {
		m.now = t
	}
}

// Teardown ends a live stream at the current clock: its GPU slots return
// to the pool and any queued stream that now fits is admitted. Tearing
// down an already-departed or rejected stream is a no-op; an unknown key
// is an error.
func (m *Manager) Teardown(key string) error {
	s, ok := m.sessions[key]
	if !ok {
		return fmt.Errorf("fleet: teardown of unknown channel key %q", key)
	}
	switch s.State {
	case StateTorndown, StateRejected:
		return nil
	case StateQueued:
		for i, q := range m.queue {
			if q == s {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				break
			}
		}
		s.State = StateTorndown
		s.DepartAt = m.now
		m.setGauges()
		return nil
	case StateRegistered, StateIngesting, StateTrained:
		// Live (or registered mid-admission): handled below.
	}
	// Cancel the scheduled departure and depart now.
	for i, d := range m.departures {
		if d == s {
			m.departures = append(m.departures[:i], m.departures[i+1:]...)
			break
		}
	}
	s.DepartAt = m.now
	m.teardown(s)
	return nil
}

// teardown releases s's slots, marks it departed and drains the queue.
func (m *Manager) teardown(s *Session) {
	if s.GPUs > 0 {
		m.pool.Release(s.GPUs)
	}
	if s.State == StateIngesting {
		s.State = StateTorndown
	} else if s.State == StateTrained {
		s.State = StateTorndown
	}
	m.reg.Emit(m.now, "fleet_teardown",
		telemetry.Str("key", s.Key),
		telemetry.Num("gpus", float64(s.GPUs)))
	m.setGauges()
	for len(m.queue) > 0 && m.pool.Free() > 0 {
		next := m.queue[0]
		m.queue = m.queue[1:]
		m.admit(next)
	}
}

// Finish runs the virtual timeline to completion: every scheduled
// departure resolves (admitting queued streams as capacity frees) until
// the node is idle.
func (m *Manager) Finish() {
	for len(m.departures) > 0 {
		m.AdvanceTo(m.departures[0].DepartAt)
	}
	m.setGauges()
}

// scheduleDeparture inserts s into the pending-departure list keeping it
// sorted by (DepartAt, Key) — the deterministic resolution order.
func (m *Manager) scheduleDeparture(s *Session) {
	i := sort.Search(len(m.departures), func(i int) bool {
		d := m.departures[i]
		if d.DepartAt != s.DepartAt {
			return d.DepartAt > s.DepartAt
		}
		return d.Key > s.Key
	})
	m.departures = append(m.departures, nil)
	copy(m.departures[i+1:], m.departures[i:])
	m.departures[i] = s
}

func (m *Manager) setGauges() {
	m.gInUse.Set(float64(m.pool.InUse()))
	m.gQueueDepth.Set(float64(len(m.queue)))
	active := 0
	for _, s := range m.order {
		if s.State == StateIngesting || s.State == StateTrained {
			active++
		}
	}
	m.gActive.Set(float64(active))
}

// Ingest runs an admitted stream's session inline on the calling
// goroutine (the live-server path; experiment plans go through Plan/
// sweep instead). On success the session holds its Results and moves to
// StateTrained; teardown remains the caller's step. The session's config
// is run as finalized at admission, so a dedicated nn kernel pool
// (Cfg.KernelWorkers > 0) is owned by this stream and joined when the run
// ends.
func (m *Manager) Ingest(ctx context.Context, key string) (*core.Results, error) {
	s, ok := m.sessions[key]
	if !ok {
		return nil, fmt.Errorf("fleet: ingest of unknown channel key %q", key)
	}
	if s.State != StateIngesting {
		return nil, fmt.Errorf("fleet: ingest of %q in state %s", key, s.State)
	}
	res, err := core.RunContext(ctx, s.Cfg)
	if err != nil {
		return nil, err
	}
	s.Results = res
	s.State = StateTrained
	m.reg.Emit(m.now, "fleet_trained", telemetry.Str("key", s.Key))
	return res, nil
}
