package fleet

import (
	"context"
	"fmt"
	"testing"
	"time"

	"livenas/internal/sweep"
)

func fleetSpecs(n int, dur time.Duration) []StreamSpec {
	specs := make([]StreamSpec, n)
	for i := range specs {
		specs[i] = StreamSpec{
			Key:      fmt.Sprintf("ch%02d", i),
			ArriveAt: time.Duration(i) * 5 * time.Second,
			Cfg:      testCfg(int64(i+1), dur),
			Weight:   float64(1 + i%3),
		}
	}
	return specs
}

// timeline flattens a plan's admission outcome for equality checks.
func timeline(p *Plan) string {
	out := ""
	for _, s := range p.M.Sessions() {
		out += fmt.Sprintf("%s %s gpus=%d deg=%v arrive=%v admit=%v depart=%v\n",
			s.Key, s.State, s.GPUs, s.Degraded, s.ArriveAt, s.AdmitAt, s.DepartAt)
	}
	return out
}

func TestPlanDeterministic(t *testing.T) {
	for _, pol := range []Policy{PolicyReject, PolicyDegrade, PolicyQueue} {
		opts := Options{GPUs: 3, MaxGPUsPerStream: 2, Policy: pol}
		p1, err := BuildPlan(fleetSpecs(8, 20*time.Second), opts)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		p2, err := BuildPlan(fleetSpecs(8, 20*time.Second), opts)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if a, b := timeline(p1), timeline(p2); a != b {
			t.Fatalf("%v: plan not deterministic:\n%s\nvs\n%s", pol, a, b)
		}
	}
}

func TestPlanPoliciesDiffer(t *testing.T) {
	// 8 arrivals every 5s, 20s sessions, 3 GPUs, ≤2 per stream: demand
	// overlaps enough that each policy must leave its signature.
	specs := fleetSpecs(8, 20*time.Second)
	mk := func(pol Policy) Stats {
		p, err := BuildPlan(specs, Options{GPUs: 3, MaxGPUsPerStream: 2, Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		return p.Stats()
	}
	rej := mk(PolicyReject)
	deg := mk(PolicyDegrade)
	que := mk(PolicyQueue)
	if rej.Rejected == 0 {
		t.Fatalf("reject policy rejected nothing: %+v", rej)
	}
	if deg.Degraded == 0 || deg.Rejected != 0 {
		t.Fatalf("degrade policy: %+v", deg)
	}
	if que.Rejected != 0 || que.Degraded != 0 {
		t.Fatalf("queue policy refused streams: %+v", que)
	}
	if que.AdmitP99 == 0 {
		t.Fatalf("queue policy shows no admission latency: %+v", que)
	}
	if rej.AdmitP99 != 0 {
		t.Fatalf("reject policy should never wait: %+v", rej)
	}
	for _, st := range []Stats{rej, deg, que} {
		if st.Utilization <= 0 || st.Utilization > 1 {
			t.Fatalf("utilization %v outside (0,1]: %+v", st.Utilization, st)
		}
	}
}

// TestPlanExecutionWorkerInvariant runs the same plan through sweep runners
// at 1 and 4 workers and requires bitwise-identical per-stream results —
// the fleet extension of the repo's determinism contract.
func TestPlanExecutionWorkerInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full sessions")
	}
	specs := fleetSpecs(4, 15*time.Second)
	run := func(workers int) []string {
		p, err := BuildPlan(specs, Options{GPUs: 2, MaxGPUsPerStream: 1, Policy: PolicyQueue})
		if err != nil {
			t.Fatal(err)
		}
		r := sweep.New(context.Background(), sweep.Options{Workers: workers})
		p.Submit(r)
		if err := p.Collect(); err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, s := range p.M.Sessions() {
			if s.Results == nil {
				t.Fatalf("admitted stream %s has no results", s.Key)
			}
			out = append(out, fmt.Sprintf("%s psnr=%.6f frames=%d", s.Key, s.Results.AvgPSNR, s.Results.FramesDecoded))
		}
		return out
	}
	one := run(1)
	four := run(4)
	for i := range one {
		if one[i] != four[i] {
			t.Fatalf("worker-count dependence:\n1: %s\n4: %s", one[i], four[i])
		}
	}
}
