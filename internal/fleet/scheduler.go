package fleet

import (
	"livenas/internal/core"
	"livenas/internal/vidgen"
)

// ContentWeight derives a stream's quality weight from its content: the
// anytime scheduler's gradient-energy proxy (internal/sr, §6.2 extension)
// evaluated on a mid-session probe frame, divided by the stream's per-pixel
// compute cost on its device. High-detail content gains the most PSNR from
// DNN super-resolution (bilinear blurs exactly the high-gradient regions),
// so energy-per-compute-NS is the marginal-gain-per-GPU-nanosecond signal
// the cross-stream allocator shares the pool by.
//
// The probe is a pure function of the stream's config (category, seed,
// geometry, duration): one native frame at the session midpoint, box-
// downscaled to ingest resolution — the same luma the server's processor
// would see — with the fixed-point ×256/area normalization the anytime
// ranker uses, so equal content yields bit-equal weights everywhere.
func ContentWeight(cfg core.Config) float64 {
	cfg = cfg.Defaulted()
	if err := cfg.Validate(); err != nil {
		return 1
	}
	scale := cfg.Scale()
	src := vidgen.NewSource(cfg.Cat, cfg.Native.W, cfg.Native.H, cfg.Seed, cfg.Duration.Seconds())
	lr := src.FrameAt(cfg.Duration.Seconds() / 2).Downscale(scale)
	var e int64
	for y := 0; y < lr.H; y++ {
		row := lr.Pix[y*lr.W:]
		for x := 0; x < lr.W; x++ {
			if x+1 < lr.W {
				e += absDiff(row[x], row[x+1])
			}
			if y+1 < lr.H {
				e += absDiff(row[x], lr.Pix[(y+1)*lr.W+x])
			}
		}
	}
	area := int64(lr.W * lr.H)
	if area == 0 {
		return 1
	}
	energyPerPix := float64(e*256/area) / 256
	// Per-LR-pixel inference cost on this stream's device: each LR pixel
	// costs its input visit plus scale² output pixels.
	perPixNS := cfg.Device.PatchComputeNS(1, 1, scale, cfg.QuantInt8)
	if perPixNS <= 0 {
		return energyPerPix
	}
	w := energyPerPix / perPixNS
	if w <= 0 {
		// Flat content (e.g. a color-bar slate) still deserves a live slot;
		// floor the weight so the allocator's divisors stay meaningful.
		w = 1e-6
	}
	return w
}

// Allocate shares `slots` GPU slots among streams by quality weight using
// the D'Hondt highest-averages method: slots are awarded one at a time to
// the stream maximizing weight/(granted+1), with per-stream allocations
// capped at maxPerStream. Proportional in the limit, exact at small M, and
// free of the Hamilton paradoxes a largest-remainder rule would add when
// streams churn.
//
// Determinism contract: streams are considered in keys order and ties
// break toward the earlier key (strictly-greater comparison), so equal
// inputs yield identical allocations on every host and worker count. keys
// supplies the order; weights the per-key weight (non-positive weights are
// floored to a tiny epsilon). Streams beyond the cap stop receiving; if
// every stream is capped, remaining slots stay unallocated.
func Allocate(keys []string, weights map[string]float64, slots, maxPerStream int) map[string]int {
	alloc := make(map[string]int, len(keys))
	if len(keys) == 0 || slots <= 0 {
		return alloc
	}
	if maxPerStream <= 0 {
		maxPerStream = slots
	}
	w := make([]float64, len(keys))
	for i, k := range keys {
		w[i] = weights[k]
		if w[i] <= 0 {
			w[i] = 1e-9
		}
	}
	got := make([]int, len(keys))
	for s := 0; s < slots; s++ {
		best, bestQ := -1, 0.0
		for i := range keys {
			if got[i] >= maxPerStream {
				continue
			}
			q := w[i] / float64(got[i]+1)
			if best == -1 || q > bestQ {
				best, bestQ = i, q
			}
		}
		if best == -1 {
			break // everyone capped
		}
		got[best]++
	}
	for i, k := range keys {
		alloc[k] = got[i]
	}
	return alloc
}

func absDiff(a, b uint8) int64 {
	if a > b {
		return int64(a - b)
	}
	return int64(b - a)
}
