package power

import (
	"testing"

	"livenas/internal/codec"
	"livenas/internal/trace"
)

func TestEncode4KMarkup(t *testing.T) {
	// The paper's measured relation: 4K encoding consumes 36.3% (VP9) and
	// 54.7% (VP8) more power than 1080p... applied on top of the pixel-rate
	// scaling; verify at least those margins separate 4K from 1080p.
	for _, p := range []codec.Profile{codec.BX8, codec.BX9} {
		e1080 := Client(p, trace.R1080).Encode
		e4k := Client(p, trace.R4K).Encode
		if e4k <= e1080*1.3 {
			t.Fatalf("%v: 4K encode %v not sufficiently above 1080p %v", p, e4k, e1080)
		}
	}
}

func TestSavingsMatchPaperBand(t *testing.T) {
	// Figure 17: LiveNAS saves ~23% (VP8) and ~16% (VP9) total client power
	// when ingesting 1080p instead of encoding 4K. Allow a generous band.
	s8 := Savings(codec.BX8, trace.R4K, trace.R1080)
	s9 := Savings(codec.BX9, trace.R4K, trace.R1080)
	if s8 < 0.10 || s8 > 0.40 {
		t.Fatalf("BX8 savings %.2f outside [0.10,0.40]", s8)
	}
	if s9 < 0.08 || s9 > 0.35 {
		t.Fatalf("BX9 savings %.2f outside [0.08,0.35]", s9)
	}
	if s8 <= s9 {
		t.Fatalf("BX8 savings (%.2f) should exceed BX9 (%.2f), as in Fig 17", s8, s9)
	}
}

func TestBreakdownComponentsPositive(t *testing.T) {
	b := Client(codec.BX8, trace.R720)
	if b.Capture <= 0 || b.Encode <= 0 || b.Board <= 0 {
		t.Fatalf("breakdown %+v has non-positive component", b)
	}
	if b.Total() != b.Capture+b.Encode+b.Board {
		t.Fatal("total mismatch")
	}
}

func TestEncodeScalesWithResolution(t *testing.T) {
	prev := 0.0
	for _, r := range []trace.Resolution{trace.R540, trace.R720, trace.R1080, trace.R4K} {
		e := Client(codec.BX9, r).Encode
		if e <= prev {
			t.Fatalf("encode power not increasing at %s: %v <= %v", r.Name, e, prev)
		}
		prev = e
	}
}
