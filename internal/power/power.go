// Package power models the ingest client's power draw (§8.2 / Figure 17).
// The paper measures a Jetson TX2 streaming 4K over WebRTC versus LiveNAS
// streaming 1080p (upscaled to the same quality server-side): LiveNAS saves
// 16% (VP9) / 23% (VP8) because 4K encoding costs +36.3% / +54.7% over
// 1080p. The constants below are calibrated to those published relations;
// the structural split (capture device / encoder / rest-of-board) follows
// the paper's Figure 17 breakdown.
package power

import (
	"livenas/internal/codec"
	"livenas/internal/trace"
)

// Breakdown is the client's power draw in watts, by component.
type Breakdown struct {
	Capture float64 // camera/capture pipeline
	Encode  float64 // video encoder
	Board   float64 // SoC + peripherals baseline
}

// Total returns the summed draw in watts.
func (b Breakdown) Total() float64 { return b.Capture + b.Encode + b.Board }

// encodeWatts is the measured-equivalent encoder draw for the TX2 class
// device, per codec and resolution class.
func encodeWatts(p codec.Profile, res trace.Resolution) float64 {
	// 1080p anchors; 4K applies the paper's measured mark-ups
	// (+54.7% BX8/VP8, +36.3% BX9/VP9). Other resolutions scale with
	// pixel rate at a 0.8 exponent (encoders sub-linear in pixels).
	var anchor1080 float64
	var markup4K float64
	switch p {
	case codec.BX9:
		anchor1080 = 1.05
		markup4K = 1.363
	default: // BX8
		anchor1080 = 0.90
		markup4K = 1.547
	}
	switch {
	case res.W >= trace.R4K.W:
		return anchor1080 * 2 * markup4K // 4x pixels at 0.5 efficiency => 2x, plus markup
	case res.W >= trace.R1080.W:
		return anchor1080
	case res.W >= trace.R720.W:
		return anchor1080 * 0.55
	default:
		return anchor1080 * 0.35
	}
}

// Client returns the modelled power breakdown of an ingest client encoding
// at the given resolution and codec profile on a TX2-class board.
func Client(p codec.Profile, res trace.Resolution) Breakdown {
	enc := encodeWatts(p, res)
	return Breakdown{
		Capture: 0.55,
		Encode:  enc,
		Board:   3.55,
	}
}

// Savings returns the fractional power saving of a LiveNAS client (encoding
// at ingestRes) versus a vanilla client encoding at targetRes directly
// (Figure 17's comparison: 4K WebRTC vs 1080p LiveNAS ingest at equal
// delivered quality).
func Savings(p codec.Profile, targetRes, ingestRes trace.Resolution) float64 {
	full := Client(p, targetRes).Total()
	livenas := Client(p, ingestRes).Total()
	return (full - livenas) / full
}
