package edge

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"time"

	"livenas/internal/abr"
)

// RungInfo is one rung of a channel's distribution ladder as advertised in
// its playlist: the network cost of a segment at this rung and the
// effective (perceived-quality) bitrate after the ingest-side enhancement
// boost — the playlist is where the origin tells viewers how much quality
// LiveNAS bought them per bit.
type RungInfo struct {
	Name          string
	Kbps          float64
	EffectiveKbps float64
}

// abrRungs converts the advertised ladder to the ABR package's form.
func abrRungs(rs []RungInfo) []abr.Rung {
	out := make([]abr.Rung, len(rs))
	for i, r := range rs {
		out[i] = abr.Rung{Name: r.Name, Kbps: r.Kbps, EffectiveKbps: r.EffectiveKbps}
	}
	return out
}

// Segment is one fixed-duration piece of a channel's enhanced output at one
// ladder rung. ID is its content address: any two nodes holding a segment
// with the same ID hold the same bytes, which is what lets relays cache and
// deduplicate without trusting upstream bookkeeping.
type Segment struct {
	Channel  string
	Index    int
	Rung     int
	Duration time.Duration
	Data     []byte
	ID       string
}

// SegmentID computes the content address: a truncated SHA-256 over the
// segment identity and payload.
func SegmentID(channel string, index, rung int, data []byte) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s/%d/%d/", channel, index, rung)
	_, _ = h.Write(data) // hash.Hash.Write never errors
	return fmt.Sprintf("%x", h.Sum(nil)[:8])
}

// SyntheticPayload builds the deterministic stand-in payload for a segment
// in experiments and demos: n pseudo-random bytes seeded by the segment
// identity, so content addresses are stable across processes and runs.
func SyntheticPayload(channel string, index, rung, n int) []byte {
	// FNV-1a over the identity seeds a xorshift64* generator.
	seed := uint64(14695981039346656037)
	for _, b := range []byte(fmt.Sprintf("%s/%d/%d", channel, index, rung)) {
		seed = (seed ^ uint64(b)) * 1099511628211
	}
	if seed == 0 {
		seed = 1
	}
	out := make([]byte, n)
	x := seed
	for i := range out {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		out[i] = byte((x * 2685821657736338717) >> 56)
	}
	return out
}

// durUS converts wire microseconds back to a duration.
func durUS(us int64) time.Duration { return time.Duration(us) * time.Microsecond }

// SegmentRef is a playlist entry: one segment index across every rung.
type SegmentRef struct {
	Index int
	PubUS int64    // origin publish time, microseconds
	DurUS int64    // segment duration, microseconds
	IDs   []string // content address per rung
	Sizes []int    // payload bytes per rung
}

// Playlist is a channel's rolling live window: the ladder plus the last
// Window segment refs, oldest first with contiguous indexes. It is the
// HLS media-playlist analogue, pushed (not polled) down the relay tree.
type Playlist struct {
	Channel  string
	Window   int
	Rungs    []RungInfo
	Segments []SegmentRef
}

// Oldest returns the lowest live segment index, or -1 on an empty window.
func (p *Playlist) Oldest() int {
	if len(p.Segments) == 0 {
		return -1
	}
	return p.Segments[0].Index
}

// LiveEdge returns the highest live segment index, or -1 on an empty window.
func (p *Playlist) LiveEdge() int {
	if len(p.Segments) == 0 {
		return -1
	}
	return p.Segments[len(p.Segments)-1].Index
}

// Ref returns the entry for a segment index, or nil if it left the window.
func (p *Playlist) Ref(index int) *SegmentRef {
	o := p.Oldest()
	if o < 0 || index < o || index > p.LiveEdge() {
		return nil
	}
	return &p.Segments[index-o]
}

// Encode serialises the playlist for a MsgPlaylist body. The encoding is
// deterministic (fixed field order, no maps): the same window encodes to
// the same bytes on every node, pinned by TestPlaylistEncodeDeterministic.
func (p *Playlist) Encode() []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		// A playlist is plain data; encoding cannot fail except by a
		// programming error.
		panic(fmt.Sprintf("edge: playlist encode: %v", err))
	}
	return buf.Bytes()
}

// DecodePlaylist parses a MsgPlaylist body. Like the wire package it turns
// decode panics into errors: playlist bytes arrive from the network.
func DecodePlaylist(b []byte) (p *Playlist, err error) {
	defer func() {
		if r := recover(); r != nil {
			p, err = nil, fmt.Errorf("edge: playlist decode: panic: %v", r)
		}
	}()
	var pl Playlist
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&pl); err != nil {
		return nil, fmt.Errorf("edge: playlist decode: %w", err)
	}
	return &pl, nil
}

// Segmenter cuts one channel's enhanced output into the rolling segment
// window: fixed segment duration, one payload per ladder rung per index,
// content-addressed IDs, and eviction past the playlist window. It is the
// origin's per-channel packager; it does no I/O and holds no locks (the
// Origin serialises access).
type Segmenter struct {
	channel string
	segDur  time.Duration
	window  int
	rungs   []RungInfo

	next     int
	playlist Playlist
	cache    map[int][]*Segment // live window, keyed by index
}

// NewSegmenter creates a packager for one channel.
func NewSegmenter(channel string, segDur time.Duration, rungs []RungInfo, window int) *Segmenter {
	if window <= 0 {
		window = 6
	}
	return &Segmenter{
		channel: channel,
		segDur:  segDur,
		window:  window,
		rungs:   rungs,
		playlist: Playlist{
			Channel: channel,
			Window:  window,
			Rungs:   rungs,
		},
		cache: make(map[int][]*Segment),
	}
}

// Push cuts the next segment from one payload per rung, publishes it into
// the playlist at time at, evicts anything that fell out of the window,
// and returns the new playlist entry.
func (g *Segmenter) Push(at time.Duration, payloads [][]byte) *SegmentRef {
	if len(payloads) != len(g.rungs) {
		panic(fmt.Sprintf("edge: %d payloads for %d rungs", len(payloads), len(g.rungs)))
	}
	idx := g.next
	g.next++
	segs := make([]*Segment, len(payloads))
	ref := SegmentRef{
		Index: idx,
		PubUS: at.Microseconds(),
		DurUS: g.segDur.Microseconds(),
		IDs:   make([]string, len(payloads)),
		Sizes: make([]int, len(payloads)),
	}
	for r, data := range payloads {
		segs[r] = &Segment{
			Channel:  g.channel,
			Index:    idx,
			Rung:     r,
			Duration: g.segDur,
			Data:     data,
			ID:       SegmentID(g.channel, idx, r, data),
		}
		ref.IDs[r] = segs[r].ID
		ref.Sizes[r] = len(data)
	}
	g.cache[idx] = segs
	g.playlist.Segments = append(g.playlist.Segments, ref)
	for len(g.playlist.Segments) > g.window {
		old := g.playlist.Segments[0].Index
		g.playlist.Segments = g.playlist.Segments[1:]
		delete(g.cache, old)
	}
	return &g.playlist.Segments[len(g.playlist.Segments)-1]
}

// Segment returns the cached segment at (index, rung), or nil if the index
// left the window or the rung is out of range.
func (g *Segmenter) Segment(index, rung int) *Segment {
	segs := g.cache[index]
	if segs == nil || rung < 0 || rung >= len(segs) {
		return nil
	}
	return segs[rung]
}

// Playlist returns the live window (shared, not a copy: callers must not
// mutate, and the Origin encodes it before releasing its lock).
func (g *Segmenter) Playlist() *Playlist { return &g.playlist }
