package edge

import (
	"sync"
	"time"

	"livenas/internal/transport"
	"livenas/internal/wire"
)

// Origin is the root of a channel's distribution tree: it packages the
// enhanced output into segments (one Segmenter per channel), pushes the
// rolling playlist to every subscriber on each publish, and answers
// segment requests from its cache. Subscribers are usually relays; a
// viewer connecting straight to the origin works identically (that *is*
// the no-CDN baseline the edge experiment compares against).
//
// All methods are safe for concurrent use; message entry points
// (Handle/RemoveConn) are driven by OnMessage in simulation and by
// per-connection Recv goroutines in real processes.
type Origin struct {
	mu       sync.Mutex
	clock    Clock
	tel      *Telemetry
	window   int
	channels map[string]*originChannel
	egress   int64
}

type originChannel struct {
	seg *Segmenter
	// Subscribers in subscription order: a slice, not a map, so playlist
	// fan-out order is deterministic.
	subs []transport.Conn
}

// NewOrigin creates an origin whose playlists keep window segments.
func NewOrigin(clock Clock, window int, tel *Telemetry) *Origin {
	return &Origin{
		clock:    clock,
		tel:      tel,
		window:   window,
		channels: make(map[string]*originChannel),
	}
}

// AddChannel starts distributing a channel with the given ladder and
// segment duration. Publishing to or subscribing an unknown channel is
// ignored, so AddChannel must come first.
func (o *Origin) AddChannel(channel string, segDur time.Duration, rungs []RungInfo) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.channels[channel]; ok {
		return
	}
	o.channels[channel] = &originChannel{
		seg: NewSegmenter(channel, segDur, rungs, o.window),
	}
}

// Publish cuts the channel's next segment from one payload per rung and
// pushes the updated playlist to every subscriber.
func (o *Origin) Publish(channel string, payloads [][]byte) {
	o.mu.Lock()
	defer o.mu.Unlock()
	ch := o.channels[channel]
	if ch == nil {
		return
	}
	ch.seg.Push(o.clock.Now(), payloads)
	o.tel.SegsPublished.Add(int64(len(payloads)))
	o.pushPlaylist(channel, ch)
}

// pushPlaylist fans the current playlist out to all subscribers; a failed
// send evicts the subscriber. Callers hold o.mu.
func (o *Origin) pushPlaylist(channel string, ch *originChannel) {
	raw := ch.seg.Playlist().Encode()
	live := ch.subs[:0]
	for _, c := range ch.subs {
		m := &wire.Message{Type: wire.MsgPlaylist, Channel: channel, Data: raw}
		if err := c.Send(m); err != nil {
			continue // closed subscriber: drop it
		}
		o.egress += int64(m.WireSize())
		o.tel.PlaylistPushes.Add(1)
		live = append(live, c)
	}
	for i := len(live); i < len(ch.subs); i++ {
		ch.subs[i] = nil
	}
	ch.subs = live
}

// Handle processes one message from a subscriber connection.
func (o *Origin) Handle(c transport.Conn, m *wire.Message) {
	o.mu.Lock()
	defer o.mu.Unlock()
	ch := o.channels[m.Channel]
	if ch == nil {
		return
	}
	switch m.Type {
	case wire.MsgSubscribe:
		for _, s := range ch.subs {
			if s == c {
				return
			}
		}
		ch.subs = append(ch.subs, c)
		// Hand the newcomer the current window immediately (it may be
		// resuming: the resume index in m.FrameID needs no special handling
		// here, since playlists are full-window snapshots and segment
		// fetches are pull).
		if len(ch.seg.Playlist().Segments) > 0 {
			pm := &wire.Message{Type: wire.MsgPlaylist, Channel: m.Channel, Data: ch.seg.Playlist().Encode()}
			if c.Send(pm) == nil {
				o.egress += int64(pm.WireSize())
				o.tel.PlaylistPushes.Add(1)
			}
		}
	case wire.MsgSegmentReq:
		s := ch.seg.Segment(m.FrameID, m.Rung)
		if s == nil {
			return // left the window (or bad rung): requester times out and skips ahead
		}
		sm := &wire.Message{
			Type: wire.MsgSegment, Channel: m.Channel,
			FrameID: s.Index, Rung: s.Rung, SegID: s.ID,
			SegDurUS: s.Duration.Microseconds(),
			SentAtUS: o.clock.Now().Microseconds(),
			Data:     s.Data,
		}
		if c.Send(sm) == nil {
			o.egress += int64(sm.WireSize())
			o.tel.SegsSent.Add(1)
		}
	case wire.MsgBye:
		o.drop(ch, c)
	default:
		// Unknown or unrelated types: tolerated and ignored (wire contract).
	}
}

// RemoveConn evicts a dead subscriber connection from every channel (the
// real-process Recv loop calls this when the connection errors).
func (o *Origin) RemoveConn(c transport.Conn) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, ch := range o.channels {
		o.drop(ch, c)
	}
}

// drop removes one subscriber. Callers hold o.mu.
func (o *Origin) drop(ch *originChannel, c transport.Conn) {
	for i, s := range ch.subs {
		if s == c {
			ch.subs = append(ch.subs[:i], ch.subs[i+1:]...)
			return
		}
	}
}

// Playlist returns a copy of a channel's current playlist (nil if the
// channel is unknown). Test and status surface.
func (o *Origin) Playlist(channel string) *Playlist {
	o.mu.Lock()
	defer o.mu.Unlock()
	ch := o.channels[channel]
	if ch == nil {
		return nil
	}
	p := *ch.seg.Playlist()
	p.Segments = append([]SegmentRef(nil), p.Segments...)
	return &p
}

// EgressBytes reports the total bytes this origin has sent (the number the
// relay tree exists to shrink).
func (o *Origin) EgressBytes() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.egress
}
