// Package edge is the distribution side of LiveNAS: once the ingest server
// has super-resolved a channel's uplink into a high-quality stream (§1: "the
// quality of the ingest side inherently limits the quality to the
// distribution side"), this package fans that enhanced output out to
// viewers. An Origin packages the enhanced stream into HLS-style segments —
// a fixed virtual-time segment duration, a rolling playlist, content-
// addressed segment IDs — Relay nodes subscribe to the origin (or to other
// relays: trees go two and more levels deep) and serve many viewers with a
// pull-through segment cache, and Viewer sessions fetch playlist+segments,
// choosing rungs with the ABR algorithms in internal/abr.
//
// Every actor is an event-driven state machine over transport.Conn: it
// never blocks in Recv. In simulation, SimConn's OnMessage delivers
// messages at their virtual arrival time on the simulator goroutine; in
// real processes (cmd/livenas-edge, cmd/livenas-server's origin endpoint),
// a per-connection goroutine pumps Recv into the same Handle methods. The
// identical actor code therefore drives both the deterministic `edge`
// experiment and real sockets.
//
// Backpressure toward slow viewers is the transport's drop-oldest bounded
// queue (SimConn) or its real-process equivalent in cmd/livenas-edge: a
// stale segment is worthless to a live viewer, the newest is not. Viewers
// recover from drops by request timeout plus skip-ahead against the rolling
// playlist window.
package edge

import (
	"sync"
	"time"

	"livenas/internal/sim"
	"livenas/internal/telemetry"
)

// Clock is the time source the edge actors schedule against, abstracting
// the virtual clock (experiments) from the wall clock (real processes).
// After callbacks must run on the same goroutine discipline as message
// delivery: the simulator goroutine in simulation, any goroutine in real
// mode (the actors lock internally).
type Clock interface {
	Now() time.Duration
	After(d time.Duration, fn func())
}

// SimClock adapts the discrete-event simulator to Clock.
type SimClock struct{ S *sim.Simulator }

// Now returns the virtual time.
func (c SimClock) Now() time.Duration { return c.S.Now() }

// After schedules fn on the simulator.
func (c SimClock) After(d time.Duration, fn func()) { c.S.After(d, fn) }

// WallClock is the real-process Clock: durations since construction.
type WallClock struct{ start time.Time }

// NewWallClock starts a wall clock at zero.
func NewWallClock() *WallClock {
	return &WallClock{start: time.Now()} //livenas:allow determinism-taint wall clock backs the real-process mode only; experiments use SimClock
}

// Now returns the wall time since construction.
func (c *WallClock) Now() time.Duration {
	return time.Since(c.start) //livenas:allow determinism-taint wall clock backs the real-process mode only; experiments use SimClock
}

// After schedules fn on a timer goroutine.
func (c *WallClock) After(d time.Duration, fn func()) {
	time.AfterFunc(d, fn) //livenas:allow determinism-taint wall clock backs the real-process mode only; experiments use SimClock
}

// Telemetry bundles the edge_* handles. The edge package owns the "edge_"
// prefix; handles are registered once here and held (nil-safe, so actors
// built without a registry pay only nil-receiver no-ops).
type Telemetry struct {
	SegsPublished  *telemetry.Counter   // segments cut at the origin (x rungs)
	SegsSent       *telemetry.Counter   // MsgSegment sends at origin+relays
	SegsDelivered  *telemetry.Counter   // segments accepted by viewers
	PlaylistPushes *telemetry.Counter   // playlist fan-out sends
	HopLatency     *telemetry.Histogram // per-hop segment latency, ms
	Delivery       *telemetry.Histogram // publish->viewer latency, ms
	ViewersLive    *telemetry.Gauge     // viewers currently playing
	ViewersStalled *telemetry.Gauge     // viewers currently stalled

	mu            sync.Mutex // guards the gauge levels below
	live, stalled int64
}

// NewTelemetry registers the edge metric family on reg (nil reg => nil
// handles, every operation a no-op).
func NewTelemetry(reg *telemetry.Registry) *Telemetry {
	t := &Telemetry{
		SegsPublished:  reg.Counter("edge_segments_published"),
		SegsSent:       reg.Counter("edge_segments_sent"),
		SegsDelivered:  reg.Counter("edge_segments_delivered"),
		PlaylistPushes: reg.Counter("edge_playlist_pushes"),
		HopLatency:     reg.Histogram("edge_hop_latency_ms", telemetry.ExpBuckets(1, 2, 14)),
		Delivery:       reg.Histogram("edge_delivery_latency_ms", telemetry.ExpBuckets(1, 2, 14)),
		ViewersLive:    reg.Gauge("edge_viewers_live"),
		ViewersStalled: reg.Gauge("edge_viewers_stalled"),
	}
	return t
}

// viewerLive moves the live-viewer gauge by delta (viewer state machines
// report transitions, the gauge holds the level).
func (t *Telemetry) viewerLive(delta int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.live += delta
	t.ViewersLive.Set(float64(t.live))
}

// viewerStalled moves the stalled-viewer gauge by delta.
func (t *Telemetry) viewerStalled(delta int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stalled += delta
	t.ViewersStalled.Set(float64(t.stalled))
}
