package edge

import (
	"bytes"
	"net"
	"os"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"

	"livenas/internal/sim"
	"livenas/internal/telemetry"
	"livenas/internal/transport"
	"livenas/internal/wire"
)

func testRungs() []RungInfo {
	return []RungInfo{
		{Name: "240p", Kbps: 400, EffectiveKbps: 520},
		{Name: "480p", Kbps: 1200, EffectiveKbps: 1560},
		{Name: "720p", Kbps: 2400, EffectiveKbps: 3120},
	}
}

func testSource(count int) *Source {
	return &Source{
		Channel: "ch000",
		SegDur:  time.Second,
		Rungs:   testRungs(),
		Count:   count,
		StartAt: time.Second,
	}
}

// TestPlaylistEncodeDeterministic pins the byte-identical playlist
// contract: the same window encodes to the same bytes, on any node, every
// time — relays forward the raw bytes verbatim, so the whole tree serves
// one encoding.
func TestPlaylistEncodeDeterministic(t *testing.T) {
	build := func() []byte {
		g := NewSegmenter("ch000", time.Second, testRungs(), 4)
		for i := 0; i < 7; i++ {
			var payloads [][]byte
			for r, rung := range testRungs() {
				payloads = append(payloads, SyntheticPayload("ch000", i, r, int(rung.Kbps*125)))
			}
			g.Push(time.Duration(i)*time.Second, payloads)
		}
		return g.Playlist().Encode()
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatal("identical windows encoded to different bytes")
	}
	pl, err := DecodePlaylist(a)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Oldest() != 3 || pl.LiveEdge() != 6 {
		t.Fatalf("window [%d,%d], want [3,6]", pl.Oldest(), pl.LiveEdge())
	}
}

// TestSegmenterWindow checks rolling eviction and content addressing.
func TestSegmenterWindow(t *testing.T) {
	g := NewSegmenter("ch000", time.Second, testRungs(), 3)
	for i := 0; i < 5; i++ {
		g.Push(time.Duration(i)*time.Second, [][]byte{{1}, {2}, {3}})
	}
	if g.Segment(1, 0) != nil {
		t.Fatal("segment 1 should have left the window")
	}
	s := g.Segment(3, 2)
	if s == nil {
		t.Fatal("segment 3 missing")
	}
	if want := SegmentID("ch000", 3, 2, []byte{3}); s.ID != want {
		t.Fatalf("ID %s, want %s", s.ID, want)
	}
	if g.Segment(3, 9) != nil {
		t.Fatal("out-of-range rung must be nil")
	}
}

// TestDecodePlaylistMalformed checks the error-not-panic contract on
// network-supplied playlist bytes.
func TestDecodePlaylistMalformed(t *testing.T) {
	for _, b := range [][]byte{nil, {0}, {0xFF, 0xA0, 0x13, 0x07}} {
		if _, err := DecodePlaylist(b); err == nil {
			t.Fatalf("decode of %v should error", b)
		}
	}
}

// TestSyntheticPayloadDeterministic pins cross-process content stability.
func TestSyntheticPayloadDeterministic(t *testing.T) {
	a := SyntheticPayload("ch000", 4, 1, 256)
	b := SyntheticPayload("ch000", 4, 1, 256)
	if !bytes.Equal(a, b) {
		t.Fatal("payload not deterministic")
	}
	if bytes.Equal(a, SyntheticPayload("ch000", 4, 2, 256)) {
		t.Fatal("different rungs must differ")
	}
}

func edgeSimCfg(viewers int) SimConfig {
	return SimConfig{
		Source:  testSource(12),
		Viewers: viewers,
		Fanout:  4,
		Links: SimLinks{
			ViewerKbps: DefaultViewerKbps(viewers, 7),
		},
	}
}

// TestRunSimDelivers sanity-checks one fan-out run end to end: the tree is
// two relay levels deep, segments reach viewers, and the publish->viewer
// latency is positive virtual time.
func TestRunSimDelivers(t *testing.T) {
	res, err := RunSim(edgeSimCfg(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.RelaysL2 != 3 || res.RelaysL1 != 1 {
		t.Fatalf("tree %d/%d relays, want 1/3", res.RelaysL1, res.RelaysL2)
	}
	if res.Delivered < 10*8 {
		t.Fatalf("delivered %d segments across 10 viewers, want >= 80", res.Delivered)
	}
	if res.DeliveryP50 <= 0 || res.DeliveryP99 < res.DeliveryP50 {
		t.Fatalf("latency quantiles p50=%v p99=%v", res.DeliveryP50, res.DeliveryP99)
	}
	if res.MeanEffKbps <= res.MeanKbps {
		t.Fatalf("effective %0.f <= network %0.f kbps: ladder boost lost", res.MeanEffKbps, res.MeanKbps)
	}
}

// TestRunSimDeterministic runs the same config concurrently and serially
// and requires identical results — the edge experiment's table rows are
// byte-identical at any worker count because this holds.
func TestRunSimDeterministic(t *testing.T) {
	results := make([]*Result, 4)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := RunSim(edgeSimCfg(10))
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("run %d differs:\n%+v\n%+v", i, results[0], results[i])
		}
	}
}

// TestRunSimFanOutSavesEgress compares the relay tree against every viewer
// hitting the origin directly: the tree must cut origin egress while
// keeping viewers fed.
func TestRunSimFanOutSavesEgress(t *testing.T) {
	tree, err := RunSim(edgeSimCfg(16))
	if err != nil {
		t.Fatal(err)
	}
	direct := edgeSimCfg(16)
	direct.Direct = true
	flat, err := RunSim(direct)
	if err != nil {
		t.Fatal(err)
	}
	if flat.OriginEgressBytes <= 2*tree.OriginEgressBytes {
		t.Fatalf("origin egress: direct %d vs tree %d — fan-out saved too little",
			flat.OriginEgressBytes, tree.OriginEgressBytes)
	}
	if tree.Delivered < flat.Delivered/2 {
		t.Fatalf("tree delivered %d vs direct %d: relays starved viewers", tree.Delivered, flat.Delivered)
	}
}

// TestRunSimBackpressure pins the drop-oldest recovery path: a viewer
// downlink far below the lowest rung must drop messages, and the viewer
// must keep converging on the live edge by skipping, not wedging.
func TestRunSimBackpressure(t *testing.T) {
	cfg := edgeSimCfg(4)
	// 120 kbps against a 400 kbps floor rung: one segment serialises for
	// ~3.4s, past the 2-segment request timeout, so fetches expire and the
	// live edge outruns the viewer.
	cfg.Links.ViewerKbps = []float64{120}
	cfg.Links.QueueBytes = 40 << 10
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("starved viewers still deliver some segments")
	}
	if res.Timeouts == 0 {
		t.Fatalf("no fetch timeouts under 120 kbps downlinks: %+v", res)
	}
	if res.Skipped == 0 {
		t.Fatalf("viewers never skipped toward the live edge: %+v", res)
	}
}

// TestViewerReconnectResumes is the relay-failover contract: a viewer cut
// off mid-stream re-attaches (to another relay) and resumes from the
// rolling playlist without re-playing any segment.
func TestViewerReconnectResumes(t *testing.T) {
	s := sim.New()
	clock := SimClock{S: s}
	tel := NewTelemetry(nil)
	src := testSource(14)

	origin := NewOrigin(clock, 6, tel)
	origin.AddChannel(src.Channel, src.SegDur, src.Rungs)

	link := transport.SimLinkConfig{Kbps: 50_000, Delay: 5 * time.Millisecond}
	newRelay := func() *Relay {
		pc, cc := transport.NewSimConnPair(s, link, link)
		pc.OnMessage(func(m *wire.Message) { origin.Handle(pc, m) })
		r := NewRelay(clock, cc, tel)
		cc.OnMessage(r.HandleUpstream)
		return r
	}
	ra, rb := newRelay(), newRelay()

	var played []int
	v := NewViewer(clock, ViewerConfig{
		Channel: src.Channel,
		OnPlay:  func(index, rung int) { played = append(played, index) },
	}, tel)

	attachTo := func(r *Relay) *transport.SimConn {
		down := transport.SimLinkConfig{Kbps: 8000, Delay: 10 * time.Millisecond}
		pc, vc := transport.NewSimConnPair(s, down, down)
		pc.OnMessage(func(m *wire.Message) { r.HandleDownstream(pc, m) })
		vc.OnMessage(v.Handle)
		return vc
	}

	for i := 0; i < src.Count; i++ {
		idx := i
		s.At(src.StartAt+time.Duration(i)*src.SegDur, func() {
			origin.Publish(src.Channel, src.payloads(idx))
		})
	}

	var c1 *transport.SimConn
	s.At(src.StartAt, func() { c1 = attachTo(ra); v.Attach(c1) })
	// Mid-stream: the first relay dies; the viewer re-attaches elsewhere.
	s.At(src.StartAt+5*src.SegDur+300*time.Millisecond, func() {
		c1.Close()
		v.Attach(attachTo(rb))
	})
	s.RunUntil(src.StartAt + time.Duration(src.Count+8)*src.SegDur)

	if len(played) < 8 {
		t.Fatalf("played only %v", played)
	}
	seen := map[int]bool{}
	for i, idx := range played {
		if seen[idx] {
			t.Fatalf("segment %d played twice: %v", idx, played)
		}
		seen[idx] = true
		if i > 0 && idx <= played[i-1]-1 && idx < played[i-1] {
			t.Fatalf("playback went backwards: %v", played)
		}
	}
	st := v.Finish()
	if st.Played != len(played) {
		t.Fatalf("stats played %d, hook saw %d", st.Played, len(played))
	}
}

// TestEdgeTelemetry checks the edge_* metric family records under a live
// registry.
func TestEdgeTelemetry(t *testing.T) {
	reg := telemetry.New()
	cfg := edgeSimCfg(6)
	cfg.Telemetry = reg
	if _, err := RunSim(cfg); err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter("edge_segments_published").Value(); n == 0 {
		t.Fatal("edge_segments_published stayed zero")
	}
	if n := reg.Counter("edge_segments_delivered").Value(); n == 0 {
		t.Fatal("edge_segments_delivered stayed zero")
	}
	if reg.Histogram("edge_delivery_latency_ms", telemetry.ExpBuckets(1, 2, 14)).Count() == 0 {
		t.Fatal("edge_delivery_latency_ms empty")
	}
}

// TestEdgeOverSockets drives the same actors over real connections: origin,
// one relay and a viewer joined by net.Pipe pairs, each pumped by its own
// goroutine — the exact shape cmd/livenas-edge runs, minus the kernel. Also
// the race detector's view of the actors' locking.
func TestEdgeOverSockets(t *testing.T) {
	clock := NewWallClock()
	tel := NewTelemetry(nil)
	rungs := testRungs()
	segDur := 40 * time.Millisecond

	origin := NewOrigin(clock, 6, tel)
	origin.AddChannel("ch000", segDur, rungs)

	// Sends must be asynchronous over net.Pipe (zero buffering): wrap both
	// ends in QueuedConn, exactly as the cmd binaries do on real sockets.
	pipe := func() (transport.Conn, transport.Conn) {
		a, b := net.Pipe()
		return transport.NewQueuedConn(transport.NewNetConn(a), 0),
			transport.NewQueuedConn(transport.NewNetConn(b), 0)
	}

	// Origin <- relay.
	oc, ruc := pipe()
	relay := NewRelay(clock, ruc, tel)
	go transport.Pump(oc, func(m *wire.Message) { origin.Handle(oc, m) })
	go transport.Pump(ruc, relay.HandleUpstream)

	// Relay <- viewer.
	rc, vc := pipe()
	playedc := make(chan int, 64)
	v := NewViewer(clock, ViewerConfig{
		Channel: "ch000",
		OnPlay:  func(index, rung int) { playedc <- index },
	}, tel)
	go transport.Pump(rc, func(m *wire.Message) { relay.HandleDownstream(rc, m) })
	go transport.Pump(vc, v.Handle)

	if err := v.Attach(vc); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			var payloads [][]byte
			for r := range rungs {
				payloads = append(payloads, SyntheticPayload("ch000", i, r, 2000))
			}
			origin.Publish("ch000", payloads)
			time.Sleep(segDur) //livenas:allow determinism-taint real-socket test paces wall-clock publishes
		}
	}()

	var played []int
	deadline := time.After(5 * time.Second)
	for len(played) < 5 {
		select {
		case idx := <-playedc:
			played = append(played, idx)
		case <-deadline:
			t.Fatalf("timed out; played %v", played)
		}
	}
	<-done
	oc.Close()
	rc.Close()
	for i := 1; i < len(played); i++ {
		if played[i] <= played[i-1] {
			t.Fatalf("out-of-order playback over sockets: %v", played)
		}
	}
}

// TestEdgeSoak scales the fan-out sim by EDGE_SOAK_VIEWERS (the nightly
// race-tier soak runs 256); the default stays cheap for the tier-1 wall.
func TestEdgeSoak(t *testing.T) {
	n := 24
	if s := os.Getenv("EDGE_SOAK_VIEWERS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("EDGE_SOAK_VIEWERS=%q: %v", s, err)
		}
		n = v
	} else if testing.Short() {
		t.Skip("short mode")
	}
	cfg := edgeSimCfg(n)
	cfg.Source.Count = 20
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered < n*10 {
		t.Fatalf("delivered %d across %d viewers", res.Delivered, n)
	}
}
