package edge

import (
	"sort"
	"sync"

	"livenas/internal/transport"
	"livenas/internal/wire"
)

// Relay is one interior node of the distribution tree: it subscribes to an
// upstream origin (or another relay — the tree composes, the edge
// experiment runs it two levels deep), forwards each playlist push
// downstream verbatim, and serves segments from a pull-through cache. A
// miss forwards one request upstream no matter how many downstream
// subscribers are waiting (request coalescing), which is where the
// origin-egress savings come from.
//
// Concurrency follows Origin: internal lock, event-driven entry points.
type Relay struct {
	mu       sync.Mutex
	clock    Clock
	tel      *Telemetry
	up       transport.Conn
	channels map[string]*relayChannel
	egress   int64
}

type segKey struct{ index, rung int }

type relayChannel struct {
	raw []byte    // latest playlist bytes, forwarded verbatim downstream
	pl  *Playlist // decoded view of raw
	// Pull-through cache over the live window. Keys are evicted when a new
	// playlist shows their index fell out of the window.
	cache map[segKey]*Segment
	// Coalesced misses: downstream conns waiting per key, in arrival order.
	pending map[segKey][]transport.Conn
	subs    []transport.Conn // downstream subscribers, subscription order
}

// NewRelay creates a relay over its upstream connection. The relay sends
// MsgSubscribe upstream lazily, on the first downstream subscriber of each
// channel (or eagerly via Subscribe).
func NewRelay(clock Clock, up transport.Conn, tel *Telemetry) *Relay {
	return &Relay{
		clock:    clock,
		tel:      tel,
		up:       up,
		channels: make(map[string]*relayChannel),
	}
}

// Subscribe joins a channel upstream before any downstream viewer asks —
// pre-warming the playlist path.
func (r *Relay) Subscribe(channel string) error {
	if !r.ensureChannel(channel) {
		return nil // already subscribed upstream
	}
	//livenas:allow race-guard up is immutable after NewRelay; the send must stay outside r.mu (it can block on a real socket)
	return r.up.Send(&wire.Message{Type: wire.MsgSubscribe, Channel: channel})
}

// ensureChannel creates the channel state on first interest, reporting
// whether this call created it (and so owes the upstream subscribe).
func (r *Relay) ensureChannel(channel string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.channels[channel]; ok {
		return false
	}
	r.channels[channel] = newRelayChannel()
	return true
}

func newRelayChannel() *relayChannel {
	return &relayChannel{
		cache:   make(map[segKey]*Segment),
		pending: make(map[segKey][]transport.Conn),
	}
}

// HandleUpstream processes one message from the upstream connection.
func (r *Relay) HandleUpstream(m *wire.Message) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ch := r.channels[m.Channel]
	if ch == nil {
		return
	}
	switch m.Type {
	case wire.MsgPlaylist:
		pl, err := DecodePlaylist(m.Data)
		if err != nil {
			return // malformed upstream: keep the previous window
		}
		ch.raw, ch.pl = m.Data, pl
		oldest := pl.Oldest()
		for k := range ch.cache {
			if k.index < oldest {
				delete(ch.cache, k)
			}
		}
		live := ch.subs[:0]
		for _, c := range ch.subs {
			fm := &wire.Message{Type: wire.MsgPlaylist, Channel: m.Channel, Data: ch.raw}
			if err := c.Send(fm); err != nil {
				continue
			}
			r.egress += int64(fm.WireSize())
			r.tel.PlaylistPushes.Add(1)
			live = append(live, c)
		}
		for i := len(live); i < len(ch.subs); i++ {
			ch.subs[i] = nil
		}
		ch.subs = live
	case wire.MsgSegment:
		now := r.clock.Now()
		if m.SentAtUS > 0 {
			r.tel.HopLatency.Observe(float64(now.Microseconds()-m.SentAtUS) / 1000)
		}
		s := &Segment{
			Channel: m.Channel, Index: m.FrameID, Rung: m.Rung,
			Duration: durUS(m.SegDurUS), Data: m.Data, ID: m.SegID,
		}
		k := segKey{m.FrameID, m.Rung}
		if ch.pl == nil || s.Index >= ch.pl.Oldest() {
			ch.cache[k] = s
		}
		waiters := ch.pending[k]
		delete(ch.pending, k)
		for _, c := range waiters {
			r.sendSegment(c, s)
		}
	default:
		// Unknown or unrelated types: tolerated and ignored (wire contract).
	}
}

// HandleDownstream processes one message from a downstream connection
// (a viewer or a deeper relay — the protocol is the same).
func (r *Relay) HandleDownstream(c transport.Conn, m *wire.Message) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch m.Type {
	case wire.MsgSubscribe:
		ch := r.channels[m.Channel]
		if ch == nil {
			// First interest in this channel: subscribe upstream too.
			ch = newRelayChannel()
			r.channels[m.Channel] = ch
			r.up.Send(&wire.Message{Type: wire.MsgSubscribe, Channel: m.Channel})
		}
		for _, s := range ch.subs {
			if s == c {
				return
			}
		}
		ch.subs = append(ch.subs, c)
		if ch.raw != nil {
			fm := &wire.Message{Type: wire.MsgPlaylist, Channel: m.Channel, Data: ch.raw}
			if c.Send(fm) == nil {
				r.egress += int64(fm.WireSize())
				r.tel.PlaylistPushes.Add(1)
			}
		}
	case wire.MsgSegmentReq:
		ch := r.channels[m.Channel]
		if ch == nil {
			return
		}
		k := segKey{m.FrameID, m.Rung}
		if s, ok := ch.cache[k]; ok {
			r.sendSegment(c, s)
			return
		}
		for _, w := range ch.pending[k] {
			if w == c {
				// The same conn asking again means its first wait timed out:
				// the upstream request (or reply) was probably lost. Re-issue
				// it rather than waiting forever on the old one.
				r.up.Send(&wire.Message{Type: wire.MsgSegmentReq, Channel: m.Channel, FrameID: m.FrameID, Rung: m.Rung})
				return
			}
		}
		first := len(ch.pending[k]) == 0
		ch.pending[k] = append(ch.pending[k], c)
		if first {
			r.up.Send(&wire.Message{Type: wire.MsgSegmentReq, Channel: m.Channel, FrameID: m.FrameID, Rung: m.Rung})
		}
	case wire.MsgBye:
		r.dropLocked(c)
	default:
		// Unknown or unrelated types: tolerated and ignored (wire contract).
	}
}

// sendSegment forwards one cached segment downstream. Callers hold r.mu.
func (r *Relay) sendSegment(c transport.Conn, s *Segment) {
	sm := &wire.Message{
		Type: wire.MsgSegment, Channel: s.Channel,
		FrameID: s.Index, Rung: s.Rung, SegID: s.ID,
		SegDurUS: s.Duration.Microseconds(),
		SentAtUS: r.clock.Now().Microseconds(),
		Data:     s.Data,
	}
	if c.Send(sm) == nil {
		r.egress += int64(sm.WireSize())
		r.tel.SegsSent.Add(1)
	}
}

// RemoveConn evicts a dead downstream connection everywhere.
func (r *Relay) RemoveConn(c transport.Conn) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dropLocked(c)
}

// dropLocked removes c from every channel's subscriber and waiter lists,
// walking channels and waiter keys in sorted order so registry mutations
// stay deterministic. Callers hold r.mu.
func (r *Relay) dropLocked(c transport.Conn) {
	names := make([]string, 0, len(r.channels))
	for name := range r.channels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ch := r.channels[name]
		for i, s := range ch.subs {
			if s == c {
				ch.subs = append(ch.subs[:i], ch.subs[i+1:]...)
				break
			}
		}
		keys := make([]segKey, 0, len(ch.pending))
		for k := range ch.pending {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].index != keys[j].index {
				return keys[i].index < keys[j].index
			}
			return keys[i].rung < keys[j].rung
		})
		for _, k := range keys {
			ws := ch.pending[k]
			for i, w := range ws {
				if w == c {
					ch.pending[k] = append(ws[:i], ws[i+1:]...)
					break
				}
			}
			if len(ch.pending[k]) == 0 {
				delete(ch.pending, k)
			}
		}
	}
}

// EgressBytes reports the total bytes this relay has sent downstream.
func (r *Relay) EgressBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.egress
}
