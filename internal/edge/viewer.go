package edge

import (
	"sync"
	"time"

	"livenas/internal/abr"
	"livenas/internal/transport"
	"livenas/internal/wire"
)

// ViewerConfig configures one playback session.
type ViewerConfig struct {
	Channel string
	// Alg picks the rung for each request (default: RobustMPC). One
	// instance per viewer: algorithms carry state.
	Alg abr.Algorithm
	// StartBehind is how many segments behind the live edge playback joins
	// (default 1 — live streams join near the edge, not at the window
	// start, trading history for latency).
	StartBehind int
	// StartupBuffer is the buffer level at which playback starts or resumes
	// after a stall (default: one segment duration).
	StartupBuffer time.Duration
	// BufferCap stops requesting once the buffer would exceed it
	// (default 8s, the live-style cap used across the repo's ABR work).
	BufferCap time.Duration
	// RequestTimeout bounds one segment fetch; an expired fetch is treated
	// as lost — the drop-oldest queue upstream ate it — and the viewer
	// skips ahead if newer segments exist (default: two segment durations).
	RequestTimeout time.Duration
	// OnPlay, if set, observes every accepted segment (index, rung) in
	// delivery order. Instrumentation hook for tests and status surfaces;
	// called with the viewer's lock held — do not call back in.
	OnPlay func(index, rung int)
}

// ViewerStats is one session's playback outcome.
type ViewerStats struct {
	Played     int // segments received and buffered
	Skipped    int // segments abandoned (drops/timeouts/window falls)
	Duplicates int // late or duplicate deliveries discarded
	Timeouts   int // fetches that hit RequestTimeout
	Bytes      int64
	Stall      time.Duration // rebuffer time after playback first started
	KbpsSum    float64       // sum of chosen-rung network bitrates
	EffSum     float64       // sum of chosen-rung effective bitrates
	Latencies  []time.Duration
}

// Viewer is one playback session: it subscribes to a channel on its
// connection, follows playlist pushes, fetches one segment at a time at the
// rung its ABR algorithm picks, and models a live player's buffer (startup
// threshold, stall accounting, skip-ahead when it falls out of the rolling
// window). Event-driven like the other actors: Handle is fed by the
// connection's delivery loop, timers come from the Clock.
type Viewer struct {
	mu    sync.Mutex
	clock Clock
	cfg   ViewerConfig
	tel   *Telemetry
	conn  transport.Conn

	pl     *Playlist
	rungs  []abr.Rung
	segDur time.Duration

	started     bool // playback position initialised from the first playlist
	next        int  // next segment index to fetch
	outstanding bool
	reqIndex    int
	reqRung     int
	reqAt       time.Duration
	gen         int  // request generation, invalidates stale timeout timers
	checkArmed  bool // a buffer-drain re-check timer is pending

	thr       []float64 // recent throughput samples, kbps
	buffer    time.Duration
	playing   bool
	everBegan bool
	lastAt    time.Duration

	stats ViewerStats
}

// NewViewer creates a session; Attach connects it.
func NewViewer(clock Clock, cfg ViewerConfig, tel *Telemetry) *Viewer {
	if cfg.Alg == nil {
		cfg.Alg = &abr.RobustMPC{}
	}
	if cfg.StartBehind <= 0 {
		cfg.StartBehind = 1
	}
	if cfg.BufferCap <= 0 {
		cfg.BufferCap = 8 * time.Second
	}
	return &Viewer{clock: clock, cfg: cfg, tel: tel}
}

// Attach (re)connects the viewer and subscribes, resuming from its current
// position: FrameID carries the next index it still needs, so after a relay
// failover it neither re-plays old segments nor waits for ones it has.
func (v *Viewer) Attach(conn transport.Conn) error {
	resume := v.rebind(conn)
	//livenas:allow race-guard cfg is immutable after NewViewer; the send must stay outside v.mu (it can block on a real socket)
	return conn.Send(&wire.Message{Type: wire.MsgSubscribe, Channel: v.cfg.Channel, FrameID: resume})
}

// rebind swaps in the new connection and returns the resume index.
func (v *Viewer) rebind(conn transport.Conn) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.conn = conn
	v.outstanding = false // a fetch in flight on the old conn is lost
	v.gen++
	return v.next
}

// Handle processes one message from the viewer's connection.
func (v *Viewer) Handle(m *wire.Message) {
	v.mu.Lock()
	defer v.mu.Unlock()
	now := v.clock.Now()
	v.account(now)
	switch m.Type {
	case wire.MsgPlaylist:
		pl, err := DecodePlaylist(m.Data)
		if err != nil || pl.Channel != v.cfg.Channel {
			return
		}
		v.pl = pl
		v.rungs = abrRungs(pl.Rungs)
		if len(pl.Segments) > 0 {
			v.segDur = durUS(pl.Segments[0].DurUS)
			if !v.started {
				v.started = true
				start := pl.LiveEdge() - v.cfg.StartBehind + 1
				if o := pl.Oldest(); start < o {
					start = o
				}
				if start > v.next { // resume position wins when it is newer
					v.next = start
				}
			}
		}
		v.maybeRequest(now)
	case wire.MsgSegment:
		if !v.outstanding || m.FrameID != v.reqIndex || m.Rung != v.reqRung {
			v.stats.Duplicates++
			return
		}
		v.outstanding = false
		v.gen++
		size := int64(m.WireSize())
		v.stats.Bytes += size
		if dt := now - v.reqAt; dt > 0 {
			v.thr = append(v.thr, float64(size*8)/dt.Seconds()/1000)
			if len(v.thr) > 20 {
				v.thr = v.thr[len(v.thr)-20:]
			}
		}
		v.stats.Played++
		if v.reqRung < len(v.rungs) {
			v.stats.KbpsSum += v.rungs[v.reqRung].Kbps
			v.stats.EffSum += v.rungs[v.reqRung].EffectiveKbps
		}
		if v.pl != nil {
			if ref := v.pl.Ref(m.FrameID); ref != nil {
				lat := now - durUS(ref.PubUS)
				v.stats.Latencies = append(v.stats.Latencies, lat)
				v.tel.Delivery.Observe(float64(lat.Microseconds()) / 1000)
			}
		}
		if m.SentAtUS > 0 {
			v.tel.HopLatency.Observe(float64(now.Microseconds()-m.SentAtUS) / 1000)
		}
		v.tel.SegsDelivered.Add(1)
		if v.cfg.OnPlay != nil {
			v.cfg.OnPlay(m.FrameID, m.Rung)
		}
		v.buffer += durUS(m.SegDurUS)
		v.startIfReady()
		v.next = m.FrameID + 1
		v.maybeRequest(now)
	default:
		// Unknown or unrelated types: tolerated and ignored (wire contract).
	}
}

// account advances the playback model to now: playing drains the buffer;
// an empty buffer is a stall (counted only after playback first began —
// startup delay is join latency, not rebuffering).
func (v *Viewer) account(now time.Duration) {
	elapsed := now - v.lastAt
	v.lastAt = now
	if elapsed <= 0 || !v.everBegan {
		return
	}
	if v.playing {
		if elapsed >= v.buffer {
			v.stats.Stall += elapsed - v.buffer
			v.buffer = 0
			v.playing = false
			v.tel.viewerLive(-1)
			v.tel.viewerStalled(1)
		} else {
			v.buffer -= elapsed
		}
	} else {
		v.stats.Stall += elapsed
	}
}

// startIfReady flips to playing when the buffer clears the startup
// threshold. Callers hold v.mu and have called account.
func (v *Viewer) startIfReady() {
	startup := v.cfg.StartupBuffer
	if startup <= 0 {
		startup = v.segDur
	}
	if v.playing || v.buffer < startup || startup == 0 {
		return
	}
	if v.everBegan {
		v.tel.viewerStalled(-1)
	}
	v.playing = true
	v.everBegan = true
	v.tel.viewerLive(1)
}

// maybeRequest issues the next fetch if one is due. Callers hold v.mu.
func (v *Viewer) maybeRequest(now time.Duration) {
	if v.pl == nil || v.outstanding || v.conn == nil || len(v.pl.Segments) == 0 {
		return
	}
	if v.buffer+v.segDur > v.cfg.BufferCap {
		// Full: re-check after the buffer drained one segment's worth.
		if !v.checkArmed && v.segDur > 0 {
			v.checkArmed = true
			v.clock.After(v.segDur/2, func() {
				v.mu.Lock()
				defer v.mu.Unlock()
				v.checkArmed = false
				v.account(v.clock.Now())
				v.maybeRequest(v.clock.Now())
			})
		}
		return
	}
	if o := v.pl.Oldest(); v.next < o {
		// The rolling window moved past us (we stalled or lost segments):
		// skip to the window start, like a live player rejoining the edge.
		v.stats.Skipped += o - v.next
		v.next = o
	}
	if v.next > v.pl.LiveEdge() {
		return // fully caught up; the next playlist push re-triggers us
	}
	rung := v.cfg.Alg.Next(v.rungs, v.thr, v.buffer)
	if rung < 0 {
		rung = 0
	}
	if rung >= len(v.rungs) {
		rung = len(v.rungs) - 1
	}
	v.outstanding = true
	v.reqIndex, v.reqRung, v.reqAt = v.next, rung, now
	v.gen++
	gen := v.gen
	v.conn.Send(&wire.Message{Type: wire.MsgSegmentReq, Channel: v.cfg.Channel, FrameID: v.next, Rung: rung})
	timeout := v.cfg.RequestTimeout
	if timeout <= 0 {
		timeout = 2 * v.segDur
	}
	if timeout <= 0 {
		return
	}
	v.clock.After(timeout, func() {
		v.mu.Lock()
		defer v.mu.Unlock()
		if !v.outstanding || v.gen != gen {
			return
		}
		v.outstanding = false
		v.stats.Timeouts++
		now := v.clock.Now()
		v.account(now)
		if v.pl != nil && v.next < v.pl.LiveEdge() {
			// The segment likely fell to drop-oldest backpressure; newer
			// ones exist, so chase the live edge rather than retry forever.
			v.stats.Skipped++
			v.next++
		}
		v.maybeRequest(now)
	})
}

// Finish flushes playback accounting to now and returns the session stats.
func (v *Viewer) Finish() ViewerStats {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.account(v.clock.Now())
	return v.stats
}

// Playing reports whether the session is currently playing (false also
// before startup).
func (v *Viewer) Playing() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.playing
}

// Position returns the next segment index the viewer needs.
func (v *Viewer) Position() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.next
}
