package edge

import (
	"fmt"
	"sort"
	"time"

	"livenas/internal/abr"
	"livenas/internal/sim"
	"livenas/internal/telemetry"
	"livenas/internal/trace"
	"livenas/internal/transport"
	"livenas/internal/wire"
)

// Source describes the enhanced output one channel publishes in a
// simulation: a fixed ladder, a fixed segment duration, and Count segments
// of synthetic (deterministic, content-addressable) payload sized to each
// rung's bitrate.
type Source struct {
	Channel string
	SegDur  time.Duration
	Rungs   []RungInfo
	Count   int
	StartAt time.Duration
}

// payloads builds the per-rung payloads for one segment index.
func (s *Source) payloads(index int) [][]byte {
	out := make([][]byte, len(s.Rungs))
	for r, rung := range s.Rungs {
		n := int(rung.Kbps * s.SegDur.Seconds() * 1000 / 8)
		out[r] = SyntheticPayload(s.Channel, index, r, n)
	}
	return out
}

// SimLinks shapes the tree's connections, netem-style.
type SimLinks struct {
	OriginKbps  float64       // origin -> L1 relay serialisation rate
	RelayKbps   float64       // relay -> relay serialisation rate
	HopDelay    time.Duration // propagation per relay hop
	ViewerKbps  []float64     // per-viewer downlink rates, cycled by index
	ViewerDelay time.Duration // last-hop propagation
	QueueBytes  int           // drop-oldest bound per viewer downlink
}

// SimConfig is one edge fan-out experiment: one channel, a two-level relay
// tree, N viewers.
type SimConfig struct {
	Source  *Source
	Viewers int
	// Fanout bounds children per relay: viewers per L2 relay and L2 relays
	// per L1 relay (default 8).
	Fanout int
	// Window is the playlist's rolling window in segments (default 6).
	Window int
	Links  SimLinks
	// NewAlg builds each viewer's ABR instance (default RobustMPC).
	NewAlg func() abr.Algorithm
	// Direct removes the relay tree: every viewer connects straight to the
	// origin. The baseline the egress-savings number compares against.
	Direct    bool
	Telemetry *telemetry.Registry
}

// Result is one simulation's outcome. All fields are deterministic
// functions of the config: the latency quantiles are exact order
// statistics over every viewer delivery, in virtual time.
type Result struct {
	Viewers  int
	RelaysL1 int
	RelaysL2 int
	Fanout   int

	SegmentsPublished int // segment indexes cut at the origin
	Delivered         int // segments accepted by viewers
	Skipped           int
	Duplicates        int
	Timeouts          int
	DroppedMsgs       int // drop-oldest evictions across viewer downlinks

	OriginEgressBytes int64
	RelayEgressBytes  int64
	ViewerBytes       int64

	StallSec    float64 // total rebuffer time across viewers
	MeanKbps    float64 // mean chosen network bitrate over deliveries
	MeanEffKbps float64 // mean effective bitrate (the LiveNAS quality boost)

	DeliveryP50 time.Duration // publish -> viewer, virtual time
	DeliveryP99 time.Duration
}

func (c SimConfig) withDefaults() SimConfig {
	if c.Fanout <= 0 {
		c.Fanout = 8
	}
	if c.Window <= 0 {
		c.Window = 6
	}
	if c.NewAlg == nil {
		c.NewAlg = func() abr.Algorithm { return &abr.RobustMPC{} }
	}
	l := &c.Links
	if l.OriginKbps <= 0 {
		l.OriginKbps = 200_000
	}
	if l.RelayKbps <= 0 {
		l.RelayKbps = 100_000
	}
	if l.HopDelay <= 0 {
		l.HopDelay = 10 * time.Millisecond
	}
	if len(l.ViewerKbps) == 0 {
		l.ViewerKbps = []float64{6000}
	}
	if l.ViewerDelay <= 0 {
		l.ViewerDelay = 20 * time.Millisecond
	}
	if l.QueueBytes <= 0 {
		l.QueueBytes = 2 << 20
	}
	return c
}

// DefaultViewerKbps draws n viewer downlink rates from the FCC broadband
// distribution (trace.FCCDownlink's family), deterministically by seed.
func DefaultViewerKbps(n int, seed int64) []float64 {
	tr := trace.FCCDownlink(seed, time.Duration(n+1)*time.Second)
	out := make([]float64, n)
	for i := range out {
		out[i] = tr.RateAt(time.Duration(i) * time.Second)
	}
	return out
}

// RunSim executes one edge fan-out simulation to completion and returns
// its aggregate. Everything runs on a private virtual clock; the outcome
// is byte-for-byte reproducible for a given config.
func RunSim(cfg SimConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	src := cfg.Source
	if src == nil || src.Count <= 0 || len(src.Rungs) == 0 {
		return nil, fmt.Errorf("edge: sim needs a source with segments and rungs")
	}
	if cfg.Viewers <= 0 {
		return nil, fmt.Errorf("edge: sim needs at least one viewer")
	}

	s := sim.New()
	clock := SimClock{S: s}
	tel := NewTelemetry(cfg.Telemetry)

	origin := NewOrigin(clock, cfg.Window, tel)
	origin.AddChannel(src.Channel, src.SegDur, src.Rungs)

	// Build the tree: origin -> L1 relays -> L2 relays -> viewers. Interior
	// links are symmetric (requests upstream are small; the shared shape
	// keeps the config surface tight); viewer downlinks carry the
	// drop-oldest bound.
	relayLink := func(kbps float64) transport.SimLinkConfig {
		return transport.SimLinkConfig{Kbps: kbps, Delay: cfg.Links.HopDelay}
	}

	nL2 := (cfg.Viewers + cfg.Fanout - 1) / cfg.Fanout
	nL1 := (nL2 + cfg.Fanout - 1) / cfg.Fanout
	if cfg.Direct {
		nL1, nL2 = 0, 0
	}

	relays := make([]*Relay, 0, nL1+nL2)
	newRelayUnder := func(parent func(transport.Conn, *wire.Message), kbps float64) *Relay {
		pc, cc := transport.NewSimConnPair(s, relayLink(kbps), relayLink(kbps))
		pc.OnMessage(func(m *wire.Message) { parent(pc, m) })
		r := NewRelay(clock, cc, tel)
		cc.OnMessage(r.HandleUpstream)
		relays = append(relays, r)
		return r
	}

	l1 := make([]*Relay, nL1)
	for i := range l1 {
		l1[i] = newRelayUnder(origin.Handle, cfg.Links.OriginKbps)
		l1[i].Subscribe(src.Channel)
	}
	l2 := make([]*Relay, nL2)
	for i := range l2 {
		parent := l1[i/cfg.Fanout]
		l2[i] = newRelayUnder(parent.HandleDownstream, cfg.Links.RelayKbps)
		l2[i].Subscribe(src.Channel)
	}

	viewers := make([]*Viewer, cfg.Viewers)
	downlinks := make([]*transport.SimConn, cfg.Viewers)
	for i := range viewers {
		v := NewViewer(clock, ViewerConfig{
			Channel: src.Channel,
			Alg:     cfg.NewAlg(),
		}, tel)
		down := transport.SimLinkConfig{
			Kbps:       cfg.Links.ViewerKbps[i%len(cfg.Links.ViewerKbps)],
			Delay:      cfg.Links.ViewerDelay,
			QueueBytes: cfg.Links.QueueBytes,
		}
		up := transport.SimLinkConfig{Kbps: cfg.Links.ViewerKbps[i%len(cfg.Links.ViewerKbps)], Delay: cfg.Links.ViewerDelay}
		pc, vc := transport.NewSimConnPair(s, down, up)
		var parent func(transport.Conn, *wire.Message)
		if cfg.Direct {
			parent = origin.Handle
		} else {
			parent = l2[i/cfg.Fanout].HandleDownstream
		}
		pc.OnMessage(func(m *wire.Message) { parent(pc, m) })
		vc.OnMessage(v.Handle)
		viewers[i], downlinks[i] = v, pc

		// Viewers join spread across the first segment interval, in index
		// order (deterministic: distinct times, FIFO tiebreak otherwise).
		at := src.StartAt + time.Duration(i)*src.SegDur/time.Duration(cfg.Viewers)
		vv := v
		conn := transport.Conn(vc)
		s.At(at, func() { vv.Attach(conn) })
	}

	for i := 0; i < src.Count; i++ {
		idx := i
		s.At(src.StartAt+time.Duration(i)*src.SegDur, func() {
			origin.Publish(src.Channel, src.payloads(idx))
		})
	}

	// Run to completion plus a drain margin for in-flight fetches.
	end := src.StartAt + time.Duration(src.Count)*src.SegDur + 8*src.SegDur
	s.RunUntil(end)

	res := &Result{
		Viewers:           cfg.Viewers,
		RelaysL1:          nL1,
		RelaysL2:          nL2,
		Fanout:            cfg.Fanout,
		SegmentsPublished: src.Count,
		OriginEgressBytes: origin.EgressBytes(),
	}
	for _, r := range relays {
		res.RelayEgressBytes += r.EgressBytes()
	}
	for _, d := range downlinks {
		res.DroppedMsgs += d.Dropped()
	}
	var lats []time.Duration
	for _, v := range viewers {
		st := v.Finish()
		res.Delivered += st.Played
		res.Skipped += st.Skipped
		res.Duplicates += st.Duplicates
		res.Timeouts += st.Timeouts
		res.ViewerBytes += st.Bytes
		res.StallSec += st.Stall.Seconds()
		res.MeanKbps += st.KbpsSum
		res.MeanEffKbps += st.EffSum
		lats = append(lats, st.Latencies...) //livenas:allow race-guard read after RunUntil returned; the single-threaded simulator has quiesced
	}
	if res.Delivered > 0 {
		res.MeanKbps /= float64(res.Delivered)
		res.MeanEffKbps /= float64(res.Delivered)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if n := len(lats); n > 0 {
		res.DeliveryP50 = lats[(n-1)*50/100]
		res.DeliveryP99 = lats[(n-1)*99/100]
	}
	return res, nil
}
