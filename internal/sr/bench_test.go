package sr

import (
	"math/rand"
	"testing"

	"livenas/internal/frame"
	"livenas/internal/nn"
)

// End-to-end kernel benchmarks, tracked by scripts/bench.sh into
// BENCH_kernels.json alongside the conv microbenches. "kernel" runs the
// im2col/GEMM engine with per-sample gradient contexts and arena
// recycling; "ref" the retained scalar reference path (the seed
// implementation's behaviour), toggled in the same binary.

func randFrame(w, h int, rng *rand.Rand) *frame.Frame {
	f := frame.New(w, h)
	for i := range f.Pix {
		f.Pix[i] = uint8(rng.Intn(256))
	}
	return f
}

// modelMACs is the nominal forward MAC count of the default model per input
// pixel: three 3×3 convs (1→C, C→C, C→s²) at input resolution.
func modelMACs(m *Model, inPix int) int64 {
	c, s := m.Channels, m.Scale
	return int64((1*c+c*c+c*s*s)*9) * int64(inPix)
}

// benchTrainEpoch trains on the paper's patch geometry scaled to the
// default config: 24×24 LR patches against 48×48 HR labels (scale 2).
func benchTrainEpoch(b *testing.B, ref bool) {
	m := NewModel(2, 0, 1)
	cfg := DefaultTrainConfig()
	tr := NewTrainer(m, cfg, 2)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 32; i++ {
		tr.AddSample(randFrame(24, 24, rng), randFrame(48, 48, rng))
	}
	nn.SetRefKernels(ref)
	defer nn.SetRefKernels(false)
	// Nominal epoch MACs: forward + ~2x backward per sample.
	perSample := 3 * modelMACs(m, 24*24)
	b.SetBytes(4 * perSample * int64(cfg.Batch*cfg.ItersPerEpoch))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Epoch()
	}
}

func BenchmarkTrainEpoch(b *testing.B) {
	b.Run("kernel", func(b *testing.B) { benchTrainEpoch(b, false) })
	b.Run("ref", func(b *testing.B) { benchTrainEpoch(b, true) })
}

// benchInference1080p super-resolves a 960×540 frame to 1920×1080, the
// paper's ingest-to-native geometry.
func benchInference1080p(b *testing.B, ref bool) {
	m := NewModel(2, 0, 1)
	rng := rand.New(rand.NewSource(5))
	lr := randFrame(960, 540, rng)
	nn.SetRefKernels(ref)
	defer nn.SetRefKernels(false)
	b.SetBytes(4 * modelMACs(m, 960*540))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SuperResolve(lr)
	}
}

func BenchmarkInference1080p(b *testing.B) {
	b.Run("kernel", func(b *testing.B) { benchInference1080p(b, false) })
	b.Run("ref", func(b *testing.B) { benchInference1080p(b, true) })
}

// benchInferenceQuant pits the int8-quantized path ("kernel") against the
// f32 GEMM engine ("ref") on the same frame. Unlike the benches above, the
// baseline here is the *fast* f32 path, not the scalar seed — the tracked
// speedup is the quantization win on top of the optimised engine.
func benchInferenceQuant(b *testing.B, w, h int, quant bool) {
	m := NewModel(2, 0, 1)
	rng := rand.New(rand.NewSource(5))
	lr := randFrame(w, h, rng)
	b.SetBytes(4 * modelMACs(m, w*h))
	b.ReportAllocs()
	if quant {
		q := NewQuantModel(m)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.SuperResolve(lr)
		}
		return
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SuperResolve(lr)
	}
}

// BenchmarkInference1080pInt8 is the 960×540→1080p geometry of
// BenchmarkInference1080p on the int8 fast path.
func BenchmarkInference1080pInt8(b *testing.B) {
	b.Run("kernel", func(b *testing.B) { benchInferenceQuant(b, 960, 540, true) })
	b.Run("ref", func(b *testing.B) { benchInferenceQuant(b, 960, 540, false) })
}

// BenchmarkInference4K super-resolves 1920×1080 to 3840×2160 — the paper's
// hardest real-time target (Table 2's 4K rows) and the motivation for the
// quantized path.
func BenchmarkInference4K(b *testing.B) {
	b.Run("kernel", func(b *testing.B) { benchInferenceQuant(b, 1920, 1080, true) })
	b.Run("ref", func(b *testing.B) { benchInferenceQuant(b, 1920, 1080, false) })
}
