package sr

import (
	"math/rand"
	"testing"

	"livenas/internal/frame"
	"livenas/internal/nn"
)

// End-to-end kernel benchmarks, tracked by scripts/bench.sh into
// BENCH_kernels.json alongside the conv microbenches. "kernel" runs the
// im2col/GEMM engine with per-sample gradient contexts and arena
// recycling; "ref" the retained scalar reference path (the seed
// implementation's behaviour), toggled in the same binary.

func randFrame(w, h int, rng *rand.Rand) *frame.Frame {
	f := frame.New(w, h)
	for i := range f.Pix {
		f.Pix[i] = uint8(rng.Intn(256))
	}
	return f
}

// modelMACs is the nominal forward MAC count of the default model per input
// pixel: three 3×3 convs (1→C, C→C, C→s²) at input resolution.
func modelMACs(m *Model, inPix int) int64 {
	c, s := m.Channels, m.Scale
	return int64((1*c+c*c+c*s*s)*9) * int64(inPix)
}

// benchTrainEpoch trains on the paper's patch geometry scaled to the
// default config: 24×24 LR patches against 48×48 HR labels (scale 2).
func benchTrainEpoch(b *testing.B, ref bool) {
	m := NewModel(2, 0, 1)
	cfg := DefaultTrainConfig()
	tr := NewTrainer(m, cfg, 2)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 32; i++ {
		tr.AddSample(randFrame(24, 24, rng), randFrame(48, 48, rng))
	}
	nn.SetRefKernels(ref)
	defer nn.SetRefKernels(false)
	// Nominal epoch MACs: forward + ~2x backward per sample.
	perSample := 3 * modelMACs(m, 24*24)
	b.SetBytes(4 * perSample * int64(cfg.Batch*cfg.ItersPerEpoch))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Epoch()
	}
}

func BenchmarkTrainEpoch(b *testing.B) {
	b.Run("kernel", func(b *testing.B) { benchTrainEpoch(b, false) })
	b.Run("ref", func(b *testing.B) { benchTrainEpoch(b, true) })
}

// benchInference1080p super-resolves a 960×540 frame to 1920×1080, the
// paper's ingest-to-native geometry.
func benchInference1080p(b *testing.B, ref bool) {
	m := NewModel(2, 0, 1)
	rng := rand.New(rand.NewSource(5))
	lr := randFrame(960, 540, rng)
	nn.SetRefKernels(ref)
	defer nn.SetRefKernels(false)
	b.SetBytes(4 * modelMACs(m, 960*540))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SuperResolve(lr)
	}
}

func BenchmarkInference1080p(b *testing.B) {
	b.Run("kernel", func(b *testing.B) { benchInference1080p(b, false) })
	b.Run("ref", func(b *testing.B) { benchInference1080p(b, true) })
}
