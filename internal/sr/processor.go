package sr

import (
	"sync"
	"time"

	"livenas/internal/frame"
	"livenas/internal/telemetry"
)

// Processor applies super-resolution to decoded stream frames with
// intra-frame multi-GPU parallelism (§6.2): the frame is split into
// equal-height strips, each strip is super-resolved on its own GPU replica
// concurrently, and the results are stitched. The processor owns replica
// weights that are refreshed from the training model at epoch boundaries
// (§7 "At the end of every training epoch, the inference process is
// synchronized"), decoupling inference from in-progress training.
type Processor struct {
	dev    Device
	gpus   int
	scale  int
	mu     sync.Mutex
	models []*Model

	// Telemetry handles (nil until SetTelemetry; nil-safe).
	mFrames *telemetry.Counter
	mSyncs  *telemetry.Counter
	mLatMS  *telemetry.Histogram
}

// haloLR is the per-side strip overlap at LR resolution; it covers the
// network's receptive field (three 3x3 convs) so stitching is seam-free.
const haloLR = 4

// NewProcessor creates a processor with gpus replicas of model's current
// weights.
func NewProcessor(model *Model, gpus int, dev Device) *Processor {
	if gpus < 1 {
		gpus = 1
	}
	p := &Processor{dev: dev, gpus: gpus, scale: model.Scale}
	for i := 0; i < gpus; i++ {
		p.models = append(p.models, model.Clone())
	}
	return p
}

// GPUs reports the number of inference devices.
func (p *Processor) GPUs() int { return p.gpus }

// SetTelemetry registers the processor's metrics on reg: per-frame
// device-model inference latency (sr_infer_latency_ms), frames processed
// (sr_infer_frames) and weight syncs (sr_infer_syncs). Handles are held, so
// the per-frame cost is lock-free atomics only.
func (p *Processor) SetTelemetry(reg *telemetry.Registry) {
	p.mFrames = reg.Counter("sr_infer_frames")
	p.mSyncs = reg.Counter("sr_infer_syncs")
	p.mLatMS = reg.Histogram("sr_infer_latency_ms", telemetry.ExpBuckets(0.25, 1.5, 24))
}

// ArenaStats sums the replica models' arena free-list hits and misses.
func (p *Processor) ArenaStats() (hits, misses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, m := range p.models {
		h, ms := m.ArenaStats()
		hits += h
		misses += ms
	}
	return hits, misses
}

// Sync refreshes the processor's replica weights from model.
func (p *Processor) Sync(model *Model) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, m := range p.models {
		m.CopyWeightsFrom(model)
	}
	p.mSyncs.Inc()
}

// Process super-resolves lr and returns the upscaled frame together with
// the simulated per-frame latency from the device model. The computation is
// genuinely parallel across strips (one goroutine per GPU replica).
//
//livenas:allow context-propagation bounded wait: the strip join waits only on its own per-frame goroutines, each finite CPU kernel work
func (p *Processor) Process(lr *frame.Frame) (*frame.Frame, time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.scale
	lat := p.dev.InferenceTime(lr.W, lr.H, s, p.gpus)
	p.mFrames.Inc()
	p.mLatMS.Observe(float64(lat) / float64(time.Millisecond))
	if p.gpus == 1 || lr.H < p.gpus*haloLR*3 {
		return p.models[0].SuperResolve(lr), lat
	}

	out := frame.New(lr.W*s, lr.H*s)
	stripH := (lr.H + p.gpus - 1) / p.gpus
	var wg sync.WaitGroup
	for g := 0; g < p.gpus; g++ {
		y0 := g * stripH
		if y0 >= lr.H {
			break
		}
		y1 := y0 + stripH
		if y1 > lr.H {
			y1 = lr.H
		}
		wg.Add(1)
		go func(g, y0, y1 int) {
			defer wg.Done()
			// Expand by the halo, super-resolve, then crop the halo away.
			top := maxI(0, y0-haloLR)
			bot := minI(lr.H, y1+haloLR)
			strip := lr.Crop(0, top, lr.W, bot-top)
			up := p.models[g].SuperResolve(strip)
			cropTop := (y0 - top) * s
			region := up.Crop(0, cropTop, up.W, (y1-y0)*s)
			// Rows are disjoint across goroutines; Paste touches only
			// [y0*s, y1*s) of out.
			out.Paste(region, 0, y0*s)
		}(g, y0, y1)
	}
	wg.Wait()
	return out, lat
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
