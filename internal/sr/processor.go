package sr

import (
	"sort"
	"sync"
	"time"

	"livenas/internal/frame"
	"livenas/internal/metrics"
	"livenas/internal/telemetry"
)

// Processor applies super-resolution to decoded stream frames with
// intra-frame multi-GPU parallelism (§6.2): the frame is split into
// equal-height strips, each strip is super-resolved on its own GPU replica
// concurrently, and the results are stitched. The processor owns replica
// weights that are refreshed from the training model at epoch boundaries
// (§7 "At the end of every training epoch, the inference process is
// synchronized"), decoupling inference from in-progress training.
//
// Two optional fast paths stack on top (EnableQuant / SetAnytimeBudget):
//
//   - An int8-quantized whole-frame path (QuantModel), guarded by an online
//     quality gate: ObserveGatePatch compares int8 vs f32 PSNR on a sampled
//     trickle of training patches (which carry ground truth) and disables
//     quantization for this stream when the EWMA gap exceeds the configured
//     dB threshold, re-enabling it with hysteresis if the gap recovers.
//   - An anytime patch scheduler (Palantír-style latency allocation,
//     PAPERS.md): the frame is cut into cells ranked by an integer
//     gradient-energy proxy; high-gain cells run f32, the rest int8, and
//     when even that blows the per-frame deadline the lowest-gain tail
//     degrades to the bilinear skip. Ranking, budgeting and cell assignment
//     are all deterministic (integer energies, fixed tie-breaks, fixed
//     cell→replica mapping), so output depends only on the frame and
//     configuration.
type Processor struct {
	dev    Device
	gpus   int
	scale  int
	mu     sync.Mutex
	models []*Model

	// Quantized fast path (nil quant = disabled). quantSrc is the master
	// model quantization snapshots are taken from; quantOn is the gate
	// state; needCalib defers activation calibration to the first frame
	// when the source model has no statistics yet.
	quant     *QuantModel
	quantSrc  *Model
	quantOn   bool
	gateDB    float64
	gapEWMA   float64
	gapInit   bool
	needCalib bool

	// Anytime scheduling (0 = off).
	anytime time.Duration

	// Telemetry handles (nil until SetTelemetry; nil-safe).
	mFrames       *telemetry.Counter
	mSyncs        *telemetry.Counter
	mLatMS        *telemetry.Histogram
	mQuantPatches *telemetry.Counter
	mQuantGap     *telemetry.Histogram
	mDeadlineMiss *telemetry.Counter
}

// haloLR is the per-side strip overlap at LR resolution; it covers the
// network's receptive field (three 3x3 convs) so stitching is seam-free.
const haloLR = 4

// anytimeCellLR is the nominal LR cell edge of the anytime patch scheduler.
const anytimeCellLR = 48

// gateEWMAAlpha is the smoothing factor of the online PSNR-gap estimate.
const gateEWMAAlpha = 0.2

// NewProcessor creates a processor with gpus replicas of model's current
// weights.
func NewProcessor(model *Model, gpus int, dev Device) *Processor {
	if gpus < 1 {
		gpus = 1
	}
	p := &Processor{dev: dev, gpus: gpus, scale: model.Scale}
	for i := 0; i < gpus; i++ {
		p.models = append(p.models, model.Clone())
	}
	return p
}

// GPUs reports the number of inference devices.
func (p *Processor) GPUs() int { return p.gpus }

// SetTelemetry registers the processor's metrics on reg: per-frame
// device-model inference latency (sr_infer_latency_ms), frames processed
// (sr_infer_frames), weight syncs (sr_infer_syncs), int8-enhanced units
// (sr_quant_patches: cells in anytime mode, frames otherwise), the online
// int8-vs-f32 PSNR gap (sr_quant_psnr_gap, dB) and frames whose anytime
// budget could not be met even by full degradation (infer_deadline_miss).
// Handles are held, so the per-frame cost is lock-free atomics only. The
// handle installation itself takes p.mu: a processor may already be serving
// frames when telemetry is attached.
func (p *Processor) SetTelemetry(reg *telemetry.Registry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.mFrames = reg.Counter("sr_infer_frames")
	p.mSyncs = reg.Counter("sr_infer_syncs")
	p.mLatMS = reg.Histogram("sr_infer_latency_ms", telemetry.ExpBuckets(0.25, 1.5, 24))
	p.mQuantPatches = reg.Counter("sr_quant_patches")
	p.mQuantGap = reg.Histogram("sr_quant_psnr_gap", telemetry.ExpBuckets(0.01, 1.7, 20))
	p.mDeadlineMiss = reg.Counter("infer_deadline_miss")
}

// ArenaStats sums the replica models' arena free-list hits and misses,
// including the quantized path's arena when active.
func (p *Processor) ArenaStats() (hits, misses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, m := range p.models {
		h, ms := m.ArenaStats()
		hits += h
		misses += ms
	}
	if p.quant != nil {
		h, ms := p.quant.ArenaStats()
		hits += h
		misses += ms
	}
	return hits, misses
}

// Sync refreshes the processor's replica weights from model, and — when the
// quantized path is enabled — takes a fresh int8 snapshot of model using
// its latest calibration statistics.
func (p *Processor) Sync(model *Model) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, m := range p.models {
		m.CopyWeightsFrom(model)
	}
	if p.quant != nil {
		p.quantSrc = model
		p.quant = NewQuantModel(model)
		p.needCalib = false // trainer statistics flow in through Sync
	}
	p.mSyncs.Inc()
}

// EnableQuant switches the processor onto the int8-quantized inference path
// snapshotted from model, with the online quality gate set to gapDB: if the
// observed int8-vs-f32 PSNR gap (EWMA over the sampled patch trickle fed to
// ObserveGatePatch) exceeds gapDB, this stream falls back to f32 until the
// gap recovers. gapDB <= 0 keeps quantization permanently on (no gate).
func (p *Processor) EnableQuant(model *Model, gapDB float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.quantSrc = model
	p.quant = NewQuantModel(model)
	p.quantOn = true
	p.gateDB = gapDB
	p.gapEWMA, p.gapInit = 0, false
	// A model that never trained (generic/pretrained baselines) has no
	// calibration statistics; calibrate lazily from the first real frame.
	st := model.calibStats()
	p.needCalib = st[0] <= 0
}

// SetAnytimeBudget sets the per-frame latency budget of the anytime patch
// scheduler; 0 disables it (whole-frame inference). The budget is spent
// against the Device cost model, mirroring how the paper charges GPU time.
func (p *Processor) SetAnytimeBudget(d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if d < 0 {
		d = 0
	}
	p.anytime = d
}

// QuantActive reports whether the int8 path is enabled and currently
// passing the quality gate.
func (p *Processor) QuantActive() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.quant != nil && p.quantOn
}

// QuantGap returns the current EWMA of the int8-vs-f32 PSNR gap in dB and
// whether any gate observation has been made yet.
func (p *Processor) QuantGap() (float64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gapEWMA, p.gapInit
}

// ObserveGatePatch feeds one (lr, hr) ground-truth pair — in production a
// sampled patch from the ingest trickle that also feeds the trainer — to
// the online quality gate: both the f32 and the int8 path super-resolve lr,
// their PSNR against hr is compared, and the EWMA gap drives the per-stream
// quantization decision. No-op while the quantized path is disabled.
func (p *Processor) ObserveGatePatch(lr, hr *frame.Frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.quant == nil {
		return
	}
	f32Out := p.models[0].SuperResolve(lr)
	intOut := p.quant.SuperResolve(lr)
	gap := metrics.PSNR(f32Out, hr) - metrics.PSNR(intOut, hr)
	if !p.gapInit {
		p.gapEWMA, p.gapInit = gap, true
	} else {
		p.gapEWMA += gateEWMAAlpha * (gap - p.gapEWMA)
	}
	p.mQuantGap.Observe(max(p.gapEWMA, 0))
	if p.gateDB > 0 {
		if p.quantOn && p.gapEWMA > p.gateDB {
			p.quantOn = false
		} else if !p.quantOn && p.gapEWMA < 0.7*p.gateDB {
			// Hysteresis: re-enable only once the gap has clearly recovered
			// (fresh weights after a sync, or content change).
			p.quantOn = true
		}
	}
}

// Process super-resolves lr and returns the upscaled frame together with
// the simulated per-frame latency from the device model. The computation is
// genuinely parallel across strips (one goroutine per GPU replica).
//
//livenas:allow context-propagation bounded wait: the strip join waits only on its own per-frame goroutines, each finite CPU kernel work
func (p *Processor) Process(lr *frame.Frame) (*frame.Frame, time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lazyCalibrate(lr)
	if p.anytime > 0 && p.scale > 1 {
		return p.processAnytime(lr)
	}
	s := p.scale
	if p.quant != nil && p.quantOn {
		lat := p.dev.InferenceTimeQuant(lr.W, lr.H, s, p.gpus)
		p.mFrames.Inc()
		p.mQuantPatches.Inc()
		p.mLatMS.Observe(float64(lat) / float64(time.Millisecond))
		return p.quant.SuperResolve(lr), lat
	}
	lat := p.dev.InferenceTime(lr.W, lr.H, s, p.gpus)
	p.mFrames.Inc()
	p.mLatMS.Observe(float64(lat) / float64(time.Millisecond))
	if p.gpus == 1 || lr.H < p.gpus*haloLR*3 {
		return p.models[0].SuperResolve(lr), lat
	}

	out := frame.New(lr.W*s, lr.H*s)
	stripH := (lr.H + p.gpus - 1) / p.gpus
	var wg sync.WaitGroup
	for g := 0; g < p.gpus; g++ {
		y0 := g * stripH
		if y0 >= lr.H {
			break
		}
		y1 := min(y0+stripH, lr.H)
		wg.Add(1)
		go func(g, y0, y1 int) {
			defer wg.Done()
			// Expand by the halo, super-resolve, then crop the halo away.
			top := max(0, y0-haloLR)
			bot := min(lr.H, y1+haloLR)
			strip := lr.Crop(0, top, lr.W, bot-top)
			up := p.models[g].SuperResolve(strip)
			cropTop := (y0 - top) * s
			region := up.Crop(0, cropTop, up.W, (y1-y0)*s)
			// Rows are disjoint across goroutines; Paste touches only
			// [y0*s, y1*s) of out.
			out.Paste(region, 0, y0*s)
		}(g, y0, y1)
	}
	wg.Wait()
	return out, lat
}

// lazyCalibrate seeds activation calibration from the first processed frame
// for quantized models whose source never trained. Caller holds p.mu.
func (p *Processor) lazyCalibrate(lr *frame.Frame) {
	if !p.needCalib || p.quant == nil || p.quantSrc == nil {
		return
	}
	p.needCalib = false
	p.quantSrc.Calibrate([]*frame.Frame{lr})
	p.quant = NewQuantModel(p.quantSrc)
}

// qcell is one anytime scheduler cell: an LR rectangle, its integer
// gradient-energy rank key, and the execution mode the budget planner
// assigned.
type qcell struct {
	x0, y0, x1, y1 int
	energy         int64
	mode           uint8
}

const (
	modeInt8 = uint8(iota)
	modeF32
	modeBilinear
)

// processAnytime is the anytime-scheduled inference path. Caller holds
// p.mu.
//
//livenas:allow context-propagation bounded wait: the cell join waits only on its own per-frame goroutines, each finite CPU kernel work
func (p *Processor) processAnytime(lr *frame.Frame) (*frame.Frame, time.Duration) {
	s := p.scale
	up := lr.ResizeBilinear(lr.W*s, lr.H*s) // canvas; un-enhanced cells keep it
	cells := anytimeCells(lr)

	// Rank by residual-energy proxy: cells where bilinear will blur the
	// most (high gradient energy) gain the most from f32 SR. Integer
	// energies and an index tie-break keep the ranking deterministic.
	rank := make([]int, len(cells))
	for i := range rank {
		rank[i] = i
	}
	sort.Slice(rank, func(a, b int) bool {
		ca, cb := &cells[rank[a]], &cells[rank[b]]
		if ca.energy != cb.energy {
			return ca.energy > cb.energy
		}
		return rank[a] < rank[b]
	})

	// Budget plan: start everything on the cheapest neural mode, upgrade
	// the highest-energy cells to f32 while the budget allows, then — if
	// even the base plan is over budget — degrade the lowest-energy tail to
	// the bilinear skip.
	quant := p.quant != nil && p.quantOn
	base := p.dev.TransferNS + float64(p.gpus-1)*p.dev.StitchNS
	budget := float64(p.anytime) - base
	cost := func(c *qcell, mode uint8) float64 {
		switch mode {
		case modeBilinear:
			return 0 // the skip canvas is already paid for
		case modeInt8:
			return p.dev.PatchComputeNS(c.x1-c.x0, c.y1-c.y0, s, true)
		default:
			return p.dev.PatchComputeNS(c.x1-c.x0, c.y1-c.y0, s, false)
		}
	}
	var total float64
	for i := range cells {
		if quant {
			cells[i].mode = modeInt8
		} else {
			cells[i].mode = modeF32
		}
		total += cost(&cells[i], cells[i].mode)
	}
	if quant {
		for _, i := range rank {
			up := total - cost(&cells[i], modeInt8) + cost(&cells[i], modeF32)
			if up <= budget {
				cells[i].mode = modeF32
				total = up
			}
		}
	}
	for j := len(rank) - 1; j >= 0 && total > budget; j-- {
		i := rank[j]
		total -= cost(&cells[i], cells[i].mode)
		cells[i].mode = modeBilinear
	}
	if total > budget {
		// Even all-bilinear does not fit (budget below fixed overhead).
		p.mDeadlineMiss.Inc()
	}

	// Execute: fixed cell→replica assignment (cell i on replica i mod
	// gpus); each cell writes a disjoint region of the canvas.
	var nInt8 int64
	for i := range cells {
		if cells[i].mode == modeInt8 {
			nInt8++
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < p.gpus; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(cells); i += p.gpus {
				c := &cells[i]
				switch c.mode {
				case modeInt8:
					p.quant.EnhanceRegion(lr, c.x0, c.y0, c.x1, c.y1, up)
				case modeF32:
					p.enhanceRegionF32(p.models[g], lr, c, up)
				}
			}
		}(g)
	}
	wg.Wait()

	lat := time.Duration(base + max(total, 0)/float64(p.gpus))
	p.mFrames.Inc()
	p.mQuantPatches.Add(nInt8)
	p.mLatMS.Observe(float64(lat) / float64(time.Millisecond))
	return up, lat
}

// enhanceRegionF32 runs the f32 model over one cell (with halo) and pastes
// the enhanced region into the canvas.
func (p *Processor) enhanceRegionF32(m *Model, lr *frame.Frame, c *qcell, out *frame.Frame) {
	s := p.scale
	left, top := max(0, c.x0-haloLR), max(0, c.y0-haloLR)
	right, bot := min(lr.W, c.x1+haloLR), min(lr.H, c.y1+haloLR)
	cell := lr.Crop(left, top, right-left, bot-top)
	enhanced := m.SuperResolve(cell)
	region := enhanced.Crop((c.x0-left)*s, (c.y0-top)*s, (c.x1-c.x0)*s, (c.y1-c.y0)*s)
	out.Paste(region, c.x0*s, c.y0*s)
}

// anytimeCells cuts the LR frame into ~anytimeCellLR-sized cells (edge
// cells absorb the remainder so the frame is fully covered) and computes
// each cell's integer gradient-energy proxy: the sum of absolute horizontal
// and vertical pixel differences, normalised per pixel so differently-sized
// edge cells rank fairly.
func anytimeCells(lr *frame.Frame) []qcell {
	nx := max(1, lr.W/anytimeCellLR)
	ny := max(1, lr.H/anytimeCellLR)
	cells := make([]qcell, 0, nx*ny)
	for cy := 0; cy < ny; cy++ {
		y0 := cy * anytimeCellLR
		y1 := (cy + 1) * anytimeCellLR
		if cy == ny-1 {
			y1 = lr.H
		}
		for cx := 0; cx < nx; cx++ {
			x0 := cx * anytimeCellLR
			x1 := (cx + 1) * anytimeCellLR
			if cx == nx-1 {
				x1 = lr.W
			}
			var e int64
			for y := y0; y < y1; y++ {
				row := lr.Pix[y*lr.W:]
				for x := x0; x < x1; x++ {
					if x+1 < lr.W {
						e += absDiff(row[x], row[x+1])
					}
					if y+1 < lr.H {
						e += absDiff(row[x], lr.Pix[(y+1)*lr.W+x])
					}
				}
			}
			// Fixed-point per-pixel normalisation keeps the key integral
			// (deterministic comparisons) while ranking edge cells fairly.
			area := int64((x1 - x0) * (y1 - y0))
			cells = append(cells, qcell{x0: x0, y0: y0, x1: x1, y1: y1, energy: e * 256 / area})
		}
	}
	return cells
}

func absDiff(a, b uint8) int64 {
	if a > b {
		return int64(a - b)
	}
	return int64(b - a)
}
