// Package sr implements LiveNAS-Go's super-resolution stack: the patch-based
// residual SR network (the stand-in for NAS's "ultra-high" model, §7), the
// online trainer with recency-weighted minibatches and multi-GPU gradient
// aggregation (§6.2), the inference processor with intra-frame multi-GPU
// parallelism (§6.2), and the GPU device model that charges simulated time
// for training and inference (see DESIGN.md substitution #2).
package sr

import (
	"math/rand"
	"sync"

	"livenas/internal/frame"
	"livenas/internal/nn"
)

// DefaultChannels is the hidden width of the SR network. Small enough to
// train online on a CPU, large enough to learn content-specific detail.
const DefaultChannels = 8

// Model is a residual ESPCN-style super-resolution network for one integer
// scale factor: conv(1->C) ReLU conv(C->C) ReLU conv(C->s²) pixel-shuffle,
// added to a bilinear upsample of the input. The final conv is zero-
// initialised so an untrained model reproduces bilinear upsampling exactly —
// which is why online gain starts at 0 dB and grows with training.
//
// A shared Model is synchronized through its internal lock: SuperResolve,
// CopyWeightsFrom, Clone, and Save serialize against the trainer, which
// holds the write lock for each optimiser step. One Trainer plus any number
// of Processor.Sync / SuperResolve callers may therefore share a model (the
// contract the -race stress tests in race_test.go pin down). The lock is
// exclusive even for inference because a forward pass caches activations on
// the layers. Direct Params access remains trainer-only.
type Model struct {
	Scale    int
	Channels int
	layers   []nn.Layer
	params   []nn.Param

	// arena recycles every tensor the forward/backward hot path produces;
	// pool is the kernel worker pool conv row blocks and per-sample
	// gradient contexts run on. Both are private to the model (the arena
	// is shared with the model's gradient contexts, which is safe — it is
	// internally locked).
	arena *nn.Arena
	pool  *nn.Pool

	// live tracks the arena tensors produced by the most recent forward
	// chain; they stay out until backward has consumed the cached
	// activations, then releaseLive returns them. Guarded by mu.
	live []*nn.Tensor

	// ctxs are cached per-sample gradient contexts (see gradCtx), grown on
	// demand to the trainer's shard size. Guarded by mu.
	ctxs []*gradCtx

	// mu guards the weights and the layers' forward/backward scratch
	// state. The trainer write-locks it for the duration of a step;
	// Processor.Sync read-locks the source model while copying weights
	// out at epoch boundaries.
	mu sync.RWMutex

	// calibMax holds running maxima of the two hidden ReLU activations,
	// the activation-scale calibration the int8 path quantizes with (see
	// quant.go). Fed by the trainer's gradient contexts (every training
	// sample doubles as a calibration probe) and by explicit Calibrate
	// calls; zero means "never calibrated". Guarded by mu.
	calibMax [2]float32
}

// NewModel creates a model for the given integer scale factor (>= 1).
func NewModel(scale, channels int, seed int64) *Model {
	if scale < 1 {
		panic("sr: scale must be >= 1")
	}
	if channels <= 0 {
		channels = DefaultChannels
	}
	rng := rand.New(rand.NewSource(seed))
	head := nn.NewConv2D(1, channels, 3, rng)
	mid := nn.NewConv2D(channels, channels, 3, rng)
	tail := nn.NewConv2D(channels, scale*scale, 3, rng)
	tail.ZeroInit()
	m := &Model{
		Scale:    scale,
		Channels: channels,
		layers: []nn.Layer{
			head, &nn.ReLU{},
			mid, &nn.ReLU{},
			tail, &nn.PixelShuffle{S: scale},
		},
		arena: nn.NewArena(),
		pool:  nn.SharedPool(),
	}
	nn.ConfigureKernels(m.layers, m.arena, m.pool)
	m.params = nn.CollectParams(m.layers)
	return m
}

// SetKernelPool routes this model's kernels (and future gradient contexts)
// through the given worker pool. Results are bit-identical for any pool
// size — the pool changes only which goroutine runs a block, never the
// partitioning — so this is purely a throughput knob.
func (m *Model) SetKernelPool(p *nn.Pool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pool = p
	nn.ConfigureKernels(m.layers, m.arena, m.pool)
	m.ctxs = nil // rebuilt lazily with the new pool
}

// Params exposes the learnable parameters (stable order).
func (m *Model) Params() []nn.Param { return m.params }

// ArenaStats reports the model's tensor-arena free-list hits and misses
// (cumulative). In steady state hits dominate: the forward/backward chain
// recycles the same handful of shapes every call.
func (m *Model) ArenaStats() (hits, misses int64) { return m.arena.Stats() }

// ParamCount returns the total number of learnable scalars.
func (m *Model) ParamCount() int {
	n := 0
	for _, p := range m.params {
		n += len(p.W)
	}
	return n
}

// Clone returns a deep copy (weights and architecture, fresh grad buffers
// and a fresh arena) sharing the source model's kernel pool. The pool is
// snapshotted under the read lock — SetKernelPool may race with a clone
// otherwise — and released before the weight copy, which takes the locks in
// CopyWeightsFrom's documented order. Scale and Channels are immutable
// after construction and need no lock.
func (m *Model) Clone() *Model {
	pool := func() *nn.Pool {
		m.mu.RLock()
		defer m.mu.RUnlock()
		return m.pool
	}()
	c := NewModel(m.Scale, m.Channels, 0)
	c.SetKernelPool(pool)
	c.CopyWeightsFrom(m)
	return c
}

// CopyWeightsFrom overwrites this model's weights with src's. The two models
// must share architecture. This is the "inference process is synchronized"
// step of §7 and the model-sync step of multi-GPU training. Weights must
// flow in a consistent direction between any two models (trainer master →
// inference replicas here); copying both ways concurrently would risk a
// lock-order deadlock.
func (m *Model) CopyWeightsFrom(src *Model) {
	if m == src {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	src.mu.RLock()
	defer src.mu.RUnlock()
	m.copyWeights(src)
}

// copyWeights copies src's weights without locking; callers either hold
// the necessary locks or exclusively own both models.
func (m *Model) copyWeights(src *Model) {
	if len(m.params) != len(src.params) {
		panic("sr: CopyWeightsFrom architecture mismatch")
	}
	for i := range m.params {
		copy(m.params[i].W, src.params[i].W)
	}
}

// forward runs the residual branch (without the bilinear skip), tracking
// every arena tensor a layer produces so releaseLive can recycle them once
// the cached activations are no longer needed. In-place layers (ReLU)
// return their input and are not tracked twice.
func (m *Model) forward(x *nn.Tensor) *nn.Tensor {
	h := x
	for _, l := range m.layers {
		out := l.Forward(h)
		if out != h {
			m.live = append(m.live, out)
		}
		h = out
	}
	return h
}

// backward backpropagates a gradient through the residual branch,
// accumulating parameter gradients. It takes ownership of g, recycling the
// whole gradient chain through the arena as it goes; the caller must not
// use g afterwards. Forward activations stay live (layers cached them) —
// call releaseLive once per forward/backward pair.
func (m *Model) backward(g *nn.Tensor) {
	ref := nn.RefKernels()
	for i := len(m.layers) - 1; i >= 0; i-- {
		ng := m.layers[i].Backward(g)
		if ng != g && !ref {
			m.arena.Put(g)
		}
		g = ng
	}
	if !ref {
		m.arena.Put(g)
	}
}

// releaseLive returns the forward chain's tensors to the arena. In
// reference-kernel mode tensors were plainly allocated, so they are simply
// dropped for the GC — matching the seed's allocation behaviour that the
// tracked benchmarks baseline against.
func (m *Model) releaseLive() {
	ref := nn.RefKernels()
	for i, t := range m.live {
		if !ref {
			m.arena.Put(t)
		}
		m.live[i] = nil
	}
	m.live = m.live[:0]
}

// zeroGrads clears all gradient accumulators.
func (m *Model) zeroGrads() { nn.ZeroGrads(m.layers) }

// ToTensor converts a luma frame to a normalised (1, H, W) tensor in [0,1].
func ToTensor(f *frame.Frame) *nn.Tensor {
	t := nn.NewTensor(1, f.H, f.W)
	for i, v := range f.Pix {
		t.Data[i] = float32(v) / 255
	}
	return t
}

// FromTensor converts a (1, H, W) tensor in [0,1] back to a luma frame.
func FromTensor(t *nn.Tensor) *frame.Frame {
	f := frame.New(t.W, t.H)
	for i, v := range t.Data {
		x := v * 255
		switch {
		case x <= 0:
			f.Pix[i] = 0
		case x >= 255:
			f.Pix[i] = 255
		default:
			f.Pix[i] = uint8(x + 0.5)
		}
	}
	return f
}

// SuperResolve upscales lr by the model's scale factor: bilinear skip plus
// the learned residual. The lock is exclusive (not shared) because the
// forward pass caches activations on the layers for backward.
func (m *Model) SuperResolve(lr *frame.Frame) *frame.Frame {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.Scale
	up := lr.ResizeBilinear(lr.W*s, lr.H*s)
	in := m.arena.Get(1, lr.H, lr.W)
	for i, v := range lr.Pix {
		in.Data[i] = float32(v) / 255
	}
	res := m.forward(in)
	out := frame.New(up.W, up.H)
	for i := range out.Pix {
		v := float32(up.Pix[i]) + res.Data[i]*255
		switch {
		case v <= 0:
			out.Pix[i] = 0
		case v >= 255:
			out.Pix[i] = 255
		default:
			out.Pix[i] = uint8(v + 0.5)
		}
	}
	m.releaseLive()
	m.arena.Put(in)
	return out
}

// Calibrate runs f32 forward passes over the given frames, folding the
// hidden ReLU activation maxima into the model's calibration statistics.
// The trainer feeds these statistics continuously from its minibatches;
// Calibrate exists for models that never train (generic/pretrained
// baselines) and for tests — one representative frame is enough to seed
// usable int8 activation scales.
func (m *Model) Calibrate(frames []*frame.Frame) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ref := nn.RefKernels()
	for _, f := range frames {
		in := m.arena.Get(1, f.H, f.W)
		for i, v := range f.Pix {
			in.Data[i] = float32(v) / 255
		}
		h := in
		for i, l := range m.layers {
			out := l.Forward(h)
			if out != h {
				m.live = append(m.live, out)
			}
			h = out
			if i == 1 || i == 3 {
				m.calibMax[i/2] = maxSlice(h.Data, m.calibMax[i/2])
			}
		}
		m.releaseLive()
		if !ref {
			m.arena.Put(in)
		}
	}
}

// calibStats returns the calibration maxima. Zero values mean the model has
// never been calibrated (quantization then falls back to the input scale).
func (m *Model) calibStats() [2]float32 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.calibMax
}

// foldCalib merges activation maxima into the calibration statistics.
// Caller must hold m.mu (the trainer holds the master write lock for the
// whole step). Max is commutative and associative, so the fold order cannot
// affect the result — calibration stays deterministic for any pool size.
func (m *Model) foldCalib(am [2]float32) {
	m.calibMax[0] = max(m.calibMax[0], am[0])
	m.calibMax[1] = max(m.calibMax[1], am[1])
}

// maxSlice returns the max of seed and all elements of s.
func maxSlice(s []float32, seed float32) float32 {
	for _, v := range s {
		if v > seed {
			seed = v
		}
	}
	return seed
}

// gradCtx is a per-sample gradient context: a layer chain sharing the
// parent model's weight slices (live, not copied) but owning private
// gradient accumulators and activation caches. The trainer runs one
// context per minibatch sample so sample gradients compute concurrently on
// the kernel pool, then folds their private gradients into the model in
// ascending sample order — the same per-element accumulation order as a
// sequential loop, so the result is deterministic for any pool size.
type gradCtx struct {
	arena  *nn.Arena
	layers []nn.Layer
	params []nn.Param
	live   []*nn.Tensor

	// actMax records the hidden ReLU activation maxima of the most recent
	// sampleGrad call — free calibration probes for the int8 path, folded
	// into Model.calibMax by the trainer after each shard (max fold, so
	// deterministic regardless of execution order).
	actMax [2]float32
}

// gradContexts returns at least n cached gradient contexts, creating any
// missing ones. Caller must hold m.mu.
func (m *Model) gradContexts(n int) []*gradCtx {
	for len(m.ctxs) < n {
		g := &gradCtx{arena: m.arena}
		for _, l := range m.layers {
			switch t := l.(type) {
			case *nn.Conv2D:
				g.layers = append(g.layers, t.CloneShared())
			case *nn.ReLU:
				g.layers = append(g.layers, t.CloneShared())
			case *nn.PixelShuffle:
				g.layers = append(g.layers, t.CloneShared())
			default:
				panic("sr: layer type not supported by gradient contexts")
			}
		}
		g.params = nn.CollectParams(g.layers)
		m.ctxs = append(m.ctxs, g)
	}
	return m.ctxs[:n]
}

// sampleGrad runs one forward/backward pass for sample s, leaving the
// sample's gradient in the context's private accumulators, and returns the
// sample's loss.
func (g *gradCtx) sampleGrad(s Sample) float64 {
	g.actMax = [2]float32{}
	h := s.LR
	for i, l := range g.layers {
		out := l.Forward(h)
		if out != h {
			g.live = append(g.live, out)
		}
		h = out
		if i == 1 || i == 3 {
			g.actMax[i/2] = maxSlice(h.Data, 0)
		}
	}
	grad := g.arena.Get(h.C, h.H, h.W)
	loss := nn.MSELossGradInto(h, s.Res, grad)
	for i := len(g.layers) - 1; i >= 0; i-- {
		ng := g.layers[i].Backward(grad)
		if ng != grad {
			g.arena.Put(grad)
		}
		grad = ng
	}
	g.arena.Put(grad)
	for i, t := range g.live {
		g.arena.Put(t)
		g.live[i] = nil
	}
	g.live = g.live[:0]
	return loss
}

// zeroGrads clears the context's private gradient accumulators.
func (g *gradCtx) zeroGrads() { nn.ZeroGrads(g.layers) }
