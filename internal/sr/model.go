// Package sr implements LiveNAS-Go's super-resolution stack: the patch-based
// residual SR network (the stand-in for NAS's "ultra-high" model, §7), the
// online trainer with recency-weighted minibatches and multi-GPU gradient
// aggregation (§6.2), the inference processor with intra-frame multi-GPU
// parallelism (§6.2), and the GPU device model that charges simulated time
// for training and inference (see DESIGN.md substitution #2).
package sr

import (
	"math/rand"
	"sync"

	"livenas/internal/frame"
	"livenas/internal/nn"
)

// DefaultChannels is the hidden width of the SR network. Small enough to
// train online on a CPU, large enough to learn content-specific detail.
const DefaultChannels = 8

// Model is a residual ESPCN-style super-resolution network for one integer
// scale factor: conv(1->C) ReLU conv(C->C) ReLU conv(C->s²) pixel-shuffle,
// added to a bilinear upsample of the input. The final conv is zero-
// initialised so an untrained model reproduces bilinear upsampling exactly —
// which is why online gain starts at 0 dB and grows with training.
//
// A shared Model is synchronized through its internal lock: SuperResolve,
// CopyWeightsFrom, Clone, and Save serialize against the trainer, which
// holds the write lock for each optimiser step. One Trainer plus any number
// of Processor.Sync / SuperResolve callers may therefore share a model (the
// contract the -race stress tests in race_test.go pin down). The lock is
// exclusive even for inference because a forward pass caches activations on
// the layers. Direct Params access remains trainer-only.
type Model struct {
	Scale    int
	Channels int
	layers   []nn.Layer
	params   []nn.Param

	// mu guards the weights and the layers' forward/backward scratch
	// state. The trainer write-locks it for the duration of a step;
	// Processor.Sync read-locks the source model while copying weights
	// out at epoch boundaries.
	mu sync.RWMutex
}

// NewModel creates a model for the given integer scale factor (>= 1).
func NewModel(scale, channels int, seed int64) *Model {
	if scale < 1 {
		panic("sr: scale must be >= 1")
	}
	if channels <= 0 {
		channels = DefaultChannels
	}
	rng := rand.New(rand.NewSource(seed))
	head := nn.NewConv2D(1, channels, 3, rng)
	mid := nn.NewConv2D(channels, channels, 3, rng)
	tail := nn.NewConv2D(channels, scale*scale, 3, rng)
	tail.ZeroInit()
	m := &Model{
		Scale:    scale,
		Channels: channels,
		layers: []nn.Layer{
			head, &nn.ReLU{},
			mid, &nn.ReLU{},
			tail, &nn.PixelShuffle{S: scale},
		},
	}
	m.params = nn.CollectParams(m.layers)
	return m
}

// Params exposes the learnable parameters (stable order).
func (m *Model) Params() []nn.Param { return m.params }

// ParamCount returns the total number of learnable scalars.
func (m *Model) ParamCount() int {
	n := 0
	for _, p := range m.params {
		n += len(p.W)
	}
	return n
}

// Clone returns a deep copy (weights and architecture, fresh grad buffers).
func (m *Model) Clone() *Model {
	c := NewModel(m.Scale, m.Channels, 0)
	c.CopyWeightsFrom(m)
	return c
}

// CopyWeightsFrom overwrites this model's weights with src's. The two models
// must share architecture. This is the "inference process is synchronized"
// step of §7 and the model-sync step of multi-GPU training. Weights must
// flow in a consistent direction between any two models (trainer master →
// inference replicas here); copying both ways concurrently would risk a
// lock-order deadlock.
func (m *Model) CopyWeightsFrom(src *Model) {
	if m == src {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	src.mu.RLock()
	defer src.mu.RUnlock()
	m.copyWeights(src)
}

// copyWeights copies src's weights without locking; callers either hold
// the necessary locks or exclusively own both models.
func (m *Model) copyWeights(src *Model) {
	if len(m.params) != len(src.params) {
		panic("sr: CopyWeightsFrom architecture mismatch")
	}
	for i := range m.params {
		copy(m.params[i].W, src.params[i].W)
	}
}

// forward runs the residual branch (without the bilinear skip).
func (m *Model) forward(x *nn.Tensor) *nn.Tensor {
	h := x
	for _, l := range m.layers {
		h = l.Forward(h)
	}
	return h
}

// backward backpropagates a gradient through the residual branch,
// accumulating parameter gradients.
func (m *Model) backward(g *nn.Tensor) {
	for i := len(m.layers) - 1; i >= 0; i-- {
		g = m.layers[i].Backward(g)
	}
}

// zeroGrads clears all gradient accumulators.
func (m *Model) zeroGrads() { nn.ZeroGrads(m.layers) }

// ToTensor converts a luma frame to a normalised (1, H, W) tensor in [0,1].
func ToTensor(f *frame.Frame) *nn.Tensor {
	t := nn.NewTensor(1, f.H, f.W)
	for i, v := range f.Pix {
		t.Data[i] = float32(v) / 255
	}
	return t
}

// FromTensor converts a (1, H, W) tensor in [0,1] back to a luma frame.
func FromTensor(t *nn.Tensor) *frame.Frame {
	f := frame.New(t.W, t.H)
	for i, v := range t.Data {
		x := v * 255
		switch {
		case x <= 0:
			f.Pix[i] = 0
		case x >= 255:
			f.Pix[i] = 255
		default:
			f.Pix[i] = uint8(x + 0.5)
		}
	}
	return f
}

// SuperResolve upscales lr by the model's scale factor: bilinear skip plus
// the learned residual. The lock is exclusive (not shared) because the
// forward pass caches activations on the layers for backward.
func (m *Model) SuperResolve(lr *frame.Frame) *frame.Frame {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.Scale
	up := lr.ResizeBilinear(lr.W*s, lr.H*s)
	res := m.forward(ToTensor(lr))
	out := frame.New(up.W, up.H)
	for i := range out.Pix {
		v := float32(up.Pix[i]) + res.Data[i]*255
		switch {
		case v <= 0:
			out.Pix[i] = 0
		case v >= 255:
			out.Pix[i] = 255
		default:
			out.Pix[i] = uint8(v + 0.5)
		}
	}
	return out
}
